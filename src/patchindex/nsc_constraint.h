#ifndef PATCHINDEX_PATCHINDEX_NSC_CONSTRAINT_H_
#define PATCHINDEX_PATCHINDEX_NSC_CONSTRAINT_H_

#include <cstddef>
#include <cstdint>

#include "common/status.h"
#include "patchindex/patch_set.h"
#include "storage/table.h"

namespace patchindex::internal {

/// Nearly-sorted-column insert handling (paper §5.1): instead of
/// recomputing a globally longest sorted subsequence, the existing
/// subsequence is extended. Inserted values beyond the tracked tail value
/// run through the longest-sorted-subsequence algorithm; everything else
/// becomes a patch. This can lose optimality (the paper's (1,2,10)+(3,4)
/// example) but never correctness. `patches` must already have been grown
/// by OnAppendRows; `tail`/`has_tail` are updated in place.
Status NscHandleInsert(const Table& table, std::size_t column, bool ascending,
                       PatchSet* patches, std::int64_t* tail, bool* has_tail);

/// Modify handling (§5.2): every tuple whose indexed column is modified
/// joins the patches — a changed value may break the materialized
/// subsequence. No query needed.
Status NscHandleModify(const Table& table, std::size_t column,
                       PatchSet* patches);

}  // namespace patchindex::internal

#endif  // PATCHINDEX_PATCHINDEX_NSC_CONSTRAINT_H_
