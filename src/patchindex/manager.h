#ifndef PATCHINDEX_PATCHINDEX_MANAGER_H_
#define PATCHINDEX_PATCHINDEX_MANAGER_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "patchindex/patch_index.h"
#include "storage/table.h"

namespace patchindex {

/// Owns the PatchIndexes of one or more tables and drives the update
/// protocol: buffered update query -> constraint-specific handling ->
/// checkpoint -> incremental maintenance. Data partitioning is transparent
/// (paper §3.2): for a PartitionedTable, create one index per partition.
class PatchIndexManager {
 public:
  /// Creates and registers an index; returns a non-owning handle.
  PatchIndex* CreateIndex(const Table& table, std::size_t column,
                          ConstraintKind constraint,
                          PatchIndexOptions options = {});

  /// Registers one index per partition; returns the handles in partition
  /// order. Discovery and index creation run partition-locally and in
  /// parallel on the default thread pool (paper §3.2).
  std::vector<PatchIndex*> CreatePartitionedIndex(
      const PartitionedTable& table, std::size_t column,
      ConstraintKind constraint, PatchIndexOptions options = {});

  /// All indexes defined on `table`.
  std::vector<PatchIndex*> IndexesOn(const Table& table) const;

  /// Commits the update query buffered in `table`'s PDT: runs every
  /// affected index's update handling, checkpoints the table, then runs
  /// post-checkpoint maintenance. This is the paper's "handle updates
  /// immediately after they occur" protocol (§5).
  Status CommitUpdateQuery(Table& table);

  std::size_t num_indexes() const { return indexes_.size(); }

 private:
  std::vector<std::unique_ptr<PatchIndex>> indexes_;
};

}  // namespace patchindex

#endif  // PATCHINDEX_PATCHINDEX_MANAGER_H_
