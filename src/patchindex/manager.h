#ifndef PATCHINDEX_PATCHINDEX_MANAGER_H_
#define PATCHINDEX_PATCHINDEX_MANAGER_H_

#include <memory>
#include <mutex>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "patchindex/index_lookup.h"
#include "patchindex/patch_index.h"
#include "storage/table.h"

namespace patchindex {

/// Owns the PatchIndexes of one or more tables and drives the update
/// protocol: buffered update query -> constraint-specific handling ->
/// checkpoint -> incremental maintenance. Data partitioning is transparent
/// (paper §3.2): for a PartitionedTable, one index exists per partition
/// per column, with partition-local discovery, patch bitmaps and commit.
///
/// The index registry itself is internally synchronized, so sessions may
/// register/drop/enumerate indexes of different tables concurrently (the
/// engine holds only per-table locks). The *contents* of an index are
/// not: callers must serialize index use against CommitUpdateQuery on the
/// same table — the engine's table-level reader-writer lock does exactly
/// that.
class PatchIndexManager : public IndexLookup {
 public:
  /// Creates and registers an index; returns a non-owning handle.
  PatchIndex* CreateIndex(const Table& table, std::size_t column,
                          ConstraintKind constraint,
                          PatchIndexOptions options = {});

  /// Registers one index per partition; returns the handles in partition
  /// order. Discovery and index creation run partition-locally and in
  /// parallel on the default thread pool (paper §3.2).
  std::vector<PatchIndex*> CreatePartitionedIndex(
      const PartitionedTable& table, std::size_t column,
      ConstraintKind constraint, PatchIndexOptions options = {});

  /// Registers an externally constructed index (the checkpoint-restore
  /// path: LoadPatchIndexCheckpoint builds the index, recovery registers
  /// it so WAL replay maintains it incrementally).
  PatchIndex* Register(std::unique_ptr<PatchIndex> index);

  /// All indexes defined on `table`.
  std::vector<PatchIndex*> IndexesOn(const Table& table) const;

  /// All indexes defined on any partition of `table`.
  std::vector<PatchIndex*> IndexesOn(const PartitionedTable& table) const;

  /// IndexLookup: the optimizer's read-side view of IndexesOn(Table&).
  std::vector<const PatchIndex*> FindIndexesOn(
      const Table& table) const override;

  /// Shared handles to every index on `table` — the MVCC publication
  /// path snapshots these so a pinned version keeps its source indexes
  /// alive even if they are dropped from the registry afterwards.
  std::vector<std::shared_ptr<const PatchIndex>> SharedIndexesOn(
      const Table& table) const;

  /// Destroys every index defined on `table`; returns how many were
  /// dropped. Required before the owning catalog frees the table — the
  /// indexes hold a reference to it.
  std::size_t DropIndexesOn(const Table& table);
  std::size_t DropIndexesOn(const PartitionedTable& table);

  /// Destroys one index by handle; false when it is not registered.
  bool DropIndex(PatchIndex* index);

  /// Commits the update query buffered in `table`'s PDT: runs every
  /// affected index's update handling, checkpoints the table, then runs
  /// post-checkpoint maintenance. This is the paper's "handle updates
  /// immediately after they occur" protocol (§5).
  ///
  /// All-or-nothing per index: the table's delta always commits (the
  /// checkpoint is unconditional once the PDT validates), and an index
  /// either completes both maintenance phases or is dropped from the
  /// registry entirely. A partial failure can therefore never leave a
  /// registered index silently stale against the checkpointed table; the
  /// returned status names the dropped indexes. A kInvalidArgument return
  /// (mixed delta kinds) leaves table and indexes untouched.
  Status CommitUpdateQuery(Table& table);

  /// Per-partition commit of a partitioned table: each dirty partition
  /// (non-empty PDT) runs the full handle -> checkpoint -> maintenance
  /// protocol partition-locally, in parallel on `pool` when given. The
  /// same all-or-nothing index contract applies per partition.
  Status CommitUpdateQuery(PartitionedTable& table, ThreadPool* pool = nullptr);

  std::size_t num_indexes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return indexes_.size();
  }

 private:
  /// The single-partition protocol with the PDT already validated.
  Status CommitValidated(Table& table);

  mutable std::mutex mu_;  // guards the registry, not the indexes' state
  // shared_ptr so MVCC version snapshots can hold dropped indexes alive.
  std::vector<std::shared_ptr<PatchIndex>> indexes_;
};

}  // namespace patchindex

#endif  // PATCHINDEX_PATCHINDEX_MANAGER_H_
