#ifndef PATCHINDEX_PATCHINDEX_MANAGER_H_
#define PATCHINDEX_PATCHINDEX_MANAGER_H_

#include <memory>
#include <mutex>
#include <vector>

#include "common/status.h"
#include "patchindex/patch_index.h"
#include "storage/table.h"

namespace patchindex {

/// Owns the PatchIndexes of one or more tables and drives the update
/// protocol: buffered update query -> constraint-specific handling ->
/// checkpoint -> incremental maintenance. Data partitioning is transparent
/// (paper §3.2): for a PartitionedTable, create one index per partition.
///
/// The index registry itself is internally synchronized, so sessions may
/// register/drop/enumerate indexes of different tables concurrently (the
/// engine holds only per-table locks). The *contents* of an index are
/// not: callers must serialize index use against CommitUpdateQuery on the
/// same table — the engine's table-level reader-writer lock does exactly
/// that.
class PatchIndexManager {
 public:
  /// Creates and registers an index; returns a non-owning handle.
  PatchIndex* CreateIndex(const Table& table, std::size_t column,
                          ConstraintKind constraint,
                          PatchIndexOptions options = {});

  /// Registers one index per partition; returns the handles in partition
  /// order. Discovery and index creation run partition-locally and in
  /// parallel on the default thread pool (paper §3.2).
  std::vector<PatchIndex*> CreatePartitionedIndex(
      const PartitionedTable& table, std::size_t column,
      ConstraintKind constraint, PatchIndexOptions options = {});

  /// All indexes defined on `table`.
  std::vector<PatchIndex*> IndexesOn(const Table& table) const;

  /// Destroys every index defined on `table`; returns how many were
  /// dropped. Required before the owning catalog frees the table — the
  /// indexes hold a reference to it.
  std::size_t DropIndexesOn(const Table& table);

  /// Commits the update query buffered in `table`'s PDT: runs every
  /// affected index's update handling, checkpoints the table, then runs
  /// post-checkpoint maintenance. This is the paper's "handle updates
  /// immediately after they occur" protocol (§5).
  Status CommitUpdateQuery(Table& table);

  std::size_t num_indexes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return indexes_.size();
  }

 private:
  mutable std::mutex mu_;  // guards the registry, not the indexes' state
  std::vector<std::unique_ptr<PatchIndex>> indexes_;
};

}  // namespace patchindex

#endif  // PATCHINDEX_PATCHINDEX_MANAGER_H_
