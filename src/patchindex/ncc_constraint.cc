#include "patchindex/ncc_constraint.h"

namespace patchindex::internal {

Status NccHandleInsert(const Table& table, std::size_t column,
                       PatchSet* patches, std::int64_t* constant,
                       bool* has_constant) {
  const auto& inserts = table.pdt().inserts();
  RowId rid = table.num_rows();
  for (const Row& row : inserts) {
    const std::int64_t v = row.cells[column].AsInt64();
    if (!*has_constant) {
      *constant = v;
      *has_constant = true;
    } else if (v != *constant) {
      patches->MarkPatch(rid);
    }
    ++rid;
  }
  return Status::OK();
}

Status NccHandleModify(const Table& table, std::size_t column,
                       PatchSet* patches, std::int64_t constant) {
  for (const auto& [row, cols] : table.pdt().modifies()) {
    auto it = cols.find(column);
    if (it != cols.end() && it->second.AsInt64() != constant) {
      patches->MarkPatch(row);
    }
  }
  return Status::OK();
}

}  // namespace patchindex::internal
