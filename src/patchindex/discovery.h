#ifndef PATCHINDEX_PATCHINDEX_DISCOVERY_H_
#define PATCHINDEX_PATCHINDEX_DISCOVERY_H_

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "storage/column.h"

namespace patchindex {

/// Constraint discovery (introduced in the paper's predecessor [18];
/// recapped in §3.1): determines a minimal set of patches — rowIDs whose
/// removal makes the remaining column satisfy the constraint.

/// Nearly Unique Column: every occurrence of a non-unique value becomes a
/// patch ("we need to keep track of all occurrences of non-unique values
/// to ensure correctness", §5.1). This makes the patch and non-patch value
/// sets disjoint, which is what the Figure 2 distinct decomposition
/// relies on: unique non-patches pass through unaggregated, the patches
/// are aggregated, and the union contains every value exactly once.
/// Returns sorted rowIDs.
std::vector<RowId> DiscoverNucPatches(const Column& column);

/// Result of NSC discovery: the complement of a longest sorted (non-
/// decreasing for ascending order) subsequence, plus the subsequence's
/// last value, which the insert handler extends from (paper §5.1).
struct NscDiscovery {
  std::vector<RowId> patches;  // sorted rowIDs not in the subsequence
  std::int64_t tail_value = 0;  // last value of the kept subsequence
  bool has_tail = false;        // false when the column is empty
};

/// Nearly Sorted Column: longest non-decreasing (ascending=true) or
/// non-increasing subsequence via patience sorting (Fredman [12]),
/// O(n log n) time, O(n) space.
NscDiscovery DiscoverNscPatches(const Column& column, bool ascending = true);

/// Result of NCC discovery: every row not holding the column's most
/// frequent value is a patch. "Approximate constancy of column values"
/// is the first extension the paper's future work names (§7); it plugs
/// into the generic PatchIndex design of §5.5.
struct NccDiscovery {
  std::vector<RowId> patches;
  std::int64_t constant = 0;   // the majority value
  bool has_constant = false;   // false when the column is empty
};

/// Nearly Constant Column: patches are the complement of the most
/// frequent value's occurrences (ties broken towards the smaller value
/// for determinism).
NccDiscovery DiscoverNccPatches(const Column& column);

/// Longest sorted subsequence over a plain value vector; returns the
/// *indices* that are part of the subsequence (ascending index order).
/// Shared by discovery and the NSC insert handler.
std::vector<std::size_t> LongestSortedSubsequence(
    const std::vector<std::int64_t>& values, bool ascending = true);

}  // namespace patchindex

#endif  // PATCHINDEX_PATCHINDEX_DISCOVERY_H_
