#include "patchindex/nuc_constraint.h"

#include <memory>
#include <utility>
#include <vector>

#include "exec/expression.h"
#include "exec/hash_join.h"
#include "exec/project.h"
#include "exec/reuse.h"
#include "exec/scan.h"
#include "exec/select.h"

namespace patchindex::internal {

namespace {

/// Shared tail of the Figure 5 query: joins `build` (delta tuples:
/// [value, rowid]) against the visible table scan, drops self-matches,
/// and merges the rowIDs of both join sides into `patches`.
Status RunDeltaJoin(const Table& table, std::size_t column,
                    OperatorPtr build, const MinMaxIndex* minmax,
                    PatchSet* patches, double* scan_fraction) {
  // Probe side: the actual table (including pending inserts) with dynamic
  // range propagation from the join build phase.
  ScanOptions popt;
  popt.append_rowid_column = true;
  DynamicRangePtr range;
  if (minmax != nullptr) {
    range = MakeDynamicRange();
    popt.dynamic_range = range;
    popt.minmax = minmax;
  }
  auto probe = std::make_unique<ScanOperator>(
      table, std::vector<std::size_t>{column}, popt);
  ScanOperator* probe_raw = probe.get();

  HashJoinOptions jopt;
  jopt.publish_build_range = range;
  auto join = std::make_unique<HashJoinOperator>(
      std::move(build), std::move(probe), /*build_key=*/0, /*probe_key=*/0,
      jopt);

  // Output layout: [probe_value, probe_rowid, build_value, build_rowid].
  // A tuple joining with itself does not make the column non-unique.
  auto filtered = std::make_unique<SelectOperator>(std::move(join),
                                                   Ne(Col(1), Col(3)));

  // Intermediate result caching: materialize the join once, project the
  // probe-side rowIDs from the cache and the build-side rowIDs from the
  // ReuseLoad replay.
  auto buffer = MakeReuseBuffer();
  auto cache =
      std::make_unique<ReuseCacheOperator>(std::move(filtered), buffer);
  ProjectOperator probe_rowids(std::move(cache), {Col(1)});
  Batch probe_side = Collect(probe_rowids);

  ProjectOperator build_rowids(
      std::make_unique<ReuseLoadOperator>(
          buffer, std::vector<ColumnType>(4, ColumnType::kInt64)),
      {Col(3)});
  Batch build_side = Collect(build_rowids);

  for (std::int64_t rid : probe_side.columns[0].i64) {
    patches->MarkPatch(static_cast<RowId>(rid));
  }
  for (std::int64_t rid : build_side.columns[0].i64) {
    patches->MarkPatch(static_cast<RowId>(rid));
  }
  if (scan_fraction != nullptr) {
    *scan_fraction = probe_raw->effective_base_fraction();
  }
  return Status::OK();
}

}  // namespace

Status NucHandleInsert(const Table& table, std::size_t column,
                       const MinMaxIndex* minmax, PatchSet* patches,
                       double* scan_fraction) {
  if (table.pdt().inserts().empty()) return Status::OK();
  ScanOptions bopt;
  bopt.source = ScanSource::kInsertsOnly;
  bopt.append_rowid_column = true;
  auto build = std::make_unique<ScanOperator>(
      table, std::vector<std::size_t>{column}, bopt);
  return RunDeltaJoin(table, column, std::move(build), minmax, patches,
                      scan_fraction);
}

Status NucHandleModify(const Table& table, std::size_t column,
                       const MinMaxIndex* minmax, PatchSet* patches,
                       double* scan_fraction) {
  // Build side: the modified tuples with their new values. Modifies to
  // other columns do not affect this constraint.
  Batch delta;
  delta.Reset({ColumnType::kInt64, ColumnType::kInt64});
  for (const auto& [row, cols] : table.pdt().modifies()) {
    auto it = cols.find(column);
    if (it == cols.end()) continue;
    delta.columns[0].i64.push_back(it->second.AsInt64());
    delta.columns[1].i64.push_back(static_cast<std::int64_t>(row));
    delta.row_ids.push_back(row);
  }
  if (delta.num_rows() == 0) {
    if (scan_fraction != nullptr) *scan_fraction = 0.0;
    return Status::OK();
  }
  auto build = std::make_unique<InMemorySource>(std::move(delta));
  return RunDeltaJoin(table, column, std::move(build), minmax, patches,
                      scan_fraction);
}

}  // namespace patchindex::internal
