#include "patchindex/manager.h"

#include <algorithm>

#include "common/thread_pool.h"

namespace patchindex {

PatchIndex* PatchIndexManager::CreateIndex(const Table& table,
                                           std::size_t column,
                                           ConstraintKind constraint,
                                           PatchIndexOptions options) {
  // Discovery runs outside the registry lock; only the push_back races
  // with concurrent IndexesOn iterations.
  auto index = PatchIndex::Create(table, column, constraint, options);
  PatchIndex* handle = index.get();
  std::lock_guard<std::mutex> lock(mu_);
  indexes_.push_back(std::move(index));
  return handle;
}

std::vector<PatchIndex*> PatchIndexManager::CreatePartitionedIndex(
    const PartitionedTable& table, std::size_t column,
    ConstraintKind constraint, PatchIndexOptions options) {
  // Discovery + creation are independent per partition: run them on the
  // pool and register the results in partition order afterwards.
  std::vector<std::unique_ptr<PatchIndex>> created(table.num_partitions());
  ThreadPool::Default().ParallelFor(
      table.num_partitions(), [&](std::size_t p) {
        created[p] = PatchIndex::Create(table.partition(p), column,
                                        constraint, options);
      });
  std::vector<PatchIndex*> handles;
  handles.reserve(created.size());
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& idx : created) {
    handles.push_back(idx.get());
    indexes_.push_back(std::move(idx));
  }
  return handles;
}

std::vector<PatchIndex*> PatchIndexManager::IndexesOn(
    const Table& table) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<PatchIndex*> out;
  for (const auto& idx : indexes_) {
    if (&idx->table() == &table) out.push_back(idx.get());
  }
  return out;
}

std::size_t PatchIndexManager::DropIndexesOn(const Table& table) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::size_t before = indexes_.size();
  indexes_.erase(std::remove_if(indexes_.begin(), indexes_.end(),
                                [&table](const auto& idx) {
                                  return &idx->table() == &table;
                                }),
                 indexes_.end());
  return before - indexes_.size();
}

Status PatchIndexManager::CommitUpdateQuery(Table& table) {
  const std::vector<PatchIndex*> affected = IndexesOn(table);
  for (PatchIndex* idx : affected) {
    PIDX_RETURN_NOT_OK(idx->HandleUpdateQuery());
  }
  table.Checkpoint();
  for (PatchIndex* idx : affected) {
    PIDX_RETURN_NOT_OK(idx->AfterCheckpoint());
  }
  return Status::OK();
}

}  // namespace patchindex
