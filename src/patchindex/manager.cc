#include "patchindex/manager.h"

#include <algorithm>
#include <future>
#include <utility>

namespace patchindex {

namespace {

/// One delta kind per update query (paper §5, Table 1). Validated before
/// any index state is touched so a rejected query leaves everything
/// intact.
Status ValidateSingleDeltaKind(const PositionalDelta& pdt) {
  const int kinds = (pdt.inserts().empty() ? 0 : 1) +
                    (pdt.deletes().empty() ? 0 : 1) +
                    (pdt.modifies().empty() ? 0 : 1);
  if (kinds > 1) {
    return Status::InvalidArgument(
        "update query must contain exactly one delta kind (one SQL "
        "statement inserts, modifies or deletes)");
  }
  return Status::OK();
}

}  // namespace

PatchIndex* PatchIndexManager::CreateIndex(const Table& table,
                                           std::size_t column,
                                           ConstraintKind constraint,
                                           PatchIndexOptions options) {
  // Discovery runs outside the registry lock; only the push_back races
  // with concurrent IndexesOn iterations.
  auto index = PatchIndex::Create(table, column, constraint, options);
  PatchIndex* handle = index.get();
  std::lock_guard<std::mutex> lock(mu_);
  indexes_.push_back(std::move(index));
  return handle;
}

PatchIndex* PatchIndexManager::Register(std::unique_ptr<PatchIndex> index) {
  PatchIndex* handle = index.get();
  std::lock_guard<std::mutex> lock(mu_);
  indexes_.push_back(std::move(index));
  return handle;
}

std::vector<PatchIndex*> PatchIndexManager::CreatePartitionedIndex(
    const PartitionedTable& table, std::size_t column,
    ConstraintKind constraint, PatchIndexOptions options) {
  // Discovery + creation are independent per partition: run them on the
  // pool and register the results in partition order afterwards.
  std::vector<std::unique_ptr<PatchIndex>> created(table.num_partitions());
  ThreadPool::Default().ParallelFor(
      table.num_partitions(), [&](std::size_t p) {
        created[p] = PatchIndex::Create(table.partition(p), column,
                                        constraint, options);
      });
  std::vector<PatchIndex*> handles;
  handles.reserve(created.size());
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& idx : created) {
    handles.push_back(idx.get());
    indexes_.push_back(std::move(idx));
  }
  return handles;
}

std::vector<PatchIndex*> PatchIndexManager::IndexesOn(
    const Table& table) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<PatchIndex*> out;
  for (const auto& idx : indexes_) {
    if (&idx->table() == &table) out.push_back(idx.get());
  }
  return out;
}

std::vector<const PatchIndex*> PatchIndexManager::FindIndexesOn(
    const Table& table) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<const PatchIndex*> out;
  for (const auto& idx : indexes_) {
    if (&idx->table() == &table) out.push_back(idx.get());
  }
  return out;
}

std::vector<std::shared_ptr<const PatchIndex>> PatchIndexManager::SharedIndexesOn(
    const Table& table) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::shared_ptr<const PatchIndex>> out;
  for (const auto& idx : indexes_) {
    if (&idx->table() == &table) out.push_back(idx);
  }
  return out;
}

std::vector<PatchIndex*> PatchIndexManager::IndexesOn(
    const PartitionedTable& table) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<PatchIndex*> out;
  for (const auto& idx : indexes_) {
    for (std::size_t p = 0; p < table.num_partitions(); ++p) {
      if (&idx->table() == &table.partition(p)) {
        out.push_back(idx.get());
        break;
      }
    }
  }
  return out;
}

std::size_t PatchIndexManager::DropIndexesOn(const Table& table) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::size_t before = indexes_.size();
  indexes_.erase(std::remove_if(indexes_.begin(), indexes_.end(),
                                [&table](const auto& idx) {
                                  return &idx->table() == &table;
                                }),
                 indexes_.end());
  return before - indexes_.size();
}

std::size_t PatchIndexManager::DropIndexesOn(const PartitionedTable& table) {
  std::size_t dropped = 0;
  for (std::size_t p = 0; p < table.num_partitions(); ++p) {
    dropped += DropIndexesOn(table.partition(p));
  }
  return dropped;
}

bool PatchIndexManager::DropIndex(PatchIndex* index) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = indexes_.begin(); it != indexes_.end(); ++it) {
    if (it->get() == index) {
      indexes_.erase(it);
      return true;
    }
  }
  return false;
}

Status PatchIndexManager::CommitValidated(Table& table) {
  const std::vector<PatchIndex*> affected = IndexesOn(table);
  // Phase one: constraint-specific handling against the pre-checkpoint
  // table + PDT. An index that fails here is broken (its patch state may
  // already reflect the delta) and sits out the rest of the protocol.
  std::vector<PatchIndex*> broken;
  Status first_error = Status::OK();
  for (PatchIndex* idx : affected) {
    Status st = idx->HandleUpdateQuery();
    if (!st.ok()) {
      broken.push_back(idx);
      if (first_error.ok()) first_error = st;
    }
  }
  // The data change itself always commits: surviving indexes ran their
  // handlers against exactly this delta, so the checkpoint is what keeps
  // them consistent.
  table.Checkpoint();
  // Phase two: post-checkpoint maintenance on the survivors. A failure
  // here used to return early, leaving every later index silently stale
  // against the already-checkpointed table — instead, finish the loop and
  // collect the failures.
  for (PatchIndex* idx : affected) {
    if (std::find(broken.begin(), broken.end(), idx) != broken.end()) {
      continue;
    }
    Status st = idx->AfterCheckpoint();
    if (!st.ok()) {
      broken.push_back(idx);
      if (first_error.ok()) first_error = st;
    }
  }
  if (broken.empty()) return Status::OK();
  // All-or-nothing per index: a broken index is removed entirely so no
  // stale index remains registered. The status surfaces what happened —
  // the table update is committed, the named indexes are gone.
  for (PatchIndex* idx : broken) DropIndex(idx);
  return Status::ConstraintViolation(
      "update committed, but index maintenance failed; dropped " +
      std::to_string(broken.size()) + " patch index(es): " +
      first_error.message());
}

Status PatchIndexManager::CommitUpdateQuery(Table& table) {
  PIDX_RETURN_NOT_OK(ValidateSingleDeltaKind(table.pdt()));
  return CommitValidated(table);
}

Status PatchIndexManager::CommitUpdateQuery(PartitionedTable& table,
                                            ThreadPool* pool) {
  // Validate every dirty partition before committing any: a mixed-kind
  // PDT in one partition must not leave sibling partitions committed.
  std::vector<std::size_t> dirty;
  for (std::size_t p = 0; p < table.num_partitions(); ++p) {
    if (table.partition(p).pdt().empty()) continue;
    PIDX_RETURN_NOT_OK(ValidateSingleDeltaKind(table.partition(p).pdt()));
    dirty.push_back(p);
  }
  if (dirty.empty()) return Status::OK();

  std::vector<Status> results(dirty.size(), Status::OK());
  if (pool != nullptr && dirty.size() > 1) {
    // Partition-local commit in parallel: indexes are per partition, so
    // the protocols never touch shared index state; the registry's own
    // lock covers IndexesOn/DropIndex.
    std::vector<std::future<void>> futures;
    futures.reserve(dirty.size());
    for (std::size_t i = 0; i < dirty.size(); ++i) {
      futures.push_back(pool->SubmitWithFuture([this, &table, &results,
                                                &dirty, i] {
        results[i] = CommitValidated(table.partition(dirty[i]));
      }));
    }
    for (auto& f : futures) f.get();
  } else {
    for (std::size_t i = 0; i < dirty.size(); ++i) {
      results[i] = CommitValidated(table.partition(dirty[i]));
    }
  }
  for (std::size_t i = 0; i < dirty.size(); ++i) {
    if (!results[i].ok()) {
      return Status::ConstraintViolation(
          "partition " + std::to_string(dirty[i]) + ": " +
          results[i].message());
    }
  }
  return Status::OK();
}

}  // namespace patchindex
