#include "patchindex/manager.h"

#include "common/thread_pool.h"

namespace patchindex {

PatchIndex* PatchIndexManager::CreateIndex(const Table& table,
                                           std::size_t column,
                                           ConstraintKind constraint,
                                           PatchIndexOptions options) {
  indexes_.push_back(PatchIndex::Create(table, column, constraint, options));
  return indexes_.back().get();
}

std::vector<PatchIndex*> PatchIndexManager::CreatePartitionedIndex(
    const PartitionedTable& table, std::size_t column,
    ConstraintKind constraint, PatchIndexOptions options) {
  // Discovery + creation are independent per partition: run them on the
  // pool and register the results in partition order afterwards.
  std::vector<std::unique_ptr<PatchIndex>> created(table.num_partitions());
  ThreadPool::Default().ParallelFor(
      table.num_partitions(), [&](std::size_t p) {
        created[p] = PatchIndex::Create(table.partition(p), column,
                                        constraint, options);
      });
  std::vector<PatchIndex*> handles;
  handles.reserve(created.size());
  for (auto& idx : created) {
    handles.push_back(idx.get());
    indexes_.push_back(std::move(idx));
  }
  return handles;
}

std::vector<PatchIndex*> PatchIndexManager::IndexesOn(
    const Table& table) const {
  std::vector<PatchIndex*> out;
  for (const auto& idx : indexes_) {
    if (&idx->table() == &table) out.push_back(idx.get());
  }
  return out;
}

Status PatchIndexManager::CommitUpdateQuery(Table& table) {
  const std::vector<PatchIndex*> affected = IndexesOn(table);
  for (PatchIndex* idx : affected) {
    PIDX_RETURN_NOT_OK(idx->HandleUpdateQuery());
  }
  table.Checkpoint();
  for (PatchIndex* idx : affected) {
    PIDX_RETURN_NOT_OK(idx->AfterCheckpoint());
  }
  return Status::OK();
}

}  // namespace patchindex
