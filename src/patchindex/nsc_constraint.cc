#include "patchindex/nsc_constraint.h"

#include <vector>

#include "patchindex/discovery.h"

namespace patchindex::internal {

Status NscHandleInsert(const Table& table, std::size_t column, bool ascending,
                       PatchSet* patches, std::int64_t* tail,
                       bool* has_tail) {
  const auto& inserts = table.pdt().inserts();
  if (inserts.empty()) return Status::OK();
  const RowId first_rowid = table.num_rows() - table.pdt().deletes().size();

  // Candidates: inserted values that can extend the existing subsequence
  // (>= tail for ascending order, <= tail for descending). The rest are
  // patches immediately.
  std::vector<std::int64_t> candidate_values;
  std::vector<RowId> candidate_rowids;
  for (std::size_t i = 0; i < inserts.size(); ++i) {
    const std::int64_t v = inserts[i].cells[column].AsInt64();
    const RowId rid = first_rowid + i;
    const bool extends =
        !*has_tail || (ascending ? v >= *tail : v <= *tail);
    if (extends) {
      candidate_values.push_back(v);
      candidate_rowids.push_back(rid);
    } else {
      patches->MarkPatch(rid);
    }
  }
  if (candidate_values.empty()) return Status::OK();

  // Longest sorted subsequence over the candidates (same algorithm as
  // discovery, Fredman [12]); non-members become patches.
  const std::vector<std::size_t> keep =
      LongestSortedSubsequence(candidate_values, ascending);
  std::size_t ki = 0;
  for (std::size_t i = 0; i < candidate_values.size(); ++i) {
    if (ki < keep.size() && keep[ki] == i) {
      ++ki;
    } else {
      patches->MarkPatch(candidate_rowids[i]);
    }
  }
  *tail = candidate_values[keep.back()];
  *has_tail = true;
  return Status::OK();
}

Status NscHandleModify(const Table& table, std::size_t column,
                       PatchSet* patches) {
  for (const auto& [row, cols] : table.pdt().modifies()) {
    if (cols.find(column) != cols.end()) {
      patches->MarkPatch(row);
    }
  }
  // The tracked tail value is left unchanged. If the tail tuple itself was
  // modified (and is now a patch), the stale tail is >= the real tail of
  // the remaining subsequence for ascending order, so future inserts are
  // filtered conservatively: extra patches possible, incorrect results
  // impossible.
  return Status::OK();
}

}  // namespace patchindex::internal
