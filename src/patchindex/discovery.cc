#include "patchindex/discovery.h"

#include <algorithm>
#include <unordered_map>

#include "common/check.h"

namespace patchindex {

std::vector<RowId> DiscoverNucPatches(const Column& column) {
  PIDX_CHECK(column.type() == ColumnType::kInt64);
  const auto& data = column.i64_data();
  // First pass: count occurrences. Second pass: every row whose value is
  // duplicated is a patch (all occurrences, not all-but-one — see header).
  std::unordered_map<std::int64_t, std::uint32_t> counts;
  counts.reserve(data.size());
  for (std::int64_t v : data) ++counts[v];
  std::vector<RowId> patches;
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (counts[data[i]] > 1) patches.push_back(i);
  }
  return patches;  // ascending by construction
}

NccDiscovery DiscoverNccPatches(const Column& column) {
  PIDX_CHECK(column.type() == ColumnType::kInt64);
  const auto& data = column.i64_data();
  NccDiscovery out;
  if (data.empty()) return out;
  std::unordered_map<std::int64_t, std::uint64_t> counts;
  counts.reserve(data.size());
  for (std::int64_t v : data) ++counts[v];
  std::uint64_t best_count = 0;
  for (const auto& [v, c] : counts) {
    if (c > best_count || (c == best_count && v < out.constant)) {
      out.constant = v;
      best_count = c;
    }
  }
  out.has_constant = true;
  out.patches.reserve(data.size() - best_count);
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (data[i] != out.constant) out.patches.push_back(i);
  }
  return out;
}

std::vector<std::size_t> LongestSortedSubsequence(
    const std::vector<std::int64_t>& values, bool ascending) {
  // Patience sorting over (possibly negated) values; non-decreasing runs
  // are allowed, so ties extend the subsequence (upper_bound).
  const std::size_t n = values.size();
  std::vector<std::size_t> pile_tail_idx;  // index of smallest tail per length
  std::vector<std::int64_t> pile_tail_val;
  std::vector<std::size_t> prev(n, static_cast<std::size_t>(-1));
  auto key = [&](std::size_t i) {
    return ascending ? values[i] : -values[i];
  };
  for (std::size_t i = 0; i < n; ++i) {
    const std::int64_t v = key(i);
    const auto it =
        std::upper_bound(pile_tail_val.begin(), pile_tail_val.end(), v);
    const std::size_t pos =
        static_cast<std::size_t>(it - pile_tail_val.begin());
    if (pos > 0) prev[i] = pile_tail_idx[pos - 1];
    if (pos == pile_tail_val.size()) {
      pile_tail_val.push_back(v);
      pile_tail_idx.push_back(i);
    } else {
      pile_tail_val[pos] = v;
      pile_tail_idx[pos] = i;
    }
  }
  std::vector<std::size_t> result;
  if (pile_tail_idx.empty()) return result;
  result.reserve(pile_tail_idx.size());
  for (std::size_t i = pile_tail_idx.back(); i != static_cast<std::size_t>(-1);
       i = prev[i]) {
    result.push_back(i);
  }
  std::reverse(result.begin(), result.end());
  return result;
}

NscDiscovery DiscoverNscPatches(const Column& column, bool ascending) {
  PIDX_CHECK(column.type() == ColumnType::kInt64);
  const auto& data = column.i64_data();
  NscDiscovery out;
  if (data.empty()) return out;
  const std::vector<std::size_t> keep =
      LongestSortedSubsequence(data, ascending);
  out.tail_value = data[keep.back()];
  out.has_tail = true;
  out.patches.reserve(data.size() - keep.size());
  std::size_t ki = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (ki < keep.size() && keep[ki] == i) {
      ++ki;
    } else {
      out.patches.push_back(i);
    }
  }
  return out;
}

}  // namespace patchindex
