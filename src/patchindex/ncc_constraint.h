#ifndef PATCHINDEX_PATCHINDEX_NCC_CONSTRAINT_H_
#define PATCHINDEX_PATCHINDEX_NCC_CONSTRAINT_H_

#include <cstddef>
#include <cstdint>

#include "common/status.h"
#include "patchindex/patch_set.h"
#include "storage/table.h"

namespace patchindex::internal {

/// Nearly-constant-column update handling (the §7 future-work extension,
/// plugged in via the generic §5.5 design; companion to the NUC/NSC units).
///
/// Insert handling needs only a local view of the delta: a value equal to
/// the materialized constant satisfies the constraint, anything else is a
/// patch. An insert into an empty table defines the constant. `patches`
/// must already have been grown by OnAppendRows; `constant`/`has_constant`
/// are updated in place.
Status NccHandleInsert(const Table& table, std::size_t column,
                       PatchSet* patches, std::int64_t* constant,
                       bool* has_constant);

/// Modify handling: a modified value that still equals the constant
/// satisfies the constraint; everything else joins the patches. A patch
/// row modified back to the constant stays a patch (optimality loss, like
/// NUC deletes — never a wrong result: the NCC distinct plan deduplicates
/// the constant out of the patches branch).
Status NccHandleModify(const Table& table, std::size_t column,
                       PatchSet* patches, std::int64_t constant);

}  // namespace patchindex::internal

#endif  // PATCHINDEX_PATCHINDEX_NCC_CONSTRAINT_H_
