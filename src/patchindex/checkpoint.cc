#include "patchindex/checkpoint.h"

#include <cstdio>
#include <cstring>
#include <vector>

namespace patchindex {

namespace {

constexpr char kMagic[8] = {'P', 'I', 'D', 'X', 'C', 'K', 'P', '1'};

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

template <typename T>
void PutOne(std::string* out, const T& v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
bool ReadOne(std::FILE* f, T* v) {
  return std::fread(v, sizeof(T), 1, f) == 1;
}

}  // namespace

Status SavePatchIndexCheckpoint(const PatchIndex& index,
                                const std::string& path,
                                const FaultHook& hook) {
  // Serialize into memory, then write + fsync through DurableFile so the
  // crash-injection harness covers this path ("pidx_ckpt.*" points). The
  // byte format is unchanged from the historical fwrite-based writer.
  const PatchIndexState state = index.ExportState();
  std::string buf;
  buf.append(kMagic, sizeof(kMagic));
  PutOne(&buf, static_cast<std::uint8_t>(state.constraint));
  PutOne(&buf, static_cast<std::uint64_t>(state.column));
  PutOne(&buf, static_cast<std::uint8_t>(index.patches().design()));
  PutOne(&buf, static_cast<std::uint8_t>(index.ascending()));
  PutOne(&buf, static_cast<std::uint8_t>(state.has_tail));
  PutOne(&buf, state.tail_value);
  PutOne(&buf, static_cast<std::uint8_t>(state.has_constant));
  PutOne(&buf, state.constant_value);
  PutOne(&buf, state.num_rows);
  PutOne(&buf, static_cast<std::uint64_t>(state.patches.size()));
  // Delta encoding keeps the file small for clustered patches.
  std::uint64_t prev = 0;
  for (std::size_t i = 0; i < state.patches.size(); ++i) {
    const std::uint64_t delta = i == 0 ? state.patches[0]
                                       : state.patches[i] - prev;
    prev = state.patches[i];
    PutOne(&buf, delta);
  }
  auto f = DurableFile::Create(path, hook);
  if (!f.ok()) return f.status();
  PIDX_RETURN_NOT_OK(f.value().Append("pidx_ckpt.write", buf.data(),
                                      buf.size()));
  return f.value().Fsync("pidx_ckpt.fsync");
}

Result<std::unique_ptr<PatchIndex>> LoadPatchIndexCheckpoint(
    const std::string& path, const Table& table, PatchIndexOptions options) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) {
    return Status::NotFound("checkpoint file not found: " + path);
  }
  char magic[8];
  if (std::fread(magic, sizeof(magic), 1, f.get()) != 1 ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("not a PatchIndex checkpoint: " + path);
  }
  PatchIndexState state;
  std::uint8_t constraint_u8 = 0, design_u8 = 0, ascending_u8 = 0,
               has_tail_u8 = 0, has_constant_u8 = 0;
  std::uint64_t column_u64 = 0, num_patches = 0;
  bool ok = ReadOne(f.get(), &constraint_u8);
  ok = ok && ReadOne(f.get(), &column_u64);
  ok = ok && ReadOne(f.get(), &design_u8);
  ok = ok && ReadOne(f.get(), &ascending_u8);
  ok = ok && ReadOne(f.get(), &has_tail_u8);
  ok = ok && ReadOne(f.get(), &state.tail_value);
  ok = ok && ReadOne(f.get(), &has_constant_u8);
  ok = ok && ReadOne(f.get(), &state.constant_value);
  ok = ok && ReadOne(f.get(), &state.num_rows);
  ok = ok && ReadOne(f.get(), &num_patches);
  if (!ok || constraint_u8 > 2 || design_u8 > 1) {
    return Status::InvalidArgument("corrupted checkpoint header: " + path);
  }
  if (num_patches > state.num_rows) {
    return Status::InvalidArgument("corrupted checkpoint: more patches "
                                   "than rows");
  }
  state.constraint = static_cast<ConstraintKind>(constraint_u8);
  state.column = static_cast<std::size_t>(column_u64);
  state.has_tail = has_tail_u8 != 0;
  state.has_constant = has_constant_u8 != 0;
  options.design = static_cast<PatchSetDesign>(design_u8);
  options.ascending = ascending_u8 != 0;

  state.patches.reserve(num_patches);
  std::uint64_t pos = 0;
  for (std::uint64_t i = 0; i < num_patches; ++i) {
    std::uint64_t delta = 0;
    if (!ReadOne(f.get(), &delta)) {
      return Status::InvalidArgument("truncated checkpoint: " + path);
    }
    pos = i == 0 ? delta : pos + delta;
    state.patches.push_back(pos);
  }
  return PatchIndex::Restore(table, state, options);
}

}  // namespace patchindex
