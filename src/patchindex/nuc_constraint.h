#ifndef PATCHINDEX_PATCHINDEX_NUC_CONSTRAINT_H_
#define PATCHINDEX_PATCHINDEX_NUC_CONSTRAINT_H_

#include <cstddef>

#include "common/status.h"
#include "patchindex/patch_set.h"
#include "storage/minmax.h"
#include "storage/table.h"

namespace patchindex::internal {

/// Nearly-unique-column update handling (paper §5.1/§5.2, Figure 5).
///
/// Runs the insert/modify handling query: the delta tuples (PDT inserts,
/// or the modified tuples) are joined against the visible table on the
/// indexed column; rowIDs of both join sides — excluding the tuple's
/// trivial match with itself — are merged into the patches. The hash
/// table is built on the delta (lowest cardinality); its key range is
/// propagated dynamically into the probe-side scan to avoid the full
/// table scan. Intermediate result caching (Reuse operators) avoids
/// computing the join twice for the two rowID projections.
///
/// For inserts, `patches` must already have been grown by OnAppendRows.
/// `minmax` may be null (DRP disabled -> full scan). `scan_fraction`
/// receives the fraction of base rows actually scanned.
Status NucHandleInsert(const Table& table, std::size_t column,
                       const MinMaxIndex* minmax, PatchSet* patches,
                       double* scan_fraction);

/// Modify handling: same query shape with the modified tuples (new
/// values) as build side. `minmax` (if present) must already have been
/// widened for the new values so DRP cannot prune blocks containing them.
Status NucHandleModify(const Table& table, std::size_t column,
                       const MinMaxIndex* minmax, PatchSet* patches,
                       double* scan_fraction);

}  // namespace patchindex::internal

#endif  // PATCHINDEX_PATCHINDEX_NUC_CONSTRAINT_H_
