#ifndef PATCHINDEX_PATCHINDEX_CHECKPOINT_H_
#define PATCHINDEX_PATCHINDEX_CHECKPOINT_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "patchindex/patch_index.h"
#include "storage/fault_fs.h"

namespace patchindex {

/// PatchIndex persistence (paper §3.4): PatchIndexes are main-memory
/// structures and are normally *recreated* after a restart to keep the
/// log slim; "alternatively, the PatchIndex information can be persisted
/// to disk as a checkpoint". This module implements that alternative:
/// a small binary file holding the constraint metadata and the patch
/// rowIDs (run-length friendly: rowIDs are delta-encoded).
///
/// Format (little endian): magic "PIDXCKP1", then
///   u8 constraint, u64 column, u8 design, u8 ascending,
///   u8 has_tail, i64 tail, u8 has_constant, i64 constant,
///   u64 num_rows, u64 num_patches, u64 deltas[num_patches]
/// where deltas[0] is the first patch rowID and deltas[i] the distance to
/// the previous one.
/// `hook` injects write/fsync faults at the "pidx_ckpt.write" and
/// "pidx_ckpt.fsync" crash points (storage/fault_fs.h); the engine's
/// checkpoint path passes DurabilityOptions::fault_hook through.
Status SavePatchIndexCheckpoint(const PatchIndex& index,
                                const std::string& path,
                                const FaultHook& hook = nullptr);

/// Restores an index from a checkpoint against `table`. Fails with
/// kInvalidArgument on format errors and with kConstraintViolation when
/// the checkpointed cardinality does not match the table (the table
/// changed after the checkpoint; per §3.4 the caller must then replay the
/// logged updates or recreate the index).
Result<std::unique_ptr<PatchIndex>> LoadPatchIndexCheckpoint(
    const std::string& path, const Table& table,
    PatchIndexOptions options = {});

}  // namespace patchindex

#endif  // PATCHINDEX_PATCHINDEX_CHECKPOINT_H_
