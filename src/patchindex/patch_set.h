#ifndef PATCHINDEX_PATCHINDEX_PATCH_SET_H_
#define PATCHINDEX_PATCHINDEX_PATCH_SET_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "bitmap/sharded_bitmap.h"
#include "common/types.h"
#include "exec/row_filter.h"

namespace patchindex {

/// The two PatchIndex design approaches of the paper (§3.2).
enum class PatchSetDesign {
  /// One bit per tuple in a sharded bitmap: dense storage, constant memory
  /// (t/8 · 1.0039 bytes), cheaper for exception rates above ~1/64.
  kBitmap,
  /// Sorted list of 64-bit rowIDs: sparse storage, e·t·8 bytes, cheaper
  /// for very low exception rates.
  kIdentifier,
};

/// Materialized set of exceptions ("patches") to an approximate
/// constraint, identified by rowID. Supports the table-update hooks the
/// paper's §5 mechanisms need: appending rows (table grew), bulk-deleting
/// rows (table shrank — tracking information about deleted tuples is
/// simply dropped), and marking new patches.
class PatchSet : public RowIdFilter {
 public:
  /// Marks `row` as a patch (idempotent).
  virtual void MarkPatch(RowId row) = 0;

  /// The table grew by `count` rows (none of them patches yet).
  virtual void OnAppendRows(std::uint64_t count) = 0;

  /// The given rows (sorted, unique, pre-delete rowIDs) were deleted from
  /// the table: drop their tracking info and shift subsequent rowIDs down.
  virtual void OnDeleteRows(const std::vector<RowId>& sorted_rows) = 0;

  /// All patch rowIDs, ascending.
  virtual std::vector<RowId> PatchRowIds() const = 0;

  virtual std::uint64_t MemoryUsageBytes() const = 0;
  virtual PatchSetDesign design() const = 0;

  double exception_rate() const {
    const std::uint64_t n = NumRows();
    return n == 0 ? 0.0 : static_cast<double>(NumPatches()) / n;
  }

  static std::unique_ptr<PatchSet> Create(PatchSetDesign design,
                                          std::uint64_t num_rows,
                                          ShardedBitmapOptions options = {});

  /// Deep copy: a fresh set of the same design and cardinality with every
  /// patch re-marked, O(patches). Used to freeze index state into an MVCC
  /// version snapshot (the sharded bitmap is not copyable).
  std::unique_ptr<PatchSet> Clone(ShardedBitmapOptions options = {}) const;
};

/// Bitmap-based design: bit i set <=> row i is a patch. Deletes map to the
/// sharded bitmap's (bulk) delete, so they stay shard-local.
class BitmapPatchSet : public PatchSet {
 public:
  explicit BitmapPatchSet(std::uint64_t num_rows,
                          ShardedBitmapOptions options = {});

  std::uint64_t NumRows() const override { return bitmap_.size(); }
  std::uint64_t NumPatches() const override { return num_patches_; }
  bool IsPatch(RowId row) const override { return bitmap_.Get(row); }
  void ForEachPatchInRange(
      RowId begin, RowId end,
      const std::function<void(RowId)>& fn) const override {
    bitmap_.ForEachSetBitInRange(begin, end, fn);
  }
  void MarkPatch(RowId row) override;
  void OnAppendRows(std::uint64_t count) override { bitmap_.Append(count); }
  void OnDeleteRows(const std::vector<RowId>& sorted_rows) override;
  std::vector<RowId> PatchRowIds() const override {
    return bitmap_.SetBitPositions();
  }
  std::uint64_t MemoryUsageBytes() const override {
    return bitmap_.MemoryUsageBytes();
  }
  PatchSetDesign design() const override { return PatchSetDesign::kBitmap; }

  const ShardedBitmap& bitmap() const { return bitmap_; }

 private:
  ShardedBitmap bitmap_;
  std::uint64_t num_patches_ = 0;
};

/// Identifier-based design: a sorted vector of 64-bit rowIDs. A delete
/// decrements every identifier behind it while walking the list once
/// (paper §5.3).
class IdentifierPatchSet : public PatchSet {
 public:
  explicit IdentifierPatchSet(std::uint64_t num_rows) : num_rows_(num_rows) {}

  std::uint64_t NumRows() const override { return num_rows_; }
  std::uint64_t NumPatches() const override { return ids_.size(); }
  bool IsPatch(RowId row) const override;
  void ForEachPatchInRange(
      RowId begin, RowId end,
      const std::function<void(RowId)>& fn) const override;
  void MarkPatch(RowId row) override;
  void OnAppendRows(std::uint64_t count) override { num_rows_ += count; }
  void OnDeleteRows(const std::vector<RowId>& sorted_rows) override;
  std::vector<RowId> PatchRowIds() const override { return ids_; }
  std::uint64_t MemoryUsageBytes() const override {
    return ids_.capacity() * sizeof(RowId);
  }
  PatchSetDesign design() const override {
    return PatchSetDesign::kIdentifier;
  }

 private:
  std::vector<RowId> ids_;  // sorted ascending
  std::uint64_t num_rows_;
};

}  // namespace patchindex

#endif  // PATCHINDEX_PATCHINDEX_PATCH_SET_H_
