#include "patchindex/patch_index.h"

#include <unordered_map>
#include <utility>

#include "common/check.h"
#include "patchindex/discovery.h"
#include "patchindex/ncc_constraint.h"
#include "patchindex/nsc_constraint.h"
#include "patchindex/nuc_constraint.h"

namespace patchindex {

PatchIndex::PatchIndex(const Table& table, std::size_t column,
                       ConstraintKind kind, PatchIndexOptions options)
    : table_(&table),
      column_(column),
      constraint_(kind),
      options_(options) {}

std::unique_ptr<PatchIndex> PatchIndex::Create(const Table& table,
                                               std::size_t column,
                                               ConstraintKind constraint,
                                               PatchIndexOptions options) {
  PIDX_CHECK_MSG(table.pdt().empty(),
                 "PatchIndex creation requires a checkpointed table");
  PIDX_CHECK(column < table.schema().num_fields());
  PIDX_CHECK_MSG(table.schema().field(column).type == ColumnType::kInt64,
                 "approximate constraints are defined over INT64 columns");
  auto index = std::unique_ptr<PatchIndex>(
      new PatchIndex(table, column, constraint, options));
  Status st = index->Recompute();
  PIDX_CHECK_MSG(st.ok(), st.ToString().c_str());
  return index;
}

Result<std::unique_ptr<PatchIndex>> PatchIndex::Restore(
    const Table& table, const PatchIndexState& state,
    PatchIndexOptions options) {
  if (state.column >= table.schema().num_fields()) {
    return Status::InvalidArgument("checkpoint column out of range");
  }
  if (state.num_rows != table.num_rows() || !table.pdt().empty()) {
    return Status::ConstraintViolation(
        "checkpoint cardinality does not match the table; replay the log "
        "or recreate the index");
  }
  auto index = std::unique_ptr<PatchIndex>(
      new PatchIndex(table, state.column, state.constraint, options));
  index->patches_ = PatchSet::Create(options.design, state.num_rows,
                                     options.bitmap_options);
  for (RowId r : state.patches) {
    if (r >= state.num_rows) {
      return Status::InvalidArgument("checkpoint patch rowID out of range");
    }
    index->patches_->MarkPatch(r);
  }
  index->tail_value_ = state.tail_value;
  index->has_tail_ = state.has_tail;
  index->constant_value_ = state.constant_value;
  index->has_constant_ = state.has_constant;
  if (state.constraint == ConstraintKind::kNearlyUnique &&
      options.use_dynamic_range_propagation) {
    index->minmax_ = std::make_unique<MinMaxIndex>(
        table.column(state.column), options.minmax_block_size);
    index->minmax_version_ = table.version();
  }
  return index;
}

std::unique_ptr<PatchIndex> PatchIndex::CloneForSnapshot(
    const Table& table) const {
  PIDX_CHECK(table.num_rows() == table_->num_rows());
  auto clone = std::unique_ptr<PatchIndex>(
      new PatchIndex(table, column_, constraint_, options_));
  clone->options_.maintenance_fault_hook = nullptr;  // snapshots never commit
  clone->patches_ = patches_->Clone(options_.bitmap_options);
  clone->tail_value_ = tail_value_;
  clone->has_tail_ = has_tail_;
  clone->constant_value_ = constant_value_;
  clone->has_constant_ = has_constant_;
  if (minmax_ != nullptr) {
    clone->minmax_ = std::make_unique<MinMaxIndex>(*minmax_);
    clone->minmax_version_ = minmax_version_;
  }
  clone->last_scan_fraction_ = last_scan_fraction_;
  return clone;
}

PatchIndexState PatchIndex::ExportState() const {
  PatchIndexState state;
  state.constraint = constraint_;
  state.column = column_;
  state.num_rows = patches_->NumRows();
  state.patches = patches_->PatchRowIds();
  state.has_tail = has_tail_;
  state.tail_value = tail_value_;
  state.has_constant = has_constant_;
  state.constant_value = constant_value_;
  return state;
}

Status PatchIndex::Recompute() {
  const Column& col = table_->column(column_);
  patches_ = PatchSet::Create(options_.design, col.size(),
                              options_.bitmap_options);
  switch (constraint_) {
    case ConstraintKind::kNearlyUnique: {
      for (RowId r : DiscoverNucPatches(col)) patches_->MarkPatch(r);
      if (options_.use_dynamic_range_propagation) {
        minmax_ =
            std::make_unique<MinMaxIndex>(col, options_.minmax_block_size);
        minmax_version_ = table_->version();
      }
      break;
    }
    case ConstraintKind::kNearlySorted: {
      NscDiscovery d = DiscoverNscPatches(col, options_.ascending);
      for (RowId r : d.patches) patches_->MarkPatch(r);
      tail_value_ = d.tail_value;
      has_tail_ = d.has_tail;
      break;
    }
    case ConstraintKind::kNearlyConstant: {
      NccDiscovery d = DiscoverNccPatches(col);
      for (RowId r : d.patches) patches_->MarkPatch(r);
      constant_value_ = d.constant;
      has_constant_ = d.has_constant;
      break;
    }
  }
  return Status::OK();
}

void PatchIndex::EnsureMinMax() {
  if (!options_.use_dynamic_range_propagation) return;
  if (minmax_ == nullptr || minmax_version_ != table_->version()) {
    minmax_ =
        std::make_unique<MinMaxIndex>(table_->column(column_),
                                      options_.minmax_block_size);
    minmax_version_ = table_->version();
  }
}

Status PatchIndex::HandleUpdateQuery() {
  if (options_.maintenance_fault_hook) {
    PIDX_RETURN_NOT_OK(options_.maintenance_fault_hook("handle"));
  }
  const PositionalDelta& pdt = table_->pdt();
  const int kinds = (pdt.inserts().empty() ? 0 : 1) +
                    (pdt.deletes().empty() ? 0 : 1) +
                    (pdt.modifies().empty() ? 0 : 1);
  if (kinds == 0) return Status::OK();
  if (kinds > 1) {
    return Status::InvalidArgument(
        "update query must contain exactly one delta kind (one SQL "
        "statement inserts, modifies or deletes)");
  }
  if (!pdt.inserts().empty()) return HandleInsert();
  if (!pdt.modifies().empty()) return HandleModify();
  return HandleDelete();
}

Status PatchIndex::HandleInsert() {
  pending_ = PendingKind::kInsert;
  patches_->OnAppendRows(table_->pdt().inserts().size());
  switch (constraint_) {
    case ConstraintKind::kNearlyUnique:
      EnsureMinMax();
      return internal::NucHandleInsert(*table_, column_, minmax_.get(),
                                       patches_.get(), &last_scan_fraction_);
    case ConstraintKind::kNearlySorted:
      return internal::NscHandleInsert(*table_, column_, options_.ascending,
                                       patches_.get(), &tail_value_,
                                       &has_tail_);
    case ConstraintKind::kNearlyConstant:
      return internal::NccHandleInsert(*table_, column_, patches_.get(),
                                       &constant_value_, &has_constant_);
  }
  return Status::Internal("unknown constraint");
}

Status PatchIndex::HandleModify() {
  pending_ = PendingKind::kModify;
  switch (constraint_) {
    case ConstraintKind::kNearlyUnique:
      EnsureMinMax();
      if (minmax_ != nullptr) {
        // Widen block bounds to cover the new values before the handling
        // query runs, so DRP cannot prune blocks holding modified tuples.
        for (const auto& [row, cols] : table_->pdt().modifies()) {
          auto it = cols.find(column_);
          if (it != cols.end()) {
            minmax_->WidenForValue(row, it->second.AsInt64());
          }
        }
      }
      return internal::NucHandleModify(*table_, column_, minmax_.get(),
                                       patches_.get(), &last_scan_fraction_);
    case ConstraintKind::kNearlySorted:
      return internal::NscHandleModify(*table_, column_, patches_.get());
    case ConstraintKind::kNearlyConstant:
      return internal::NccHandleModify(*table_, column_, patches_.get(),
                                       constant_value_);
  }
  return Status::Internal("unknown constraint");
}

Status PatchIndex::HandleDelete() {
  // Both constraints: dropping tuples cannot violate uniqueness or
  // sortedness, so the tracking information is simply dropped (§5.3).
  pending_ = PendingKind::kDelete;
  patches_->OnDeleteRows(table_->pdt().deletes());
  return Status::OK();
}

Status PatchIndex::AfterCheckpoint() {
  if (options_.maintenance_fault_hook) {
    PIDX_RETURN_NOT_OK(options_.maintenance_fault_hook("after"));
  }
  switch (pending_) {
    case PendingKind::kInsert:
      if (minmax_ != nullptr) {
        minmax_->ExtendFromColumn(table_->column(column_));
        minmax_version_ = table_->version();
      }
      break;
    case PendingKind::kModify:
      // Minmax bounds were widened during handling; still valid.
      minmax_version_ = table_->version();
      break;
    case PendingKind::kDelete:
      // Block-to-row assignment shifted; rebuild lazily on next use.
      minmax_.reset();
      break;
    case PendingKind::kNone:
      break;
  }
  pending_ = PendingKind::kNone;
  if (exception_rate() > options_.recompute_threshold) {
    return Recompute();
  }
  return Status::OK();
}

bool PatchIndex::CheckInvariant() const {
  const Column& col = table_->column(column_);
  if (patches_->NumRows() != col.size()) return false;
  if (constraint_ == ConstraintKind::kNearlyUnique) {
    // Invariant behind the Figure 2 distinct decomposition: a non-patch
    // row's value occurs nowhere else in the column (neither at another
    // non-patch row nor at a patch row).
    std::unordered_map<std::int64_t, std::uint32_t> counts;
    for (RowId r = 0; r < col.size(); ++r) ++counts[col.GetInt64(r)];
    for (RowId r = 0; r < col.size(); ++r) {
      if (!patches_->IsPatch(r) && counts[col.GetInt64(r)] != 1) return false;
    }
    return true;
  }
  if (constraint_ == ConstraintKind::kNearlyConstant) {
    for (RowId r = 0; r < col.size(); ++r) {
      if (!patches_->IsPatch(r) && col.GetInt64(r) != constant_value_) {
        return false;
      }
    }
    return true;
  }
  bool first = true;
  std::int64_t prev = 0;
  for (RowId r = 0; r < col.size(); ++r) {
    if (patches_->IsPatch(r)) continue;
    const std::int64_t v = col.GetInt64(r);
    if (!first) {
      if (options_.ascending ? v < prev : v > prev) return false;
    }
    prev = v;
    first = false;
  }
  return true;
}

}  // namespace patchindex
