#ifndef PATCHINDEX_PATCHINDEX_PATCH_INDEX_H_
#define PATCHINDEX_PATCHINDEX_PATCH_INDEX_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/status.h"
#include "exec/row_filter.h"
#include "patchindex/patch_set.h"
#include "storage/minmax.h"
#include "storage/table.h"

namespace patchindex {

/// The approximate constraints supported out of the box (paper §3.1); the
/// structure is generic — further constraints plug in via the same
/// PatchSet + update-handler shape (§5.5).
enum class ConstraintKind {
  kNearlyUnique,    // NUC
  kNearlySorted,    // NSC
  kNearlyConstant,  // NCC — the §7 future-work extension, demonstrating
                    // the §5.5 expandability of the generic design
};

struct PatchIndexOptions {
  PatchSetDesign design = PatchSetDesign::kBitmap;
  ShardedBitmapOptions bitmap_options;

  /// NSC only: the materialized sort order.
  bool ascending = true;

  /// NUC only: use dynamic range propagation over a minmax index to avoid
  /// the full table scan in the insert/modify handling query (§5.1). The
  /// Fig. 5 query still works without it — it just scans everything.
  bool use_dynamic_range_propagation = true;
  std::uint64_t minmax_block_size = 1024;

  /// When the exception rate exceeds this threshold after an update, the
  /// index is globally recomputed (the paper suggests this as the answer
  /// to the gradual optimality loss of §5.1/§5.3). 1.0 disables it.
  double recompute_threshold = 1.0;

  /// Test support: invoked at the start of HandleUpdateQuery (phase
  /// "handle") and AfterCheckpoint (phase "after"); a non-OK return is
  /// surfaced as that phase's failure. Lets tests drive the commit
  /// protocol's partial-failure handling (broken indexes must be dropped,
  /// never left stale) without corrupting real constraint state.
  std::function<Status(const char* phase)> maintenance_fault_hook;
};

/// Snapshot of a PatchIndex's materialized state, used by checkpoint
/// persistence (§3.4).
struct PatchIndexState {
  ConstraintKind constraint = ConstraintKind::kNearlyUnique;
  std::size_t column = 0;
  std::uint64_t num_rows = 0;
  std::vector<RowId> patches;  // sorted ascending
  bool has_tail = false;       // NSC
  std::int64_t tail_value = 0;
  bool has_constant = false;   // NCC
  std::int64_t constant_value = 0;
};

/// A PatchIndex: materialized exceptions to an approximate constraint on
/// one column of one table (partition). Provides the RowIdFilter the
/// PatchIndex scan consumes, and the §5 update handling that keeps the
/// exception set consistent under insert/modify/delete queries without
/// index recomputation or full-table scans.
class PatchIndex : public RowIdFilter {
 public:
  /// Builds the index: runs constraint discovery over the column and
  /// materializes the patches. The table must have no pending deltas.
  static std::unique_ptr<PatchIndex> Create(const Table& table,
                                            std::size_t column,
                                            ConstraintKind constraint,
                                            PatchIndexOptions options = {});

  /// Restores an index from a checkpointed state without re-running
  /// discovery (§3.4). Fails when the state's cardinality does not match
  /// the table.
  static Result<std::unique_ptr<PatchIndex>> Restore(
      const Table& table, const PatchIndexState& state,
      PatchIndexOptions options = {});

  /// Snapshot of the materialized state (for checkpointing).
  PatchIndexState ExportState() const;

  /// Immutable copy bound to `table` (an MVCC snapshot of this index's
  /// table, with identical row cardinality): deep-copies the patch set
  /// and constraint state so the clone is unaffected by future updates to
  /// this index. Clones serve reads only — they never run the update
  /// protocol. Caller must hold the table's writer lock so the state
  /// copied is a committed one.
  std::unique_ptr<PatchIndex> CloneForSnapshot(const Table& table) const;

  // RowIdFilter:
  std::uint64_t NumRows() const override { return patches_->NumRows(); }
  std::uint64_t NumPatches() const override { return patches_->NumPatches(); }
  bool IsPatch(RowId row) const override { return patches_->IsPatch(row); }
  void ForEachPatchInRange(
      RowId begin, RowId end,
      const std::function<void(RowId)>& fn) const override {
    patches_->ForEachPatchInRange(begin, end, fn);
  }

  const PatchSet& patches() const { return *patches_; }
  ConstraintKind constraint() const { return constraint_; }
  std::size_t column() const { return column_; }
  const Table& table() const { return *table_; }
  double exception_rate() const { return patches_->exception_rate(); }
  bool ascending() const { return options_.ascending; }

  /// NSC: last value of the materialized sorted subsequence.
  std::int64_t tail_value() const { return tail_value_; }
  bool has_tail() const { return has_tail_; }

  /// NCC: the materialized constant (all non-patch rows hold it).
  std::int64_t constant_value() const { return constant_value_; }
  bool has_constant() const { return has_constant_; }

  /// Processes the update query currently buffered in the table's PDT
  /// (before Table::Checkpoint()). The PDT must contain exactly one kind
  /// of delta — one SQL statement inserts, modifies or deletes, never a
  /// mix (paper §5, Table 1).
  Status HandleUpdateQuery();

  /// Call after Table::Checkpoint(): maintains the minmax index
  /// incrementally and triggers a global recomputation if the exception
  /// rate crossed the configured threshold.
  Status AfterCheckpoint();

  /// Drops the patch set and re-runs discovery (the "global
  /// recomputation" escape hatch).
  Status Recompute();

  std::uint64_t MemoryUsageBytes() const {
    return patches_->MemoryUsageBytes();
  }

  /// Fraction of base rows the last NUC insert/modify handling query
  /// scanned (1.0 without DRP). Exposed for the DRP ablation.
  double last_handled_scan_fraction() const {
    return last_scan_fraction_;
  }

  /// Verifies the constraint invariant: the column restricted to non-patch
  /// rows satisfies the constraint (unique / sorted). O(n); test support.
  bool CheckInvariant() const;

 private:
  PatchIndex(const Table& table, std::size_t column, ConstraintKind kind,
             PatchIndexOptions options);

  Status HandleInsert();
  Status HandleModify();
  Status HandleDelete();
  void EnsureMinMax();

  const Table* table_;
  std::size_t column_;
  ConstraintKind constraint_;
  PatchIndexOptions options_;
  std::unique_ptr<PatchSet> patches_;

  // NSC state: tail of the materialized sorted subsequence.
  std::int64_t tail_value_ = 0;
  bool has_tail_ = false;

  // NCC state: the constant all non-patch rows hold.
  std::int64_t constant_value_ = 0;
  bool has_constant_ = false;

  // NUC state: minmax index over the column for DRP.
  std::unique_ptr<MinMaxIndex> minmax_;
  std::uint64_t minmax_version_ = 0;
  double last_scan_fraction_ = 1.0;

  // What the pending update query did (for AfterCheckpoint maintenance).
  enum class PendingKind { kNone, kInsert, kModify, kDelete };
  PendingKind pending_ = PendingKind::kNone;
};

}  // namespace patchindex

#endif  // PATCHINDEX_PATCHINDEX_PATCH_INDEX_H_
