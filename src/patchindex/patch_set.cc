#include "patchindex/patch_set.h"

#include <algorithm>

#include "common/check.h"

namespace patchindex {

std::unique_ptr<PatchSet> PatchSet::Create(PatchSetDesign design,
                                           std::uint64_t num_rows,
                                           ShardedBitmapOptions options) {
  if (design == PatchSetDesign::kBitmap) {
    return std::make_unique<BitmapPatchSet>(num_rows, options);
  }
  return std::make_unique<IdentifierPatchSet>(num_rows);
}

std::unique_ptr<PatchSet> PatchSet::Clone(ShardedBitmapOptions options) const {
  auto copy = Create(design(), NumRows(), options);
  ForEachPatchInRange(0, NumRows(),
                      [&copy](RowId r) { copy->MarkPatch(r); });
  return copy;
}

BitmapPatchSet::BitmapPatchSet(std::uint64_t num_rows,
                               ShardedBitmapOptions options)
    : bitmap_(num_rows, options) {}

void BitmapPatchSet::MarkPatch(RowId row) {
  PIDX_CHECK(row < bitmap_.size());
  if (!bitmap_.Get(row)) {
    bitmap_.Set(row);
    ++num_patches_;
  }
}

void BitmapPatchSet::OnDeleteRows(const std::vector<RowId>& sorted_rows) {
  for (RowId r : sorted_rows) {
    if (bitmap_.Get(r)) --num_patches_;
  }
  bitmap_.BulkDelete(sorted_rows);
}

bool IdentifierPatchSet::IsPatch(RowId row) const {
  return std::binary_search(ids_.begin(), ids_.end(), row);
}

void IdentifierPatchSet::ForEachPatchInRange(
    RowId begin, RowId end, const std::function<void(RowId)>& fn) const {
  for (auto it = std::lower_bound(ids_.begin(), ids_.end(), begin);
       it != ids_.end() && *it < end; ++it) {
    fn(*it);
  }
}

void IdentifierPatchSet::MarkPatch(RowId row) {
  PIDX_CHECK(row < num_rows_);
  auto it = std::lower_bound(ids_.begin(), ids_.end(), row);
  if (it != ids_.end() && *it == row) return;
  ids_.insert(it, row);  // keeping the list sorted is the cost the paper
                         // attributes to this design under inserts (§6.2.4)
}

void IdentifierPatchSet::OnDeleteRows(const std::vector<RowId>& sorted_rows) {
  // Single pass: drop deleted identifiers and decrement survivors by the
  // number of deleted rows with smaller rowIDs (paper §5.3).
  std::size_t write = 0;
  std::size_t di = 0;
  for (std::size_t read = 0; read < ids_.size(); ++read) {
    const RowId id = ids_[read];
    while (di < sorted_rows.size() && sorted_rows[di] < id) ++di;
    if (di < sorted_rows.size() && sorted_rows[di] == id) continue;  // dropped
    ids_[write++] = id - di;
  }
  ids_.resize(write);
  num_rows_ -= sorted_rows.size();
}

}  // namespace patchindex
