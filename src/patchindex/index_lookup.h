#ifndef PATCHINDEX_PATCHINDEX_INDEX_LOOKUP_H_
#define PATCHINDEX_PATCHINDEX_INDEX_LOOKUP_H_

#include <vector>

namespace patchindex {

class PatchIndex;
class Table;

/// Read-side index resolution, abstracted away from the live
/// PatchIndexManager so the optimizer can rewrite plans against either
/// the head registry (legacy locked reads, DML row-finding) or a pinned
/// MVCC table version's immutable index snapshots — the rewriter itself
/// never knows which. Implementations resolve by partition address:
/// whatever Table object the plan's scan nodes reference is the object
/// indexes are looked up on.
class IndexLookup {
 public:
  virtual ~IndexLookup() = default;

  /// Every index defined on `table` (one partition). The returned
  /// pointers must stay valid for the duration of the plan they are
  /// stitched into — the manager guarantees this via the caller's table
  /// lock, a pinned version via its epoch pin.
  virtual std::vector<const PatchIndex*> FindIndexesOn(
      const Table& table) const = 0;
};

}  // namespace patchindex

#endif  // PATCHINDEX_PATCHINDEX_INDEX_LOOKUP_H_
