#ifndef PATCHINDEX_CLIENT_CLIENT_H_
#define PATCHINDEX_CLIENT_CLIENT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "engine/engine.h"

namespace patchindex::net {

/// A prepared statement living on the server, identified by a wire id.
/// Obtained from PiClient::Prepare; executed with PiClient::Execute.
/// Valid for the lifetime of the connection that prepared it.
struct RemoteStatement {
  std::uint64_t id = 0;
  std::uint32_t num_params = 0;
};

/// A blocking TCP client for PiServer, mirroring the in-process Session
/// API: Sql / Prepare / Execute return the same QueryResult shape as
/// Session::Sql, so code (and the pisql shell) can swap one for the
/// other. Not thread-safe — one PiClient per thread, like one Session
/// per thread of a connection pool; distinct PiClients are independent.
///
/// Errors come back with the server's Status code and message intact
/// (including the "line L, column C" positions the SQL front end embeds),
/// plus the structured source position from the error frame via
/// last_error_line()/last_error_column().
///
/// A kUnavailable status means SERVER_BUSY (admission control) or a
/// dropped connection; the message distinguishes them. After a transport
/// error the connection is closed and every call fails until Connect is
/// called again.
class PiClient {
 public:
  PiClient() = default;
  ~PiClient();

  PiClient(const PiClient&) = delete;
  PiClient& operator=(const PiClient&) = delete;
  PiClient(PiClient&& other) noexcept;
  PiClient& operator=(PiClient&& other) noexcept;

  /// Connects and runs the protocol handshake. `host` is a hostname or
  /// numeric address ("127.0.0.1", "::1", "db.internal").
  Status Connect(const std::string& host, std::uint16_t port);

  /// One SQL statement, like Session::Sql: SELECTs return rows with
  /// column_names set, DML returns rows_affected.
  Result<QueryResult> Sql(std::string_view sql,
                          std::vector<Value> params = {});

  /// Parses and binds `sql` server-side for repeated execution.
  Result<RemoteStatement> Prepare(std::string_view sql);

  /// Runs a prepared statement with `params` bound to its placeholders.
  Result<QueryResult> Execute(const RemoteStatement& stmt,
                              std::vector<Value> params = {});

  /// Frees the server-side statement.
  Status CloseStatement(const RemoteStatement& stmt);

  /// Runs one pisql meta command (".tables", ".gen nuc t 1000", ...)
  /// server-side, returning its printable output.
  Result<std::string> Meta(const std::string& line);

  /// Sends Goodbye and closes the socket; safe to call when already
  /// closed. The destructor does the same.
  void Close();

  bool connected() const { return fd_ >= 0; }

  /// Structured source position of the last kError frame (0,0 when the
  /// error carried none). Reset by every request.
  std::uint32_t last_error_line() const { return last_error_line_; }
  std::uint32_t last_error_column() const { return last_error_column_; }

 private:
  Status SendRequest(std::uint8_t type, const std::string& payload);
  Result<QueryResult> ReadResultResponse();
  Status ReadResponse(std::uint8_t expect, std::string* payload);
  Status Fail(Status status);  // closes the socket, passes `status` on

  int fd_ = -1;
  std::uint32_t last_error_line_ = 0;
  std::uint32_t last_error_column_ = 0;
};

}  // namespace patchindex::net

#endif  // PATCHINDEX_CLIENT_CLIENT_H_
