#include "client/client.h"

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "server/wire.h"

namespace patchindex::net {

PiClient::~PiClient() { Close(); }

PiClient::PiClient(PiClient&& other) noexcept
    : fd_(other.fd_),
      last_error_line_(other.last_error_line_),
      last_error_column_(other.last_error_column_) {
  other.fd_ = -1;
}

PiClient& PiClient::operator=(PiClient&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    last_error_line_ = other.last_error_line_;
    last_error_column_ = other.last_error_column_;
    other.fd_ = -1;
  }
  return *this;
}

Status PiClient::Connect(const std::string& host, std::uint16_t port) {
  Close();
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_NUMERICSERV;
  addrinfo* res = nullptr;
  const std::string service = std::to_string(port);
  const int rc = ::getaddrinfo(host.c_str(), service.c_str(), &hints, &res);
  if (rc != 0) {
    return Status::Unavailable("cannot resolve '" + host +
                               "': " + gai_strerror(rc));
  }
  Status last = Status::Unavailable("no usable address for '" + host + "'");
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) != 0) {
      last = Status::Unavailable("cannot connect to " + host + ":" +
                                 service + ": " + std::strerror(errno));
      ::close(fd);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    fd_ = fd;
    break;
  }
  ::freeaddrinfo(res);
  if (fd_ < 0) return last;

  // Handshake.
  WireWriter w;
  w.PutU32(kProtocolVersion);
  Status st = WriteFrame(fd_, FrameType::kHello, w.payload());
  if (!st.ok()) return Fail(std::move(st));
  std::string payload;
  st = ReadResponse(static_cast<std::uint8_t>(FrameType::kWelcome),
                    &payload);
  if (!st.ok()) return Fail(std::move(st));
  WireReader r(payload);
  std::uint32_t version = 0;
  st = r.GetU32(&version);
  if (!st.ok()) return Fail(std::move(st));
  if (version != kProtocolVersion) {
    return Fail(Status::InvalidArgument(
        "server answered protocol version " + std::to_string(version) +
        ", client speaks " + std::to_string(kProtocolVersion)));
  }
  return Status::OK();
}

void PiClient::Close() {
  if (fd_ < 0) return;
  // Best effort: a Goodbye lets the server retire the connection without
  // counting a dropped peer.
  (void)WriteFrame(fd_, FrameType::kGoodbye, {});
  ::close(fd_);
  fd_ = -1;
}

Status PiClient::Fail(Status status) {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  return status;
}

Status PiClient::SendRequest(std::uint8_t type, const std::string& payload) {
  last_error_line_ = 0;
  last_error_column_ = 0;
  if (fd_ < 0) return Status::Unavailable("not connected");
  Status st = WriteFrame(fd_, static_cast<FrameType>(type), payload);
  if (!st.ok()) return Fail(std::move(st));
  return Status::OK();
}

/// Reads the next response frame. A kError frame becomes that error
/// (with the structured position captured); a transport failure or an
/// unexpected frame type closes the connection.
Status PiClient::ReadResponse(std::uint8_t expect, std::string* payload) {
  FrameType type;
  Status st = ReadFrame(fd_, &type, payload);
  if (!st.ok()) return Fail(std::move(st));
  if (type == FrameType::kError) {
    WireReader r(*payload);
    Status remote;
    st = DecodeError(&r, &remote, &last_error_line_, &last_error_column_);
    if (!st.ok()) return Fail(std::move(st));
    return remote;
  }
  if (type != static_cast<FrameType>(expect)) {
    return Fail(Status::InvalidArgument(
        "protocol error: unexpected frame type " +
        std::to_string(static_cast<int>(type)) + ", expected " +
        std::to_string(static_cast<int>(expect))));
  }
  return Status::OK();
}

Result<QueryResult> PiClient::ReadResultResponse() {
  std::string payload;
  PIDX_RETURN_NOT_OK(ReadResponse(
      static_cast<std::uint8_t>(FrameType::kResultHeader), &payload));
  QueryResult result;
  {
    WireReader r(payload);
    Status st = DecodeResultHeader(&r, &result);
    if (!st.ok()) return Fail(std::move(st));
  }
  for (;;) {
    FrameType type;
    Status st = ReadFrame(fd_, &type, &payload);
    if (!st.ok()) return Fail(std::move(st));
    if (type == FrameType::kRowBatch) {
      WireReader r(payload);
      st = DecodeRowBatch(&r, &result.rows);
      if (!st.ok()) return Fail(std::move(st));
      continue;
    }
    if (type == FrameType::kResultEnd) {
      WireReader r(payload);
      std::uint64_t total = 0;
      st = r.GetU64(&total);
      if (!st.ok()) return Fail(std::move(st));
      if (total != result.rows.num_rows()) {
        return Fail(Status::Internal(
            "result stream inconsistent: server announced " +
            std::to_string(total) + " rows, got " +
            std::to_string(result.rows.num_rows())));
      }
      return result;
    }
    return Fail(Status::InvalidArgument(
        "protocol error: unexpected frame type " +
        std::to_string(static_cast<int>(type)) + " inside a result set"));
  }
}

Result<QueryResult> PiClient::Sql(std::string_view sql,
                                  std::vector<Value> params) {
  WireWriter w;
  w.PutString(sql);
  EncodeParams(&w, params);
  PIDX_RETURN_NOT_OK(
      SendRequest(static_cast<std::uint8_t>(FrameType::kQuery), w.payload()));
  return ReadResultResponse();
}

Result<RemoteStatement> PiClient::Prepare(std::string_view sql) {
  WireWriter w;
  w.PutString(sql);
  PIDX_RETURN_NOT_OK(SendRequest(
      static_cast<std::uint8_t>(FrameType::kPrepare), w.payload()));
  std::string payload;
  PIDX_RETURN_NOT_OK(ReadResponse(
      static_cast<std::uint8_t>(FrameType::kPrepared), &payload));
  WireReader r(payload);
  RemoteStatement stmt;
  Status st = r.GetU64(&stmt.id);
  if (st.ok()) st = r.GetU32(&stmt.num_params);
  if (!st.ok()) return Fail(std::move(st));
  return stmt;
}

Result<QueryResult> PiClient::Execute(const RemoteStatement& stmt,
                                      std::vector<Value> params) {
  WireWriter w;
  w.PutU64(stmt.id);
  EncodeParams(&w, params);
  PIDX_RETURN_NOT_OK(SendRequest(
      static_cast<std::uint8_t>(FrameType::kExecute), w.payload()));
  return ReadResultResponse();
}

Status PiClient::CloseStatement(const RemoteStatement& stmt) {
  WireWriter w;
  w.PutU64(stmt.id);
  PIDX_RETURN_NOT_OK(SendRequest(
      static_cast<std::uint8_t>(FrameType::kCloseStmt), w.payload()));
  std::string payload;
  return ReadResponse(static_cast<std::uint8_t>(FrameType::kStmtClosed),
                      &payload);
}

Result<std::string> PiClient::Meta(const std::string& line) {
  WireWriter w;
  w.PutString(line);
  PIDX_RETURN_NOT_OK(
      SendRequest(static_cast<std::uint8_t>(FrameType::kMeta), w.payload()));
  std::string payload;
  PIDX_RETURN_NOT_OK(ReadResponse(
      static_cast<std::uint8_t>(FrameType::kMetaResult), &payload));
  WireReader r(payload);
  std::string out;
  Status st = r.GetString(&out);
  if (!st.ok()) return Fail(std::move(st));
  return out;
}

}  // namespace patchindex::net
