#include "storage/snapshot.h"

#include <cstring>

#include "storage/wal.h"

namespace patchindex {

namespace {

constexpr std::string_view kSnapshotMagic = std::string_view("PISNAP01", 8);
constexpr std::string_view kManifestMagic = std::string_view("PIMANIF1", 8);

std::uint8_t TypeTag(ColumnType type) {
  switch (type) {
    case ColumnType::kInt64:
      return 1;
    case ColumnType::kDouble:
      return 2;
    case ColumnType::kString:
      return 3;
  }
  return 0;
}

bool TagToType(std::uint8_t tag, ColumnType* out) {
  switch (tag) {
    case 1:
      *out = ColumnType::kInt64;
      return true;
    case 2:
      *out = ColumnType::kDouble;
      return true;
    case 3:
      *out = ColumnType::kString;
      return true;
    default:
      return false;
  }
}

Status Corrupt(const std::string& path, const std::string& what) {
  return Status::Internal("snapshot " + path + " is invalid: " + what);
}

}  // namespace

Status SaveTableSnapshot(const Table& table, const std::string& path,
                         const FaultHook& hook) {
  const Schema& schema = table.schema();
  const std::uint64_t rows = table.num_rows();

  std::string file(kSnapshotMagic);
  std::string payload;
  PutU32(&payload, static_cast<std::uint32_t>(schema.num_fields()));
  for (const Field& f : schema.fields()) {
    PutString(&payload, f.name);
    PutU8(&payload, TypeTag(f.type));
  }
  PutU64(&payload, rows);
  AppendFrame(&file, payload);

  for (std::size_t c = 0; c < schema.num_fields(); ++c) {
    const Column& col = table.column(c);
    payload.clear();
    switch (col.type()) {
      case ColumnType::kInt64:
        for (std::uint64_t r = 0; r < rows; ++r) {
          PutU64(&payload, static_cast<std::uint64_t>(col.GetInt64(r)));
        }
        break;
      case ColumnType::kDouble:
        for (std::uint64_t r = 0; r < rows; ++r) {
          std::uint64_t bits = 0;
          const double d = col.GetDouble(r);
          std::memcpy(&bits, &d, sizeof bits);
          PutU64(&payload, bits);
        }
        break;
      case ColumnType::kString:
        for (std::uint64_t r = 0; r < rows; ++r) {
          PutString(&payload, col.GetString(r));
        }
        break;
    }
    AppendFrame(&file, payload);
  }

  auto f = DurableFile::Create(path, hook);
  if (!f.ok()) return f.status();
  PIDX_RETURN_NOT_OK(f.value().Append("snap.write", file.data(), file.size()));
  PIDX_RETURN_NOT_OK(f.value().Fsync("snap.fsync"));
  return Status::OK();
}

Result<std::unique_ptr<Table>> LoadTableSnapshot(const std::string& path,
                                                 const Schema& expected) {
  std::string data;
  PIDX_RETURN_NOT_OK(ReadFileBytes(path, &data));
  if (data.size() < kSnapshotMagic.size() ||
      std::string_view(data).substr(0, kSnapshotMagic.size()) !=
          kSnapshotMagic) {
    return Corrupt(path, "bad magic");
  }
  std::size_t offset = kSnapshotMagic.size();
  std::string_view payload;
  if (!NextFrame(data, &offset, &payload)) {
    return Corrupt(path, "unreadable schema frame");
  }
  ByteReader r(payload);
  const std::uint32_t n_cols = r.GetU32();
  if (!r.ok() || n_cols != expected.num_fields()) {
    return Corrupt(path, "column count mismatch");
  }
  for (std::uint32_t c = 0; c < n_cols; ++c) {
    const std::string name = r.GetString();
    ColumnType type;
    if (!TagToType(r.GetU8(), &type) || !r.ok()) {
      return Corrupt(path, "unreadable schema frame");
    }
    if (name != expected.field(c).name || type != expected.field(c).type) {
      return Corrupt(path, "schema mismatch on column " + name);
    }
  }
  const std::uint64_t rows = r.GetU64();
  if (!r.done()) return Corrupt(path, "unreadable schema frame");

  auto table = std::make_unique<Table>(expected);
  for (std::uint32_t c = 0; c < n_cols; ++c) {
    if (!NextFrame(data, &offset, &payload)) {
      return Corrupt(path, "missing column frame");
    }
    ByteReader col_reader(payload);
    Column& col = table->column(c);
    col.Reserve(rows);
    switch (col.type()) {
      case ColumnType::kInt64:
        for (std::uint64_t i = 0; i < rows; ++i) {
          col.AppendInt64(static_cast<std::int64_t>(col_reader.GetU64()));
        }
        break;
      case ColumnType::kDouble:
        for (std::uint64_t i = 0; i < rows; ++i) {
          const std::uint64_t bits = col_reader.GetU64();
          double d = 0;
          std::memcpy(&d, &bits, sizeof d);
          col.AppendDouble(d);
        }
        break;
      case ColumnType::kString:
        for (std::uint64_t i = 0; i < rows; ++i) {
          col.AppendString(col_reader.GetString());
        }
        break;
    }
    if (!col_reader.done()) return Corrupt(path, "malformed column frame");
  }
  if (offset != data.size()) return Corrupt(path, "trailing bytes");
  return table;
}

Status SaveManifest(const SnapshotManifest& manifest, const std::string& path,
                    const FaultHook& hook) {
  std::string file(kManifestMagic);
  std::string payload;
  PutU64(&payload, manifest.csn);
  PutU32(&payload, static_cast<std::uint32_t>(manifest.partition_rows.size()));
  for (const std::uint64_t rows : manifest.partition_rows) {
    PutU64(&payload, rows);
  }
  AppendFrame(&file, payload);

  auto f = DurableFile::Create(path, hook);
  if (!f.ok()) return f.status();
  PIDX_RETURN_NOT_OK(
      f.value().Append("manifest.write", file.data(), file.size()));
  PIDX_RETURN_NOT_OK(f.value().Fsync("manifest.fsync"));
  return Status::OK();
}

Result<SnapshotManifest> LoadManifest(const std::string& path) {
  std::string data;
  PIDX_RETURN_NOT_OK(ReadFileBytes(path, &data));
  if (data.size() < kManifestMagic.size() ||
      std::string_view(data).substr(0, kManifestMagic.size()) !=
          kManifestMagic) {
    return Corrupt(path, "bad magic");
  }
  std::size_t offset = kManifestMagic.size();
  std::string_view payload;
  if (!NextFrame(data, &offset, &payload) || offset != data.size()) {
    return Corrupt(path, "unreadable manifest frame");
  }
  ByteReader r(payload);
  SnapshotManifest out;
  out.csn = r.GetU64();
  const std::uint32_t n = r.GetU32();
  if (r.ok() && n > r.remaining()) {
    return Corrupt(path, "partition count overflow");
  }
  for (std::uint32_t i = 0; i < n && r.ok(); ++i) {
    out.partition_rows.push_back(r.GetU64());
  }
  if (!r.done()) return Corrupt(path, "malformed manifest frame");
  return out;
}

}  // namespace patchindex
