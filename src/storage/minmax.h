#ifndef PATCHINDEX_STORAGE_MINMAX_H_
#define PATCHINDEX_STORAGE_MINMAX_H_

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "storage/column.h"

namespace patchindex {

/// A contiguous row range [begin, end).
struct RowRange {
  RowId begin;
  RowId end;

  friend bool operator==(const RowRange& a, const RowRange& b) {
    return a.begin == b.begin && a.end == b.end;
  }
};

/// Sorts ranges by begin and merges overlapping/adjacent ones.
std::vector<RowRange> NormalizeRanges(std::vector<RowRange> ranges);

/// Small Materialized Aggregates (Moerkotte [22]) over an INT64 column:
/// per bucket of `block_size` tuples, the minimum and maximum value. Scans
/// evaluate selection predicates against the bucket bounds and skip
/// buckets that cannot contain qualifying tuples. The paper's insert
/// handling uses them for *dynamic range propagation* (§5.1): after the
/// hash join build phase, the build side's value range prunes the probe
/// side's full-table scan down to candidate blocks.
class MinMaxIndex {
 public:
  MinMaxIndex(const Column& column, std::uint64_t block_size = 1024);

  std::uint64_t block_size() const { return block_size_; }
  std::uint64_t num_blocks() const { return mins_.size(); }
  std::uint64_t num_rows() const { return num_rows_; }

  std::int64_t BlockMin(std::uint64_t b) const { return mins_[b]; }
  std::int64_t BlockMax(std::uint64_t b) const { return maxs_[b]; }

  /// Row ranges whose blocks may contain values in [lo, hi], with adjacent
  /// qualifying blocks coalesced. The fraction of rows skipped is the I/O
  /// saving the paper's DRP experiment relies on.
  std::vector<RowRange> PruneRanges(std::int64_t lo, std::int64_t hi) const;

  /// Fraction of rows contained in PruneRanges(lo, hi) — 1.0 means the
  /// index could not prune anything.
  double Selectivity(std::int64_t lo, std::int64_t hi) const;

  /// Incremental maintenance for appends: extends block bounds to cover
  /// column rows [num_rows(), column.size()).
  void ExtendFromColumn(const Column& column);

  /// Incremental maintenance for in-place modifies: widens the containing
  /// block's bounds to cover `value`. Widening keeps pruning conservative
  /// (never skips a qualifying block) without a rebuild.
  void WidenForValue(RowId row, std::int64_t value);

 private:
  std::uint64_t block_size_;
  std::uint64_t num_rows_;
  std::vector<std::int64_t> mins_;
  std::vector<std::int64_t> maxs_;
};

}  // namespace patchindex

#endif  // PATCHINDEX_STORAGE_MINMAX_H_
