#ifndef PATCHINDEX_STORAGE_PDT_H_
#define PATCHINDEX_STORAGE_PDT_H_

#include <cstdint>
#include <map>
#include <vector>

#include "common/types.h"
#include "storage/value.h"

namespace patchindex {

/// A table row in dynamically-typed form; used for update deltas and
/// loading, never on the vectorized query path.
struct Row {
  std::vector<Value> cells;
};

/// Simplified Positional Delta Tree (Héman et al. [17], paper §5): an
/// in-memory buffer of table updates that have not yet been merged into
/// the base columns. Read-optimized column stores keep trickle updates
/// here instead of rewriting the columns on every statement.
///
/// Simplification vs. the original PDT: the original maintains a
/// counted B-tree keyed by position for O(log n) positional lookup under
/// arbitrary interleavings. Our workloads buffer one update query's delta
/// at a time (the PatchIndex handlers run per update query, §5), so sorted
/// vectors/maps give the same observable semantics: scans see base rows
/// minus `deletes`, with `modifies` applied, followed by `inserts`.
class PositionalDelta {
 public:
  /// Buffered inserts, in insertion order; logically appended after the
  /// base rows.
  const std::vector<Row>& inserts() const { return inserts_; }

  /// Base-table positions pending deletion (sorted, unique).
  const std::vector<RowId>& deletes() const { return deletes_; }

  /// Pending cell modifications: base position -> (column -> new value).
  const std::map<RowId, std::map<std::size_t, Value>>& modifies() const {
    return modifies_;
  }

  void AddInsert(Row row) { inserts_.push_back(std::move(row)); }
  void AddDelete(RowId row);
  void AddModify(RowId row, std::size_t col, Value v) {
    modifies_[row][col] = std::move(v);
  }

  bool IsDeleted(RowId row) const;

  bool empty() const {
    return inserts_.empty() && deletes_.empty() && modifies_.empty();
  }

  void Clear() {
    inserts_.clear();
    deletes_.clear();
    modifies_.clear();
  }

 private:
  std::vector<Row> inserts_;
  std::vector<RowId> deletes_;
  std::map<RowId, std::map<std::size_t, Value>> modifies_;
};

}  // namespace patchindex

#endif  // PATCHINDEX_STORAGE_PDT_H_
