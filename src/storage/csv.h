#ifndef PATCHINDEX_STORAGE_CSV_H_
#define PATCHINDEX_STORAGE_CSV_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "storage/table.h"

namespace patchindex {

/// Minimal CSV bridge so users can try PatchIndexes on their own data
/// (fields must not contain the delimiter; no quoting dialects). INT64
/// and DOUBLE columns are parsed strictly — any malformed cell fails the
/// load with kInvalidArgument and a line number.

/// Loads `path` into a fresh table with the given schema. When
/// `has_header` is true the first line is validated against the schema's
/// column names.
Result<std::unique_ptr<Table>> LoadCsvTable(const std::string& path,
                                            const Schema& schema,
                                            char delimiter = ',',
                                            bool has_header = true);

/// Writes the table (base rows; pending deltas are not included) to
/// `path`, with a header line.
Status WriteCsvTable(const Table& table, const std::string& path,
                     char delimiter = ',');

/// Derives a schema from the file itself: column names from the header
/// line, each column's type from scanning every data cell — INT64 when
/// all cells parse as integers, DOUBLE when all parse as numbers, STRING
/// otherwise. An all-empty column is STRING. Feeds the `.load` path of
/// tools/pisql, where no schema is declared up front.
Result<Schema> InferCsvSchema(const std::string& path, char delimiter = ',');

}  // namespace patchindex

#endif  // PATCHINDEX_STORAGE_CSV_H_
