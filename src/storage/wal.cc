#include "storage/wal.h"

#include <cstring>

#include "common/crc32.h"

namespace patchindex {

namespace {

/// Value type tags in WAL/snapshot payloads.
constexpr std::uint8_t kTagInt64 = 1;
constexpr std::uint8_t kTagDouble = 2;
constexpr std::uint8_t kTagString = 3;

}  // namespace

void PutU8(std::string* out, std::uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU32(std::string* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void PutU64(std::string* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void PutString(std::string* out, std::string_view s) {
  PutU32(out, static_cast<std::uint32_t>(s.size()));
  out->append(s.data(), s.size());
}

void PutValue(std::string* out, const Value& v) {
  switch (v.type()) {
    case ColumnType::kInt64:
      PutU8(out, kTagInt64);
      PutU64(out, static_cast<std::uint64_t>(v.AsInt64()));
      break;
    case ColumnType::kDouble: {
      PutU8(out, kTagDouble);
      std::uint64_t bits = 0;
      const double d = v.AsDouble();
      std::memcpy(&bits, &d, sizeof bits);
      PutU64(out, bits);
      break;
    }
    case ColumnType::kString:
      PutU8(out, kTagString);
      PutString(out, v.AsString());
      break;
  }
}

bool ByteReader::Need(std::size_t n) {
  if (!ok_ || data_.size() - pos_ < n) {
    ok_ = false;
    return false;
  }
  return true;
}

std::uint8_t ByteReader::GetU8() {
  if (!Need(1)) return 0;
  return static_cast<std::uint8_t>(data_[pos_++]);
}

std::uint32_t ByteReader::GetU32() {
  if (!Need(4)) return 0;
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(data_[pos_++]))
         << (8 * i);
  }
  return v;
}

std::uint64_t ByteReader::GetU64() {
  if (!Need(8)) return 0;
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(data_[pos_++]))
         << (8 * i);
  }
  return v;
}

std::string ByteReader::GetString() {
  const std::uint32_t len = GetU32();
  if (!Need(len)) return std::string();
  std::string s(data_.substr(pos_, len));
  pos_ += len;
  return s;
}

Value ByteReader::GetValue() {
  switch (GetU8()) {
    case kTagInt64:
      return Value(static_cast<std::int64_t>(GetU64()));
    case kTagDouble: {
      const std::uint64_t bits = GetU64();
      double d = 0;
      std::memcpy(&d, &bits, sizeof d);
      return Value(d);
    }
    case kTagString:
      return Value(GetString());
    default:
      ok_ = false;
      return Value();
  }
}

void AppendFrame(std::string* out, std::string_view payload) {
  PutU32(out, static_cast<std::uint32_t>(payload.size()));
  PutU32(out, Crc32c(payload.data(), payload.size()));
  out->append(payload.data(), payload.size());
}

bool NextFrame(std::string_view data, std::size_t* offset,
               std::string_view* payload) {
  if (data.size() - *offset < 8) return false;
  ByteReader prefix(data.substr(*offset, 8));
  const std::uint32_t len = prefix.GetU32();
  const std::uint32_t crc = prefix.GetU32();
  if (len > kMaxWalPayloadBytes) return false;
  if (data.size() - *offset - 8 < len) return false;
  const std::string_view body = data.substr(*offset + 8, len);
  if (Crc32c(body.data(), body.size()) != crc) return false;
  *payload = body;
  *offset += 8 + len;
  return true;
}

std::string EncodeWalHeader(const WalHeader& header) {
  std::string out;
  PutString(&out, header.table);
  PutU32(&out, header.partition);
  PutU64(&out, header.snapshot_csn);
  return out;
}

Status DecodeWalHeader(std::string_view payload, WalHeader* out) {
  ByteReader r(payload);
  out->table = r.GetString();
  out->partition = r.GetU32();
  out->snapshot_csn = r.GetU64();
  if (!r.done()) return Status::Internal("malformed WAL header payload");
  return Status::OK();
}

std::string EncodeWalRecord(const WalRecord& record) {
  std::string out;
  PutU64(&out, record.csn);
  PutU32(&out, record.commit_partitions);
  PutU32(&out, static_cast<std::uint32_t>(record.inserts.size()));
  for (const Row& row : record.inserts) {
    PutU32(&out, static_cast<std::uint32_t>(row.cells.size()));
    for (const Value& v : row.cells) PutValue(&out, v);
  }
  PutU32(&out, static_cast<std::uint32_t>(record.deletes.size()));
  for (const RowId row : record.deletes) PutU64(&out, row);
  PutU32(&out, static_cast<std::uint32_t>(record.modifies.size()));
  for (const WalCell& cell : record.modifies) {
    PutU64(&out, cell.row);
    PutU32(&out, cell.column);
    PutValue(&out, cell.value);
  }
  return out;
}

Status DecodeWalRecord(std::string_view payload, WalRecord* out) {
  ByteReader r(payload);
  out->csn = r.GetU64();
  out->commit_partitions = r.GetU32();
  const std::uint32_t n_inserts = r.GetU32();
  out->inserts.clear();
  for (std::uint32_t i = 0; i < n_inserts && r.ok(); ++i) {
    const std::uint32_t n_cells = r.GetU32();
    // Every cell takes at least 2 encoded bytes; reject counts the
    // remaining payload cannot possibly hold before reserving memory.
    if (n_cells > r.remaining()) {
      return Status::Internal("malformed WAL record: cell count overflow");
    }
    Row row;
    row.cells.reserve(n_cells);
    for (std::uint32_t c = 0; c < n_cells && r.ok(); ++c) {
      row.cells.push_back(r.GetValue());
    }
    out->inserts.push_back(std::move(row));
  }
  const std::uint32_t n_deletes = r.GetU32();
  if (r.ok() && n_deletes > r.remaining()) {
    return Status::Internal("malformed WAL record: delete count overflow");
  }
  out->deletes.clear();
  for (std::uint32_t i = 0; i < n_deletes && r.ok(); ++i) {
    out->deletes.push_back(r.GetU64());
  }
  const std::uint32_t n_modifies = r.GetU32();
  if (r.ok() && n_modifies > r.remaining()) {
    return Status::Internal("malformed WAL record: modify count overflow");
  }
  out->modifies.clear();
  for (std::uint32_t i = 0; i < n_modifies && r.ok(); ++i) {
    WalCell cell;
    cell.row = r.GetU64();
    cell.column = r.GetU32();
    cell.value = r.GetValue();
    out->modifies.push_back(std::move(cell));
  }
  if (!r.done()) return Status::Internal("malformed WAL record payload");
  if (out->commit_partitions == 0) {
    return Status::Internal("malformed WAL record: zero commit_partitions");
  }
  return Status::OK();
}

WalContents ParseWalFile(std::string_view data) {
  WalContents out;
  const std::string_view magic = WalMagic();
  if (data.size() < magic.size() ||
      data.substr(0, magic.size()) != magic) {
    return out;  // header_valid=false: pre-header-fsync creation crash.
  }
  std::size_t offset = magic.size();
  std::string_view payload;
  if (!NextFrame(data, &offset, &payload) ||
      !DecodeWalHeader(payload, &out.header).ok()) {
    return out;
  }
  out.header_valid = true;
  out.valid_bytes = offset;
  while (NextFrame(data, &offset, &payload)) {
    WalRecord record;
    if (!DecodeWalRecord(payload, &record).ok()) break;
    out.records.push_back(std::move(record));
    out.valid_bytes = offset;
  }
  out.clean = out.valid_bytes == data.size();
  return out;
}

std::string_view WalMagic() { return std::string_view("PIWALOG1", 8); }

std::string_view CatalogLogMagic() { return std::string_view("PICATLG1", 8); }

}  // namespace patchindex
