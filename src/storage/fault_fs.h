#ifndef PATCHINDEX_STORAGE_FAULT_FS_H_
#define PATCHINDEX_STORAGE_FAULT_FS_H_

#include <cstdint>
#include <functional>
#include <string>

#include "common/status.h"

namespace patchindex {

/// What a fault hook tells a durable I/O operation to do at a labeled
/// crash point. Generalizes PatchIndexOptions::maintenance_fault_hook
/// (PR 4's deterministic fault injection) to the file layer: the crash
/// harness enumerates every labeled point of a workload, then replays it
/// killing or failing exactly one point per run.
enum class FaultAction {
  /// Proceed normally.
  kNone,
  /// Perform nothing; the operation reports an injected failure (a clean
  /// ENOSPC: the caller sees the error before any bytes reach the file).
  kFail,
  /// Writes only: write the first half of the buffer, then report
  /// failure (an ENOSPC mid-write that leaves a torn suffix on disk).
  /// Non-write operations treat this as kFail.
  kShortWrite,
  /// Simulated power cut: write the first half of the buffer (writes
  /// only), then _Exit the process with kFaultCrashExitCode. The crash
  /// harness forks a child per labeled point and asserts recovery.
  kCrash,
};

/// Exit code of a kCrash injection, asserted by the fork-based harness to
/// distinguish an injected crash from a genuine abort.
inline constexpr int kFaultCrashExitCode = 86;

/// Invoked with the crash-point label before every labeled durable I/O
/// operation. Null (default-constructed) means no injection. Hooks run on
/// commit and checkpoint paths from any session thread — test hooks must
/// be thread-safe (atomics).
using FaultHook = std::function<FaultAction(const char* point)>;

/// An append-oriented file descriptor wrapper that routes every mutation
/// through a FaultHook crash point. All durable state (WAL logs, column
/// snapshots, index checkpoints, manifests) is written through this class
/// so the crash-injection harness can kill or fail the process at every
/// labeled point. Not thread-safe; callers serialize (the engine's
/// per-table exclusive lock does).
class DurableFile {
 public:
  DurableFile() = default;
  ~DurableFile();

  DurableFile(const DurableFile&) = delete;
  DurableFile& operator=(const DurableFile&) = delete;
  DurableFile(DurableFile&& other) noexcept;
  DurableFile& operator=(DurableFile&& other) noexcept;

  /// Opens for appending, creating the file when absent; size() reflects
  /// the existing content.
  static Result<DurableFile> OpenForAppend(const std::string& path,
                                           FaultHook hook = nullptr);

  /// Creates (or truncates) the file for writing from scratch.
  static Result<DurableFile> Create(const std::string& path,
                                    FaultHook hook = nullptr);

  /// Appends `len` bytes at the end of the file. On an injected or real
  /// short write the file may keep a torn suffix — callers either
  /// truncate back to the pre-append size (the WAL writer) or rely on
  /// checksum validation at read time (snapshots).
  Status Append(const char* point, const void* data, std::size_t len);

  /// Flushes file content to stable storage (fsync).
  Status Fsync(const char* point);

  /// Truncates the file back to `size` bytes (torn-append rollback).
  Status Truncate(const char* point, std::uint64_t size);

  void Close();
  bool is_open() const { return fd_ >= 0; }
  std::uint64_t size() const { return size_; }
  const std::string& path() const { return path_; }

 private:
  int fd_ = -1;
  std::uint64_t size_ = 0;
  std::string path_;
  FaultHook hook_;
};

/// Atomically renames `from` over `to` (the snapshot manifest commit
/// point), honoring the hook's kFail/kCrash at `point`.
Status RenameFile(const char* point, const std::string& from,
                  const std::string& to, const FaultHook& hook = nullptr);

/// Fsyncs a directory so a preceding rename/create survives a power cut.
Status FsyncDir(const char* point, const std::string& dir,
                const FaultHook& hook = nullptr);

/// Reads a whole file into `out`; kNotFound when it does not exist.
Status ReadFileBytes(const std::string& path, std::string* out);

/// Creates `dir` (and missing parents) if absent.
Status EnsureDir(const std::string& dir);

}  // namespace patchindex

#endif  // PATCHINDEX_STORAGE_FAULT_FS_H_
