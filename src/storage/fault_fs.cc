#include "storage/fault_fs.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

namespace patchindex {

namespace {

FaultAction Probe(const FaultHook& hook, const char* point) {
  return hook ? hook(point) : FaultAction::kNone;
}

Status Errno(const std::string& what, const std::string& path) {
  return Status::Internal(what + " failed for " + path + ": " +
                          std::strerror(errno));
}

Status Injected(const char* point) {
  return Status::Internal(std::string("injected I/O failure at ") + point);
}

/// Writes all of `len` bytes, retrying short writes/EINTR.
bool WriteFully(int fd, const void* data, std::size_t len) {
  const char* p = static_cast<const char*>(data);
  while (len > 0) {
    const ssize_t n = ::write(fd, p, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

DurableFile::~DurableFile() { Close(); }

DurableFile::DurableFile(DurableFile&& other) noexcept
    : fd_(other.fd_), size_(other.size_), path_(std::move(other.path_)),
      hook_(std::move(other.hook_)) {
  other.fd_ = -1;
  other.size_ = 0;
}

DurableFile& DurableFile::operator=(DurableFile&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    size_ = other.size_;
    path_ = std::move(other.path_);
    hook_ = std::move(other.hook_);
    other.fd_ = -1;
    other.size_ = 0;
  }
  return *this;
}

Result<DurableFile> DurableFile::OpenForAppend(const std::string& path,
                                               FaultHook hook) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) return Errno("open", path);
  const off_t end = ::lseek(fd, 0, SEEK_END);
  if (end < 0) {
    ::close(fd);
    return Errno("lseek", path);
  }
  DurableFile f;
  f.fd_ = fd;
  f.size_ = static_cast<std::uint64_t>(end);
  f.path_ = path;
  f.hook_ = std::move(hook);
  return f;
}

Result<DurableFile> DurableFile::Create(const std::string& path,
                                        FaultHook hook) {
  // O_APPEND so a rollback Truncate repositions the next write at the new
  // end of file — without it the kernel file offset would still point past
  // the truncation and the next Append would leave a zero-filled hole.
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_APPEND, 0644);
  if (fd < 0) return Errno("open", path);
  DurableFile f;
  f.fd_ = fd;
  f.size_ = 0;
  f.path_ = path;
  f.hook_ = std::move(hook);
  return f;
}

Status DurableFile::Append(const char* point, const void* data,
                           std::size_t len) {
  if (fd_ < 0) return Status::Internal("append to a closed file: " + path_);
  switch (Probe(hook_, point)) {
    case FaultAction::kNone:
      break;
    case FaultAction::kFail:
      return Injected(point);
    case FaultAction::kShortWrite:
      // Leave a torn suffix on disk, then report the failure — a disk
      // that filled up mid-write.
      WriteFully(fd_, data, len / 2);
      return Injected(point);
    case FaultAction::kCrash:
      WriteFully(fd_, data, len / 2);
      std::_Exit(kFaultCrashExitCode);
  }
  if (!WriteFully(fd_, data, len)) return Errno("write", path_);
  size_ += len;
  return Status::OK();
}

Status DurableFile::Fsync(const char* point) {
  if (fd_ < 0) return Status::Internal("fsync of a closed file: " + path_);
  switch (Probe(hook_, point)) {
    case FaultAction::kNone:
      break;
    case FaultAction::kFail:
    case FaultAction::kShortWrite:
      return Injected(point);
    case FaultAction::kCrash:
      std::_Exit(kFaultCrashExitCode);
  }
  if (::fsync(fd_) != 0) return Errno("fsync", path_);
  return Status::OK();
}

Status DurableFile::Truncate(const char* point, std::uint64_t size) {
  if (fd_ < 0) return Status::Internal("truncate of a closed file: " + path_);
  switch (Probe(hook_, point)) {
    case FaultAction::kNone:
      break;
    case FaultAction::kFail:
    case FaultAction::kShortWrite:
      return Injected(point);
    case FaultAction::kCrash:
      std::_Exit(kFaultCrashExitCode);
  }
  if (::ftruncate(fd_, static_cast<off_t>(size)) != 0) {
    return Errno("ftruncate", path_);
  }
  size_ = size;
  return Status::OK();
}

void DurableFile::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status RenameFile(const char* point, const std::string& from,
                  const std::string& to, const FaultHook& hook) {
  switch (Probe(hook, point)) {
    case FaultAction::kNone:
      break;
    case FaultAction::kFail:
    case FaultAction::kShortWrite:
      return Injected(point);
    case FaultAction::kCrash:
      std::_Exit(kFaultCrashExitCode);
  }
  if (std::rename(from.c_str(), to.c_str()) != 0) {
    return Errno("rename", from + " -> " + to);
  }
  return Status::OK();
}

Status FsyncDir(const char* point, const std::string& dir,
                const FaultHook& hook) {
  switch (Probe(hook, point)) {
    case FaultAction::kNone:
      break;
    case FaultAction::kFail:
    case FaultAction::kShortWrite:
      return Injected(point);
    case FaultAction::kCrash:
      std::_Exit(kFaultCrashExitCode);
  }
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return Errno("open directory", dir);
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return Errno("fsync directory", dir);
  return Status::OK();
}

Status ReadFileBytes(const std::string& path, std::string* out) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return Status::NotFound("no such file: " + path);
    return Errno("open", path);
  }
  out->clear();
  char buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Errno("read", path);
    }
    if (n == 0) break;
    out->append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return Status::OK();
}

Status EnsureDir(const std::string& dir) {
  // Create each path component in turn (mkdir -p).
  for (std::size_t i = 1; i <= dir.size(); ++i) {
    if (i != dir.size() && dir[i] != '/') continue;
    const std::string prefix = dir.substr(0, i);
    if (::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST) {
      return Errno("mkdir", prefix);
    }
  }
  return Status::OK();
}

}  // namespace patchindex
