#ifndef PATCHINDEX_STORAGE_TABLE_H_
#define PATCHINDEX_STORAGE_TABLE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "storage/column.h"
#include "storage/pdt.h"
#include "storage/value.h"

namespace patchindex {

struct Field {
  std::string name;
  ColumnType type;
};

/// Ordered list of named, typed columns.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields) : fields_(std::move(fields)) {}

  std::size_t num_fields() const { return fields_.size(); }
  const Field& field(std::size_t i) const { return fields_[i]; }
  const std::vector<Field>& fields() const { return fields_; }

  /// Index of the column named `name`; negative if absent.
  int ColumnIndex(const std::string& name) const;

 private:
  std::vector<Field> fields_;
};

/// An in-memory columnar table (one partition in the paper's terms; data
/// partitioning is transparent to PatchIndexes, a separate index is created
/// per partition — see PartitionedTable below). Updates are buffered in a
/// positional delta (PDT) and folded into the base columns by Checkpoint().
///
/// Columns are held by shared_ptr so an MVCC snapshot (CloneShared) can
/// share the immutable base columns with the live head at zero copy cost;
/// every mutating entry point un-shares the columns it is about to touch
/// (copy-on-write), so a published snapshot never observes base-column
/// mutation. All mutation still requires the caller to hold the table's
/// writer lock (or exclusive ownership) — COW protects snapshots, it does
/// not make concurrent writers safe.
class Table {
 public:
  explicit Table(Schema schema);

  /// Movable (the atomic mutation counter carries its value over);
  /// callers may only move a table no snapshot or reader still
  /// references, exactly like any other mutation.
  Table(Table&& other) noexcept
      : schema_(std::move(other.schema_)),
        columns_(std::move(other.columns_)),
        pdt_(std::move(other.pdt_)),
        version_(other.version_),
        mutation_seq_(other.mutation_seq_.load(std::memory_order_relaxed)) {}

  const Schema& schema() const { return schema_; }

  /// Base rows, excluding pending PDT deltas.
  std::uint64_t num_rows() const {
    return columns_.empty() ? 0 : columns_[0]->size();
  }
  /// Rows visible to a scan: base - pending deletes + pending inserts.
  std::uint64_t num_visible_rows() const {
    return num_rows() - pdt_.deletes().size() + pdt_.inserts().size();
  }

  /// Mutable access un-shares the column first (it may be referenced by a
  /// published snapshot).
  Column& column(std::size_t i) {
    EnsureUnshared(i);
    return *columns_[i];
  }
  const Column& column(std::size_t i) const { return *columns_[i]; }
  const Column* ColumnByName(const std::string& name) const;

  /// Appends a row directly to the base columns (bulk loading path).
  void AppendRow(const Row& row);

  /// Update-query API: buffers deltas in the PDT. `row` positions refer to
  /// the current base table.
  void BufferInsert(Row row) {
    pdt_.AddInsert(std::move(row));
    BumpMutationSeq();
  }
  Status BufferDelete(RowId row);
  Status BufferModify(RowId row, std::size_t col, Value v);

  const PositionalDelta& pdt() const { return pdt_; }

  /// Discards all pending PDT deltas without applying them — the commit
  /// abort path (a WAL append that failed before publication).
  void DiscardPdt() {
    pdt_.Clear();
    BumpMutationSeq();
  }

  /// Merges all pending deltas into the base columns: modifies are applied
  /// in place, deleted rows compacted away (shifting subsequent rowIDs
  /// down, matching the sharded bitmap's delete semantics), inserts
  /// appended. Clears the PDT.
  void Checkpoint();

  /// Value of cell (row, col) as a scan would see it (deltas applied;
  /// rows >= num_rows() address pending inserts). Test/debug helper.
  Value VisibleCell(RowId row, std::size_t col) const;

  std::uint64_t MemoryUsageBytes() const;

  /// Incremented on every Checkpoint(); lets dependent structures (minmax
  /// indexes, PatchIndexes) detect that the base columns changed.
  std::uint64_t version() const { return version_; }

  /// Monotonic counter bumped by every mutation (base-column appends, PDT
  /// buffering, Checkpoint, DiscardPdt). A published MVCC snapshot records
  /// the value it was taken at; a mismatch against the live head means the
  /// snapshot is stale. Readable without the table lock.
  std::uint64_t mutation_seq() const {
    return mutation_seq_.load(std::memory_order_acquire);
  }

  /// Immutable snapshot for MVCC publication: shares the base-column
  /// buffers with this table (copy-on-write protects them from future
  /// head mutation) and deep-copies the pending PDT. Caller must hold the
  /// table's writer lock so the state copied is a committed one.
  std::unique_ptr<Table> CloneShared() const;

 private:
  /// Deep-copies column `i` if a snapshot still shares it. Called before
  /// any base-column mutation; safe only under the writer lock (publish,
  /// the only other place column pointers are copied, runs under it too).
  void EnsureUnshared(std::size_t i);

  void BumpMutationSeq() {
    mutation_seq_.fetch_add(1, std::memory_order_release);
  }

  Schema schema_;
  std::vector<std::shared_ptr<Column>> columns_;
  PositionalDelta pdt_;
  std::uint64_t version_ = 0;
  std::atomic<std::uint64_t> mutation_seq_{0};
};

/// A horizontally partitioned table: constraint discovery, index creation
/// and query processing are performed partition-locally (paper §3.2).
///
/// Rows are addressed globally by concatenating the partitions in order:
/// partition 0 holds global rows [0, n0), partition 1 holds [n0, n0+n1),
/// and so on (partition_base / ResolveRow map between the two views).
/// Scans over a partitioned table emit these global rowIDs (via
/// ScanOptions::row_id_offset), so DML deltas computed from a scan route
/// back to the owning partition.
class PartitionedTable {
 public:
  PartitionedTable(Schema schema, std::size_t num_partitions);

  /// Adopts already-populated partitions (bulk-load / catalog AddTable
  /// path). Every partition must share `schema`'s layout.
  PartitionedTable(Schema schema, std::vector<std::unique_ptr<Table>> parts);

  /// Assembles a table view over existing partition handles — the MVCC
  /// publication path, where a new version reuses the snapshots of
  /// partitions an update left untouched.
  PartitionedTable(Schema schema, std::vector<std::shared_ptr<Table>> parts);

  std::size_t num_partitions() const { return partitions_.size(); }
  Table& partition(std::size_t i) { return *partitions_[i]; }
  const Table& partition(std::size_t i) const { return *partitions_[i]; }
  /// Shared handle to partition `i` (MVCC version assembly).
  const std::shared_ptr<Table>& partition_ptr(std::size_t i) const {
    return partitions_[i];
  }
  const Schema& schema() const { return schema_; }

  /// Base rows across all partitions (excluding pending PDT deltas).
  std::uint64_t num_rows() const;
  /// Rows a scan would see across all partitions (deltas applied).
  std::uint64_t num_visible_rows() const;

  /// Global rowID of partition `i`'s first base row (sum of the base row
  /// counts of the partitions before it).
  std::uint64_t partition_base(std::size_t i) const;

  /// Maps a global base rowID to its owning partition and the local row
  /// within it. The rowID must be < num_rows().
  struct RowLocation {
    std::size_t partition;
    RowId local_row;
  };
  RowLocation ResolveRow(RowId global_row) const;

  /// Appends a row to the least-loaded partition (fewest base rows, ties
  /// to the lowest index — round-robin when loading from empty). Bulk
  /// loading path, mirroring Table::AppendRow.
  void AppendRow(const Row& row);

  /// Buffers an insert in the least-loaded partition's PDT (fewest base +
  /// pending-insert rows), the update-query routing policy.
  void BufferInsert(Row row);

  /// True when no partition has pending PDT deltas.
  bool pdt_empty() const;

  /// Discards every partition's pending PDT deltas (commit abort).
  void DiscardPdt() {
    for (auto& part : partitions_) part->DiscardPdt();
  }

  std::uint64_t MemoryUsageBytes() const;

 private:
  std::size_t LeastLoadedPartition(bool count_pending_inserts) const;

  Schema schema_;
  std::vector<std::shared_ptr<Table>> partitions_;
};

}  // namespace patchindex

#endif  // PATCHINDEX_STORAGE_TABLE_H_
