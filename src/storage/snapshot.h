#ifndef PATCHINDEX_STORAGE_SNAPSHOT_H_
#define PATCHINDEX_STORAGE_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/fault_fs.h"
#include "storage/table.h"

namespace patchindex {

/// Durable column snapshots + the checkpoint manifest.
///
/// A snapshot file persists one partition's base columns:
///   8-byte magic "PISNAP01", then frames (storage/wal.h framing): a schema
///   frame (column names/types + row count) followed by one frame per
///   column holding its values. Frame CRCs detect torn or bit-flipped
///   files; a snapshot that fails validation is ignored by recovery (the
///   manifest naming it was never renamed into place, or the checkpoint
///   never completed).
///
/// Commits fold PDT deltas into the base columns (Table::Checkpoint runs
/// inside every commit), so at checkpoint time — which runs under the
/// table's exclusive lock — partitions are at PDT-empty rest and base
/// columns alone capture the full state.
///
/// The manifest ("PIMANIF1" magic, one frame) records the checkpoint's
/// commit sequence number and per-partition row counts. Its atomic rename
/// into place is the checkpoint commit point: recovery only trusts
/// snapshots named by a fully renamed manifest.

struct SnapshotManifest {
  /// Last commit sequence number captured by the snapshots; WAL records
  /// with csn <= this are already folded in and skipped on replay.
  std::uint64_t csn = 0;
  /// Base row count of each partition at checkpoint time (sanity-checked
  /// against the loaded snapshots).
  std::vector<std::uint64_t> partition_rows;
};

/// Writes `table`'s base columns to `path` (crash points "snap.write",
/// "snap.fsync"). Pending PDT deltas are NOT captured — callers checkpoint
/// the table first (commits already do).
Status SaveTableSnapshot(const Table& table, const std::string& path,
                         const FaultHook& hook = nullptr);

/// Loads a snapshot written by SaveTableSnapshot, validating framing,
/// CRCs, and that the stored schema matches `expected` exactly.
Result<std::unique_ptr<Table>> LoadTableSnapshot(const std::string& path,
                                                 const Schema& expected);

/// Writes the manifest to `path` (crash points "manifest.write",
/// "manifest.fsync"). Callers write to a temporary name and rename over
/// the final name to make the checkpoint atomic.
Status SaveManifest(const SnapshotManifest& manifest, const std::string& path,
                    const FaultHook& hook = nullptr);

Result<SnapshotManifest> LoadManifest(const std::string& path);

}  // namespace patchindex

#endif  // PATCHINDEX_STORAGE_SNAPSHOT_H_
