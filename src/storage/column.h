#ifndef PATCHINDEX_STORAGE_COLUMN_H_
#define PATCHINDEX_STORAGE_COLUMN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/types.h"
#include "storage/value.h"

namespace patchindex {

/// A typed in-memory column. Exactly one of the backing vectors is active,
/// selected by type(). Accessors are checked in debug builds only; the
/// vectorized operators copy slices out via the typed data() spans.
class Column {
 public:
  explicit Column(ColumnType type) : type_(type) {}

  ColumnType type() const { return type_; }

  std::uint64_t size() const {
    switch (type_) {
      case ColumnType::kInt64:
        return i64_.size();
      case ColumnType::kDouble:
        return f64_.size();
      case ColumnType::kString:
        return str_.size();
    }
    return 0;
  }

  void Reserve(std::uint64_t n) {
    switch (type_) {
      case ColumnType::kInt64:
        i64_.reserve(n);
        break;
      case ColumnType::kDouble:
        f64_.reserve(n);
        break;
      case ColumnType::kString:
        str_.reserve(n);
        break;
    }
  }

  void AppendInt64(std::int64_t v) {
    PIDX_DCHECK(type_ == ColumnType::kInt64);
    i64_.push_back(v);
  }
  void AppendDouble(double v) {
    PIDX_DCHECK(type_ == ColumnType::kDouble);
    f64_.push_back(v);
  }
  void AppendString(std::string v) {
    PIDX_DCHECK(type_ == ColumnType::kString);
    str_.push_back(std::move(v));
  }
  void Append(const Value& v);

  std::int64_t GetInt64(RowId row) const {
    PIDX_DCHECK(type_ == ColumnType::kInt64 && row < i64_.size());
    return i64_[row];
  }
  double GetDouble(RowId row) const {
    PIDX_DCHECK(type_ == ColumnType::kDouble && row < f64_.size());
    return f64_[row];
  }
  const std::string& GetString(RowId row) const {
    PIDX_DCHECK(type_ == ColumnType::kString && row < str_.size());
    return str_[row];
  }
  Value Get(RowId row) const;

  void SetInt64(RowId row, std::int64_t v) {
    PIDX_DCHECK(type_ == ColumnType::kInt64 && row < i64_.size());
    i64_[row] = v;
  }
  void Set(RowId row, const Value& v);

  /// Deletes the given sorted, unique row positions, compacting the column.
  void DeleteRows(const std::vector<RowId>& sorted_rows);

  const std::vector<std::int64_t>& i64_data() const { return i64_; }
  const std::vector<double>& f64_data() const { return f64_; }
  const std::vector<std::string>& str_data() const { return str_; }

  std::uint64_t MemoryUsageBytes() const;

 private:
  ColumnType type_;
  std::vector<std::int64_t> i64_;
  std::vector<double> f64_;
  std::vector<std::string> str_;
};

}  // namespace patchindex

#endif  // PATCHINDEX_STORAGE_COLUMN_H_
