#include "storage/table.h"

#include <algorithm>

#include "common/check.h"

namespace patchindex {

int Schema::ColumnIndex(const std::string& name) const {
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

Table::Table(Schema schema) : schema_(std::move(schema)) {
  columns_.reserve(schema_.num_fields());
  for (const Field& f : schema_.fields()) {
    columns_.push_back(std::make_shared<Column>(f.type));
  }
}

const Column* Table::ColumnByName(const std::string& name) const {
  const int idx = schema_.ColumnIndex(name);
  return idx < 0 ? nullptr : columns_[static_cast<std::size_t>(idx)].get();
}

void Table::EnsureUnshared(std::size_t i) {
  // use_count() > 1 means a published snapshot still references the
  // buffer. Publish copies column pointers only under the same writer
  // lock mutation requires, so the count cannot concurrently grow here.
  if (columns_[i].use_count() > 1) {
    columns_[i] = std::make_shared<Column>(*columns_[i]);
  }
}

void Table::AppendRow(const Row& row) {
  PIDX_CHECK(row.cells.size() == columns_.size());
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    EnsureUnshared(i);
    columns_[i]->Append(row.cells[i]);
  }
  BumpMutationSeq();
}

Status Table::BufferDelete(RowId row) {
  if (row >= num_rows()) {
    return Status::OutOfRange("delete position beyond base table");
  }
  pdt_.AddDelete(row);
  BumpMutationSeq();
  return Status::OK();
}

Status Table::BufferModify(RowId row, std::size_t col, Value v) {
  if (row >= num_rows()) {
    return Status::OutOfRange("modify position beyond base table");
  }
  if (col >= columns_.size()) {
    return Status::InvalidArgument("modify column out of range");
  }
  if (v.type() != columns_[col]->type()) {
    return Status::InvalidArgument("modify value type mismatch");
  }
  pdt_.AddModify(row, col, std::move(v));
  BumpMutationSeq();
  return Status::OK();
}

void Table::Checkpoint() {
  for (const auto& [row, cols] : pdt_.modifies()) {
    for (const auto& [col, value] : cols) {
      EnsureUnshared(col);
      columns_[col]->Set(row, value);
    }
  }
  if (!pdt_.deletes().empty()) {
    for (std::size_t i = 0; i < columns_.size(); ++i) {
      EnsureUnshared(i);
      columns_[i]->DeleteRows(pdt_.deletes());
    }
  }
  for (const Row& row : pdt_.inserts()) AppendRow(row);
  pdt_.Clear();
  ++version_;
  BumpMutationSeq();
}

std::unique_ptr<Table> Table::CloneShared() const {
  auto clone = std::make_unique<Table>(schema_);
  clone->columns_ = columns_;  // shared buffers; COW isolates future writes
  clone->pdt_ = pdt_;
  clone->version_ = version_;
  clone->mutation_seq_.store(mutation_seq(), std::memory_order_relaxed);
  return clone;
}

Value Table::VisibleCell(RowId row, std::size_t col) const {
  // Visible row order: surviving base rows (deltas applied) then inserts.
  const std::uint64_t surviving = num_rows() - pdt_.deletes().size();
  if (row >= surviving) {
    return pdt_.inserts()[row - surviving].cells[col];
  }
  // Map visible position -> base position by skipping deleted rows.
  RowId base = row;
  for (RowId del : pdt_.deletes()) {
    if (del <= base) {
      ++base;
    } else {
      break;
    }
  }
  auto mit = pdt_.modifies().find(base);
  if (mit != pdt_.modifies().end()) {
    auto cit = mit->second.find(col);
    if (cit != mit->second.end()) return cit->second;
  }
  return columns_[col]->Get(base);
}

std::uint64_t Table::MemoryUsageBytes() const {
  std::uint64_t total = 0;
  for (const auto& c : columns_) total += c->MemoryUsageBytes();
  return total;
}

PartitionedTable::PartitionedTable(Schema schema, std::size_t num_partitions)
    : schema_(schema) {
  PIDX_CHECK(num_partitions >= 1);
  partitions_.reserve(num_partitions);
  for (std::size_t i = 0; i < num_partitions; ++i) {
    partitions_.push_back(std::make_shared<Table>(schema));
  }
}

PartitionedTable::PartitionedTable(Schema schema,
                                   std::vector<std::unique_ptr<Table>> parts)
    : schema_(std::move(schema)) {
  partitions_.reserve(parts.size());
  for (auto& p : parts) partitions_.emplace_back(std::move(p));
  PIDX_CHECK(!partitions_.empty());
  for (const auto& p : partitions_) {
    PIDX_CHECK(p != nullptr);
    PIDX_CHECK(p->schema().num_fields() == schema_.num_fields());
  }
}

PartitionedTable::PartitionedTable(Schema schema,
                                   std::vector<std::shared_ptr<Table>> parts)
    : schema_(std::move(schema)), partitions_(std::move(parts)) {
  PIDX_CHECK(!partitions_.empty());
  for (const auto& p : partitions_) {
    PIDX_CHECK(p != nullptr);
    PIDX_CHECK(p->schema().num_fields() == schema_.num_fields());
  }
}

std::uint64_t PartitionedTable::num_rows() const {
  std::uint64_t total = 0;
  for (const auto& p : partitions_) total += p->num_rows();
  return total;
}

std::uint64_t PartitionedTable::num_visible_rows() const {
  std::uint64_t total = 0;
  for (const auto& p : partitions_) total += p->num_visible_rows();
  return total;
}

std::uint64_t PartitionedTable::partition_base(std::size_t i) const {
  PIDX_CHECK(i < partitions_.size());
  std::uint64_t base = 0;
  for (std::size_t p = 0; p < i; ++p) base += partitions_[p]->num_rows();
  return base;
}

PartitionedTable::RowLocation PartitionedTable::ResolveRow(
    RowId global_row) const {
  RowId local = global_row;
  for (std::size_t p = 0; p < partitions_.size(); ++p) {
    const std::uint64_t n = partitions_[p]->num_rows();
    if (local < n) return {p, local};
    local -= n;
  }
  PIDX_CHECK_MSG(false, "global rowID beyond the partitioned table");
  return {0, 0};
}

std::size_t PartitionedTable::LeastLoadedPartition(
    bool count_pending_inserts) const {
  std::size_t best = 0;
  std::uint64_t best_rows = ~std::uint64_t{0};
  for (std::size_t p = 0; p < partitions_.size(); ++p) {
    std::uint64_t rows = partitions_[p]->num_rows();
    if (count_pending_inserts) rows += partitions_[p]->pdt().inserts().size();
    if (rows < best_rows) {
      best = p;
      best_rows = rows;
    }
  }
  return best;
}

void PartitionedTable::AppendRow(const Row& row) {
  partitions_[LeastLoadedPartition(/*count_pending_inserts=*/false)]
      ->AppendRow(row);
}

void PartitionedTable::BufferInsert(Row row) {
  partitions_[LeastLoadedPartition(/*count_pending_inserts=*/true)]
      ->BufferInsert(std::move(row));
}

bool PartitionedTable::pdt_empty() const {
  for (const auto& p : partitions_) {
    if (!p->pdt().empty()) return false;
  }
  return true;
}

std::uint64_t PartitionedTable::MemoryUsageBytes() const {
  std::uint64_t total = 0;
  for (const auto& p : partitions_) total += p->MemoryUsageBytes();
  return total;
}

}  // namespace patchindex
