#ifndef PATCHINDEX_STORAGE_WAL_H_
#define PATCHINDEX_STORAGE_WAL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "storage/pdt.h"
#include "storage/value.h"

namespace patchindex {

/// Write-ahead log format (one file per table partition, plus a catalog
/// log with DDL payloads that reuses the same framing).
///
/// File layout:
///   8-byte magic ("PIWALOG1" for partition logs, "PICATLG1" for the
///   catalog log), then a sequence of frames. Each frame is
///     u32 payload_len | u32 crc32c(payload) | payload
/// with little-endian integers throughout. The first frame of a partition
/// log is the header payload (table name, partition index, snapshot csn);
/// every later frame is one commit record.
///
/// Torn-tail rule: a reader consumes frames until the first invalid one
/// (truncated length/payload, CRC mismatch, oversized length, or a payload
/// that fails structural decoding) and ignores everything at and after it.
/// Appends are strictly at the end and bad frames can only be produced by
/// a crash mid-append, so only the tail is ever discardable.

/// Upper bound on a single frame payload; larger lengths are treated as
/// corruption rather than attempted allocations (fuzz safety).
inline constexpr std::uint32_t kMaxWalPayloadBytes = 256u << 20;

/// One modified cell of a commit record (partition-local row position).
struct WalCell {
  RowId row = 0;
  std::uint32_t column = 0;
  Value value;
};

/// One committed update query's delta against one partition, in
/// partition-local coordinates (post-routing): replay applies it to the
/// owning partition directly, bypassing the insert-routing policy, so
/// recovery reproduces the exact pre-crash placement.
struct WalRecord {
  /// Table-wide commit sequence number; strictly increasing because
  /// commits serialize under the table's exclusive lock.
  std::uint64_t csn = 0;
  /// Number of partitions this commit wrote. Recovery counts the records
  /// carrying the trailing csn and drops the whole commit when fewer than
  /// commit_partitions survived (a crash between per-partition appends).
  std::uint32_t commit_partitions = 1;
  std::vector<Row> inserts;
  std::vector<RowId> deletes;
  std::vector<WalCell> modifies;
};

/// Identity header of a partition log file.
struct WalHeader {
  std::string table;
  std::uint32_t partition = 0;
  /// The commit sequence number already captured by the snapshot this log
  /// continues from; records with csn <= snapshot_csn are never present.
  std::uint64_t snapshot_csn = 0;
};

/// Everything a partition log file yields on recovery.
struct WalContents {
  WalHeader header;
  std::vector<WalRecord> records;
  /// False when the magic or header frame is unreadable — only possible
  /// when a crash hit file creation before the header fsync, i.e. before
  /// any commit on this log could have been acknowledged.
  bool header_valid = false;
  /// True when every byte of the file parsed as valid frames (no torn
  /// tail to truncate away).
  bool clean = false;
  /// File offset one past the last valid frame; the torn-tail truncation
  /// target.
  std::uint64_t valid_bytes = 0;
};

/// Little-endian primitive encoders, shared by the WAL, the catalog log,
/// snapshots and manifests.
void PutU8(std::string* out, std::uint8_t v);
void PutU32(std::string* out, std::uint32_t v);
void PutU64(std::string* out, std::uint64_t v);
void PutString(std::string* out, std::string_view s);
void PutValue(std::string* out, const Value& v);

/// Bounds-checked reader over an encoded payload. All Get* methods return
/// defaults once `ok()` turns false; callers check ok() at the end (and at
/// loop boundaries guarding large allocations).
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  std::uint8_t GetU8();
  std::uint32_t GetU32();
  std::uint64_t GetU64();
  std::string GetString();
  Value GetValue();

  bool ok() const { return ok_; }
  bool done() const { return ok_ && pos_ == data_.size(); }
  std::size_t remaining() const { return data_.size() - pos_; }

 private:
  bool Need(std::size_t n);

  std::string_view data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

/// Appends a length+CRC frame wrapping `payload` to `out`.
void AppendFrame(std::string* out, std::string_view payload);

/// Reads the next frame starting at `*offset`. On success advances
/// `*offset` past the frame and points `payload` into `data`. Returns
/// false on end of data or the first invalid frame (the torn tail).
bool NextFrame(std::string_view data, std::size_t* offset,
               std::string_view* payload);

std::string EncodeWalHeader(const WalHeader& header);
Status DecodeWalHeader(std::string_view payload, WalHeader* out);

std::string EncodeWalRecord(const WalRecord& record);
Status DecodeWalRecord(std::string_view payload, WalRecord* out);

/// Parses a partition log image (the whole file read into memory).
/// Returns contents with header_valid=false for a file too damaged to
/// identify; never fails on corrupt input — corruption truncates.
WalContents ParseWalFile(std::string_view data);

/// 8-byte magics.
std::string_view WalMagic();
std::string_view CatalogLogMagic();

}  // namespace patchindex

#endif  // PATCHINDEX_STORAGE_WAL_H_
