#include "storage/csv.h"

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

namespace patchindex {

namespace {

/// getline keeps the '\r' of CRLF line endings; left in place it would
/// glue onto the last field and misclassify the column (or fail an
/// integer parse outright).
void StripTrailingCr(std::string* line) {
  if (!line->empty() && line->back() == '\r') line->pop_back();
}

std::vector<std::string> SplitLine(const std::string& line, char delimiter) {
  std::vector<std::string> fields;
  std::string field;
  for (char c : line) {
    if (c == delimiter) {
      fields.push_back(std::move(field));
      field.clear();
    } else {
      field.push_back(c);
    }
  }
  fields.push_back(std::move(field));
  return fields;
}

Status ParseCell(const std::string& text, ColumnType type, std::size_t line,
                 Value* out) {
  switch (type) {
    case ColumnType::kInt64: {
      errno = 0;
      char* end = nullptr;
      const long long v = std::strtoll(text.c_str(), &end, 10);
      if (errno != 0 || end == text.c_str() || *end != '\0') {
        return Status::InvalidArgument("line " + std::to_string(line) +
                                       ": not an integer: '" + text + "'");
      }
      *out = Value(static_cast<std::int64_t>(v));
      return Status::OK();
    }
    case ColumnType::kDouble: {
      errno = 0;
      char* end = nullptr;
      const double v = std::strtod(text.c_str(), &end);
      if (errno != 0 || end == text.c_str() || *end != '\0') {
        return Status::InvalidArgument("line " + std::to_string(line) +
                                       ": not a number: '" + text + "'");
      }
      *out = Value(v);
      return Status::OK();
    }
    case ColumnType::kString:
      *out = Value(text);
      return Status::OK();
  }
  return Status::Internal("unknown column type");
}

}  // namespace

Result<std::unique_ptr<Table>> LoadCsvTable(const std::string& path,
                                            const Schema& schema,
                                            char delimiter, bool has_header) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::NotFound("cannot open CSV file: " + path);
  }
  auto table = std::make_unique<Table>(schema);
  std::string line;
  std::size_t line_no = 0;
  if (has_header) {
    if (!std::getline(in, line)) {
      return Status::InvalidArgument("empty CSV file: " + path);
    }
    ++line_no;
    StripTrailingCr(&line);
    const auto header = SplitLine(line, delimiter);
    if (header.size() != schema.num_fields()) {
      return Status::InvalidArgument(
          "header has " + std::to_string(header.size()) + " fields, schema " +
          std::to_string(schema.num_fields()));
    }
    for (std::size_t i = 0; i < header.size(); ++i) {
      if (header[i] != schema.field(i).name) {
        return Status::InvalidArgument("header mismatch at column " +
                                       std::to_string(i) + ": '" + header[i] +
                                       "' vs '" + schema.field(i).name + "'");
      }
    }
  }
  while (std::getline(in, line)) {
    ++line_no;
    StripTrailingCr(&line);
    if (line.empty()) continue;
    const auto fields = SplitLine(line, delimiter);
    if (fields.size() != schema.num_fields()) {
      return Status::InvalidArgument(
          "line " + std::to_string(line_no) + ": expected " +
          std::to_string(schema.num_fields()) + " fields, got " +
          std::to_string(fields.size()));
    }
    Row row;
    row.cells.resize(fields.size());
    for (std::size_t i = 0; i < fields.size(); ++i) {
      PIDX_RETURN_NOT_OK(
          ParseCell(fields[i], schema.field(i).type, line_no, &row.cells[i]));
    }
    table->AppendRow(row);
  }
  return table;
}

Result<Schema> InferCsvSchema(const std::string& path, char delimiter) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::NotFound("cannot open CSV file: " + path);
  }
  std::string line;
  if (!std::getline(in, line)) {
    return Status::InvalidArgument("empty CSV file: " + path);
  }
  StripTrailingCr(&line);
  const std::vector<std::string> names = SplitLine(line, delimiter);

  auto parses_as = [](const std::string& text, ColumnType type) {
    Value ignored;
    return ParseCell(text, type, 0, &ignored).ok();
  };
  // Start every column at INT64 and widen as cells contradict it.
  std::vector<ColumnType> types(names.size(), ColumnType::kInt64);
  std::size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    StripTrailingCr(&line);
    if (line.empty()) continue;
    const std::vector<std::string> fields = SplitLine(line, delimiter);
    if (fields.size() != names.size()) {
      return Status::InvalidArgument(
          "line " + std::to_string(line_no) + ": expected " +
          std::to_string(names.size()) + " fields, got " +
          std::to_string(fields.size()));
    }
    for (std::size_t c = 0; c < fields.size(); ++c) {
      if (types[c] == ColumnType::kInt64 &&
          !parses_as(fields[c], ColumnType::kInt64)) {
        types[c] = ColumnType::kDouble;
      }
      if (types[c] == ColumnType::kDouble &&
          !parses_as(fields[c], ColumnType::kDouble)) {
        types[c] = ColumnType::kString;
      }
    }
  }
  std::vector<Field> fields;
  for (std::size_t c = 0; c < names.size(); ++c) {
    fields.push_back({names[c], types[c]});
  }
  return Schema(std::move(fields));
}

Status WriteCsvTable(const Table& table, const std::string& path,
                     char delimiter) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::Internal("cannot open CSV file for writing: " + path);
  }
  const Schema& schema = table.schema();
  for (std::size_t i = 0; i < schema.num_fields(); ++i) {
    if (i > 0) out << delimiter;
    out << schema.field(i).name;
  }
  out << '\n';
  for (RowId r = 0; r < table.num_rows(); ++r) {
    for (std::size_t c = 0; c < schema.num_fields(); ++c) {
      if (c > 0) out << delimiter;
      out << table.column(c).Get(r).ToString();
    }
    out << '\n';
  }
  if (!out.good()) return Status::Internal("short write: " + path);
  return Status::OK();
}

}  // namespace patchindex
