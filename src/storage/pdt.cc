#include "storage/pdt.h"

#include <algorithm>

#include "common/check.h"

namespace patchindex {

void PositionalDelta::AddDelete(RowId row) {
  auto it = std::lower_bound(deletes_.begin(), deletes_.end(), row);
  if (it != deletes_.end() && *it == row) return;  // idempotent
  deletes_.insert(it, row);
}

bool PositionalDelta::IsDeleted(RowId row) const {
  return std::binary_search(deletes_.begin(), deletes_.end(), row);
}

}  // namespace patchindex
