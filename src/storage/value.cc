#include "storage/value.h"

namespace patchindex {

const char* ColumnTypeName(ColumnType type) {
  switch (type) {
    case ColumnType::kInt64:
      return "INT64";
    case ColumnType::kDouble:
      return "DOUBLE";
    case ColumnType::kString:
      return "STRING";
  }
  return "UNKNOWN";
}

std::string Value::ToString() const {
  switch (type()) {
    case ColumnType::kInt64:
      return std::to_string(AsInt64());
    case ColumnType::kDouble:
      return std::to_string(AsDouble());
    case ColumnType::kString:
      return AsString();
  }
  return "";
}

}  // namespace patchindex
