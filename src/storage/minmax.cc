#include "storage/minmax.h"

#include <algorithm>
#include <limits>

#include "common/check.h"

namespace patchindex {

std::vector<RowRange> NormalizeRanges(std::vector<RowRange> ranges) {
  std::sort(ranges.begin(), ranges.end(),
            [](const RowRange& a, const RowRange& b) {
              return a.begin < b.begin;
            });
  std::vector<RowRange> out;
  for (const RowRange& r : ranges) {
    if (r.begin >= r.end) continue;
    if (!out.empty() && r.begin <= out.back().end) {
      out.back().end = std::max(out.back().end, r.end);
    } else {
      out.push_back(r);
    }
  }
  return out;
}

MinMaxIndex::MinMaxIndex(const Column& column, std::uint64_t block_size)
    : block_size_(block_size), num_rows_(column.size()) {
  PIDX_CHECK(column.type() == ColumnType::kInt64);
  PIDX_CHECK(block_size >= 1);
  const auto& data = column.i64_data();
  const std::uint64_t nblocks = (num_rows_ + block_size - 1) / block_size;
  mins_.resize(nblocks, std::numeric_limits<std::int64_t>::max());
  maxs_.resize(nblocks, std::numeric_limits<std::int64_t>::min());
  for (std::uint64_t i = 0; i < num_rows_; ++i) {
    const std::uint64_t b = i / block_size;
    mins_[b] = std::min(mins_[b], data[i]);
    maxs_[b] = std::max(maxs_[b], data[i]);
  }
}

std::vector<RowRange> MinMaxIndex::PruneRanges(std::int64_t lo,
                                               std::int64_t hi) const {
  std::vector<RowRange> out;
  for (std::uint64_t b = 0; b < num_blocks(); ++b) {
    if (maxs_[b] < lo || mins_[b] > hi) continue;
    const RowId begin = b * block_size_;
    const RowId end = std::min<RowId>(num_rows_, begin + block_size_);
    if (!out.empty() && out.back().end == begin) {
      out.back().end = end;  // coalesce adjacent blocks
    } else {
      out.push_back({begin, end});
    }
  }
  return out;
}

void MinMaxIndex::ExtendFromColumn(const Column& column) {
  PIDX_CHECK(column.type() == ColumnType::kInt64);
  PIDX_CHECK(column.size() >= num_rows_);
  const auto& data = column.i64_data();
  const std::uint64_t new_rows = column.size();
  const std::uint64_t nblocks = (new_rows + block_size_ - 1) / block_size_;
  mins_.resize(nblocks, std::numeric_limits<std::int64_t>::max());
  maxs_.resize(nblocks, std::numeric_limits<std::int64_t>::min());
  for (std::uint64_t i = num_rows_; i < new_rows; ++i) {
    const std::uint64_t b = i / block_size_;
    mins_[b] = std::min(mins_[b], data[i]);
    maxs_[b] = std::max(maxs_[b], data[i]);
  }
  num_rows_ = new_rows;
}

void MinMaxIndex::WidenForValue(RowId row, std::int64_t value) {
  PIDX_CHECK(row < num_rows_);
  const std::uint64_t b = row / block_size_;
  mins_[b] = std::min(mins_[b], value);
  maxs_[b] = std::max(maxs_[b], value);
}

double MinMaxIndex::Selectivity(std::int64_t lo, std::int64_t hi) const {
  if (num_rows_ == 0) return 0.0;
  std::uint64_t kept = 0;
  for (const RowRange& r : PruneRanges(lo, hi)) kept += r.end - r.begin;
  return static_cast<double>(kept) / static_cast<double>(num_rows_);
}

}  // namespace patchindex
