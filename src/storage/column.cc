#include "storage/column.h"

#include <algorithm>

namespace patchindex {

void Column::Append(const Value& v) {
  switch (type_) {
    case ColumnType::kInt64:
      AppendInt64(v.AsInt64());
      break;
    case ColumnType::kDouble:
      AppendDouble(v.AsDouble());
      break;
    case ColumnType::kString:
      AppendString(v.AsString());
      break;
  }
}

Value Column::Get(RowId row) const {
  switch (type_) {
    case ColumnType::kInt64:
      return Value(GetInt64(row));
    case ColumnType::kDouble:
      return Value(GetDouble(row));
    case ColumnType::kString:
      return Value(GetString(row));
  }
  return Value();
}

void Column::Set(RowId row, const Value& v) {
  switch (type_) {
    case ColumnType::kInt64:
      i64_[row] = v.AsInt64();
      break;
    case ColumnType::kDouble:
      f64_[row] = v.AsDouble();
      break;
    case ColumnType::kString:
      str_[row] = v.AsString();
      break;
  }
}

namespace {
template <typename T>
void CompactAway(std::vector<T>& data, const std::vector<RowId>& rows) {
  if (rows.empty()) return;
  std::size_t write = rows[0];
  std::size_t next_kill = 0;
  for (std::size_t read = rows[0]; read < data.size(); ++read) {
    if (next_kill < rows.size() && rows[next_kill] == read) {
      ++next_kill;
      continue;
    }
    data[write++] = std::move(data[read]);
  }
  data.resize(write);
}
}  // namespace

void Column::DeleteRows(const std::vector<RowId>& sorted_rows) {
  switch (type_) {
    case ColumnType::kInt64:
      CompactAway(i64_, sorted_rows);
      break;
    case ColumnType::kDouble:
      CompactAway(f64_, sorted_rows);
      break;
    case ColumnType::kString:
      CompactAway(str_, sorted_rows);
      break;
  }
}

std::uint64_t Column::MemoryUsageBytes() const {
  switch (type_) {
    case ColumnType::kInt64:
      return i64_.capacity() * sizeof(std::int64_t);
    case ColumnType::kDouble:
      return f64_.capacity() * sizeof(double);
    case ColumnType::kString: {
      std::uint64_t total = str_.capacity() * sizeof(std::string);
      for (const auto& s : str_) total += s.capacity();
      return total;
    }
  }
  return 0;
}

}  // namespace patchindex
