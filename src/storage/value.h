#ifndef PATCHINDEX_STORAGE_VALUE_H_
#define PATCHINDEX_STORAGE_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

namespace patchindex {

/// Column data types supported by the engine. TPC-H dates and decimals are
/// encoded as INT64 (days since epoch / fixed-point cents), the common
/// trick in columnar engines.
enum class ColumnType { kInt64, kDouble, kString };

const char* ColumnTypeName(ColumnType type);

/// A single dynamically-typed cell value. Used on non-performance-critical
/// paths (update deltas, test assertions, row construction); the vectorized
/// operators work on typed column vectors instead.
class Value {
 public:
  Value() : v_(std::int64_t{0}) {}
  explicit Value(std::int64_t v) : v_(v) {}
  explicit Value(double v) : v_(v) {}
  explicit Value(std::string v) : v_(std::move(v)) {}
  explicit Value(const char* v) : v_(std::string(v)) {}

  ColumnType type() const {
    switch (v_.index()) {
      case 0:
        return ColumnType::kInt64;
      case 1:
        return ColumnType::kDouble;
      default:
        return ColumnType::kString;
    }
  }

  std::int64_t AsInt64() const { return std::get<std::int64_t>(v_); }
  double AsDouble() const { return std::get<double>(v_); }
  const std::string& AsString() const { return std::get<std::string>(v_); }

  friend bool operator==(const Value& a, const Value& b) { return a.v_ == b.v_; }
  friend bool operator<(const Value& a, const Value& b) { return a.v_ < b.v_; }

  std::string ToString() const;

 private:
  std::variant<std::int64_t, double, std::string> v_;
};

}  // namespace patchindex

#endif  // PATCHINDEX_STORAGE_VALUE_H_
