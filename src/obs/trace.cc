#include "obs/trace.h"

#include <cstdio>

namespace patchindex::obs {

namespace {

void AppendJsonEscaped(std::string* out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

}  // namespace

std::string RenderChromeTrace(const std::vector<TraceEvent>& events) {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : events) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    AppendJsonEscaped(&out, e.name);
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "\",\"ph\":\"X\",\"pid\":1,\"tid\":%u,\"ts\":%llu,"
                  "\"dur\":%llu}",
                  e.tid, static_cast<unsigned long long>(e.start_us),
                  static_cast<unsigned long long>(e.dur_us));
    out += buf;
  }
  out += "]}\n";
  return out;
}

}  // namespace patchindex::obs
