#include "obs/flight_recorder.h"

#include <algorithm>
#include <utility>

#include "common/epoch_gc.h"
#include "obs/mem_tracker.h"

namespace patchindex::obs {

namespace {

std::uint64_t UnixMicrosNow() {
  const auto now = std::chrono::system_clock::now().time_since_epoch();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(now).count());
}

}  // namespace

const char* QueryPhaseName(QueryPhase phase) {
  switch (phase) {
    case QueryPhase::kParse:
      return "parse";
    case QueryPhase::kBind:
      return "bind";
    case QueryPhase::kOptimize:
      return "optimize";
    case QueryPhase::kExecute:
      return "execute";
    case QueryPhase::kCommitWait:
      return "commit_wait";
    case QueryPhase::kCommit:
      return "commit";
  }
  return "unknown";
}

void FlightRecorder::SetPhaseDetail(const Handle& handle,
                                    std::string detail) {
  std::lock_guard<std::mutex> lock(handle->detail_mu);
  handle->phase_detail = std::move(detail);
}

void FlightRecorder::SetMemory(const Handle& handle,
                               std::shared_ptr<MemoryTracker> tracker) {
  std::lock_guard<std::mutex> lock(handle->detail_mu);
  handle->mem = std::move(tracker);
}

FlightRecorder::FlightRecorder(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 1)) {}

FlightRecorder::Handle FlightRecorder::Begin(std::uint64_t session_id,
                                             std::int64_t connection_id,
                                             const std::string& sql) {
  auto entry = std::make_shared<ActiveEntry>();
  entry->session_id = session_id;
  entry->connection_id = connection_id;
  entry->sql = sql;
  entry->start_unix_us = UnixMicrosNow();
  entry->start = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lock(mu_);
  entry->query_id = next_query_id_++;
  active_.emplace(entry->query_id, entry);
  return entry;
}

void FlightRecorder::Complete(const Handle& handle, QueryRecord record) {
  record.query_id = handle->query_id;
  record.session_id = handle->session_id;
  record.connection_id = handle->connection_id;
  record.sql = handle->sql;
  record.start_unix_us = handle->start_unix_us;
  {
    // Detach the tracker so its balance releases when the session's
    // reference drops — not when the epoch GC retires this entry.
    std::lock_guard<std::mutex> detail_lock(handle->detail_mu);
    handle->mem.reset();
  }
  Handle removed;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = active_.find(handle->query_id);
    if (it != active_.end()) {
      removed = std::move(it->second);
      active_.erase(it);
    }
    if (ring_.size() < capacity_) {
      ring_.push_back(std::move(record));
    } else {
      ring_[next_slot_] = std::move(record);
    }
    next_slot_ = (next_slot_ + 1) % capacity_;
    ++completed_;
  }
  if (removed != nullptr) {
    // Defer the registry's reference through the epoch GC: raw
    // ActiveEntry pointers resolved under an epoch guard stay valid
    // until every such guard releases.
    EpochGc::Global().Retire([entry = std::move(removed)]() mutable {
      entry.reset();
    });
  }
}

std::vector<QueryRecord> FlightRecorder::CompletedSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<QueryRecord> out;
  out.reserve(ring_.size());
  // Newest first: walk backwards from the slot most recently written.
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    const std::size_t slot =
        (next_slot_ + ring_.size() - 1 - i) % ring_.size();
    out.push_back(ring_[slot]);
  }
  return out;
}

std::vector<ActiveQuery> FlightRecorder::ActiveSnapshot() const {
  const auto now = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ActiveQuery> out;
  out.reserve(active_.size());
  for (const auto& [id, entry] : active_) {
    ActiveQuery q;
    q.query_id = entry->query_id;
    q.session_id = entry->session_id;
    q.connection_id = entry->connection_id;
    q.sql = entry->sql;
    q.phase = QueryPhaseName(
        static_cast<QueryPhase>(entry->phase.load(std::memory_order_relaxed)));
    {
      std::lock_guard<std::mutex> detail_lock(entry->detail_mu);
      if (!entry->phase_detail.empty()) {
        q.phase += "(" + entry->phase_detail + ")";
      }
      if (entry->mem != nullptr) {
        q.mem_bytes = entry->mem->current();
        q.mem_peak_bytes = entry->mem->peak();
      }
    }
    q.start_unix_us = entry->start_unix_us;
    q.elapsed_ms =
        std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
            now - entry->start)
            .count();
    out.push_back(std::move(q));
  }
  std::sort(out.begin(), out.end(),
            [](const ActiveQuery& a, const ActiveQuery& b) {
              return a.query_id < b.query_id;
            });
  return out;
}

}  // namespace patchindex::obs
