#ifndef PATCHINDEX_OBS_METRICS_HTTP_H_
#define PATCHINDEX_OBS_METRICS_HTTP_H_

#include <cstdint>
#include <functional>
#include <string>
#include <thread>

#include "common/status.h"
#include "obs/metrics.h"

namespace patchindex::obs {

/// A minimal HTTP/1.1 observability endpoint:
///   - `GET /metrics`  — the registry in Prometheus exposition text
///     format (0.0.4),
///   - `GET /healthz`  — `200 ok` while healthy, `503 draining` once the
///     health provider reports shutdown (orchestrator readiness checks),
///   - `GET /trace`    — the most recently captured query trace as
///     Chrome trace-event JSON (404 until a statement has been traced).
/// HEAD is answered like GET without the body. Anything else is 404;
/// malformed requests 400. Connections are handled one at a time on a
/// single accept-loop thread and closed after each response
/// (`Connection: close`) — a scrape endpoint, not a web server. Reads
/// carry a short timeout so a silent connect cannot stall scraping.
///
/// The registry must outlive the endpoint. Start/Stop from one thread;
/// install providers before Start.
class MetricsHttpServer {
 public:
  MetricsHttpServer(const MetricsRegistry& registry, std::string host,
                    std::uint16_t port);
  ~MetricsHttpServer();

  MetricsHttpServer(const MetricsHttpServer&) = delete;
  MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

  /// Binds and starts the accept loop. kUnavailable when the address
  /// cannot be bound.
  Status Start();

  /// Stops accepting and joins the loop thread; idempotent.
  void Stop();

  /// The bound TCP port (resolves port 0). Valid after Start().
  std::uint16_t port() const { return port_; }

  /// `/healthz` backing: return true while serving, false once
  /// draining. Unset, the endpoint always answers healthy.
  void set_health_provider(std::function<bool()> healthy) {
    healthy_ = std::move(healthy);
  }

  /// `/trace` backing: return the trace JSON to serve, empty for "none
  /// captured yet" (404). Unset, `/trace` is 404.
  void set_trace_provider(std::function<std::string()> trace) {
    trace_ = std::move(trace);
  }

 private:
  void Loop();

  const MetricsRegistry& registry_;
  std::string host_;
  std::uint16_t port_;
  std::function<bool()> healthy_;
  std::function<std::string()> trace_;
  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  bool started_ = false;
  std::thread loop_;
};

}  // namespace patchindex::obs

#endif  // PATCHINDEX_OBS_METRICS_HTTP_H_
