#include "obs/metrics_http.h"

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace patchindex::obs {

namespace {

/// Sends all of `data`, looping over partial writes. Scrape responses
/// are small; a failed or slow peer just loses its response.
void SendAll(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
#ifdef MSG_NOSIGNAL
                             MSG_NOSIGNAL
#else
                             0
#endif
    );
    if (n <= 0) return;
    sent += static_cast<std::size_t>(n);
  }
}

/// Builds the response; `head_only` keeps the headers (true
/// Content-Length included) and drops the body, per HEAD semantics.
std::string HttpResponse(const std::string& status_line,
                         const std::string& content_type,
                         const std::string& body, bool head_only = false) {
  std::string out = "HTTP/1.1 " + status_line + "\r\n";
  out += "Content-Type: " + content_type + "\r\n";
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  if (!head_only) out += body;
  return out;
}

/// True when the request line targets `path` ("GET /metrics HTTP/1.1",
/// optionally with a query string) after the already-matched method.
bool PathIs(const std::string& line, std::size_t method_len,
            const char* path) {
  const std::size_t n = std::strlen(path);
  if (line.compare(method_len, n, path) != 0) return false;
  const std::size_t end = method_len + n;
  return line.size() == end || line[end] == ' ' || line[end] == '?';
}

}  // namespace

MetricsHttpServer::MetricsHttpServer(const MetricsRegistry& registry,
                                     std::string host, std::uint16_t port)
    : registry_(registry), host_(std::move(host)), port_(port) {}

MetricsHttpServer::~MetricsHttpServer() { Stop(); }

Status MetricsHttpServer::Start() {
  if (::pipe(wake_pipe_) != 0) {
    return Status::Internal(std::string("pipe failed: ") +
                            std::strerror(errno));
  }
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_PASSIVE | AI_NUMERICSERV;
  addrinfo* res = nullptr;
  const std::string service = std::to_string(port_);
  const int rc = ::getaddrinfo(host_.c_str(), service.c_str(), &hints, &res);
  if (rc != 0) {
    ::close(wake_pipe_[0]);
    ::close(wake_pipe_[1]);
    wake_pipe_[0] = wake_pipe_[1] = -1;
    return Status::Unavailable("cannot resolve metrics address '" + host_ +
                               "': " + gai_strerror(rc));
  }
  Status last = Status::Unavailable("no usable address for '" + host_ + "'");
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    if (::bind(fd, ai->ai_addr, ai->ai_addrlen) != 0 ||
        ::listen(fd, 16) != 0) {
      last = Status::Unavailable("cannot listen on " + host_ + ":" + service +
                                 ": " + std::strerror(errno));
      ::close(fd);
      continue;
    }
    sockaddr_storage bound{};
    socklen_t len = sizeof bound;
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
      if (bound.ss_family == AF_INET) {
        port_ = ntohs(reinterpret_cast<sockaddr_in*>(&bound)->sin_port);
      } else if (bound.ss_family == AF_INET6) {
        port_ = ntohs(reinterpret_cast<sockaddr_in6*>(&bound)->sin6_port);
      }
    }
    listen_fd_ = fd;
    break;
  }
  ::freeaddrinfo(res);
  if (listen_fd_ < 0) {
    ::close(wake_pipe_[0]);
    ::close(wake_pipe_[1]);
    wake_pipe_[0] = wake_pipe_[1] = -1;
    return last;
  }
  started_ = true;
  loop_ = std::thread([this] { Loop(); });
  return Status::OK();
}

void MetricsHttpServer::Stop() {
  if (!started_) return;
  const char byte = 'x';
  (void)!::write(wake_pipe_[1], &byte, 1);
  if (loop_.joinable()) loop_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  ::close(wake_pipe_[0]);
  ::close(wake_pipe_[1]);
  wake_pipe_[0] = wake_pipe_[1] = -1;
  started_ = false;
}

void MetricsHttpServer::Loop() {
  for (;;) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_pipe_[0], POLLIN, 0}};
    const int n = ::poll(fds, 2, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if ((fds[1].revents & (POLLIN | POLLHUP)) != 0) return;
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int cfd = ::accept(listen_fd_, nullptr, nullptr);
    if (cfd < 0) continue;
    // A peer that connects and sends nothing must not park the loop.
    timeval tv{};
    tv.tv_sec = 5;
    ::setsockopt(cfd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);

    // Read up to the end of the request head; the request line is all we
    // route on (no request bodies on a scrape endpoint).
    std::string req;
    char buf[1024];
    while (req.find("\r\n\r\n") == std::string::npos && req.size() < 8192) {
      const ssize_t got = ::recv(cfd, buf, sizeof buf, 0);
      if (got <= 0) break;
      req.append(buf, static_cast<std::size_t>(got));
    }
    const std::size_t eol = req.find("\r\n");
    if (eol == std::string::npos) {
      SendAll(cfd, HttpResponse("400 Bad Request", "text/plain",
                                "malformed request\n"));
      ::close(cfd);
      continue;
    }
    const std::string line = req.substr(0, eol);
    // GET and HEAD route identically; HEAD drops the body.
    bool head_only = false;
    std::size_t method_len = 0;
    if (line.rfind("GET ", 0) == 0) {
      method_len = 4;
    } else if (line.rfind("HEAD ", 0) == 0) {
      method_len = 5;
      head_only = true;
    }
    if (method_len == 0) {
      SendAll(cfd, HttpResponse("404 Not Found", "text/plain",
                                "not found\n"));
    } else if (PathIs(line, method_len, "/metrics")) {
      SendAll(cfd,
              HttpResponse("200 OK", "text/plain; version=0.0.4",
                           registry_.RenderPrometheus(), head_only));
    } else if (PathIs(line, method_len, "/healthz")) {
      const bool ok = !healthy_ || healthy_();
      SendAll(cfd, ok ? HttpResponse("200 OK", "text/plain", "ok\n",
                                     head_only)
                      : HttpResponse("503 Service Unavailable",
                                     "text/plain", "draining\n",
                                     head_only));
    } else if (PathIs(line, method_len, "/trace")) {
      const std::string json = trace_ ? trace_() : std::string();
      if (json.empty()) {
        SendAll(cfd, HttpResponse("404 Not Found", "text/plain",
                                  "no trace captured yet\n", head_only));
      } else {
        SendAll(cfd, HttpResponse("200 OK", "application/json", json,
                                  head_only));
      }
    } else {
      SendAll(cfd,
              HttpResponse("404 Not Found", "text/plain", "not found\n"));
    }
    ::close(cfd);
  }
}

}  // namespace patchindex::obs
