#ifndef PATCHINDEX_OBS_METRICS_H_
#define PATCHINDEX_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace patchindex::obs {

/// How many shards every counter/histogram spreads its writes over.
/// Threads are assigned a stable shard by arrival order, so with up to
/// kStripes concurrently-writing threads the hot path is an uncontended
/// relaxed fetch_add on a thread-private cache line; beyond that threads
/// share shards but never block.
inline constexpr std::size_t kStripes = 16;

/// The calling thread's shard index (stable for the thread's lifetime).
std::size_t ThisThreadStripe();

/// A monotonically increasing counter. Writes are sharded (see kStripes);
/// Value() sums the shards, so reads are approximate only in that they
/// may miss increments still in flight — never double-count.
class Counter {
 public:
  void Add(std::uint64_t n = 1) {
    shards_[ThisThreadStripe()].v.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t Value() const {
    std::uint64_t total = 0;
    for (const Shard& s : shards_) {
      total += s.v.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> v{0};
  };
  std::array<Shard, kStripes> shards_;
};

/// A point-in-time value (e.g. open connections). Single atomic — gauges
/// are not hot-path.
class Gauge {
 public:
  void Set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(std::int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  std::int64_t Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Bucket count of every latency histogram. Buckets are log-linear
/// (microseconds): 0..3 hold their exact value, and every power-of-two
/// range [2^k, 2^(k+1)) for k >= 2 is split into 4 equal sub-buckets, so
/// percentile reads resolve to ~12.5% of the value instead of a full
/// power of two. 152 buckets reach 2^39 - 1 us (~6 days); larger values
/// clamp into the last bucket.
inline constexpr std::size_t kHistogramBuckets = 152;

/// A merged view of one histogram: total count, total sum (microseconds)
/// and per-bucket counts. Supports subtraction for interval measurements
/// (benchmarks snapshot before/after a sweep).
struct HistogramSnapshot {
  std::uint64_t count = 0;
  std::uint64_t sum_us = 0;
  std::array<std::uint64_t, kHistogramBuckets> buckets{};

  /// Upper bound (microseconds) of bucket `b` — the resolution limit of
  /// every percentile read off this histogram. Buckets 0..3 are exact;
  /// bucket 4 + 4g + s (g >= 0, s in 0..3) covers the s-th quarter of
  /// [2^(g+2), 2^(g+3)), ending at 2^(g+2) + (s+1)*2^g - 1.
  static std::uint64_t BucketUpperUs(std::size_t b) {
    if (b < 4) return b;
    const std::uint64_t g = (b - 4) / 4;
    const std::uint64_t sub = (b - 4) % 4;
    return (std::uint64_t{1} << (g + 2)) + (sub + 1) * (std::uint64_t{1} << g) -
           1;
  }

  /// The q-quantile (q in [0,1]) as the upper bound of the bucket where
  /// the cumulative count crosses q * count; 0 when empty.
  double Percentile(double q) const;

  double MeanUs() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum_us) /
                            static_cast<double>(count);
  }

  /// Subtracts `base` (an earlier snapshot of the same histogram),
  /// turning two cumulative snapshots into an interval one.
  HistogramSnapshot& Subtract(const HistogramSnapshot& base);
};

/// A log-bucketed latency histogram over microsecond values. Writes are
/// sharded like Counter's: the hot path is two uncontended relaxed
/// increments (bucket + sum). Snapshot() merges the shards.
class Histogram {
 public:
  static std::size_t BucketOf(std::uint64_t us);

  void Record(std::uint64_t us) {
    Shard& s = shards_[ThisThreadStripe()];
    s.buckets[BucketOf(us)].fetch_add(1, std::memory_order_relaxed);
    s.sum_us.fetch_add(us, std::memory_order_relaxed);
  }

  void RecordNanos(std::int64_t ns) {
    Record(ns <= 0 ? 0 : static_cast<std::uint64_t>(ns) / 1000);
  }

  HistogramSnapshot Snapshot() const;

 private:
  struct alignas(64) Shard {
    std::array<std::atomic<std::uint64_t>, kHistogramBuckets> buckets{};
    std::atomic<std::uint64_t> sum_us{0};
  };
  std::array<Shard, kStripes> shards_;
};

/// One histogram with its name — the row source of `pi_stats.histograms`
/// (which explodes each snapshot into one row per non-empty bucket).
struct NamedHistogram {
  std::string name;
  HistogramSnapshot snapshot;
};

/// One metric flattened into plain values — the row shape served by the
/// `pi_stats.metrics` system table. Counters and gauges carry `value`;
/// histograms carry count/sum and the summary percentiles instead.
struct MetricSample {
  std::string name;
  const char* kind = "counter";  // "counter" | "gauge" | "histogram"
  std::int64_t value = 0;
  std::uint64_t count = 0;
  std::uint64_t sum_us = 0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
};

/// A named collection of metrics with two renderings: Prometheus
/// exposition text (the piserver --metrics-port endpoint) and a compact
/// human-readable form (the .stats meta command).
///
/// Get* calls are get-or-create: asking for an existing name returns the
/// same object (so the engine and the server can share one registry), and
/// asking for an existing name with a different metric kind is a
/// programming error. Callbacks render as counters whose value is read at
/// render time — how ServerStats folds in without changing its struct.
/// Registration takes a mutex; recording on the returned objects is
/// lock-free. Returned pointers stay valid for the registry's lifetime.
class MetricsRegistry {
 public:
  Counter* GetCounter(const std::string& name, const std::string& help);
  Gauge* GetGauge(const std::string& name, const std::string& help);
  Histogram* GetHistogram(const std::string& name, const std::string& help);

  /// Registers (or replaces) a counter whose value is pulled from `fn`
  /// at render/snapshot time.
  void SetCallback(const std::string& name, const std::string& help,
                   std::function<std::uint64_t()> fn);

  /// Merged snapshot of one histogram; a zero snapshot when `name` is
  /// unknown (or not a histogram).
  HistogramSnapshot HistogramSnapshotOf(const std::string& name) const;

  /// Prometheus text exposition format (version 0.0.4): HELP/TYPE
  /// comments, counters and gauges as plain samples, histograms as
  /// cumulative `_bucket{le=...}` series plus `_sum`/`_count`.
  std::string RenderPrometheus() const;

  /// Compact human-readable rendering, one metric per line; histograms
  /// show count/mean/p50/p95/p99.
  std::string RenderText() const;

  /// Every metric flattened to plain values, in registration order —
  /// the programmatic view behind `SELECT * FROM pi_stats.metrics`.
  /// Callbacks sample as counters, exactly like the renderers.
  std::vector<MetricSample> SnapshotAll() const;

  /// Every histogram's full bucket snapshot, in registration order —
  /// the row source of `pi_stats.histograms` (per-bucket detail the
  /// percentile summaries in pi_stats.metrics flatten away).
  std::vector<NamedHistogram> SnapshotHistograms() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram, kCallback };
  struct Entry {
    std::string name;
    std::string help;
    Kind kind = Kind::kCounter;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
    std::function<std::uint64_t()> callback;
  };

  Entry* FindOrCreateLocked(const std::string& name, const std::string& help,
                            Kind kind);

  mutable std::mutex mu_;
  /// Insertion order, for stable rendering; entries are never removed.
  std::vector<std::unique_ptr<Entry>> entries_;
};

}  // namespace patchindex::obs

#endif  // PATCHINDEX_OBS_METRICS_H_
