#ifndef PATCHINDEX_OBS_PROFILE_H_
#define PATCHINDEX_OBS_PROFILE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace patchindex {

struct LogicalNode;

namespace obs {

/// Per-plan-node accumulator filled by the executor while a profiled
/// query runs. Workers add with relaxed atomics; the coordinator reads
/// after the worker barrier, so no stronger ordering is needed.
struct NodeStats {
  /// Rows produced by the operator, summed across workers. For merge
  /// operators (aggregate/sort), the coordinator overwrites this with the
  /// final merged row count — per-worker partial-group counts depend on
  /// morsel scheduling and would not be deterministic.
  std::atomic<std::uint64_t> rows{0};
  /// Morsels claimed from the shared queue (scan nodes only).
  std::atomic<std::uint64_t> morsels{0};
  /// Worker pipeline instances that executed this operator.
  std::atomic<std::uint64_t> workers{0};
  /// Wall time inside the operator (inclusive of its inputs), summed
  /// across workers, nanoseconds.
  std::atomic<std::uint64_t> time_ns{0};
  /// Slowest single worker's inclusive wall time, nanoseconds.
  std::atomic<std::uint64_t> max_worker_ns{0};
  /// Join build phase wall time (join nodes only), nanoseconds.
  std::atomic<std::uint64_t> build_ns{0};
  /// Bytes this operator materialized (hash tables, sort buffers, spill
  /// partitions), summed across workers. Estimates are content-based —
  /// per-worker parts sum to the same total regardless of morsel
  /// scheduling — so the figure is deterministic for a fixed input.
  std::atomic<std::uint64_t> mem_bytes{0};

  void AddWorkerTime(std::uint64_t ns) {
    time_ns.fetch_add(ns, std::memory_order_relaxed);
    std::uint64_t prev = max_worker_ns.load(std::memory_order_relaxed);
    while (prev < ns && !max_worker_ns.compare_exchange_weak(
                            prev, ns, std::memory_order_relaxed)) {
    }
  }
};

/// Execution-time profile accumulator, keyed by plan node. The whole plan
/// is registered up front on the coordinator thread; workers then only do
/// read-only lookups, so StatsFor is safe without locking while the query
/// runs.
class ExecProfile {
 public:
  /// Pre-registers every node of `plan` (recursively). Must be called
  /// before any worker touches the profile.
  void RegisterPlan(const LogicalNode& plan);

  /// The accumulator for `node`; registers it on the spot if RegisterPlan
  /// missed it (coordinator-thread use only).
  NodeStats& StatsFor(const LogicalNode* node);

  /// Lookup without registration; nullptr when the node is unknown. Safe
  /// from worker threads (the map is read-only once registration is
  /// done); the returned stats are written with atomics.
  NodeStats* Find(const LogicalNode* node) const;

 private:
  std::unordered_map<const LogicalNode*, std::unique_ptr<NodeStats>> stats_;
};

/// One plan operator's finished measurements, self-contained (no plan
/// pointers), in pre-order plan position.
struct OpProfile {
  std::string label;
  int depth = 0;
  std::uint64_t rows = 0;
  std::uint64_t morsels = 0;
  std::uint64_t workers = 0;
  double time_ms = 0.0;
  double max_worker_ms = 0.0;
  double build_ms = 0.0;
  std::uint64_t mem_bytes = 0;
};

/// A finished query's profile: phase spans, execution mode, and (when
/// operator profiling was requested, i.e. EXPLAIN ANALYZE) the annotated
/// operator tree. Attached to QueryResult::profile.
struct QueryProfile {
  double parse_ms = 0.0;
  double bind_ms = 0.0;
  double optimize_ms = 0.0;
  /// Plan execution for reads; row matching / delta building for DML.
  double execute_ms = 0.0;
  /// Time spent waiting for the table's exclusive catalog lock (DML).
  double commit_wait_ms = 0.0;
  /// PatchIndex commit protocol (handle -> checkpoint -> maintain) (DML).
  double commit_ms = 0.0;
  double total_ms = 0.0;

  bool parallel = false;
  bool parallel_join = false;
  bool parallel_sort = false;
  /// Worker pool size used by the executor (0 when not profiled).
  std::size_t pool_workers = 0;
  /// Statement-wide peak of the per-query MemoryTracker — the figure
  /// QueryRecord::peak_mem_bytes and pi_stats.queries report.
  std::uint64_t peak_mem_bytes = 0;

  /// Pre-order operator tree; empty unless operator profiling ran.
  std::vector<OpProfile> ops;

  /// The EXPLAIN ANALYZE rendering: one line per operator
  /// (`label  [rows=.., morsels=.., workers=.., time=..ms]`) followed by
  /// a `phases:` line and an `execution:` line. Row/morsel/worker counts
  /// are deterministic for a fixed engine configuration; times are not —
  /// golden tests mask `..ms` values.
  std::vector<std::string> RenderLines() const;
};

/// Converts `profile`'s per-node accumulators into `out->ops` in plan
/// pre-order, labelling each node with its EXPLAIN label.
void FillOpProfiles(const LogicalNode& plan, const ExecProfile& profile,
                    QueryProfile* out);

}  // namespace obs
}  // namespace patchindex

#endif  // PATCHINDEX_OBS_PROFILE_H_
