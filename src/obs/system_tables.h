#ifndef PATCHINDEX_OBS_SYSTEM_TABLES_H_
#define PATCHINDEX_OBS_SYSTEM_TABLES_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "storage/table.h"

namespace patchindex::obs {

/// The read-only `pi_stats` system schema: virtual tables the binder
/// resolves by name and the engine materializes per execution from live
/// engine state (metrics registry, flight recorder, server connections,
/// catalog, durability manager). This module owns the names and column
/// layouts plus one empty placeholder table per id — giving the binder a
/// stable `PartitionedTable*` to type-check against without the engine;
/// the engine-side materializer lives in engine/system_tables.cc.
enum class SystemTableId : int {
  kMetrics = 0,
  kQueries,
  kActiveQueries,
  kConnections,
  kTables,
  kPartitions,
  kWal,
  kMemory,
  kHistograms,
};

inline constexpr std::size_t kNumSystemTables = 9;

struct SystemTableDef {
  SystemTableId id;
  /// Fully qualified name, e.g. "pi_stats.metrics".
  const char* name;
  /// An empty single-partition table with the system table's schema.
  /// Never registered in any catalog and never scanned — execution swaps
  /// in a freshly materialized table (see engine/system_tables.cc).
  const PartitionedTable* placeholder;
};

/// One live server connection — the row shape of `pi_stats.connections`.
/// Produced by the provider the network server installs on the engine
/// (Engine::SetConnectionsProvider); an engine without a server serves
/// the table empty.
struct ConnectionInfo {
  std::int64_t connection_id = -1;
  std::int64_t session_id = 0;
  /// Peer address as "host:port".
  std::string remote;
  /// "open" while serving, "draining" once the server began stopping.
  std::string state;
  /// Queued-but-unserved tasks on the connection's FIFO.
  std::int64_t queue_depth = 0;
  /// Statements this connection has completed.
  std::int64_t queries = 0;
};

/// True when `name` addresses the reserved system schema (starts with
/// "pi_stats."); such names never resolve against the user catalog.
bool IsSystemSchemaName(const std::string& name);

/// The definition for a fully qualified system-table name; nullptr when
/// `name` is not "pi_stats.<known table>".
const SystemTableDef* FindSystemTable(const std::string& name);

/// The definition for a given id (always valid).
const SystemTableDef* SystemTable(SystemTableId id);

/// Column layout of one system table.
const Schema& SystemTableSchema(SystemTableId id);

}  // namespace patchindex::obs

#endif  // PATCHINDEX_OBS_SYSTEM_TABLES_H_
