#ifndef PATCHINDEX_OBS_WAIT_EVENT_H_
#define PATCHINDEX_OBS_WAIT_EVENT_H_

#include <chrono>
#include <cstdint>

#include "obs/metrics.h"

namespace patchindex::obs {

/// RAII measurement of one blocking wait — a table writer-lock
/// acquisition, a thread-pool queue stall, a server connection-queue
/// stall, a WAL fsync. The elapsed time lands in a per-event-class
/// `pidx_wait_*_us` histogram when the span closes (or at an explicit
/// Stop()). A null histogram makes the span free, so call sites don't
/// branch on whether metrics are enabled.
class WaitSpan {
 public:
  explicit WaitSpan(Histogram* hist)
      : hist_(hist),
        start_(hist != nullptr ? std::chrono::steady_clock::now()
                               : std::chrono::steady_clock::time_point{}) {}

  ~WaitSpan() { Stop(); }

  WaitSpan(const WaitSpan&) = delete;
  WaitSpan& operator=(const WaitSpan&) = delete;

  /// Ends the wait early and records it; returns the waited nanoseconds
  /// (0 when unmeasured). Subsequent Stop()s are no-ops.
  std::uint64_t Stop() {
    if (hist_ == nullptr) return 0;
    auto elapsed = std::chrono::steady_clock::now() - start_;
    std::uint64_t ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count());
    hist_->RecordNanos(ns);
    hist_ = nullptr;
    return ns;
  }

 private:
  Histogram* hist_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace patchindex::obs

#endif  // PATCHINDEX_OBS_WAIT_EVENT_H_
