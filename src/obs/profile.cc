#include "obs/profile.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>

#include "optimizer/explain.h"
#include "optimizer/plan.h"

namespace patchindex::obs {

namespace {

void Appendf(std::string* out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void Appendf(std::string* out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (n > 0) out->append(buf, std::min(sizeof(buf) - 1, std::size_t(n)));
}

double NsToMs(std::uint64_t ns) { return static_cast<double>(ns) / 1e6; }

void Walk(const LogicalNode& node, const ExecProfile& profile, int depth,
          std::vector<OpProfile>* out) {
  OpProfile op;
  op.label = PlanNodeLabel(node);
  op.depth = depth;
  if (const NodeStats* s = profile.Find(&node)) {
    op.rows = s->rows.load(std::memory_order_relaxed);
    op.morsels = s->morsels.load(std::memory_order_relaxed);
    op.workers = s->workers.load(std::memory_order_relaxed);
    op.time_ms = NsToMs(s->time_ns.load(std::memory_order_relaxed));
    op.max_worker_ms = NsToMs(s->max_worker_ns.load(std::memory_order_relaxed));
    op.build_ms = NsToMs(s->build_ns.load(std::memory_order_relaxed));
    op.mem_bytes = s->mem_bytes.load(std::memory_order_relaxed);
  }
  out->push_back(std::move(op));
  for (const auto& child : node.children) {
    Walk(*child, profile, depth + 1, out);
  }
}

}  // namespace

void ExecProfile::RegisterPlan(const LogicalNode& plan) {
  StatsFor(&plan);
  for (const auto& child : plan.children) RegisterPlan(*child);
}

NodeStats& ExecProfile::StatsFor(const LogicalNode* node) {
  std::unique_ptr<NodeStats>& slot = stats_[node];
  if (slot == nullptr) slot = std::make_unique<NodeStats>();
  return *slot;
}

NodeStats* ExecProfile::Find(const LogicalNode* node) const {
  const auto it = stats_.find(node);
  return it == stats_.end() ? nullptr : it->second.get();
}

void FillOpProfiles(const LogicalNode& plan, const ExecProfile& profile,
                    QueryProfile* out) {
  out->ops.clear();
  Walk(plan, profile, 0, &out->ops);
}

std::vector<std::string> QueryProfile::RenderLines() const {
  std::vector<std::string> lines;
  lines.reserve(ops.size() + 2);
  for (const OpProfile& op : ops) {
    std::string line(static_cast<std::size_t>(op.depth) * 2, ' ');
    line += op.label;
    Appendf(&line, "  [rows=%llu",
            static_cast<unsigned long long>(op.rows));
    if (op.morsels > 0) {
      Appendf(&line, ", morsels=%llu",
              static_cast<unsigned long long>(op.morsels));
    }
    Appendf(&line, ", workers=%llu, time=%.3fms",
            static_cast<unsigned long long>(op.workers), op.time_ms);
    if (op.workers > 1) Appendf(&line, ", max=%.3fms", op.max_worker_ms);
    if (op.build_ms > 0.0) Appendf(&line, ", build=%.3fms", op.build_ms);
    if (op.mem_bytes > 0) {
      Appendf(&line, ", mem=%llu",
              static_cast<unsigned long long>(op.mem_bytes));
    }
    line += "]";
    lines.push_back(std::move(line));
  }
  std::string phases;
  Appendf(&phases,
          "phases: parse=%.3fms bind=%.3fms optimize=%.3fms execute=%.3fms",
          parse_ms, bind_ms, optimize_ms, execute_ms);
  if (commit_wait_ms > 0.0 || commit_ms > 0.0) {
    Appendf(&phases, " lock=%.3fms commit=%.3fms", commit_wait_ms, commit_ms);
  }
  Appendf(&phases, " total=%.3fms", total_ms);
  if (peak_mem_bytes > 0) {
    Appendf(&phases, " peak_mem=%llu",
            static_cast<unsigned long long>(peak_mem_bytes));
  }
  lines.push_back(std::move(phases));
  std::string mode = "execution: ";
  if (parallel) {
    Appendf(&mode, "parallel, workers=%zu", pool_workers);
    if (parallel_join) mode += ", parallel join";
    if (parallel_sort) mode += ", parallel sort";
  } else {
    mode += "serial";
  }
  lines.push_back(std::move(mode));
  return lines;
}

}  // namespace patchindex::obs
