#ifndef PATCHINDEX_OBS_TRACE_H_
#define PATCHINDEX_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace patchindex::obs {

/// One completed span on a query's timeline. Times are microseconds
/// relative to the owning TraceBuffer's creation (the query's start), so
/// an exported trace always begins at ts=0.
struct TraceEvent {
  std::string name;
  /// Timeline lane: 0 is the coordinating session thread, 1..N are the
  /// executor's pool workers (worker index + 1).
  std::uint32_t tid = 0;
  std::uint64_t start_us = 0;
  std::uint64_t dur_us = 0;
};

/// Span sink for one traced query, created at statement start when the
/// engine's trace sampler selects the query and carried through the
/// executor next to the ExecProfile. Add() takes a short mutex — tracing
/// is a sampled diagnostic path, not the steady-state hot path (with
/// sampling off no TraceBuffer exists and nothing is paid).
class TraceBuffer {
 public:
  /// `base_offset_us` backdates the timeline origin: a buffer created
  /// after parse/bind already happened passes their combined span so the
  /// synthetic parse/bind events it then Add()s occupy [0, offset) and
  /// live spans start at ~offset instead of overlapping them.
  explicit TraceBuffer(std::uint64_t base_offset_us = 0)
      : base_(std::chrono::steady_clock::now() -
              std::chrono::microseconds(base_offset_us)) {}

  /// Microseconds elapsed since the buffer (the query) started.
  std::uint64_t NowUs() const {
    const auto d = std::chrono::steady_clock::now() - base_;
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(d).count());
  }

  void Add(std::string name, std::uint32_t tid, std::uint64_t start_us,
           std::uint64_t dur_us) {
    std::lock_guard<std::mutex> lock(mu_);
    events_.push_back(
        TraceEvent{std::move(name), tid, start_us, dur_us});
  }

  std::vector<TraceEvent> Events() const {
    std::lock_guard<std::mutex> lock(mu_);
    return events_;
  }

 private:
  std::chrono::steady_clock::time_point base_;
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
};

/// RAII span: records [construction, destruction) onto `buf` (no-op when
/// `buf` is null, so call sites need no sampling branches).
class TraceSpan {
 public:
  TraceSpan(TraceBuffer* buf, const char* name, std::uint32_t tid)
      : buf_(buf), name_(name), tid_(tid),
        start_us_(buf == nullptr ? 0 : buf->NowUs()) {}
  ~TraceSpan() {
    if (buf_ != nullptr) {
      buf_->Add(name_, tid_, start_us_, buf_->NowUs() - start_us_);
    }
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  TraceBuffer* buf_;
  const char* name_;
  std::uint32_t tid_;
  std::uint64_t start_us_;
};

/// Renders spans as Chrome trace-event JSON (the array-of-"X"-events
/// form) — loadable in chrome://tracing and Perfetto. Event names are
/// JSON-escaped; ts/dur are microseconds.
std::string RenderChromeTrace(const std::vector<TraceEvent>& events);

}  // namespace patchindex::obs

#endif  // PATCHINDEX_OBS_TRACE_H_
