#ifndef PATCHINDEX_OBS_FLIGHT_RECORDER_H_
#define PATCHINDEX_OBS_FLIGHT_RECORDER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace patchindex::obs {

class MemoryTracker;

/// One completed statement as retained by the flight recorder — the row
/// shape of `pi_stats.queries`. Self-contained: no plan or session
/// pointers, safe to copy out of the ring at any time.
struct QueryRecord {
  std::uint64_t query_id = 0;
  std::uint64_t session_id = 0;
  /// Server connection the statement arrived on; -1 for in-process
  /// sessions (local pisql, tests, piserver --init).
  std::int64_t connection_id = -1;
  std::string sql;
  /// "ok", or the Status code name for failed statements.
  std::string status = "ok";
  std::string error;
  std::uint64_t rows_returned = 0;
  std::uint64_t rows_affected = 0;
  bool parallel = false;
  /// Commit sequence number assigned by the WAL for durable DML; -1
  /// otherwise.
  std::int64_t csn = -1;
  /// Wall-clock statement start (unix microseconds).
  std::uint64_t start_unix_us = 0;
  double total_ms = 0.0;
  double parse_ms = 0.0;
  double bind_ms = 0.0;
  double optimize_ms = 0.0;
  double execute_ms = 0.0;
  double commit_wait_ms = 0.0;
  double commit_ms = 0.0;
  /// Statement-wide peak of the per-query memory tracker (the same
  /// figure EXPLAIN ANALYZE's `peak_mem=` renders); 0 when the statement
  /// ran without accounting.
  std::uint64_t peak_mem_bytes = 0;
};

/// Where an in-flight statement currently is. Advanced by the session as
/// the statement moves through the funnel; read by pi_stats.active_queries
/// snapshots from other threads.
enum class QueryPhase : int {
  kParse = 0,
  kBind,
  kOptimize,
  kExecute,
  /// DML waiting for the table's writer–writer lock (readers never hold
  /// it under MVCC). The phase detail names the blocking table, so
  /// pi_stats.active_queries shows e.g. "commit_wait(orders)".
  kCommitWait,
  kCommit,
};

const char* QueryPhaseName(QueryPhase phase);

/// One in-flight statement as seen by `pi_stats.active_queries`.
struct ActiveQuery {
  std::uint64_t query_id = 0;
  std::uint64_t session_id = 0;
  std::int64_t connection_id = -1;
  std::string sql;
  /// Phase name, with the detail appended as "phase(detail)" when set —
  /// a commit-waiting DML statement shows the table it is blocked on.
  std::string phase = "parse";
  std::uint64_t start_unix_us = 0;
  double elapsed_ms = 0.0;
  /// Bytes the statement's memory tracker has charged so far; 0 when the
  /// statement has not attached one (parse/bind) or runs unaccounted.
  std::uint64_t mem_bytes = 0;
  /// High-water mark of mem_bytes so far (feeds pi_stats.memory's
  /// peak_bytes for in-flight statements).
  std::uint64_t mem_peak_bytes = 0;
};

/// Per-engine statement recorder: an active-query registry (what is
/// running right now) plus a fixed-capacity ring of the last N completed
/// QueryRecords (what just happened). Lock-light by construction — a
/// statement takes the mutex exactly twice (Begin and Complete), phase
/// updates are a relaxed atomic store on a handle the session holds, and
/// nothing here runs on the per-row or per-morsel path. Snapshots copy
/// under the same short mutex.
class FlightRecorder {
 public:
  /// An in-flight statement's registry entry. The session keeps the
  /// handle returned by Begin and advances `phase` through it without
  /// touching the recorder's mutex.
  struct ActiveEntry {
    std::uint64_t query_id = 0;
    std::uint64_t session_id = 0;
    std::int64_t connection_id = -1;
    std::string sql;
    std::uint64_t start_unix_us = 0;
    std::chrono::steady_clock::time_point start;
    std::atomic<int> phase{static_cast<int>(QueryPhase::kParse)};
    /// Free-text qualifier of the current phase (the table a commit-wait
    /// is blocked on). Guarded by its own mutex — it is off the phase
    /// advance's lock-free path and set only around lock acquisition.
    mutable std::mutex detail_mu;
    std::string phase_detail;
    /// The statement's memory tracker, attached by the session when
    /// execution starts and detached by Complete (so the balance releases
    /// when the session's reference drops, not when the epoch GC retires
    /// this entry). Guarded by detail_mu; ActiveSnapshot samples
    /// current() through it. Raw ActiveEntry pointers resolved under an
    /// epoch guard must not touch it — only snapshot holders of the
    /// shared Handle do.
    std::shared_ptr<MemoryTracker> mem;
  };
  using Handle = std::shared_ptr<ActiveEntry>;

  explicit FlightRecorder(std::size_t capacity);

  /// Registers an in-flight statement and returns its handle; the
  /// assigned engine-wide query id is `handle->query_id`.
  Handle Begin(std::uint64_t session_id, std::int64_t connection_id,
               const std::string& sql);

  /// Lock-free phase advance (the handle came from Begin).
  static void SetPhase(const Handle& handle, QueryPhase phase) {
    handle->phase.store(static_cast<int>(phase), std::memory_order_relaxed);
  }

  /// Sets (or, with an empty string, clears) the phase's free-text
  /// qualifier shown in pi_stats.active_queries. Not on the hot path —
  /// used around commit-wait lock acquisition.
  static void SetPhaseDetail(const Handle& handle, std::string detail);

  /// Attaches the statement's memory tracker so pi_stats.active_queries
  /// can show live per-query bytes. Complete detaches it.
  static void SetMemory(const Handle& handle,
                        std::shared_ptr<MemoryTracker> tracker);

  /// Unregisters the statement and retires `record` into the ring.
  /// query_id/session_id/connection_id/sql/start time are filled from the
  /// handle; the caller provides status and measurements. The registry
  /// entry itself is retired through the global EpochGc: an observer that
  /// resolved a raw ActiveEntry* under an epoch guard (lock-free
  /// cancellation probes, the server's teardown sweep) keeps it valid
  /// until its guard releases.
  void Complete(const Handle& handle, QueryRecord record);

  /// The retained completed statements, newest first.
  std::vector<QueryRecord> CompletedSnapshot() const;

  /// Everything in flight right now, oldest first, with elapsed time
  /// computed at the snapshot.
  std::vector<ActiveQuery> ActiveSnapshot() const;

  std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::uint64_t next_query_id_ = 1;
  /// Ring of completed records: slot next_slot_ is overwritten next;
  /// grows up to capacity_ then wraps.
  std::vector<QueryRecord> ring_;
  std::size_t next_slot_ = 0;
  std::uint64_t completed_ = 0;
  std::unordered_map<std::uint64_t, Handle> active_;
};

}  // namespace patchindex::obs

#endif  // PATCHINDEX_OBS_FLIGHT_RECORDER_H_
