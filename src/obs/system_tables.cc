#include "obs/system_tables.h"

#include <array>
#include <memory>

namespace patchindex::obs {

namespace {

Schema MakeSchema(SystemTableId id) {
  using T = ColumnType;
  switch (id) {
    case SystemTableId::kMetrics:
      return Schema({{"name", T::kString},
                     {"kind", T::kString},
                     {"value", T::kInt64},
                     {"count", T::kInt64},
                     {"sum_us", T::kInt64},
                     {"p50_us", T::kInt64},
                     {"p95_us", T::kInt64},
                     {"p99_us", T::kInt64}});
    case SystemTableId::kQueries:
      return Schema({{"query_id", T::kInt64},
                     {"session_id", T::kInt64},
                     {"connection_id", T::kInt64},
                     {"sql", T::kString},
                     {"status", T::kString},
                     {"error", T::kString},
                     {"rows_returned", T::kInt64},
                     {"rows_affected", T::kInt64},
                     {"parallel", T::kInt64},
                     {"csn", T::kInt64},
                     {"start_us", T::kInt64},
                     {"total_ms", T::kDouble},
                     {"parse_ms", T::kDouble},
                     {"bind_ms", T::kDouble},
                     {"optimize_ms", T::kDouble},
                     {"execute_ms", T::kDouble},
                     {"commit_wait_ms", T::kDouble},
                     {"commit_ms", T::kDouble},
                     {"peak_mem_bytes", T::kInt64}});
    case SystemTableId::kActiveQueries:
      return Schema({{"query_id", T::kInt64},
                     {"session_id", T::kInt64},
                     {"connection_id", T::kInt64},
                     {"sql", T::kString},
                     {"phase", T::kString},
                     {"elapsed_ms", T::kDouble},
                     {"start_us", T::kInt64},
                     {"mem_bytes", T::kInt64}});
    case SystemTableId::kConnections:
      return Schema({{"connection_id", T::kInt64},
                     {"session_id", T::kInt64},
                     {"remote", T::kString},
                     {"state", T::kString},
                     {"queue_depth", T::kInt64},
                     {"queries", T::kInt64}});
    case SystemTableId::kTables:
      return Schema({{"name", T::kString},
                     {"partitions", T::kInt64},
                     {"rows", T::kInt64},
                     {"pending_inserts", T::kInt64},
                     {"pending_deletes", T::kInt64},
                     {"pending_modifies", T::kInt64},
                     {"indexes", T::kInt64},
                     {"durable", T::kInt64},
                     {"wal_bytes", T::kInt64},
                     {"last_checkpoint_csn", T::kInt64},
                     {"next_csn", T::kInt64},
                     {"live_versions", T::kInt64},
                     {"oldest_pinned_csn", T::kInt64}});
    case SystemTableId::kPartitions:
      return Schema({{"table_name", T::kString},
                     {"partition", T::kInt64},
                     {"rows", T::kInt64},
                     {"pending_inserts", T::kInt64},
                     {"pending_deletes", T::kInt64},
                     {"pending_modifies", T::kInt64},
                     {"indexes", T::kInt64}});
    case SystemTableId::kWal:
      return Schema({{"table_name", T::kString},
                     {"partition", T::kInt64},
                     {"wal_bytes", T::kInt64},
                     {"snapshot_csn", T::kInt64},
                     {"next_csn", T::kInt64},
                     {"broken", T::kInt64}});
    case SystemTableId::kMemory:
      // One row per accounting scope: the engine tracker, each catalog
      // table's resident bytes, each in-flight query, and the server's
      // queue tracker when one is attached.
      return Schema({{"scope", T::kString},
                     {"name", T::kString},
                     {"current_bytes", T::kInt64},
                     {"peak_bytes", T::kInt64},
                     {"limit_bytes", T::kInt64}});
    case SystemTableId::kHistograms:
      // One row per non-empty bucket of every registered histogram, with
      // cumulative counts (Prometheus-style le semantics).
      return Schema({{"name", T::kString},
                     {"le_us", T::kInt64},
                     {"bucket_count", T::kInt64},
                     {"cumulative_count", T::kInt64},
                     {"total_count", T::kInt64},
                     {"sum_us", T::kInt64}});
  }
  return Schema(std::vector<Field>{});
}

const char* SystemTableName(SystemTableId id) {
  switch (id) {
    case SystemTableId::kMetrics:
      return "pi_stats.metrics";
    case SystemTableId::kQueries:
      return "pi_stats.queries";
    case SystemTableId::kActiveQueries:
      return "pi_stats.active_queries";
    case SystemTableId::kConnections:
      return "pi_stats.connections";
    case SystemTableId::kTables:
      return "pi_stats.tables";
    case SystemTableId::kPartitions:
      return "pi_stats.partitions";
    case SystemTableId::kWal:
      return "pi_stats.wal";
    case SystemTableId::kMemory:
      return "pi_stats.memory";
    case SystemTableId::kHistograms:
      return "pi_stats.histograms";
  }
  return "pi_stats.unknown";
}

struct Registry {
  std::array<SystemTableDef, kNumSystemTables> defs;
  std::array<std::unique_ptr<PartitionedTable>, kNumSystemTables> placeholders;
  std::array<Schema, kNumSystemTables> schemas;

  Registry() {
    for (std::size_t i = 0; i < kNumSystemTables; ++i) {
      const auto id = static_cast<SystemTableId>(i);
      schemas[i] = MakeSchema(id);
      placeholders[i] = std::make_unique<PartitionedTable>(schemas[i], 1);
      defs[i] = SystemTableDef{id, SystemTableName(id), placeholders[i].get()};
    }
  }
};

const Registry& GetRegistry() {
  static const Registry* registry = new Registry();
  return *registry;
}

}  // namespace

bool IsSystemSchemaName(const std::string& name) {
  return name.rfind("pi_stats.", 0) == 0;
}

const SystemTableDef* FindSystemTable(const std::string& name) {
  if (!IsSystemSchemaName(name)) return nullptr;
  for (const SystemTableDef& def : GetRegistry().defs) {
    if (name == def.name) return &def;
  }
  return nullptr;
}

const SystemTableDef* SystemTable(SystemTableId id) {
  return &GetRegistry().defs[static_cast<std::size_t>(id)];
}

const Schema& SystemTableSchema(SystemTableId id) {
  return GetRegistry().schemas[static_cast<std::size_t>(id)];
}

}  // namespace patchindex::obs
