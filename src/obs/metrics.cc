#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cstdarg>
#include <cstdio>

#include "common/check.h"

namespace patchindex::obs {

namespace {

/// Appends printf-formatted text to `out` (registry renderers only run at
/// snapshot time, so the extra formatting cost is fine).
void Appendf(std::string* out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void Appendf(std::string* out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (n > 0) out->append(buf, std::min(sizeof(buf) - 1, std::size_t(n)));
}

bool ValidMetricName(const std::string& name) {
  if (name.empty()) return false;
  for (std::size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z');
    const bool digit = c >= '0' && c <= '9';
    if (!(alpha || c == '_' || (digit && i > 0))) return false;
  }
  return true;
}

}  // namespace

std::size_t ThisThreadStripe() {
  static std::atomic<std::size_t> next{0};
  static thread_local const std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed);
  return slot & (kStripes - 1);
}

double HistogramSnapshot::Percentile(double q) const {
  if (count == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double target = q * static_cast<double>(count);
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
    cumulative += buckets[b];
    if (static_cast<double>(cumulative) >= target && cumulative > 0) {
      return static_cast<double>(BucketUpperUs(b));
    }
  }
  return static_cast<double>(BucketUpperUs(kHistogramBuckets - 1));
}

HistogramSnapshot& HistogramSnapshot::Subtract(const HistogramSnapshot& base) {
  count -= std::min(count, base.count);
  sum_us -= std::min(sum_us, base.sum_us);
  for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
    buckets[b] -= std::min(buckets[b], base.buckets[b]);
  }
  return *this;
}

std::size_t Histogram::BucketOf(std::uint64_t us) {
  if (us < 4) return static_cast<std::size_t>(us);
  // us lives in [2^k, 2^(k+1)) with k >= 2; (us >> (k-2)) & 3 picks which
  // of the 4 equal sub-buckets of that range it falls in.
  const std::size_t k = static_cast<std::size_t>(std::bit_width(us)) - 1;
  const std::size_t sub = static_cast<std::size_t>((us >> (k - 2)) & 3);
  return std::min(4 + (k - 2) * 4 + sub, kHistogramBuckets - 1);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  for (const Shard& s : shards_) {
    snap.sum_us += s.sum_us.load(std::memory_order_relaxed);
    for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
      const std::uint64_t n = s.buckets[b].load(std::memory_order_relaxed);
      snap.buckets[b] += n;
      snap.count += n;
    }
  }
  return snap;
}

MetricsRegistry::Entry* MetricsRegistry::FindOrCreateLocked(
    const std::string& name, const std::string& help, Kind kind) {
  PIDX_CHECK(ValidMetricName(name));
  for (const std::unique_ptr<Entry>& e : entries_) {
    if (e->name == name) {
      PIDX_CHECK(e->kind == kind);
      return e.get();
    }
  }
  auto entry = std::make_unique<Entry>();
  entry->name = name;
  entry->help = help;
  entry->kind = kind;
  Entry* raw = entry.get();
  entries_.push_back(std::move(entry));
  return raw;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry* e = FindOrCreateLocked(name, help, Kind::kCounter);
  if (e->counter == nullptr) e->counter = std::make_unique<Counter>();
  return e->counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry* e = FindOrCreateLocked(name, help, Kind::kGauge);
  if (e->gauge == nullptr) e->gauge = std::make_unique<Gauge>();
  return e->gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry* e = FindOrCreateLocked(name, help, Kind::kHistogram);
  if (e->histogram == nullptr) e->histogram = std::make_unique<Histogram>();
  return e->histogram.get();
}

void MetricsRegistry::SetCallback(const std::string& name,
                                  const std::string& help,
                                  std::function<std::uint64_t()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry* e = FindOrCreateLocked(name, help, Kind::kCallback);
  e->callback = std::move(fn);
}

HistogramSnapshot MetricsRegistry::HistogramSnapshotOf(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const std::unique_ptr<Entry>& e : entries_) {
    if (e->name == name && e->kind == Kind::kHistogram &&
        e->histogram != nullptr) {
      return e->histogram->Snapshot();
    }
  }
  return HistogramSnapshot{};
}

std::vector<MetricSample> MetricsRegistry::SnapshotAll() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricSample> out;
  out.reserve(entries_.size());
  for (const std::unique_ptr<Entry>& e : entries_) {
    MetricSample s;
    s.name = e->name;
    switch (e->kind) {
      case Kind::kCounter:
      case Kind::kCallback:
        s.kind = "counter";
        s.value = static_cast<std::int64_t>(
            e->kind == Kind::kCounter ? e->counter->Value()
                                      : (e->callback ? e->callback() : 0));
        break;
      case Kind::kGauge:
        s.kind = "gauge";
        s.value = e->gauge->Value();
        break;
      case Kind::kHistogram: {
        const HistogramSnapshot snap = e->histogram->Snapshot();
        s.kind = "histogram";
        s.count = snap.count;
        s.sum_us = snap.sum_us;
        s.p50_us = snap.Percentile(0.50);
        s.p95_us = snap.Percentile(0.95);
        s.p99_us = snap.Percentile(0.99);
        break;
      }
    }
    out.push_back(std::move(s));
  }
  return out;
}

std::vector<NamedHistogram> MetricsRegistry::SnapshotHistograms() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<NamedHistogram> out;
  for (const std::unique_ptr<Entry>& e : entries_) {
    if (e->kind != Kind::kHistogram || e->histogram == nullptr) continue;
    out.push_back({e->name, e->histogram->Snapshot()});
  }
  return out;
}

std::string MetricsRegistry::RenderPrometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const std::unique_ptr<Entry>& e : entries_) {
    Appendf(&out, "# HELP %s %s\n", e->name.c_str(), e->help.c_str());
    switch (e->kind) {
      case Kind::kCounter:
      case Kind::kCallback: {
        const std::uint64_t v = e->kind == Kind::kCounter
                                    ? e->counter->Value()
                                    : (e->callback ? e->callback() : 0);
        Appendf(&out, "# TYPE %s counter\n", e->name.c_str());
        Appendf(&out, "%s %llu\n", e->name.c_str(),
                static_cast<unsigned long long>(v));
        break;
      }
      case Kind::kGauge:
        Appendf(&out, "# TYPE %s gauge\n", e->name.c_str());
        Appendf(&out, "%s %lld\n", e->name.c_str(),
                static_cast<long long>(e->gauge->Value()));
        break;
      case Kind::kHistogram: {
        const HistogramSnapshot snap = e->histogram->Snapshot();
        Appendf(&out, "# TYPE %s histogram\n", e->name.c_str());
        std::uint64_t cumulative = 0;
        for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
          cumulative += snap.buckets[b];
          // Skip interior empty buckets to keep scrapes small; always
          // emit the first bucket and +Inf so the series is well-formed.
          if (snap.buckets[b] == 0 && b != 0) continue;
          Appendf(&out, "%s_bucket{le=\"%llu\"} %llu\n", e->name.c_str(),
                  static_cast<unsigned long long>(
                      HistogramSnapshot::BucketUpperUs(b)),
                  static_cast<unsigned long long>(cumulative));
        }
        Appendf(&out, "%s_bucket{le=\"+Inf\"} %llu\n", e->name.c_str(),
                static_cast<unsigned long long>(snap.count));
        Appendf(&out, "%s_sum %llu\n", e->name.c_str(),
                static_cast<unsigned long long>(snap.sum_us));
        Appendf(&out, "%s_count %llu\n", e->name.c_str(),
                static_cast<unsigned long long>(snap.count));
        break;
      }
    }
  }
  return out;
}

std::string MetricsRegistry::RenderText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const std::unique_ptr<Entry>& e : entries_) {
    switch (e->kind) {
      case Kind::kCounter:
      case Kind::kCallback: {
        const std::uint64_t v = e->kind == Kind::kCounter
                                    ? e->counter->Value()
                                    : (e->callback ? e->callback() : 0);
        Appendf(&out, "%s %llu\n", e->name.c_str(),
                static_cast<unsigned long long>(v));
        break;
      }
      case Kind::kGauge:
        Appendf(&out, "%s %lld\n", e->name.c_str(),
                static_cast<long long>(e->gauge->Value()));
        break;
      case Kind::kHistogram: {
        const HistogramSnapshot snap = e->histogram->Snapshot();
        Appendf(&out,
                "%s count=%llu mean=%.1fus p50=%.0fus p95=%.0fus p99=%.0fus\n",
                e->name.c_str(), static_cast<unsigned long long>(snap.count),
                snap.MeanUs(), snap.Percentile(0.50), snap.Percentile(0.95),
                snap.Percentile(0.99));
        break;
      }
    }
  }
  return out;
}

}  // namespace patchindex::obs
