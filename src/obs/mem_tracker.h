#ifndef PATCHINDEX_OBS_MEM_TRACKER_H_
#define PATCHINDEX_OBS_MEM_TRACKER_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "obs/metrics.h"

namespace patchindex::obs {

struct NodeStats;

/// Thrown at a charge point when a memory budget would be exceeded.
/// Carries the operator that tripped the limit; the session boundary
/// catches it and converts it into a kResourceExhausted Status, so the
/// statement unwinds through the morsel executor's existing error path
/// (AwaitAll drains every worker future before rethrowing, keeping the
/// shared state — result slots, morsel queues, pinned versions — alive
/// until no worker references it).
class ResourceExhaustedError : public std::runtime_error {
 public:
  ResourceExhaustedError(const char* op, std::uint64_t attempted_bytes,
                         std::uint64_t limit_bytes, const std::string& scope);

  /// The operator label the charge was attributed to ("HashJoin build",
  /// "Sort", ...).
  const std::string& op() const { return op_; }

 private:
  std::string op_;
};

/// A node in the memory-accounting hierarchy: process root → per-engine
/// → per-query (the server adds its own child for frame/result queues).
/// Charges propagate to every ancestor; each node enforces its own limit
/// (0 = unlimited). The current-bytes counter is striped like the metric
/// Counter's shards, so concurrent morsel workers charging one query
/// tracker stay on thread-private cache lines; the limit check and peak
/// update sum the shards, which is why charge points batch their deltas
/// (see OpMemory) instead of charging per row.
///
/// Accounting model: charge points account allocation high-water, not
/// malloc-exact liveness — per-query trackers are monotone while the
/// statement runs and release their whole balance to the parent when the
/// statement retires (the tracker is destroyed). Resident state (table
/// columns, PDTs, versions) is measured pull-style via ApproxBytes
/// walkers instead, and surfaced next to the tracked bytes in
/// `pi_stats.memory`.
class MemoryTracker {
 public:
  explicit MemoryTracker(std::string name, MemoryTracker* parent = nullptr,
                         std::uint64_t limit_bytes = 0);
  /// Releases any remaining balance to the parent chain.
  ~MemoryTracker();

  MemoryTracker(const MemoryTracker&) = delete;
  MemoryTracker& operator=(const MemoryTracker&) = delete;

  /// Adds `bytes` here and in every ancestor, updating peaks. When any
  /// node's limit would be exceeded the whole charge is rolled back and
  /// ResourceExhaustedError is thrown naming `op` and the node.
  void Charge(std::uint64_t bytes, const char* op);

  /// Charge without throwing: true on success, false (fully rolled
  /// back, `*scope` set to the over-limit node's name) on failure.
  bool TryCharge(std::uint64_t bytes, std::string* scope);

  /// Subtracts `bytes` here and in every ancestor.
  void Release(std::uint64_t bytes);

  /// Bytes currently charged (sums the stripes; may transiently miss
  /// in-flight charges, never double-counts).
  std::uint64_t current() const;
  /// High-water mark of current().
  std::uint64_t peak() const {
    return peak_.load(std::memory_order_relaxed);
  }
  std::uint64_t limit() const { return limit_; }
  const std::string& name() const { return name_; }
  MemoryTracker* parent() const { return parent_; }

 private:
  /// Charge one node; false (after local rollback) when over limit.
  bool ChargeSelf(std::uint64_t bytes);
  void ReleaseSelf(std::uint64_t bytes);

  struct alignas(64) Shard {
    std::atomic<std::int64_t> v{0};
  };
  std::array<Shard, kStripes> shards_;
  std::atomic<std::uint64_t> peak_{0};
  const std::string name_;
  MemoryTracker* const parent_;
  const std::uint64_t limit_;
};

/// One tracker's figures copied out at a point in time — the row shape
/// `pi_stats.memory` serves for tracker-backed scopes.
struct MemoryTrackerSample {
  std::string name;
  std::uint64_t current_bytes = 0;
  std::uint64_t peak_bytes = 0;
  std::uint64_t limit_bytes = 0;
};

/// The process-wide accounting root every engine parents under.
MemoryTracker& ProcessMemoryRoot();

/// The current thread's per-query tracker (null outside a statement).
/// Charge points deep in the operator tree — aggregate hash tables, the
/// serial join build, Collect — read it instead of having a tracker
/// plumbed through every constructor.
MemoryTracker* CurrentQueryTracker();

/// Installs `tracker` as the calling thread's query tracker for the
/// scope's lifetime (restoring the previous one on exit). The session
/// installs it around statement execution; the morsel executor installs
/// it inside every worker task.
class ScopedQueryTracker {
 public:
  explicit ScopedQueryTracker(MemoryTracker* tracker);
  ~ScopedQueryTracker();

  ScopedQueryTracker(const ScopedQueryTracker&) = delete;
  ScopedQueryTracker& operator=(const ScopedQueryTracker&) = delete;

 private:
  MemoryTracker* prev_;
};

/// One operator's (or one worker-instance-of-an-operator's) charges
/// against the thread's query tracker, batched: deltas accumulate
/// locally and flush to the tracker in >= kFlushBytes chunks (the
/// destructor flushes the remainder), so the striped-sum limit check
/// runs per chunk, not per batch. When `stats` is set every flushed
/// delta is also added to the plan node's mem_bytes accumulator — the
/// `mem=` figure EXPLAIN ANALYZE renders.
///
/// Charges are query-lifetime: OpMemory never releases (the per-query
/// tracker releases its whole balance when the statement retires), so
/// an operator's accounted bytes are its allocation high-water.
class OpMemory {
 public:
  static constexpr std::uint64_t kFlushBytes = 64 * 1024;

  explicit OpMemory(const char* op, NodeStats* stats = nullptr);
  /// Flushes the unflushed remainder.
  ~OpMemory();

  OpMemory(const OpMemory&) = delete;
  OpMemory& operator=(const OpMemory&) = delete;

  /// Accumulates `bytes`; throws ResourceExhaustedError (naming the
  /// construction-time op) when the flushed chunk exceeds a budget.
  void Add(std::uint64_t bytes) {
    total_ += bytes;
    if (total_ - flushed_ >= kFlushBytes) Flush();
  }

  /// Raises the accumulated total to `bytes` if it is below it (for
  /// charge sites that periodically re-estimate a structure's size).
  void GrowTo(std::uint64_t bytes) {
    if (bytes > total_) Add(bytes - total_);
  }

  /// Flushes pending bytes to the tracker/stats immediately.
  void Flush();

  /// Total bytes accumulated so far (flushed or not).
  std::uint64_t total() const { return total_; }

 private:
  MemoryTracker* tracker_;
  NodeStats* stats_;
  const char* op_;
  std::uint64_t total_ = 0;
  std::uint64_t flushed_ = 0;
};

}  // namespace patchindex::obs

#endif  // PATCHINDEX_OBS_MEM_TRACKER_H_
