#ifndef PATCHINDEX_OBS_PROFILED_OPERATOR_H_
#define PATCHINDEX_OBS_PROFILED_OPERATOR_H_

#include <chrono>

#include "exec/operator.h"
#include "obs/profile.h"

namespace patchindex::obs {

/// Wraps an operator to measure it: rows out, inclusive wall time (the
/// wrapped Next() call, which includes the operator's inputs), and the
/// number of worker instances. Counts are buffered in plain locals and
/// flushed to the shared NodeStats on Close() (or destruction on error
/// paths), so profiling adds two clock reads per batch, not per row, and
/// no shared-cache traffic until the pipeline finishes.
class ProfiledOperator : public Operator {
 public:
  /// When `count_rows` is false only time/workers are recorded — used for
  /// per-worker aggregate/sort instances whose partial row counts depend
  /// on morsel scheduling (the coordinator sets the final merged count).
  ProfiledOperator(OperatorPtr child, NodeStats* stats,
                   bool count_rows = true)
      : child_(std::move(child)), stats_(stats), count_rows_(count_rows) {}

  ~ProfiledOperator() override { Flush(); }

  std::vector<ColumnType> OutputTypes() const override {
    return child_->OutputTypes();
  }

  void Open() override {
    stats_->workers.fetch_add(1, std::memory_order_relaxed);
    const auto start = std::chrono::steady_clock::now();
    child_->Open();
    local_ns_ += Elapsed(start);
  }

  bool Next(Batch* out) override {
    const auto start = std::chrono::steady_clock::now();
    const bool more = child_->Next(out);
    local_ns_ += Elapsed(start);
    if (more && count_rows_) local_rows_ += out->num_rows();
    return more;
  }

  void Close() override {
    const auto start = std::chrono::steady_clock::now();
    child_->Close();
    local_ns_ += Elapsed(start);
    Flush();
  }

 private:
  static std::uint64_t Elapsed(
      std::chrono::steady_clock::time_point start) {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
  }

  void Flush() {
    if (flushed_) return;
    flushed_ = true;
    if (local_rows_ > 0) {
      stats_->rows.fetch_add(local_rows_, std::memory_order_relaxed);
    }
    stats_->AddWorkerTime(local_ns_);
  }

  OperatorPtr child_;
  NodeStats* stats_;
  bool count_rows_;
  std::uint64_t local_rows_ = 0;
  std::uint64_t local_ns_ = 0;
  bool flushed_ = false;
};

}  // namespace patchindex::obs

#endif  // PATCHINDEX_OBS_PROFILED_OPERATOR_H_
