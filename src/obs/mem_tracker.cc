#include "obs/mem_tracker.h"

#include <cstdio>

#include "obs/profile.h"

namespace patchindex::obs {

namespace {

std::string FormatBytes(std::uint64_t bytes) {
  char buf[32];
  if (bytes >= 1024ull * 1024 * 1024) {
    std::snprintf(buf, sizeof(buf), "%.1f GiB",
                  static_cast<double>(bytes) / (1024.0 * 1024.0 * 1024.0));
  } else if (bytes >= 1024ull * 1024) {
    std::snprintf(buf, sizeof(buf), "%.1f MiB",
                  static_cast<double>(bytes) / (1024.0 * 1024.0));
  } else if (bytes >= 1024) {
    std::snprintf(buf, sizeof(buf), "%.1f KiB",
                  static_cast<double>(bytes) / 1024.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(bytes));
  }
  return buf;
}

thread_local MemoryTracker* g_query_tracker = nullptr;

}  // namespace

ResourceExhaustedError::ResourceExhaustedError(const char* op,
                                               std::uint64_t attempted_bytes,
                                               std::uint64_t limit_bytes,
                                               const std::string& scope)
    : std::runtime_error("memory limit exceeded in operator " +
                         std::string(op) + ": " + scope + " budget " +
                         FormatBytes(limit_bytes) + " would be exceeded by a " +
                         FormatBytes(attempted_bytes) + " allocation"),
      op_(op) {}

MemoryTracker::MemoryTracker(std::string name, MemoryTracker* parent,
                             std::uint64_t limit_bytes)
    : name_(std::move(name)), parent_(parent), limit_(limit_bytes) {}

MemoryTracker::~MemoryTracker() {
  std::uint64_t balance = current();
  if (balance > 0 && parent_ != nullptr) {
    for (MemoryTracker* t = parent_; t != nullptr; t = t->parent_) {
      t->ReleaseSelf(balance);
    }
  }
}

std::uint64_t MemoryTracker::current() const {
  std::int64_t sum = 0;
  for (const Shard& s : shards_) sum += s.v.load(std::memory_order_relaxed);
  return sum > 0 ? static_cast<std::uint64_t>(sum) : 0;
}

bool MemoryTracker::ChargeSelf(std::uint64_t bytes) {
  shards_[ThisThreadStripe()].v.fetch_add(static_cast<std::int64_t>(bytes),
                                          std::memory_order_relaxed);
  std::uint64_t now = current();
  if (limit_ != 0 && now > limit_) {
    ReleaseSelf(bytes);
    return false;
  }
  std::uint64_t peak = peak_.load(std::memory_order_relaxed);
  while (now > peak &&
         !peak_.compare_exchange_weak(peak, now, std::memory_order_relaxed)) {
  }
  return true;
}

void MemoryTracker::ReleaseSelf(std::uint64_t bytes) {
  shards_[ThisThreadStripe()].v.fetch_sub(static_cast<std::int64_t>(bytes),
                                          std::memory_order_relaxed);
}

bool MemoryTracker::TryCharge(std::uint64_t bytes, std::string* scope) {
  MemoryTracker* failed = nullptr;
  for (MemoryTracker* t = this; t != nullptr; t = t->parent_) {
    if (!t->ChargeSelf(bytes)) {
      failed = t;
      break;
    }
  }
  if (failed == nullptr) return true;
  // Roll back the nodes below the one that refused.
  for (MemoryTracker* t = this; t != failed; t = t->parent_) {
    t->ReleaseSelf(bytes);
  }
  if (scope != nullptr) *scope = failed->name_;
  return false;
}

void MemoryTracker::Charge(std::uint64_t bytes, const char* op) {
  std::string scope;
  if (!TryCharge(bytes, &scope)) {
    // Report the refusing node's own limit: the scope string identifies
    // which budget (query vs engine) tripped.
    std::uint64_t limit = limit_;
    for (MemoryTracker* t = this; t != nullptr; t = t->parent_) {
      if (t->name_ == scope) {
        limit = t->limit_;
        break;
      }
    }
    throw ResourceExhaustedError(op, bytes, limit, scope);
  }
}

void MemoryTracker::Release(std::uint64_t bytes) {
  for (MemoryTracker* t = this; t != nullptr; t = t->parent_) {
    t->ReleaseSelf(bytes);
  }
}

MemoryTracker& ProcessMemoryRoot() {
  static MemoryTracker* root = new MemoryTracker("process");
  return *root;
}

MemoryTracker* CurrentQueryTracker() { return g_query_tracker; }

ScopedQueryTracker::ScopedQueryTracker(MemoryTracker* tracker)
    : prev_(g_query_tracker) {
  g_query_tracker = tracker;
}

ScopedQueryTracker::~ScopedQueryTracker() { g_query_tracker = prev_; }

OpMemory::OpMemory(const char* op, NodeStats* stats)
    : tracker_(g_query_tracker), stats_(stats), op_(op) {}

OpMemory::~OpMemory() {
  // Destructor flush must not throw (we may be unwinding already); the
  // remainder is below kFlushBytes, so charge it without enforcement by
  // swallowing a refusal — the query is ending either way.
  try {
    Flush();
  } catch (const ResourceExhaustedError&) {
  }
}

void OpMemory::Flush() {
  std::uint64_t delta = total_ - flushed_;
  if (delta == 0) return;
  flushed_ = total_;
  if (stats_ != nullptr) {
    stats_->mem_bytes.fetch_add(delta, std::memory_order_relaxed);
  }
  if (tracker_ != nullptr) tracker_->Charge(delta, op_);
}

}  // namespace patchindex::obs
