#ifndef PATCHINDEX_SQL_PARSER_H_
#define PATCHINDEX_SQL_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "sql/ast.h"

namespace patchindex::sql {

/// Parses exactly one SQL statement (a trailing `;` is allowed). The
/// grammar, in rough EBNF — identifiers and keywords are case-insensitive,
/// `--` starts a line comment:
///
///   statement  := [EXPLAIN [ANALYZE]] (select | insert | update
///                 | delete | create)
///   select     := SELECT [DISTINCT] items FROM table_ref {join}
///                 [WHERE expr] [GROUP BY column {, column}]
///                 [ORDER BY order_item {, order_item}] [LIMIT int]
///   items      := * | item {, item}
///   item       := expr [[AS] alias]
///   table_ref  := name [[AS] alias]
///   join       := JOIN table_ref ON column = column
///   order_item := (column | int | agg_call) [ASC | DESC]
///   insert     := INSERT INTO name [( name {, name} )]
///                 VALUES ( expr {, expr} ) {, ( expr {, expr} )}
///   update     := UPDATE name SET name = expr {, name = expr} [WHERE expr]
///   delete     := DELETE FROM name [WHERE expr]
///   create     := CREATE TABLE name ( name type {, name type} )
///                 [PARTITIONS int]
///   type       := INT64|BIGINT|INT | DOUBLE|FLOAT|REAL
///               | STRING|TEXT|VARCHAR
///
///   expr       := or_expr
///   or_expr    := and_expr {OR and_expr}
///   and_expr   := not_expr {AND not_expr}
///   not_expr   := [NOT] cmp_expr
///   cmp_expr   := add_expr [(=|!=|<>|<|<=|>|>=) add_expr]
///               | add_expr [NOT] IN ( expr {, expr} )
///   add_expr   := mul_expr {(+|-) mul_expr}
///   mul_expr   := unary {(*|/) unary}
///   unary      := [-] primary
///   primary    := literal | ? | [name.]name | agg_call | ( expr )
///   agg_call   := (COUNT|SUM|MIN|MAX|AVG) ( (*|expr) )
///
/// Errors are kInvalidArgument with the line/column of the offending
/// token in the message.
Result<Statement> ParseStatement(std::string_view sql);

}  // namespace patchindex::sql

#endif  // PATCHINDEX_SQL_PARSER_H_
