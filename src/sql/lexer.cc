#include "sql/lexer.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>

namespace patchindex::sql {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

char ToLower(char c) {
  return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
}

}  // namespace

std::string ToLowerAscii(std::string s) {
  for (char& c : s) c = ToLower(c);
  return s;
}

bool EqualsNoCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (ToLower(a[i]) != ToLower(b[i])) return false;
  }
  return true;
}

bool Token::Is(std::string_view kw) const {
  return kind == TokenKind::kIdentifier && EqualsNoCase(text, kw);
}

Result<std::vector<Token>> Tokenize(std::string_view sql) {
  std::vector<Token> out;
  SourceLoc loc;
  // Where the last token ended: the kEnd token is anchored here, so an
  // "unexpected end of input" error in a multi-line statement points just
  // past the last real token instead of past any trailing whitespace
  // (e.g. the empty line after a trailing newline).
  SourceLoc last_end;
  std::size_t i = 0;

  auto advance = [&](std::size_t n) {
    for (std::size_t k = 0; k < n; ++k, ++i) {
      if (sql[i] == '\n') {
        ++loc.line;
        loc.column = 1;
      } else {
        ++loc.column;
      }
    }
  };
  auto advance_token = [&](std::size_t n) {
    advance(n);
    last_end = loc;
  };
  auto error = [&](const std::string& msg) {
    return Status::InvalidArgument(msg + " at " + loc.ToString());
  };
  auto push = [&](TokenKind kind, std::string text, SourceLoc at) {
    Token t;
    t.kind = kind;
    t.text = std::move(text);
    t.loc = at;
    out.push_back(std::move(t));
  };

  while (i < sql.size()) {
    const char c = sql[i];
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      advance(1);
      continue;
    }
    if (c == '-' && i + 1 < sql.size() && sql[i + 1] == '-') {
      while (i < sql.size() && sql[i] != '\n') advance(1);
      continue;
    }
    const SourceLoc at = loc;
    if (IsIdentStart(c)) {
      std::size_t j = i;
      while (j < sql.size() && IsIdentChar(sql[j])) ++j;
      push(TokenKind::kIdentifier, std::string(sql.substr(i, j - i)), at);
      advance_token(j - i);
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t j = i;
      bool is_double = false;
      while (j < sql.size() && std::isdigit(static_cast<unsigned char>(sql[j]))) {
        ++j;
      }
      if (j + 1 < sql.size() && sql[j] == '.' &&
          std::isdigit(static_cast<unsigned char>(sql[j + 1]))) {
        is_double = true;
        ++j;
        while (j < sql.size() &&
               std::isdigit(static_cast<unsigned char>(sql[j]))) {
          ++j;
        }
      }
      if (j < sql.size() && IsIdentStart(sql[j])) {
        return error("malformed number '" +
                     std::string(sql.substr(i, j + 1 - i)) + "'");
      }
      const std::string text(sql.substr(i, j - i));
      Token t;
      t.loc = at;
      t.text = text;
      if (is_double) {
        t.kind = TokenKind::kDoubleLiteral;
        t.f64 = std::strtod(text.c_str(), nullptr);
      } else {
        errno = 0;
        t.kind = TokenKind::kIntLiteral;
        t.i64 = std::strtoll(text.c_str(), nullptr, 10);
        if (errno == ERANGE) return error("integer literal out of range");
      }
      out.push_back(std::move(t));
      advance_token(j - i);
      continue;
    }
    if (c == '\'') {
      std::string value;
      std::size_t j = i + 1;
      while (true) {
        if (j >= sql.size()) return error("unterminated string literal");
        if (sql[j] == '\'') {
          if (j + 1 < sql.size() && sql[j + 1] == '\'') {  // '' escape
            value.push_back('\'');
            j += 2;
            continue;
          }
          break;
        }
        value.push_back(sql[j]);
        ++j;
      }
      push(TokenKind::kStringLiteral, std::move(value), at);
      advance_token(j + 1 - i);
      continue;
    }
    switch (c) {
      case '(':
        push(TokenKind::kLParen, "(", at);
        advance_token(1);
        continue;
      case ')':
        push(TokenKind::kRParen, ")", at);
        advance_token(1);
        continue;
      case ',':
        push(TokenKind::kComma, ",", at);
        advance_token(1);
        continue;
      case '.':
        push(TokenKind::kDot, ".", at);
        advance_token(1);
        continue;
      case '*':
        push(TokenKind::kStar, "*", at);
        advance_token(1);
        continue;
      case ';':
        push(TokenKind::kSemicolon, ";", at);
        advance_token(1);
        continue;
      case '?':
        push(TokenKind::kQuestion, "?", at);
        advance_token(1);
        continue;
      case '+':
        push(TokenKind::kPlus, "+", at);
        advance_token(1);
        continue;
      case '-':
        push(TokenKind::kMinus, "-", at);
        advance_token(1);
        continue;
      case '/':
        push(TokenKind::kSlash, "/", at);
        advance_token(1);
        continue;
      case '=':
        push(TokenKind::kEq, "=", at);
        advance_token(1);
        continue;
      case '!':
        if (i + 1 < sql.size() && sql[i + 1] == '=') {
          push(TokenKind::kNe, "!=", at);
          advance_token(2);
          continue;
        }
        return error("unexpected character '!'");
      case '<':
        if (i + 1 < sql.size() && sql[i + 1] == '=') {
          push(TokenKind::kLe, "<=", at);
          advance_token(2);
        } else if (i + 1 < sql.size() && sql[i + 1] == '>') {
          push(TokenKind::kNe, "<>", at);
          advance_token(2);
        } else {
          push(TokenKind::kLt, "<", at);
          advance_token(1);
        }
        continue;
      case '>':
        if (i + 1 < sql.size() && sql[i + 1] == '=') {
          push(TokenKind::kGe, ">=", at);
          advance_token(2);
        } else {
          push(TokenKind::kGt, ">", at);
          advance_token(1);
        }
        continue;
      default:
        return error(std::string("unexpected character '") + c + "'");
    }
  }

  Token end;
  end.kind = TokenKind::kEnd;
  end.loc = out.empty() ? loc : last_end;
  out.push_back(std::move(end));
  return out;
}

}  // namespace patchindex::sql
