#ifndef PATCHINDEX_SQL_BINDER_H_
#define PATCHINDEX_SQL_BINDER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "engine/catalog.h"
#include "optimizer/plan.h"
#include "sql/ast.h"

namespace patchindex::sql {

/// A bound (name-resolved, type-checked) SQL statement, ready to execute
/// any number of times. Binding decides the plan shape the PatchIndex
/// rewriter sees:
///
///  - scans read only the columns the statement references;
///  - single-table WHERE conjuncts are pushed below joins, as a select
///    chain above the scan (the paper's "subtree X" shape);
///  - the final projection is elided when it is the identity, and
///    DISTINCT over plain columns skips the projection entirely — so
///    `SELECT DISTINCT v FROM t WHERE k < 9` binds to
///    Distinct(Select(Scan)), the exact kPatchDistinct pattern;
///  - ORDER BY keys that name input columns sort *below* the projection
///    (the kPatchSort pattern, and what lets you order by a non-selected
///    column); keys naming computed select items sort above it.
///
/// Scans are bound without a sortedness annotation: the PatchIndex
/// rewriter infers it per execution (from a zero-exception ascending NSC
/// index), under the session's table locks, so a cached bound plan stays
/// correct when later updates break a table's sort order.
///
/// `?` parameters live in `param_slots`, read at evaluation time by
/// ParamRef expressions embedded in the plan, so one bound statement
/// serves every parameter binding. Slot types are inferred from context
/// (the column a parameter is compared to or assigned into).
///
/// The bound plan holds raw table pointers into the catalog: executing
/// a statement bound before a DROP TABLE of one of its tables is
/// undefined, like any retained LogicalNode plan. Scans bind against the
/// catalog's PartitionedTable entries — a multi-partition scan draws from
/// every partition and emits table-global rowIDs.
struct BoundStatement {
  Statement::Kind kind = Statement::Kind::kSelect;
  /// EXPLAIN / EXPLAIN ANALYZE prefix, copied from the parsed statement
  /// (ANALYZE is rejected at bind time for non-SELECT kinds).
  bool explain = false;
  bool analyze = false;

  // kSelect
  LogicalPtr plan;
  std::vector<std::string> column_names;
  /// LIMIT handled outside the plan: without ORDER BY there is no sort
  /// node to cut on (and `LIMIT 0` cannot ride on kSort, whose limit 0
  /// means "unlimited"), so the runner truncates the materialized result
  /// to `post_limit` rows when `has_post_limit` is set.
  bool has_post_limit = false;
  std::size_t post_limit = 0;

  /// True when the statement is a global aggregate (no GROUP BY) whose
  /// select list is COUNT aggregates only. COUNT is the one aggregate
  /// with a well-defined value over zero rows, so the runner emits the
  /// SQL-mandated single row (of zeros) when the input is empty; global
  /// aggregates mixing MIN/MAX/SUM/AVG still return zero rows there
  /// (the engine has no NULLs to put in those columns).
  bool global_count_only = false;

  // DML / DDL target (kInsert/kUpdate/kDelete/kCreateTable)
  std::string table;

  /// kCreateTable: the resolved schema and partition count (0 = no
  /// PARTITIONS clause; the engine's session default applies).
  Schema create_schema;
  std::size_t create_partitions = 0;

  /// kInsert: one expression per row and schema column (schema order, the
  /// column-list permutation already applied). Expressions are
  /// column-free: constants, parameters and arithmetic over them.
  std::vector<std::vector<ExprPtr>> insert_rows;

  /// kUpdate/kDelete: predicate over a scan of the *full* table schema
  /// (expression column i = schema column i); null means every row.
  ExprPtr where;
  double where_selectivity = 0.5;

  /// kUpdate: (schema column, value expression over the full schema).
  std::vector<std::pair<std::size_t, ExprPtr>> set_exprs;

  /// Parameter slots, written by the runner before each execution.
  std::shared_ptr<std::vector<Value>> param_slots;
  /// Inferred slot types; incoming INT64 values widen to DOUBLE slots.
  std::vector<ColumnType> param_types;
};

/// Resolves `stmt` against the catalog. Fails with kNotFound for unknown
/// tables, kInvalidArgument for unknown/ambiguous columns, type
/// mismatches, aggregate misuse, or uninferable parameter types — always
/// naming the offending token's source position.
Result<BoundStatement> BindStatement(const Statement& stmt,
                                     const Catalog& catalog);

}  // namespace patchindex::sql

#endif  // PATCHINDEX_SQL_BINDER_H_
