#include "sql/ast.h"

namespace patchindex::sql {

namespace {

const char* OpName(ParseExpr::Op op) {
  switch (op) {
    case ParseExpr::Op::kEq:
      return "=";
    case ParseExpr::Op::kNe:
      return "!=";
    case ParseExpr::Op::kLt:
      return "<";
    case ParseExpr::Op::kLe:
      return "<=";
    case ParseExpr::Op::kGt:
      return ">";
    case ParseExpr::Op::kGe:
      return ">=";
    case ParseExpr::Op::kAnd:
      return "AND";
    case ParseExpr::Op::kOr:
      return "OR";
    case ParseExpr::Op::kNot:
      return "NOT";
    case ParseExpr::Op::kNeg:
      return "-";
    case ParseExpr::Op::kAdd:
      return "+";
    case ParseExpr::Op::kSub:
      return "-";
    case ParseExpr::Op::kMul:
      return "*";
    case ParseExpr::Op::kDiv:
      return "/";
  }
  return "?";
}

}  // namespace

std::string ParseExpr::ToString() const {
  switch (kind) {
    case Kind::kColumn:
      return qualifier.empty() ? name : qualifier + "." + name;
    case Kind::kIntLit:
      return std::to_string(i64);
    case Kind::kDoubleLit:
      return std::to_string(f64);
    case Kind::kStringLit:
      return "'" + str + "'";
    case Kind::kParam:
      return "?" + std::to_string(param_ordinal + 1);
    case Kind::kUnary:
      return std::string("(") + OpName(op) + " " + children[0]->ToString() +
             ")";
    case Kind::kBinary:
      return "(" + children[0]->ToString() + " " + OpName(op) + " " +
             children[1]->ToString() + ")";
    case Kind::kCall: {
      std::string out = name + "(";
      if (star_arg) {
        out += "*";
      } else {
        for (std::size_t i = 0; i < children.size(); ++i) {
          if (i > 0) out += ", ";
          out += children[i]->ToString();
        }
      }
      return out + ")";
    }
    case Kind::kInList: {
      std::string out = children[0]->ToString() + " IN (";
      for (std::size_t i = 1; i < children.size(); ++i) {
        if (i > 1) out += ", ";
        out += children[i]->ToString();
      }
      return out + ")";
    }
  }
  return "?";
}

}  // namespace patchindex::sql
