#include "sql/binder.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <optional>
#include <set>

#include "exec/expression.h"
#include "obs/system_tables.h"
#include "patchindex/manager.h"

namespace patchindex::sql {

namespace {

/// One column of an intermediate result during binding.
struct ColumnInfo {
  std::string qualifier;  // table alias; empty for derived columns
  std::string name;
  ColumnType type = ColumnType::kInt64;
};

/// The columns a scalar expression may reference, with SQL resolution
/// rules (optional qualifier, ambiguity detection, case-insensitive).
struct BindScope {
  std::vector<ColumnInfo> cols;

  /// Index of the matching column; kInvalidArgument on unknown/ambiguous.
  Result<std::size_t> Resolve(const std::string& qualifier,
                              const std::string& name,
                              const SourceLoc& loc) const {
    int found = -1;
    for (std::size_t i = 0; i < cols.size(); ++i) {
      if (!EqualsNoCase(cols[i].name, name)) continue;
      if (!qualifier.empty() && !EqualsNoCase(cols[i].qualifier, qualifier)) {
        continue;
      }
      if (found >= 0) {
        return Status::InvalidArgument(
            "ambiguous column '" + name + "' (matches " +
            cols[found].qualifier + "." + cols[found].name + " and " +
            cols[i].qualifier + "." + cols[i].name + ") at " + loc.ToString());
      }
      found = static_cast<int>(i);
    }
    if (found < 0) {
      return Status::InvalidArgument(
          "unknown column '" +
          (qualifier.empty() ? name : qualifier + "." + name) + "' at " +
          loc.ToString());
    }
    return static_cast<std::size_t>(found);
  }
};

/// Visits every kColumn node of an expression tree.
template <typename Fn>
void WalkColumns(const ParseExpr& e, Fn&& fn) {
  if (e.kind == ParseExpr::Kind::kColumn) fn(e);
  for (const ParseExprPtr& child : e.children) WalkColumns(*child, fn);
}

bool ContainsAggregate(const ParseExpr& e) {
  if (e.kind == ParseExpr::Kind::kCall) return true;
  for (const ParseExprPtr& child : e.children) {
    if (ContainsAggregate(*child)) return true;
  }
  return false;
}

double GuessSelectivity(const ParseExpr& e) {
  if (e.kind == ParseExpr::Kind::kBinary) {
    switch (e.op) {
      case ParseExpr::Op::kEq:
        return 0.1;
      case ParseExpr::Op::kLt:
      case ParseExpr::Op::kLe:
      case ParseExpr::Op::kGt:
      case ParseExpr::Op::kGe:
        return 0.3;
      default:
        break;
    }
  }
  if (e.kind == ParseExpr::Kind::kInList) return 0.2;
  return 0.5;
}

/// A table occurrence in FROM/JOIN, with the pruned scan layout.
struct Entry {
  const PartitionedTable* table = nullptr;
  std::string qualifier;
  SourceLoc loc;
  std::set<std::size_t> used;            // original column indices
  std::vector<std::size_t> scan_cols;    // sorted `used` (scan layout)
  std::map<std::size_t, std::size_t> orig_to_scan;
  /// obs::SystemTableId when this entry is a pi_stats virtual table
  /// (bound against its placeholder; execution materializes live rows),
  /// -1 for regular catalog tables.
  int system_table = -1;
};

class Binder {
 public:
  Binder(const Catalog& catalog, std::size_t num_params,
         std::vector<SourceLoc> param_locs)
      : catalog_(catalog),
        slots_(std::make_shared<std::vector<Value>>(num_params)),
        param_types_(num_params),
        param_locs_(std::move(param_locs)) {}

  Result<BoundStatement> Bind(const Statement& stmt) {
    BoundStatement out;
    out.kind = stmt.kind;
    out.explain = stmt.explain;
    out.analyze = stmt.analyze;
    if (stmt.analyze && stmt.kind != Statement::Kind::kSelect) {
      return Status::InvalidArgument(
          "EXPLAIN ANALYZE supports SELECT statements only; use plain "
          "EXPLAIN for DML/DDL");
    }
    Status st;
    switch (stmt.kind) {
      case Statement::Kind::kSelect:
        st = BindSelect(*stmt.select, &out);
        break;
      case Statement::Kind::kInsert:
        st = BindInsert(*stmt.insert, &out);
        break;
      case Statement::Kind::kUpdate:
        st = BindUpdate(*stmt.update, &out);
        break;
      case Statement::Kind::kDelete:
        st = BindDelete(*stmt.del, &out);
        break;
      case Statement::Kind::kCreateTable:
        st = BindCreateTable(*stmt.create, &out);
        break;
    }
    if (!st.ok()) return st;
    for (std::size_t i = 0; i < param_types_.size(); ++i) {
      if (!param_types_[i].has_value()) {
        return Status::InvalidArgument(
            "cannot infer the type of parameter ?" + std::to_string(i + 1) +
            "; compare or combine it with a typed operand, at " +
            (i < param_locs_.size() ? param_locs_[i] : SourceLoc{})
                .ToString());
      }
    }
    out.param_slots = slots_;
    for (const auto& t : param_types_) out.param_types.push_back(*t);
    return out;
  }

 private:
  // ------------------------------------------------------------- scalars

  /// Binds a scalar (non-aggregate) expression against `scope`. `hint`
  /// types parameters that have no context of their own (INSERT values,
  /// SET right-hand sides).
  Result<std::pair<ExprPtr, ColumnType>> BindScalar(
      const ParseExpr& e, const BindScope& scope,
      std::optional<ColumnType> hint = std::nullopt) {
    switch (e.kind) {
      case ParseExpr::Kind::kColumn: {
        Result<std::size_t> pos = scope.Resolve(e.qualifier, e.name, e.loc);
        if (!pos.ok()) return pos.status();
        return std::make_pair(Col(pos.value()),
                              scope.cols[pos.value()].type);
      }
      case ParseExpr::Kind::kIntLit:
        if (hint == ColumnType::kDouble) {
          return std::make_pair(ConstDouble(static_cast<double>(e.i64)),
                                ColumnType::kDouble);
        }
        return std::make_pair(ConstInt(e.i64), ColumnType::kInt64);
      case ParseExpr::Kind::kDoubleLit:
        return std::make_pair(ConstDouble(e.f64), ColumnType::kDouble);
      case ParseExpr::Kind::kStringLit:
        return std::make_pair(ConstString(e.str), ColumnType::kString);
      case ParseExpr::Kind::kParam: {
        std::optional<ColumnType>& slot = param_types_[e.param_ordinal];
        if (!slot.has_value()) {
          if (!hint.has_value()) {
            return Status::InvalidArgument(
                "cannot infer the type of parameter ?" +
                std::to_string(e.param_ordinal + 1) + " at " +
                e.loc.ToString());
          }
          slot = hint;
        }
        return std::make_pair(
            ParamRef(slots_, e.param_ordinal, *slot), *slot);
      }
      case ParseExpr::Kind::kUnary: {
        if (e.op == ParseExpr::Op::kNot) {
          Result<std::pair<ExprPtr, ColumnType>> inner =
              BindScalar(*e.children[0], scope);
          if (!inner.ok()) return inner.status();
          if (inner.value().second != ColumnType::kInt64) {
            return Status::InvalidArgument(
                "NOT expects a boolean (INT64) operand at " +
                e.loc.ToString());
          }
          return std::make_pair(Not(inner.value().first), ColumnType::kInt64);
        }
        // kNeg: 0 - x.
        Result<std::pair<ExprPtr, ColumnType>> inner =
            BindScalar(*e.children[0], scope, hint);
        if (!inner.ok()) return inner.status();
        if (inner.value().second == ColumnType::kString) {
          return Status::InvalidArgument("cannot negate a STRING at " +
                                         e.loc.ToString());
        }
        ExprPtr zero = inner.value().second == ColumnType::kDouble
                           ? ConstDouble(0.0)
                           : ConstInt(0);
        return std::make_pair(Sub(std::move(zero), inner.value().first),
                              inner.value().second);
      }
      case ParseExpr::Kind::kBinary:
        return BindBinary(e, scope, hint);
      case ParseExpr::Kind::kCall:
        return Status::InvalidArgument(
            "aggregate function '" + e.name +
            "' is only allowed in the select list at " + e.loc.ToString());
      case ParseExpr::Kind::kInList:
        return BindInList(e, scope);
    }
    return Status::Internal("unhandled expression kind");
  }

  Result<std::pair<ExprPtr, ColumnType>> BindBinary(
      const ParseExpr& e, const BindScope& scope,
      std::optional<ColumnType> hint) {
    const bool is_cmp = e.op == ParseExpr::Op::kEq ||
                        e.op == ParseExpr::Op::kNe ||
                        e.op == ParseExpr::Op::kLt ||
                        e.op == ParseExpr::Op::kLe ||
                        e.op == ParseExpr::Op::kGt ||
                        e.op == ParseExpr::Op::kGe;
    const bool is_bool =
        e.op == ParseExpr::Op::kAnd || e.op == ParseExpr::Op::kOr;

    if (is_bool) {
      Result<std::pair<ExprPtr, ColumnType>> l =
          BindScalar(*e.children[0], scope);
      if (!l.ok()) return l.status();
      Result<std::pair<ExprPtr, ColumnType>> r =
          BindScalar(*e.children[1], scope);
      if (!r.ok()) return r.status();
      if (l.value().second != ColumnType::kInt64 ||
          r.value().second != ColumnType::kInt64) {
        return Status::InvalidArgument(
            std::string(e.op == ParseExpr::Op::kAnd ? "AND" : "OR") +
            " expects boolean (INT64) operands at " + e.loc.ToString());
      }
      ExprPtr out = e.op == ParseExpr::Op::kAnd
                        ? And(l.value().first, r.value().first)
                        : Or(l.value().first, r.value().first);
      return std::make_pair(std::move(out), ColumnType::kInt64);
    }

    // Comparison / arithmetic: bind the non-parameter side first so a bare
    // `?` on the other side inherits its type.
    const ParseExpr& le = *e.children[0];
    const ParseExpr& re = *e.children[1];
    const bool l_param = le.kind == ParseExpr::Kind::kParam &&
                         !param_types_[le.param_ordinal].has_value();
    ExprPtr lx, rx;
    ColumnType lt, rt;
    if (l_param) {
      Result<std::pair<ExprPtr, ColumnType>> r =
          BindScalar(re, scope, hint);
      if (!r.ok()) return r.status();
      rx = r.value().first;
      rt = r.value().second;
      Result<std::pair<ExprPtr, ColumnType>> l = BindScalar(le, scope, rt);
      if (!l.ok()) return l.status();
      lx = l.value().first;
      lt = l.value().second;
    } else {
      Result<std::pair<ExprPtr, ColumnType>> l =
          BindScalar(le, scope, hint);
      if (!l.ok()) return l.status();
      lx = l.value().first;
      lt = l.value().second;
      Result<std::pair<ExprPtr, ColumnType>> r = BindScalar(re, scope, lt);
      if (!r.ok()) return r.status();
      rx = r.value().first;
      rt = r.value().second;
    }

    if (is_cmp) {
      PIDX_RETURN_NOT_OK(
          ReconcileTypes(&lx, &lt, &rx, &rt, "compare", e.loc));
      Expr::CmpOp op;
      switch (e.op) {
        case ParseExpr::Op::kEq:
          op = Expr::CmpOp::kEq;
          break;
        case ParseExpr::Op::kNe:
          op = Expr::CmpOp::kNe;
          break;
        case ParseExpr::Op::kLt:
          op = Expr::CmpOp::kLt;
          break;
        case ParseExpr::Op::kLe:
          op = Expr::CmpOp::kLe;
          break;
        case ParseExpr::Op::kGt:
          op = Expr::CmpOp::kGt;
          break;
        default:
          op = Expr::CmpOp::kGe;
          break;
      }
      return std::make_pair(Cmp(op, std::move(lx), std::move(rx)),
                            ColumnType::kInt64);
    }

    // Arithmetic.
    if (lt == ColumnType::kString || rt == ColumnType::kString) {
      return Status::InvalidArgument("arithmetic over STRING operands at " +
                                     e.loc.ToString());
    }
    const ColumnType out_type =
        (lt == ColumnType::kDouble || rt == ColumnType::kDouble)
            ? ColumnType::kDouble
            : ColumnType::kInt64;
    ExprPtr out;
    switch (e.op) {
      case ParseExpr::Op::kAdd:
        out = Add(std::move(lx), std::move(rx));
        break;
      case ParseExpr::Op::kSub:
        out = Sub(std::move(lx), std::move(rx));
        break;
      case ParseExpr::Op::kMul:
        out = Mul(std::move(lx), std::move(rx));
        break;
      case ParseExpr::Op::kDiv:
        out = Div(std::move(lx), std::move(rx));
        break;
      default:
        return Status::Internal("unexpected arithmetic operator");
    }
    return std::make_pair(std::move(out), out_type);
  }

  Result<std::pair<ExprPtr, ColumnType>> BindInList(const ParseExpr& e,
                                                    const BindScope& scope) {
    Result<std::pair<ExprPtr, ColumnType>> lhs =
        BindScalar(*e.children[0], scope);
    if (!lhs.ok()) return lhs.status();
    ExprPtr acc;
    for (std::size_t i = 1; i < e.children.size(); ++i) {
      Result<std::pair<ExprPtr, ColumnType>> elem =
          BindScalar(*e.children[i], scope, lhs.value().second);
      if (!elem.ok()) return elem.status();
      ExprPtr lx = lhs.value().first;
      ColumnType lt = lhs.value().second;
      ExprPtr rx = elem.value().first;
      ColumnType rt = elem.value().second;
      PIDX_RETURN_NOT_OK(
          ReconcileTypes(&lx, &lt, &rx, &rt, "compare", e.loc));
      ExprPtr eq = Eq(std::move(lx), std::move(rx));
      acc = acc ? Or(std::move(acc), std::move(eq)) : std::move(eq);
    }
    return std::make_pair(std::move(acc), ColumnType::kInt64);
  }

  /// Makes both sides the same type, widening INT64 to DOUBLE; anything
  /// else mixed is an error.
  Status ReconcileTypes(ExprPtr* l, ColumnType* lt, ExprPtr* r,
                        ColumnType* rt, const char* verb,
                        const SourceLoc& loc) {
    if (*lt == *rt) return Status::OK();
    if (*lt == ColumnType::kInt64 && *rt == ColumnType::kDouble) {
      *l = Cast(std::move(*l), ColumnType::kDouble);
      *lt = ColumnType::kDouble;
      return Status::OK();
    }
    if (*lt == ColumnType::kDouble && *rt == ColumnType::kInt64) {
      *r = Cast(std::move(*r), ColumnType::kDouble);
      *rt = ColumnType::kDouble;
      return Status::OK();
    }
    return Status::InvalidArgument(std::string("type mismatch: cannot ") +
                                   verb + " " + ColumnTypeName(*lt) +
                                   " with " + ColumnTypeName(*rt) + " at " +
                                   loc.ToString());
  }

  // -------------------------------------------------------------- select

  Result<Entry> MakeEntry(const TableClause& clause) {
    if (obs::IsSystemSchemaName(clause.table)) {
      // pi_stats.* never resolves against the user catalog: bind against
      // the static placeholder (empty, correct schema) and tag the entry;
      // the engine swaps in freshly materialized rows per execution.
      const obs::SystemTableDef* def = obs::FindSystemTable(clause.table);
      if (def == nullptr) {
        return Status::NotFound("unknown system table '" + clause.table +
                                "' at " + clause.loc.ToString());
      }
      Entry e;
      e.table = def->placeholder;
      e.system_table = static_cast<int>(def->id);
      e.qualifier = clause.Qualifier();
      e.loc = clause.loc;
      return e;
    }
    const PartitionedTable* table =
        catalog_.FindPartitionedTable(clause.table);
    if (table == nullptr) {
      return Status::NotFound("unknown table '" + clause.table + "' at " +
                              clause.loc.ToString());
    }
    if (table->schema().num_fields() == 0) {
      return Status::InvalidArgument("table '" + clause.table +
                                     "' has no columns at " +
                                     clause.loc.ToString());
    }
    Entry e;
    e.table = table;
    e.qualifier = clause.Qualifier();
    e.loc = clause.loc;
    return e;
  }

  /// (entry index, original column) a reference resolves to, across all
  /// FROM/JOIN entries.
  Result<std::pair<std::size_t, std::size_t>> ResolveToEntry(
      const std::vector<Entry>& entries, const std::string& qualifier,
      const std::string& name, const SourceLoc& loc) {
    int fe = -1, fc = -1;
    for (std::size_t i = 0; i < entries.size(); ++i) {
      if (!qualifier.empty() &&
          !EqualsNoCase(entries[i].qualifier, qualifier)) {
        continue;
      }
      const Schema& schema = entries[i].table->schema();
      for (std::size_t c = 0; c < schema.num_fields(); ++c) {
        if (!EqualsNoCase(schema.field(c).name, name)) continue;
        if (fe >= 0) {
          return Status::InvalidArgument(
              "ambiguous column '" + name + "' (matches " +
              entries[fe].qualifier + "." + name + " and " +
              entries[i].qualifier + "." + name + ") at " + loc.ToString());
        }
        fe = static_cast<int>(i);
        fc = static_cast<int>(c);
      }
    }
    if (fe < 0) {
      return Status::InvalidArgument(
          "unknown column '" +
          (qualifier.empty() ? name : qualifier + "." + name) + "' at " +
          loc.ToString());
    }
    return std::make_pair(static_cast<std::size_t>(fe),
                          static_cast<std::size_t>(fc));
  }

  /// Splits a WHERE tree into AND-ed conjuncts.
  static void SplitConjuncts(const ParseExprPtr& e,
                             std::vector<ParseExprPtr>* out) {
    if (e->kind == ParseExpr::Kind::kBinary &&
        e->op == ParseExpr::Op::kAnd) {
      SplitConjuncts(e->children[0], out);
      SplitConjuncts(e->children[1], out);
      return;
    }
    out->push_back(e);
  }

  Status BindSelect(const SelectStatement& sel, BoundStatement* out) {
    // FROM entries.
    std::vector<Entry> entries;
    {
      Result<Entry> e = MakeEntry(sel.from);
      if (!e.ok()) return e.status();
      entries.push_back(std::move(e).value());
    }
    for (const JoinClause& join : sel.joins) {
      Result<Entry> e = MakeEntry(join.table);
      if (!e.ok()) return e.status();
      entries.push_back(std::move(e).value());
    }
    for (std::size_t i = 0; i < entries.size(); ++i) {
      for (std::size_t j = i + 1; j < entries.size(); ++j) {
        if (EqualsNoCase(entries[i].qualifier, entries[j].qualifier)) {
          return Status::InvalidArgument(
              "duplicate table name/alias '" + entries[i].qualifier +
              "' at " + entries[j].loc.ToString() +
              " (alias one of the occurrences)");
        }
      }
    }

    // Expand `*` into one item per column, FROM order.
    std::vector<SelectItem> items;
    for (const SelectItem& item : sel.items) {
      if (!item.star) {
        items.push_back(item);
        continue;
      }
      for (const Entry& entry : entries) {
        const Schema& schema = entry.table->schema();
        for (std::size_t c = 0; c < schema.num_fields(); ++c) {
          SelectItem expanded;
          expanded.loc = item.loc;
          auto ref = std::make_shared<ParseExpr>();
          ref->kind = ParseExpr::Kind::kColumn;
          ref->qualifier = entry.qualifier;
          ref->name = schema.field(c).name;
          ref->loc = item.loc;
          expanded.expr = std::move(ref);
          items.push_back(std::move(expanded));
        }
      }
    }
    if (items.empty()) {
      return Status::InvalidArgument("empty select list at " +
                                     sel.loc.ToString());
    }

    // Collect used columns (select list, WHERE, GROUP BY, join keys; plus
    // ORDER BY names that resolve to input columns rather than aliases).
    Status collect = Status::OK();
    auto mark = [&](const ParseExpr& ref) {
      if (!collect.ok()) return;
      Result<std::pair<std::size_t, std::size_t>> r =
          ResolveToEntry(entries, ref.qualifier, ref.name, ref.loc);
      if (!r.ok()) {
        collect = r.status();
        return;
      }
      entries[r.value().first].used.insert(r.value().second);
    };
    for (const SelectItem& item : items) WalkColumns(*item.expr, mark);
    if (sel.where != nullptr) WalkColumns(*sel.where, mark);
    for (const ParseExprPtr& g : sel.group_by) WalkColumns(*g, mark);
    for (const JoinClause& join : sel.joins) {
      WalkColumns(*join.left_key, mark);
      WalkColumns(*join.right_key, mark);
    }
    if (!collect.ok()) return collect;
    for (const OrderItem& o : sel.order_by) {
      WalkColumns(*o.expr, [&](const ParseExpr& ref) {
        if (ref.qualifier.empty()) {
          for (const SelectItem& item : items) {
            if (EqualsNoCase(item.alias, ref.name)) return;  // alias wins
          }
        }
        Result<std::pair<std::size_t, std::size_t>> r =
            ResolveToEntry(entries, ref.qualifier, ref.name, ref.loc);
        if (r.ok()) entries[r.value().first].used.insert(r.value().second);
        // Unresolvable ORDER BY names are diagnosed during ORDER BY
        // binding, where aliases and ordinals are in scope.
      });
    }

    // Scan layouts; a table referenced by no column still scans its first
    // column (the executor has no zero-column scan).
    for (Entry& entry : entries) {
      if (entry.used.empty()) entry.used.insert(0);
      entry.scan_cols.assign(entry.used.begin(), entry.used.end());
      for (std::size_t i = 0; i < entry.scan_cols.size(); ++i) {
        entry.orig_to_scan[entry.scan_cols[i]] = i;
      }
    }

    // Per-entry plans: scan + pushed-down single-table conjuncts.
    std::vector<ParseExprPtr> conjuncts;
    if (sel.where != nullptr) SplitConjuncts(sel.where, &conjuncts);
    std::vector<LogicalPtr> entry_plans;
    std::vector<BindScope> entry_scopes;
    // Scans carry no sortedness annotation here: the PatchIndex rewriter
    // infers it per execution, under the session's table locks, so cached
    // bound plans stay correct across updates.
    for (const Entry& entry : entries) {
      LogicalPtr scan = LScan(*entry.table, entry.scan_cols);
      scan->system_table = entry.system_table;
      entry_plans.push_back(std::move(scan));
      BindScope scope;
      for (std::size_t c : entry.scan_cols) {
        scope.cols.push_back({entry.qualifier,
                              entry.table->schema().field(c).name,
                              entry.table->schema().field(c).type});
      }
      entry_scopes.push_back(std::move(scope));
    }
    std::vector<ParseExprPtr> late_conjuncts;
    for (const ParseExprPtr& conjunct : conjuncts) {
      if (ContainsAggregate(*conjunct)) {
        return Status::InvalidArgument(
            "aggregate function in WHERE at " + conjunct->loc.ToString());
      }
      std::set<std::size_t> touched;
      Status st = Status::OK();
      WalkColumns(*conjunct, [&](const ParseExpr& ref) {
        if (!st.ok()) return;
        Result<std::pair<std::size_t, std::size_t>> r =
            ResolveToEntry(entries, ref.qualifier, ref.name, ref.loc);
        if (!r.ok()) {
          st = r.status();
          return;
        }
        touched.insert(r.value().first);
      });
      if (!st.ok()) return st;
      if (touched.size() == 1) {
        const std::size_t e = *touched.begin();
        Result<std::pair<ExprPtr, ColumnType>> bound =
            BindScalar(*conjunct, entry_scopes[e]);
        if (!bound.ok()) return bound.status();
        if (bound.value().second != ColumnType::kInt64) {
          return Status::InvalidArgument(
              "WHERE expects a boolean (INT64) predicate at " +
              conjunct->loc.ToString());
        }
        entry_plans[e] = LSelect(entry_plans[e], bound.value().first,
                                 GuessSelectivity(*conjunct));
      } else {
        late_conjuncts.push_back(conjunct);
      }
    }

    // Left-deep join tree; the joined scope is the concatenation of the
    // entry scan scopes in FROM order.
    LogicalPtr cur = entry_plans[0];
    BindScope scope = entry_scopes[0];
    std::vector<std::size_t> entry_offset(entries.size(), 0);
    for (std::size_t j = 0; j < sel.joins.size(); ++j) {
      const JoinClause& join = sel.joins[j];
      const std::size_t new_entry = j + 1;
      entry_offset[new_entry] = scope.cols.size();
      auto side = [&](const ParseExpr& ref)
          -> Result<std::pair<bool, std::size_t>> {
        // (is_new_side, position within that side's current output)
        Result<std::pair<std::size_t, std::size_t>> r =
            ResolveToEntry(entries, ref.qualifier, ref.name, ref.loc);
        if (!r.ok()) return r.status();
        const std::size_t e = r.value().first;
        const std::size_t scan_pos =
            entries[e].orig_to_scan.at(r.value().second);
        if (e == new_entry) return std::make_pair(true, scan_pos);
        if (e < new_entry) {
          return std::make_pair(false, entry_offset[e] + scan_pos);
        }
        return Status::InvalidArgument(
            "join condition references table '" + entries[e].qualifier +
            "' before it is joined, at " + ref.loc.ToString());
      };
      Result<std::pair<bool, std::size_t>> l = side(*join.left_key);
      if (!l.ok()) return l.status();
      Result<std::pair<bool, std::size_t>> r = side(*join.right_key);
      if (!r.ok()) return r.status();
      if (l.value().first == r.value().first) {
        return Status::InvalidArgument(
            "join condition must relate the joined table to a previous "
            "one, at " + join.loc.ToString());
      }
      const std::size_t left_pos =
          l.value().first ? r.value().second : l.value().second;
      const std::size_t right_pos =
          l.value().first ? l.value().second : r.value().second;
      if (scope.cols[left_pos].type != ColumnType::kInt64 ||
          entry_scopes[new_entry].cols[right_pos].type !=
              ColumnType::kInt64) {
        return Status::InvalidArgument(
            "join keys must be INT64 columns, at " + join.loc.ToString());
      }
      cur = LJoin(cur, entry_plans[new_entry], left_pos, right_pos);
      for (const ColumnInfo& c : entry_scopes[new_entry].cols) {
        scope.cols.push_back(c);
      }
    }

    // Cross-table conjuncts above the joins.
    for (const ParseExprPtr& conjunct : late_conjuncts) {
      Result<std::pair<ExprPtr, ColumnType>> bound =
          BindScalar(*conjunct, scope);
      if (!bound.ok()) return bound.status();
      if (bound.value().second != ColumnType::kInt64) {
        return Status::InvalidArgument(
            "WHERE expects a boolean (INT64) predicate at " +
            conjunct->loc.ToString());
      }
      cur = LSelect(cur, bound.value().first, GuessSelectivity(*conjunct));
    }

    return BindSelectOutput(sel, items, std::move(cur), std::move(scope),
                            out);
  }

  /// Everything above the joined/filtered input: aggregation, DISTINCT,
  /// ORDER BY placement, projection and LIMIT.
  Status BindSelectOutput(const SelectStatement& sel,
                          const std::vector<SelectItem>& items,
                          LogicalPtr cur, BindScope scope,
                          BoundStatement* out) {
    const bool has_group = !sel.group_by.empty();
    bool has_agg = false;
    for (const SelectItem& item : items) {
      if (ContainsAggregate(*item.expr)) has_agg = true;
    }

    // Per final output column: the projection expression over `cur`'s
    // output, and — when the item is a plain column of `cur` — its
    // position there (lets ORDER BY sort below the projection).
    std::vector<ExprPtr> proj_exprs;
    std::vector<std::optional<std::size_t>> direct;
    std::vector<std::string> names;
    std::vector<ColumnType> types;
    // Canonical agg rendering per item ("count(*)"), for ORDER BY
    // matching; empty for non-aggregate items.
    std::vector<std::string> agg_text(items.size());

    if (has_group || has_agg) {
      Status st = BindAggregation(sel, items, &cur, &scope, &proj_exprs,
                                  &direct, &names, &types, &agg_text);
      if (!st.ok()) return st;
      if (!has_group) {
        out->global_count_only = true;
        for (const SelectItem& item : items) {
          if (item.expr->kind != ParseExpr::Kind::kCall ||
              item.expr->name != "count") {
            out->global_count_only = false;
          }
        }
      }
    } else {
      for (const SelectItem& item : items) {
        Result<std::pair<ExprPtr, ColumnType>> bound =
            BindScalar(*item.expr, scope);
        if (!bound.ok()) return bound.status();
        proj_exprs.push_back(bound.value().first);
        types.push_back(bound.value().second);
        const int col = bound.value().first->column_index();
        direct.push_back(col >= 0 ? std::optional<std::size_t>(col)
                                  : std::nullopt);
        if (!item.alias.empty()) {
          names.push_back(item.alias);
        } else if (item.expr->kind == ParseExpr::Kind::kColumn) {
          names.push_back(item.expr->name);
        } else {
          names.push_back(item.expr->ToString());
        }
      }
    }

    auto projection_is_identity = [&]() {
      if (proj_exprs.size() != scope.cols.size()) return false;
      for (std::size_t i = 0; i < proj_exprs.size(); ++i) {
        if (!direct[i].has_value() || *direct[i] != i) return false;
      }
      return true;
    };

    // DISTINCT folds the projection into the Distinct node when every
    // item is a plain column — keeping the select-chain shape below it.
    bool projected = false;  // projection already applied to `cur`
    if (sel.distinct) {
      bool all_direct = true;
      for (const auto& d : direct) {
        if (!d.has_value()) all_direct = false;
      }
      std::vector<std::size_t> cols;
      if (all_direct) {
        for (const auto& d : direct) cols.push_back(*d);
        cur = LDistinct(std::move(cur), std::move(cols));
      } else {
        for (std::size_t i = 0; i < proj_exprs.size(); ++i) {
          cols.push_back(i);
        }
        cur = LProject(std::move(cur), proj_exprs);
        cur = LDistinct(std::move(cur), std::move(cols));
      }
      scope.cols.clear();
      for (std::size_t i = 0; i < names.size(); ++i) {
        scope.cols.push_back({"", names[i], types[i]});
        proj_exprs[i] = Col(i);
        direct[i] = i;
      }
      projected = true;
    }

    // ORDER BY: resolve every key to an item index or a position in
    // `cur`'s output.
    struct Key {
      std::optional<std::size_t> item;     // select-list item index
      std::optional<std::size_t> raw_pos;  // position in `cur`'s output
      bool ascending = true;
      SourceLoc loc;
    };
    std::vector<Key> keys;
    for (const OrderItem& o : sel.order_by) {
      Key key;
      key.ascending = o.ascending;
      key.loc = o.expr->loc;
      const ParseExpr& e = *o.expr;
      if (e.kind == ParseExpr::Kind::kIntLit) {
        if (e.i64 < 1 || e.i64 > static_cast<std::int64_t>(items.size())) {
          return Status::InvalidArgument(
              "ORDER BY position " + std::to_string(e.i64) +
              " is out of range at " + e.loc.ToString());
        }
        key.item = static_cast<std::size_t>(e.i64 - 1);
      } else if (e.kind == ParseExpr::Kind::kCall) {
        const std::string text = ToLowerAscii(e.ToString());
        for (std::size_t i = 0; i < items.size(); ++i) {
          if (agg_text[i] == text) key.item = i;
        }
        if (!key.item.has_value()) {
          return Status::InvalidArgument(
              "ORDER BY aggregate '" + e.ToString() +
              "' does not appear in the select list at " + e.loc.ToString());
        }
      } else {
        // Column name: explicit alias first, then the input, then output
        // names.
        if (e.qualifier.empty()) {
          for (std::size_t i = 0; i < items.size(); ++i) {
            if (EqualsNoCase(items[i].alias, e.name)) key.item = i;
          }
        }
        if (!key.item.has_value()) {
          Result<std::size_t> pos = scope.Resolve(e.qualifier, e.name, e.loc);
          if (pos.ok()) {
            key.raw_pos = pos.value();
          } else if (e.qualifier.empty()) {
            for (std::size_t i = 0; i < names.size(); ++i) {
              if (EqualsNoCase(names[i], e.name)) key.item = i;
            }
          }
          if (!key.item.has_value() && !key.raw_pos.has_value()) {
            return pos.status();
          }
        }
      }
      keys.push_back(key);
    }

    const bool has_limit = sel.limit >= 0;
    const std::size_t limit =
        has_limit ? static_cast<std::size_t>(sel.limit) : 0;
    const bool identity = projected || projection_is_identity();

    if (!keys.empty()) {
      // Prefer sorting below the projection (select-chain shape; allows
      // ordering by non-selected columns).
      bool all_below = true;
      std::vector<SortKeySpec> below;
      for (const Key& key : keys) {
        std::optional<std::size_t> pos = key.raw_pos;
        if (!pos.has_value() && key.item.has_value() &&
            direct[*key.item].has_value()) {
          pos = direct[*key.item];
        }
        if (!pos.has_value()) {
          all_below = false;
          break;
        }
        below.push_back({*pos, key.ascending});
      }
      if (all_below) {
        cur = LSort(std::move(cur), std::move(below), limit);
        if (!identity) cur = LProject(std::move(cur), proj_exprs);
      } else {
        // Sort above the projection: every key must name a select item.
        if (!identity) cur = LProject(std::move(cur), proj_exprs);
        std::vector<SortKeySpec> above;
        for (const Key& key : keys) {
          std::optional<std::size_t> pos = key.item;
          if (!pos.has_value() && identity) pos = key.raw_pos;
          if (!pos.has_value() && key.raw_pos.has_value()) {
            // A raw input column: find the item projecting it.
            for (std::size_t i = 0; i < direct.size(); ++i) {
              if (direct[i].has_value() && *direct[i] == *key.raw_pos) {
                pos = i;
              }
            }
          }
          if (!pos.has_value()) {
            return Status::InvalidArgument(
                "ORDER BY cannot mix computed select items with columns "
                "that are not in the select list, at " +
                key.loc.ToString());
          }
          above.push_back({*pos, key.ascending});
        }
        cur = LSort(std::move(cur), std::move(above), limit);
      }
      // kSort's limit 0 means "full sort", so `LIMIT 0` truncates the
      // materialized result instead.
      if (has_limit && limit == 0) {
        out->has_post_limit = true;
        out->post_limit = 0;
      }
    } else {
      if (!identity) cur = LProject(std::move(cur), proj_exprs);
      out->has_post_limit = has_limit;
      out->post_limit = limit;
    }

    out->plan = std::move(cur);
    out->column_names = std::move(names);
    return Status::OK();
  }

  /// GROUP BY / aggregate binding: builds the Aggregate node and the
  /// projection mapping select items onto its output.
  Status BindAggregation(const SelectStatement& sel,
                         const std::vector<SelectItem>& items,
                         LogicalPtr* cur, BindScope* scope,
                         std::vector<ExprPtr>* proj_exprs,
                         std::vector<std::optional<std::size_t>>* direct,
                         std::vector<std::string>* names,
                         std::vector<ColumnType>* types,
                         std::vector<std::string>* agg_text) {
    const bool global = sel.group_by.empty();

    std::vector<std::size_t> group_pos;  // positions in `cur`'s output
    for (const ParseExprPtr& g : sel.group_by) {
      Result<std::size_t> pos = scope->Resolve(g->qualifier, g->name, g->loc);
      if (!pos.ok()) return pos.status();
      group_pos.push_back(pos.value());
    }

    // Classify the items; aggregate arguments must be plain columns.
    struct ItemPlan {
      bool is_group = false;
      std::size_t group_idx = 0;  // index into group_pos
      bool is_avg = false;
      std::size_t agg_idx = 0;    // first AggSpec of this item
    };
    std::vector<AggSpec> specs;
    std::vector<ItemPlan> plans;
    for (const SelectItem& item : items) {
      const ParseExpr& e = *item.expr;
      ItemPlan plan;
      if (e.kind == ParseExpr::Kind::kColumn) {
        Result<std::size_t> pos = scope->Resolve(e.qualifier, e.name, e.loc);
        if (!pos.ok()) return pos.status();
        bool in_group = false;
        for (std::size_t i = 0; i < group_pos.size(); ++i) {
          if (group_pos[i] == pos.value()) {
            plan.is_group = true;
            plan.group_idx = i;
            in_group = true;
          }
        }
        if (!in_group) {
          return Status::InvalidArgument(
              "column '" + e.name +
              "' must appear in GROUP BY or inside an aggregate, at " +
              e.loc.ToString());
        }
      } else if (e.kind == ParseExpr::Kind::kCall) {
        plan.agg_idx = specs.size();
        std::size_t arg_pos = 0;
        ColumnType arg_type = ColumnType::kInt64;
        if (!e.star_arg) {
          const ParseExpr& arg = *e.children[0];
          if (arg.kind != ParseExpr::Kind::kColumn) {
            return Status::InvalidArgument(
                "aggregate arguments must be plain columns, at " +
                arg.loc.ToString());
          }
          Result<std::size_t> pos =
              scope->Resolve(arg.qualifier, arg.name, arg.loc);
          if (!pos.ok()) return pos.status();
          arg_pos = pos.value();
          arg_type = scope->cols[arg_pos].type;
        }
        if (e.name == "count") {
          specs.push_back({AggOp::kCount, arg_pos});
        } else if (e.name == "sum" || e.name == "avg") {
          if (e.star_arg) {
            return Status::InvalidArgument(e.name + "(*) is not valid at " +
                                           e.loc.ToString());
          }
          if (arg_type == ColumnType::kString) {
            return Status::InvalidArgument(
                e.name + " expects a numeric column, at " + e.loc.ToString());
          }
          specs.push_back({AggOp::kSum, arg_pos});
          if (e.name == "avg") {
            plan.is_avg = true;
            specs.push_back({AggOp::kCount, arg_pos});
          }
        } else if (e.name == "min" || e.name == "max") {
          if (e.star_arg) {
            return Status::InvalidArgument(e.name + "(*) is not valid at " +
                                           e.loc.ToString());
          }
          specs.push_back(
              {e.name == "min" ? AggOp::kMin : AggOp::kMax, arg_pos});
        } else {
          return Status::InvalidArgument("unknown aggregate '" + e.name +
                                         "' at " + e.loc.ToString());
        }
      } else {
        return Status::InvalidArgument(
            "select items under GROUP BY must be grouping columns or "
            "aggregates (expressions over aggregates are not supported), "
            "at " + e.loc.ToString());
      }
      plans.push_back(plan);
    }

    // Output types of the aggregate node inputs, for result typing.
    std::vector<ColumnType> in_types;
    for (const ColumnInfo& c : scope->cols) in_types.push_back(c.type);

    std::size_t agg_base;  // position of the first AggSpec output
    if (global) {
      // No grouping: aggregate over a constant key, dropped afterwards.
      std::vector<ExprPtr> pre;
      pre.push_back(ConstInt(0));
      for (std::size_t i = 0; i < scope->cols.size(); ++i) {
        pre.push_back(Col(i));
      }
      *cur = LProject(std::move(*cur), std::move(pre));
      for (AggSpec& spec : specs) ++spec.column;
      *cur = LAggregate(std::move(*cur), {0}, specs);
      agg_base = 1;
    } else {
      *cur = LAggregate(std::move(*cur), group_pos, specs);
      agg_base = group_pos.size();
    }

    // New scope: the aggregate's output.
    BindScope agg_scope;
    if (global) {
      agg_scope.cols.push_back({"", "<const>", ColumnType::kInt64});
    } else {
      for (std::size_t pos : group_pos) agg_scope.cols.push_back(scope->cols[pos]);
    }
    for (std::size_t s = 0; s < specs.size(); ++s) {
      const AggSpec& spec = specs[s];
      ColumnType t = ColumnType::kInt64;
      if (spec.op != AggOp::kCount) {
        const std::size_t src = global ? spec.column - 1 : spec.column;
        t = in_types[src];
      }
      agg_scope.cols.push_back({"", "<agg>", t});
    }

    // Projection over the aggregate output.
    for (std::size_t i = 0; i < items.size(); ++i) {
      const SelectItem& item = items[i];
      const ItemPlan& plan = plans[i];
      std::string name = item.alias;
      if (plan.is_group) {
        const std::size_t pos = global ? 0 : plan.group_idx;
        proj_exprs->push_back(Col(pos));
        direct->push_back(pos);
        types->push_back(agg_scope.cols[pos].type);
        if (name.empty()) name = item.expr->name;
      } else {
        const std::size_t pos = agg_base + plan.agg_idx;
        (*agg_text)[i] = ToLowerAscii(item.expr->ToString());
        if (plan.is_avg) {
          // AVG = SUM / COUNT with *both* operands cast to DOUBLE: the
          // result is always DOUBLE and no integer division can occur
          // anywhere on the path, even over INT64 columns.
          proj_exprs->push_back(Div(Cast(Col(pos), ColumnType::kDouble),
                                    Cast(Col(pos + 1),
                                         ColumnType::kDouble)));
          direct->push_back(std::nullopt);
          types->push_back(ColumnType::kDouble);
        } else {
          proj_exprs->push_back(Col(pos));
          direct->push_back(pos);
          types->push_back(agg_scope.cols[pos].type);
        }
        if (name.empty()) name = item.expr->ToString();
      }
      names->push_back(std::move(name));
    }

    *scope = std::move(agg_scope);
    return Status::OK();
  }

  // ----------------------------------------------------------------- DML

  Result<const PartitionedTable*> ResolveDmlTable(const std::string& name,
                                                  const SourceLoc& loc) {
    if (obs::IsSystemSchemaName(name)) {
      return Status::InvalidArgument("system table '" + name +
                                     "' is read-only at " + loc.ToString());
    }
    const PartitionedTable* table = catalog_.FindPartitionedTable(name);
    if (table == nullptr) {
      return Status::NotFound("unknown table '" + name + "' at " +
                              loc.ToString());
    }
    return table;
  }

  BindScope FullTableScope(const std::string& qualifier,
                           const PartitionedTable& table) {
    BindScope scope;
    for (const Field& f : table.schema().fields()) {
      scope.cols.push_back({qualifier, f.name, f.type});
    }
    return scope;
  }

  /// Binds a DML WHERE (over the full schema) into `out`.
  Status BindDmlWhere(const ParseExprPtr& where, const BindScope& scope,
                      BoundStatement* out) {
    if (where == nullptr) return Status::OK();
    if (ContainsAggregate(*where)) {
      return Status::InvalidArgument("aggregate function in WHERE at " +
                                     where->loc.ToString());
    }
    Result<std::pair<ExprPtr, ColumnType>> bound = BindScalar(*where, scope);
    if (!bound.ok()) return bound.status();
    if (bound.value().second != ColumnType::kInt64) {
      return Status::InvalidArgument(
          "WHERE expects a boolean (INT64) predicate at " +
          where->loc.ToString());
    }
    out->where = bound.value().first;
    out->where_selectivity = GuessSelectivity(*where);
    return Status::OK();
  }

  Status BindInsert(const InsertStatement& ins, BoundStatement* out) {
    Result<const PartitionedTable*> table = ResolveDmlTable(ins.table, ins.table_loc);
    if (!table.ok()) return table.status();
    const Schema& schema = table.value()->schema();
    out->table = ins.table;

    // Column list: a permutation of the schema (no DEFAULT support).
    std::vector<std::size_t> targets;  // value position -> schema column
    if (ins.columns.empty()) {
      for (std::size_t c = 0; c < schema.num_fields(); ++c) {
        targets.push_back(c);
      }
    } else {
      if (ins.columns.size() != schema.num_fields()) {
        return Status::InvalidArgument(
            "INSERT column list must mention every column of '" + ins.table +
            "' exactly once (no DEFAULT values) at " +
            ins.table_loc.ToString());
      }
      std::set<std::size_t> seen;
      for (std::size_t i = 0; i < ins.columns.size(); ++i) {
        const std::string& name = ins.columns[i];
        const SourceLoc loc =
            i < ins.column_locs.size() ? ins.column_locs[i] : ins.table_loc;
        int idx = -1;
        for (std::size_t c = 0; c < schema.num_fields(); ++c) {
          if (EqualsNoCase(schema.field(c).name, name)) {
            idx = static_cast<int>(c);
          }
        }
        if (idx < 0) {
          return Status::InvalidArgument("unknown column '" + name +
                                         "' in INSERT column list at " +
                                         loc.ToString());
        }
        if (!seen.insert(static_cast<std::size_t>(idx)).second) {
          return Status::InvalidArgument("duplicate column '" + name +
                                         "' in INSERT column list at " +
                                         loc.ToString());
        }
        targets.push_back(static_cast<std::size_t>(idx));
      }
    }

    const BindScope empty_scope;  // INSERT values are column-free
    for (const std::vector<ParseExprPtr>& row : ins.rows) {
      if (row.size() != targets.size()) {
        return Status::InvalidArgument(
            "INSERT row has " + std::to_string(row.size()) +
            " values, expected " + std::to_string(targets.size()) + " at " +
            (row.empty() ? ins.table_loc : row[0]->loc).ToString());
      }
      std::vector<ExprPtr> bound_row(schema.num_fields());
      for (std::size_t i = 0; i < row.size(); ++i) {
        const std::size_t col = targets[i];
        const ColumnType want = schema.field(col).type;
        Result<std::pair<ExprPtr, ColumnType>> bound =
            BindScalar(*row[i], empty_scope, want);
        if (!bound.ok()) return bound.status();
        ExprPtr expr = bound.value().first;
        ColumnType got = bound.value().second;
        if (got != want) {
          if (got == ColumnType::kInt64 && want == ColumnType::kDouble) {
            expr = Cast(std::move(expr), ColumnType::kDouble);
          } else {
            return Status::InvalidArgument(
                "cannot insert " + std::string(ColumnTypeName(got)) +
                " into " + ColumnTypeName(want) + " column '" +
                schema.field(col).name + "' at " + row[i]->loc.ToString());
          }
        }
        bound_row[col] = std::move(expr);
      }
      out->insert_rows.push_back(std::move(bound_row));
    }
    return Status::OK();
  }

  Status BindUpdate(const UpdateStatement& upd, BoundStatement* out) {
    Result<const PartitionedTable*> table = ResolveDmlTable(upd.table, upd.table_loc);
    if (!table.ok()) return table.status();
    const Schema& schema = table.value()->schema();
    out->table = upd.table;
    const BindScope scope = FullTableScope(upd.table, *table.value());

    std::set<std::size_t> set_cols;
    for (const UpdateStatement::SetClause& set : upd.sets) {
      int idx = -1;
      for (std::size_t c = 0; c < schema.num_fields(); ++c) {
        if (EqualsNoCase(schema.field(c).name, set.column)) {
          idx = static_cast<int>(c);
        }
      }
      if (idx < 0) {
        return Status::InvalidArgument("unknown column '" + set.column +
                                       "' at " + set.loc.ToString());
      }
      if (!set_cols.insert(static_cast<std::size_t>(idx)).second) {
        return Status::InvalidArgument("column '" + set.column +
                                       "' is SET twice at " +
                                       set.loc.ToString());
      }
      const ColumnType want = schema.field(idx).type;
      Result<std::pair<ExprPtr, ColumnType>> bound =
          BindScalar(*set.value, scope, want);
      if (!bound.ok()) return bound.status();
      ExprPtr expr = bound.value().first;
      const ColumnType got = bound.value().second;
      if (got != want) {
        if (got == ColumnType::kInt64 && want == ColumnType::kDouble) {
          expr = Cast(std::move(expr), ColumnType::kDouble);
        } else {
          return Status::InvalidArgument(
              "cannot assign " + std::string(ColumnTypeName(got)) + " to " +
              ColumnTypeName(want) + " column '" + set.column + "' at " +
              set.loc.ToString());
        }
      }
      out->set_exprs.emplace_back(static_cast<std::size_t>(idx),
                                  std::move(expr));
    }
    return BindDmlWhere(upd.where, scope, out);
  }

  Status BindCreateTable(const CreateTableStatement& create,
                         BoundStatement* out) {
    if (obs::IsSystemSchemaName(create.table)) {
      return Status::InvalidArgument("system schema 'pi_stats' is read-only"
                                     " at " +
                                     create.table_loc.ToString());
    }
    out->table = create.table;
    std::vector<Field> fields;
    for (const CreateTableStatement::ColumnDef& col : create.columns) {
      ColumnType type;
      if (col.type_name == "int64" || col.type_name == "bigint" ||
          col.type_name == "int") {
        type = ColumnType::kInt64;
      } else if (col.type_name == "double" || col.type_name == "float" ||
                 col.type_name == "real") {
        type = ColumnType::kDouble;
      } else if (col.type_name == "string" || col.type_name == "text" ||
                 col.type_name == "varchar") {
        type = ColumnType::kString;
      } else {
        return Status::InvalidArgument(
            "unknown column type '" + col.type_name + "' at " +
            col.type_loc.ToString() +
            " (INT64/BIGINT/INT, DOUBLE/FLOAT/REAL, STRING/TEXT/VARCHAR)");
      }
      for (const Field& f : fields) {
        if (EqualsNoCase(f.name, col.name)) {
          return Status::InvalidArgument("duplicate column '" + col.name +
                                         "' at " + col.loc.ToString());
        }
      }
      fields.push_back({col.name, type});
    }
    out->create_schema = Schema(std::move(fields));
    out->create_partitions =
        create.partitions < 0 ? 0
                              : static_cast<std::size_t>(create.partitions);
    // Existence is checked again at execution (under the catalog's own
    // lock); failing early here gives prepared statements the same error.
    if (catalog_.FindPartitionedTable(create.table) != nullptr) {
      return Status::AlreadyExists("table '" + create.table +
                                   "' already exists at " +
                                   create.table_loc.ToString());
    }
    return Status::OK();
  }

  Status BindDelete(const DeleteStatement& del, BoundStatement* out) {
    Result<const PartitionedTable*> table = ResolveDmlTable(del.table, del.table_loc);
    if (!table.ok()) return table.status();
    out->table = del.table;
    const BindScope scope = FullTableScope(del.table, *table.value());
    return BindDmlWhere(del.where, scope, out);
  }

  const Catalog& catalog_;
  std::shared_ptr<std::vector<Value>> slots_;
  std::vector<std::optional<ColumnType>> param_types_;
  std::vector<SourceLoc> param_locs_;
};

}  // namespace

Result<BoundStatement> BindStatement(const Statement& stmt,
                                     const Catalog& catalog) {
  return Binder(catalog, stmt.num_params, stmt.param_locs).Bind(stmt);
}

}  // namespace patchindex::sql
