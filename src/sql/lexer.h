#ifndef PATCHINDEX_SQL_LEXER_H_
#define PATCHINDEX_SQL_LEXER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace patchindex::sql {

/// 1-based position of a token in the statement text, for error messages
/// ("syntax error at line 2, column 14").
struct SourceLoc {
  std::size_t line = 1;
  std::size_t column = 1;

  std::string ToString() const {
    return "line " + std::to_string(line) + ", column " +
           std::to_string(column);
  }
};

enum class TokenKind {
  kIdentifier,     // bare word; keyword-ness is decided by the parser
  kIntLiteral,     // 123
  kDoubleLiteral,  // 1.5
  kStringLiteral,  // 'abc' ('' escapes a quote)
  kLParen,
  kRParen,
  kComma,
  kDot,
  kStar,  // `*`: select-star, COUNT(*) or multiplication — context decides
  kSemicolon,
  kQuestion,  // `?` prepared-statement parameter
  kEq,
  kNe,  // != or <>
  kLt,
  kLe,
  kGt,
  kGe,
  kPlus,
  kMinus,
  kSlash,
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  /// Raw text (identifier spelling, literal text, operator); string
  /// literals hold the unescaped content without quotes.
  std::string text;
  std::int64_t i64 = 0;  // kIntLiteral
  double f64 = 0.0;      // kDoubleLiteral
  SourceLoc loc;

  /// Case-insensitive keyword test (identifiers only). `kw` must be
  /// lowercase.
  bool Is(std::string_view kw) const;
};

/// Splits `sql` into tokens (whitespace and `--` line comments skipped),
/// ending with a kEnd token. Fails with kInvalidArgument on unterminated
/// strings, malformed numbers, or characters outside the language, with
/// the offending position in the message.
Result<std::vector<Token>> Tokenize(std::string_view sql);

/// ASCII-lowercases `s`. SQL identifiers and keywords match
/// case-insensitively; lexer, parser and binder all go through these two
/// helpers so the rules cannot drift apart.
std::string ToLowerAscii(std::string s);

/// Case-insensitive ASCII string equality.
bool EqualsNoCase(std::string_view a, std::string_view b);

}  // namespace patchindex::sql

#endif  // PATCHINDEX_SQL_LEXER_H_
