#ifndef PATCHINDEX_SQL_AST_H_
#define PATCHINDEX_SQL_AST_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sql/lexer.h"

namespace patchindex::sql {

/// Unbound scalar expression as parsed. Names are unresolved; the binder
/// turns these into `patchindex::Expr` trees with column indices.
struct ParseExpr;
using ParseExprPtr = std::shared_ptr<ParseExpr>;

struct ParseExpr {
  enum class Kind {
    kColumn,     // [qualifier.]name
    kIntLit,     // i64
    kDoubleLit,  // f64
    kStringLit,  // str
    kParam,      // `?`, param_ordinal
    kUnary,      // op (kNot/kNeg), children[0]
    kBinary,     // op, children[0] op children[1]
    kCall,       // name(children...) — aggregate functions; star_arg = (*)
    kInList,     // children[0] IN (children[1..])
  };
  enum class Op {
    kEq,
    kNe,
    kLt,
    kLe,
    kGt,
    kGe,
    kAnd,
    kOr,
    kNot,
    kNeg,
    kAdd,
    kSub,
    kMul,
    kDiv,
  };

  Kind kind = Kind::kColumn;
  SourceLoc loc;
  std::string qualifier;  // kColumn: table name or alias; may be empty
  std::string name;       // kColumn / kCall (function name, lowercased)
  std::int64_t i64 = 0;
  double f64 = 0.0;
  std::string str;
  std::size_t param_ordinal = 0;
  Op op = Op::kEq;
  bool star_arg = false;  // kCall: COUNT(*)
  std::vector<ParseExprPtr> children;

  /// Canonical rendering for parser tests and error messages, e.g.
  /// `(t.a + 1)`, `count(*)`, `x IN (1, 2)`.
  std::string ToString() const;
};

struct SelectItem {
  ParseExprPtr expr;  // null when star
  std::string alias;
  bool star = false;
  SourceLoc loc;
};

struct TableClause {
  std::string table;
  std::string alias;  // display qualifier; defaults to the table name
  SourceLoc loc;

  const std::string& Qualifier() const { return alias.empty() ? table : alias; }
};

/// `JOIN <table> ON <col> = <col>` — inner equi joins only.
struct JoinClause {
  TableClause table;
  ParseExprPtr left_key;   // both sides are column refs
  ParseExprPtr right_key;
  SourceLoc loc;
};

struct OrderItem {
  ParseExprPtr expr;  // column ref, ordinal literal, or aggregate call
  bool ascending = true;
};

struct SelectStatement {
  /// Position of the SELECT keyword, anchoring statement-level errors
  /// that have no better token to point at.
  SourceLoc loc;
  bool distinct = false;
  std::vector<SelectItem> items;
  TableClause from;
  std::vector<JoinClause> joins;
  ParseExprPtr where;  // may be null
  std::vector<ParseExprPtr> group_by;
  std::vector<OrderItem> order_by;
  std::int64_t limit = -1;  // -1 = no LIMIT
};

struct InsertStatement {
  std::string table;
  SourceLoc table_loc;
  std::vector<std::string> columns;  // empty = schema order; else must
                                     // cover every column exactly once
  std::vector<SourceLoc> column_locs;  // parallel to `columns`
  std::vector<std::vector<ParseExprPtr>> rows;
};

struct UpdateStatement {
  struct SetClause {
    std::string column;
    SourceLoc loc;
    ParseExprPtr value;
  };
  std::string table;
  SourceLoc table_loc;
  std::vector<SetClause> sets;
  ParseExprPtr where;  // may be null (updates every row)
};

struct DeleteStatement {
  std::string table;
  SourceLoc table_loc;
  ParseExprPtr where;  // may be null (deletes every row)
};

/// `CREATE TABLE name (col type, ...) [PARTITIONS n]`. Type names are
/// resolved by the binder (INT64/BIGINT/INT, DOUBLE/FLOAT/REAL,
/// STRING/TEXT/VARCHAR).
struct CreateTableStatement {
  struct ColumnDef {
    std::string name;
    SourceLoc loc;
    std::string type_name;  // lowercased
    SourceLoc type_loc;
  };
  std::string table;
  SourceLoc table_loc;
  std::vector<ColumnDef> columns;
  /// Partition count of the PARTITIONS clause; -1 = none given (the
  /// engine's session default applies).
  std::int64_t partitions = -1;
  SourceLoc partitions_loc;
};

/// One parsed SQL statement; exactly the member matching `kind` is set.
struct Statement {
  enum class Kind { kSelect, kInsert, kUpdate, kDelete, kCreateTable };

  Kind kind = Kind::kSelect;
  /// EXPLAIN prefix: render the plan instead of executing the statement.
  bool explain = false;
  /// EXPLAIN ANALYZE: execute with per-operator profiling and render the
  /// measured plan (SELECT only; implies `explain`).
  bool analyze = false;
  std::shared_ptr<SelectStatement> select;
  std::shared_ptr<InsertStatement> insert;
  std::shared_ptr<UpdateStatement> update;
  std::shared_ptr<DeleteStatement> del;
  std::shared_ptr<CreateTableStatement> create;
  /// Number of `?` placeholders (ordinals are assigned left to right).
  std::size_t num_params = 0;
  /// Position of each `?`, by ordinal — the binder anchors its
  /// "cannot infer the type of parameter" diagnostics here.
  std::vector<SourceLoc> param_locs;
};

}  // namespace patchindex::sql

#endif  // PATCHINDEX_SQL_AST_H_
