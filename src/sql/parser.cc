#include "sql/parser.h"

#include <algorithm>
#include <cctype>
#include <utility>

namespace patchindex::sql {

namespace {

bool IsReserved(const Token& t) {
  static const char* kReserved[] = {
      "select", "distinct", "from",  "where",  "group", "by",    "order",
      "asc",    "desc",     "limit", "join",   "inner", "on",    "and",
      "or",     "not",      "in",    "as",     "insert", "into", "values",
      "update", "set",      "delete"};
  for (const char* kw : kReserved) {
    if (t.Is(kw)) return true;
  }
  return false;
}

bool IsAggregateName(const std::string& lowered) {
  return lowered == "count" || lowered == "sum" || lowered == "min" ||
         lowered == "max" || lowered == "avg";
}

/// Recursive-descent parser. Errors are sticky: the first failure records
/// `error_` and every production above unwinds with a null result.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Statement> Parse() {
    Statement stmt;
    if (Cur().Is("explain")) {
      stmt.explain = true;
      Advance();
      if (Cur().Is("analyze")) {
        stmt.analyze = true;
        Advance();
      }
      if (Cur().Is("explain")) {
        Fail("EXPLAIN cannot be nested", Cur());
        return error_;
      }
    }
    const Token& t = Cur();
    if (t.Is("select")) {
      stmt.kind = Statement::Kind::kSelect;
      stmt.select = ParseSelect();
    } else if (t.Is("insert")) {
      stmt.kind = Statement::Kind::kInsert;
      stmt.insert = ParseInsert();
    } else if (t.Is("update")) {
      stmt.kind = Statement::Kind::kUpdate;
      stmt.update = ParseUpdate();
    } else if (t.Is("delete")) {
      stmt.kind = Statement::Kind::kDelete;
      stmt.del = ParseDelete();
    } else if (t.Is("create")) {
      stmt.kind = Statement::Kind::kCreateTable;
      stmt.create = ParseCreateTable();
    } else {
      Fail("expected SELECT, INSERT, UPDATE, DELETE or CREATE", t);
    }
    if (error_.ok()) {
      if (Cur().kind == TokenKind::kSemicolon) Advance();
      if (Cur().kind != TokenKind::kEnd) {
        Fail("unexpected trailing input", Cur());
      }
    }
    if (!error_.ok()) return error_;
    stmt.num_params = num_params_;
    stmt.param_locs = std::move(param_locs_);
    return stmt;
  }

 private:
  // ----------------------------------------------------------- statements

  std::shared_ptr<SelectStatement> ParseSelect() {
    auto sel = std::make_shared<SelectStatement>();
    sel->loc = Cur().loc;
    ExpectKeyword("select");
    if (Cur().Is("distinct")) {
      sel->distinct = true;
      Advance();
    }
    // Select list.
    if (Cur().kind == TokenKind::kStar) {
      SelectItem item;
      item.star = true;
      item.loc = Cur().loc;
      sel->items.push_back(std::move(item));
      Advance();
    } else {
      do {
        SelectItem item;
        item.loc = Cur().loc;
        item.expr = ParseExprTop();
        if (!error_.ok()) return sel;
        if (Cur().Is("as")) {
          Advance();
          item.alias = ExpectIdentifier("alias");
        } else if (Cur().kind == TokenKind::kIdentifier &&
                   !IsReserved(Cur())) {
          item.alias = Cur().text;
          Advance();
        }
        sel->items.push_back(std::move(item));
      } while (Accept(TokenKind::kComma));
    }
    ExpectKeyword("from");
    sel->from = ParseTableClause();
    while (error_.ok() && (Cur().Is("join") || Cur().Is("inner"))) {
      JoinClause join;
      join.loc = Cur().loc;
      if (Cur().Is("inner")) Advance();
      ExpectKeyword("join");
      join.table = ParseTableClause();
      ExpectKeyword("on");
      join.left_key = ParseColumnRef();
      Expect(TokenKind::kEq, "'='");
      join.right_key = ParseColumnRef();
      sel->joins.push_back(std::move(join));
    }
    if (Cur().Is("where")) {
      Advance();
      sel->where = ParseExprTop();
    }
    if (Cur().Is("group")) {
      Advance();
      ExpectKeyword("by");
      do {
        sel->group_by.push_back(ParseColumnRef());
      } while (error_.ok() && Accept(TokenKind::kComma));
    }
    if (Cur().Is("order")) {
      Advance();
      ExpectKeyword("by");
      do {
        OrderItem item;
        item.expr = ParseOrderKey();
        if (Cur().Is("asc")) {
          Advance();
        } else if (Cur().Is("desc")) {
          item.ascending = false;
          Advance();
        }
        sel->order_by.push_back(std::move(item));
      } while (error_.ok() && Accept(TokenKind::kComma));
    }
    if (Cur().Is("limit")) {
      Advance();
      if (Cur().kind != TokenKind::kIntLiteral || Cur().i64 < 0) {
        Fail("LIMIT expects a non-negative integer", Cur());
        return sel;
      }
      sel->limit = Cur().i64;
      Advance();
    }
    return sel;
  }

  std::shared_ptr<InsertStatement> ParseInsert() {
    auto ins = std::make_shared<InsertStatement>();
    ExpectKeyword("insert");
    ExpectKeyword("into");
    ins->table_loc = Cur().loc;
    ins->table = ExpectTableName();
    if (Accept(TokenKind::kLParen)) {
      do {
        ins->column_locs.push_back(Cur().loc);
        ins->columns.push_back(ExpectIdentifier("column name"));
      } while (error_.ok() && Accept(TokenKind::kComma));
      Expect(TokenKind::kRParen, "')'");
    }
    ExpectKeyword("values");
    do {
      Expect(TokenKind::kLParen, "'('");
      std::vector<ParseExprPtr> row;
      do {
        row.push_back(ParseExprTop());
      } while (error_.ok() && Accept(TokenKind::kComma));
      Expect(TokenKind::kRParen, "')'");
      ins->rows.push_back(std::move(row));
    } while (error_.ok() && Accept(TokenKind::kComma));
    return ins;
  }

  std::shared_ptr<UpdateStatement> ParseUpdate() {
    auto upd = std::make_shared<UpdateStatement>();
    ExpectKeyword("update");
    upd->table_loc = Cur().loc;
    upd->table = ExpectTableName();
    ExpectKeyword("set");
    do {
      UpdateStatement::SetClause set;
      set.loc = Cur().loc;
      set.column = ExpectIdentifier("column name");
      Expect(TokenKind::kEq, "'='");
      set.value = ParseExprTop();
      upd->sets.push_back(std::move(set));
    } while (error_.ok() && Accept(TokenKind::kComma));
    if (Cur().Is("where")) {
      Advance();
      upd->where = ParseExprTop();
    }
    return upd;
  }

  std::shared_ptr<CreateTableStatement> ParseCreateTable() {
    auto create = std::make_shared<CreateTableStatement>();
    ExpectKeyword("create");
    ExpectKeyword("table");
    create->table_loc = Cur().loc;
    create->table = ExpectTableName();
    Expect(TokenKind::kLParen, "'('");
    do {
      CreateTableStatement::ColumnDef col;
      col.loc = Cur().loc;
      col.name = ExpectIdentifier("column name");
      col.type_loc = Cur().loc;
      col.type_name = ToLowerAscii(ExpectIdentifier("column type"));
      create->columns.push_back(std::move(col));
    } while (error_.ok() && Accept(TokenKind::kComma));
    Expect(TokenKind::kRParen, "')'");
    if (error_.ok() && Cur().Is("partitions")) {
      Advance();
      create->partitions_loc = Cur().loc;
      if (Cur().kind != TokenKind::kIntLiteral || Cur().i64 < 1) {
        Fail("PARTITIONS expects a positive integer", Cur());
        return create;
      }
      create->partitions = Cur().i64;
      Advance();
    }
    return create;
  }

  std::shared_ptr<DeleteStatement> ParseDelete() {
    auto del = std::make_shared<DeleteStatement>();
    ExpectKeyword("delete");
    ExpectKeyword("from");
    del->table_loc = Cur().loc;
    del->table = ExpectTableName();
    if (Cur().Is("where")) {
      Advance();
      del->where = ParseExprTop();
    }
    return del;
  }

  // ---------------------------------------------------------- expressions

  ParseExprPtr ParseExprTop() { return ParseOr(); }

  ParseExprPtr ParseOr() {
    ParseExprPtr left = ParseAnd();
    while (error_.ok() && Cur().Is("or")) {
      const SourceLoc loc = Cur().loc;
      Advance();
      left = MakeBinary(ParseExpr::Op::kOr, std::move(left), ParseAnd(), loc);
    }
    return left;
  }

  ParseExprPtr ParseAnd() {
    ParseExprPtr left = ParseNot();
    while (error_.ok() && Cur().Is("and")) {
      const SourceLoc loc = Cur().loc;
      Advance();
      left = MakeBinary(ParseExpr::Op::kAnd, std::move(left), ParseNot(), loc);
    }
    return left;
  }

  ParseExprPtr ParseNot() {
    if (Cur().Is("not")) {
      const SourceLoc loc = Cur().loc;
      Advance();
      auto e = std::make_shared<ParseExpr>();
      e->kind = ParseExpr::Kind::kUnary;
      e->op = ParseExpr::Op::kNot;
      e->loc = loc;
      e->children.push_back(ParseNot());
      return e;
    }
    return ParseComparison();
  }

  ParseExprPtr ParseComparison() {
    ParseExprPtr left = ParseAdditive();
    if (!error_.ok()) return left;
    const Token& t = Cur();
    ParseExpr::Op op;
    switch (t.kind) {
      case TokenKind::kEq:
        op = ParseExpr::Op::kEq;
        break;
      case TokenKind::kNe:
        op = ParseExpr::Op::kNe;
        break;
      case TokenKind::kLt:
        op = ParseExpr::Op::kLt;
        break;
      case TokenKind::kLe:
        op = ParseExpr::Op::kLe;
        break;
      case TokenKind::kGt:
        op = ParseExpr::Op::kGt;
        break;
      case TokenKind::kGe:
        op = ParseExpr::Op::kGe;
        break;
      default: {
        bool negated = false;
        SourceLoc loc = t.loc;
        std::size_t save = pos_;
        if (Cur().Is("not")) {
          negated = true;
          Advance();
        }
        if (!Cur().Is("in")) {
          pos_ = save;  // plain NOT belongs to ParseNot, not to IN
          return left;
        }
        Advance();
        Expect(TokenKind::kLParen, "'('");
        auto in = std::make_shared<ParseExpr>();
        in->kind = ParseExpr::Kind::kInList;
        in->loc = loc;
        in->children.push_back(std::move(left));
        do {
          in->children.push_back(ParseExprTop());
        } while (error_.ok() && Accept(TokenKind::kComma));
        Expect(TokenKind::kRParen, "')'");
        if (!negated) return in;
        auto wrapped = std::make_shared<ParseExpr>();
        wrapped->kind = ParseExpr::Kind::kUnary;
        wrapped->op = ParseExpr::Op::kNot;
        wrapped->loc = loc;
        wrapped->children.push_back(std::move(in));
        return wrapped;
      }
    }
    const SourceLoc loc = t.loc;
    Advance();
    return MakeBinary(op, std::move(left), ParseAdditive(), loc);
  }

  ParseExprPtr ParseAdditive() {
    ParseExprPtr left = ParseMultiplicative();
    while (error_.ok() && (Cur().kind == TokenKind::kPlus ||
                           Cur().kind == TokenKind::kMinus)) {
      const ParseExpr::Op op = Cur().kind == TokenKind::kPlus
                                   ? ParseExpr::Op::kAdd
                                   : ParseExpr::Op::kSub;
      const SourceLoc loc = Cur().loc;
      Advance();
      left = MakeBinary(op, std::move(left), ParseMultiplicative(), loc);
    }
    return left;
  }

  ParseExprPtr ParseMultiplicative() {
    ParseExprPtr left = ParseUnary();
    while (error_.ok() && (Cur().kind == TokenKind::kStar ||
                           Cur().kind == TokenKind::kSlash)) {
      const ParseExpr::Op op = Cur().kind == TokenKind::kStar
                                   ? ParseExpr::Op::kMul
                                   : ParseExpr::Op::kDiv;
      const SourceLoc loc = Cur().loc;
      Advance();
      left = MakeBinary(op, std::move(left), ParseUnary(), loc);
    }
    return left;
  }

  ParseExprPtr ParseUnary() {
    if (Cur().kind == TokenKind::kMinus) {
      const SourceLoc loc = Cur().loc;
      Advance();
      ParseExprPtr inner = ParseUnary();
      if (!error_.ok()) return inner;
      // Fold -literal so `-3` is a literal, not a unary expression.
      if (inner->kind == ParseExpr::Kind::kIntLit) {
        inner->i64 = -inner->i64;
        return inner;
      }
      if (inner->kind == ParseExpr::Kind::kDoubleLit) {
        inner->f64 = -inner->f64;
        return inner;
      }
      auto e = std::make_shared<ParseExpr>();
      e->kind = ParseExpr::Kind::kUnary;
      e->op = ParseExpr::Op::kNeg;
      e->loc = loc;
      e->children.push_back(std::move(inner));
      return e;
    }
    return ParsePrimary();
  }

  ParseExprPtr ParsePrimary() {
    const Token& t = Cur();
    auto e = std::make_shared<ParseExpr>();
    e->loc = t.loc;
    switch (t.kind) {
      case TokenKind::kIntLiteral:
        e->kind = ParseExpr::Kind::kIntLit;
        e->i64 = t.i64;
        Advance();
        return e;
      case TokenKind::kDoubleLiteral:
        e->kind = ParseExpr::Kind::kDoubleLit;
        e->f64 = t.f64;
        Advance();
        return e;
      case TokenKind::kStringLiteral:
        e->kind = ParseExpr::Kind::kStringLit;
        e->str = t.text;
        Advance();
        return e;
      case TokenKind::kQuestion:
        e->kind = ParseExpr::Kind::kParam;
        e->param_ordinal = num_params_++;
        param_locs_.push_back(t.loc);
        Advance();
        return e;
      case TokenKind::kLParen: {
        Advance();
        ParseExprPtr inner = ParseExprTop();
        Expect(TokenKind::kRParen, "')'");
        return inner;
      }
      case TokenKind::kIdentifier: {
        if (IsReserved(t)) {
          Fail("unexpected keyword '" + t.text + "'", t);
          return e;
        }
        const std::string lowered = ToLowerAscii(t.text);
        if (IsAggregateName(lowered) && Peek().kind == TokenKind::kLParen) {
          e->kind = ParseExpr::Kind::kCall;
          e->name = lowered;
          Advance();  // name
          Advance();  // (
          if (Cur().kind == TokenKind::kStar) {
            e->star_arg = true;
            Advance();
          } else {
            e->children.push_back(ParseExprTop());
          }
          Expect(TokenKind::kRParen, "')'");
          return e;
        }
        return ParseColumnRef();
      }
      default:
        Fail("expected an expression, got '" +
                 (t.kind == TokenKind::kEnd ? std::string("end of input")
                                            : t.text) +
             "'",
             t);
        return e;
    }
  }

  /// `[qualifier.]name` — a bare column reference.
  ParseExprPtr ParseColumnRef() {
    auto e = std::make_shared<ParseExpr>();
    e->kind = ParseExpr::Kind::kColumn;
    e->loc = Cur().loc;
    e->name = ExpectIdentifier("column name");
    if (error_.ok() && Cur().kind == TokenKind::kDot) {
      Advance();
      e->qualifier = std::move(e->name);
      e->name = ExpectIdentifier("column name");
    }
    return e;
  }

  /// ORDER BY key: a column ref, an ordinal, or an aggregate call (which
  /// the binder matches against the select list).
  ParseExprPtr ParseOrderKey() {
    const Token& t = Cur();
    if (t.kind == TokenKind::kIntLiteral) {
      auto e = std::make_shared<ParseExpr>();
      e->kind = ParseExpr::Kind::kIntLit;
      e->i64 = t.i64;
      e->loc = t.loc;
      Advance();
      return e;
    }
    if (t.kind == TokenKind::kIdentifier && IsAggregateName(ToLowerAscii(t.text)) &&
        Peek().kind == TokenKind::kLParen) {
      return ParsePrimary();
    }
    return ParseColumnRef();
  }

  // -------------------------------------------------------------- helpers

  TableClause ParseTableClause() {
    TableClause clause;
    clause.loc = Cur().loc;
    clause.table = ExpectTableName();
    if (!error_.ok()) return clause;
    if (Cur().Is("as")) {
      Advance();
      clause.alias = ExpectIdentifier("alias");
    } else if (Cur().kind == TokenKind::kIdentifier && !IsReserved(Cur())) {
      clause.alias = Cur().text;
      Advance();
    }
    return clause;
  }

  ParseExprPtr MakeBinary(ParseExpr::Op op, ParseExprPtr l, ParseExprPtr r,
                          SourceLoc loc) {
    auto e = std::make_shared<ParseExpr>();
    e->kind = ParseExpr::Kind::kBinary;
    e->op = op;
    e->loc = loc;
    e->children.push_back(std::move(l));
    e->children.push_back(std::move(r));
    return e;
  }

  const Token& Cur() const { return tokens_[pos_]; }
  const Token& Peek() const {
    return tokens_[std::min(pos_ + 1, tokens_.size() - 1)];
  }
  void Advance() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }

  bool Accept(TokenKind kind) {
    if (!error_.ok() || Cur().kind != kind) return false;
    Advance();
    return true;
  }

  void Expect(TokenKind kind, const char* what) {
    if (!error_.ok()) return;
    if (Cur().kind != kind) {
      Fail(std::string("expected ") + what + ", got '" +
               (Cur().kind == TokenKind::kEnd ? "end of input" : Cur().text) +
               "'",
           Cur());
      return;
    }
    Advance();
  }

  void ExpectKeyword(const char* kw) {
    if (!error_.ok()) return;
    if (!Cur().Is(kw)) {
      std::string upper = kw;
      std::transform(upper.begin(), upper.end(), upper.begin(),
                     [](unsigned char c) {
                       return static_cast<char>(std::toupper(c));
                     });
      Fail("expected " + upper + ", got '" +
               (Cur().kind == TokenKind::kEnd ? "end of input" : Cur().text) +
               "'",
           Cur());
      return;
    }
    Advance();
  }

  /// `[schema.]name` — a possibly schema-qualified table name, returned
  /// in dotted form (e.g. "pi_stats.queries"). The only schema today is
  /// the read-only pi_stats system schema; the binder rejects unknown
  /// qualified names.
  std::string ExpectTableName() {
    std::string name = ExpectIdentifier("table name");
    if (error_.ok() && Cur().kind == TokenKind::kDot) {
      Advance();
      name += "." + ExpectIdentifier("table name");
    }
    return name;
  }

  std::string ExpectIdentifier(const char* what) {
    if (!error_.ok()) return "";
    if (Cur().kind != TokenKind::kIdentifier || IsReserved(Cur())) {
      Fail(std::string("expected ") + what + ", got '" +
               (Cur().kind == TokenKind::kEnd ? "end of input" : Cur().text) +
               "'",
           Cur());
      return "";
    }
    std::string name = Cur().text;
    Advance();
    return name;
  }

  void Fail(const std::string& msg, const Token& at) {
    if (error_.ok()) {
      error_ = Status::InvalidArgument("syntax error at " + at.loc.ToString() +
                                       ": " + msg);
    }
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  std::size_t num_params_ = 0;
  std::vector<SourceLoc> param_locs_;
  Status error_ = Status::OK();
};

}  // namespace

Result<Statement> ParseStatement(std::string_view sql) {
  Result<std::vector<Token>> tokens = Tokenize(sql);
  if (!tokens.ok()) return tokens.status();
  return Parser(std::move(tokens).value()).Parse();
}

}  // namespace patchindex::sql
