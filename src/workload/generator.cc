#include "workload/generator.h"

#include <algorithm>
#include <vector>

#include "common/check.h"
#include "common/rng.h"

namespace patchindex {

namespace {

Schema GeneratorSchema() {
  return Schema({{"key", ColumnType::kInt64}, {"val", ColumnType::kInt64}});
}

/// Random subset of size k from [0, n): Floyd's algorithm would do, but a
/// simple shuffle-prefix is fine at our scale and keeps determinism
/// obvious.
std::vector<std::uint64_t> RandomPositions(std::uint64_t n, std::uint64_t k,
                                           Rng& rng) {
  std::vector<std::uint64_t> all(n);
  for (std::uint64_t i = 0; i < n; ++i) all[i] = i;
  std::shuffle(all.begin(), all.end(), rng.engine());
  all.resize(k);
  std::sort(all.begin(), all.end());
  return all;
}

std::vector<std::int64_t> NucValues(const GeneratorConfig& config) {
  const std::uint64_t n = config.num_rows;
  const auto num_exceptions =
      static_cast<std::uint64_t>(config.exception_rate * n);
  Rng rng(config.seed);
  std::vector<std::int64_t> values(n);
  // Unique values live far above the exception domain [0, k).
  constexpr std::int64_t kUniqueBase = 1'000'000'000;
  for (std::uint64_t i = 0; i < n; ++i) {
    values[i] = kUniqueBase + static_cast<std::int64_t>(i);
  }
  if (num_exceptions > 0) {
    const std::uint64_t domain =
        std::max<std::uint64_t>(1, config.num_exception_values);
    const auto positions = RandomPositions(n, num_exceptions, rng);
    // Equally distributed into `domain` values (paper §6.2), so every
    // exception value is duplicated (assuming num_exceptions >= 2*domain).
    for (std::uint64_t j = 0; j < positions.size(); ++j) {
      values[positions[j]] = static_cast<std::int64_t>(j % domain);
    }
  }
  return values;
}

std::vector<std::int64_t> NscValues(const GeneratorConfig& config) {
  const std::uint64_t n = config.num_rows;
  const auto num_exceptions =
      static_cast<std::uint64_t>(config.exception_rate * n);
  Rng rng(config.seed + 1);
  std::vector<std::int64_t> values(n);
  // Non-exception rows form an ascending sequence with gaps; exceptions
  // hold random values anywhere in the domain.
  for (std::uint64_t i = 0; i < n; ++i) {
    values[i] = static_cast<std::int64_t>(i * 2);
  }
  if (num_exceptions > 0) {
    const auto positions = RandomPositions(n, num_exceptions, rng);
    for (std::uint64_t pos : positions) {
      values[pos] = static_cast<std::int64_t>(rng.Uniform(0, 2 * n));
    }
  }
  return values;
}

Table TableFromValues(const std::vector<std::int64_t>& values) {
  Table t(GeneratorSchema());
  for (std::size_t i = 0; i < values.size(); ++i) {
    t.AppendRow(Row{{Value(static_cast<std::int64_t>(i)), Value(values[i])}});
  }
  return t;
}

std::unique_ptr<PartitionedTable> Partitioned(
    const std::vector<std::int64_t>& values, std::size_t partitions) {
  auto pt = std::make_unique<PartitionedTable>(GeneratorSchema(), partitions);
  const std::size_t n = values.size();
  const std::size_t per = (n + partitions - 1) / partitions;
  for (std::size_t i = 0; i < n; ++i) {
    pt->partition(std::min(i / per, partitions - 1))
        .AppendRow(
            Row{{Value(static_cast<std::int64_t>(i)), Value(values[i])}});
  }
  return pt;
}

}  // namespace

Table GenerateNucTable(const GeneratorConfig& config) {
  return TableFromValues(NucValues(config));
}

Table GenerateNscTable(const GeneratorConfig& config) {
  return TableFromValues(NscValues(config));
}

std::unique_ptr<PartitionedTable> GenerateNucPartitioned(
    const GeneratorConfig& config, std::size_t partitions) {
  return Partitioned(NucValues(config), partitions);
}

std::unique_ptr<PartitionedTable> GenerateNscPartitioned(
    const GeneratorConfig& config, std::size_t partitions) {
  return Partitioned(NscValues(config), partitions);
}

Row MakeGeneratorRow(std::int64_t key, std::int64_t value) {
  return Row{{Value(key), Value(value)}};
}

}  // namespace patchindex
