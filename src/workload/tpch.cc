#include "workload/tpch.h"

#include <algorithm>
#include <set>
#include <string>

#include "common/check.h"
#include "common/rng.h"

namespace patchindex {

namespace {

constexpr std::int64_t kDaysInRange = 2400;  // ~1992..1998
constexpr std::int64_t kQ3Date = 1100;
constexpr std::int64_t kQ7DateLo = 1460;
constexpr std::int64_t kQ7DateHi = 2190;
constexpr std::int64_t kQ12Date = 1460;

const char* kSegments[] = {"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY",
                           "HOUSEHOLD"};
const char* kShipModes[] = {"REG AIR", "AIR", "RAIL", "SHIP",
                            "TRUCK",   "MAIL", "FOB"};
const char* kNations[] = {"ALGERIA", "ARGENTINA", "BRAZIL", "CANADA",
                          "EGYPT",   "ETHIOPIA",  "FRANCE", "GERMANY",
                          "INDIA",   "INDONESIA", "IRAN",   "IRAQ",
                          "JAPAN",   "JORDAN",    "KENYA",  "MOROCCO",
                          "MOZAMBIQUE", "PERU",   "CHINA",  "ROMANIA",
                          "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM",
                          "UNITED STATES"};

Schema NationSchema() {
  return Schema({{"n_nationkey", ColumnType::kInt64},
                 {"n_name", ColumnType::kString}});
}
Schema CustomerSchema() {
  return Schema({{"c_custkey", ColumnType::kInt64},
                 {"c_mktsegment", ColumnType::kString},
                 {"c_nationkey", ColumnType::kInt64}});
}
Schema SupplierSchema() {
  return Schema({{"s_suppkey", ColumnType::kInt64},
                 {"s_nationkey", ColumnType::kInt64}});
}
Schema OrdersSchema() {
  return Schema({{"o_orderkey", ColumnType::kInt64},
                 {"o_custkey", ColumnType::kInt64},
                 {"o_orderdate", ColumnType::kInt64},
                 {"o_shippriority", ColumnType::kInt64}});
}
Schema LineitemSchema() {
  return Schema({{"l_orderkey", ColumnType::kInt64},
                 {"l_suppkey", ColumnType::kInt64},
                 {"l_extendedprice", ColumnType::kDouble},
                 {"l_discount", ColumnType::kDouble},
                 {"l_shipdate", ColumnType::kInt64},
                 {"l_commitdate", ColumnType::kInt64},
                 {"l_receiptdate", ColumnType::kInt64},
                 {"l_shipmode", ColumnType::kString}});
}

Row MakeLineitemRow(std::int64_t orderkey, std::int64_t orderdate,
                    std::uint64_t num_suppliers, Rng& rng) {
  const auto suppkey =
      static_cast<std::int64_t>(rng.Uniform(0, num_suppliers - 1));
  const double price = 900.0 + static_cast<double>(rng.Uniform(0, 99000)) / 1.0;
  const double discount = static_cast<double>(rng.Uniform(0, 10)) / 100.0;
  const std::int64_t shipdate =
      orderdate + static_cast<std::int64_t>(rng.Uniform(1, 121));
  const std::int64_t commitdate =
      orderdate + static_cast<std::int64_t>(rng.Uniform(30, 90));
  const std::int64_t receiptdate =
      shipdate + static_cast<std::int64_t>(rng.Uniform(1, 30));
  const char* mode = kShipModes[rng.Uniform(0, 6)];
  return Row{{Value(orderkey), Value(suppkey), Value(price), Value(discount),
              Value(shipdate), Value(commitdate), Value(receiptdate),
              Value(mode)}};
}

}  // namespace

TpchDatabase GenerateTpch(const TpchConfig& config) {
  Rng rng(config.seed);
  TpchDatabase db;
  db.nation = std::make_unique<Table>(NationSchema());
  db.customer = std::make_unique<Table>(CustomerSchema());
  db.supplier = std::make_unique<Table>(SupplierSchema());
  db.orders = std::make_unique<Table>(OrdersSchema());
  db.lineitem = std::make_unique<Table>(LineitemSchema());

  for (std::int64_t n = 0; n < 25; ++n) {
    db.nation->AppendRow(Row{{Value(n), Value(kNations[n])}});
  }
  const std::uint64_t num_customers =
      std::max<std::uint64_t>(10, config.num_orders / 10);
  for (std::uint64_t c = 0; c < num_customers; ++c) {
    db.customer->AppendRow(
        Row{{Value(static_cast<std::int64_t>(c)),
             Value(kSegments[rng.Uniform(0, 4)]),
             Value(static_cast<std::int64_t>(rng.Uniform(0, 24)))}});
  }
  const std::uint64_t num_suppliers =
      std::max<std::uint64_t>(10, config.num_orders / 100);
  for (std::uint64_t s = 0; s < num_suppliers; ++s) {
    db.supplier->AppendRow(
        Row{{Value(static_cast<std::int64_t>(s)),
             Value(static_cast<std::int64_t>(rng.Uniform(0, 24)))}});
  }
  // Orders sorted by o_orderkey (generation order == storage order);
  // lineitem clustered by l_orderkey, as dbgen produces it.
  for (std::uint64_t o = 0; o < config.num_orders; ++o) {
    const auto orderkey = static_cast<std::int64_t>(o);
    const auto custkey =
        static_cast<std::int64_t>(rng.Uniform(0, num_customers - 1));
    const auto orderdate =
        static_cast<std::int64_t>(rng.Uniform(0, kDaysInRange - 150));
    const auto priority = static_cast<std::int64_t>(rng.Uniform(0, 1));
    db.orders->AppendRow(
        Row{{Value(orderkey), Value(custkey), Value(orderdate),
             Value(priority)}});
    const std::uint64_t lines = rng.Uniform(1, 7);
    for (std::uint64_t l = 0; l < lines; ++l) {
      db.lineitem->AppendRow(
          MakeLineitemRow(orderkey, orderdate, num_suppliers, rng));
    }
    db.max_orderkey = orderkey;
  }
  return db;
}

void PerturbLineitemOrder(Table* lineitem, double fraction,
                          std::uint64_t seed) {
  if (fraction <= 0.0) return;
  Rng rng(seed);
  const std::uint64_t n = lineitem->num_rows();
  const auto k = static_cast<std::uint64_t>(fraction * n);
  if (k < 2) return;
  // Choose k distinct positions and cyclically shift the rows among them,
  // guaranteeing every chosen row moves.
  std::vector<std::uint64_t> all(n);
  for (std::uint64_t i = 0; i < n; ++i) all[i] = i;
  std::shuffle(all.begin(), all.end(), rng.engine());
  all.resize(k);
  std::sort(all.begin(), all.end());
  for (std::size_t c = 0; c < lineitem->schema().num_fields(); ++c) {
    Column& col = lineitem->column(c);
    Value carry = col.Get(all[k - 1]);
    for (std::uint64_t j = 0; j < k; ++j) {
      Value tmp = col.Get(all[j]);
      col.Set(all[j], carry);
      carry = std::move(tmp);
    }
  }
}

RefreshSet MakeRf1(const TpchDatabase& db, std::uint64_t num_new_orders,
                   std::uint64_t seed) {
  Rng rng(seed);
  RefreshSet rf;
  const std::uint64_t num_customers = db.customer->num_rows();
  const std::uint64_t num_suppliers = db.supplier->num_rows();
  std::int64_t key = db.max_orderkey;
  for (std::uint64_t o = 0; o < num_new_orders; ++o) {
    ++key;
    const auto custkey =
        static_cast<std::int64_t>(rng.Uniform(0, num_customers - 1));
    const auto orderdate =
        static_cast<std::int64_t>(rng.Uniform(0, kDaysInRange - 150));
    rf.orders_rows.push_back(Row{{Value(key), Value(custkey),
                                  Value(orderdate),
                                  Value(static_cast<std::int64_t>(
                                      rng.Uniform(0, 1)))}});
    const std::uint64_t lines = rng.Uniform(1, 7);
    for (std::uint64_t l = 0; l < lines; ++l) {
      rf.lineitem_rows.push_back(
          MakeLineitemRow(key, orderdate, num_suppliers, rng));
    }
  }
  return rf;
}

DeleteSet MakeRf2(const TpchDatabase& db, std::uint64_t num_del_orders,
                  std::uint64_t seed) {
  Rng rng(seed);
  std::set<std::int64_t> keys;
  while (keys.size() < num_del_orders) {
    keys.insert(static_cast<std::int64_t>(
        rng.Uniform(0, static_cast<std::uint64_t>(db.max_orderkey))));
  }
  DeleteSet del;
  const auto& okeys = db.orders->column(0).i64_data();
  for (std::size_t i = 0; i < okeys.size(); ++i) {
    if (keys.count(okeys[i])) del.orders_rows.push_back(i);
  }
  const auto& lkeys = db.lineitem->column(0).i64_data();
  for (std::size_t i = 0; i < lkeys.size(); ++i) {
    if (keys.count(lkeys[i])) del.lineitem_rows.push_back(i);
  }
  return del;
}

LogicalPtr BuildQ3(const TpchDatabase& db) {
  // select l_orderkey, o_orderdate, o_shippriority,
  //        sum(l_extendedprice * (1 - l_discount)) as revenue
  // from customer, orders, lineitem
  // where c_mktsegment = 'BUILDING' and c_custkey = o_custkey
  //   and l_orderkey = o_orderkey and o_orderdate < D and l_shipdate > D
  // group by l_orderkey, o_orderdate, o_shippriority
  auto cust = LSelect(LScan(*db.customer, {0, 1}),
                      Eq(Col(1), ConstString("BUILDING")), 0.2);
  auto ord = LSelect(LScan(*db.orders, {0, 1, 2, 3}, /*sorted_col=*/0),
                     Lt(Col(2), ConstInt(kQ3Date)), 0.45);
  // X: customer join orders on custkey; sorted on o_orderkey (output 2).
  auto x = LJoin(cust, ord, /*left_key=*/0, /*right_key=*/1);
  auto li = LSelect(LScan(*db.lineitem, {0, 2, 3, 4}),
                    Gt(Col(3), ConstInt(kQ3Date)), 0.5);
  // The PatchIndex-eligible edge: X (sorted on o_orderkey) join lineitem.
  auto j = LJoin(x, li, /*left_key=*/2, /*right_key=*/0);
  // Output: [c_custkey, c_mktsegment, o_orderkey, o_custkey, o_orderdate,
  //          o_shippriority, l_orderkey, l_extendedprice, l_discount,
  //          l_shipdate]
  auto proj = LProject(
      j, {Col(6), Col(4), Col(5),
          Mul(Col(7), Sub(ConstDouble(1.0), Col(8)))});
  return LAggregate(proj, {0, 1, 2}, {{AggOp::kSum, 3}});
}

LogicalPtr BuildQ7(const TpchDatabase& db) {
  // Shipping volume between two nations by year (structurally faithful
  // simplification of Q7).
  const std::vector<Value> nations = {Value("FRANCE"), Value("GERMANY")};
  auto supp_nation =
      LJoin(LSelect(LScan(*db.nation, {0, 1}), InList(Col(1), nations), 0.08),
            LScan(*db.supplier, {0, 1}), 0, 1);
  // supp_nation: [n_nationkey, n_name, s_suppkey, s_nationkey]
  auto cust_nation =
      LJoin(LSelect(LScan(*db.nation, {0, 1}), InList(Col(1), nations), 0.08),
            LScan(*db.customer, {0, 2}), 0, 1);
  // cust_nation: [n_nationkey, n_name, c_custkey, c_nationkey]
  auto x = LJoin(cust_nation, LScan(*db.orders, {0, 1}, /*sorted_col=*/0),
                 /*left_key=*/2, /*right_key=*/1);
  // x: [.., c_custkey(2), .., o_orderkey(4), o_custkey(5)], sorted on 4.
  auto li = LSelect(LScan(*db.lineitem, {0, 1, 2, 3, 4}),
                    And(Ge(Col(4), ConstInt(kQ7DateLo)),
                        Le(Col(4), ConstInt(kQ7DateHi))), 0.3);
  // PatchIndex-eligible edge.
  auto j = LJoin(x, li, /*left_key=*/4, /*right_key=*/0);
  // j: x(6 cols) + [l_orderkey(6), l_suppkey(7), l_extendedprice(8),
  //                 l_discount(9), l_shipdate(10)]
  auto j2 = LJoin(supp_nation, j, /*left_key=*/2, /*right_key=*/7);
  // j2: supp_nation(4) + j(11): supp name 1, cust name 5, shipdate 14,
  //     price 12, discount 13.
  auto sel = LSelect(j2, Ne(Col(1), Col(5)), 0.5);
  auto proj = LProject(
      sel, {Col(1), Col(5), Div(Col(14), ConstInt(365)),
            Mul(Col(12), Sub(ConstDouble(1.0), Col(13)))});
  return LAggregate(proj, {0, 1, 2}, {{AggOp::kSum, 3}});
}

LogicalPtr BuildQ12(const TpchDatabase& db) {
  // select l_shipmode, sum(high_priority), count(*) from orders, lineitem
  // where o_orderkey = l_orderkey and l_shipmode in ('MAIL','SHIP')
  //   and l_commitdate < l_receiptdate and l_shipdate < l_commitdate
  //   and l_receiptdate in [D, D+365)
  // group by l_shipmode
  auto li_modes = LSelect(
      LScan(*db.lineitem, {0, 4, 5, 6, 7}),
      InList(Col(4), {Value("MAIL"), Value("SHIP")}), 0.29);
  // [l_orderkey, l_shipdate(1), l_commitdate(2), l_receiptdate(3),
  //  l_shipmode(4)]
  auto li = LSelect(
      li_modes,
      And(And(Lt(Col(2), Col(3)), Lt(Col(1), Col(2))),
          And(Ge(Col(3), ConstInt(kQ12Date)),
              Lt(Col(3), ConstInt(kQ12Date + 365)))),
      0.05);
  auto j = LJoin(LScan(*db.orders, {0, 3}, /*sorted_col=*/0), li,
                 /*left_key=*/0, /*right_key=*/0);
  // j: [o_orderkey, o_shippriority, l cols...]; shipmode at 2+4=6.
  auto proj = LProject(j, {Col(6), Col(1)});
  return LAggregate(proj, {0}, {{AggOp::kSum, 1}, {AggOp::kCount}});
}

}  // namespace patchindex
