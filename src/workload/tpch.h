#ifndef PATCHINDEX_WORKLOAD_TPCH_H_
#define PATCHINDEX_WORKLOAD_TPCH_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "optimizer/plan.h"
#include "storage/table.h"

namespace patchindex {

/// Scaled-down, deterministic TPC-H subset (paper §6.3): the five tables
/// reachable from the lineitem-orders join of Q3/Q7/Q12 plus the RF1/RF2
/// refresh sets. Dates are INT64 days since 1992-01-01; prices are
/// DOUBLE. `orders` is generated sorted by o_orderkey (its storage
/// order), and `lineitem` ordered by l_orderkey — the order the paper
/// perturbs to introduce exceptions.
///
/// Column indexes (keep in sync with the Make* functions):
///   nation:   0 n_nationkey, 1 n_name
///   customer: 0 c_custkey, 1 c_mktsegment, 2 c_nationkey
///   supplier: 0 s_suppkey, 1 s_nationkey
///   orders:   0 o_orderkey, 1 o_custkey, 2 o_orderdate, 3 o_shippriority
///   lineitem: 0 l_orderkey, 1 l_suppkey, 2 l_extendedprice, 3 l_discount,
///             4 l_shipdate, 5 l_commitdate, 6 l_receiptdate, 7 l_shipmode
struct TpchConfig {
  std::uint64_t num_orders = 10'000;
  std::uint64_t seed = 7;
};

struct TpchDatabase {
  std::unique_ptr<Table> nation;
  std::unique_ptr<Table> customer;
  std::unique_ptr<Table> supplier;
  std::unique_ptr<Table> orders;
  std::unique_ptr<Table> lineitem;

  std::int64_t max_orderkey = 0;
};

TpchDatabase GenerateTpch(const TpchConfig& config);

/// Displaces `fraction` of the lineitem rows to random positions
/// (shuffling them among each other), introducing exceptions to the
/// l_orderkey sorting constraint — the paper's 0%/5%/10% datasets.
void PerturbLineitemOrder(Table* lineitem, double fraction,
                          std::uint64_t seed);

/// TPC-H refresh function 1: new orders (keys ascending beyond the
/// current maximum) with 1..7 lineitems each.
struct RefreshSet {
  std::vector<Row> orders_rows;
  std::vector<Row> lineitem_rows;
};
RefreshSet MakeRf1(const TpchDatabase& db, std::uint64_t num_new_orders,
                   std::uint64_t seed);

/// TPC-H refresh function 2: positions of the orders/lineitem rows
/// belonging to `num_del_orders` randomly sampled order keys.
struct DeleteSet {
  std::vector<RowId> orders_rows;
  std::vector<RowId> lineitem_rows;
};
DeleteSet MakeRf2(const TpchDatabase& db, std::uint64_t num_del_orders,
                  std::uint64_t seed);

/// Logical plans for the evaluated query subset. All three contain the
/// lineitem-orders join; the subtree "X" feeding it is sorted on
/// o_orderkey, making the PatchIndex join rewrite applicable.
LogicalPtr BuildQ3(const TpchDatabase& db);
LogicalPtr BuildQ7(const TpchDatabase& db);
LogicalPtr BuildQ12(const TpchDatabase& db);

}  // namespace patchindex

#endif  // PATCHINDEX_WORKLOAD_TPCH_H_
