#ifndef PATCHINDEX_WORKLOAD_GENERATOR_H_
#define PATCHINDEX_WORKLOAD_GENERATOR_H_

#include <cstdint>
#include <memory>

#include "storage/table.h"

namespace patchindex {

/// Reimplementation of the paper's microbenchmark data generator [1]
/// (§6.2): a table of (key, value) where `key` is unique 0..n-1 and
/// `value` follows the requested constraint with a controlled exception
/// rate. Datasets are deterministic in the seed ("generated once").
struct GeneratorConfig {
  std::uint64_t num_rows = 1'000'000;
  double exception_rate = 0.1;

  /// NUC: exceptions are equally distributed into this many distinct
  /// values (the paper uses 100K values for 1B rows; scaled default keeps
  /// a similar duplicates-per-value ratio).
  std::uint64_t num_exception_values = 100;

  std::uint64_t seed = 42;
};

/// Nearly-unique dataset: exceptions drawn from a small value domain
/// (guaranteed duplicated), remaining values unique and disjoint from the
/// exception domain. Exceptions are randomly placed.
Table GenerateNucTable(const GeneratorConfig& config);

/// Nearly-sorted dataset: the non-exception rows form an ascending
/// sequence; exceptions hold random values at random positions.
Table GenerateNscTable(const GeneratorConfig& config);

/// Key-partitioned variants (a separate PatchIndex is created per
/// partition; §3.2). Rows are range-partitioned on the key column into
/// nearly equal parts.
std::unique_ptr<PartitionedTable> GenerateNucPartitioned(
    const GeneratorConfig& config, std::size_t partitions);
std::unique_ptr<PartitionedTable> GenerateNscPartitioned(
    const GeneratorConfig& config, std::size_t partitions);

/// Rows to insert/modify with for update experiments: values drawn like
/// the dataset's exceptions with probability `collision_rate`, unique
/// fresh values otherwise.
Row MakeGeneratorRow(std::int64_t key, std::int64_t value);

}  // namespace patchindex

#endif  // PATCHINDEX_WORKLOAD_GENERATOR_H_
