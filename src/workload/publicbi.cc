#include "workload/publicbi.h"

#include <algorithm>

#include "common/check.h"
#include "common/rng.h"
#include "patchindex/discovery.h"

namespace patchindex {

std::vector<PublicBiDataset> Figure1Datasets() {
  // Per-column match fractions read off the paper's Figure 1 histogram.
  std::vector<PublicBiDataset> out;

  // USCensus_1: >500 columns, 15 of them nearly sorted; nine match with
  // over 60% of their tuples.
  PublicBiDataset census;
  census.name = "USCensus_1";
  const double census_fracs[] = {0.12, 0.25, 0.33, 0.41, 0.48, 0.55,
                                 0.62, 0.68, 0.72, 0.78, 0.84, 0.88,
                                 0.93, 0.97, 1.00};
  int i = 0;
  for (double f : census_fracs) {
    census.columns.push_back({"nsc_col_" + std::to_string(i++),
                              ConstraintKind::kNearlySorted, f});
  }
  out.push_back(std::move(census));

  // IGlocations2_1: few columns, a relatively large share nearly unique,
  // many of them nearly perfectly.
  PublicBiDataset ig;
  ig.name = "IGlocations2_1";
  const double ig_fracs[] = {0.55, 0.91, 0.96, 0.99, 1.00};
  i = 0;
  for (double f : ig_fracs) {
    ig.columns.push_back({"nuc_col_" + std::to_string(i++),
                          ConstraintKind::kNearlyUnique, f});
  }
  out.push_back(std::move(ig));

  // IUBlibrary_1: similar shape, nearly perfectly unique columns.
  PublicBiDataset iub;
  iub.name = "IUBlibrary_1";
  const double iub_fracs[] = {0.35, 0.72, 0.93, 0.97, 0.99, 0.99, 1.00};
  i = 0;
  for (double f : iub_fracs) {
    iub.columns.push_back({"nuc_col_" + std::to_string(i++),
                           ConstraintKind::kNearlyUnique, f});
  }
  out.push_back(std::move(iub));
  return out;
}

Column SynthesizeColumn(const PublicBiColumnSpec& spec,
                        std::uint64_t num_rows, std::uint64_t seed) {
  Rng rng(seed);
  Column col(ColumnType::kInt64);
  col.Reserve(num_rows);
  const double e = 1.0 - spec.match_fraction;
  if (spec.constraint == ConstraintKind::kNearlySorted) {
    for (std::uint64_t i = 0; i < num_rows; ++i) {
      if (rng.NextBool(e)) {
        col.AppendInt64(static_cast<std::int64_t>(rng.Uniform(0, 2 * num_rows)));
      } else {
        col.AppendInt64(static_cast<std::int64_t>(i * 2));
      }
    }
  } else {
    // Duplicated values drawn from a small domain; unique values from a
    // disjoint high range.
    const std::uint64_t dup_domain =
        std::max<std::uint64_t>(1, static_cast<std::uint64_t>(e * num_rows / 8));
    std::uint64_t dup_count = 0;
    for (std::uint64_t i = 0; i < num_rows; ++i) {
      if (rng.NextBool(e)) {
        col.AppendInt64(static_cast<std::int64_t>(dup_count++ % dup_domain));
      } else {
        col.AppendInt64(static_cast<std::int64_t>(1'000'000'000 + i));
      }
    }
  }
  return col;
}

double MeasureMatchFraction(const PublicBiColumnSpec& spec,
                            std::uint64_t num_rows, std::uint64_t seed) {
  Column col = SynthesizeColumn(spec, num_rows, seed);
  if (col.size() == 0) return 1.0;
  std::size_t patches = 0;
  if (spec.constraint == ConstraintKind::kNearlyUnique) {
    patches = DiscoverNucPatches(col).size();
  } else {
    patches = DiscoverNscPatches(col).patches.size();
  }
  return 1.0 - static_cast<double>(patches) / static_cast<double>(col.size());
}

std::vector<int> MatchHistogram(const PublicBiDataset& dataset,
                                std::uint64_t num_rows, std::uint64_t seed) {
  std::vector<int> buckets(10, 0);
  std::uint64_t s = seed;
  for (const auto& spec : dataset.columns) {
    const double f = MeasureMatchFraction(spec, num_rows, ++s);
    const int b = std::min(9, static_cast<int>(f * 10.0));
    ++buckets[b];
  }
  return buckets;
}

}  // namespace patchindex
