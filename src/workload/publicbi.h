#ifndef PATCHINDEX_WORKLOAD_PUBLICBI_H_
#define PATCHINDEX_WORKLOAD_PUBLICBI_H_

#include <cstdint>
#include <string>
#include <vector>

#include "patchindex/patch_index.h"
#include "storage/column.h"

namespace patchindex {

/// Synthetic stand-in for the PublicBI workbooks of the paper's Figure 1
/// (USCensus_1, IGlocations2_1, IUBlibrary_1). The real workbooks are
/// hundreds of GB of Tableau exports and not redistributable; what Figure
/// 1 actually shows is, per dataset, how many columns match an
/// approximate constraint at which fraction. We encode those per-column
/// match fractions (read off the published histogram) and synthesize
/// columns with the same properties, so the discovery pipeline runs
/// unchanged.
struct PublicBiColumnSpec {
  std::string name;
  ConstraintKind constraint;
  /// Target fraction of tuples satisfying the constraint (1 - exception
  /// rate).
  double match_fraction;
};

struct PublicBiDataset {
  std::string name;
  std::vector<PublicBiColumnSpec> columns;
};

/// The three datasets of Figure 1. USCensus_1 has 15 NSC columns (9 of
/// them above 60% match); the other two have NUC columns that are mostly
/// nearly-perfectly unique.
std::vector<PublicBiDataset> Figure1Datasets();

/// Synthesizes a column matching `spec` with `num_rows` rows.
Column SynthesizeColumn(const PublicBiColumnSpec& spec,
                        std::uint64_t num_rows, std::uint64_t seed);

/// Runs constraint discovery on a synthesized column and returns the
/// measured fraction of tuples matching the constraint.
double MeasureMatchFraction(const PublicBiColumnSpec& spec,
                            std::uint64_t num_rows, std::uint64_t seed);

/// Histogram over match fractions with 10%-wide buckets (the x-axis of
/// Figure 1). bucket[i] counts columns with match fraction in
/// [10*i, 10*(i+1))%, with 100% counted in the last bucket.
std::vector<int> MatchHistogram(const PublicBiDataset& dataset,
                                std::uint64_t num_rows, std::uint64_t seed);

}  // namespace patchindex

#endif  // PATCHINDEX_WORKLOAD_PUBLICBI_H_
