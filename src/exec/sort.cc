#include "exec/sort.h"

#include <algorithm>
#include <numeric>
#include <utility>

#include "common/check.h"

namespace patchindex {

SortOperator::SortOperator(OperatorPtr child, std::vector<SortKeySpec> keys)
    : child_(std::move(child)), keys_(std::move(keys)) {
  PIDX_CHECK(!keys_.empty());
}

void SortOperator::Open() {
  child_->Open();
  data_.Reset(child_->OutputTypes());
  Batch in;
  while (child_->Next(&in)) {
    for (std::size_t i = 0; i < in.num_rows(); ++i) data_.AppendRowFrom(in, i);
  }
  child_->Close();

  order_.resize(data_.num_rows());
  std::iota(order_.begin(), order_.end(), 0);
  std::sort(order_.begin(), order_.end(),
            [this](std::size_t a, std::size_t b) {
              for (const SortKeySpec& k : keys_) {
                const ColumnVector& col = data_.columns[k.column];
                int c = 0;
                switch (col.type) {
                  case ColumnType::kInt64:
                    c = col.i64[a] < col.i64[b] ? -1 : (col.i64[a] > col.i64[b]);
                    break;
                  case ColumnType::kDouble:
                    c = col.f64[a] < col.f64[b] ? -1 : (col.f64[a] > col.f64[b]);
                    break;
                  case ColumnType::kString: {
                    const int r = col.str[a].compare(col.str[b]);
                    c = r < 0 ? -1 : (r > 0 ? 1 : 0);
                    break;
                  }
                }
                if (c != 0) return k.ascending ? c < 0 : c > 0;
              }
              return false;
            });
  pos_ = 0;
}

bool SortOperator::Next(Batch* out) {
  out->Reset(OutputTypes());
  while (out->num_rows() < kBatchSize && pos_ < order_.size()) {
    out->AppendRowFrom(data_, order_[pos_++]);
  }
  return out->num_rows() > 0;
}

void SortOperator::Close() {
  data_.Clear();
  order_.clear();
}

}  // namespace patchindex
