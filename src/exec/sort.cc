#include "exec/sort.h"

#include <utility>

#include "common/check.h"
#include "exec/sort_merge.h"
#include "obs/mem_tracker.h"

namespace patchindex {

SortOperator::SortOperator(OperatorPtr child, std::vector<SortKeySpec> keys,
                           std::size_t limit)
    : child_(std::move(child)), keys_(std::move(keys)), limit_(limit) {
  PIDX_CHECK(!keys_.empty());
}

void SortOperator::Open() {
  child_->Open();
  data_.Reset(child_->OutputTypes());
  obs::OpMemory mem("Sort", mem_stats_);
  Batch in;
  while (child_->Next(&in)) {
    mem.Add(ApproxBytes(in));
    for (std::size_t i = 0; i < in.num_rows(); ++i) data_.AppendRowFrom(in, i);
  }
  child_->Close();

  mem.Add(data_.num_rows() * sizeof(std::size_t));  // the permutation
  order_ = SortedPermutation(data_, keys_, limit_);
  pos_ = 0;
}

bool SortOperator::Next(Batch* out) {
  out->Reset(OutputTypes());
  while (out->num_rows() < kBatchSize && pos_ < order_.size()) {
    out->AppendRowFrom(data_, order_[pos_++]);
  }
  return out->num_rows() > 0;
}

void SortOperator::Close() {
  data_.Clear();
  order_.clear();
}

}  // namespace patchindex
