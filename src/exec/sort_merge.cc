#include "exec/sort_merge.h"

#include <algorithm>
#include <numeric>
#include <utility>

#include "common/check.h"

namespace patchindex {

namespace {

/// Three-way compare of one cell across two column vectors of one type.
int CompareCells(const ColumnVector& ca, std::size_t ra,
                 const ColumnVector& cb, std::size_t rb) {
  PIDX_DCHECK(ca.type == cb.type);
  switch (ca.type) {
    case ColumnType::kInt64:
      return ca.i64[ra] < cb.i64[rb] ? -1 : (ca.i64[ra] > cb.i64[rb]);
    case ColumnType::kDouble:
      return ca.f64[ra] < cb.f64[rb] ? -1 : (ca.f64[ra] > cb.f64[rb]);
    case ColumnType::kString: {
      const int r = ca.str[ra].compare(cb.str[rb]);
      return r < 0 ? -1 : (r > 0 ? 1 : 0);
    }
  }
  return 0;
}

std::vector<ColumnType> BatchTypes(const Batch& batch) {
  std::vector<ColumnType> types;
  types.reserve(batch.columns.size());
  for (const ColumnVector& c : batch.columns) types.push_back(c.type);
  return types;
}

}  // namespace

bool SortedBatchRowLess(const Batch& a, std::size_t ra, const Batch& b,
                        std::size_t rb, const std::vector<SortKeySpec>& keys) {
  for (const SortKeySpec& k : keys) {
    const int c = CompareCells(a.columns[k.column], ra, b.columns[k.column], rb);
    if (c != 0) return k.ascending ? c < 0 : c > 0;
  }
  return false;
}

std::vector<std::size_t> SortedPermutation(
    const Batch& data, const std::vector<SortKeySpec>& keys,
    std::size_t limit) {
  PIDX_CHECK(!keys.empty());
  std::vector<std::size_t> order(data.num_rows());
  std::iota(order.begin(), order.end(), 0);
  const auto less = [&data, &keys](std::size_t a, std::size_t b) {
    return SortedBatchRowLess(data, a, data, b, keys);
  };
  if (limit > 0 && limit < order.size()) {
    std::partial_sort(order.begin(),
                      order.begin() + static_cast<std::ptrdiff_t>(limit),
                      order.end(), less);
    order.resize(limit);
  } else {
    std::sort(order.begin(), order.end(), less);
  }
  return order;
}

void SortBatchRows(Batch* data, const std::vector<SortKeySpec>& keys,
                   std::size_t limit) {
  const std::vector<std::size_t> order = SortedPermutation(*data, keys, limit);
  Batch sorted;
  sorted.Reset(BatchTypes(*data));
  for (std::size_t idx : order) sorted.AppendRowFrom(*data, idx);
  *data = std::move(sorted);
}

Batch MergeSortedBatches(std::vector<Batch> parts,
                         const std::vector<SortKeySpec>& keys,
                         std::size_t limit) {
  PIDX_CHECK(!parts.empty());
  Batch out;
  out.Reset(BatchTypes(parts[0]));

  std::vector<std::size_t> pos(parts.size(), 0);
  // Min-heap of part indices ordered by each part's current row. pos[i]
  // only changes while i is popped off the heap, so the comparator stays
  // consistent across sift operations.
  const auto greater = [&parts, &pos, &keys](std::size_t x, std::size_t y) {
    return SortedBatchRowLess(parts[y], pos[y], parts[x], pos[x], keys);
  };
  std::vector<std::size_t> heap;
  std::size_t total = 0;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    total += parts[i].num_rows();
    if (parts[i].num_rows() > 0) heap.push_back(i);
  }
  std::make_heap(heap.begin(), heap.end(), greater);
  out.row_ids.reserve(limit > 0 ? std::min(limit, total) : total);

  while (!heap.empty() && (limit == 0 || out.num_rows() < limit)) {
    std::pop_heap(heap.begin(), heap.end(), greater);
    const std::size_t i = heap.back();
    out.AppendRowFrom(parts[i], pos[i]);
    if (++pos[i] < parts[i].num_rows()) {
      std::push_heap(heap.begin(), heap.end(), greater);
    } else {
      heap.pop_back();
    }
  }
  return out;
}

}  // namespace patchindex
