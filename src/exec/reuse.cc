#include "exec/reuse.h"

#include <utility>

#include "common/check.h"

namespace patchindex {

ReuseCacheOperator::ReuseCacheOperator(OperatorPtr child, ReuseBufferPtr buffer)
    : child_(std::move(child)), buffer_(std::move(buffer)) {
  PIDX_CHECK(buffer_ != nullptr);
}

void ReuseCacheOperator::Open() {
  child_->Open();
  buffer_->data.Reset(child_->OutputTypes());
  buffer_->complete = false;
}

bool ReuseCacheOperator::Next(Batch* out) {
  if (!child_->Next(out)) {
    buffer_->complete = true;
    return false;
  }
  for (std::size_t i = 0; i < out->num_rows(); ++i) {
    buffer_->data.AppendRowFrom(*out, i);
  }
  return true;
}

void ReuseCacheOperator::Close() {
  if (!buffer_->complete) {
    Batch rest;
    while (child_->Next(&rest)) {
      for (std::size_t i = 0; i < rest.num_rows(); ++i) {
        buffer_->data.AppendRowFrom(rest, i);
      }
    }
    buffer_->complete = true;
  }
  child_->Close();
}

ReuseLoadOperator::ReuseLoadOperator(ReuseBufferPtr buffer,
                                     std::vector<ColumnType> types)
    : buffer_(std::move(buffer)), types_(std::move(types)) {
  PIDX_CHECK(buffer_ != nullptr);
}

void ReuseLoadOperator::Open() {
  PIDX_CHECK_MSG(buffer_->complete,
                 "ReuseLoad opened before its ReuseCache was drained");
  pos_ = 0;
}

bool ReuseLoadOperator::Next(Batch* out) {
  out->Reset(types_);
  const Batch& src = buffer_->data;
  while (out->num_rows() < kBatchSize && pos_ < src.num_rows()) {
    out->AppendRowFrom(src, pos_++);
  }
  return out->num_rows() > 0;
}

}  // namespace patchindex
