#include "exec/merge_join.h"

#include <utility>

#include "common/check.h"

namespace patchindex {

MergeJoinOperator::MergeJoinOperator(OperatorPtr left, OperatorPtr right,
                                     std::size_t left_key,
                                     std::size_t right_key)
    : left_(std::move(left)),
      right_(std::move(right)),
      left_key_(left_key),
      right_key_(right_key) {
  PIDX_CHECK(left_->OutputTypes().at(left_key_) == ColumnType::kInt64);
  PIDX_CHECK(right_->OutputTypes().at(right_key_) == ColumnType::kInt64);
}

std::vector<ColumnType> MergeJoinOperator::OutputTypes() const {
  std::vector<ColumnType> types = left_->OutputTypes();
  for (ColumnType t : right_->OutputTypes()) types.push_back(t);
  return types;
}

void MergeJoinOperator::Open() {
  left_->Open();
  right_->Open();
  left_cur_ = Cursor{};
  right_cur_ = Cursor{};
  run_.Reset(right_->OutputTypes());
  run_pos_ = 0;
  in_run_ = false;
}

bool MergeJoinOperator::Refill(Operator& child, Cursor& cur) {
  while (!cur.done && cur.pos >= cur.batch.num_rows()) {
    if (!child.Next(&cur.batch)) cur.done = true;
    cur.pos = 0;
  }
  return !cur.done;
}

bool MergeJoinOperator::Next(Batch* out) {
  out->Reset(OutputTypes());
  const std::size_t lw = left_->OutputTypes().size();
  const std::size_t rw = right_->OutputTypes().size();

  auto emit = [&](std::size_t run_row) {
    for (std::size_t c = 0; c < lw; ++c) {
      out->columns[c].AppendFrom(left_cur_.batch.columns[c], left_cur_.pos);
    }
    for (std::size_t c = 0; c < rw; ++c) {
      out->columns[lw + c].AppendFrom(run_.columns[c], run_row);
    }
    out->row_ids.push_back(left_cur_.batch.row_ids[left_cur_.pos]);
  };

  while (out->num_rows() < kBatchSize) {
    if (in_run_) {
      // Cross the current left row with the buffered right run.
      if (run_pos_ < run_.num_rows()) {
        emit(run_pos_++);
        continue;
      }
      // Current left row done; the next left row may carry the same key.
      ++left_cur_.pos;
      if (Refill(*left_, left_cur_) && LeftKey() == run_key_) {
        run_pos_ = 0;
        continue;
      }
      in_run_ = false;
      run_.Clear();
      continue;
    }
    if (!Refill(*left_, left_cur_) || !Refill(*right_, right_cur_)) break;
    const std::int64_t lk = LeftKey();
    const std::int64_t rk =
        right_cur_.batch.columns[right_key_].i64[right_cur_.pos];
    if (lk < rk) {
      ++left_cur_.pos;
    } else if (lk > rk) {
      ++right_cur_.pos;
    } else {
      // Buffer the right side's equal-key run (it may span batches).
      run_key_ = lk;
      run_.Reset(right_->OutputTypes());
      while (Refill(*right_, right_cur_) &&
             right_cur_.batch.columns[right_key_].i64[right_cur_.pos] ==
                 run_key_) {
        run_.AppendRowFrom(right_cur_.batch, right_cur_.pos);
        ++right_cur_.pos;
      }
      run_pos_ = 0;
      in_run_ = true;
    }
  }
  return out->num_rows() > 0;
}

void MergeJoinOperator::Close() {
  left_->Close();
  right_->Close();
  run_.Clear();
}

}  // namespace patchindex
