#include "exec/scan.h"

#include <algorithm>

#include "common/check.h"

namespace patchindex {

namespace {
// Appends one cell of a storage column to a batch column vector.
inline void AppendCell(ColumnVector& dst, const Column& src, RowId row) {
  switch (dst.type) {
    case ColumnType::kInt64:
      dst.i64.push_back(src.GetInt64(row));
      break;
    case ColumnType::kDouble:
      dst.f64.push_back(src.GetDouble(row));
      break;
    case ColumnType::kString:
      dst.str.push_back(src.GetString(row));
      break;
  }
}
}  // namespace

ScanOperator::ScanOperator(const Table& table,
                           std::vector<std::size_t> column_indices,
                           ScanOptions options)
    : table_(table), cols_(std::move(column_indices)), options_(options) {
  for (std::size_t c : cols_) PIDX_CHECK(c < table.schema().num_fields());
}

std::vector<ColumnType> ScanOperator::OutputTypes() const {
  std::vector<ColumnType> types;
  types.reserve(cols_.size() + 1);
  for (std::size_t c : cols_) types.push_back(table_.schema().field(c).type);
  if (options_.append_rowid_column) types.push_back(ColumnType::kInt64);
  return types;
}

void ScanOperator::Open() {
  effective_ranges_.clear();
  if (options_.dynamic_range && options_.minmax) {
    // Dynamic range propagation: the range was published by a join build
    // phase that ran before this Open().
    if (options_.dynamic_range->valid) {
      effective_ranges_ = options_.minmax->PruneRanges(
          options_.dynamic_range->lo, options_.dynamic_range->hi);
    }
    // An invalid range means the build side was empty: no base row can
    // have a join partner, so scan no base blocks at all. Statically
    // requested ranges are scanned in addition (e.g. blocks containing
    // modified rows, whose new values the minmax bounds may not cover).
    if (!options_.ranges.empty()) {
      for (const RowRange& r : options_.ranges) effective_ranges_.push_back(r);
      effective_ranges_ = NormalizeRanges(std::move(effective_ranges_));
    }
  } else if (!options_.ranges.empty()) {
    effective_ranges_ = options_.ranges;
  } else {
    effective_ranges_.push_back({0, table_.num_rows()});
  }
  range_idx_ = 0;
  base_pos_ = effective_ranges_.empty() ? 0 : effective_ranges_[0].begin;
  // Anchor the delete cursor at the first range's start (as range
  // transitions already do): a morsel scan starting deep into the table
  // would otherwise walk every preceding pending delete linearly.
  const auto& deletes = table_.pdt().deletes();
  delete_idx_ = static_cast<std::size_t>(
      std::lower_bound(deletes.begin(), deletes.end(), base_pos_) -
      deletes.begin());
  insert_pos_ = 0;
  base_done_ = options_.source == ScanSource::kInsertsOnly ||
               effective_ranges_.empty();
}

double ScanOperator::effective_base_fraction() const {
  const std::uint64_t total = table_.num_rows();
  if (total == 0) return 1.0;
  std::uint64_t covered = 0;
  for (const RowRange& r : effective_ranges_) covered += r.end - r.begin;
  return static_cast<double>(covered) / static_cast<double>(total);
}

bool ScanOperator::Next(Batch* out) {
  out->Reset(OutputTypes());
  if (!base_done_ && EmitBaseRows(out)) return true;
  base_done_ = true;
  const bool want_inserts =
      options_.source == ScanSource::kInsertsOnly ||
      (options_.source == ScanSource::kVisible && options_.scan_inserts);
  if (want_inserts && EmitInsertRows(out)) {
    return true;
  }
  return out->num_rows() > 0;
}

bool ScanOperator::EmitBaseRows(Batch* out) {
  const auto& deletes = table_.pdt().deletes();
  const auto& modifies = table_.pdt().modifies();
  const bool visible = options_.source == ScanSource::kVisible;

  // Fast path (the common read-only case): no pending deltas to merge, so
  // column slices can be copied wholesale instead of row by row —
  // vector-at-a-time scanning as in X100. The PatchIndex scan's selection
  // is merged here: the gaps between patches are still bulk slices.
  if (deletes.empty() && modifies.empty()) {
    auto copy_range = [&](RowId begin, RowId end) {
      if (begin >= end) return;
      for (std::size_t i = 0; i < cols_.size(); ++i) {
        const Column& src = table_.column(cols_[i]);
        ColumnVector& dst = out->columns[i];
        switch (dst.type) {
          case ColumnType::kInt64:
            dst.i64.insert(dst.i64.end(), src.i64_data().begin() + begin,
                           src.i64_data().begin() + end);
            break;
          case ColumnType::kDouble:
            dst.f64.insert(dst.f64.end(), src.f64_data().begin() + begin,
                           src.f64_data().begin() + end);
            break;
          case ColumnType::kString:
            dst.str.insert(dst.str.end(), src.str_data().begin() + begin,
                           src.str_data().begin() + end);
            break;
        }
      }
      const std::uint64_t off = options_.row_id_offset;
      if (options_.append_rowid_column) {
        auto& rid_col = out->columns[cols_.size()].i64;
        for (RowId r = begin; r < end; ++r) {
          rid_col.push_back(static_cast<std::int64_t>(r + off));
        }
      }
      for (RowId r = begin; r < end; ++r) out->row_ids.push_back(r + off);
    };

    while (out->num_rows() < kBatchSize &&
           range_idx_ < effective_ranges_.size()) {
      const RowRange& range = effective_ranges_[range_idx_];
      if (base_pos_ >= range.end) {
        ++range_idx_;
        if (range_idx_ < effective_ranges_.size()) {
          base_pos_ = effective_ranges_[range_idx_].begin;
        }
        continue;
      }
      const RowId begin = base_pos_;
      const RowId end = std::min<RowId>(
          range.end, begin + (kBatchSize - out->num_rows()));
      base_pos_ = end;
      if (options_.patch_filter == nullptr) {
        copy_range(begin, end);
      } else if (options_.patch_mode == PatchSelectMode::kExcludePatches) {
        RowId cur = begin;
        options_.patch_filter->ForEachPatchInRange(
            begin, end, [&](RowId p) {
              copy_range(cur, p);
              cur = p + 1;
            });
        copy_range(cur, end);
      } else {
        options_.patch_filter->ForEachPatchInRange(
            begin, end, [&](RowId p) { copy_range(p, p + 1); });
      }
    }
    return out->num_rows() >= kBatchSize;
  }

  while (out->num_rows() < kBatchSize && range_idx_ < effective_ranges_.size()) {
    const RowRange& range = effective_ranges_[range_idx_];
    if (base_pos_ >= range.end) {
      ++range_idx_;
      if (range_idx_ < effective_ranges_.size()) {
        base_pos_ = effective_ranges_[range_idx_].begin;
        // Re-anchor the delete cursor for the new range start.
        delete_idx_ = static_cast<std::size_t>(
            std::lower_bound(deletes.begin(), deletes.end(), base_pos_) -
            deletes.begin());
      }
      continue;
    }
    const RowId b = base_pos_++;
    if (visible) {
      while (delete_idx_ < deletes.size() && deletes[delete_idx_] < b) {
        ++delete_idx_;
      }
      if (delete_idx_ < deletes.size() && deletes[delete_idx_] == b) {
        continue;  // row pending deletion
      }
    }
    // Visible rowID: base position minus preceding deletes.
    const RowId rid = visible ? b - delete_idx_ : b;
    if (options_.patch_filter != nullptr) {
      const bool is_patch = rid < options_.patch_filter->NumRows() &&
                            options_.patch_filter->IsPatch(rid);
      const bool want = options_.patch_mode == PatchSelectMode::kUsePatches;
      if (is_patch != want) continue;
    }
    const auto mit = (visible && !modifies.empty()) ? modifies.find(b)
                                                    : modifies.end();
    for (std::size_t i = 0; i < cols_.size(); ++i) {
      const std::size_t c = cols_[i];
      if (mit != modifies.end()) {
        auto cit = mit->second.find(c);
        if (cit != mit->second.end()) {
          out->columns[i].AppendValue(cit->second);
          continue;
        }
      }
      AppendCell(out->columns[i], table_.column(c), b);
    }
    if (options_.append_rowid_column) {
      out->columns[cols_.size()].i64.push_back(
          static_cast<std::int64_t>(rid + options_.row_id_offset));
    }
    out->row_ids.push_back(rid + options_.row_id_offset);
  }
  return out->num_rows() >= kBatchSize;
}

bool ScanOperator::EmitInsertRows(Batch* out) {
  const auto& inserts = table_.pdt().inserts();
  const RowId surviving = table_.num_rows() - table_.pdt().deletes().size();
  while (out->num_rows() < kBatchSize && insert_pos_ < inserts.size()) {
    const Row& row = inserts[insert_pos_];
    const RowId pending_rid = surviving + insert_pos_;
    if (options_.patch_filter != nullptr) {
      // Rows beyond the filter's domain count as non-patches.
      const bool is_patch =
          pending_rid < options_.patch_filter->NumRows() &&
          options_.patch_filter->IsPatch(pending_rid);
      if (is_patch !=
          (options_.patch_mode == PatchSelectMode::kUsePatches)) {
        ++insert_pos_;
        continue;
      }
    }
    for (std::size_t i = 0; i < cols_.size(); ++i) {
      out->columns[i].AppendValue(row.cells[cols_[i]]);
    }
    const RowId rid = pending_rid + options_.row_id_offset;
    if (options_.append_rowid_column) {
      out->columns[cols_.size()].i64.push_back(static_cast<std::int64_t>(rid));
    }
    out->row_ids.push_back(rid);
    ++insert_pos_;
  }
  return out->num_rows() >= kBatchSize;
}

}  // namespace patchindex
