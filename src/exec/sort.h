#ifndef PATCHINDEX_EXEC_SORT_H_
#define PATCHINDEX_EXEC_SORT_H_

#include <cstdint>
#include <vector>

#include "exec/operator.h"

namespace patchindex {

namespace obs {
struct NodeStats;
}

struct SortKeySpec {
  std::size_t column;
  bool ascending = true;
};

/// Full in-memory sort (introsort, i.e. a QuickSort derivative like the
/// engine in the paper). Materializes the child at Open() and emits the
/// permuted rows. With a non-zero `limit` only the top `limit` rows are
/// produced (ORDER BY ... LIMIT), selected by a heap-based partial sort.
/// The PatchIndex sort optimization removes this operator from the
/// patch-excluded subtree entirely (§3.3) — only the patches still pass
/// through a SortOperator.
class SortOperator : public Operator {
 public:
  SortOperator(OperatorPtr child, std::vector<SortKeySpec> keys,
               std::size_t limit = 0);

  std::vector<ColumnType> OutputTypes() const override {
    return child_->OutputTypes();
  }
  void Open() override;
  bool Next(Batch* out) override;
  void Close() override;

  /// Attributes the sort buffer's bytes to a plan node's profile
  /// accumulator (EXPLAIN ANALYZE `mem=`).
  void SetMemoryStats(obs::NodeStats* stats) { mem_stats_ = stats; }

 private:
  OperatorPtr child_;
  std::vector<SortKeySpec> keys_;
  std::size_t limit_;
  obs::NodeStats* mem_stats_ = nullptr;
  Batch data_;
  std::vector<std::size_t> order_;
  std::size_t pos_ = 0;
};

}  // namespace patchindex

#endif  // PATCHINDEX_EXEC_SORT_H_
