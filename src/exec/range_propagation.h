#ifndef PATCHINDEX_EXEC_RANGE_PROPAGATION_H_
#define PATCHINDEX_EXEC_RANGE_PROPAGATION_H_

#include <cstdint>
#include <limits>
#include <memory>

namespace patchindex {

/// A key range published at query runtime, used for dynamic range
/// propagation (paper §5, Baumann et al. [4]): the build phase of a
/// HashJoin records the min/max of its build keys here; a scan on the
/// probe side resolves the range against its minmax index when it opens
/// (which, in a pull-based plan, happens after the build finished) and
/// skips all blocks that cannot contain join partners.
struct DynamicRange {
  bool valid = false;
  std::int64_t lo = std::numeric_limits<std::int64_t>::max();
  std::int64_t hi = std::numeric_limits<std::int64_t>::min();

  void Observe(std::int64_t v) {
    valid = true;
    if (v < lo) lo = v;
    if (v > hi) hi = v;
  }
};

using DynamicRangePtr = std::shared_ptr<DynamicRange>;

inline DynamicRangePtr MakeDynamicRange() {
  return std::make_shared<DynamicRange>();
}

}  // namespace patchindex

#endif  // PATCHINDEX_EXEC_RANGE_PROPAGATION_H_
