#include "exec/aggregate.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/check.h"
#include "obs/mem_tracker.h"

namespace patchindex {

namespace {
/// Estimated heap cost per hash-index entry (node + key + value).
constexpr std::uint64_t kIndexEntryBytes = 48;
}  // namespace

std::uint64_t HashAggregateOperator::ApproxStateBytes() const {
  std::uint64_t bytes = ApproxBytes(groups_);
  for (const auto& v : agg_i64_) bytes += v.size() * sizeof(std::int64_t);
  for (const auto& v : agg_f64_) bytes += v.size() * sizeof(double);
  // Encoded generic keys roughly mirror the group columns' content,
  // which ApproxBytes(groups_) already counted; the flat per-entry cost
  // covers the index nodes themselves.
  bytes +=
      (i64_index_.size() + generic_index_.size()) * kIndexEntryBytes;
  return bytes;
}

HashAggregateOperator::HashAggregateOperator(
    OperatorPtr child, std::vector<std::size_t> group_cols,
    std::vector<AggSpec> aggs)
    : child_(std::move(child)),
      group_cols_(std::move(group_cols)),
      aggs_(std::move(aggs)) {
  PIDX_CHECK(!group_cols_.empty());
  single_i64_key_ = group_cols_.size() == 1 &&
                    child_->OutputTypes()[group_cols_[0]] == ColumnType::kInt64;
}

std::vector<ColumnType> HashAggregateOperator::OutputTypes() const {
  const std::vector<ColumnType> input = child_->OutputTypes();
  std::vector<ColumnType> out;
  for (std::size_t c : group_cols_) out.push_back(input[c]);
  for (const AggSpec& a : aggs_) {
    switch (a.op) {
      case AggOp::kCount:
        out.push_back(ColumnType::kInt64);
        break;
      case AggOp::kSum:
      case AggOp::kMin:
      case AggOp::kMax:
        out.push_back(input[a.column]);
        break;
    }
  }
  return out;
}

void HashAggregateOperator::Open() {
  child_->Open();
  std::vector<ColumnType> group_types;
  const std::vector<ColumnType> input = child_->OutputTypes();
  for (std::size_t c : group_cols_) group_types.push_back(input[c]);
  groups_.Reset(group_types);
  agg_f64_.assign(aggs_.size(), {});
  agg_i64_.assign(aggs_.size(), {});
  i64_index_.clear();
  generic_index_.clear();

  // Re-estimate the table's footprint as groups accumulate (an exact
  // running count would touch the accounting on every row); the final
  // GrowTo settles the charge to the exact content-based size.
  obs::OpMemory mem("HashAggregate", mem_stats_);
  std::size_t sized_groups = 0;
  Batch in;
  while (child_->Next(&in)) {
    if (single_i64_key_) {
      ConsumeSingleInt64(in);
    } else {
      ConsumeGeneric(in);
    }
    if (groups_.num_rows() - sized_groups >= 4096) {
      sized_groups = groups_.num_rows();
      mem.GrowTo(ApproxStateBytes());
    }
  }
  mem.GrowTo(ApproxStateBytes());
  child_->Close();
  pos_ = 0;
}

namespace {
// Encodes a group key as a byte string (generic slow path).
std::string EncodeKey(const Batch& in, const std::vector<std::size_t>& cols,
                      std::size_t row) {
  std::string key;
  for (std::size_t c : cols) {
    const ColumnVector& col = in.columns[c];
    switch (col.type) {
      case ColumnType::kInt64: {
        const std::int64_t v = col.i64[row];
        key.append(reinterpret_cast<const char*>(&v), sizeof(v));
        break;
      }
      case ColumnType::kDouble: {
        const double v = col.f64[row];
        key.append(reinterpret_cast<const char*>(&v), sizeof(v));
        break;
      }
      case ColumnType::kString:
        key.append(col.str[row]);
        key.push_back('\0');
        break;
    }
  }
  return key;
}
}  // namespace

void HashAggregateOperator::ConsumeSingleInt64(const Batch& in) {
  const auto& keys = in.columns[group_cols_[0]].i64;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    auto [it, inserted] = i64_index_.try_emplace(keys[i], groups_.num_rows());
    const std::size_t g = it->second;
    if (inserted) {
      groups_.columns[0].i64.push_back(keys[i]);
      groups_.row_ids.push_back(in.row_ids[i]);
      for (std::size_t a = 0; a < aggs_.size(); ++a) {
        agg_i64_[a].push_back(
            aggs_[a].op == AggOp::kMin
                ? std::numeric_limits<std::int64_t>::max()
                : (aggs_[a].op == AggOp::kMax
                       ? std::numeric_limits<std::int64_t>::min()
                       : 0));
        agg_f64_[a].push_back(
            aggs_[a].op == AggOp::kMin
                ? std::numeric_limits<double>::infinity()
                : (aggs_[a].op == AggOp::kMax
                       ? -std::numeric_limits<double>::infinity()
                       : 0.0));
      }
    }
    for (std::size_t a = 0; a < aggs_.size(); ++a) {
      const AggSpec& spec = aggs_[a];
      if (spec.op == AggOp::kCount) {
        ++agg_i64_[a][g];
        continue;
      }
      const ColumnVector& col = in.columns[spec.column];
      if (col.type == ColumnType::kInt64) {
        const std::int64_t v = col.i64[i];
        switch (spec.op) {
          case AggOp::kSum:
            agg_i64_[a][g] += v;
            break;
          case AggOp::kMin:
            agg_i64_[a][g] = std::min(agg_i64_[a][g], v);
            break;
          case AggOp::kMax:
            agg_i64_[a][g] = std::max(agg_i64_[a][g], v);
            break;
          default:
            break;
        }
      } else {
        const double v = col.f64[i];
        switch (spec.op) {
          case AggOp::kSum:
            agg_f64_[a][g] += v;
            break;
          case AggOp::kMin:
            agg_f64_[a][g] = std::min(agg_f64_[a][g], v);
            break;
          case AggOp::kMax:
            agg_f64_[a][g] = std::max(agg_f64_[a][g], v);
            break;
          default:
            break;
        }
      }
    }
  }
}

void HashAggregateOperator::ConsumeGeneric(const Batch& in) {
  for (std::size_t i = 0; i < in.num_rows(); ++i) {
    std::string key = EncodeKey(in, group_cols_, i);
    auto [it, inserted] =
        generic_index_.try_emplace(std::move(key), groups_.num_rows());
    const std::size_t g = it->second;
    if (inserted) {
      for (std::size_t k = 0; k < group_cols_.size(); ++k) {
        groups_.columns[k].AppendFrom(in.columns[group_cols_[k]], i);
      }
      groups_.row_ids.push_back(in.row_ids[i]);
      for (std::size_t a = 0; a < aggs_.size(); ++a) {
        agg_i64_[a].push_back(
            aggs_[a].op == AggOp::kMin
                ? std::numeric_limits<std::int64_t>::max()
                : (aggs_[a].op == AggOp::kMax
                       ? std::numeric_limits<std::int64_t>::min()
                       : 0));
        agg_f64_[a].push_back(
            aggs_[a].op == AggOp::kMin
                ? std::numeric_limits<double>::infinity()
                : (aggs_[a].op == AggOp::kMax
                       ? -std::numeric_limits<double>::infinity()
                       : 0.0));
      }
    }
    for (std::size_t a = 0; a < aggs_.size(); ++a) {
      const AggSpec& spec = aggs_[a];
      if (spec.op == AggOp::kCount) {
        ++agg_i64_[a][g];
        continue;
      }
      const ColumnVector& col = in.columns[spec.column];
      if (col.type == ColumnType::kInt64) {
        const std::int64_t v = col.i64[i];
        switch (spec.op) {
          case AggOp::kSum:
            agg_i64_[a][g] += v;
            break;
          case AggOp::kMin:
            agg_i64_[a][g] = std::min(agg_i64_[a][g], v);
            break;
          case AggOp::kMax:
            agg_i64_[a][g] = std::max(agg_i64_[a][g], v);
            break;
          default:
            break;
        }
      } else if (col.type == ColumnType::kDouble) {
        const double v = col.f64[i];
        switch (spec.op) {
          case AggOp::kSum:
            agg_f64_[a][g] += v;
            break;
          case AggOp::kMin:
            agg_f64_[a][g] = std::min(agg_f64_[a][g], v);
            break;
          case AggOp::kMax:
            agg_f64_[a][g] = std::max(agg_f64_[a][g], v);
            break;
          default:
            break;
        }
      } else {
        PIDX_CHECK_MSG(false, "string aggregates not supported");
      }
    }
  }
}

bool HashAggregateOperator::Next(Batch* out) {
  out->Reset(OutputTypes());
  const std::vector<ColumnType> input = child_->OutputTypes();
  while (out->num_rows() < kBatchSize && pos_ < groups_.num_rows()) {
    const std::size_t g = pos_++;
    for (std::size_t k = 0; k < group_cols_.size(); ++k) {
      out->columns[k].AppendFrom(groups_.columns[k], g);
    }
    for (std::size_t a = 0; a < aggs_.size(); ++a) {
      const std::size_t oc = group_cols_.size() + a;
      const AggSpec& spec = aggs_[a];
      const bool is_f64 = spec.op != AggOp::kCount &&
                          input[spec.column] == ColumnType::kDouble;
      if (is_f64) {
        out->columns[oc].f64.push_back(agg_f64_[a][g]);
      } else {
        out->columns[oc].i64.push_back(agg_i64_[a][g]);
      }
    }
    out->row_ids.push_back(groups_.row_ids[g]);
  }
  return out->num_rows() > 0;
}

void HashAggregateOperator::Close() {
  groups_.Clear();
  agg_f64_.clear();
  agg_i64_.clear();
  i64_index_.clear();
  generic_index_.clear();
}

}  // namespace patchindex
