#ifndef PATCHINDEX_EXEC_SCAN_H_
#define PATCHINDEX_EXEC_SCAN_H_

#include <cstdint>
#include <vector>

#include "exec/operator.h"
#include "exec/range_propagation.h"
#include "exec/row_filter.h"
#include "storage/minmax.h"
#include "storage/table.h"

namespace patchindex {

/// Which tuples a table scan produces.
enum class ScanSource {
  /// Base rows minus pending PDT deletes, with pending modifies applied,
  /// followed by pending inserts ("the actual table including inserted
  /// values", paper §5.1).
  kVisible,
  /// Base rows only, ignoring the PDT.
  kBaseOnly,
  /// Only the pending PDT inserts ("scanning the inserted values is
  /// realized by scanning the PDTs of the current query", §5.1). Emitted
  /// rowIDs are the positions the rows will occupy after checkpoint.
  kInsertsOnly,
};

struct ScanOptions {
  ScanSource source = ScanSource::kVisible;

  /// Static range propagation: restricts the scan to these base-row
  /// ranges (empty = full table). Pending inserts are always scanned
  /// unless `scan_inserts` is false.
  std::vector<RowRange> ranges;

  /// When false, a kVisible scan emits only base rows and skips the
  /// pending PDT inserts. The morsel-driven executor partitions the base
  /// rows into ranges scanned by many workers and gives the pending
  /// inserts a dedicated kInsertsOnly morsel — without this flag every
  /// worker would re-emit the inserts. Ignored for kInsertsOnly.
  bool scan_inserts = true;

  /// Dynamic range propagation: when set together with `minmax`, the scan
  /// resolves `ranges` at Open() time by pruning blocks against the
  /// published key range (paper §5.1, Figure 5 "DRP"). Ranges listed in
  /// `ranges` are scanned in addition to the pruning result.
  DynamicRangePtr dynamic_range;
  const MinMaxIndex* minmax = nullptr;

  /// Appends the rowID of each tuple as an extra INT64 output column, so
  /// downstream operators can compute on it (the update-handling queries
  /// project and compare rowIDs of join sides).
  bool append_rowid_column = false;

  /// Added to every emitted rowID (row_ids and the appended rowID
  /// column). A scan of one partition of a PartitionedTable sets this to
  /// the partition's global base so rowIDs are table-global; patch
  /// filters still see partition-local positions (the filter is applied
  /// before the offset). 0 for plain tables.
  std::uint64_t row_id_offset = 0;

  /// PatchIndex scan (paper §3.3): merge the patch information on-the-fly
  /// into the scan, emitting either only constraint-satisfying tuples
  /// (kExcludePatches) or only the exceptions (kUsePatches). Fused into
  /// the scan so the gaps between patches move as bulk column slices; the
  /// standalone PatchSelectOperator implements the same semantics as a
  /// separate operator. Rows beyond the filter's domain (pending inserts
  /// not yet covered by the index) are treated as non-patches.
  const RowIdFilter* patch_filter = nullptr;
  PatchSelectMode patch_mode = PatchSelectMode::kExcludePatches;
};

/// Vectorized table scan producing the requested columns plus rowIDs.
class ScanOperator : public Operator {
 public:
  ScanOperator(const Table& table, std::vector<std::size_t> column_indices,
               ScanOptions options = {});

  std::vector<ColumnType> OutputTypes() const override;

  void Open() override;
  bool Next(Batch* out) override;

  /// Fraction of base rows covered by the effective ranges after Open()
  /// (1.0 without pruning). Exposed for the DRP experiments.
  double effective_base_fraction() const;

 private:
  bool EmitBaseRows(Batch* out);
  bool EmitInsertRows(Batch* out);

  const Table& table_;
  std::vector<std::size_t> cols_;
  ScanOptions options_;

  // Iteration state.
  std::vector<RowRange> effective_ranges_;
  std::size_t range_idx_ = 0;
  RowId base_pos_ = 0;        // next base row within current range
  std::size_t delete_idx_ = 0;  // cursor into sorted PDT deletes
  std::size_t insert_pos_ = 0;  // next pending insert
  bool base_done_ = false;
};

}  // namespace patchindex

#endif  // PATCHINDEX_EXEC_SCAN_H_
