#include "exec/project.h"

#include <utility>

namespace patchindex {

ProjectOperator::ProjectOperator(OperatorPtr child, std::vector<ExprPtr> exprs)
    : child_(std::move(child)), exprs_(std::move(exprs)) {}

std::vector<ColumnType> ProjectOperator::OutputTypes() const {
  const std::vector<ColumnType> input = child_->OutputTypes();
  std::vector<ColumnType> out;
  out.reserve(exprs_.size());
  for (const ExprPtr& e : exprs_) out.push_back(e->OutputType(input));
  return out;
}

bool ProjectOperator::Next(Batch* out) {
  Batch in;
  if (!child_->Next(&in)) {
    out->Reset(OutputTypes());
    return false;
  }
  out->columns.clear();
  for (const ExprPtr& e : exprs_) out->columns.push_back(e->Eval(in));
  out->row_ids = std::move(in.row_ids);
  return true;
}

}  // namespace patchindex
