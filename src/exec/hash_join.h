#ifndef PATCHINDEX_EXEC_HASH_JOIN_H_
#define PATCHINDEX_EXEC_HASH_JOIN_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "exec/operator.h"
#include "exec/range_propagation.h"
#include "exec/row_filter.h"

namespace patchindex {

namespace obs {
struct NodeStats;
}

/// Hash table over the materialized build side of an INT64 equi join,
/// decomposed out of HashJoinOperator so the morsel-driven executor can
/// build partitions of it from many workers and probe them concurrently.
/// Thread-safety: AddRow is single-writer (one partition is built by one
/// task); once built, any number of threads may ForEachMatch concurrently
/// (probes are read-only).
///
/// Keys live in two structures: a unique map for rows whose key is
/// promised to appear at most once (NUC non-exception rows — probing them
/// is a single lookup with no duplicate chaining), and a chained multimap
/// for everything else (NUC patches, pending PDT inserts, unindexed
/// builds). A violated uniqueness promise — pending modifies can
/// duplicate a NUC key — is detected on insert and both occurrences are
/// demoted to the chained path, so probe results stay exact no matter
/// what the caller promises.
class JoinHashTable {
 public:
  JoinHashTable() = default;

  /// Clears the table and fixes the build-side column layout.
  void Reset(const std::vector<ColumnType>& build_types);

  /// Pre-sizes the hash structures for `n` build rows (avoids rehashing
  /// during bulk AddRow loops).
  void Reserve(std::size_t n);

  /// Appends build row `row` of `src` (which must use the build layout)
  /// under `key`. `unique_hint` promises the key appears at most once
  /// among all hinted rows of this table; see the class comment for how
  /// violations are handled.
  void AddRow(const Batch& src, std::size_t row, std::int64_t key,
              bool unique_hint = false);

  /// Invokes fn(build_row_index) for every build row holding `key`.
  template <typename Fn>
  void ForEachMatch(std::int64_t key, Fn&& fn) const {
    if (!unique_.empty()) {
      auto it = unique_.find(key);
      if (it != unique_.end()) fn(it->second);
    }
    if (!chained_.empty()) {
      auto [first, last] = chained_.equal_range(key);
      for (auto it = first; it != last; ++it) fn(it->second);
    }
  }

  /// The materialized build rows, indexable by the values ForEachMatch
  /// produces.
  const Batch& rows() const { return rows_; }
  std::size_t num_rows() const { return rows_.num_rows(); }

  /// Content-based memory estimate: materialized build rows plus a fixed
  /// per-entry cost for the hash structures (node + key + value + bucket
  /// slot). A function of row count and content only, so partitioned
  /// builds sum to the same total as a monolithic one.
  std::uint64_t ApproxBytes() const {
    return patchindex::ApproxBytes(rows_) +
           static_cast<std::uint64_t>(unique_.size() + chained_.size()) *
               kEntryBytes;
  }

  /// Estimated heap cost per hash-table entry.
  static constexpr std::uint64_t kEntryBytes = 48;

 private:
  Batch rows_;
  std::unordered_map<std::int64_t, std::size_t> unique_;
  std::unordered_multimap<std::int64_t, std::size_t> chained_;
};

/// Partition of `key` among `mask + 1` (a power of two) partitions.
/// Multiplicative hashing decorrelates the partition from the low key
/// bits, which the per-partition unordered maps hash on again.
inline std::size_t JoinKeyPartition(std::int64_t key, std::size_t mask) {
  return static_cast<std::size_t>(
             (static_cast<std::uint64_t>(key) * 0x9E3779B97F4A7C15ULL) >>
             32) &
         mask;
}

struct HashJoinOptions {
  /// Publishes the min/max of the build keys after the build phase for
  /// dynamic range propagation into the probe-side scan (paper §5.1).
  DynamicRangePtr publish_build_range;

  /// Appends the matching build row's rowID as an extra INT64 output
  /// column. The NUC insert-handling query (Figure 5) projects the rowIDs
  /// of *both* join sides to merge them into the patches.
  bool append_build_rowid_column = false;

  /// Advisory NUC index over the build side's rowIDs: build rows the
  /// index proves unique skip duplicate chaining, exceptions (and rows
  /// outside the index's domain, i.e. pending inserts) take the chained
  /// path. Results are exact with or without it.
  const RowIdFilter* build_unique_filter = nullptr;
};

/// In-memory equi hash join on INT64 keys. Open() drains the build child
/// into a JoinHashTable (choosing the build side is the optimizer's job —
/// the paper builds on the patches because their cardinality is typically
/// the smallest, §3.3); Next() streams the probe child. Output layout:
/// probe columns, then build columns, then (optionally) the build rowID
/// column. Output rowIDs are the probe side's.
class HashJoinOperator : public Operator {
 public:
  HashJoinOperator(OperatorPtr build, OperatorPtr probe,
                   std::size_t build_key, std::size_t probe_key,
                   HashJoinOptions options = {});

  std::vector<ColumnType> OutputTypes() const override;
  void Open() override;
  bool Next(Batch* out) override;
  void Close() override;

  std::uint64_t build_rows() const { return table_.num_rows(); }

  /// Attributes the build table's bytes to a plan node's profile
  /// accumulator (EXPLAIN ANALYZE `mem=`).
  void SetMemoryStats(obs::NodeStats* stats) { mem_stats_ = stats; }

 private:
  OperatorPtr build_;
  OperatorPtr probe_;
  std::size_t build_key_;
  std::size_t probe_key_;
  HashJoinOptions options_;
  obs::NodeStats* mem_stats_ = nullptr;

  JoinHashTable table_;

  // Probe iteration state: current input batch and position.
  Batch probe_batch_;
  std::size_t probe_pos_ = 0;
  bool probe_done_ = false;
};

}  // namespace patchindex

#endif  // PATCHINDEX_EXEC_HASH_JOIN_H_
