#ifndef PATCHINDEX_EXEC_HASH_JOIN_H_
#define PATCHINDEX_EXEC_HASH_JOIN_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "exec/operator.h"
#include "exec/range_propagation.h"

namespace patchindex {

struct HashJoinOptions {
  /// Publishes the min/max of the build keys after the build phase for
  /// dynamic range propagation into the probe-side scan (paper §5.1).
  DynamicRangePtr publish_build_range;

  /// Appends the matching build row's rowID as an extra INT64 output
  /// column. The NUC insert-handling query (Figure 5) projects the rowIDs
  /// of *both* join sides to merge them into the patches.
  bool append_build_rowid_column = false;
};

/// In-memory equi hash join on INT64 keys. Open() drains the build child
/// into a hash table (choosing the build side is the optimizer's job — the
/// paper builds on the patches because their cardinality is typically the
/// smallest, §3.3); Next() streams the probe child. Output layout: probe
/// columns, then build columns, then (optionally) the build rowID column.
/// Output rowIDs are the probe side's.
class HashJoinOperator : public Operator {
 public:
  HashJoinOperator(OperatorPtr build, OperatorPtr probe,
                   std::size_t build_key, std::size_t probe_key,
                   HashJoinOptions options = {});

  std::vector<ColumnType> OutputTypes() const override;
  void Open() override;
  bool Next(Batch* out) override;
  void Close() override;

  std::uint64_t build_rows() const { return build_data_.num_rows(); }

 private:
  OperatorPtr build_;
  OperatorPtr probe_;
  std::size_t build_key_;
  std::size_t probe_key_;
  HashJoinOptions options_;

  Batch build_data_;  // materialized build side
  std::unordered_multimap<std::int64_t, std::size_t> table_;

  // Probe iteration state: current input batch and position, plus pending
  // matches of the current probe row.
  Batch probe_batch_;
  std::size_t probe_pos_ = 0;
  bool probe_done_ = false;
};

}  // namespace patchindex

#endif  // PATCHINDEX_EXEC_HASH_JOIN_H_
