#ifndef PATCHINDEX_EXEC_OPERATOR_H_
#define PATCHINDEX_EXEC_OPERATOR_H_

#include <memory>
#include <vector>

#include "exec/batch.h"

namespace patchindex {

/// Pull-based vectorized operator (Volcano iteration over kBatchSize
/// tuple vectors, as in X100/Vectorwise). Lifecycle: Open() once, Next()
/// until it returns false, Close() once.
class Operator {
 public:
  virtual ~Operator() = default;

  /// Types of the produced columns.
  virtual std::vector<ColumnType> OutputTypes() const = 0;

  virtual void Open() = 0;

  /// Produces the next batch. Returns false when exhausted (out is left
  /// empty in that case). `out` is reset by the callee.
  virtual bool Next(Batch* out) = 0;

  virtual void Close() {}
};

using OperatorPtr = std::unique_ptr<Operator>;

/// Drains `op` (Open/Next*/Close) into a single materialized batch.
/// Convenience for tests, update-handling queries and benchmarks.
Batch Collect(Operator& op);

/// Drains `op` counting rows without materializing them.
std::uint64_t CountRows(Operator& op);

/// Emits a pre-materialized batch in kBatchSize chunks; used to feed
/// operator inputs in tests and to replay buffered intermediates.
class InMemorySource : public Operator {
 public:
  explicit InMemorySource(Batch data) : data_(std::move(data)) {}

  std::vector<ColumnType> OutputTypes() const override {
    std::vector<ColumnType> types;
    types.reserve(data_.columns.size());
    for (const auto& c : data_.columns) types.push_back(c.type);
    return types;
  }

  void Open() override { pos_ = 0; }

  bool Next(Batch* out) override;

 private:
  Batch data_;
  std::size_t pos_ = 0;
};

}  // namespace patchindex

#endif  // PATCHINDEX_EXEC_OPERATOR_H_
