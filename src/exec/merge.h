#ifndef PATCHINDEX_EXEC_MERGE_H_
#define PATCHINDEX_EXEC_MERGE_H_

#include <cstdint>
#include <vector>

#include "exec/operator.h"

namespace patchindex {

/// Order-preserving union: k-way merge of children that are each sorted
/// ascending on `key_column` (INT64). The PatchIndex sort optimization
/// combines the already-sorted patch-excluded subtree with the sorted
/// patches through this operator instead of a plain Union (paper §3.3).
class MergeOperator : public Operator {
 public:
  MergeOperator(std::vector<OperatorPtr> children, std::size_t key_column);

  std::vector<ColumnType> OutputTypes() const override {
    return children_[0]->OutputTypes();
  }
  void Open() override;
  bool Next(Batch* out) override;
  void Close() override;

 private:
  struct Cursor {
    Batch batch;
    std::size_t pos = 0;
    bool done = false;
  };
  /// Ensures child `i` has a current row; returns false when exhausted.
  bool Refill(std::size_t i);

  std::vector<OperatorPtr> children_;
  std::size_t key_column_;
  std::vector<Cursor> cursors_;
};

/// Bag union by concatenation (no ordering guarantees): drains children in
/// order. Combines the two cloned subtrees of the PatchIndex distinct and
/// join optimizations (paper §3.3, Figure 2).
class UnionOperator : public Operator {
 public:
  explicit UnionOperator(std::vector<OperatorPtr> children);

  std::vector<ColumnType> OutputTypes() const override {
    return children_[0]->OutputTypes();
  }
  void Open() override;
  bool Next(Batch* out) override;
  void Close() override;

 private:
  std::vector<OperatorPtr> children_;
  std::size_t current_ = 0;
  bool opened_ = false;
};

}  // namespace patchindex

#endif  // PATCHINDEX_EXEC_MERGE_H_
