#ifndef PATCHINDEX_EXEC_REUSE_H_
#define PATCHINDEX_EXEC_REUSE_H_

#include <memory>

#include "exec/operator.h"

namespace patchindex {

/// Shared buffer between a ReuseCache and its ReuseLoads (intermediate
/// result caching, paper §5 / Nagel et al. [23]).
struct ReuseBuffer {
  Batch data;
  bool complete = false;
};

using ReuseBufferPtr = std::shared_ptr<ReuseBuffer>;

inline ReuseBufferPtr MakeReuseBuffer() {
  return std::make_shared<ReuseBuffer>();
}

/// Materializes the child's output into `buffer` while streaming it
/// through unchanged. After this operator is drained, ReuseLoadOperators
/// on the same buffer can replay the result without recomputation — e.g.
/// the insert-handling join result, which is projected twice (rowIDs of
/// both join sides, Figure 5).
class ReuseCacheOperator : public Operator {
 public:
  ReuseCacheOperator(OperatorPtr child, ReuseBufferPtr buffer);

  std::vector<ColumnType> OutputTypes() const override {
    return child_->OutputTypes();
  }
  void Open() override;
  bool Next(Batch* out) override;

  /// Drains whatever the consumer did not pull (e.g. a merge join whose
  /// other input ran dry first) so the buffer is complete for ReuseLoads.
  void Close() override;

 private:
  OperatorPtr child_;
  ReuseBufferPtr buffer_;
};

/// Replays a buffer filled by a ReuseCacheOperator. The buffer must be
/// complete before Open() — i.e. the caching pipeline must have been
/// drained first.
class ReuseLoadOperator : public Operator {
 public:
  ReuseLoadOperator(ReuseBufferPtr buffer, std::vector<ColumnType> types);

  std::vector<ColumnType> OutputTypes() const override { return types_; }
  void Open() override;
  bool Next(Batch* out) override;

 private:
  ReuseBufferPtr buffer_;
  std::vector<ColumnType> types_;
  std::size_t pos_ = 0;
};

}  // namespace patchindex

#endif  // PATCHINDEX_EXEC_REUSE_H_
