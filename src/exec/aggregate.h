#ifndef PATCHINDEX_EXEC_AGGREGATE_H_
#define PATCHINDEX_EXEC_AGGREGATE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "exec/operator.h"

namespace patchindex {

namespace obs {
struct NodeStats;
}

enum class AggOp { kCount, kSum, kMin, kMax };

struct AggSpec {
  AggOp op;
  /// Input column of the child (ignored for kCount).
  std::size_t column = 0;
};

/// Hash-based grouping aggregation. With an empty `aggs` list this is the
/// DISTINCT operator — the most expensive operator of a distinct query,
/// which the PatchIndex NUC optimization drops from the patch-excluded
/// subtree (paper §3.3, Figure 2 left). Output: group columns, then one
/// column per aggregate (kCount/kSum over INT64 produce INT64, over
/// DOUBLE produce DOUBLE; kMin/kMax keep the input type).
///
/// A specialized fast path handles the common single-INT64-group-key case
/// (the shape of the paper's microbenchmark distinct query).
class HashAggregateOperator : public Operator {
 public:
  HashAggregateOperator(OperatorPtr child, std::vector<std::size_t> group_cols,
                        std::vector<AggSpec> aggs = {});

  std::vector<ColumnType> OutputTypes() const override;
  void Open() override;
  bool Next(Batch* out) override;
  void Close() override;

  std::uint64_t num_groups() const { return groups_.num_rows(); }

  /// Attributes this operator's hash-table memory to a plan node's
  /// profile accumulator (EXPLAIN ANALYZE `mem=`). Budget enforcement
  /// against the thread's query tracker happens either way.
  void SetMemoryStats(obs::NodeStats* stats) { mem_stats_ = stats; }

  /// Estimated bytes of the group/aggregate state (keys, agg vectors,
  /// hash index).
  std::uint64_t ApproxStateBytes() const;

 private:
  void ConsumeGeneric(const Batch& in);
  void ConsumeSingleInt64(const Batch& in);

  OperatorPtr child_;
  std::vector<std::size_t> group_cols_;
  std::vector<AggSpec> aggs_;
  bool single_i64_key_ = false;
  obs::NodeStats* mem_stats_ = nullptr;

  // Materialized group keys (one row per group) and aggregate states.
  Batch groups_;
  std::vector<std::vector<double>> agg_f64_;
  std::vector<std::vector<std::int64_t>> agg_i64_;
  std::unordered_map<std::int64_t, std::size_t> i64_index_;
  std::unordered_map<std::string, std::size_t> generic_index_;
  std::size_t pos_ = 0;
};

}  // namespace patchindex

#endif  // PATCHINDEX_EXEC_AGGREGATE_H_
