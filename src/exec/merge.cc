#include "exec/merge.h"

#include <limits>
#include <utility>

#include "common/check.h"

namespace patchindex {

MergeOperator::MergeOperator(std::vector<OperatorPtr> children,
                             std::size_t key_column)
    : children_(std::move(children)), key_column_(key_column) {
  PIDX_CHECK(!children_.empty());
  const auto types = children_[0]->OutputTypes();
  PIDX_CHECK(types.at(key_column_) == ColumnType::kInt64);
  for (const auto& c : children_) PIDX_CHECK(c->OutputTypes() == types);
}

void MergeOperator::Open() {
  cursors_.clear();
  cursors_.resize(children_.size());
  for (std::size_t i = 0; i < children_.size(); ++i) {
    children_[i]->Open();
    Refill(i);
  }
}

bool MergeOperator::Refill(std::size_t i) {
  Cursor& cur = cursors_[i];
  while (!cur.done && cur.pos >= cur.batch.num_rows()) {
    if (!children_[i]->Next(&cur.batch)) {
      cur.done = true;
      return false;
    }
    cur.pos = 0;
  }
  return !cur.done;
}

bool MergeOperator::Next(Batch* out) {
  out->Reset(OutputTypes());
  while (out->num_rows() < kBatchSize) {
    // Pick the child with the smallest current key. Linear scan: the
    // PatchIndex merge has 2 inputs, partition merges a handful.
    std::size_t best = children_.size();
    std::int64_t best_key = std::numeric_limits<std::int64_t>::max();
    for (std::size_t i = 0; i < children_.size(); ++i) {
      if (!Refill(i)) continue;
      const Cursor& cur = cursors_[i];
      const std::int64_t key = cur.batch.columns[key_column_].i64[cur.pos];
      if (best == children_.size() || key < best_key) {
        best = i;
        best_key = key;
      }
    }
    if (best == children_.size()) break;
    Cursor& cur = cursors_[best];
    out->AppendRowFrom(cur.batch, cur.pos++);
  }
  return out->num_rows() > 0;
}

void MergeOperator::Close() {
  for (auto& c : children_) c->Close();
  cursors_.clear();
}

UnionOperator::UnionOperator(std::vector<OperatorPtr> children)
    : children_(std::move(children)) {
  PIDX_CHECK(!children_.empty());
  const auto types = children_[0]->OutputTypes();
  for (const auto& c : children_) PIDX_CHECK(c->OutputTypes() == types);
}

void UnionOperator::Open() {
  // Children are opened lazily, one at a time: child i+1 only after child
  // i is exhausted. This lets later children consume ReuseBuffers that
  // earlier children fill (the PatchIndex join plan relies on it).
  current_ = 0;
  opened_ = false;
}

bool UnionOperator::Next(Batch* out) {
  while (current_ < children_.size()) {
    if (!opened_) {
      children_[current_]->Open();
      opened_ = true;
    }
    if (children_[current_]->Next(out)) return true;
    children_[current_]->Close();
    ++current_;
    opened_ = false;
  }
  out->Reset(OutputTypes());
  return false;
}

void UnionOperator::Close() {
  for (auto& c : children_) c->Close();
}

}  // namespace patchindex
