#ifndef PATCHINDEX_EXEC_SORT_MERGE_H_
#define PATCHINDEX_EXEC_SORT_MERGE_H_

#include <cstddef>
#include <vector>

#include "exec/batch.h"
#include "exec/sort.h"

namespace patchindex {

/// Helpers shared by the serial SortOperator and the morsel-driven
/// executor's parallel order-by (per-worker local sort followed by a
/// k-way merge of the sorted per-worker parts). All functions are pure
/// over their inputs and safe to call from many workers concurrently on
/// distinct batches.

/// True when row `ra` of `a` orders strictly before row `rb` of `b` under
/// `keys`. Both batches must share the column layout the keys refer to.
bool SortedBatchRowLess(const Batch& a, std::size_t ra, const Batch& b,
                        std::size_t rb, const std::vector<SortKeySpec>& keys);

/// Row indices of `data` in sort order. With 0 < limit < num_rows only the
/// first `limit` positions are produced, selected via a heap-based partial
/// sort (std::partial_sort) — the TopN shortcut: O(n log limit) instead of
/// a full O(n log n) sort.
std::vector<std::size_t> SortedPermutation(const Batch& data,
                                           const std::vector<SortKeySpec>& keys,
                                           std::size_t limit = 0);

/// Sorts `data`'s rows in place (via permutation + rebuild); with a
/// non-zero limit the result is truncated to the top `limit` rows.
void SortBatchRows(Batch* data, const std::vector<SortKeySpec>& keys,
                   std::size_t limit = 0);

/// K-way merges `parts` — each individually sorted under `keys` — into one
/// globally sorted batch, stopping after `limit` rows when non-zero. All
/// parts must share one column layout; `parts` must be non-empty (empty
/// parts inside the vector are fine and contribute nothing).
Batch MergeSortedBatches(std::vector<Batch> parts,
                         const std::vector<SortKeySpec>& keys,
                         std::size_t limit = 0);

}  // namespace patchindex

#endif  // PATCHINDEX_EXEC_SORT_MERGE_H_
