#include "exec/batch.h"

#include "storage/column.h"

namespace patchindex {

void ColumnVector::AppendFromColumn(const Column& src, RowId row) {
  PIDX_DCHECK(src.type() == type);
  switch (type) {
    case ColumnType::kInt64:
      i64.push_back(src.GetInt64(row));
      break;
    case ColumnType::kDouble:
      f64.push_back(src.GetDouble(row));
      break;
    case ColumnType::kString:
      str.push_back(src.GetString(row));
      break;
  }
}

void ColumnVector::AppendValue(const Value& v) {
  PIDX_DCHECK(v.type() == type);
  switch (type) {
    case ColumnType::kInt64:
      i64.push_back(v.AsInt64());
      break;
    case ColumnType::kDouble:
      f64.push_back(v.AsDouble());
      break;
    case ColumnType::kString:
      str.push_back(v.AsString());
      break;
  }
}

void ColumnVector::AppendFrom(const ColumnVector& src, std::size_t idx) {
  PIDX_DCHECK(src.type == type);
  switch (type) {
    case ColumnType::kInt64:
      i64.push_back(src.i64[idx]);
      break;
    case ColumnType::kDouble:
      f64.push_back(src.f64[idx]);
      break;
    case ColumnType::kString:
      str.push_back(src.str[idx]);
      break;
  }
}

Value ColumnVector::GetValue(std::size_t idx) const {
  switch (type) {
    case ColumnType::kInt64:
      return Value(i64[idx]);
    case ColumnType::kDouble:
      return Value(f64[idx]);
    case ColumnType::kString:
      return Value(str[idx]);
  }
  return Value();
}

}  // namespace patchindex
