#include "exec/select.h"

#include <utility>

#include "common/check.h"

namespace patchindex {

SelectOperator::SelectOperator(OperatorPtr child, ExprPtr predicate)
    : child_(std::move(child)), predicate_(std::move(predicate)) {}

bool SelectOperator::Next(Batch* out) {
  out->Reset(OutputTypes());
  Batch in;
  while (out->num_rows() == 0) {
    if (!child_->Next(&in)) return false;
    const ColumnVector mask = predicate_->Eval(in);
    PIDX_DCHECK(mask.type == ColumnType::kInt64);
    for (std::size_t i = 0; i < in.num_rows(); ++i) {
      if (mask.i64[i] != 0) out->AppendRowFrom(in, i);
    }
  }
  return true;
}

PatchSelectOperator::PatchSelectOperator(OperatorPtr child,
                                         const RowIdFilter* filter,
                                         PatchSelectMode mode)
    : child_(std::move(child)), filter_(filter), mode_(mode) {
  PIDX_CHECK(filter_ != nullptr);
}

bool PatchSelectOperator::Next(Batch* out) {
  out->Reset(OutputTypes());
  Batch in;
  const bool want_patches = mode_ == PatchSelectMode::kUsePatches;
  while (out->num_rows() == 0) {
    if (!child_->Next(&in)) return false;
    for (std::size_t i = 0; i < in.num_rows(); ++i) {
      if (filter_->IsPatch(in.row_ids[i]) == want_patches) {
        out->AppendRowFrom(in, i);
      }
    }
  }
  return true;
}

}  // namespace patchindex
