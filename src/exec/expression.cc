#include "exec/expression.h"

#include <utility>

#include "common/check.h"

namespace patchindex {

namespace {

const char* CmpOpName(Expr::CmpOp op) {
  switch (op) {
    case Expr::CmpOp::kEq:
      return "=";
    case Expr::CmpOp::kNe:
      return "!=";
    case Expr::CmpOp::kLt:
      return "<";
    case Expr::CmpOp::kLe:
      return "<=";
    case Expr::CmpOp::kGt:
      return ">";
    case Expr::CmpOp::kGe:
      return ">=";
  }
  return "?";
}

class ColumnExpr : public Expr {
 public:
  explicit ColumnExpr(std::size_t idx) : idx_(idx) {}
  Kind kind() const override { return Kind::kColumn; }
  ColumnType OutputType(const std::vector<ColumnType>& input) const override {
    PIDX_CHECK(idx_ < input.size());
    return input[idx_];
  }
  ColumnVector Eval(const Batch& batch) const override {
    PIDX_CHECK(idx_ < batch.columns.size());
    return batch.columns[idx_];  // copy; acceptable at our scale
  }
  std::string ToString() const override { return "#" + std::to_string(idx_); }
  int column_index() const override { return static_cast<int>(idx_); }

 private:
  std::size_t idx_;
};

class ConstExpr : public Expr {
 public:
  explicit ConstExpr(Value v) : v_(std::move(v)) {}
  Kind kind() const override { return Kind::kConst; }
  ColumnType OutputType(const std::vector<ColumnType>&) const override {
    return v_.type();
  }
  ColumnVector Eval(const Batch& batch) const override {
    ColumnVector out(v_.type());
    const std::size_t n = batch.num_rows();
    for (std::size_t i = 0; i < n; ++i) out.AppendValue(v_);
    return out;
  }
  std::string ToString() const override {
    if (v_.type() == ColumnType::kString) return "'" + v_.AsString() + "'";
    return v_.ToString();
  }
  const Value& value() const { return v_; }

 private:
  Value v_;
};

bool CmpValues(Expr::CmpOp op, int cmp3) {
  switch (op) {
    case Expr::CmpOp::kEq:
      return cmp3 == 0;
    case Expr::CmpOp::kNe:
      return cmp3 != 0;
    case Expr::CmpOp::kLt:
      return cmp3 < 0;
    case Expr::CmpOp::kLe:
      return cmp3 <= 0;
    case Expr::CmpOp::kGt:
      return cmp3 > 0;
    case Expr::CmpOp::kGe:
      return cmp3 >= 0;
  }
  return false;
}

class CmpExpr : public Expr {
 public:
  CmpExpr(CmpOp op, ExprPtr l, ExprPtr r)
      : op_(op), l_(std::move(l)), r_(std::move(r)) {}
  Kind kind() const override { return Kind::kCmp; }
  ColumnType OutputType(const std::vector<ColumnType>&) const override {
    return ColumnType::kInt64;
  }
  ColumnVector Eval(const Batch& batch) const override {
    ColumnVector lv = l_->Eval(batch);
    ColumnVector rv = r_->Eval(batch);
    PIDX_CHECK_MSG(lv.type == rv.type, "comparison operand type mismatch");
    ColumnVector out(ColumnType::kInt64);
    const std::size_t n = lv.size();
    out.i64.reserve(n);
    switch (lv.type) {
      case ColumnType::kInt64:
        for (std::size_t i = 0; i < n; ++i) {
          const int c = lv.i64[i] < rv.i64[i] ? -1 : (lv.i64[i] > rv.i64[i]);
          out.i64.push_back(CmpValues(op_, c));
        }
        break;
      case ColumnType::kDouble:
        for (std::size_t i = 0; i < n; ++i) {
          const int c = lv.f64[i] < rv.f64[i] ? -1 : (lv.f64[i] > rv.f64[i]);
          out.i64.push_back(CmpValues(op_, c));
        }
        break;
      case ColumnType::kString:
        for (std::size_t i = 0; i < n; ++i) {
          const int c = lv.str[i].compare(rv.str[i]);
          out.i64.push_back(CmpValues(op_, c < 0 ? -1 : (c > 0 ? 1 : 0)));
        }
        break;
    }
    return out;
  }
  std::string ToString() const override {
    return "(" + l_->ToString() + " " + CmpOpName(op_) + " " +
           r_->ToString() + ")";
  }

 private:
  CmpOp op_;
  ExprPtr l_, r_;
};

enum class BoolOp { kAnd, kOr, kNot };

class BoolExpr : public Expr {
 public:
  BoolExpr(BoolOp op, ExprPtr l, ExprPtr r)
      : op_(op), l_(std::move(l)), r_(std::move(r)) {}
  Kind kind() const override {
    switch (op_) {
      case BoolOp::kAnd:
        return Kind::kAnd;
      case BoolOp::kOr:
        return Kind::kOr;
      case BoolOp::kNot:
        return Kind::kNot;
    }
    return Kind::kNot;
  }
  ColumnType OutputType(const std::vector<ColumnType>&) const override {
    return ColumnType::kInt64;
  }
  ColumnVector Eval(const Batch& batch) const override {
    ColumnVector lv = l_->Eval(batch);
    ColumnVector out(ColumnType::kInt64);
    const std::size_t n = lv.size();
    out.i64.reserve(n);
    if (op_ == BoolOp::kNot) {
      for (std::size_t i = 0; i < n; ++i) out.i64.push_back(lv.i64[i] == 0);
      return out;
    }
    ColumnVector rv = r_->Eval(batch);
    if (op_ == BoolOp::kAnd) {
      for (std::size_t i = 0; i < n; ++i) {
        out.i64.push_back((lv.i64[i] != 0) && (rv.i64[i] != 0));
      }
    } else {
      for (std::size_t i = 0; i < n; ++i) {
        out.i64.push_back((lv.i64[i] != 0) || (rv.i64[i] != 0));
      }
    }
    return out;
  }
  std::string ToString() const override {
    switch (op_) {
      case BoolOp::kAnd:
        return "(" + l_->ToString() + " AND " + r_->ToString() + ")";
      case BoolOp::kOr:
        return "(" + l_->ToString() + " OR " + r_->ToString() + ")";
      case BoolOp::kNot:
        return "(NOT " + l_->ToString() + ")";
    }
    return "?";
  }

 private:
  BoolOp op_;
  ExprPtr l_, r_;
};

enum class ArithOp { kAdd, kSub, kMul, kDiv };

class ArithExpr : public Expr {
 public:
  ArithExpr(ArithOp op, ExprPtr l, ExprPtr r)
      : op_(op), l_(std::move(l)), r_(std::move(r)) {}
  Kind kind() const override {
    switch (op_) {
      case ArithOp::kAdd:
        return Kind::kAdd;
      case ArithOp::kSub:
        return Kind::kSub;
      case ArithOp::kMul:
        return Kind::kMul;
      case ArithOp::kDiv:
        return Kind::kDiv;
    }
    return Kind::kAdd;
  }
  ColumnType OutputType(const std::vector<ColumnType>& input) const override {
    const ColumnType lt = l_->OutputType(input);
    const ColumnType rt = r_->OutputType(input);
    PIDX_CHECK(lt != ColumnType::kString && rt != ColumnType::kString);
    return (lt == ColumnType::kDouble || rt == ColumnType::kDouble)
               ? ColumnType::kDouble
               : ColumnType::kInt64;
  }
  ColumnVector Eval(const Batch& batch) const override {
    ColumnVector lv = l_->Eval(batch);
    ColumnVector rv = r_->Eval(batch);
    const std::size_t n = lv.size();
    const bool dbl =
        lv.type == ColumnType::kDouble || rv.type == ColumnType::kDouble;
    auto lval = [&](std::size_t i) {
      return lv.type == ColumnType::kDouble ? lv.f64[i]
                                            : static_cast<double>(lv.i64[i]);
    };
    auto rval = [&](std::size_t i) {
      return rv.type == ColumnType::kDouble ? rv.f64[i]
                                            : static_cast<double>(rv.i64[i]);
    };
    if (dbl) {
      ColumnVector out(ColumnType::kDouble);
      out.f64.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        const double a = lval(i), b = rval(i);
        switch (op_) {
          case ArithOp::kAdd:
            out.f64.push_back(a + b);
            break;
          case ArithOp::kSub:
            out.f64.push_back(a - b);
            break;
          case ArithOp::kMul:
            out.f64.push_back(a * b);
            break;
          case ArithOp::kDiv:
            out.f64.push_back(a / b);
            break;
        }
      }
      return out;
    }
    ColumnVector out(ColumnType::kInt64);
    out.i64.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      const std::int64_t a = lv.i64[i], b = rv.i64[i];
      switch (op_) {
        case ArithOp::kAdd:
          out.i64.push_back(a + b);
          break;
        case ArithOp::kSub:
          out.i64.push_back(a - b);
          break;
        case ArithOp::kMul:
          out.i64.push_back(a * b);
          break;
        case ArithOp::kDiv:
          out.i64.push_back(b == 0 ? 0 : a / b);
          break;
      }
    }
    return out;
  }
  std::string ToString() const override {
    const char* op = "?";
    switch (op_) {
      case ArithOp::kAdd:
        op = "+";
        break;
      case ArithOp::kSub:
        op = "-";
        break;
      case ArithOp::kMul:
        op = "*";
        break;
      case ArithOp::kDiv:
        op = "/";
        break;
    }
    return "(" + l_->ToString() + " " + op + " " + r_->ToString() + ")";
  }

 private:
  ArithOp op_;
  ExprPtr l_, r_;
};

/// INT64 <-> DOUBLE conversion. Casting to the operand's own type copies
/// it through; string casts are a binder-time error and trip the check.
class CastExpr : public Expr {
 public:
  CastExpr(ExprPtr e, ColumnType to) : e_(std::move(e)), to_(to) {
    PIDX_CHECK_MSG(to_ != ColumnType::kString,
                   "casts to string are not supported");
  }
  Kind kind() const override { return Kind::kCast; }
  ColumnType OutputType(const std::vector<ColumnType>&) const override {
    return to_;
  }
  ColumnVector Eval(const Batch& batch) const override {
    ColumnVector in = e_->Eval(batch);
    if (in.type == to_) return in;
    PIDX_CHECK_MSG(in.type != ColumnType::kString,
                   "casts from string are not supported");
    ColumnVector out(to_);
    const std::size_t n = in.size();
    if (to_ == ColumnType::kDouble) {
      out.f64.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        out.f64.push_back(static_cast<double>(in.i64[i]));
      }
    } else {
      out.i64.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        out.i64.push_back(static_cast<std::int64_t>(in.f64[i]));
      }
    }
    return out;
  }
  std::string ToString() const override {
    return std::string(ColumnTypeName(to_)) + "(" + e_->ToString() + ")";
  }

 private:
  ExprPtr e_;
  ColumnType to_;
};

/// A prepared-statement `?` slot; see ParamRef() in the header.
class ParamExpr : public Expr {
 public:
  ParamExpr(std::shared_ptr<const std::vector<Value>> slots,
            std::size_t ordinal, ColumnType type)
      : slots_(std::move(slots)), ordinal_(ordinal), type_(type) {}
  Kind kind() const override { return Kind::kParam; }
  ColumnType OutputType(const std::vector<ColumnType>&) const override {
    return type_;
  }
  ColumnVector Eval(const Batch& batch) const override {
    PIDX_CHECK_MSG(ordinal_ < slots_->size(),
                   "parameter slot not bound before execution");
    Value v = (*slots_)[ordinal_];
    if (v.type() == ColumnType::kInt64 && type_ == ColumnType::kDouble) {
      v = Value(static_cast<double>(v.AsInt64()));
    }
    PIDX_CHECK_MSG(v.type() == type_, "parameter value type mismatch");
    ColumnVector out(type_);
    const std::size_t n = batch.num_rows();
    for (std::size_t i = 0; i < n; ++i) out.AppendValue(v);
    return out;
  }
  std::string ToString() const override {
    return "?" + std::to_string(ordinal_ + 1);
  }

 private:
  std::shared_ptr<const std::vector<Value>> slots_;
  std::size_t ordinal_;
  ColumnType type_;
};

}  // namespace

ExprPtr Col(std::size_t idx) { return std::make_shared<ColumnExpr>(idx); }
ExprPtr ConstInt(std::int64_t v) {
  return std::make_shared<ConstExpr>(Value(v));
}
ExprPtr ConstDouble(double v) { return std::make_shared<ConstExpr>(Value(v)); }
ExprPtr ConstString(std::string v) {
  return std::make_shared<ConstExpr>(Value(std::move(v)));
}
ExprPtr Cmp(Expr::CmpOp op, ExprPtr l, ExprPtr r) {
  return std::make_shared<CmpExpr>(op, std::move(l), std::move(r));
}
ExprPtr Eq(ExprPtr l, ExprPtr r) {
  return Cmp(Expr::CmpOp::kEq, std::move(l), std::move(r));
}
ExprPtr Ne(ExprPtr l, ExprPtr r) {
  return Cmp(Expr::CmpOp::kNe, std::move(l), std::move(r));
}
ExprPtr Lt(ExprPtr l, ExprPtr r) {
  return Cmp(Expr::CmpOp::kLt, std::move(l), std::move(r));
}
ExprPtr Le(ExprPtr l, ExprPtr r) {
  return Cmp(Expr::CmpOp::kLe, std::move(l), std::move(r));
}
ExprPtr Gt(ExprPtr l, ExprPtr r) {
  return Cmp(Expr::CmpOp::kGt, std::move(l), std::move(r));
}
ExprPtr Ge(ExprPtr l, ExprPtr r) {
  return Cmp(Expr::CmpOp::kGe, std::move(l), std::move(r));
}
ExprPtr And(ExprPtr l, ExprPtr r) {
  return std::make_shared<BoolExpr>(BoolOp::kAnd, std::move(l), std::move(r));
}
ExprPtr Or(ExprPtr l, ExprPtr r) {
  return std::make_shared<BoolExpr>(BoolOp::kOr, std::move(l), std::move(r));
}
ExprPtr Not(ExprPtr e) {
  return std::make_shared<BoolExpr>(BoolOp::kNot, std::move(e), nullptr);
}
ExprPtr Add(ExprPtr l, ExprPtr r) {
  return std::make_shared<ArithExpr>(ArithOp::kAdd, std::move(l), std::move(r));
}
ExprPtr Sub(ExprPtr l, ExprPtr r) {
  return std::make_shared<ArithExpr>(ArithOp::kSub, std::move(l), std::move(r));
}
ExprPtr Mul(ExprPtr l, ExprPtr r) {
  return std::make_shared<ArithExpr>(ArithOp::kMul, std::move(l), std::move(r));
}
ExprPtr Div(ExprPtr l, ExprPtr r) {
  return std::make_shared<ArithExpr>(ArithOp::kDiv, std::move(l), std::move(r));
}

ExprPtr Cast(ExprPtr e, ColumnType to) {
  return std::make_shared<CastExpr>(std::move(e), to);
}

ExprPtr ParamRef(std::shared_ptr<const std::vector<Value>> slots,
                 std::size_t ordinal, ColumnType type) {
  return std::make_shared<ParamExpr>(std::move(slots), ordinal, type);
}

ExprPtr InList(ExprPtr x, const std::vector<Value>& values) {
  PIDX_CHECK(!values.empty());
  ExprPtr acc;
  for (const Value& v : values) {
    ExprPtr c = Eq(x, std::make_shared<ConstExpr>(v));
    acc = acc ? Or(std::move(acc), std::move(c)) : std::move(c);
  }
  return acc;
}

}  // namespace patchindex
