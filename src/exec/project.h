#ifndef PATCHINDEX_EXEC_PROJECT_H_
#define PATCHINDEX_EXEC_PROJECT_H_

#include "exec/expression.h"
#include "exec/operator.h"

namespace patchindex {

/// Computes one output column per expression; rowIDs pass through.
class ProjectOperator : public Operator {
 public:
  ProjectOperator(OperatorPtr child, std::vector<ExprPtr> exprs);

  std::vector<ColumnType> OutputTypes() const override;
  void Open() override { child_->Open(); }
  bool Next(Batch* out) override;
  void Close() override { child_->Close(); }

 private:
  OperatorPtr child_;
  std::vector<ExprPtr> exprs_;
};

}  // namespace patchindex

#endif  // PATCHINDEX_EXEC_PROJECT_H_
