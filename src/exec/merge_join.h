#ifndef PATCHINDEX_EXEC_MERGE_JOIN_H_
#define PATCHINDEX_EXEC_MERGE_JOIN_H_

#include <cstdint>
#include <vector>

#include "exec/operator.h"

namespace patchindex {

/// Streaming equi merge join on INT64 keys; both inputs must be sorted
/// ascending on their key column. This is the operator the PatchIndex
/// join optimization substitutes for the HashJoin in the patch-excluded
/// subtree of a join on a nearly sorted column (paper §3.3, Figure 2
/// right). Neither input is materialized; only the current equal-key run
/// of the right side is buffered. Output layout: left columns then right
/// columns; rowIDs from the left input.
class MergeJoinOperator : public Operator {
 public:
  MergeJoinOperator(OperatorPtr left, OperatorPtr right, std::size_t left_key,
                    std::size_t right_key);

  std::vector<ColumnType> OutputTypes() const override;
  void Open() override;
  bool Next(Batch* out) override;
  void Close() override;

 private:
  struct Cursor {
    Batch batch;
    std::size_t pos = 0;
    bool done = false;
  };
  /// Ensures the cursor has a current row; false when exhausted.
  bool Refill(Operator& child, Cursor& cur);
  std::int64_t LeftKey() const {
    return left_cur_.batch.columns[left_key_].i64[left_cur_.pos];
  }

  OperatorPtr left_;
  OperatorPtr right_;
  std::size_t left_key_;
  std::size_t right_key_;

  Cursor left_cur_;
  Cursor right_cur_;
  // Buffered equal-key run of the right side, replayed for every left row
  // carrying the same key.
  Batch run_;
  std::size_t run_pos_ = 0;
  std::int64_t run_key_ = 0;
  bool in_run_ = false;
};

}  // namespace patchindex

#endif  // PATCHINDEX_EXEC_MERGE_JOIN_H_
