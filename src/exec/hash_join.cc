#include "exec/hash_join.h"

#include <utility>

#include "common/check.h"
#include "obs/mem_tracker.h"

namespace patchindex {

void JoinHashTable::Reset(const std::vector<ColumnType>& build_types) {
  rows_.Reset(build_types);
  unique_.clear();
  chained_.clear();
}

void JoinHashTable::Reserve(std::size_t n) {
  // Rows land in exactly one of the two structures; reserving both for
  // `n` wastes a little space but never rehashes.
  unique_.reserve(n);
  chained_.reserve(n);
}

void JoinHashTable::AddRow(const Batch& src, std::size_t row,
                           std::int64_t key, bool unique_hint) {
  const std::size_t idx = rows_.num_rows();
  rows_.AppendRowFrom(src, row);
  if (unique_hint) {
    auto [it, inserted] = unique_.emplace(key, idx);
    if (inserted) return;
    // Violated promise (a pending modify can duplicate a NUC key before
    // the index is refreshed): demote the resident occurrence to the
    // chained path alongside the new one; probes check both structures,
    // so every copy is still found.
    chained_.emplace(key, it->second);
    unique_.erase(it);
  }
  chained_.emplace(key, idx);
}

HashJoinOperator::HashJoinOperator(OperatorPtr build, OperatorPtr probe,
                                   std::size_t build_key,
                                   std::size_t probe_key,
                                   HashJoinOptions options)
    : build_(std::move(build)),
      probe_(std::move(probe)),
      build_key_(build_key),
      probe_key_(probe_key),
      options_(std::move(options)) {
  PIDX_CHECK(build_->OutputTypes().at(build_key_) == ColumnType::kInt64);
  PIDX_CHECK(probe_->OutputTypes().at(probe_key_) == ColumnType::kInt64);
}

std::vector<ColumnType> HashJoinOperator::OutputTypes() const {
  std::vector<ColumnType> types = probe_->OutputTypes();
  for (ColumnType t : build_->OutputTypes()) types.push_back(t);
  if (options_.append_build_rowid_column) {
    types.push_back(ColumnType::kInt64);
  }
  return types;
}

void HashJoinOperator::Open() {
  // Build phase: materialize first, then index with a full reserve (the
  // row count is unknown until the child is drained).
  build_->Open();
  table_.Reset(build_->OutputTypes());
  obs::OpMemory mem("HashJoin build", mem_stats_);
  Batch all;
  all.Reset(build_->OutputTypes());
  Batch in;
  while (build_->Next(&in)) {
    mem.Add(ApproxBytes(in));
    for (std::size_t i = 0; i < in.num_rows(); ++i) all.AppendRowFrom(in, i);
  }
  build_->Close();
  const RowIdFilter* nuc = options_.build_unique_filter;
  table_.Reserve(all.num_rows());
  const std::uint64_t input_bytes = mem.total();
  const auto& keys = all.columns[build_key_].i64;
  for (std::size_t i = 0; i < all.num_rows(); ++i) {
    const bool hint = nuc != nullptr && all.row_ids[i] < nuc->NumRows() &&
                      !nuc->IsPatch(all.row_ids[i]);
    table_.AddRow(all, i, keys[i], hint);
    if ((i & 1023u) == 1023u) {
      // Cheap running estimate (the copied prefix of the input plus the
      // per-entry index cost); the exact content-based size is settled
      // once after the loop — recomputing it per kibirow would be O(n²).
      mem.GrowTo(input_bytes +
                 (input_bytes * (i + 1)) / all.num_rows() +
                 (i + 1) * JoinHashTable::kEntryBytes);
    }
  }
  mem.GrowTo(input_bytes + table_.ApproxBytes());

  // Dynamic range propagation: publish the build key range *before*
  // opening the probe side, whose scan prunes blocks against it.
  if (options_.publish_build_range) {
    *options_.publish_build_range = DynamicRange{};
    for (std::int64_t k : table_.rows().columns[build_key_].i64) {
      options_.publish_build_range->Observe(k);
    }
  }
  probe_->Open();
  probe_pos_ = 0;
  probe_done_ = false;
  probe_batch_.Clear();
}

bool HashJoinOperator::Next(Batch* out) {
  out->Reset(OutputTypes());
  const std::size_t probe_width = probe_->OutputTypes().size();
  const Batch& build_data = table_.rows();
  const std::size_t build_width = build_data.columns.size();
  while (out->num_rows() < kBatchSize) {
    if (probe_pos_ >= probe_batch_.num_rows()) {
      if (probe_done_ || !probe_->Next(&probe_batch_)) {
        probe_done_ = true;
        break;
      }
      probe_pos_ = 0;
      continue;
    }
    const std::size_t i = probe_pos_++;
    const std::int64_t key = probe_batch_.columns[probe_key_].i64[i];
    table_.ForEachMatch(key, [&](std::size_t b) {
      for (std::size_t c = 0; c < probe_width; ++c) {
        out->columns[c].AppendFrom(probe_batch_.columns[c], i);
      }
      for (std::size_t c = 0; c < build_width; ++c) {
        out->columns[probe_width + c].AppendFrom(build_data.columns[c], b);
      }
      if (options_.append_build_rowid_column) {
        out->columns[probe_width + build_width].i64.push_back(
            static_cast<std::int64_t>(build_data.row_ids[b]));
      }
      out->row_ids.push_back(probe_batch_.row_ids[i]);
    });
  }
  return out->num_rows() > 0;
}

void HashJoinOperator::Close() {
  probe_->Close();
  table_.Reset({});
}

}  // namespace patchindex
