#include "exec/hash_join.h"

#include <utility>

#include "common/check.h"

namespace patchindex {

HashJoinOperator::HashJoinOperator(OperatorPtr build, OperatorPtr probe,
                                   std::size_t build_key,
                                   std::size_t probe_key,
                                   HashJoinOptions options)
    : build_(std::move(build)),
      probe_(std::move(probe)),
      build_key_(build_key),
      probe_key_(probe_key),
      options_(std::move(options)) {
  PIDX_CHECK(build_->OutputTypes().at(build_key_) == ColumnType::kInt64);
  PIDX_CHECK(probe_->OutputTypes().at(probe_key_) == ColumnType::kInt64);
}

std::vector<ColumnType> HashJoinOperator::OutputTypes() const {
  std::vector<ColumnType> types = probe_->OutputTypes();
  for (ColumnType t : build_->OutputTypes()) types.push_back(t);
  if (options_.append_build_rowid_column) {
    types.push_back(ColumnType::kInt64);
  }
  return types;
}

void HashJoinOperator::Open() {
  // Build phase.
  build_->Open();
  build_data_.Reset(build_->OutputTypes());
  Batch in;
  while (build_->Next(&in)) {
    for (std::size_t i = 0; i < in.num_rows(); ++i) {
      build_data_.AppendRowFrom(in, i);
    }
  }
  build_->Close();
  table_.clear();
  const auto& keys = build_data_.columns[build_key_].i64;
  table_.reserve(keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) table_.emplace(keys[i], i);

  // Dynamic range propagation: publish the build key range *before*
  // opening the probe side, whose scan prunes blocks against it.
  if (options_.publish_build_range) {
    *options_.publish_build_range = DynamicRange{};
    for (std::int64_t k : keys) options_.publish_build_range->Observe(k);
  }
  probe_->Open();
  probe_pos_ = 0;
  probe_done_ = false;
  probe_batch_.Clear();
}

bool HashJoinOperator::Next(Batch* out) {
  out->Reset(OutputTypes());
  const std::size_t probe_width = probe_->OutputTypes().size();
  const std::size_t build_width = build_data_.columns.size();
  while (out->num_rows() < kBatchSize) {
    if (probe_pos_ >= probe_batch_.num_rows()) {
      if (probe_done_ || !probe_->Next(&probe_batch_)) {
        probe_done_ = true;
        break;
      }
      probe_pos_ = 0;
      continue;
    }
    const std::size_t i = probe_pos_++;
    const std::int64_t key = probe_batch_.columns[probe_key_].i64[i];
    auto [first, last] = table_.equal_range(key);
    for (auto it = first; it != last; ++it) {
      const std::size_t b = it->second;
      for (std::size_t c = 0; c < probe_width; ++c) {
        out->columns[c].AppendFrom(probe_batch_.columns[c], i);
      }
      for (std::size_t c = 0; c < build_width; ++c) {
        out->columns[probe_width + c].AppendFrom(build_data_.columns[c], b);
      }
      if (options_.append_build_rowid_column) {
        out->columns[probe_width + build_width].i64.push_back(
            static_cast<std::int64_t>(build_data_.row_ids[b]));
      }
      out->row_ids.push_back(probe_batch_.row_ids[i]);
    }
  }
  return out->num_rows() > 0;
}

void HashJoinOperator::Close() {
  probe_->Close();
  table_.clear();
  build_data_.Clear();
}

}  // namespace patchindex
