#ifndef PATCHINDEX_EXEC_BATCH_H_
#define PATCHINDEX_EXEC_BATCH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/types.h"
#include "storage/value.h"

namespace patchindex {

class Column;

/// Tuples processed per operator invocation (X100-style vector size).
inline constexpr std::size_t kBatchSize = 1024;

/// A typed vector of cell values flowing between operators. Exactly one
/// backing vector is active, selected by `type`.
struct ColumnVector {
  ColumnType type = ColumnType::kInt64;
  std::vector<std::int64_t> i64;
  std::vector<double> f64;
  std::vector<std::string> str;

  explicit ColumnVector(ColumnType t = ColumnType::kInt64) : type(t) {}

  std::size_t size() const {
    switch (type) {
      case ColumnType::kInt64:
        return i64.size();
      case ColumnType::kDouble:
        return f64.size();
      case ColumnType::kString:
        return str.size();
    }
    return 0;
  }

  void Clear() {
    i64.clear();
    f64.clear();
    str.clear();
  }

  void AppendValue(const Value& v);
  /// Copies cell `idx` of `src` (same type) to the end of this vector.
  void AppendFrom(const ColumnVector& src, std::size_t idx);
  /// Copies cell `row` of a storage column (same type), without boxing.
  void AppendFromColumn(const Column& src, RowId row);
  Value GetValue(std::size_t idx) const;
};

/// A horizontal slice of tuples: one ColumnVector per output column plus
/// the originating rowIDs (filled by scans; the PatchIndex selection
/// operator decides pass/drop purely on the rowID, which is why its
/// per-tuple overhead is independent of the data types — paper §3.5).
struct Batch {
  std::vector<ColumnVector> columns;
  std::vector<RowId> row_ids;

  std::size_t num_rows() const { return row_ids.size(); }

  void Reset(const std::vector<ColumnType>& types) {
    columns.clear();
    for (ColumnType t : types) columns.emplace_back(t);
    row_ids.clear();
  }

  void Clear() {
    for (auto& c : columns) c.Clear();
    row_ids.clear();
  }

  /// Appends row `idx` of `src` (same layout).
  void AppendRowFrom(const Batch& src, std::size_t idx) {
    PIDX_DCHECK(columns.size() == src.columns.size());
    for (std::size_t c = 0; c < columns.size(); ++c) {
      columns[c].AppendFrom(src.columns[c], idx);
    }
    row_ids.push_back(src.row_ids[idx]);
  }
};

/// Content-based size estimate for memory accounting: 8 bytes per fixed
/// cell, object header + character count per string. Deliberately a
/// function of the values alone (not vector capacities), so splitting a
/// batch across workers sums to the same total as keeping it whole —
/// which keeps `mem=` in EXPLAIN ANALYZE deterministic under morsel
/// scheduling.
inline std::uint64_t ApproxBytes(const ColumnVector& v) {
  switch (v.type) {
    case ColumnType::kInt64:
      return static_cast<std::uint64_t>(v.i64.size()) * sizeof(std::int64_t);
    case ColumnType::kDouble:
      return static_cast<std::uint64_t>(v.f64.size()) * sizeof(double);
    case ColumnType::kString: {
      std::uint64_t bytes =
          static_cast<std::uint64_t>(v.str.size()) * sizeof(std::string);
      for (const std::string& s : v.str) bytes += s.size();
      return bytes;
    }
  }
  return 0;
}

inline std::uint64_t ApproxBytes(const Batch& b) {
  std::uint64_t bytes =
      static_cast<std::uint64_t>(b.row_ids.size()) * sizeof(RowId);
  for (const ColumnVector& c : b.columns) bytes += ApproxBytes(c);
  return bytes;
}

}  // namespace patchindex

#endif  // PATCHINDEX_EXEC_BATCH_H_
