#include "exec/operator.h"

#include "obs/mem_tracker.h"

namespace patchindex {

Batch Collect(Operator& op) {
  op.Open();
  Batch all;
  all.Reset(op.OutputTypes());
  // Result materialization is charged to the thread's query tracker (if
  // any) so serial plans are budgeted too, not just the morsel path.
  obs::OpMemory mem("Materialize");
  Batch in;
  while (op.Next(&in)) {
    mem.Add(ApproxBytes(in));
    for (std::size_t i = 0; i < in.num_rows(); ++i) all.AppendRowFrom(in, i);
  }
  op.Close();
  return all;
}

std::uint64_t CountRows(Operator& op) {
  op.Open();
  std::uint64_t total = 0;
  Batch in;
  while (op.Next(&in)) total += in.num_rows();
  op.Close();
  return total;
}

bool InMemorySource::Next(Batch* out) {
  out->Reset(OutputTypes());
  while (out->num_rows() < kBatchSize && pos_ < data_.num_rows()) {
    out->AppendRowFrom(data_, pos_++);
  }
  return out->num_rows() > 0;
}

}  // namespace patchindex
