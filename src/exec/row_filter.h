#ifndef PATCHINDEX_EXEC_ROW_FILTER_H_
#define PATCHINDEX_EXEC_ROW_FILTER_H_

#include <cstdint>
#include <functional>

#include "common/types.h"

namespace patchindex {

/// Membership test over rowIDs. The PatchIndex implements this interface
/// (backed by the sharded bitmap or the identifier list); the PatchIndex
/// scan's selection operator consults it to split the dataflow into the
/// constraint-satisfying tuples and the exceptions (paper §3.3).
class RowIdFilter {
 public:
  virtual ~RowIdFilter() = default;

  /// Number of rows the filter covers (the indexed table's cardinality).
  virtual std::uint64_t NumRows() const = 0;

  /// Number of rows marked as patches.
  virtual std::uint64_t NumPatches() const = 0;

  /// True when `row` is an exception to the constraint.
  virtual bool IsPatch(RowId row) const = 0;

  /// Invokes fn(row) for every patch in [begin, end), ascending. Lets the
  /// PatchIndex scan process the gaps between patches as bulk ranges.
  virtual void ForEachPatchInRange(
      RowId begin, RowId end,
      const std::function<void(RowId)>& fn) const = 0;
};

/// Selection modes of the PatchIndex scan (paper §3.3).
enum class PatchSelectMode {
  kExcludePatches,  // pass only tuples satisfying the constraint
  kUsePatches,      // pass only the exceptions
};

}  // namespace patchindex

#endif  // PATCHINDEX_EXEC_ROW_FILTER_H_
