#ifndef PATCHINDEX_EXEC_EXPRESSION_H_
#define PATCHINDEX_EXEC_EXPRESSION_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "exec/batch.h"

namespace patchindex {

/// Scalar expression over the columns of a batch. Comparisons and boolean
/// connectives produce INT64 0/1 vectors, which SelectOperator interprets
/// as selection masks; arithmetic promotes to DOUBLE when either operand
/// is DOUBLE. Rich enough for the TPC-H subset (Q3/Q7/Q12), the
/// update-handling queries, and the predicates the SQL binder emits.
class Expr {
 public:
  enum class Kind {
    kColumn,
    kConst,
    kCmp,
    kAnd,
    kOr,
    kNot,
    kAdd,
    kSub,
    kMul,
    kDiv,
    kCast,
    kParam,
  };
  enum class CmpOp { kEq, kNe, kLt, kLe, kGt, kGe };

  virtual ~Expr() = default;
  virtual Kind kind() const = 0;
  virtual ColumnType OutputType(const std::vector<ColumnType>& input) const = 0;
  virtual ColumnVector Eval(const Batch& batch) const = 0;

  /// Human-readable rendering — `(#0 = 42)`, `(#1 AND (NOT #2))` — used by
  /// EXPLAIN output and the SQL front-end tests. Column references render
  /// as `#<input index>`; parameters as `?<ordinal+1>`.
  virtual std::string ToString() const = 0;

  /// For kColumn expressions: the referenced input column; -1 otherwise.
  /// Lets the optimizer trace column provenance through projections.
  virtual int column_index() const { return -1; }
};

using ExprPtr = std::shared_ptr<Expr>;

/// References input column `idx`.
ExprPtr Col(std::size_t idx);
ExprPtr ConstInt(std::int64_t v);
ExprPtr ConstDouble(double v);
ExprPtr ConstString(std::string v);
ExprPtr Cmp(Expr::CmpOp op, ExprPtr l, ExprPtr r);
ExprPtr Eq(ExprPtr l, ExprPtr r);
ExprPtr Ne(ExprPtr l, ExprPtr r);
ExprPtr Lt(ExprPtr l, ExprPtr r);
ExprPtr Le(ExprPtr l, ExprPtr r);
ExprPtr Gt(ExprPtr l, ExprPtr r);
ExprPtr Ge(ExprPtr l, ExprPtr r);
ExprPtr And(ExprPtr l, ExprPtr r);
ExprPtr Or(ExprPtr l, ExprPtr r);
ExprPtr Not(ExprPtr e);
ExprPtr Add(ExprPtr l, ExprPtr r);
ExprPtr Sub(ExprPtr l, ExprPtr r);
ExprPtr Mul(ExprPtr l, ExprPtr r);
ExprPtr Div(ExprPtr l, ExprPtr r);

/// x IN (v1, v2, ...) as a disjunction of equalities.
ExprPtr InList(ExprPtr x, const std::vector<Value>& values);

/// Converts `e` to `to` (INT64 <-> DOUBLE; casting to the expression's own
/// type is the identity). The SQL binder inserts casts to reconcile mixed
/// INT64/DOUBLE comparisons and assignments; string casts are not
/// supported and must be rejected at binding time.
ExprPtr Cast(ExprPtr e, ColumnType to);

/// A `?` placeholder of a prepared statement: evaluates to the current
/// value of slot `ordinal` in the shared `slots` vector, coerced to
/// `type` (INT64 widens to DOUBLE). The runner writes the slots before
/// each execution, so one bound plan serves every parameter binding.
ExprPtr ParamRef(std::shared_ptr<const std::vector<Value>> slots,
                 std::size_t ordinal, ColumnType type);

}  // namespace patchindex

#endif  // PATCHINDEX_EXEC_EXPRESSION_H_
