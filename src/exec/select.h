#ifndef PATCHINDEX_EXEC_SELECT_H_
#define PATCHINDEX_EXEC_SELECT_H_

#include "exec/expression.h"
#include "exec/operator.h"
#include "exec/row_filter.h"

namespace patchindex {

/// Generic predicate selection: keeps tuples whose predicate evaluates to
/// a non-zero INT64.
class SelectOperator : public Operator {
 public:
  SelectOperator(OperatorPtr child, ExprPtr predicate);

  std::vector<ColumnType> OutputTypes() const override {
    return child_->OutputTypes();
  }
  void Open() override { child_->Open(); }
  bool Next(Batch* out) override;
  void Close() override { child_->Close(); }

 private:
  OperatorPtr child_;
  ExprPtr predicate_;
};

/// The PatchIndex scan's selection operator (paper §3.3): merges the
/// materialized patch information on-the-fly into the dataflow, passing
/// either the constraint-satisfying tuples (exclude_patches) or the
/// exceptions (use_patches). The pass/drop decision is based solely on the
/// tuple's rowID, so the per-tuple overhead is fixed and independent of
/// the data types (paper §3.5).
class PatchSelectOperator : public Operator {
 public:
  PatchSelectOperator(OperatorPtr child, const RowIdFilter* filter,
                      PatchSelectMode mode);

  std::vector<ColumnType> OutputTypes() const override {
    return child_->OutputTypes();
  }
  void Open() override { child_->Open(); }
  bool Next(Batch* out) override;
  void Close() override { child_->Close(); }

 private:
  OperatorPtr child_;
  const RowIdFilter* filter_;
  PatchSelectMode mode_;
};

}  // namespace patchindex

#endif  // PATCHINDEX_EXEC_SELECT_H_
