#include "optimizer/cost_model.h"

#include <algorithm>
#include <cmath>

namespace patchindex {

double CostModel::Log2(double n) { return std::log2(std::max(2.0, n)); }

double CostModel::DistinctPlain(double n) const {
  return n * (w_.scan + w_.hash_agg);
}

double CostModel::DistinctPatched(double n, double e) const {
  // Both cloned subtrees scan and filter the input; only the patches
  // aggregate.
  const double patches = e * n;
  return 2 * n * (w_.scan + w_.patch_select) + patches * w_.hash_agg +
         n * w_.union_op;
}

double CostModel::SortPlain(double n) const {
  return n * w_.scan + n * Log2(n) * w_.sort_per_cmp;
}

double CostModel::SortPatched(double n, double e) const {
  const double patches = e * n;
  return 2 * n * (w_.scan + w_.patch_select) +
         patches * Log2(patches) * w_.sort_per_cmp + n * w_.merge;
}

double CostModel::JoinPlain(double n_fact, double n_x) const {
  // The optimizer builds on the smaller side.
  const double build = std::min(n_fact, n_x);
  const double probe = std::max(n_fact, n_x);
  return n_fact * w_.scan + build * w_.hash_join_build +
         probe * w_.hash_join_probe;
}

double CostModel::JoinPatched(double n_fact, double n_x, double e) const {
  const double patches = e * n_fact;
  // Both cloned subtrees re-derive the fact side; merge join over the
  // non-patches + X; hash join built on the patches (lowest cardinality)
  // probing the buffered X; X is materialized once into the reuse buffer.
  return 2 * n_fact * (w_.scan + w_.patch_select) +
         ((1.0 - e) * n_fact + n_x) * w_.merge_join +
         patches * w_.hash_join_build + n_x * w_.hash_join_probe +
         n_x * w_.reuse_cache + n_fact * w_.union_op;
}

}  // namespace patchindex
