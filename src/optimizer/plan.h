#ifndef PATCHINDEX_OPTIMIZER_PLAN_H_
#define PATCHINDEX_OPTIMIZER_PLAN_H_

#include <memory>
#include <vector>

#include "exec/aggregate.h"
#include "exec/expression.h"
#include "exec/sort.h"
#include "patchindex/patch_index.h"
#include "storage/table.h"

namespace patchindex {

/// Logical query plan node. Built by query frontends (the TPC-H query
/// builders, the microbenchmark harness, user code), transformed by the
/// PatchIndex rewriter, compiled to a physical operator tree.
struct LogicalNode {
  enum class Kind {
    kScan,
    kSelect,
    kProject,
    kJoin,      // inner equi join; children[0] joined with children[1]
    kDistinct,  // duplicate elimination on group_cols
    kAggregate, // grouping aggregation
    kSort,
    // Nodes introduced by the PatchIndex rewriter (paper §3.3 Figure 2):
    kPatchDistinct,  // distinct over a NUC: aggregation dropped for non-patches
    kPatchSort,      // sort over a NSC: sort dropped for non-patches, Merge
    kPatchJoin,      // join on a NSC: MergeJoin for non-patches
  };

  Kind kind;
  std::vector<std::shared_ptr<LogicalNode>> children;

  // kScan. Exactly one of `table` / a multi-partition `ptable` drives the
  // scan: for a single-partition PartitionedTable both are set (table
  // points at partition 0, so every single-table code path — patch
  // rewrites included — applies unchanged); for a multi-partition table
  // `table` stays null and the scan draws from every partition, emitting
  // table-global rowIDs (ScanOptions::row_id_offset).
  const Table* table = nullptr;
  const PartitionedTable* ptable = nullptr;
  std::vector<std::size_t> columns;
  /// Index (into `columns`) of a column the stored table order is sorted
  /// by, or -1. Seeds the sortedness propagation the join rewrite needs.
  int scan_sorted_col = -1;
  /// kScan: obs::SystemTableId when this scan reads a pi_stats virtual
  /// table, -1 otherwise. The binder sets it (the scan then points at the
  /// empty placeholder table); Session execution replaces the pointer
  /// with a per-query materialized table before running the plan.
  /// Survives ClonePlan via the node copy constructor.
  int system_table = -1;

  // kSelect
  ExprPtr predicate;
  /// Estimated selectivity of the predicate (for the cost model).
  double selectivity = 0.5;

  // kProject
  std::vector<ExprPtr> exprs;

  // kJoin: key columns in the respective child's output.
  std::size_t left_key = 0;
  std::size_t right_key = 0;

  /// kJoin advisory annotations (set by the rewriter; no semantic
  /// change): a NUC index proving the respective join key nearly unique.
  /// Hash joins — serial and morsel-parallel — use it to skip duplicate
  /// chaining for non-exception build rows and route the patches through
  /// the exception path; results are exact with or without it.
  const PatchIndex* left_key_nuc = nullptr;
  const PatchIndex* right_key_nuc = nullptr;

  // kDistinct / kAggregate
  std::vector<std::size_t> group_cols;
  std::vector<AggSpec> aggs;

  // kSort
  std::vector<SortKeySpec> sort_keys;
  /// kSort: emit only the top `limit` rows in sort order when non-zero
  /// (ORDER BY ... LIMIT); 0 means a full sort.
  std::size_t limit = 0;

  // kPatch*: the index backing the rewrite. For kPatchJoin the indexed
  // ("fact") input is children[1]; children[0] is the sorted subtree "X".
  const PatchIndex* pidx = nullptr;
};

using LogicalPtr = std::shared_ptr<LogicalNode>;

LogicalPtr LScan(const Table& table, std::vector<std::size_t> columns,
                 int sorted_col = -1);
/// Scan of a partitioned table. Single-partition tables also populate
/// `table` (see LogicalNode) and behave exactly like a plain scan.
LogicalPtr LScan(const PartitionedTable& table,
                 std::vector<std::size_t> columns, int sorted_col = -1);

/// The schema behind a scan node, whichever representation backs it.
const Schema& ScanSchema(const LogicalNode& scan);
/// Visible rows behind a scan node, across partitions.
std::uint64_t ScanVisibleRows(const LogicalNode& scan);
LogicalPtr LSelect(LogicalPtr child, ExprPtr predicate,
                   double selectivity = 0.5);
LogicalPtr LProject(LogicalPtr child, std::vector<ExprPtr> exprs);
LogicalPtr LJoin(LogicalPtr left, LogicalPtr right, std::size_t left_key,
                 std::size_t right_key);
LogicalPtr LDistinct(LogicalPtr child, std::vector<std::size_t> cols);
LogicalPtr LAggregate(LogicalPtr child, std::vector<std::size_t> group_cols,
                      std::vector<AggSpec> aggs);
LogicalPtr LSort(LogicalPtr child, std::vector<SortKeySpec> keys,
                 std::size_t limit = 0);

/// Deep copy of a plan tree's nodes. The PatchIndex rewriter transforms
/// plans in place, so a caller that keeps a bound plan for repeated
/// execution (prepared statements) hands out a clone per run. Node
/// payloads that are not themselves plan structure — tables, expressions,
/// index pointers — stay shared.
LogicalPtr ClonePlan(const LogicalPtr& plan);

/// Output column types of a logical node.
std::vector<ColumnType> LogicalOutputTypes(const LogicalNode& node);

/// Descends through a chain of selections (which keep columns and rowIDs
/// intact) to the scan feeding it; nullptr when the subtree has any other
/// shape. This is the paper's "arbitrary subtree X without joins or
/// aggregations" restricted to the common select-chain case. Shared by the
/// PatchIndex rewriter and the morsel-driven parallel executor.
const LogicalNode* SelectChainScan(const LogicalNode& node);

/// Index of the output column the node's output is sorted by (ascending),
/// or -1. Propagation rules follow the paper §3.3: selections preserve
/// order, hash joins preserve the probe side's order, projections remap.
int SortedOutputColumn(const LogicalNode& node);

/// Estimated output cardinality (for the cost model).
double EstimateCardinality(const LogicalNode& node);

}  // namespace patchindex

#endif  // PATCHINDEX_OPTIMIZER_PLAN_H_
