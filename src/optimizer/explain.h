#ifndef PATCHINDEX_OPTIMIZER_EXPLAIN_H_
#define PATCHINDEX_OPTIMIZER_EXPLAIN_H_

#include <string>

#include "optimizer/plan.h"

namespace patchindex {

/// Renders a logical plan as an indented tree, annotating PatchIndex
/// rewrites with the backing constraint and exception rate. For debugging
/// and for verifying which rewrites fired:
///
///   Aggregate(groups=3, aggs=1)
///     Project(4 exprs)
///       PatchJoin(keys 2=0) [NSC e=5.02%]
///         Join(keys 0=1)
///           ...
std::string ExplainPlan(const LogicalPtr& plan);

/// One node's EXPLAIN label without indentation or children — e.g.
/// `Join(keys 0=1)` — shared between ExplainPlan and the EXPLAIN ANALYZE
/// profile renderer so both show identical operator names.
std::string PlanNodeLabel(const LogicalNode& node);

}  // namespace patchindex

#endif  // PATCHINDEX_OPTIMIZER_EXPLAIN_H_
