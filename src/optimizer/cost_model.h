#ifndef PATCHINDEX_OPTIMIZER_COST_MODEL_H_
#define PATCHINDEX_OPTIMIZER_COST_MODEL_H_

#include <cstdint>

namespace patchindex {

/// Abstract per-tuple cost weights for the operators the PatchIndex
/// rewrites touch (paper §3.5: the rewrites use ordinary operators plus a
/// fixed-overhead selection, so any cost-based optimizer can price them).
/// Units are arbitrary; only ratios matter for plan choice.
struct CostWeights {
  double scan = 1.0;
  double patch_select = 0.3;    // rowID test, type-independent (§3.5)
  double hash_agg = 6.0;        // hash probe/insert per input row
  double sort_per_cmp = 1.5;    // n log2 n comparisons
  double hash_join_build = 5.0;
  double hash_join_probe = 3.0;
  double merge_join = 1.0;      // per input row of either side
  double merge = 0.5;           // order-preserving combine
  double union_op = 0.1;
  double reuse_cache = 0.8;     // materialize one row
};

/// Plan cost estimates for the three optimizable query shapes, with and
/// without the PatchIndex rewrite. `n` = input cardinality, `e` =
/// exception rate of the index.
class CostModel {
 public:
  CostModel() = default;
  explicit CostModel(CostWeights weights) : w_(weights) {}

  /// DISTINCT on a NUC (Figure 2 left): the plain plan aggregates all n
  /// rows; the rewritten plan aggregates only the e*n patches but pays
  /// the selection twice plus the union.
  double DistinctPlain(double n) const;
  double DistinctPatched(double n, double e) const;

  /// ORDER BY on a NSC: plain sorts n rows; rewritten sorts only patches
  /// and merges.
  double SortPlain(double n) const;
  double SortPatched(double n, double e) const;

  /// Join of a fact side of n_fact rows against a sorted subtree "X" of
  /// n_x rows (Figure 2 right): plain = hash join; rewritten = merge join
  /// for non-patches + hash join on patches + buffering X.
  double JoinPlain(double n_fact, double n_x) const;
  double JoinPatched(double n_fact, double n_x, double e) const;

  bool ShouldRewriteDistinct(double n, double e) const {
    return DistinctPatched(n, e) < DistinctPlain(n);
  }
  bool ShouldRewriteSort(double n, double e) const {
    return SortPatched(n, e) < SortPlain(n);
  }
  bool ShouldRewriteJoin(double n_fact, double n_x, double e) const {
    return JoinPatched(n_fact, n_x, e) < JoinPlain(n_fact, n_x);
  }

  const CostWeights& weights() const { return w_; }

 private:
  static double Log2(double n);

  CostWeights w_{};
};

}  // namespace patchindex

#endif  // PATCHINDEX_OPTIMIZER_COST_MODEL_H_
