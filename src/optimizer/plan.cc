#include "optimizer/plan.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace patchindex {

LogicalPtr LScan(const Table& table, std::vector<std::size_t> columns,
                 int sorted_col) {
  auto n = std::make_shared<LogicalNode>();
  n->kind = LogicalNode::Kind::kScan;
  n->table = &table;
  n->columns = std::move(columns);
  n->scan_sorted_col = sorted_col;
  return n;
}

LogicalPtr LScan(const PartitionedTable& table,
                 std::vector<std::size_t> columns, int sorted_col) {
  auto n = std::make_shared<LogicalNode>();
  n->kind = LogicalNode::Kind::kScan;
  n->ptable = &table;
  // Single partition: also expose the plain-table view so the whole
  // single-table machinery (patch rewrites, NUC annotations, serial
  // scans) applies unchanged.
  if (table.num_partitions() == 1) n->table = &table.partition(0);
  n->columns = std::move(columns);
  n->scan_sorted_col = sorted_col;
  return n;
}

const Schema& ScanSchema(const LogicalNode& scan) {
  PIDX_CHECK(scan.kind == LogicalNode::Kind::kScan);
  if (scan.table != nullptr) return scan.table->schema();
  PIDX_CHECK(scan.ptable != nullptr);
  return scan.ptable->schema();
}

std::uint64_t ScanVisibleRows(const LogicalNode& scan) {
  PIDX_CHECK(scan.kind == LogicalNode::Kind::kScan);
  if (scan.ptable != nullptr) return scan.ptable->num_visible_rows();
  PIDX_CHECK(scan.table != nullptr);
  return scan.table->num_visible_rows();
}

LogicalPtr LSelect(LogicalPtr child, ExprPtr predicate, double selectivity) {
  auto n = std::make_shared<LogicalNode>();
  n->kind = LogicalNode::Kind::kSelect;
  n->children = {std::move(child)};
  n->predicate = std::move(predicate);
  n->selectivity = selectivity;
  return n;
}

LogicalPtr LProject(LogicalPtr child, std::vector<ExprPtr> exprs) {
  auto n = std::make_shared<LogicalNode>();
  n->kind = LogicalNode::Kind::kProject;
  n->children = {std::move(child)};
  n->exprs = std::move(exprs);
  return n;
}

LogicalPtr LJoin(LogicalPtr left, LogicalPtr right, std::size_t left_key,
                 std::size_t right_key) {
  auto n = std::make_shared<LogicalNode>();
  n->kind = LogicalNode::Kind::kJoin;
  n->children = {std::move(left), std::move(right)};
  n->left_key = left_key;
  n->right_key = right_key;
  return n;
}

LogicalPtr LDistinct(LogicalPtr child, std::vector<std::size_t> cols) {
  auto n = std::make_shared<LogicalNode>();
  n->kind = LogicalNode::Kind::kDistinct;
  n->children = {std::move(child)};
  n->group_cols = std::move(cols);
  return n;
}

LogicalPtr LAggregate(LogicalPtr child, std::vector<std::size_t> group_cols,
                      std::vector<AggSpec> aggs) {
  auto n = std::make_shared<LogicalNode>();
  n->kind = LogicalNode::Kind::kAggregate;
  n->children = {std::move(child)};
  n->group_cols = std::move(group_cols);
  n->aggs = std::move(aggs);
  return n;
}

LogicalPtr LSort(LogicalPtr child, std::vector<SortKeySpec> keys,
                 std::size_t limit) {
  auto n = std::make_shared<LogicalNode>();
  n->kind = LogicalNode::Kind::kSort;
  n->children = {std::move(child)};
  n->sort_keys = std::move(keys);
  n->limit = limit;
  return n;
}

LogicalPtr ClonePlan(const LogicalPtr& plan) {
  if (plan == nullptr) return nullptr;
  auto n = std::make_shared<LogicalNode>(*plan);  // copies all payload fields
  for (auto& child : n->children) child = ClonePlan(child);
  return n;
}

std::vector<ColumnType> LogicalOutputTypes(const LogicalNode& node) {
  switch (node.kind) {
    case LogicalNode::Kind::kScan: {
      std::vector<ColumnType> out;
      const Schema& schema = ScanSchema(node);
      for (std::size_t c : node.columns) {
        out.push_back(schema.field(c).type);
      }
      return out;
    }
    case LogicalNode::Kind::kSelect:
      return LogicalOutputTypes(*node.children[0]);
    case LogicalNode::Kind::kProject: {
      const auto input = LogicalOutputTypes(*node.children[0]);
      std::vector<ColumnType> out;
      for (const ExprPtr& e : node.exprs) out.push_back(e->OutputType(input));
      return out;
    }
    case LogicalNode::Kind::kJoin:
    case LogicalNode::Kind::kPatchJoin: {
      auto out = LogicalOutputTypes(*node.children[0]);
      for (ColumnType t : LogicalOutputTypes(*node.children[1])) {
        out.push_back(t);
      }
      return out;
    }
    case LogicalNode::Kind::kDistinct:
    case LogicalNode::Kind::kPatchDistinct:
    case LogicalNode::Kind::kAggregate: {
      const auto input = LogicalOutputTypes(*node.children[0]);
      std::vector<ColumnType> out;
      for (std::size_t c : node.group_cols) out.push_back(input[c]);
      for (const AggSpec& a : node.aggs) {
        out.push_back(a.op == AggOp::kCount ? ColumnType::kInt64
                                            : input[a.column]);
      }
      return out;
    }
    case LogicalNode::Kind::kSort:
    case LogicalNode::Kind::kPatchSort:
      return LogicalOutputTypes(*node.children[0]);
  }
  return {};
}

int SortedOutputColumn(const LogicalNode& node) {
  switch (node.kind) {
    case LogicalNode::Kind::kScan:
      return node.scan_sorted_col;
    case LogicalNode::Kind::kSelect:
      return SortedOutputColumn(*node.children[0]);
    case LogicalNode::Kind::kProject: {
      const int child_sorted = SortedOutputColumn(*node.children[0]);
      if (child_sorted < 0) return -1;
      for (std::size_t i = 0; i < node.exprs.size(); ++i) {
        if (node.exprs[i]->column_index() == child_sorted) {
          return static_cast<int>(i);
        }
      }
      return -1;
    }
    case LogicalNode::Kind::kJoin: {
      // A hash join preserves the probe (right) side's order.
      const int right_sorted = SortedOutputColumn(*node.children[1]);
      if (right_sorted < 0) return -1;
      const std::size_t left_width =
          LogicalOutputTypes(*node.children[0]).size();
      return static_cast<int>(left_width) + right_sorted;
    }
    case LogicalNode::Kind::kSort:
      if (node.sort_keys.size() == 1 && node.sort_keys[0].ascending) {
        return static_cast<int>(node.sort_keys[0].column);
      }
      return -1;
    case LogicalNode::Kind::kPatchSort:
      return SortedOutputColumn(*node.children[0]);
    default:
      return -1;
  }
}

namespace {
// Rows of the base table(s) feeding `node`, before any selections.
double BaseTableRows(const LogicalNode& node) {
  if (node.kind == LogicalNode::Kind::kScan) {
    return static_cast<double>(ScanVisibleRows(node));
  }
  double total = 0;
  for (const auto& c : node.children) total = std::max(total, BaseTableRows(*c));
  return std::max(total, 1.0);
}
}  // namespace

double EstimateCardinality(const LogicalNode& node) {
  switch (node.kind) {
    case LogicalNode::Kind::kScan:
      return static_cast<double>(ScanVisibleRows(node));
    case LogicalNode::Kind::kSelect:
      return node.selectivity * EstimateCardinality(*node.children[0]);
    case LogicalNode::Kind::kProject:
    case LogicalNode::Kind::kPatchSort:
      return EstimateCardinality(*node.children[0]);
    case LogicalNode::Kind::kSort: {
      const double n = EstimateCardinality(*node.children[0]);
      return node.limit > 0 ? std::min<double>(n, static_cast<double>(node.limit))
                            : n;
    }
    case LogicalNode::Kind::kJoin:
    case LogicalNode::Kind::kPatchJoin: {
      // Foreign-key join heuristic: the fact (larger) side scaled by the
      // dimension (smaller) side's selectivity against its base table.
      const double l = EstimateCardinality(*node.children[0]);
      const double r = EstimateCardinality(*node.children[1]);
      const LogicalNode& smaller = l <= r ? *node.children[0]
                                          : *node.children[1];
      const double dim_selectivity =
          std::min(1.0, std::min(l, r) / BaseTableRows(smaller));
      return std::max(l, r) * dim_selectivity;
    }
    case LogicalNode::Kind::kDistinct:
    case LogicalNode::Kind::kPatchDistinct:
    case LogicalNode::Kind::kAggregate:
      return 0.1 * EstimateCardinality(*node.children[0]);
  }
  return 0;
}

const LogicalNode* SelectChainScan(const LogicalNode& node) {
  const LogicalNode* cur = &node;
  while (cur->kind == LogicalNode::Kind::kSelect) cur = cur->children[0].get();
  return cur->kind == LogicalNode::Kind::kScan ? cur : nullptr;
}

}  // namespace patchindex
