#ifndef PATCHINDEX_OPTIMIZER_REWRITER_H_
#define PATCHINDEX_OPTIMIZER_REWRITER_H_

#include <memory>

#include "exec/operator.h"
#include "optimizer/cost_model.h"
#include "optimizer/plan.h"
#include "patchindex/index_lookup.h"
#include "patchindex/manager.h"

namespace patchindex {

namespace obs {
class ExecProfile;
}

struct OptimizerOptions {
  /// Apply the PatchIndex rewrites of §3.3 where an index matches.
  bool enable_patch_rewrites = true;

  /// Bypass the cost gate and rewrite whenever an index matches. The
  /// evaluation plots PI variants unconditionally (the paper notes the
  /// optimizer would reject e.g. the Q12 plan, §6.3).
  bool force_patch_rewrites = false;

  /// Zero-branch pruning (§6.3): when the patch count is known to be 0 at
  /// optimization time, drop the patches subtree and the then-no-op
  /// selection from the plan.
  bool zero_branch_pruning = false;

  /// Buffer the shared subtree "X" of the join rewrite in a ReuseCache
  /// instead of computing it twice (§3.3). Off only for the ablation
  /// benchmark.
  bool buffer_shared_subtrees = true;

  CostModel cost_model;
};

/// Applies the PatchIndex rewrite rules to a logical plan:
///  - Distinct over a select-chain on a NUC column  -> kPatchDistinct
///  - Sort   over a select-chain on a NSC column    -> kPatchSort
///  - Join whose right input is a select-chain scan of a NSC column and
///    whose left input is sorted on the join key    -> kPatchJoin
/// Rewrites fire only when `indexes` resolves a matching index and the
/// cost model approves (unless forced). `indexes` is usually the live
/// PatchIndexManager (locked reads, DML row-finding) but may be a pinned
/// MVCC version's immutable index snapshots — resolution is by partition
/// address, so the rewriter needs no notion of versions.
LogicalPtr OptimizePlan(LogicalPtr plan, const IndexLookup& indexes,
                        const OptimizerOptions& options = {});

/// Lowers a (possibly rewritten) logical plan to a physical operator
/// tree. Zero-branch pruning is applied here, where exact patch counts
/// are known. When `profile` is non-null every node's operator is wrapped
/// to record rows and wall time into it (EXPLAIN ANALYZE on the serial
/// path); patch-rewrite sub-operators attribute to their rewrite node's
/// chain, which may execute twice (once per branch).
OperatorPtr CompilePlan(const LogicalPtr& plan,
                        const OptimizerOptions& options = {},
                        obs::ExecProfile* profile = nullptr);

/// Convenience: optimize + compile.
OperatorPtr PlanQuery(LogicalPtr plan, const IndexLookup& indexes,
                      const OptimizerOptions& options = {});

}  // namespace patchindex

#endif  // PATCHINDEX_OPTIMIZER_REWRITER_H_
