#include "optimizer/rewriter.h"

#include <utility>

#include "common/check.h"
#include "exec/hash_join.h"
#include "exec/merge.h"
#include "exec/merge_join.h"
#include "exec/project.h"
#include "exec/reuse.h"
#include "exec/scan.h"
#include "exec/select.h"
#include "obs/profile.h"
#include "obs/profiled_operator.h"

namespace patchindex {

namespace {

/// Finds a registered index of `kind` on the table column that output
/// column `output_col` of the select-chain maps to.
const PatchIndex* FindIndex(const IndexLookup& indexes,
                            const LogicalNode& chain, std::size_t output_col,
                            ConstraintKind kind) {
  const LogicalNode* scan = SelectChainScan(chain);
  // Multi-partition scans have no single table-level index; their indexes
  // are partition-local (used by discovery/maintenance and the
  // per-partition sortedness inference below, not by the single-index
  // patch rewrites).
  if (scan == nullptr || scan->table == nullptr ||
      output_col >= scan->columns.size()) {
    return nullptr;
  }
  const std::size_t table_col = scan->columns[output_col];
  for (const PatchIndex* idx : indexes.FindIndexesOn(*scan->table)) {
    if (idx->constraint() == kind && idx->column() == table_col &&
        idx->patches().NumRows() == scan->table->num_rows()) {
      return idx;
    }
  }
  return nullptr;
}

/// Table-level sortedness proof for one partition: a zero-exception
/// ascending NSC index on `table_col` covering every row.
bool PartitionProvedSorted(const IndexLookup& indexes,
                           const Table& partition, std::size_t table_col) {
  for (const PatchIndex* idx : indexes.FindIndexesOn(partition)) {
    if (idx->constraint() == ConstraintKind::kNearlySorted &&
        idx->ascending() && idx->column() == table_col &&
        idx->NumPatches() == 0 &&
        idx->patches().NumRows() == partition.num_rows()) {
      return true;
    }
  }
  return false;
}

/// Sortedness inference for a multi-partition scan, partition-locally:
/// every partition must carry a zero-exception ascending NSC proof on the
/// column, and the partition boundaries must be non-decreasing (last
/// value of partition p <= first value of partition p+1), because global
/// rowID order concatenates the partitions.
bool PartitionedScanProvedSorted(const IndexLookup& indexes,
                                 const PartitionedTable& table,
                                 std::size_t table_col) {
  bool have_prev = false;
  std::int64_t prev_last = 0;
  for (std::size_t p = 0; p < table.num_partitions(); ++p) {
    const Table& part = table.partition(p);
    if (!part.pdt().empty()) return false;
    if (part.num_rows() == 0) continue;
    if (!PartitionProvedSorted(indexes, part, table_col)) return false;
    const Column& col = part.column(table_col);
    if (have_prev && col.GetInt64(0) < prev_last) return false;
    prev_last = col.GetInt64(part.num_rows() - 1);
    have_prev = true;
  }
  return true;
}

LogicalPtr RewriteNode(LogicalPtr node, const IndexLookup& indexes,
                       const OptimizerOptions& options) {
  for (auto& child : node->children) {
    child = RewriteNode(child, indexes, options);
  }

  switch (node->kind) {
    case LogicalNode::Kind::kScan: {
      // Sortedness inference: a zero-exception ascending NSC index on a
      // scanned column proves the stored order sorted by it — the
      // annotation the kPatchJoin rewrite needs on its non-fact input.
      // Inferred here, not at plan-build time, because it must reflect
      // the table state of *this* execution (the optimizer runs under
      // the session's shared table locks; a cached/prepared plan may be
      // re-run long after updates broke the sort order).
      if (node->scan_sorted_col >= 0) break;
      if (node->table != nullptr) {
        if (!node->table->pdt().empty()) break;
        for (std::size_t i = 0; i < node->columns.size(); ++i) {
          if (PartitionProvedSorted(indexes, *node->table,
                                    node->columns[i])) {
            node->scan_sorted_col = static_cast<int>(i);
            break;
          }
        }
      } else if (node->ptable != nullptr) {
        // Multi-partition: the inference runs partition-locally and lifts
        // to a global claim only when the partition boundaries line up.
        for (std::size_t i = 0; i < node->columns.size(); ++i) {
          if (PartitionedScanProvedSorted(indexes, *node->ptable,
                                          node->columns[i])) {
            node->scan_sorted_col = static_cast<int>(i);
            break;
          }
        }
      }
      break;
    }
    case LogicalNode::Kind::kDistinct: {
      if (node->group_cols.size() != 1) break;
      const PatchIndex* idx =
          FindIndex(indexes, *node->children[0], node->group_cols[0],
                    ConstraintKind::kNearlyUnique);
      if (idx == nullptr &&
          node->children[0]->kind == LogicalNode::Kind::kScan) {
        // NCC variant (the §5.5 extension): distinct = {constant} union
        // the distinct patches. Restricted to plain scans — a selection
        // might filter away every constant row, which the plan could not
        // know statically.
        idx = FindIndex(indexes, *node->children[0], node->group_cols[0],
                        ConstraintKind::kNearlyConstant);
      }
      if (idx == nullptr) break;
      const double n = EstimateCardinality(*node->children[0]);
      if (!options.force_patch_rewrites &&
          !options.cost_model.ShouldRewriteDistinct(n,
                                                    idx->exception_rate())) {
        break;
      }
      node->kind = LogicalNode::Kind::kPatchDistinct;
      node->pidx = idx;
      break;
    }
    case LogicalNode::Kind::kSort: {
      // The Merge combine requires an ascending INT64 order, and has no
      // limit plumbing — a TopN sort stays a plain kSort.
      if (node->sort_keys.size() != 1 || !node->sort_keys[0].ascending ||
          node->limit != 0) {
        break;
      }
      const PatchIndex* idx =
          FindIndex(indexes, *node->children[0], node->sort_keys[0].column,
                    ConstraintKind::kNearlySorted);
      if (idx == nullptr || !idx->ascending()) break;
      const double n = EstimateCardinality(*node->children[0]);
      if (!options.force_patch_rewrites &&
          !options.cost_model.ShouldRewriteSort(n, idx->exception_rate())) {
        break;
      }
      node->kind = LogicalNode::Kind::kPatchSort;
      node->pidx = idx;
      break;
    }
    case LogicalNode::Kind::kJoin: {
      // Pattern (Figure 2 right): right input is the NSC-indexed fact
      // side, left input ("X") is sorted on the join key.
      const PatchIndex* idx = FindIndex(
          indexes, *node->children[1], node->right_key,
          ConstraintKind::kNearlySorted);
      if (idx != nullptr && idx->ascending() &&
          SortedOutputColumn(*node->children[0]) ==
              static_cast<int>(node->left_key)) {
        const double n_fact = EstimateCardinality(*node->children[1]);
        const double n_x = EstimateCardinality(*node->children[0]);
        if (options.force_patch_rewrites ||
            options.cost_model.ShouldRewriteJoin(n_fact, n_x,
                                                 idx->exception_rate())) {
          node->kind = LogicalNode::Kind::kPatchJoin;
          node->pidx = idx;
          break;
        }
      }
      // No structural rewrite: annotate NUC-indexed join keys so the hash
      // joins (serial and morsel-parallel) can treat non-exception build
      // rows as unique and route patches through the exception path.
      node->left_key_nuc = FindIndex(indexes, *node->children[0],
                                     node->left_key,
                                     ConstraintKind::kNearlyUnique);
      node->right_key_nuc = FindIndex(indexes, *node->children[1],
                                      node->right_key,
                                      ConstraintKind::kNearlyUnique);
      break;
    }
    default:
      break;
  }
  return node;
}

OperatorPtr Compile(const LogicalNode& node, const OptimizerOptions& options,
                    obs::ExecProfile* profile);

/// Wraps `op` to record `node`'s rows and wall time when serial-path
/// profiling is on; identity otherwise.
OperatorPtr MaybeProfile(OperatorPtr op, obs::ExecProfile* profile,
                         const LogicalNode& node) {
  if (profile == nullptr) return op;
  return std::make_unique<obs::ProfiledOperator>(std::move(op),
                                                 &profile->StatsFor(&node));
}

/// Compiles a select-chain with the PatchIndex selection fused into the
/// scan (the PatchIndex scan of §3.3: the selection modes merge the patch
/// information on-the-fly into the scan's output dataflow).
OperatorPtr CompileChainWithPatchFilter(const LogicalNode& node,
                                        const PatchIndex* idx,
                                        PatchSelectMode mode,
                                        const OptimizerOptions& options,
                                        obs::ExecProfile* profile) {
  if (node.kind == LogicalNode::Kind::kScan) {
    ScanOptions sopt;
    sopt.patch_filter = idx;
    sopt.patch_mode = mode;
    return MaybeProfile(
        std::make_unique<ScanOperator>(*node.table, node.columns, sopt),
        profile, node);
  }
  PIDX_CHECK(node.kind == LogicalNode::Kind::kSelect);
  OperatorPtr child =
      CompileChainWithPatchFilter(*node.children[0], idx, mode, options,
                                  profile);
  return MaybeProfile(
      std::make_unique<SelectOperator>(std::move(child), node.predicate),
      profile, node);
}

OperatorPtr CompileNode(const LogicalNode& node,
                        const OptimizerOptions& options,
                        obs::ExecProfile* profile) {
  switch (node.kind) {
    case LogicalNode::Kind::kScan: {
      if (node.table != nullptr) {
        return std::make_unique<ScanOperator>(*node.table, node.columns);
      }
      // Multi-partition scan: concatenate the partitions in order, each
      // scan offsetting its rowIDs by the partition's global base so the
      // output rowIDs address the whole table (visible-row numbering —
      // DML row-finding runs with empty PDTs, where visible == base).
      PIDX_CHECK(node.ptable != nullptr);
      std::vector<OperatorPtr> parts;
      std::uint64_t base = 0;
      for (std::size_t p = 0; p < node.ptable->num_partitions(); ++p) {
        const Table& part = node.ptable->partition(p);
        ScanOptions sopt;
        sopt.row_id_offset = base;
        parts.push_back(
            std::make_unique<ScanOperator>(part, node.columns, sopt));
        base += part.num_visible_rows();
      }
      if (parts.size() == 1) return std::move(parts[0]);
      return std::make_unique<UnionOperator>(std::move(parts));
    }
    case LogicalNode::Kind::kSelect:
      return std::make_unique<SelectOperator>(
          Compile(*node.children[0], options, profile), node.predicate);
    case LogicalNode::Kind::kProject:
      return std::make_unique<ProjectOperator>(
          Compile(*node.children[0], options, profile), node.exprs);
    case LogicalNode::Kind::kJoin: {
      // Build on the side with the lower estimated cardinality (§3.3);
      // restore the logical left-then-right column order afterwards.
      const double l = EstimateCardinality(*node.children[0]);
      const double r = EstimateCardinality(*node.children[1]);
      const std::size_t lw = LogicalOutputTypes(*node.children[0]).size();
      const std::size_t rw = LogicalOutputTypes(*node.children[1]).size();
      // If this join's output is order-relevant (a sortedness annotation
      // derived from the right/probe side), the probe side must remain
      // the right child regardless of cardinalities — hash joins only
      // preserve the probe side's order.
      const bool build_left = SortedOutputColumn(node) >= 0 || l <= r;
      OperatorPtr build =
          Compile(*node.children[build_left ? 0 : 1], options, profile);
      OperatorPtr probe =
          Compile(*node.children[build_left ? 1 : 0], options, profile);
      HashJoinOptions join_options;
      join_options.build_unique_filter =
          build_left ? node.left_key_nuc : node.right_key_nuc;
      auto join = std::make_unique<HashJoinOperator>(
          std::move(build), std::move(probe),
          build_left ? node.left_key : node.right_key,
          build_left ? node.right_key : node.left_key, join_options);
      if (profile != nullptr) join->SetMemoryStats(&profile->StatsFor(&node));
      // Physical layout: probe columns then build columns.
      std::vector<ExprPtr> reorder;
      if (build_left) {
        for (std::size_t i = 0; i < lw; ++i) reorder.push_back(Col(rw + i));
        for (std::size_t j = 0; j < rw; ++j) reorder.push_back(Col(j));
      } else {
        for (std::size_t i = 0; i < lw; ++i) reorder.push_back(Col(i));
        for (std::size_t j = 0; j < rw; ++j) reorder.push_back(Col(lw + j));
      }
      return std::make_unique<ProjectOperator>(std::move(join),
                                               std::move(reorder));
    }
    case LogicalNode::Kind::kDistinct:
    case LogicalNode::Kind::kAggregate: {
      auto agg = std::make_unique<HashAggregateOperator>(
          Compile(*node.children[0], options, profile), node.group_cols,
          node.kind == LogicalNode::Kind::kAggregate ? node.aggs
                                                     : std::vector<AggSpec>{});
      if (profile != nullptr) agg->SetMemoryStats(&profile->StatsFor(&node));
      return agg;
    }
    case LogicalNode::Kind::kSort: {
      auto sort = std::make_unique<SortOperator>(
          Compile(*node.children[0], options, profile), node.sort_keys,
          node.limit);
      if (profile != nullptr) sort->SetMemoryStats(&profile->StatsFor(&node));
      return sort;
    }

    case LogicalNode::Kind::kPatchDistinct: {
      const LogicalNode& chain = *node.children[0];
      std::vector<ExprPtr> group_proj;
      for (std::size_t c : node.group_cols) group_proj.push_back(Col(c));
      if (node.pidx->constraint() == ConstraintKind::kNearlyConstant) {
        // NCC: all non-patches hold the materialized constant, so the
        // whole excluded subtree collapses into a single-row source. The
        // patches branch is deduplicated against the constant (a patch
        // modified back to the constant may hold it, §5.2-style
        // optimality loss).
        std::vector<OperatorPtr> branches;
        if (node.pidx->NumRows() > node.pidx->NumPatches() &&
            node.pidx->has_constant()) {
          Batch one;
          one.Reset({ColumnType::kInt64});
          one.columns[0].i64.push_back(node.pidx->constant_value());
          one.row_ids.push_back(0);
          branches.push_back(std::make_unique<InMemorySource>(std::move(one)));
        }
        if (!(options.zero_branch_pruning && node.pidx->NumPatches() == 0)) {
          OperatorPtr use = std::make_unique<SelectOperator>(
              std::make_unique<HashAggregateOperator>(
                  CompileChainWithPatchFilter(
                      chain, node.pidx, PatchSelectMode::kUsePatches,
                      options, profile),
                  node.group_cols, std::vector<AggSpec>{}),
              Ne(Col(0), ConstInt(node.pidx->constant_value())));
          branches.push_back(std::move(use));
        }
        if (branches.empty()) {  // empty table
          Batch none;
          none.Reset({ColumnType::kInt64});
          return std::make_unique<InMemorySource>(std::move(none));
        }
        if (branches.size() == 1) return std::move(branches[0]);
        return std::make_unique<UnionOperator>(std::move(branches));
      }
      if (options.zero_branch_pruning && node.pidx->NumPatches() == 0) {
        // ZBP (§6.3): the patches subtree has cardinality 0 and the
        // exclude selection passes everything — both are dropped.
        return std::make_unique<ProjectOperator>(
            Compile(chain, options, profile), std::move(group_proj));
      }
      if (options.zero_branch_pruning &&
          node.pidx->NumPatches() == node.pidx->NumRows()) {
        // Degenerate mirror case (e = 1): the excluded subtree is the one
        // with guaranteed-zero cardinality — ZBP drops it and the plan
        // collapses to the plain aggregation over the patches.
        return std::make_unique<HashAggregateOperator>(
            CompileChainWithPatchFilter(chain, node.pidx,
                                        PatchSelectMode::kUsePatches,
                                        options, profile),
            node.group_cols, std::vector<AggSpec>{});
      }
      // Figure 2 left: the aggregation is dropped from the subtree that
      // excluded the patches (tuples there are unique by the constraint).
      OperatorPtr excl = std::make_unique<ProjectOperator>(
          CompileChainWithPatchFilter(chain, node.pidx,
                                      PatchSelectMode::kExcludePatches,
                                      options, profile),
          group_proj);
      OperatorPtr use = std::make_unique<HashAggregateOperator>(
          CompileChainWithPatchFilter(chain, node.pidx,
                                      PatchSelectMode::kUsePatches, options,
                                      profile),
          node.group_cols, std::vector<AggSpec>{});
      std::vector<OperatorPtr> branches;
      branches.push_back(std::move(excl));
      branches.push_back(std::move(use));
      return std::make_unique<UnionOperator>(std::move(branches));
    }

    case LogicalNode::Kind::kPatchSort: {
      const LogicalNode& chain = *node.children[0];
      if (options.zero_branch_pruning && node.pidx->NumPatches() == 0) {
        return Compile(chain, options, profile);  // stored order already sorted
      }
      if (options.zero_branch_pruning &&
          node.pidx->NumPatches() == node.pidx->NumRows()) {
        // e = 1: the excluded branch is empty; sort everything plainly.
        return std::make_unique<SortOperator>(
            CompileChainWithPatchFilter(chain, node.pidx,
                                        PatchSelectMode::kUsePatches,
                                        options, profile),
            node.sort_keys);
      }
      // The sort operator becomes obsolete for the non-patches; only the
      // patches are sorted, and a Merge preserves the global order.
      OperatorPtr excl = CompileChainWithPatchFilter(
          chain, node.pidx, PatchSelectMode::kExcludePatches, options, profile);
      OperatorPtr use = std::make_unique<SortOperator>(
          CompileChainWithPatchFilter(chain, node.pidx,
                                      PatchSelectMode::kUsePatches, options,
                                      profile),
          node.sort_keys);
      std::vector<OperatorPtr> branches;
      branches.push_back(std::move(excl));
      branches.push_back(std::move(use));
      return std::make_unique<MergeOperator>(std::move(branches),
                                             node.sort_keys[0].column);
    }

    case LogicalNode::Kind::kPatchJoin: {
      const LogicalNode& x = *node.children[0];
      const LogicalNode& fact = *node.children[1];
      if (options.zero_branch_pruning && node.pidx->NumPatches() == 0) {
        return std::make_unique<MergeJoinOperator>(
            Compile(x, options, profile), Compile(fact, options, profile),
            node.left_key, node.right_key);
      }
      // Figure 2 right: X is buffered (ReuseCache) and consumed by both
      // cloned subtrees; the non-patches side uses the MergeJoin, the
      // patches side a HashJoin built on the patches (lowest cardinality).
      OperatorPtr x_first;
      OperatorPtr x_second;
      if (options.buffer_shared_subtrees) {
        auto buffer = MakeReuseBuffer();
        x_first = std::make_unique<ReuseCacheOperator>(
            Compile(x, options, profile), buffer);
        x_second = std::make_unique<ReuseLoadOperator>(buffer,
                                                       LogicalOutputTypes(x));
      } else {
        // Ablation: compute X twice.
        x_first = Compile(x, options, profile);
        x_second = Compile(x, options, profile);
      }
      OperatorPtr merge_branch = std::make_unique<MergeJoinOperator>(
          std::move(x_first),
          CompileChainWithPatchFilter(fact, node.pidx,
                                      PatchSelectMode::kExcludePatches,
                                      options, profile),
          node.left_key, node.right_key);
      // Probe = replayed X, build = patches; output is X-then-fact, the
      // same layout the MergeJoin produces.
      OperatorPtr hash_branch = std::make_unique<HashJoinOperator>(
          CompileChainWithPatchFilter(fact, node.pidx,
                                      PatchSelectMode::kUsePatches, options,
                                      profile),
          std::move(x_second), node.right_key, node.left_key);
      std::vector<OperatorPtr> branches;
      branches.push_back(std::move(merge_branch));
      branches.push_back(std::move(hash_branch));
      return std::make_unique<UnionOperator>(std::move(branches));
    }
  }
  PIDX_CHECK_MSG(false, "unreachable plan node");
  return nullptr;
}

OperatorPtr Compile(const LogicalNode& node, const OptimizerOptions& options,
                    obs::ExecProfile* profile) {
  return MaybeProfile(CompileNode(node, options, profile), profile, node);
}

}  // namespace

LogicalPtr OptimizePlan(LogicalPtr plan, const IndexLookup& indexes,
                        const OptimizerOptions& options) {
  if (!options.enable_patch_rewrites) return plan;
  return RewriteNode(std::move(plan), indexes, options);
}

OperatorPtr CompilePlan(const LogicalPtr& plan,
                        const OptimizerOptions& options,
                        obs::ExecProfile* profile) {
  return Compile(*plan, options, profile);
}

OperatorPtr PlanQuery(LogicalPtr plan, const IndexLookup& indexes,
                      const OptimizerOptions& options) {
  return CompilePlan(OptimizePlan(std::move(plan), indexes, options), options);
}

}  // namespace patchindex
