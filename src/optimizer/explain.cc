#include "optimizer/explain.h"

#include <cstdio>

namespace patchindex {

namespace {

const char* ConstraintName(ConstraintKind kind) {
  switch (kind) {
    case ConstraintKind::kNearlyUnique:
      return "NUC";
    case ConstraintKind::kNearlySorted:
      return "NSC";
    case ConstraintKind::kNearlyConstant:
      return "NCC";
  }
  return "?";
}

void Render(const LogicalNode& node, int depth, std::string* out) {
  out->append(static_cast<std::size_t>(depth) * 2, ' ');
  out->append(PlanNodeLabel(node));
  out->push_back('\n');
  for (const auto& child : node.children) Render(*child, depth + 1, out);
}

}  // namespace

std::string PlanNodeLabel(const LogicalNode& node) {
  std::string label;
  char buf[160];
  buf[0] = '\0';
  switch (node.kind) {
    case LogicalNode::Kind::kScan:
      if (node.ptable != nullptr && node.ptable->num_partitions() > 1) {
        std::snprintf(buf, sizeof(buf),
                      "Scan(%zu cols, %llu rows, %zu partitions%s)",
                      node.columns.size(),
                      static_cast<unsigned long long>(ScanVisibleRows(node)),
                      node.ptable->num_partitions(),
                      node.scan_sorted_col >= 0 ? ", sorted" : "");
      } else {
        std::snprintf(buf, sizeof(buf), "Scan(%zu cols, %llu rows%s)",
                      node.columns.size(),
                      static_cast<unsigned long long>(ScanVisibleRows(node)),
                      node.scan_sorted_col >= 0 ? ", sorted" : "");
      }
      break;
    case LogicalNode::Kind::kSelect: {
      std::snprintf(buf, sizeof(buf), ", sel=%.2f)", node.selectivity);
      label.append("Select(");
      label.append(node.predicate != nullptr ? node.predicate->ToString()
                                             : "?");
      break;
    }
    case LogicalNode::Kind::kProject: {
      std::snprintf(buf, sizeof(buf), ")");
      label.append("Project(");
      for (std::size_t i = 0; i < node.exprs.size(); ++i) {
        if (i > 0) label.append(", ");
        label.append(node.exprs[i]->ToString());
      }
      break;
    }
    case LogicalNode::Kind::kJoin:
      std::snprintf(buf, sizeof(buf), "Join(keys %zu=%zu)%s", node.left_key,
                    node.right_key,
                    node.left_key_nuc != nullptr || node.right_key_nuc != nullptr
                        ? " [NUC key]"
                        : "");
      break;
    case LogicalNode::Kind::kDistinct:
      std::snprintf(buf, sizeof(buf), "Distinct(%zu cols)",
                    node.group_cols.size());
      break;
    case LogicalNode::Kind::kAggregate:
      std::snprintf(buf, sizeof(buf), "Aggregate(groups=%zu, aggs=%zu)",
                    node.group_cols.size(), node.aggs.size());
      break;
    case LogicalNode::Kind::kSort:
      if (node.limit > 0) {
        std::snprintf(buf, sizeof(buf), "Sort(%zu keys, limit=%zu)",
                      node.sort_keys.size(), node.limit);
      } else {
        std::snprintf(buf, sizeof(buf), "Sort(%zu keys)",
                      node.sort_keys.size());
      }
      break;
    case LogicalNode::Kind::kPatchDistinct:
      std::snprintf(buf, sizeof(buf), "PatchDistinct [%s e=%.2f%%]",
                    ConstraintName(node.pidx->constraint()),
                    node.pidx->exception_rate() * 100.0);
      break;
    case LogicalNode::Kind::kPatchSort:
      std::snprintf(buf, sizeof(buf), "PatchSort [%s e=%.2f%%]",
                    ConstraintName(node.pidx->constraint()),
                    node.pidx->exception_rate() * 100.0);
      break;
    case LogicalNode::Kind::kPatchJoin:
      std::snprintf(buf, sizeof(buf), "PatchJoin(keys %zu=%zu) [%s e=%.2f%%]",
                    node.left_key, node.right_key,
                    ConstraintName(node.pidx->constraint()),
                    node.pidx->exception_rate() * 100.0);
      break;
  }
  label.append(buf);
  return label;
}

std::string ExplainPlan(const LogicalPtr& plan) {
  std::string out;
  Render(*plan, 0, &out);
  return out;
}

}  // namespace patchindex
