#include "engine/durability.h"

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <map>
#include <utility>

#include "common/timer.h"
#include "obs/mem_tracker.h"
#include "obs/wait_event.h"
#include "patchindex/checkpoint.h"
#include "storage/snapshot.h"
#include "storage/wal.h"

namespace patchindex {

namespace {

/// Catalog-log record kinds.
constexpr std::uint8_t kDdlCreateTable = 1;
constexpr std::uint8_t kDdlCreateIndex = 2;

std::uint8_t ColumnTypeTag(ColumnType type) {
  switch (type) {
    case ColumnType::kInt64:
      return 1;
    case ColumnType::kDouble:
      return 2;
    case ColumnType::kString:
      return 3;
  }
  return 0;
}

bool TagToColumnType(std::uint8_t tag, ColumnType* out) {
  switch (tag) {
    case 1:
      *out = ColumnType::kInt64;
      return true;
    case 2:
      *out = ColumnType::kDouble;
      return true;
    case 3:
      *out = ColumnType::kString;
      return true;
    default:
      return false;
  }
}

/// Table names become file names; refuse anything that could escape the
/// data directory or collide with our suffix scheme.
bool SafeTableName(const std::string& name) {
  if (name.empty() || name == "." || name == "..") return false;
  return name.find('/') == std::string::npos;
}

}  // namespace

DurabilityManager::DurabilityManager(DurabilityOptions options)
    : options_(std::move(options)) {}

DurabilityManager::~DurabilityManager() {
  catalog_log_.Close();
  for (auto& [name, state] : tables_) {
    for (DurableFile& f : state.wal) f.Close();
  }
  if (lock_fd_ >= 0) ::close(lock_fd_);  // releases the flock
}

std::string DurabilityManager::TablePath(const std::string& name,
                                         const char* suffix) const {
  return options_.data_dir + "/" + name + suffix;
}

std::string DurabilityManager::WalPath(const std::string& name,
                                       std::size_t partition) const {
  return TablePath(name, (".p" + std::to_string(partition) + ".wal").c_str());
}

std::string DurabilityManager::SnapshotPath(const std::string& name,
                                            std::size_t partition,
                                            std::uint64_t csn) const {
  return TablePath(name, (".p" + std::to_string(partition) + ".s" +
                          std::to_string(csn) + ".snap")
                             .c_str());
}

std::string DurabilityManager::IndexCheckpointPath(const IndexSpec& spec,
                                                   std::size_t partition,
                                                   std::uint64_t csn) const {
  return TablePath(
      spec.table,
      (".p" + std::to_string(partition) + ".c" + std::to_string(spec.column) +
       ".k" + std::to_string(static_cast<int>(spec.constraint)) + ".s" +
       std::to_string(csn) + ".pidx")
          .c_str());
}

DurabilityManager::TableState* DurabilityManager::FindState(
    const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : &it->second;
}

const DurabilityManager::TableState* DurabilityManager::FindState(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : &it->second;
}

Status DurabilityManager::Open() {
  PIDX_RETURN_NOT_OK(EnsureDir(options_.data_dir));
  const std::string lock_path = options_.data_dir + "/LOCK";
  lock_fd_ = ::open(lock_path.c_str(), O_CREAT | O_RDWR, 0644);
  if (lock_fd_ < 0) {
    return Status::Internal("cannot open lock file " + lock_path);
  }
  if (::flock(lock_fd_, LOCK_EX | LOCK_NB) != 0) {
    ::close(lock_fd_);
    lock_fd_ = -1;
    return Status::Unavailable("data directory " + options_.data_dir +
                               " is locked by another engine");
  }
  return Status::OK();
}

Status DurabilityManager::AppendCatalogRecord(const std::string& payload) {
  std::lock_guard<std::mutex> lock(catalog_mu_);
  if (!catalog_log_.is_open()) {
    return Status::Internal("catalog log is not open (durability broken)");
  }
  std::string frame;
  AppendFrame(&frame, payload);
  const std::uint64_t pre = catalog_log_.size();
  Status st = catalog_log_.Append("catalog.append", frame.data(), frame.size());
  if (st.ok() && options_.fsync) st = catalog_log_.Fsync("catalog.fsync");
  if (!st.ok()) {
    // Roll the torn frame back so later appends stay decodable; if even
    // that fails the log is unusable — fail stop by closing it.
    if (!catalog_log_.Truncate("catalog.rollback", pre).ok()) {
      catalog_log_.Close();
    }
    return st;
  }
  return Status::OK();
}

Status DurabilityManager::ResetWal(const std::string& name, TableState* state,
                                   std::size_t p) {
  auto file = DurableFile::Create(WalPath(name, p), options_.fault_hook);
  if (!file.ok()) return file.status();
  WalHeader header;
  header.table = name;
  header.partition = static_cast<std::uint32_t>(p);
  header.snapshot_csn = state->snapshot_csn;
  std::string buf(WalMagic());
  AppendFrame(&buf, EncodeWalHeader(header));
  PIDX_RETURN_NOT_OK(
      file.value().Append("wal.header", buf.data(), buf.size()));
  if (options_.fsync) {
    PIDX_RETURN_NOT_OK(file.value().Fsync("wal.header.fsync"));
  }
  state->wal[p] = std::move(file).value();
  return Status::OK();
}

Status DurabilityManager::LogCreateTable(const std::string& name,
                                         const Schema& schema,
                                         std::size_t partitions) {
  if (!SafeTableName(name)) {
    return Status::InvalidArgument(
        "table name '" + name + "' cannot be persisted (used as a file name)");
  }
  std::string payload;
  PutU8(&payload, kDdlCreateTable);
  PutString(&payload, name);
  PutU32(&payload, static_cast<std::uint32_t>(partitions));
  PutU32(&payload, static_cast<std::uint32_t>(schema.num_fields()));
  for (const Field& f : schema.fields()) {
    PutString(&payload, f.name);
    PutU8(&payload, ColumnTypeTag(f.type));
  }
  // WAL files first, the catalog record last: the fsynced catalog append
  // is the commit point of the DDL. A failure (or crash) before it leaves
  // only orphan WAL files that recovery never reads — an errored CREATE
  // TABLE can then never resurrect on restart.
  TableState* state = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    TableState& s = tables_[name];
    s.schema = schema;
    s.partitions = partitions;
    s.wal.resize(partitions);
    state = &s;
  }
  Status st;
  for (std::size_t p = 0; p < partitions && st.ok(); ++p) {
    st = ResetWal(name, state, p);
  }
  if (st.ok() && options_.fsync) {
    st = FsyncDir("dir.fsync", options_.data_dir, options_.fault_hook);
  }
  if (st.ok()) st = AppendCatalogRecord(payload);
  if (!st.ok()) {
    for (std::size_t p = 0; p < partitions; ++p) {
      std::remove(WalPath(name, p).c_str());
    }
    std::lock_guard<std::mutex> lock(mu_);
    tables_.erase(name);
    return st;
  }
  return Status::OK();
}

Status DurabilityManager::LogCreateIndex(const std::string& table,
                                         std::size_t column,
                                         ConstraintKind constraint,
                                         bool ascending) {
  if (FindState(table) == nullptr) return Status::OK();  // untracked table
  std::string payload;
  PutU8(&payload, kDdlCreateIndex);
  PutString(&payload, table);
  PutU64(&payload, column);
  PutU8(&payload, static_cast<std::uint8_t>(constraint));
  PutU8(&payload, ascending ? 1 : 0);
  return AppendCatalogRecord(payload);
}

Status DurabilityManager::LogCommit(const std::string& name,
                                    const PartitionedTable& table,
                                    std::int64_t* commit_csn) {
  TableState* state = FindState(name);
  if (state == nullptr) return Status::OK();  // untracked table
  if (state->broken) {
    return Status::Internal("durable log of table '" + name +
                            "' is broken (an earlier rollback failed); "
                            "restart to recover");
  }

  std::vector<std::size_t> dirty;
  for (std::size_t p = 0; p < table.num_partitions(); ++p) {
    if (!table.partition(p).pdt().empty()) dirty.push_back(p);
  }
  if (dirty.empty()) return Status::OK();

  const std::uint64_t csn = state->next_csn;
  std::vector<std::pair<std::size_t, std::uint64_t>> appended;  // p, pre-size
  std::uint64_t bytes = 0;
  Status st;
  for (const std::size_t p : dirty) {
    const PositionalDelta& pdt = table.partition(p).pdt();
    WalRecord record;
    record.csn = csn;
    record.commit_partitions = static_cast<std::uint32_t>(dirty.size());
    record.inserts = pdt.inserts();
    record.deletes = pdt.deletes();
    for (const auto& [row, cells] : pdt.modifies()) {
      for (const auto& [col, value] : cells) {
        record.modifies.push_back(
            WalCell{row, static_cast<std::uint32_t>(col), value});
      }
    }
    std::string frame;
    AppendFrame(&frame, EncodeWalRecord(record));
    // The serialized record is statement memory until the commit returns;
    // charge it so a statement whose delta serializes over budget aborts
    // here — the existing rollback path truncates what was appended and
    // the caller discards the PDTs, a clean kResourceExhausted abort.
    if (obs::MemoryTracker* mem = obs::CurrentQueryTracker()) {
      std::string scope;
      if (!mem->TryCharge(frame.size(), &scope)) {
        st = Status::ResourceExhausted(
            "memory limit exceeded in operator WAL append: " + scope +
            " budget would be exceeded buffering " +
            std::to_string(frame.size()) + " WAL record bytes");
        break;
      }
    }
    appended.emplace_back(p, state->wal[p].size());
    st = state->wal[p].Append("wal.append", frame.data(), frame.size());
    if (!st.ok()) break;
    bytes += frame.size();
  }
  if (st.ok() && options_.fsync) {
    // One wait span per commit (all its partition fsyncs together) — the
    // wait-event-class view; fsync_latency_us keeps the per-fsync view.
    obs::WaitSpan fsync_wait(metrics_.wait_fsync_us);
    for (const std::size_t p : dirty) {
      WallTimer fsync_timer;
      st = state->wal[p].Fsync("wal.fsync");
      if (metrics_.fsync_latency_us != nullptr) {
        metrics_.fsync_latency_us->RecordNanos(fsync_timer.ElapsedNanos());
      }
      if (!st.ok()) break;
    }
  }
  if (!st.ok()) {
    // Abort: truncate every partition log back to its pre-commit size so
    // no partial record of this csn survives a later crash.
    for (const auto& [p, pre] : appended) {
      if (!state->wal[p].Truncate("wal.rollback", pre).ok()) {
        state->broken = true;
      }
    }
    return st;
  }
  state->next_csn = csn + 1;
  state->wal_bytes += bytes;
  if (metrics_.wal_appended_bytes != nullptr) {
    metrics_.wal_appended_bytes->Add(bytes);
  }
  if (commit_csn != nullptr) *commit_csn = static_cast<std::int64_t>(csn);
  return Status::OK();
}

TableDurability DurabilityManager::InspectTable(const std::string& name) const {
  TableDurability out;
  const TableState* state = FindState(name);
  if (state == nullptr) return out;
  out.tracked = true;
  out.wal_bytes = state->wal_bytes;
  out.snapshot_csn = state->snapshot_csn;
  out.next_csn = state->next_csn;
  out.broken = state->broken;
  for (const DurableFile& f : state->wal) {
    out.partition_wal_bytes.push_back(f.is_open() ? f.size() : 0);
  }
  return out;
}

bool DurabilityManager::ShouldCheckpoint(const std::string& name) const {
  const TableState* state = FindState(name);
  return state != nullptr && !state->broken &&
         options_.checkpoint_wal_bytes > 0 &&
         state->wal_bytes >= options_.checkpoint_wal_bytes;
}

Status DurabilityManager::CheckpointTable(const std::string& name,
                                          const PartitionedTable& table,
                                          const PatchIndexManager& manager) {
  TableState* state = FindState(name);
  if (state == nullptr) return Status::OK();  // untracked table
  const std::vector<PatchIndex*> live = manager.IndexesOn(table);
  return CheckpointLocked(name, state, table,
                          std::vector<const PatchIndex*>(live.begin(),
                                                         live.end()));
}

Status DurabilityManager::CheckpointTable(
    const std::string& name, const PartitionedTable& snapshot,
    const std::vector<std::shared_ptr<const PatchIndex>>& indexes) {
  TableState* state = FindState(name);
  if (state == nullptr) return Status::OK();  // untracked table
  std::vector<const PatchIndex*> flat;
  flat.reserve(indexes.size());
  for (const auto& idx : indexes) flat.push_back(idx.get());
  return CheckpointLocked(name, state, snapshot, flat);
}

Status DurabilityManager::CheckpointLocked(
    const std::string& name, TableState* state, const PartitionedTable& table,
    const std::vector<const PatchIndex*>& indexes) {
  WallTimer checkpoint_timer;
  const FaultHook& hook = options_.fault_hook;
  const std::uint64_t old_csn = state->snapshot_csn;
  const std::uint64_t csn = state->next_csn - 1;

  // 1. Write csn-stamped snapshots and index checkpoints to temporary
  //    names, fsynced, then rename into place. The rename keeps a
  //    same-csn re-checkpoint (recovery's log reset) from tearing files
  //    a live manifest already points at.
  SnapshotManifest manifest;
  manifest.csn = csn;
  std::vector<IndexSpec> specs;  // index files written, for cleanup
  std::vector<std::size_t> spec_partition;
  for (std::size_t p = 0; p < table.num_partitions(); ++p) {
    manifest.partition_rows.push_back(table.partition(p).num_rows());
    const std::string snap = SnapshotPath(name, p, csn);
    PIDX_RETURN_NOT_OK(
        SaveTableSnapshot(table.partition(p), snap + ".tmp", hook));
    PIDX_RETURN_NOT_OK(RenameFile("snap.rename", snap + ".tmp", snap, hook));
    for (const PatchIndex* idx : indexes) {
      if (&idx->table() != &table.partition(p)) continue;
      IndexSpec spec;
      spec.table = name;
      spec.column = idx->column();
      spec.constraint = idx->constraint();
      spec.ascending = idx->ascending();
      const std::string ckpt = IndexCheckpointPath(spec, p, csn);
      PIDX_RETURN_NOT_OK(
          SavePatchIndexCheckpoint(*idx, ckpt + ".tmp", hook));
      PIDX_RETURN_NOT_OK(
          RenameFile("pidx_ckpt.rename", ckpt + ".tmp", ckpt, hook));
      specs.push_back(std::move(spec));
      spec_partition.push_back(p);
    }
  }

  // 2. The commit point: atomically rename the manifest over the old one
  //    and fsync the directory. Before the rename recovery uses the old
  //    checkpoint; after it, the new one.
  const std::string manifest_path = TablePath(name, ".manifest");
  PIDX_RETURN_NOT_OK(SaveManifest(manifest, manifest_path + ".tmp", hook));
  PIDX_RETURN_NOT_OK(RenameFile("manifest.rename", manifest_path + ".tmp",
                                manifest_path, hook));
  PIDX_RETURN_NOT_OK(FsyncDir("dir.fsync", options_.data_dir, hook));

  // 3. Only now truncate the logs: every record is folded into the
  //    renamed snapshots. A crash between rename and truncation merely
  //    leaves stale records (csn <= manifest csn) that replay skips.
  state->snapshot_csn = csn;
  for (std::size_t p = 0; p < table.num_partitions(); ++p) {
    Status reset = ResetWal(name, state, p);
    if (!reset.ok()) {
      // Fail-stop: the partition's log was truncated by the failed
      // re-create, so further commits would append records behind an
      // invalid header and silently vanish on replay. The snapshot holds
      // everything up to `csn`; a restart recovers and resets the logs.
      state->broken = true;
      return reset;
    }
  }
  state->wal_bytes = 0;

  // 4. Best-effort cleanup of the previous checkpoint's files.
  if (old_csn != csn) {
    for (std::size_t p = 0; p < table.num_partitions(); ++p) {
      std::remove(SnapshotPath(name, p, old_csn).c_str());
    }
    for (std::size_t i = 0; i < specs.size(); ++i) {
      std::remove(
          IndexCheckpointPath(specs[i], spec_partition[i], old_csn).c_str());
    }
  }
  if (metrics_.checkpoint_duration_us != nullptr) {
    metrics_.checkpoint_duration_us->RecordNanos(
        checkpoint_timer.ElapsedNanos());
  }
  return Status::OK();
}

Status DurabilityManager::Recover(Catalog* catalog, ThreadPool* pool) {
  report_ = RecoveryReport{};
  const std::string catalog_path = options_.data_dir + "/catalog.wal";
  std::string data;
  Status read = ReadFileBytes(catalog_path, &data);
  const std::string_view magic = CatalogLogMagic();
  std::vector<IndexSpec> index_specs;
  if (read.code() == StatusCode::kNotFound || data.size() < magic.size()) {
    // Fresh directory, or a crash tore the log's creation before its
    // fsync — before any DDL could have been acknowledged.
    auto file = DurableFile::Create(catalog_path, options_.fault_hook);
    if (!file.ok()) return file.status();
    catalog_log_ = std::move(file).value();
    PIDX_RETURN_NOT_OK(
        catalog_log_.Append("catalog.create", magic.data(), magic.size()));
    if (options_.fsync) {
      PIDX_RETURN_NOT_OK(catalog_log_.Fsync("catalog.fsync"));
      PIDX_RETURN_NOT_OK(
          FsyncDir("dir.fsync", options_.data_dir, options_.fault_hook));
    }
    return Status::OK();
  }
  if (!read.ok()) return read;
  if (std::string_view(data).substr(0, magic.size()) != magic) {
    return Status::Internal("catalog log " + catalog_path +
                            " is corrupted (bad magic); refusing to guess");
  }

  // Replay the DDL records (torn tail rule: stop at the first invalid
  // frame and truncate it away).
  std::size_t offset = magic.size();
  std::size_t valid_bytes = offset;
  std::string_view payload;
  while (NextFrame(data, &offset, &payload)) {
    ByteReader r(payload);
    const std::uint8_t kind = r.GetU8();
    if (kind == kDdlCreateTable) {
      const std::string name = r.GetString();
      const std::uint32_t partitions = r.GetU32();
      const std::uint32_t n_cols = r.GetU32();
      if (!r.ok() || partitions == 0 || partitions > Catalog::kMaxPartitions ||
          n_cols > r.remaining()) {
        break;
      }
      std::vector<Field> fields;
      for (std::uint32_t c = 0; c < n_cols && r.ok(); ++c) {
        Field f;
        f.name = r.GetString();
        if (!TagToColumnType(r.GetU8(), &f.type)) break;
        fields.push_back(std::move(f));
      }
      if (!r.done() || fields.size() != n_cols || !SafeTableName(name) ||
          tables_.count(name) != 0) {
        break;
      }
      TableState& s = tables_[name];
      s.schema = Schema(std::move(fields));
      s.partitions = partitions;
      s.wal.resize(partitions);
    } else if (kind == kDdlCreateIndex) {
      IndexSpec spec;
      spec.table = r.GetString();
      spec.column = static_cast<std::size_t>(r.GetU64());
      const std::uint8_t constraint = r.GetU8();
      spec.ascending = r.GetU8() != 0;
      if (!r.done() || constraint > 2 || tables_.count(spec.table) == 0) break;
      spec.constraint = static_cast<ConstraintKind>(constraint);
      const bool duplicate =
          std::any_of(index_specs.begin(), index_specs.end(),
                      [&](const IndexSpec& s) {
                        return s.table == spec.table &&
                               s.column == spec.column &&
                               s.constraint == spec.constraint;
                      });
      if (!duplicate) index_specs.push_back(std::move(spec));
    } else {
      break;  // unknown kind: stop at the torn/foreign tail
    }
    valid_bytes = offset;
  }

  // Reopen the log for appending, truncating any torn tail.
  auto file = DurableFile::OpenForAppend(catalog_path, options_.fault_hook);
  if (!file.ok()) return file.status();
  catalog_log_ = std::move(file).value();
  if (valid_bytes != data.size()) {
    PIDX_RETURN_NOT_OK(catalog_log_.Truncate("catalog.truncate", valid_bytes));
    if (options_.fsync) {
      PIDX_RETURN_NOT_OK(catalog_log_.Fsync("catalog.fsync"));
    }
  }

  for (auto& [name, state] : tables_) {
    std::vector<IndexSpec> table_indexes;
    for (const IndexSpec& spec : index_specs) {
      if (spec.table == name) table_indexes.push_back(spec);
    }
    PIDX_RETURN_NOT_OK(
        RecoverTable(name, &state, table_indexes, catalog, pool));
  }
  report_.tables = tables_.size();
  return Status::OK();
}

Status DurabilityManager::RecoverTable(const std::string& name,
                                       TableState* state,
                                       const std::vector<IndexSpec>& indexes,
                                       Catalog* catalog, ThreadPool* pool) {
  // 1. Load the latest checkpoint, if one ever completed (the manifest's
  //    atomic rename is the commit point).
  bool have_manifest = false;
  SnapshotManifest manifest;
  {
    Result<SnapshotManifest> loaded = LoadManifest(TablePath(name, ".manifest"));
    if (loaded.ok()) {
      manifest = std::move(loaded).value();
      have_manifest = true;
    } else if (loaded.status().code() != StatusCode::kNotFound) {
      return loaded.status();
    }
  }
  std::vector<std::unique_ptr<Table>> parts;
  if (have_manifest) {
    if (manifest.partition_rows.size() != state->partitions) {
      return Status::Internal("manifest of table '" + name +
                              "' disagrees with the catalog log's partition "
                              "count");
    }
    for (std::size_t p = 0; p < state->partitions; ++p) {
      auto loaded =
          LoadTableSnapshot(SnapshotPath(name, p, manifest.csn), state->schema);
      if (!loaded.ok()) return loaded.status();
      if (loaded.value()->num_rows() != manifest.partition_rows[p]) {
        return Status::Internal("snapshot row count of table '" + name +
                                "' partition " + std::to_string(p) +
                                " disagrees with its manifest");
      }
      parts.push_back(std::move(loaded).value());
    }
  } else {
    for (std::size_t p = 0; p < state->partitions; ++p) {
      parts.push_back(std::make_unique<Table>(state->schema));
    }
  }
  const std::uint64_t base_csn = have_manifest ? manifest.csn : 0;
  state->snapshot_csn = base_csn;

  Result<PartitionedTable*> added = catalog->AddPartitionedTable(
      name, std::make_unique<PartitionedTable>(state->schema,
                                               std::move(parts)));
  if (!added.ok()) return added.status();
  PartitionedTable* table = added.value();

  // 2. Restore index checkpoints stamped with the manifest's csn, so
  //    replay maintains them incrementally (the §3.4 alternative to
  //    post-restart rediscovery). Anything unrestorable is rebuilt by
  //    discovery after replay.
  std::vector<std::pair<const IndexSpec*, std::size_t>> rebuild;
  for (const IndexSpec& spec : indexes) {
    for (std::size_t p = 0; p < state->partitions; ++p) {
      bool restored = false;
      if (have_manifest) {
        auto loaded = LoadPatchIndexCheckpoint(
            IndexCheckpointPath(spec, p, base_csn), table->partition(p));
        if (loaded.ok()) {
          catalog->manager().Register(std::move(loaded).value());
          ++report_.indexes_restored;
          restored = true;
        }
      }
      if (!restored) rebuild.emplace_back(&spec, p);
    }
  }

  // 3. Read the partition logs and replay their tails in csn order.
  bool pristine = true;
  std::map<std::uint64_t, std::vector<std::pair<std::size_t, WalRecord>>>
      by_csn;
  for (std::size_t p = 0; p < state->partitions; ++p) {
    std::string data;
    Status read = ReadFileBytes(WalPath(name, p), &data);
    if (read.code() == StatusCode::kNotFound) {
      pristine = false;  // creation crashed between catalog log and WAL
      continue;
    }
    if (!read.ok()) return read;
    WalContents contents = ParseWalFile(data);
    if (!contents.header_valid || contents.header.table != name ||
        contents.header.partition != p) {
      pristine = false;  // torn creation; nothing acknowledged is in here
      continue;
    }
    if (!contents.clean || contents.header.snapshot_csn != base_csn ||
        !contents.records.empty()) {
      pristine = false;
    }
    for (WalRecord& record : contents.records) {
      if (record.csn <= base_csn) continue;  // pre-truncation leftovers
      by_csn[record.csn].emplace_back(p, std::move(record));
    }
  }

  std::uint64_t last_csn = base_csn;
  for (auto it = by_csn.begin(); it != by_csn.end(); ++it) {
    const std::uint64_t csn = it->first;
    auto& records = it->second;
    const bool contiguous = csn == last_csn + 1;
    const bool complete =
        !records.empty() &&
        std::all_of(records.begin(), records.end(), [&](const auto& pr) {
          return pr.second.commit_partitions == records.size();
        });
    if (!contiguous || !complete) {
      // A crash mid-LogCommit: the trailing commit is missing partition
      // records (or an earlier torn tail swallowed a predecessor). Drop
      // it and everything after — none of it was ever acknowledged.
      report_.commits_dropped +=
          static_cast<std::uint64_t>(std::distance(it, by_csn.end()));
      break;
    }
    for (auto& [p, record] : records) {
      Table& part = table->partition(p);
      for (Row& row : record.inserts) part.BufferInsert(std::move(row));
      for (const RowId row : record.deletes) {
        PIDX_RETURN_NOT_OK(part.BufferDelete(row));
      }
      for (WalCell& cell : record.modifies) {
        PIDX_RETURN_NOT_OK(
            part.BufferModify(cell.row, cell.column, std::move(cell.value)));
      }
      ++report_.records_replayed;
    }
    Status commit = catalog->manager().CommitUpdateQuery(*table, pool);
    // kConstraintViolation means an index broke and was dropped (the
    // all-or-nothing index contract); the data committed and the rebuild
    // pass below recreates the index from the final state.
    if (!commit.ok() && commit.code() != StatusCode::kConstraintViolation) {
      return commit;
    }
    last_csn = csn;
  }
  state->next_csn = last_csn + 1;

  // 4. Rebuild whatever could not be restored from a checkpoint, by
  //    discovery over the fully replayed table.
  for (const auto& [spec, p] : rebuild) {
    PatchIndexOptions options;
    options.ascending = spec->ascending;
    catalog->manager().CreateIndex(table->partition(p), spec->column,
                                   spec->constraint, options);
    ++report_.indexes_rebuilt;
  }

  // 5. Reset the durable state unless it is already pristine: one
  //    checkpoint folds the replayed tail into fresh snapshots and
  //    truncates the logs (also discarding any dropped partial commit, so
  //    its csn can be reassigned).
  Status reset = Status::OK();
  if (pristine) {
    for (std::size_t p = 0; p < state->partitions; ++p) {
      auto file =
          DurableFile::OpenForAppend(WalPath(name, p), options_.fault_hook);
      if (!file.ok()) return file.status();
      state->wal[p] = std::move(file).value();
    }
  } else {
    const std::vector<PatchIndex*> live = catalog->manager().IndexesOn(*table);
    reset = CheckpointLocked(
        name, state, *table,
        std::vector<const PatchIndex*>(live.begin(), live.end()));
  }

  // 6. Republish the table's MVCC version: AddPartitionedTable published
  //    the pre-replay state, and replay/index rebuild mutated the head
  //    since. Recovery is single-threaded (the engine is not serving
  //    yet), so no table lock is needed; reindex snapshots the restored/
  //    rebuilt indexes into the version.
  catalog->PublishVersion(catalog->Ref(name), last_csn, /*reindex=*/true);
  return reset;
}

}  // namespace patchindex
