#include "engine/executor.h"

#include <functional>
#include <future>
#include <iterator>
#include <memory>
#include <utility>
#include <vector>

#include "common/check.h"
#include "exec/aggregate.h"
#include "exec/project.h"
#include "exec/scan.h"
#include "exec/select.h"
#include "patchindex/patch_index.h"

namespace patchindex {
namespace {

/// Pull-based scan source that repeatedly claims a morsel from the shared
/// queue and scans it. Base morsels scan their row range with pending
/// inserts suppressed; the dedicated inserts morsel scans only the PDT
/// inserts, so each pending insert is emitted exactly once across all
/// workers. The patch filter (when set) is fused into every morsel's scan,
/// exactly as in the serial PatchIndex scan.
class MorselSourceOperator : public Operator {
 public:
  MorselSourceOperator(const Table& table, std::vector<std::size_t> columns,
                       ScanOptions scan_options, MorselQueue* queue)
      : table_(table),
        cols_(std::move(columns)),
        options_(scan_options),
        queue_(queue) {}

  std::vector<ColumnType> OutputTypes() const override {
    std::vector<ColumnType> types;
    types.reserve(cols_.size());
    for (std::size_t c : cols_) types.push_back(table_.schema().field(c).type);
    return types;
  }

  void Open() override { current_.reset(); }

  bool Next(Batch* out) override {
    for (;;) {
      if (current_ == nullptr) {
        Morsel morsel;
        if (!queue_->Next(&morsel)) {
          out->Reset(OutputTypes());
          return false;
        }
        ScanOptions opts = options_;
        if (morsel.kind == Morsel::Kind::kBase) {
          opts.source = ScanSource::kVisible;
          opts.scan_inserts = false;
          opts.ranges = {morsel.range};
        } else {
          opts.source = ScanSource::kInsertsOnly;
        }
        current_ = std::make_unique<ScanOperator>(table_, cols_, opts);
        current_->Open();
      }
      if (current_->Next(out)) return true;
      current_->Close();
      current_.reset();
    }
  }

  void Close() override { current_.reset(); }

 private:
  const Table& table_;
  std::vector<std::size_t> cols_;
  ScanOptions options_;
  MorselQueue* queue_;
  OperatorPtr current_;
};

/// A Scan/Select/Project pipeline decomposed for per-worker instantiation:
/// the scan leaf plus the unary operators above it, bottom-up.
struct ChainSpec {
  const LogicalNode* scan = nullptr;
  std::vector<const LogicalNode*> ops;
};

bool AnalyzeChain(const LogicalNode& node, bool selects_only,
                  ChainSpec* spec) {
  // The selects-only shape is exactly the rewriter's select-chain notion;
  // delegate the validation so the definition lives in one place.
  if (selects_only && SelectChainScan(node) == nullptr) return false;
  const LogicalNode* cur = &node;
  std::vector<const LogicalNode*> top_down;
  while (cur->kind == LogicalNode::Kind::kSelect ||
         (!selects_only && cur->kind == LogicalNode::Kind::kProject)) {
    top_down.push_back(cur);
    cur = cur->children[0].get();
  }
  if (cur->kind != LogicalNode::Kind::kScan || cur->table == nullptr) {
    return false;
  }
  spec->scan = cur;
  spec->ops.assign(top_down.rbegin(), top_down.rend());
  return true;
}

/// Instantiates one worker's copy of the pipeline over the shared queue.
/// Expression trees are shared between workers (they are immutable and
/// Eval() is const); operator instances are per-worker.
OperatorPtr BuildWorkerChain(const ChainSpec& spec,
                             const ScanOptions& scan_options,
                             MorselQueue* queue) {
  OperatorPtr op = std::make_unique<MorselSourceOperator>(
      *spec.scan->table, spec.scan->columns, scan_options, queue);
  for (const LogicalNode* node : spec.ops) {
    if (node->kind == LogicalNode::Kind::kSelect) {
      op = std::make_unique<SelectOperator>(std::move(op), node->predicate);
    } else {
      op = std::make_unique<ProjectOperator>(std::move(op), node->exprs);
    }
  }
  return op;
}

/// Column-wise batch concatenation (string payloads are moved).
void AppendBatch(Batch* dst, Batch&& src) {
  PIDX_DCHECK(dst->columns.size() == src.columns.size());
  for (std::size_t c = 0; c < dst->columns.size(); ++c) {
    ColumnVector& d = dst->columns[c];
    ColumnVector& s = src.columns[c];
    switch (d.type) {
      case ColumnType::kInt64:
        d.i64.insert(d.i64.end(), s.i64.begin(), s.i64.end());
        break;
      case ColumnType::kDouble:
        d.f64.insert(d.f64.end(), s.f64.begin(), s.f64.end());
        break;
      case ColumnType::kString:
        d.str.insert(d.str.end(), std::make_move_iterator(s.str.begin()),
                     std::make_move_iterator(s.str.end()));
        break;
    }
  }
  dst->row_ids.insert(dst->row_ids.end(), src.row_ids.begin(),
                      src.row_ids.end());
}

/// Drains `op` with column-wise accumulation (Collect() copies row by
/// row, which would dominate wide parallel scans).
Batch DrainColumnwise(Operator& op) {
  op.Open();
  Batch all;
  all.Reset(op.OutputTypes());
  Batch in;
  while (op.Next(&in)) AppendBatch(&all, std::move(in));
  op.Close();
  return all;
}

/// Runs one pipeline instance per pool worker and returns the per-worker
/// results. Futures (not WaitIdle) so concurrent queries sharing the pool
/// only await their own tasks.
std::vector<Batch> RunWorkers(
    ThreadPool& pool, const std::function<OperatorPtr()>& make_pipeline) {
  const std::size_t workers = pool.num_threads();
  std::vector<Batch> parts(workers);
  std::vector<std::future<void>> futures;
  futures.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    futures.push_back(pool.SubmitWithFuture([&parts, &make_pipeline, w] {
      OperatorPtr pipeline = make_pipeline();
      parts[w] = DrainColumnwise(*pipeline);
    }));
  }
  // Await every worker before rethrowing: unwinding while workers still
  // reference `parts` and the queue would be use-after-free.
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
  return parts;
}

Batch ConcatParts(std::vector<Batch>&& parts,
                  const std::vector<ColumnType>& types) {
  // Largest part is moved instead of copied when it dwarfs the rest
  // (common under work stealing skew); everything else is appended.
  std::size_t total = 0;
  std::size_t biggest = 0;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    total += parts[i].num_rows();
    if (parts[i].num_rows() > parts[biggest].num_rows()) biggest = i;
  }
  Batch out;
  if (!parts.empty() && parts[biggest].num_rows() * 2 > total &&
      parts[biggest].columns.size() == types.size()) {
    out = std::move(parts[biggest]);
    parts[biggest] = Batch{};
  } else {
    out.Reset(types);
  }
  out.row_ids.reserve(total);
  for (std::size_t c = 0; c < out.columns.size(); ++c) {
    switch (out.columns[c].type) {
      case ColumnType::kInt64:
        out.columns[c].i64.reserve(total);
        break;
      case ColumnType::kDouble:
        out.columns[c].f64.reserve(total);
        break;
      case ColumnType::kString:
        out.columns[c].str.reserve(total);
        break;
    }
  }
  for (Batch& part : parts) {
    if (part.num_rows() == 0) continue;
    AppendBatch(&out, std::move(part));
  }
  return out;
}

/// Merge aggregation over concatenated per-worker partial aggregates:
/// group keys re-group on their own positions; partial counts merge by
/// summation, sums/mins/maxs by their own operator.
Batch MergeAggregateParts(std::vector<Batch>&& parts,
                          const std::vector<ColumnType>& partial_types,
                          std::size_t num_group_cols,
                          const std::vector<AggSpec>& aggs) {
  Batch all = ConcatParts(std::move(parts), partial_types);
  std::vector<std::size_t> group_cols(num_group_cols);
  for (std::size_t g = 0; g < num_group_cols; ++g) group_cols[g] = g;
  std::vector<AggSpec> merged;
  merged.reserve(aggs.size());
  for (std::size_t j = 0; j < aggs.size(); ++j) {
    AggSpec spec;
    spec.column = num_group_cols + j;
    spec.op = aggs[j].op == AggOp::kCount ? AggOp::kSum : aggs[j].op;
    merged.push_back(spec);
  }
  HashAggregateOperator merge(
      std::make_unique<InMemorySource>(std::move(all)), group_cols, merged);
  return Collect(merge);
}

bool IsSupportedPatchConstraint(const PatchIndex* idx) {
  return idx != nullptr &&
         (idx->constraint() == ConstraintKind::kNearlyUnique ||
          idx->constraint() == ConstraintKind::kNearlyConstant);
}

/// The PatchDistinct rewrite (paper §3.3 Figure 2 left), morsel-parallel:
/// phase one streams the constraint-satisfying tuples (unaggregated — the
/// constraint guarantees uniqueness), phase two aggregates the patches
/// per worker and merges. For an NCC index the excluded subtree collapses
/// into the materialized constant instead of a scan phase.
bool ExecutePatchDistinct(const LogicalNode& node, ThreadPool& pool,
                          const ParallelExecOptions& options, Batch* out) {
  const PatchIndex* idx = node.pidx;
  ChainSpec spec;
  if (!AnalyzeChain(*node.children[0], /*selects_only=*/true, &spec)) {
    return false;
  }
  const Table& table = *spec.scan->table;
  if (table.num_visible_rows() < options.min_parallel_rows) return false;
  const bool has_inserts = !table.pdt().inserts().empty();
  const std::vector<RowRange> full{{0, table.num_rows()}};
  const std::vector<ColumnType> out_types = LogicalOutputTypes(node);

  std::vector<ExprPtr> group_exprs;
  for (std::size_t c : node.group_cols) group_exprs.push_back(Col(c));

  Batch result;
  result.Reset(out_types);

  if (idx->constraint() == ConstraintKind::kNearlyConstant) {
    if (idx->NumRows() > idx->NumPatches() && idx->has_constant()) {
      result.columns[0].i64.push_back(idx->constant_value());
      result.row_ids.push_back(0);
    }
  } else {
    // Exclude-patches phase: tuples satisfying the NUC are unique, so the
    // aggregation is dropped and workers stream them straight through.
    MorselQueue exclude_queue(full, has_inserts, options.morsel_rows);
    ScanOptions exclude_opts;
    exclude_opts.patch_filter = idx;
    exclude_opts.patch_mode = PatchSelectMode::kExcludePatches;
    std::vector<Batch> parts =
        RunWorkers(pool, [&spec, &exclude_opts, &exclude_queue, &group_exprs] {
          return std::make_unique<ProjectOperator>(
              BuildWorkerChain(spec, exclude_opts, &exclude_queue),
              group_exprs);
        });
    Batch excluded = ConcatParts(std::move(parts), out_types);
    AppendBatch(&result, std::move(excluded));
  }

  // Use-patches phase: per-worker distinct over the exceptions, merged by
  // a final distinct.
  MorselQueue use_queue(full, has_inserts, options.morsel_rows);
  ScanOptions use_opts;
  use_opts.patch_filter = idx;
  use_opts.patch_mode = PatchSelectMode::kUsePatches;
  std::vector<Batch> parts =
      RunWorkers(pool, [&spec, &use_opts, &use_queue, &node] {
        return std::make_unique<HashAggregateOperator>(
            BuildWorkerChain(spec, use_opts, &use_queue), node.group_cols,
            std::vector<AggSpec>{});
      });
  HashAggregateOperator merge(
      std::make_unique<InMemorySource>(ConcatParts(std::move(parts),
                                                   out_types)),
      std::vector<std::size_t>{0}, std::vector<AggSpec>{});
  Batch patches = Collect(merge);
  if (idx->constraint() == ConstraintKind::kNearlyConstant) {
    // Deduplicate against the constant: a patch row modified back to the
    // constant may still hold it (mirrors the serial plan's selection).
    Batch filtered;
    filtered.Reset(out_types);
    for (std::size_t i = 0; i < patches.num_rows(); ++i) {
      if (patches.columns[0].i64[i] != idx->constant_value()) {
        filtered.AppendRowFrom(patches, i);
      }
    }
    patches = std::move(filtered);
  }
  AppendBatch(&result, std::move(patches));
  *out = std::move(result);
  return true;
}

}  // namespace

bool ParallelPlanSupported(const LogicalNode& plan) {
  ChainSpec spec;
  switch (plan.kind) {
    case LogicalNode::Kind::kScan:
    case LogicalNode::Kind::kSelect:
    case LogicalNode::Kind::kProject:
      return AnalyzeChain(plan, /*selects_only=*/false, &spec);
    case LogicalNode::Kind::kAggregate:
    case LogicalNode::Kind::kDistinct:
      return !plan.group_cols.empty() &&
             AnalyzeChain(*plan.children[0], /*selects_only=*/false, &spec);
    case LogicalNode::Kind::kPatchDistinct:
      // Single group column only: the rewriter never emits more, and the
      // final use-patches merge (and the NCC constant row) assume it.
      return IsSupportedPatchConstraint(plan.pidx) &&
             plan.group_cols.size() == 1 &&
             AnalyzeChain(*plan.children[0], /*selects_only=*/true, &spec);
    default:
      return false;
  }
}

bool ExecuteParallel(const LogicalNode& plan, ThreadPool& pool,
                     const ParallelExecOptions& options, Batch* out) {
  if (!ParallelPlanSupported(plan)) return false;
  if (plan.kind == LogicalNode::Kind::kPatchDistinct) {
    return ExecutePatchDistinct(plan, pool, options, out);
  }

  const LogicalNode* agg = nullptr;
  const LogicalNode* chain_root = &plan;
  if (plan.kind == LogicalNode::Kind::kAggregate ||
      plan.kind == LogicalNode::Kind::kDistinct) {
    agg = &plan;
    chain_root = plan.children[0].get();
  }
  ChainSpec spec;
  PIDX_CHECK(AnalyzeChain(*chain_root, /*selects_only=*/false, &spec));
  const Table& table = *spec.scan->table;
  if (table.num_visible_rows() < options.min_parallel_rows) return false;

  MorselQueue queue({{0, table.num_rows()}},
                    !table.pdt().inserts().empty(), options.morsel_rows);
  const ScanOptions scan_opts;  // plain kVisible scan, as the serial tree
  std::vector<Batch> parts =
      RunWorkers(pool, [&spec, &scan_opts, &queue, agg] {
        OperatorPtr op = BuildWorkerChain(spec, scan_opts, &queue);
        if (agg != nullptr) {
          op = std::make_unique<HashAggregateOperator>(
              std::move(op), agg->group_cols,
              agg->kind == LogicalNode::Kind::kAggregate
                  ? agg->aggs
                  : std::vector<AggSpec>{});
        }
        return op;
      });

  const std::vector<ColumnType> out_types = LogicalOutputTypes(plan);
  if (agg != nullptr) {
    *out = MergeAggregateParts(
        std::move(parts), out_types, agg->group_cols.size(),
        agg->kind == LogicalNode::Kind::kAggregate ? agg->aggs
                                                   : std::vector<AggSpec>{});
  } else {
    *out = ConcatParts(std::move(parts), out_types);
  }
  return true;
}

}  // namespace patchindex
