#include "engine/executor.h"

#include <algorithm>
#include <functional>
#include <future>
#include <iterator>
#include <memory>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/timer.h"
#include "exec/aggregate.h"
#include "exec/hash_join.h"
#include "exec/project.h"
#include "exec/scan.h"
#include "exec/select.h"
#include "exec/sort_merge.h"
#include "obs/mem_tracker.h"
#include "obs/profile.h"
#include "obs/profiled_operator.h"
#include "obs/trace.h"
#include "patchindex/patch_index.h"

namespace patchindex {
namespace {

/// The storage behind one scan node, flattened to partitions: a plain
/// table is a single "partition" at global base 0; a multi-partition
/// PartitionedTable lists every partition with its global visible-row
/// offset (scans add it to their rowIDs so output rowIDs are
/// table-global).
///
/// Under MVCC the scan node's table pointers were retargeted by
/// PinnedReadSet at the immutable snapshot of a pinned TableVersion, so
/// everything below reads frozen state with no table lock held; with the
/// legacy protocol (or the stale-head fallback) they still point at the
/// live head under a shared lock. The executor cannot tell the
/// difference and must not care — both are plain `const Table*`s.
struct ScanTarget {
  std::vector<const Table*> parts;
  std::vector<std::uint64_t> bases;

  /// The full-table morsel spec: every partition's base rows plus an
  /// inserts morsel per partition with pending PDT inserts.
  std::vector<MorselPartition> FullWork() const {
    std::vector<MorselPartition> work;
    work.reserve(parts.size());
    for (std::size_t p = 0; p < parts.size(); ++p) {
      MorselPartition m;
      m.partition = p;
      m.ranges = {{0, parts[p]->num_rows()}};
      m.with_inserts = !parts[p]->pdt().inserts().empty();
      work.push_back(std::move(m));
    }
    return work;
  }
};

ScanTarget TargetOf(const LogicalNode& scan) {
  ScanTarget target;
  if (scan.table != nullptr) {
    target.parts.push_back(scan.table);
    target.bases.push_back(0);
    return target;
  }
  PIDX_CHECK(scan.ptable != nullptr);
  // Offsets accumulate *visible* rows: each partition emits exactly its
  // visible positions [0, visible_p) (deletes compact, inserts append),
  // so visible offsets keep global rowIDs contiguous and unique for any
  // pending deltas. With a clean PDT — the only state in which scan
  // rowIDs are fed back into updates, under the exclusive lock —
  // visible == base, matching PartitionedTable::ResolveRow exactly.
  std::uint64_t base = 0;
  for (std::size_t p = 0; p < scan.ptable->num_partitions(); ++p) {
    const Table& part = scan.ptable->partition(p);
    target.parts.push_back(&part);
    target.bases.push_back(base);
    base += part.num_visible_rows();
  }
  return target;
}

/// Pull-based scan source that repeatedly claims a morsel from the shared
/// queue and scans it — morsels may come from any partition of the scan
/// target, so workers flow freely across partitions. Base morsels scan
/// their partition-local row range with pending inserts suppressed; a
/// partition's dedicated inserts morsel scans only that partition's PDT
/// inserts, so each pending insert is emitted exactly once across all
/// workers. The patch filter (when set) is fused into every morsel's scan,
/// exactly as in the serial PatchIndex scan.
class MorselSourceOperator : public Operator {
 public:
  MorselSourceOperator(const ScanTarget* target,
                       std::vector<std::size_t> columns,
                       ScanOptions scan_options, MorselQueue* queue,
                       obs::NodeStats* stats = nullptr,
                       obs::TraceBuffer* trace = nullptr,
                       std::uint32_t trace_tid = 0)
      : target_(target),
        cols_(std::move(columns)),
        options_(scan_options),
        queue_(queue),
        stats_(stats),
        trace_(trace),
        trace_tid_(trace_tid) {}

  std::vector<ColumnType> OutputTypes() const override {
    std::vector<ColumnType> types;
    types.reserve(cols_.size());
    const Schema& schema = target_->parts[0]->schema();
    for (std::size_t c : cols_) types.push_back(schema.field(c).type);
    return types;
  }

  void Open() override { current_.reset(); }

  bool Next(Batch* out) override {
    for (;;) {
      if (current_ == nullptr) {
        Morsel morsel;
        if (!queue_->Next(&morsel)) {
          out->Reset(OutputTypes());
          return false;
        }
        if (stats_ != nullptr) {
          stats_->morsels.fetch_add(1, std::memory_order_relaxed);
        }
        if (trace_ != nullptr) morsel_start_us_ = trace_->NowUs();
        ScanOptions opts = options_;
        opts.row_id_offset = target_->bases[morsel.partition];
        if (morsel.kind == Morsel::Kind::kBase) {
          opts.source = ScanSource::kVisible;
          opts.scan_inserts = false;
          opts.ranges = {morsel.range};
        } else {
          opts.source = ScanSource::kInsertsOnly;
        }
        current_ = std::make_unique<ScanOperator>(
            *target_->parts[morsel.partition], cols_, opts);
        current_->Open();
      }
      if (current_->Next(out)) return true;
      current_->Close();
      current_.reset();
      if (trace_ != nullptr) {
        trace_->Add("morsel", trace_tid_, morsel_start_us_,
                    trace_->NowUs() - morsel_start_us_);
      }
    }
  }

  void Close() override { current_.reset(); }

 private:
  const ScanTarget* target_;
  std::vector<std::size_t> cols_;
  ScanOptions options_;
  MorselQueue* queue_;
  obs::NodeStats* stats_;
  obs::TraceBuffer* trace_;
  std::uint32_t trace_tid_;
  std::uint64_t morsel_start_us_ = 0;
  OperatorPtr current_;
};

/// Wraps `op` in a ProfiledOperator recording into `node`'s accumulator
/// when profiling is on; passes it through untouched otherwise. The node
/// must have been registered (ExecProfile::RegisterPlan) — workers call
/// this concurrently and may only do read-only lookups.
OperatorPtr MaybeProfile(OperatorPtr op, obs::ExecProfile* profile,
                         const LogicalNode* node, bool count_rows = true) {
  if (profile == nullptr) return op;
  obs::NodeStats* stats = profile->Find(node);
  PIDX_CHECK(stats != nullptr);
  return std::make_unique<obs::ProfiledOperator>(std::move(op), stats,
                                                 count_rows);
}

/// A Scan/Select/Project pipeline decomposed for per-worker instantiation:
/// the scan leaf plus the unary operators above it, bottom-up.
struct ChainSpec {
  const LogicalNode* scan = nullptr;
  std::vector<const LogicalNode*> ops;
};

bool AnalyzeChain(const LogicalNode& node, bool selects_only,
                  ChainSpec* spec) {
  // The selects-only shape is exactly the rewriter's select-chain notion;
  // delegate the validation so the definition lives in one place.
  if (selects_only && SelectChainScan(node) == nullptr) return false;
  const LogicalNode* cur = &node;
  std::vector<const LogicalNode*> top_down;
  while (cur->kind == LogicalNode::Kind::kSelect ||
         (!selects_only && cur->kind == LogicalNode::Kind::kProject)) {
    top_down.push_back(cur);
    cur = cur->children[0].get();
  }
  if (cur->kind != LogicalNode::Kind::kScan ||
      (cur->table == nullptr && cur->ptable == nullptr)) {
    return false;
  }
  spec->scan = cur;
  spec->ops.assign(top_down.rbegin(), top_down.rend());
  return true;
}

/// Stacks the given Select/Project nodes (bottom-up order) onto `op`.
/// Expression trees are shared between workers (they are immutable and
/// Eval() is const); operator instances are per-worker.
OperatorPtr ApplyUnaryOps(OperatorPtr op,
                          const std::vector<const LogicalNode*>& ops,
                          obs::ExecProfile* profile = nullptr) {
  for (const LogicalNode* node : ops) {
    if (node->kind == LogicalNode::Kind::kSelect) {
      op = std::make_unique<SelectOperator>(std::move(op), node->predicate);
    } else {
      op = std::make_unique<ProjectOperator>(std::move(op), node->exprs);
    }
    op = MaybeProfile(std::move(op), profile, node);
  }
  return op;
}

/// Instantiates one worker's copy of the pipeline over the shared queue.
/// `target` must outlive the pipeline (the callers keep it on the stack
/// for the duration of the parallel phase).
OperatorPtr BuildWorkerChain(const ChainSpec& spec, const ScanTarget* target,
                             const ScanOptions& scan_options,
                             MorselQueue* queue,
                             obs::ExecProfile* profile = nullptr,
                             obs::TraceBuffer* trace = nullptr,
                             std::uint32_t trace_tid = 0) {
  OperatorPtr scan = std::make_unique<MorselSourceOperator>(
      target, spec.scan->columns, scan_options, queue,
      profile != nullptr ? profile->Find(spec.scan) : nullptr, trace,
      trace_tid);
  return ApplyUnaryOps(MaybeProfile(std::move(scan), profile, spec.scan),
                       spec.ops, profile);
}

/// The full shape the morsel executor handles (PatchDistinct aside): an
/// optional Sort root, over an optional Aggregate/Distinct, over either a
/// single scan pipeline or Select/Project operators above an inner equi
/// join of two scan pipelines.
struct PlanShape {
  const LogicalNode* sort = nullptr;  // kSort (limit = TopN)
  const LogicalNode* agg = nullptr;   // kAggregate / kDistinct
  const LogicalNode* join = nullptr;  // kJoin
  std::vector<const LogicalNode*> mid_ops;  // between join and agg/sort
  ChainSpec left;                           // join children
  ChainSpec right;
  ChainSpec chain;  // the single pipeline when there is no join
};

bool AnalyzeShape(const LogicalNode& plan, PlanShape* shape) {
  const LogicalNode* cur = &plan;
  if (cur->kind == LogicalNode::Kind::kSort) {
    if (cur->sort_keys.empty()) return false;
    shape->sort = cur;
    cur = cur->children[0].get();
  }
  if (cur->kind == LogicalNode::Kind::kAggregate ||
      cur->kind == LogicalNode::Kind::kDistinct) {
    // Global aggregates (no group columns) have no per-worker partial
    // form here; they fall back to the serial tree.
    if (cur->group_cols.empty()) return false;
    shape->agg = cur;
    cur = cur->children[0].get();
  }
  std::vector<const LogicalNode*> top_down;
  while (cur->kind == LogicalNode::Kind::kSelect ||
         cur->kind == LogicalNode::Kind::kProject) {
    top_down.push_back(cur);
    cur = cur->children[0].get();
  }
  if (cur->kind == LogicalNode::Kind::kScan &&
      (cur->table != nullptr || cur->ptable != nullptr)) {
    shape->chain.scan = cur;
    shape->chain.ops.assign(top_down.rbegin(), top_down.rend());
    return true;
  }
  if (cur->kind == LogicalNode::Kind::kJoin) {
    shape->join = cur;
    shape->mid_ops.assign(top_down.rbegin(), top_down.rend());
    if (!AnalyzeChain(*cur->children[0], /*selects_only=*/false,
                      &shape->left) ||
        !AnalyzeChain(*cur->children[1], /*selects_only=*/false,
                      &shape->right)) {
      return false;
    }
    const auto left_types = LogicalOutputTypes(*cur->children[0]);
    const auto right_types = LogicalOutputTypes(*cur->children[1]);
    return cur->left_key < left_types.size() &&
           cur->right_key < right_types.size() &&
           left_types[cur->left_key] == ColumnType::kInt64 &&
           right_types[cur->right_key] == ColumnType::kInt64;
  }
  return false;
}

/// Column-wise batch concatenation (string payloads are moved).
void AppendBatch(Batch* dst, Batch&& src) {
  PIDX_DCHECK(dst->columns.size() == src.columns.size());
  for (std::size_t c = 0; c < dst->columns.size(); ++c) {
    ColumnVector& d = dst->columns[c];
    ColumnVector& s = src.columns[c];
    switch (d.type) {
      case ColumnType::kInt64:
        d.i64.insert(d.i64.end(), s.i64.begin(), s.i64.end());
        break;
      case ColumnType::kDouble:
        d.f64.insert(d.f64.end(), s.f64.begin(), s.f64.end());
        break;
      case ColumnType::kString:
        d.str.insert(d.str.end(), std::make_move_iterator(s.str.begin()),
                     std::make_move_iterator(s.str.end()));
        break;
    }
  }
  dst->row_ids.insert(dst->row_ids.end(), src.row_ids.begin(),
                      src.row_ids.end());
}

/// Drains `op` with column-wise accumulation (Collect() copies row by
/// row, which would dominate wide parallel scans). Every incoming batch
/// is charged to `mem` before it is appended, so a worker materializing
/// an over-budget result aborts mid-drain rather than after the damage.
Batch DrainColumnwise(Operator& op, obs::OpMemory* mem = nullptr) {
  op.Open();
  Batch all;
  all.Reset(op.OutputTypes());
  Batch in;
  while (op.Next(&in)) {
    if (mem != nullptr) mem->Add(ApproxBytes(in));
    AppendBatch(&all, std::move(in));
  }
  op.Close();
  return all;
}

/// Awaits every future before rethrowing the first failure: unwinding
/// while workers still reference shared state (result slots, the morsel
/// queue, partition tables) would be use-after-free.
void AwaitAll(std::vector<std::future<void>>& futures) {
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

/// Runs one pipeline instance per pool worker and returns the per-worker
/// results; `post` (when set) runs on each worker's drained part inside
/// the worker task — the parallel sort fuses its local sort here.
/// Futures (not WaitIdle) so concurrent queries sharing the pool only
/// await their own tasks.
std::vector<Batch> RunWorkers(
    ThreadPool& pool,
    const std::function<OperatorPtr(std::size_t)>& make_pipeline,
    const std::function<void(Batch*)>& post = nullptr,
    obs::TraceBuffer* trace = nullptr,
    obs::MemoryTracker* memory = nullptr,
    const char* mem_label = "Materialize",
    obs::NodeStats* mem_stats = nullptr) {
  const std::size_t workers = pool.num_threads();
  std::vector<Batch> parts(workers);
  std::vector<std::future<void>> futures;
  futures.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    futures.push_back(pool.SubmitWithFuture(
        [&parts, &make_pipeline, &post, trace, memory, mem_label, mem_stats,
         w] {
          obs::TraceSpan span(trace, "worker",
                              static_cast<std::uint32_t>(w + 1));
          // The query tracker rides the task, not the thread: pipeline
          // construction below may allocate accounted structures
          // (aggregate tables), and an over-budget charge unwinds into
          // this task's future, surfacing through AwaitAll.
          obs::ScopedQueryTracker query_mem(memory);
          obs::OpMemory mem(mem_label, mem_stats);
          OperatorPtr pipeline = make_pipeline(w);
          parts[w] = DrainColumnwise(*pipeline, &mem);
          if (post) post(&parts[w]);
        }));
  }
  AwaitAll(futures);
  return parts;
}

Batch ConcatParts(std::vector<Batch>&& parts,
                  const std::vector<ColumnType>& types) {
  // Largest part is moved instead of copied when it dwarfs the rest
  // (common under work stealing skew); everything else is appended.
  std::size_t total = 0;
  std::size_t biggest = 0;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    total += parts[i].num_rows();
    if (parts[i].num_rows() > parts[biggest].num_rows()) biggest = i;
  }
  Batch out;
  if (!parts.empty() && parts[biggest].num_rows() * 2 > total &&
      parts[biggest].columns.size() == types.size()) {
    out = std::move(parts[biggest]);
    parts[biggest] = Batch{};
  } else {
    out.Reset(types);
  }
  out.row_ids.reserve(total);
  for (std::size_t c = 0; c < out.columns.size(); ++c) {
    switch (out.columns[c].type) {
      case ColumnType::kInt64:
        out.columns[c].i64.reserve(total);
        break;
      case ColumnType::kDouble:
        out.columns[c].f64.reserve(total);
        break;
      case ColumnType::kString:
        out.columns[c].str.reserve(total);
        break;
    }
  }
  for (Batch& part : parts) {
    if (part.num_rows() == 0) continue;
    AppendBatch(&out, std::move(part));
  }
  return out;
}

/// Merge aggregation over concatenated per-worker partial aggregates:
/// group keys re-group on their own positions; partial counts merge by
/// summation, sums/mins/maxs by their own operator.
Batch MergeAggregateParts(std::vector<Batch>&& parts,
                          const std::vector<ColumnType>& partial_types,
                          std::size_t num_group_cols,
                          const std::vector<AggSpec>& aggs) {
  Batch all = ConcatParts(std::move(parts), partial_types);
  std::vector<std::size_t> group_cols(num_group_cols);
  for (std::size_t g = 0; g < num_group_cols; ++g) group_cols[g] = g;
  std::vector<AggSpec> merged;
  merged.reserve(aggs.size());
  for (std::size_t j = 0; j < aggs.size(); ++j) {
    AggSpec spec;
    spec.column = num_group_cols + j;
    spec.op = aggs[j].op == AggOp::kCount ? AggOp::kSum : aggs[j].op;
    merged.push_back(spec);
  }
  HashAggregateOperator merge(
      std::make_unique<InMemorySource>(std::move(all)), group_cols, merged);
  return Collect(merge);
}

// --------------------------------------------------------------- join

/// Streams the probe pipeline against the read-only partition tables and
/// emits matches in the join's logical left-then-right column layout
/// (the serial tree reaches the same layout via a reordering Project).
/// Output rowIDs are the probe side's, and batches are bounded at
/// ~kBatchSize, both as in HashJoinOperator.
class PartitionProbeOperator : public Operator {
 public:
  PartitionProbeOperator(OperatorPtr child,
                         const std::vector<JoinHashTable>* partitions,
                         std::size_t mask, std::size_t probe_key,
                         bool build_is_left,
                         std::vector<ColumnType> build_types)
      : child_(std::move(child)),
        partitions_(partitions),
        mask_(mask),
        probe_key_(probe_key),
        probe_width_(child_->OutputTypes().size()),
        build_width_(build_types.size()),
        build_off_(build_is_left ? 0 : probe_width_),
        probe_off_(build_is_left ? build_width_ : 0) {
    std::vector<ColumnType> probe_types = child_->OutputTypes();
    if (build_is_left) {
      output_types_ = std::move(build_types);
      output_types_.insert(output_types_.end(), probe_types.begin(),
                           probe_types.end());
    } else {
      output_types_ = std::move(probe_types);
      output_types_.insert(output_types_.end(), build_types.begin(),
                           build_types.end());
    }
  }

  std::vector<ColumnType> OutputTypes() const override {
    return output_types_;
  }

  void Open() override {
    child_->Open();
    probe_pos_ = 0;
    probe_done_ = false;
    probe_batch_.Clear();
  }

  bool Next(Batch* out) override {
    out->Reset(output_types_);
    while (out->num_rows() < kBatchSize) {
      if (probe_pos_ >= probe_batch_.num_rows()) {
        if (probe_done_ || !child_->Next(&probe_batch_)) {
          probe_done_ = true;
          break;
        }
        probe_pos_ = 0;
        continue;
      }
      const std::size_t i = probe_pos_++;
      const std::int64_t key = probe_batch_.columns[probe_key_].i64[i];
      const JoinHashTable& table =
          (*partitions_)[JoinKeyPartition(key, mask_)];
      const Batch& build = table.rows();
      table.ForEachMatch(key, [&](std::size_t b) {
        for (std::size_t c = 0; c < build_width_; ++c) {
          out->columns[build_off_ + c].AppendFrom(build.columns[c], b);
        }
        for (std::size_t c = 0; c < probe_width_; ++c) {
          out->columns[probe_off_ + c].AppendFrom(probe_batch_.columns[c],
                                                  i);
        }
        out->row_ids.push_back(probe_batch_.row_ids[i]);
      });
    }
    return out->num_rows() > 0;
  }

  void Close() override { child_->Close(); }

 private:
  OperatorPtr child_;
  const std::vector<JoinHashTable>* partitions_;
  std::size_t mask_;
  std::size_t probe_key_;
  std::size_t probe_width_;
  std::size_t build_width_;
  std::size_t build_off_;
  std::size_t probe_off_;
  std::vector<ColumnType> output_types_;

  Batch probe_batch_;
  std::size_t probe_pos_ = 0;
  bool probe_done_ = false;
};

/// Phases one and two of the parallel join: every worker drains the build
/// pipeline over a shared morsel queue, hash-partitioning its rows into
/// per-worker spill batches; after the barrier, one task per partition
/// assembles that partition's hash table from all workers' spills. When
/// the rewriter annotated a NUC index on the build key, rows the index
/// proves unique skip duplicate chaining (exceptions and pending inserts
/// take the chained path; see JoinHashTable for why this stays exact).
std::vector<JoinHashTable> BuildJoinPartitions(
    const ChainSpec& build_spec, const ScanTarget& build_target,
    std::size_t build_key, const std::vector<ColumnType>& build_types,
    const PatchIndex* build_nuc, std::size_t mask, ThreadPool& pool,
    const ParallelExecOptions& options, obs::ExecProfile* profile,
    obs::NodeStats* join_stats) {
  const std::size_t workers = pool.num_threads();
  const std::size_t num_partitions = mask + 1;
  MorselQueue queue(build_target.FullWork(), options.morsel_rows);
  const ScanOptions scan_opts;

  std::vector<std::vector<Batch>> spill(workers);
  std::vector<std::future<void>> futures;
  futures.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    futures.push_back(pool.SubmitWithFuture([&, w] {
      obs::TraceSpan span(options.trace, "join_build",
                          static_cast<std::uint32_t>(w + 1));
      obs::ScopedQueryTracker query_mem(options.memory);
      obs::OpMemory mem("HashJoin build", join_stats);
      std::vector<Batch>& local = spill[w];
      local.resize(num_partitions);
      for (Batch& b : local) b.Reset(build_types);
      OperatorPtr pipeline = BuildWorkerChain(
          build_spec, &build_target, scan_opts, &queue, profile, options.trace,
          static_cast<std::uint32_t>(w + 1));
      pipeline->Open();
      Batch in;
      while (pipeline->Next(&in)) {
        mem.Add(ApproxBytes(in));
        const auto& keys = in.columns[build_key].i64;
        for (std::size_t i = 0; i < in.num_rows(); ++i) {
          local[JoinKeyPartition(keys[i], mask)].AppendRowFrom(in, i);
        }
      }
      pipeline->Close();
    }));
  }
  AwaitAll(futures);  // barrier between build scan and table assembly

  std::vector<JoinHashTable> partitions(num_partitions);
  futures.clear();
  futures.reserve(num_partitions);
  for (std::size_t p = 0; p < num_partitions; ++p) {
    futures.push_back(pool.SubmitWithFuture([&, p] {
      obs::ScopedQueryTracker query_mem(options.memory);
      obs::OpMemory mem("HashJoin build", join_stats);
      JoinHashTable& t = partitions[p];
      t.Reset(build_types);
      std::size_t partition_rows = 0;
      for (std::size_t w = 0; w < workers; ++w) {
        partition_rows += spill[w][p].num_rows();
      }
      t.Reserve(partition_rows);
      for (std::size_t w = 0; w < workers; ++w) {
        const Batch& b = spill[w][p];
        const auto& keys = b.columns[build_key].i64;
        for (std::size_t i = 0; i < b.num_rows(); ++i) {
          const bool hint = build_nuc != nullptr &&
                            b.row_ids[i] < build_nuc->NumRows() &&
                            !build_nuc->IsPatch(b.row_ids[i]);
          t.AddRow(b, i, keys[i], hint);
          if ((i & 1023u) == 1023u) mem.GrowTo(t.ApproxBytes());
        }
      }
      mem.GrowTo(t.ApproxBytes());
    }));
  }
  AwaitAll(futures);
  return partitions;
}

// ------------------------------------------------------- patch distinct

bool IsSupportedPatchConstraint(const PatchIndex* idx) {
  return idx != nullptr &&
         (idx->constraint() == ConstraintKind::kNearlyUnique ||
          idx->constraint() == ConstraintKind::kNearlyConstant);
}

/// The PatchDistinct rewrite (paper §3.3 Figure 2 left), morsel-parallel:
/// phase one streams the constraint-satisfying tuples (unaggregated — the
/// constraint guarantees uniqueness), phase two aggregates the patches
/// per worker and merges. For an NCC index the excluded subtree collapses
/// into the materialized constant instead of a scan phase.
bool ExecutePatchDistinct(const LogicalNode& node, ThreadPool& pool,
                          const ParallelExecOptions& options, Batch* out) {
  const PatchIndex* idx = node.pidx;
  ChainSpec spec;
  if (!AnalyzeChain(*node.children[0], /*selects_only=*/true, &spec)) {
    return false;
  }
  // Patch rewrites only fire on single-table scans (FindIndex requires
  // the plain-table view), so the target is always one partition here.
  const Table& table = *spec.scan->table;
  const ScanTarget target = TargetOf(*spec.scan);
  if (table.num_visible_rows() < options.min_parallel_rows) return false;
  obs::ExecProfile* profile = options.profile;
  if (profile != nullptr) profile->RegisterPlan(node);
  obs::NodeStats* node_stats =
      profile != nullptr ? profile->Find(&node) : nullptr;
  WallTimer total_timer;
  const bool has_inserts = !table.pdt().inserts().empty();
  const std::vector<RowRange> full{{0, table.num_rows()}};
  const std::vector<ColumnType> out_types = LogicalOutputTypes(node);

  std::vector<ExprPtr> group_exprs;
  for (std::size_t c : node.group_cols) group_exprs.push_back(Col(c));

  Batch result;
  result.Reset(out_types);

  if (idx->constraint() == ConstraintKind::kNearlyConstant) {
    if (idx->NumRows() > idx->NumPatches() && idx->has_constant()) {
      result.columns[0].i64.push_back(idx->constant_value());
      result.row_ids.push_back(0);
    }
  } else {
    // Exclude-patches phase: tuples satisfying the NUC are unique, so the
    // aggregation is dropped and workers stream them straight through.
    MorselQueue exclude_queue(full, has_inserts, options.morsel_rows);
    ScanOptions exclude_opts;
    exclude_opts.patch_filter = idx;
    exclude_opts.patch_mode = PatchSelectMode::kExcludePatches;
    std::vector<Batch> parts = RunWorkers(
        pool,
        [&spec, &target, &exclude_opts, &exclude_queue, &group_exprs, profile,
         &options](std::size_t w) -> OperatorPtr {
          return std::make_unique<ProjectOperator>(
              BuildWorkerChain(spec, &target, exclude_opts, &exclude_queue,
                               profile, options.trace,
                               static_cast<std::uint32_t>(w + 1)),
              group_exprs);
        },
        nullptr, options.trace, options.memory, "PatchDistinct", node_stats);
    Batch excluded = ConcatParts(std::move(parts), out_types);
    AppendBatch(&result, std::move(excluded));
  }

  // Use-patches phase: per-worker distinct over the exceptions, merged by
  // a final distinct.
  MorselQueue use_queue(full, has_inserts, options.morsel_rows);
  ScanOptions use_opts;
  use_opts.patch_filter = idx;
  use_opts.patch_mode = PatchSelectMode::kUsePatches;
  std::vector<Batch> parts = RunWorkers(
      pool,
      [&spec, &target, &use_opts, &use_queue, &node, profile,
       &options](std::size_t w) -> OperatorPtr {
        return std::make_unique<HashAggregateOperator>(
            BuildWorkerChain(spec, &target, use_opts, &use_queue, profile,
                             options.trace,
                             static_cast<std::uint32_t>(w + 1)),
            node.group_cols, std::vector<AggSpec>{});
      },
      nullptr, options.trace, options.memory, "PatchDistinct", node_stats);
  HashAggregateOperator merge(
      std::make_unique<InMemorySource>(ConcatParts(std::move(parts),
                                                   out_types)),
      std::vector<std::size_t>{0}, std::vector<AggSpec>{});
  Batch patches = Collect(merge);
  if (idx->constraint() == ConstraintKind::kNearlyConstant) {
    // Deduplicate against the constant: a patch row modified back to the
    // constant may still hold it (mirrors the serial plan's selection).
    Batch filtered;
    filtered.Reset(out_types);
    for (std::size_t i = 0; i < patches.num_rows(); ++i) {
      if (patches.columns[0].i64[i] != idx->constant_value()) {
        filtered.AppendRowFrom(patches, i);
      }
    }
    patches = std::move(filtered);
  }
  AppendBatch(&result, std::move(patches));
  if (profile != nullptr) {
    // The PatchDistinct node itself is the coordinator's merge: final
    // rows and end-to-end wall time (its scan chain ran twice — once per
    // phase — so the chain nodes below it accumulate both passes).
    obs::NodeStats* stats = profile->Find(&node);
    stats->rows.store(result.num_rows(), std::memory_order_relaxed);
    stats->workers.store(1, std::memory_order_relaxed);
    stats->time_ns.store(
        static_cast<std::uint64_t>(total_timer.ElapsedNanos()),
        std::memory_order_relaxed);
  }
  *out = std::move(result);
  return true;
}

}  // namespace

bool ParallelPlanSupported(const LogicalNode& plan) {
  if (plan.kind == LogicalNode::Kind::kPatchDistinct) {
    // Single group column only: the rewriter never emits more, and the
    // final use-patches merge (and the NCC constant row) assume it.
    ChainSpec spec;
    return IsSupportedPatchConstraint(plan.pidx) &&
           plan.group_cols.size() == 1 &&
           AnalyzeChain(*plan.children[0], /*selects_only=*/true, &spec);
  }
  PlanShape shape;
  return AnalyzeShape(plan, &shape);
}

bool ExecuteParallel(const LogicalNode& plan, ThreadPool& pool,
                     const ParallelExecOptions& options, Batch* out,
                     ParallelExecReport* report) {
  if (plan.kind == LogicalNode::Kind::kPatchDistinct) {
    return ParallelPlanSupported(plan) &&
           ExecutePatchDistinct(plan, pool, options, out);
  }
  PlanShape shape;
  if (!AnalyzeShape(plan, &shape)) return false;

  // Size gating: below the threshold, forking workers costs more than
  // running the serial tree. For a join, the larger input drives.
  std::uint64_t driving_rows;
  if (shape.join != nullptr) {
    driving_rows = std::max(ScanVisibleRows(*shape.left.scan),
                            ScanVisibleRows(*shape.right.scan));
  } else {
    driving_rows = ScanVisibleRows(*shape.chain.scan);
  }
  if (driving_rows < options.min_parallel_rows) return false;

  obs::ExecProfile* profile = options.profile;
  if (profile != nullptr) profile->RegisterPlan(plan);

  // A Sort directly over the pipeline runs as per-worker local sorts plus
  // a k-way merge; a Sort over an Aggregate is applied serially to the
  // merged (small) aggregate result instead.
  const bool local_sort = shape.sort != nullptr && shape.agg == nullptr;
  std::function<void(Batch*)> post;
  if (local_sort) {
    const LogicalNode* sort = shape.sort;
    obs::NodeStats* sort_stats =
        profile != nullptr ? profile->Find(sort) : nullptr;
    post = [sort, sort_stats](Batch* part) {
      WallTimer timer;
      SortBatchRows(part, sort->sort_keys, sort->limit);
      if (sort_stats != nullptr) {
        sort_stats->workers.fetch_add(1, std::memory_order_relaxed);
        sort_stats->AddWorkerTime(
            static_cast<std::uint64_t>(timer.ElapsedNanos()));
      }
    };
  }

  // Memory attribution for the per-worker result materialization: sort
  // buffers belong to the Sort node, partial-aggregate outputs to the
  // Aggregate node, and a plain pipeline's result to the plan root.
  const LogicalNode* mat_node = local_sort               ? shape.sort
                                : shape.agg != nullptr   ? shape.agg
                                                         : &plan;
  const char* mat_label = local_sort             ? "Sort"
                          : shape.agg != nullptr ? "HashAggregate"
                                                 : "Materialize";
  obs::NodeStats* mat_stats =
      profile != nullptr ? profile->Find(mat_node) : nullptr;

  std::vector<Batch> parts;
  if (shape.join != nullptr) {
    const LogicalNode& join = *shape.join;
    // Build on the side with the lower estimated cardinality (§3.3: the
    // patches/dimension side is typically the smallest). The serial tree
    // additionally prefers a sorted child as build to preserve probe-side
    // order — irrelevant here, where worker interleaving loses input
    // order anyway.
    const bool build_left = EstimateCardinality(*join.children[0]) <=
                            EstimateCardinality(*join.children[1]);
    const ChainSpec& build_spec = build_left ? shape.left : shape.right;
    const ChainSpec& probe_spec = build_left ? shape.right : shape.left;
    const std::size_t build_key = build_left ? join.left_key : join.right_key;
    const std::size_t probe_key = build_left ? join.right_key : join.left_key;
    const PatchIndex* build_nuc =
        build_left ? join.left_key_nuc : join.right_key_nuc;
    const std::vector<ColumnType> build_types =
        LogicalOutputTypes(*join.children[build_left ? 0 : 1]);

    std::size_t partition_bits = 0;
    while ((std::size_t{1} << partition_bits) < pool.num_threads()) {
      ++partition_bits;
    }
    const std::size_t mask = (std::size_t{1} << partition_bits) - 1;

    const ScanTarget build_target = TargetOf(*build_spec.scan);
    WallTimer build_timer;
    const std::vector<JoinHashTable> partitions = BuildJoinPartitions(
        build_spec, build_target, build_key, build_types, build_nuc, mask,
        pool, options, profile,
        profile != nullptr ? profile->Find(shape.join) : nullptr);
    if (profile != nullptr) {
      profile->Find(shape.join)->build_ns.store(
          static_cast<std::uint64_t>(build_timer.ElapsedNanos()),
          std::memory_order_relaxed);
    }

    const ScanTarget probe_target = TargetOf(*probe_spec.scan);
    MorselQueue probe_queue(probe_target.FullWork(), options.morsel_rows);
    const ScanOptions scan_opts;
    parts = RunWorkers(
        pool,
        [&](std::size_t w) {
          OperatorPtr op = BuildWorkerChain(
              probe_spec, &probe_target, scan_opts, &probe_queue, profile,
              options.trace, static_cast<std::uint32_t>(w + 1));
          op = std::make_unique<PartitionProbeOperator>(
              std::move(op), &partitions, mask, probe_key, build_left,
              build_types);
          op = MaybeProfile(std::move(op), profile, shape.join);
          op = ApplyUnaryOps(std::move(op), shape.mid_ops, profile);
          if (shape.agg != nullptr) {
            auto agg = std::make_unique<HashAggregateOperator>(
                std::move(op), shape.agg->group_cols,
                shape.agg->kind == LogicalNode::Kind::kAggregate
                    ? shape.agg->aggs
                    : std::vector<AggSpec>{});
            agg->SetMemoryStats(mat_stats);
            op = std::move(agg);
            // Per-worker partial-group counts depend on morsel scheduling;
            // the coordinator stores the merged count below instead.
            op = MaybeProfile(std::move(op), profile, shape.agg,
                              /*count_rows=*/false);
          }
          return op;
        },
        post, options.trace, options.memory, mat_label, mat_stats);
  } else {
    const ScanTarget target = TargetOf(*shape.chain.scan);
    MorselQueue queue(target.FullWork(), options.morsel_rows);
    const ScanOptions scan_opts;  // plain kVisible scan, as the serial tree
    parts = RunWorkers(
        pool,
        [&](std::size_t w) {
          OperatorPtr op = BuildWorkerChain(
              shape.chain, &target, scan_opts, &queue, profile, options.trace,
              static_cast<std::uint32_t>(w + 1));
          if (shape.agg != nullptr) {
            auto agg = std::make_unique<HashAggregateOperator>(
                std::move(op), shape.agg->group_cols,
                shape.agg->kind == LogicalNode::Kind::kAggregate
                    ? shape.agg->aggs
                    : std::vector<AggSpec>{});
            agg->SetMemoryStats(mat_stats);
            op = std::move(agg);
            op = MaybeProfile(std::move(op), profile, shape.agg,
                              /*count_rows=*/false);
          }
          return op;
        },
        post, options.trace, options.memory, mat_label, mat_stats);
  }

  const std::vector<ColumnType> out_types = LogicalOutputTypes(plan);
  if (shape.agg != nullptr) {
    WallTimer merge_timer;
    Batch merged = MergeAggregateParts(
        std::move(parts), out_types, shape.agg->group_cols.size(),
        shape.agg->kind == LogicalNode::Kind::kAggregate
            ? shape.agg->aggs
            : std::vector<AggSpec>{});
    if (profile != nullptr) {
      obs::NodeStats* agg_stats = profile->Find(shape.agg);
      agg_stats->rows.store(merged.num_rows(), std::memory_order_relaxed);
      agg_stats->time_ns.fetch_add(
          static_cast<std::uint64_t>(merge_timer.ElapsedNanos()),
          std::memory_order_relaxed);
    }
    if (shape.sort != nullptr) {
      WallTimer sort_timer;
      SortBatchRows(&merged, shape.sort->sort_keys, shape.sort->limit);
      if (profile != nullptr) {
        obs::NodeStats* sort_stats = profile->Find(shape.sort);
        sort_stats->rows.store(merged.num_rows(), std::memory_order_relaxed);
        sort_stats->workers.store(1, std::memory_order_relaxed);
        sort_stats->AddWorkerTime(
            static_cast<std::uint64_t>(sort_timer.ElapsedNanos()));
      }
    }
    *out = std::move(merged);
  } else if (local_sort) {
    WallTimer merge_timer;
    *out = MergeSortedBatches(std::move(parts), shape.sort->sort_keys,
                              shape.sort->limit);
    if (profile != nullptr) {
      obs::NodeStats* sort_stats = profile->Find(shape.sort);
      sort_stats->rows.store(out->num_rows(), std::memory_order_relaxed);
      sort_stats->time_ns.fetch_add(
          static_cast<std::uint64_t>(merge_timer.ElapsedNanos()),
          std::memory_order_relaxed);
    }
  } else {
    *out = ConcatParts(std::move(parts), out_types);
  }

  if (report != nullptr) {
    report->parallel_join = shape.join != nullptr;
    report->parallel_sort = local_sort;
  }
  return true;
}

}  // namespace patchindex
