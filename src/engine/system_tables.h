#ifndef PATCHINDEX_ENGINE_SYSTEM_TABLES_H_
#define PATCHINDEX_ENGINE_SYSTEM_TABLES_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "optimizer/plan.h"
#include "storage/table.h"

namespace patchindex {

class Engine;

/// Replaces every `pi_stats` scan in `plan` (tagged by the binder via
/// LogicalNode::system_table; the scan points at the schema-only
/// placeholder) with a table freshly materialized from the engine's live
/// state — metrics registry, flight recorder, server connections,
/// catalog, durability manager. The materialized tables are appended to
/// `owned`, which must outlive the plan's execution; the plan itself must
/// be a per-execution clone (the cached bound plan keeps pointing at the
/// placeholders).
///
/// Locking: snapshots that read per-table state (pi_stats.tables /
/// partitions / wal) take each table's shared lock one at a time, never
/// nested — callers must hold no table locks.
Status MaterializeSystemScans(LogicalNode* plan, Engine* engine,
                              std::vector<std::unique_ptr<Table>>* owned);

}  // namespace patchindex

#endif  // PATCHINDEX_ENGINE_SYSTEM_TABLES_H_
