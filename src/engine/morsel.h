#ifndef PATCHINDEX_ENGINE_MORSEL_H_
#define PATCHINDEX_ENGINE_MORSEL_H_

#include <atomic>
#include <cstddef>
#include <vector>

#include "storage/minmax.h"

namespace patchindex {

/// Base rows per morsel. Large enough that claiming a morsel (one atomic
/// increment) is noise against scanning it, small enough that stragglers
/// rebalance (morsel-driven parallelism, Leis et al., SIGMOD'14).
inline constexpr std::size_t kDefaultMorselRows = 64 * 1024;

/// A unit of scan work claimed by a worker: either a contiguous base-row
/// range of one partition, or the single pseudo-morsel covering that
/// partition's pending PDT inserts (which one worker scans via
/// ScanSource::kInsertsOnly so they are emitted exactly once). For plain
/// (unpartitioned) tables `partition` is always 0.
struct Morsel {
  enum class Kind { kBase, kInserts };
  Kind kind = Kind::kBase;
  std::size_t partition = 0;
  RowRange range{0, 0};  // partition-local base-row range; unused for kInserts
};

/// Scan work of one partition, for MorselQueue construction.
struct MorselPartition {
  std::size_t partition = 0;
  std::vector<RowRange> ranges;  // partition-local base-row ranges
  bool with_inserts = false;     // partition has pending PDT inserts
};

/// Shared work queue the morsel-driven executor's workers pull from.
/// Morsels are pre-chopped at construction — across every partition of a
/// partitioned table, so one queue drives a whole-table scan and workers
/// flow freely between partitions (paper §3.2: partitioning is
/// transparent to query processing). Claiming is one relaxed fetch_add,
/// so any number of workers can drain the queue without locks and faster
/// workers automatically steal the remaining work.
///
/// Thread-safety: construction is single-threaded; afterwards the morsel
/// list is immutable and Next() may be called from any number of threads
/// concurrently. The queue does not own the scanned table — callers keep
/// it alive (and, for catalog tables, shared-locked) until every worker
/// has drained.
class MorselQueue {
 public:
  /// Single-table convenience: all ranges belong to partition 0.
  MorselQueue(const std::vector<RowRange>& base_ranges, bool with_inserts,
              std::size_t morsel_rows = kDefaultMorselRows);

  /// Partition-aware construction: each partition's ranges are chopped
  /// independently; partitions with pending inserts get one dedicated
  /// inserts morsel each (appended after all base morsels).
  explicit MorselQueue(const std::vector<MorselPartition>& partitions,
                       std::size_t morsel_rows = kDefaultMorselRows);

  /// Claims the next morsel; false when the queue is drained.
  bool Next(Morsel* out);

  std::size_t num_base_morsels() const { return num_base_; }

 private:
  void Chop(const std::vector<MorselPartition>& partitions,
            std::size_t morsel_rows);

  std::vector<Morsel> morsels_;  // base morsels, then inserts morsels
  std::size_t num_base_ = 0;
  std::atomic<std::size_t> next_{0};
};

}  // namespace patchindex

#endif  // PATCHINDEX_ENGINE_MORSEL_H_
