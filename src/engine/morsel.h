#ifndef PATCHINDEX_ENGINE_MORSEL_H_
#define PATCHINDEX_ENGINE_MORSEL_H_

#include <atomic>
#include <cstddef>
#include <vector>

#include "storage/minmax.h"

namespace patchindex {

/// Base rows per morsel. Large enough that claiming a morsel (one atomic
/// increment) is noise against scanning it, small enough that stragglers
/// rebalance (morsel-driven parallelism, Leis et al., SIGMOD'14).
inline constexpr std::size_t kDefaultMorselRows = 64 * 1024;

/// A unit of scan work claimed by a worker: either a contiguous base-row
/// range, or the single pseudo-morsel covering the table's pending PDT
/// inserts (which one worker scans via ScanSource::kInsertsOnly so they
/// are emitted exactly once).
struct Morsel {
  enum class Kind { kBase, kInserts };
  Kind kind = Kind::kBase;
  RowRange range{0, 0};  // base-row range; unused for kInserts
};

/// Shared work queue the morsel-driven executor's workers pull from.
/// Morsels are pre-chopped at construction; claiming is one relaxed
/// fetch_add, so any number of workers can drain the queue without locks
/// and faster workers automatically steal the remaining work.
///
/// Thread-safety: construction is single-threaded; afterwards the morsel
/// list is immutable and Next() may be called from any number of threads
/// concurrently. The queue does not own the scanned table — callers keep
/// it alive (and, for catalog tables, shared-locked) until every worker
/// has drained.
class MorselQueue {
 public:
  MorselQueue(const std::vector<RowRange>& base_ranges, bool with_inserts,
              std::size_t morsel_rows = kDefaultMorselRows);

  /// Claims the next morsel; false when the queue is drained.
  bool Next(Morsel* out);

  std::size_t num_base_morsels() const { return morsels_.size(); }

 private:
  std::vector<RowRange> morsels_;
  bool with_inserts_;
  std::atomic<std::size_t> next_{0};
};

}  // namespace patchindex

#endif  // PATCHINDEX_ENGINE_MORSEL_H_
