// Engine-side materialization of the pi_stats system schema: the binder
// resolves pi_stats.* names against static placeholders (obs/
// system_tables.h); per execution this module swaps each tagged scan's
// placeholder for a table filled from live engine state, so the existing
// scan/filter/project/aggregate operators serve system data unchanged.

#include "engine/system_tables.h"

#include <cmath>
#include <shared_mutex>
#include <string>
#include <utility>

#include "engine/engine.h"
#include "obs/mem_tracker.h"
#include "obs/metrics.h"
#include "obs/system_tables.h"

namespace patchindex {

namespace {

Value I(std::int64_t v) { return Value(v); }
Value I(std::uint64_t v) { return Value(static_cast<std::int64_t>(v)); }
Value D(double v) { return Value(v); }
Value S(std::string v) { return Value(std::move(v)); }

void FillMetrics(Engine* engine, Table* out) {
  for (const obs::MetricSample& s : engine->metrics().SnapshotAll()) {
    Row r;
    r.cells = {S(s.name),
               S(std::string(s.kind)),
               I(s.value),
               I(s.count),
               I(s.sum_us),
               I(static_cast<std::int64_t>(std::llround(s.p50_us))),
               I(static_cast<std::int64_t>(std::llround(s.p95_us))),
               I(static_cast<std::int64_t>(std::llround(s.p99_us)))};
    out->AppendRow(r);
  }
}

void FillQueries(Engine* engine, Table* out) {
  for (const obs::QueryRecord& q : engine->recorder().CompletedSnapshot()) {
    Row r;
    r.cells = {I(q.query_id),
               I(q.session_id),
               I(q.connection_id),
               S(q.sql),
               S(q.status),
               S(q.error),
               I(q.rows_returned),
               I(q.rows_affected),
               I(std::int64_t{q.parallel ? 1 : 0}),
               I(q.csn),
               I(q.start_unix_us),
               D(q.total_ms),
               D(q.parse_ms),
               D(q.bind_ms),
               D(q.optimize_ms),
               D(q.execute_ms),
               D(q.commit_wait_ms),
               D(q.commit_ms),
               I(q.peak_mem_bytes)};
    out->AppendRow(r);
  }
}

void FillActiveQueries(Engine* engine, Table* out) {
  for (const obs::ActiveQuery& q : engine->recorder().ActiveSnapshot()) {
    Row r;
    r.cells = {I(q.query_id),      I(q.session_id), I(q.connection_id),
               S(q.sql),           S(q.phase),      D(q.elapsed_ms),
               I(q.start_unix_us), I(q.mem_bytes)};
    out->AppendRow(r);
  }
}

void FillConnections(Engine* engine, Table* out) {
  for (const obs::ConnectionInfo& c : engine->ConnectionsSnapshot()) {
    Row r;
    r.cells = {I(c.connection_id), I(c.session_id),  S(c.remote),
               S(c.state),         I(c.queue_depth), I(c.queries)};
    out->AppendRow(r);
  }
}

/// Per-partition delta counts of one partition's PDT.
struct PdtCounts {
  std::uint64_t inserts = 0;
  std::uint64_t deletes = 0;
  std::uint64_t modifies = 0;
};

PdtCounts CountPdt(const Table& partition) {
  PdtCounts c;
  c.inserts = partition.pdt().inserts().size();
  c.deletes = partition.pdt().deletes().size();
  c.modifies = partition.pdt().modifies().size();
  return c;
}

/// Visits every catalog table under its shared lock (one at a time, never
/// nested), skipping tables dropped between listing and locking. The
/// callback also receives the resolved TableRef for version-layer
/// queries (Catalog::VersionStatsFor).
template <typename Fn>
void ForEachTableLocked(Engine* engine, Fn fn) {
  Catalog& catalog = engine->catalog();
  for (const std::string& name : catalog.TableNames()) {
    Catalog::TableRef ref = catalog.Ref(name);
    if (!ref) continue;
    std::shared_lock<std::shared_mutex> guard(*ref.lock);
    if (catalog.FindPartitionedTable(name) != ref.ptable) continue;
    fn(name, ref, *ref.ptable);
  }
}

void FillTables(Engine* engine, Table* out) {
  ForEachTableLocked(engine, [&](const std::string& name,
                                 const Catalog::TableRef& ref,
                                 const PartitionedTable& table) {
    std::uint64_t rows = 0;
    PdtCounts pdt;
    for (std::size_t p = 0; p < table.num_partitions(); ++p) {
      rows += table.partition(p).num_visible_rows();
      const PdtCounts c = CountPdt(table.partition(p));
      pdt.inserts += c.inserts;
      pdt.deletes += c.deletes;
      pdt.modifies += c.modifies;
    }
    const std::size_t indexes =
        engine->catalog().manager().IndexesOn(table).size();
    TableDurability durable;
    if (engine->durability() != nullptr) {
      durable = engine->durability()->InspectTable(name);
    }
    const Catalog::VersionStats versions =
        engine->catalog().VersionStatsFor(ref);
    Row r;
    r.cells = {S(name),
               I(static_cast<std::uint64_t>(table.num_partitions())),
               I(rows),
               I(pdt.inserts),
               I(pdt.deletes),
               I(pdt.modifies),
               I(static_cast<std::uint64_t>(indexes)),
               I(std::int64_t{durable.tracked ? 1 : 0}),
               I(durable.wal_bytes),
               I(durable.snapshot_csn),
               I(durable.next_csn),
               I(versions.live),
               I(versions.oldest_live_csn)};
    out->AppendRow(r);
  });
}

void FillPartitions(Engine* engine, Table* out) {
  ForEachTableLocked(engine, [&](const std::string& name,
                                 const Catalog::TableRef&,
                                 const PartitionedTable& table) {
    for (std::size_t p = 0; p < table.num_partitions(); ++p) {
      const Table& part = table.partition(p);
      const PdtCounts pdt = CountPdt(part);
      std::size_t indexes = 0;
      for (const PatchIndex* idx :
           engine->catalog().manager().IndexesOn(table)) {
        if (&idx->table() == &part) ++indexes;
      }
      Row r;
      r.cells = {S(name),
                 I(static_cast<std::uint64_t>(p)),
                 I(part.num_visible_rows()),
                 I(pdt.inserts),
                 I(pdt.deletes),
                 I(pdt.modifies),
                 I(static_cast<std::uint64_t>(indexes))};
      out->AppendRow(r);
    }
  });
}

void FillWal(Engine* engine, Table* out) {
  if (engine->durability() == nullptr) return;
  ForEachTableLocked(engine, [&](const std::string& name,
                                 const Catalog::TableRef&,
                                 const PartitionedTable&) {
    const TableDurability d = engine->durability()->InspectTable(name);
    if (!d.tracked) return;
    for (std::size_t p = 0; p < d.partition_wal_bytes.size(); ++p) {
      Row r;
      r.cells = {S(name),
                 I(static_cast<std::uint64_t>(p)),
                 I(d.partition_wal_bytes[p]),
                 I(d.snapshot_csn),
                 I(d.next_csn),
                 I(std::int64_t{d.broken ? 1 : 0})};
      out->AppendRow(r);
    }
  });
}

void FillMemory(Engine* engine, Table* out) {
  const auto tracker_row = [&](const char* scope,
                               const obs::MemoryTracker& t) {
    Row r;
    r.cells = {S(scope), S(t.name()), I(t.current()), I(t.peak()),
               I(t.limit())};
    out->AppendRow(r);
  };
  tracker_row("process", obs::ProcessMemoryRoot());
  tracker_row("engine", engine->memory());
  obs::MemoryTrackerSample server;
  if (engine->SampleServerMemory(&server)) {
    Row r;
    r.cells = {S("server"), S(server.name), I(server.current_bytes),
               I(server.peak_bytes), I(server.limit_bytes)};
    out->AppendRow(r);
  }
  // In-flight statements, sampled through the flight recorder (the
  // trackers themselves retire with their statements; the snapshot copies
  // the figures out under the recorder's lock).
  for (const obs::ActiveQuery& q : engine->recorder().ActiveSnapshot()) {
    if (q.mem_bytes == 0 && q.mem_peak_bytes == 0) continue;
    Row r;
    r.cells = {S("query"), S("query#" + std::to_string(q.query_id)),
               I(q.mem_bytes), I(q.mem_peak_bytes),
               I(engine->options().query_memory_limit)};
    out->AppendRow(r);
  }
  // Resident table state is measured pull-style, not tracked, so it has
  // no peak or limit.
  ForEachTableLocked(engine, [&](const std::string& name,
                                 const Catalog::TableRef&,
                                 const PartitionedTable& table) {
    Row r;
    r.cells = {S("table"), S(name), I(table.MemoryUsageBytes()),
               I(std::int64_t{0}), I(std::int64_t{0})};
    out->AppendRow(r);
  });
}

void FillHistograms(Engine* engine, Table* out) {
  for (const obs::NamedHistogram& h : engine->metrics().SnapshotHistograms()) {
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < obs::kHistogramBuckets; ++b) {
      cumulative += h.snapshot.buckets[b];
      if (h.snapshot.buckets[b] == 0) continue;
      Row r;
      r.cells = {S(h.name),
                 I(obs::HistogramSnapshot::BucketUpperUs(b)),
                 I(h.snapshot.buckets[b]),
                 I(cumulative),
                 I(h.snapshot.count),
                 I(h.snapshot.sum_us)};
      out->AppendRow(r);
    }
  }
}

std::unique_ptr<Table> Materialize(obs::SystemTableId id, Engine* engine) {
  auto table = std::make_unique<Table>(obs::SystemTableSchema(id));
  switch (id) {
    case obs::SystemTableId::kMetrics:
      FillMetrics(engine, table.get());
      break;
    case obs::SystemTableId::kQueries:
      FillQueries(engine, table.get());
      break;
    case obs::SystemTableId::kActiveQueries:
      FillActiveQueries(engine, table.get());
      break;
    case obs::SystemTableId::kConnections:
      FillConnections(engine, table.get());
      break;
    case obs::SystemTableId::kTables:
      FillTables(engine, table.get());
      break;
    case obs::SystemTableId::kPartitions:
      FillPartitions(engine, table.get());
      break;
    case obs::SystemTableId::kWal:
      FillWal(engine, table.get());
      break;
    case obs::SystemTableId::kMemory:
      FillMemory(engine, table.get());
      break;
    case obs::SystemTableId::kHistograms:
      FillHistograms(engine, table.get());
      break;
  }
  return table;
}

}  // namespace

Status MaterializeSystemScans(LogicalNode* plan, Engine* engine,
                              std::vector<std::unique_ptr<Table>>* owned) {
  if (plan->kind == LogicalNode::Kind::kScan && plan->system_table >= 0) {
    if (plan->system_table >= static_cast<int>(obs::kNumSystemTables)) {
      return Status::Internal("scan carries an unknown system-table id");
    }
    const auto id = static_cast<obs::SystemTableId>(plan->system_table);
    owned->push_back(Materialize(id, engine));
    // The scan now draws from the materialized rows; the single-partition
    // placeholder ptable must be cleared so the executor uses `table`.
    plan->table = owned->back().get();
    plan->ptable = nullptr;
  }
  for (const auto& child : plan->children) {
    PIDX_RETURN_NOT_OK(MaterializeSystemScans(child.get(), engine, owned));
  }
  return Status::OK();
}

}  // namespace patchindex
