#include "engine/read_pin.h"

#include <algorithm>
#include <utility>

#include "engine/engine.h"

namespace patchindex {

void PinnedIndexLookup::AddVersion(const TableVersion& version) {
  const PartitionedTable& snapshot = *version.snapshot;
  for (std::size_t p = 0; p < snapshot.num_partitions(); ++p) {
    // Insert even when empty: a snapshot partition must resolve to its
    // published index set, never fall through to the live manager.
    by_partition_.try_emplace(&snapshot.partition(p));
  }
  for (const auto& idx : version.indexes) {
    by_partition_[&idx->table()].push_back(idx.get());
  }
}

std::vector<const PatchIndex*> PinnedIndexLookup::FindIndexesOn(
    const Table& table) const {
  auto it = by_partition_.find(&table);
  if (it != by_partition_.end()) return it->second;
  return fallback_->FindIndexesOn(table);
}

namespace {

/// Repoints every scan of a head table at its pinned snapshot. Runs on a
/// private clone of the plan; non-catalog scans (system tables,
/// free-standing tables) pass through untouched.
void RetargetScans(
    LogicalNode* node,
    const std::unordered_map<const PartitionedTable*, const PartitionedTable*>&
        table_map,
    const std::unordered_map<const Table*, const Table*>& part_map) {
  if (node->kind == LogicalNode::Kind::kScan) {
    if (node->ptable != nullptr) {
      auto it = table_map.find(node->ptable);
      if (it != table_map.end()) node->ptable = it->second;
    }
    if (node->table != nullptr) {
      auto it = part_map.find(node->table);
      if (it != part_map.end()) node->table = it->second;
    }
  }
  for (const auto& child : node->children) {
    RetargetScans(child.get(), table_map, part_map);
  }
}

}  // namespace

PinnedReadSet::PinnedReadSet(Catalog& catalog, bool mvcc_snapshot_reads,
                             LogicalPtr* plan)
    : lookup_(catalog.manager()) {
  CollectPlanTableRefs(**plan, catalog, &refs_);
  locks_.reserve(refs_.size());
  if (!mvcc_snapshot_reads) {
    for (const Catalog::TableRef& ref : refs_) locks_.emplace_back(*ref.lock);
    locked_tables_ = refs_.size();
    return;
  }
  // Pin FIRST, then load version pointers: publication retires the old
  // version only after unlinking it, so a pointer loaded under the guard
  // cannot be freed while the guard lives (see common/epoch_gc.h).
  guard_.emplace(EpochGc::Global());
  std::unordered_map<const PartitionedTable*, const PartitionedTable*>
      table_map;
  std::unordered_map<const Table*, const Table*> part_map;
  for (const Catalog::TableRef& ref : refs_) {
    const TableVersion* version = catalog.PinnedVersion(ref);
    bool use_version =
        version != nullptr &&
        Catalog::VersionMatchesHead(*version, *ref.ptable);
    if (!use_version) {
      std::shared_lock<std::shared_mutex> lock(*ref.lock, std::try_to_lock);
      if (lock.owns_lock()) {
        locks_.push_back(std::move(lock));
        ++locked_tables_;
      } else if (version != nullptr) {
        // A writer holds the exclusive lock. The pinned version is the
        // last committed state — a statement starting now reads it
        // instead of waiting for the writer.
        use_version = true;
      } else {
        // No version to fall back to (the table was dropped after the
        // plan resolved it): block on the shared lock like the legacy
        // path and finish against the de-cataloged table.
        locks_.emplace_back(*ref.lock);
        ++locked_tables_;
      }
    }
    if (use_version) {
      lookup_.AddVersion(*version);
      const PartitionedTable& snapshot = *version->snapshot;
      table_map[ref.ptable] = &snapshot;
      const std::size_t common =
          std::min(ref.ptable->num_partitions(), snapshot.num_partitions());
      for (std::size_t p = 0; p < common; ++p) {
        part_map[&ref.ptable->partition(p)] = &snapshot.partition(p);
      }
      ++pinned_tables_;
    }
  }
  if (!table_map.empty()) {
    // Clone before retargeting: callers may retain the original plan
    // (hand-built plans are re-executable), and snapshot pointers are
    // only valid while this read set pins them.
    *plan = ClonePlan(*plan);
    RetargetScans(plan->get(), table_map, part_map);
  }
}

}  // namespace patchindex
