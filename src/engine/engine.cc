#include "engine/engine.h"

#include <algorithm>
#include <shared_mutex>
#include <utility>

#include "common/check.h"
#include "exec/operator.h"

namespace patchindex {

UpdateQuery UpdateQuery::Insert(std::vector<Row> rows) {
  UpdateQuery q;
  q.inserts = std::move(rows);
  return q;
}

UpdateQuery UpdateQuery::Delete(std::vector<RowId> rows) {
  UpdateQuery q;
  q.deletes = std::move(rows);
  return q;
}

UpdateQuery UpdateQuery::Modify(std::vector<CellUpdate> cells) {
  UpdateQuery q;
  q.modifies = std::move(cells);
  return q;
}

Engine::Engine(EngineOptions options) : options_(options) {
  std::size_t threads = options_.num_threads;
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  pool_ = std::make_unique<ThreadPool>(threads);
}

Session Engine::CreateSession() { return Session(this); }

namespace {

void CollectScanTables(const LogicalNode& node,
                       std::vector<const Table*>* tables) {
  if (node.kind == LogicalNode::Kind::kScan && node.table != nullptr) {
    tables->push_back(node.table);
  }
  for (const auto& child : node.children) {
    CollectScanTables(*child, tables);
  }
}

}  // namespace

void CollectPlanTableRefs(const LogicalNode& plan, const Catalog& catalog,
                          std::vector<Catalog::TableRef>* refs) {
  std::vector<const Table*> tables;
  CollectScanTables(plan, &tables);
  for (const Table* table : tables) {
    Catalog::TableRef ref = catalog.Ref(*table);
    if (ref) refs->push_back(std::move(ref));
  }
  std::sort(refs->begin(), refs->end(),
            [](const Catalog::TableRef& a, const Catalog::TableRef& b) {
              return a.lock < b.lock;
            });
  refs->erase(std::unique(refs->begin(), refs->end(),
                          [](const Catalog::TableRef& a,
                             const Catalog::TableRef& b) {
                            return a.lock == b.lock;
                          }),
              refs->end());
}

Result<QueryResult> Session::Execute(LogicalPtr plan) {
  return Execute(std::move(plan), engine_->options_.optimizer);
}

Result<QueryResult> Session::Execute(LogicalPtr plan,
                                     const OptimizerOptions& optimizer) {
  if (plan == nullptr) return Status::InvalidArgument("null plan");

  // Shared-lock every catalog table the plan scans, in a deterministic
  // (address) order so concurrent sessions cannot deadlock against the
  // exclusive locks update queries take. The refs keep table and lock
  // alive even if a concurrent DropTable de-catalogs them mid-query.
  std::vector<Catalog::TableRef> refs;
  CollectPlanTableRefs(*plan, engine_->catalog_, &refs);
  std::vector<std::shared_lock<std::shared_mutex>> guards;
  guards.reserve(refs.size());
  for (const Catalog::TableRef& ref : refs) guards.emplace_back(*ref.lock);

  LogicalPtr optimized =
      OptimizePlan(std::move(plan), engine_->catalog_.manager(), optimizer);

  QueryResult result;
  ParallelExecOptions parallel_options;
  parallel_options.morsel_rows = engine_->options_.morsel_rows;
  parallel_options.min_parallel_rows = engine_->options_.min_parallel_rows;
  ParallelExecReport report;
  if (engine_->options_.enable_parallel_execution &&
      ExecuteParallel(*optimized, engine_->pool(), parallel_options,
                      &result.rows, &report)) {
    result.parallel = true;
    result.parallel_join = report.parallel_join;
    result.parallel_sort = report.parallel_sort;
    if (report.parallel_join) counters_->parallel_joins.fetch_add(1);
    if (report.parallel_sort) counters_->parallel_sorts.fetch_add(1);
    if (!report.parallel_join && !report.parallel_sort) {
      counters_->parallel_pipelines.fetch_add(1);
    }
  } else {
    OperatorPtr op = CompilePlan(optimized, optimizer);
    result.rows = Collect(*op);
    counters_->serial_fallbacks.fetch_add(1);
  }
  return result;
}

namespace {

/// The buffer-and-commit phase of an update query, with the table's
/// exclusive lock already held by the caller. Validates before buffering
/// so a rejected query leaves no partial PDT (including cell types: a
/// wrong-typed value would otherwise surface as an exception out of the
/// index update handlers).
Status ApplyUpdateLocked(Table* table, PatchIndexManager& manager,
                         UpdateQuery query) {
  const int kinds = (query.inserts.empty() ? 0 : 1) +
                    (query.deletes.empty() ? 0 : 1) +
                    (query.modifies.empty() ? 0 : 1);
  if (kinds == 0) return Status::OK();
  if (kinds > 1) {
    return Status::InvalidArgument(
        "update query must contain exactly one delta kind (one SQL "
        "statement inserts, modifies or deletes)");
  }

  for (const Row& row : query.inserts) {
    if (row.cells.size() != table->schema().num_fields()) {
      return Status::InvalidArgument("insert row arity mismatch");
    }
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      if (row.cells[c].type() != table->schema().field(c).type) {
        return Status::InvalidArgument("insert value type mismatch");
      }
    }
  }
  for (RowId row : query.deletes) {
    if (row >= table->num_rows()) {
      return Status::OutOfRange("delete position beyond base table");
    }
  }
  for (const CellUpdate& cell : query.modifies) {
    if (cell.row >= table->num_rows()) {
      return Status::OutOfRange("modify position beyond base table");
    }
    if (cell.column >= table->schema().num_fields()) {
      return Status::InvalidArgument("modify column out of range");
    }
    if (cell.value.type() != table->schema().field(cell.column).type) {
      return Status::InvalidArgument("modify value type mismatch");
    }
  }

  for (Row& row : query.inserts) table->BufferInsert(std::move(row));
  for (RowId row : query.deletes) PIDX_RETURN_NOT_OK(table->BufferDelete(row));
  for (CellUpdate& cell : query.modifies) {
    PIDX_RETURN_NOT_OK(
        table->BufferModify(cell.row, cell.column, std::move(cell.value)));
  }
  return manager.CommitUpdateQuery(*table);
}

}  // namespace

Status Session::ExecuteUpdate(const std::string& table_name,
                              UpdateQuery query) {
  return ExecuteUpdateWith(
      table_name,
      [&query](const Table&) -> Result<UpdateQuery> {
        return std::move(query);
      });
}

Status Session::ExecuteUpdateWith(
    const std::string& table_name,
    const std::function<Result<UpdateQuery>(const Table&)>& build) {
  Catalog::TableRef ref = engine_->catalog_.Ref(table_name);
  if (!ref) {
    return Status::NotFound("table '" + table_name + "' does not exist");
  }
  Table* table = ref.table;
  std::unique_lock<std::shared_mutex> exclusive(*ref.lock);
  // Recheck under the lock: a concurrent DropTable may have de-cataloged
  // the table between Ref() and lock acquisition.
  if (engine_->catalog_.FindTable(table_name) != table) {
    return Status::NotFound("table '" + table_name + "' was dropped");
  }
  Result<UpdateQuery> query = build(*table);
  if (!query.ok()) return query.status();
  return ApplyUpdateLocked(table, engine_->catalog_.manager(),
                           std::move(query).value());
}

Status Session::CreatePatchIndex(const std::string& table_name,
                                 std::size_t column,
                                 ConstraintKind constraint,
                                 PatchIndexOptions options) {
  Catalog::TableRef ref = engine_->catalog_.Ref(table_name);
  if (!ref) {
    return Status::NotFound("table '" + table_name + "' does not exist");
  }
  Table* table = ref.table;
  std::unique_lock<std::shared_mutex> exclusive(*ref.lock);
  // Recheck under the lock (see ExecuteUpdate): registering an index on a
  // concurrently dropped table would leave it dangling in the manager.
  if (engine_->catalog_.FindTable(table_name) != table) {
    return Status::NotFound("table '" + table_name + "' was dropped");
  }
  if (!table->pdt().empty()) {
    return Status::InvalidArgument(
        "table has pending deltas; commit the update query first");
  }
  if (column >= table->schema().num_fields()) {
    return Status::InvalidArgument("index column out of range");
  }
  if (table->schema().field(column).type != ColumnType::kInt64) {
    return Status::InvalidArgument(
        "approximate constraints are defined over INT64 columns");
  }
  for (const PatchIndex* idx :
       engine_->catalog_.manager().IndexesOn(*table)) {
    if (idx->column() == column && idx->constraint() == constraint) {
      return Status::AlreadyExists(
          "an index of this constraint already exists on the column");
    }
  }
  engine_->catalog_.manager().CreateIndex(*table, column, constraint,
                                          options);
  return Status::OK();
}

}  // namespace patchindex
