#include "engine/engine.h"

#include <algorithm>
#include <optional>
#include <shared_mutex>
#include <utility>

#include "common/check.h"
#include "common/epoch_gc.h"
#include "common/timer.h"
#include "engine/read_pin.h"
#include "exec/operator.h"

namespace patchindex {

UpdateQuery UpdateQuery::Insert(std::vector<Row> rows) {
  UpdateQuery q;
  q.inserts = std::move(rows);
  return q;
}

UpdateQuery UpdateQuery::Delete(std::vector<RowId> rows) {
  UpdateQuery q;
  q.deletes = std::move(rows);
  return q;
}

UpdateQuery UpdateQuery::Modify(std::vector<CellUpdate> cells) {
  UpdateQuery q;
  q.modifies = std::move(cells);
  return q;
}

Engine::Engine(EngineOptions options) : options_(options) {
  // The engine's accounting node, parented under the process root. Every
  // per-query tracker (and the server's queue tracker) parents under it,
  // so engine_memory_limit bounds all concurrently tracked bytes.
  mem_tracker_ = std::make_unique<obs::MemoryTracker>(
      "engine", &obs::ProcessMemoryRoot(), options_.engine_memory_limit);
  std::size_t threads = options_.num_threads;
  if (threads == 0) {
    // Hardware concurrency, or the PI_THREADS override — deployments
    // (piserver) and CI size default-configured engines without
    // recompiling.
    threads = DefaultThreadCount();
  }
  pool_ = std::make_unique<ThreadPool>(threads);

  // Metrics and the flight recorder come up before durability so the
  // recovery pass (log resets checkpoint, fsyncs) is already instrumented.
  metrics_ = std::make_unique<obs::MetricsRegistry>();
  recorder_ =
      std::make_unique<obs::FlightRecorder>(options_.flight_recorder_capacity);
  if (options_.enable_metrics) {
    obs::MetricsRegistry& r = *metrics_;
    m_.read_queries = r.GetCounter(
        "pidx_read_queries_total", "Read queries executed (plans and SQL)");
    m_.update_queries = r.GetCounter("pidx_update_queries_total",
                                     "Update queries committed");
    m_.sql_statements = r.GetCounter("pidx_sql_statements_total",
                                     "SQL statements executed");
    m_.query_latency_us = r.GetHistogram(
        "pidx_query_latency_us", "End-to-end SQL statement latency");
    m_.phase_parse_us =
        r.GetHistogram("pidx_phase_parse_us", "SQL parse phase");
    m_.phase_bind_us = r.GetHistogram("pidx_phase_bind_us", "Bind phase");
    m_.phase_optimize_us =
        r.GetHistogram("pidx_phase_optimize_us", "Plan optimization phase");
    m_.phase_execute_us = r.GetHistogram(
        "pidx_phase_execute_us", "Plan execution / DML delta-build phase");
    m_.phase_commit_wait_us = r.GetHistogram(
        "pidx_phase_commit_wait_us",
        "Wait for the table's writer-writer lock (DML; under MVCC "
        "readers never hold it, so this measures writer contention only)");
    m_.phase_commit_us = r.GetHistogram(
        "pidx_phase_commit_us", "PatchIndex commit protocol phase (DML)");
    // MVCC/epoch occupancy, registered as callbacks so every render path
    // (Prometheus scrape, .stats, pi_stats.metrics) samples live values.
    // The catalog is a member and the EpochGc singleton is immortal, so
    // the callbacks stay valid for the registry's lifetime.
    const Catalog* catalog = &catalog_;
    r.SetCallback("pidx_mvcc_versions_live",
                  "Published table versions alive (current + awaiting "
                  "epoch reclamation)",
                  [catalog] {
                    return static_cast<std::uint64_t>(
                        catalog->TotalLiveVersions());
                  });
    r.SetCallback("pidx_epoch_pinned_guards",
                  "Epoch guards currently pinned (readers in flight)",
                  [] { return EpochGc::Global().GetStats().pinned; });
    r.SetCallback("pidx_epoch_retired_pending",
                  "Retired objects awaiting epoch reclamation",
                  [] { return EpochGc::Global().GetStats().retired_pending; });
    r.SetCallback("pidx_epoch_reclaimed_total",
                  "Objects reclaimed by the epoch GC since process start",
                  [] { return EpochGc::Global().GetStats().reclaimed_total; });
    // Memory accounting: tracked transient bytes (the tracker hierarchy —
    // in-flight joins, sorts, result queues) plus pull-style resident
    // bytes (catalog tables). pidx_memory_bytes is the headline figure.
    // The tracker outlives the registry (member order) and `this` owns
    // both, so the captures stay valid.
    obs::MemoryTracker* mem = mem_tracker_.get();
    const Engine* self = this;
    r.SetCallback("pidx_memory_bytes",
                  "Engine memory footprint: resident catalog-table bytes "
                  "plus tracked transient query/server bytes",
                  [self, mem] {
                    return self->ApproxResidentBytes() + mem->current();
                  });
    r.SetCallback("pidx_memory_tracked_bytes",
                  "Bytes currently charged to the engine's memory tracker",
                  [mem] { return mem->current(); });
    r.SetCallback("pidx_memory_tracked_peak_bytes",
                  "High-water mark of tracked transient bytes",
                  [mem] { return mem->peak(); });
    r.SetCallback("pidx_memory_resident_bytes",
                  "Resident bytes of catalog tables (columns + PDT deltas)",
                  [self] { return self->ApproxResidentBytes(); });
    // Wait-event histograms: the per-class contention view. The table
    // lock wait duplicates pidx_phase_commit_wait_us by design — one is
    // the DML phase view, this one the wait-event-class view.
    m_.wait_table_lock_us = r.GetHistogram(
        "pidx_wait_table_lock_us",
        "Wait event: time blocked acquiring a table's writer-writer lock");
    m_.wait_pool_queue_us = r.GetHistogram(
        "pidx_wait_pool_queue_us",
        "Wait event: time tasks sat queued in the worker pool before a "
        "worker picked them up");
    obs::Histogram* pool_wait = m_.wait_pool_queue_us;
    pool_->SetQueueWaitRecorder([pool_wait](std::uint64_t ns) {
      pool_wait->RecordNanos(static_cast<std::int64_t>(ns));
    });
  }

  if (options_.durability.enabled()) {
    durability_ = std::make_unique<DurabilityManager>(options_.durability);
    if (options_.enable_metrics) {
      obs::MetricsRegistry& r = *metrics_;
      DurabilityMetrics dm;
      dm.wal_appended_bytes =
          r.GetCounter("pidx_wal_appended_bytes_total",
                       "WAL record bytes appended by committed updates");
      dm.fsync_latency_us = r.GetHistogram(
          "pidx_fsync_latency_us", "Commit-path WAL fsync latency");
      dm.checkpoint_duration_us = r.GetHistogram(
          "pidx_checkpoint_duration_us", "Table checkpoint wall time");
      dm.wait_fsync_us = r.GetHistogram(
          "pidx_wait_fsync_us",
          "Wait event: commit blocked on the WAL fsync (the durability "
          "stall every committed update pays)");
      durability_->SetMetrics(dm);
    }
    recovery_status_ = durability_->Open();
    if (recovery_status_.ok()) {
      recovery_status_ = durability_->Recover(&catalog_, pool_.get());
    }
    if (!recovery_status_.ok()) {
      // Fail volatile: without a trustworthy log, appending to it could
      // compound the damage. recovery_status() tells callers (piserver
      // refuses to start; tests assert on it).
      durability_.reset();
    } else if (options_.enable_metrics) {
      obs::MetricsRegistry& r = *metrics_;
      const RecoveryReport& report = durability_->last_recovery();
      r.GetGauge("pidx_recovery_tables", "Tables restored by recovery")
          ->Set(static_cast<std::int64_t>(report.tables));
      r.GetGauge("pidx_recovery_records_replayed",
                 "WAL records replayed by recovery")
          ->Set(static_cast<std::int64_t>(report.records_replayed));
      r.GetGauge("pidx_recovery_commits_dropped",
                 "Unacknowledged trailing commits dropped by recovery")
          ->Set(static_cast<std::int64_t>(report.commits_dropped));
      r.GetGauge("pidx_recovery_indexes_restored",
                 "PatchIndexes restored from checkpoints by recovery")
          ->Set(static_cast<std::int64_t>(report.indexes_restored));
      r.GetGauge("pidx_recovery_indexes_rebuilt",
                 "PatchIndexes rebuilt by discovery after recovery")
          ->Set(static_cast<std::int64_t>(report.indexes_rebuilt));
    }
  }
}

Engine::~Engine() {
  // Members destruct in reverse declaration order, so pool_ outlives
  // metrics_ — detach the queue-wait recorder (it records into a
  // metrics-owned histogram) before any member goes away.
  if (pool_ != nullptr) {
    pool_->SetQueueWaitRecorder(nullptr);
    pool_->WaitIdle();
  }
}

std::uint64_t Engine::ApproxResidentBytes() const {
  // MVCC snapshots share un-mutated base columns with the live head
  // (copy-on-write), so summing the heads alone avoids double-counting
  // the common case; deep-copied PDT clones and un-shared columns held
  // only by retired versions are missed. An approximation, recomputed on
  // every pull (metrics scrape, pi_stats.memory).
  std::uint64_t total = 0;
  for (const std::string& name : catalog_.TableNames()) {
    Catalog::TableRef ref = catalog_.Ref(name);
    if (!ref) continue;
    std::shared_lock<std::shared_mutex> lock(*ref.lock);
    if (catalog_.FindPartitionedTable(name) != ref.ptable) continue;
    total += ref.ptable->MemoryUsageBytes();
  }
  return total;
}

void Engine::StoreLastTrace(std::string json) {
  std::lock_guard<std::mutex> lock(obs_mu_);
  last_trace_json_ = std::move(json);
}

std::string Engine::LastTraceJson() const {
  std::lock_guard<std::mutex> lock(obs_mu_);
  return last_trace_json_;
}

void Engine::SetConnectionsProvider(
    std::function<std::vector<obs::ConnectionInfo>()> provider) {
  std::lock_guard<std::mutex> lock(obs_mu_);
  connections_provider_ = std::move(provider);
}

std::vector<obs::ConnectionInfo> Engine::ConnectionsSnapshot() const {
  // Invoked with obs_mu_ held so SetConnectionsProvider(nullptr) is a
  // barrier: once it returns, no snapshot is still inside the removed
  // provider (the server deregisters before tearing down the state the
  // provider reads). Safe because providers only take their own locks.
  std::lock_guard<std::mutex> lock(obs_mu_);
  if (connections_provider_ == nullptr) return {};
  return connections_provider_();
}

void Engine::SetServerMemoryTracker(obs::MemoryTracker* tracker) {
  std::lock_guard<std::mutex> lock(obs_mu_);
  server_mem_tracker_ = tracker;
}

bool Engine::SampleServerMemory(obs::MemoryTrackerSample* out) const {
  std::lock_guard<std::mutex> lock(obs_mu_);
  if (server_mem_tracker_ == nullptr) return false;
  out->name = server_mem_tracker_->name();
  out->current_bytes = server_mem_tracker_->current();
  out->peak_bytes = server_mem_tracker_->peak();
  out->limit_bytes = server_mem_tracker_->limit();
  return true;
}

Session Engine::CreateSession() { return Session(this); }

Status Engine::Checkpoint() {
  if (durability_ == nullptr) return Status::OK();
  Status first;
  for (const std::string& name : catalog_.TableNames()) {
    Catalog::TableRef ref = catalog_.Ref(name);
    if (!ref) continue;
    // Exclusive = writer–writer: the lock fences concurrent commits
    // (WAL truncation must not race an append) but never blocks readers,
    // who keep scanning their pinned versions.
    std::unique_lock<std::shared_mutex> exclusive(*ref.lock);
    if (catalog_.FindPartitionedTable(name) != ref.ptable) continue;
    Status st;
    {
      // Checkpoint from the pinned published version when it is current:
      // the snapshot is immutable (no COW surprises mid-write) and
      // byte-identical to the committed head. A stale version (direct
      // unpublished mutations) falls back to the head + live indexes.
      EpochGc::Guard guard(EpochGc::Global());
      const TableVersion* version =
          options_.mvcc_snapshot_reads ? catalog_.PinnedVersion(ref)
                                       : nullptr;
      if (version != nullptr &&
          Catalog::VersionMatchesHead(*version, *ref.ptable)) {
        st = durability_->CheckpointTable(name, *version->snapshot,
                                          version->indexes);
      } else {
        st = durability_->CheckpointTable(name, *ref.ptable,
                                          catalog_.manager());
      }
    }
    if (!st.ok() && first.ok()) first = st;
  }
  return first;
}

namespace {

void CollectScanNodes(const LogicalNode& node,
                      std::vector<const LogicalNode*>* scans) {
  if (node.kind == LogicalNode::Kind::kScan) scans->push_back(&node);
  for (const auto& child : node.children) {
    CollectScanNodes(*child, scans);
  }
}

}  // namespace

void CollectPlanTableRefs(const LogicalNode& plan, const Catalog& catalog,
                          std::vector<Catalog::TableRef>* refs) {
  std::vector<const LogicalNode*> scans;
  CollectScanNodes(plan, &scans);
  for (const LogicalNode* scan : scans) {
    Catalog::TableRef ref;
    if (scan->ptable != nullptr) {
      ref = catalog.Ref(*scan->ptable);
    } else if (scan->table != nullptr) {
      ref = catalog.Ref(*scan->table);
    }
    if (ref) refs->push_back(std::move(ref));
  }
  std::sort(refs->begin(), refs->end(),
            [](const Catalog::TableRef& a, const Catalog::TableRef& b) {
              return a.lock < b.lock;
            });
  refs->erase(std::unique(refs->begin(), refs->end(),
                          [](const Catalog::TableRef& a,
                             const Catalog::TableRef& b) {
                            return a.lock == b.lock;
                          }),
              refs->end());
}

Result<QueryResult> Session::Execute(LogicalPtr plan) {
  return ExecuteProfiled(std::move(plan), engine_->options_.optimizer,
                         /*profile=*/nullptr, /*profile_ops=*/false);
}

Result<QueryResult> Session::Execute(LogicalPtr plan,
                                     const OptimizerOptions& optimizer) {
  return ExecuteProfiled(std::move(plan), optimizer, /*profile=*/nullptr,
                         /*profile_ops=*/false);
}

Result<QueryResult> Session::ExecuteProfiled(
    LogicalPtr plan, const OptimizerOptions& optimizer,
    obs::QueryProfile* profile, bool profile_ops,
    const obs::FlightRecorder::Handle& active, obs::TraceBuffer* trace) {
  if (plan == nullptr) return Status::InvalidArgument("null plan");
  const Engine::MetricSet& m = engine_->m_;

  // Per-query memory accounting: reuse the statement tracker the SQL
  // session installed, or make one here for the bare-plan API so
  // Execute(plan) callers get the same budget enforcement.
  obs::MemoryTracker* query_mem = obs::CurrentQueryTracker();
  std::optional<obs::MemoryTracker> local_mem;
  std::optional<obs::ScopedQueryTracker> local_scope;
  if (query_mem == nullptr) {
    local_mem.emplace("query", &engine_->memory(),
                      engine_->options_.query_memory_limit);
    local_scope.emplace(&*local_mem);
    query_mem = &*local_mem;
  }

  // Protect every catalog table the plan scans for the statement's
  // duration. Under MVCC each table resolves to its pinned published
  // version (lock-free; the plan is cloned and its scans retargeted at
  // the immutable snapshots) with shared locks only as the fallback;
  // with MVCC off every table takes the shared lock, in deterministic
  // address order. Either way the refs keep the tables alive even if a
  // concurrent DropTable de-catalogs them mid-query.
  PinnedReadSet pin(engine_->catalog_,
                    engine_->options_.mvcc_snapshot_reads, &plan);

  if (active != nullptr) {
    obs::FlightRecorder::SetPhase(active, obs::QueryPhase::kOptimize);
  }
  WallTimer optimize_timer;
  LogicalPtr optimized;
  {
    obs::TraceSpan span(trace, "optimize", 0);
    optimized = OptimizePlan(std::move(plan), pin.indexes(), optimizer);
  }
  const std::int64_t optimize_ns = optimize_timer.ElapsedNanos();

  obs::ExecProfile exec_profile;
  obs::ExecProfile* ops = profile_ops ? &exec_profile : nullptr;

  if (active != nullptr) {
    obs::FlightRecorder::SetPhase(active, obs::QueryPhase::kExecute);
  }
  QueryResult result;
  ParallelExecOptions parallel_options;
  parallel_options.morsel_rows = engine_->options_.morsel_rows;
  parallel_options.min_parallel_rows = engine_->options_.min_parallel_rows;
  parallel_options.profile = ops;
  parallel_options.trace = trace;
  parallel_options.memory = query_mem;
  ParallelExecReport report;
  WallTimer execute_timer;
  obs::TraceSpan execute_span(trace, "execute", 0);
  try {
    if (engine_->options_.enable_parallel_execution &&
        ExecuteParallel(*optimized, engine_->pool(), parallel_options,
                        &result.rows, &report)) {
      result.parallel = true;
      result.parallel_join = report.parallel_join;
      result.parallel_sort = report.parallel_sort;
      if (report.parallel_join) counters_->parallel_joins.fetch_add(1);
      if (report.parallel_sort) counters_->parallel_sorts.fetch_add(1);
      if (!report.parallel_join && !report.parallel_sort) {
        counters_->parallel_pipelines.fetch_add(1);
      }
    } else {
      OperatorPtr op = CompilePlan(optimized, optimizer, ops);
      result.rows = Collect(*op);
      counters_->serial_fallbacks.fetch_add(1);
    }
  } catch (const obs::ResourceExhaustedError& e) {
    // The statement unwound cleanly: AwaitAll drained every worker
    // before rethrowing, so no task still references the result slots or
    // the pinned versions. Session and engine stay fully usable.
    return Status::ResourceExhausted(e.what());
  }
  const std::int64_t execute_ns = execute_timer.ElapsedNanos();

  if (m.read_queries != nullptr) {
    m.read_queries->Add(1);
    m.phase_optimize_us->RecordNanos(optimize_ns);
    m.phase_execute_us->RecordNanos(execute_ns);
  }
  if (profile != nullptr) {
    profile->optimize_ms = static_cast<double>(optimize_ns) / 1e6;
    profile->execute_ms = static_cast<double>(execute_ns) / 1e6;
    profile->parallel = result.parallel;
    profile->parallel_join = result.parallel_join;
    profile->parallel_sort = result.parallel_sort;
    profile->pool_workers = engine_->pool().num_threads();
    profile->peak_mem_bytes = query_mem->peak();
    if (ops != nullptr) obs::FillOpProfiles(*optimized, exec_profile, profile);
  }
  return result;
}

namespace {

std::uint64_t ApproxValueBytes(const Value& v) {
  return sizeof(Value) +
         (v.type() == ColumnType::kString ? v.AsString().size() : 0);
}

/// Content-based size of an update query's delta — what buffering it in
/// the PDTs will roughly cost. Charged to the per-query tracker before
/// ApplyUpdateLocked, the last point where nothing is buffered yet and an
/// over-budget statement can abort without any rollback.
std::uint64_t ApproxUpdateBytes(const UpdateQuery& q) {
  std::uint64_t total = q.deletes.size() * sizeof(RowId);
  for (const Row& row : q.inserts) {
    for (const Value& v : row.cells) total += ApproxValueBytes(v);
  }
  for (const CellUpdate& c : q.modifies) {
    total += sizeof(CellUpdate) + ApproxValueBytes(c.value);
  }
  return total;
}

/// The buffer-and-commit phase of an update query, with the table's
/// exclusive lock already held by the caller. Validates before buffering
/// so a rejected query leaves no partial PDT (including cell types: a
/// wrong-typed value would otherwise surface as an exception out of the
/// index update handlers). Deltas are routed to their owning partitions
/// — rows are addressed by table-global rowIDs — and the dirty
/// partitions commit partition-locally, in parallel on `pool`. After the
/// commit protocol folds the deltas, the new state is published as an
/// immutable TableVersion (`catalog.PublishVersion`) — the point at
/// which MVCC readers start seeing this statement's effects.
Status ApplyUpdateLocked(Catalog& catalog, const Catalog::TableRef& ref,
                         const std::string& name,
                         DurabilityManager* durability, ThreadPool* pool,
                         UpdateQuery query, std::int64_t* commit_csn) {
  PartitionedTable* table = ref.ptable;
  PatchIndexManager& manager = catalog.manager();
  const int kinds = (query.inserts.empty() ? 0 : 1) +
                    (query.deletes.empty() ? 0 : 1) +
                    (query.modifies.empty() ? 0 : 1);
  if (kinds == 0) return Status::OK();
  if (kinds > 1) {
    return Status::InvalidArgument(
        "update query must contain exactly one delta kind (one SQL "
        "statement inserts, modifies or deletes)");
  }

  const Schema& schema = table->schema();
  const std::uint64_t num_rows = table->num_rows();
  for (const Row& row : query.inserts) {
    if (row.cells.size() != schema.num_fields()) {
      return Status::InvalidArgument("insert row arity mismatch");
    }
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      if (row.cells[c].type() != schema.field(c).type) {
        return Status::InvalidArgument("insert value type mismatch");
      }
    }
  }
  for (RowId row : query.deletes) {
    if (row >= num_rows) {
      return Status::OutOfRange("delete position beyond base table");
    }
  }
  for (const CellUpdate& cell : query.modifies) {
    if (cell.row >= num_rows) {
      return Status::OutOfRange("modify position beyond base table");
    }
    if (cell.column >= schema.num_fields()) {
      return Status::InvalidArgument("modify column out of range");
    }
    if (cell.value.type() != schema.field(cell.column).type) {
      return Status::InvalidArgument("modify value type mismatch");
    }
  }

  for (Row& row : query.inserts) table->BufferInsert(std::move(row));
  for (RowId row : query.deletes) {
    const PartitionedTable::RowLocation loc = table->ResolveRow(row);
    PIDX_RETURN_NOT_OK(
        table->partition(loc.partition).BufferDelete(loc.local_row));
  }
  for (CellUpdate& cell : query.modifies) {
    const PartitionedTable::RowLocation loc = table->ResolveRow(cell.row);
    PIDX_RETURN_NOT_OK(table->partition(loc.partition)
                           .BufferModify(loc.local_row, cell.column,
                                         std::move(cell.value)));
  }
  // Write-ahead: the routed, partition-local deltas go to the log (and
  // to stable storage) before the commit protocol publishes them. The
  // WAL fsync remains the commit point. A log failure aborts the whole
  // commit — the buffered PDTs are discarded and nothing becomes
  // visible; republishing after the discard refreshes the version's
  // partition seqs so readers return to the lock-free path.
  std::int64_t csn = -1;
  if (durability != nullptr) {
    Status logged = durability->LogCommit(name, *table, &csn);
    if (!logged.ok()) {
      table->DiscardPdt();
      catalog.PublishVersion(ref, 0);
      return logged;
    }
  }
  Status committed = manager.CommitUpdateQuery(*table, pool);
  if (committed.ok() ||
      committed.code() == StatusCode::kConstraintViolation) {
    // Publish the committed state (kConstraintViolation included: the
    // data change committed, exactly the broken indexes were dropped).
    // Untouched partitions carry their snapshots and index clones over
    // from the previous version — a single-row UPDATE clones one
    // partition, not the table.
    catalog.PublishVersion(ref, csn > 0 ? static_cast<std::uint64_t>(csn)
                                        : 0);
  }
  if (commit_csn != nullptr && csn >= 0) *commit_csn = csn;
  if (durability != nullptr && durability->ShouldCheckpoint(name)) {
    // Best-effort WAL-size-triggered checkpoint: a failure leaves the
    // log growing and the next commit retries (self-healing); it never
    // affects the already-committed update.
    (void)durability->CheckpointTable(name, *table, manager);
  }
  return committed;
}

}  // namespace

Status Session::ExecuteUpdate(const std::string& table_name,
                              UpdateQuery query) {
  return ExecuteUpdateWith(
      table_name,
      [&query](const PartitionedTable&) -> Result<UpdateQuery> {
        return std::move(query);
      });
}

Status Session::ExecuteUpdateWith(
    const std::string& table_name,
    const std::function<Result<UpdateQuery>(const PartitionedTable&)>&
        build) {
  return ExecuteUpdateWithProfiled(table_name, build, /*profile=*/nullptr);
}

Status Session::ExecuteUpdateWithProfiled(
    const std::string& table_name,
    const std::function<Result<UpdateQuery>(const PartitionedTable&)>&
        build,
    obs::QueryProfile* profile, const obs::FlightRecorder::Handle& active,
    obs::TraceBuffer* trace, std::int64_t* commit_csn) {
  const Engine::MetricSet& m = engine_->m_;
  Catalog::TableRef ref = engine_->catalog_.Ref(table_name);
  if (!ref) {
    return Status::NotFound("table '" + table_name + "' does not exist");
  }
  PartitionedTable* table = ref.ptable;
  // Per-statement memory accounting (see ExecuteProfiled): the build
  // callback's row-matching plan and the DML delta itself charge it.
  obs::MemoryTracker* query_mem = obs::CurrentQueryTracker();
  std::optional<obs::MemoryTracker> local_mem;
  std::optional<obs::ScopedQueryTracker> local_scope;
  if (query_mem == nullptr) {
    local_mem.emplace("query", &engine_->memory(),
                      engine_->options_.query_memory_limit);
    local_scope.emplace(&*local_mem);
    query_mem = &*local_mem;
  }
  // The exclusive lock is writer–writer only under MVCC: this wait
  // measures contention against other update queries (and DDL /
  // checkpoints), never against readers. Surface the blocking table in
  // pi_stats.active_queries while we wait.
  if (active != nullptr) {
    obs::FlightRecorder::SetPhase(active, obs::QueryPhase::kCommitWait);
    obs::FlightRecorder::SetPhaseDetail(active, table_name);
  }
  WallTimer lock_timer;
  std::unique_lock<std::shared_mutex> exclusive = [&] {
    obs::TraceSpan span(trace, "commit_wait", 0);
    return std::unique_lock<std::shared_mutex>(*ref.lock);
  }();
  const std::int64_t lock_ns = lock_timer.ElapsedNanos();
  if (active != nullptr) obs::FlightRecorder::SetPhaseDetail(active, "");
  // Recheck under the lock: a concurrent DropTable may have de-cataloged
  // the table between Ref() and lock acquisition.
  if (engine_->catalog_.FindPartitionedTable(table_name) != table) {
    return Status::NotFound("table '" + table_name + "' was dropped");
  }
  if (active != nullptr) {
    obs::FlightRecorder::SetPhase(active, obs::QueryPhase::kExecute);
  }
  WallTimer build_timer;
  Result<UpdateQuery> query = [&]() -> Result<UpdateQuery> {
    obs::TraceSpan span(trace, "execute", 0);
    try {
      return build(*table);
    } catch (const obs::ResourceExhaustedError& e) {
      // The row-matching plan ran over budget; nothing is buffered yet.
      return Status::ResourceExhausted(e.what());
    }
  }();
  if (!query.ok()) return query.status();
  const std::int64_t build_ns = build_timer.ElapsedNanos();
  try {
    query_mem->Charge(ApproxUpdateBytes(query.value()), "DML delta");
  } catch (const obs::ResourceExhaustedError& e) {
    // Still pre-buffering: aborting here needs no PDT rollback.
    return Status::ResourceExhausted(e.what());
  }
  if (active != nullptr) {
    obs::FlightRecorder::SetPhase(active, obs::QueryPhase::kCommit);
  }
  WallTimer commit_timer;
  obs::TraceSpan commit_span(trace, "commit", 0);
  Status status = ApplyUpdateLocked(
      engine_->catalog_, ref, table_name, engine_->durability_.get(),
      &engine_->pool(), std::move(query).value(), commit_csn);
  const std::int64_t commit_ns = commit_timer.ElapsedNanos();
  if (m.update_queries != nullptr) {
    m.update_queries->Add(1);
    m.phase_commit_wait_us->RecordNanos(lock_ns);
    m.wait_table_lock_us->RecordNanos(lock_ns);
    m.phase_execute_us->RecordNanos(build_ns);
    m.phase_commit_us->RecordNanos(commit_ns);
  }
  if (profile != nullptr) {
    profile->commit_wait_ms = static_cast<double>(lock_ns) / 1e6;
    profile->execute_ms = static_cast<double>(build_ns) / 1e6;
    profile->commit_ms = static_cast<double>(commit_ns) / 1e6;
    profile->peak_mem_bytes = query_mem->peak();
  }
  return status;
}

Status Session::CreatePatchIndex(const std::string& table_name,
                                 std::size_t column,
                                 ConstraintKind constraint,
                                 PatchIndexOptions options) {
  Catalog::TableRef ref = engine_->catalog_.Ref(table_name);
  if (!ref) {
    return Status::NotFound("table '" + table_name + "' does not exist");
  }
  PartitionedTable* table = ref.ptable;
  std::unique_lock<std::shared_mutex> exclusive(*ref.lock);
  // Recheck under the lock (see ExecuteUpdate): registering an index on a
  // concurrently dropped table would leave it dangling in the manager.
  if (engine_->catalog_.FindPartitionedTable(table_name) != table) {
    return Status::NotFound("table '" + table_name + "' was dropped");
  }
  if (!table->pdt_empty()) {
    return Status::InvalidArgument(
        "table has pending deltas; commit the update query first");
  }
  if (column >= table->schema().num_fields()) {
    return Status::InvalidArgument("index column out of range");
  }
  if (table->schema().field(column).type != ColumnType::kInt64) {
    return Status::InvalidArgument(
        "approximate constraints are defined over INT64 columns");
  }
  // Which partitions already carry this (column, constraint) index? A
  // commit-time maintenance failure drops exactly the broken partition's
  // index, so coverage can be partial — re-creating then fills only the
  // gaps instead of failing with AlreadyExists forever.
  std::vector<bool> covered(table->num_partitions(), false);
  for (const PatchIndex* idx :
       engine_->catalog_.manager().IndexesOn(*table)) {
    if (idx->column() != column || idx->constraint() != constraint) continue;
    for (std::size_t p = 0; p < table->num_partitions(); ++p) {
      if (&idx->table() == &table->partition(p)) covered[p] = true;
    }
  }
  std::size_t missing = 0;
  for (bool c : covered) missing += c ? 0 : 1;
  if (missing == 0) {
    return Status::AlreadyExists(
        "an index of this constraint already exists on the column");
  }
  std::vector<PatchIndex*> created;
  if (missing == table->num_partitions()) {
    // One index per partition, created partition-locally in parallel
    // (paper §3.2); a single-partition table degenerates to one index.
    created = engine_->catalog_.manager().CreatePartitionedIndex(
        *table, column, constraint, options);
  } else {
    for (std::size_t p = 0; p < table->num_partitions(); ++p) {
      if (covered[p]) continue;
      created.push_back(engine_->catalog_.manager().CreateIndex(
          table->partition(p), column, constraint, options));
    }
  }
  if (engine_->durability_ != nullptr) {
    Status logged = engine_->durability_->LogCreateIndex(table_name, column,
                                                         constraint,
                                                         options.ascending);
    if (!logged.ok()) {
      // Un-create: an index that exists in memory but not in the catalog
      // log would silently vanish on restart.
      for (PatchIndex* idx : created) {
        engine_->catalog_.manager().DropIndex(idx);
      }
      return logged;
    }
  }
  // Publish a fresh version so pinned readers see the new index state;
  // reindex forces every partition to re-snapshot (the data did not
  // change, so seq-based reuse would otherwise skip the index clones).
  engine_->catalog_.PublishVersion(ref, /*csn=*/0, /*reindex=*/true);
  return Status::OK();
}

}  // namespace patchindex
