#include "engine/morsel.h"

#include <algorithm>

#include "common/check.h"

namespace patchindex {

MorselQueue::MorselQueue(const std::vector<RowRange>& base_ranges,
                         bool with_inserts, std::size_t morsel_rows)
    : with_inserts_(with_inserts) {
  PIDX_CHECK(morsel_rows >= 1);
  for (const RowRange& range : base_ranges) {
    RowId begin = range.begin;
    while (begin < range.end) {
      const RowId end = std::min<RowId>(range.end, begin + morsel_rows);
      morsels_.push_back({begin, end});
      begin = end;
    }
  }
}

bool MorselQueue::Next(Morsel* out) {
  const std::size_t idx = next_.fetch_add(1, std::memory_order_relaxed);
  if (idx < morsels_.size()) {
    out->kind = Morsel::Kind::kBase;
    out->range = morsels_[idx];
    return true;
  }
  if (with_inserts_ && idx == morsels_.size()) {
    out->kind = Morsel::Kind::kInserts;
    out->range = {0, 0};
    return true;
  }
  return false;
}

}  // namespace patchindex
