#include "engine/morsel.h"

#include <algorithm>

#include "common/check.h"

namespace patchindex {

void MorselQueue::Chop(const std::vector<MorselPartition>& partitions,
                       std::size_t morsel_rows) {
  PIDX_CHECK(morsel_rows >= 1);
  for (const MorselPartition& part : partitions) {
    for (const RowRange& range : part.ranges) {
      RowId begin = range.begin;
      while (begin < range.end) {
        const RowId end = std::min<RowId>(range.end, begin + morsel_rows);
        Morsel m;
        m.kind = Morsel::Kind::kBase;
        m.partition = part.partition;
        m.range = {begin, end};
        morsels_.push_back(m);
        begin = end;
      }
    }
  }
  num_base_ = morsels_.size();
  for (const MorselPartition& part : partitions) {
    if (!part.with_inserts) continue;
    Morsel m;
    m.kind = Morsel::Kind::kInserts;
    m.partition = part.partition;
    morsels_.push_back(m);
  }
}

MorselQueue::MorselQueue(const std::vector<RowRange>& base_ranges,
                         bool with_inserts, std::size_t morsel_rows) {
  MorselPartition part;
  part.partition = 0;
  part.ranges = base_ranges;
  part.with_inserts = with_inserts;
  Chop({part}, morsel_rows);
}

MorselQueue::MorselQueue(const std::vector<MorselPartition>& partitions,
                         std::size_t morsel_rows) {
  Chop(partitions, morsel_rows);
}

bool MorselQueue::Next(Morsel* out) {
  const std::size_t idx = next_.fetch_add(1, std::memory_order_relaxed);
  if (idx >= morsels_.size()) return false;
  *out = morsels_[idx];
  return true;
}

}  // namespace patchindex
