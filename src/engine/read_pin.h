#ifndef PATCHINDEX_ENGINE_READ_PIN_H_
#define PATCHINDEX_ENGINE_READ_PIN_H_

#include <cstddef>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "common/epoch_gc.h"
#include "engine/catalog.h"
#include "optimizer/plan.h"
#include "patchindex/index_lookup.h"

namespace patchindex {

/// IndexLookup over the immutable index snapshots of pinned
/// TableVersions, with the live PatchIndexManager as fallback for tables
/// that are not read through a version (shared-locked heads, free-standing
/// tables). Resolution is by partition address, like the manager's: a
/// snapshot partition resolves to exactly the index clones published with
/// it — including "no indexes", so a pinned read never accidentally picks
/// up a live index bound to a different table state.
class PinnedIndexLookup : public IndexLookup {
 public:
  explicit PinnedIndexLookup(const PatchIndexManager& fallback)
      : fallback_(&fallback) {}

  /// Registers `version`'s snapshot partitions and index clones.
  void AddVersion(const TableVersion& version);

  std::vector<const PatchIndex*> FindIndexesOn(
      const Table& table) const override;

 private:
  const PatchIndexManager* fallback_;
  std::unordered_map<const Table*, std::vector<const PatchIndex*>>
      by_partition_;
};

/// Per-statement read protection: resolves every catalog table a plan
/// scans and protects each one for the statement's duration, preferring
/// the lock-free MVCC path. Per table, in order:
///
///   1. The published TableVersion is current (its partition seqs match
///      the head): scan the immutable snapshot, no lock at all. The
///      epoch guard keeps the version alive against concurrent retirement.
///   2. Otherwise the head has unpublished mutations (a bulk load through
///      a raw Table*, or a writer mid-commit). Try the shared lock
///      without blocking: on success read the live head — the legacy
///      path, which keeps directly-mutated tables readable at their
///      freshest state.
///   3. The try-lock failed, so a writer holds the exclusive lock: fall
///      back to the pinned version — the last committed state, exactly
///      what a statement starting now is entitled to see. Readers
///      therefore NEVER wait on writers; the exclusive lock is a
///      writer–writer lock only.
///
/// When any table resolves to a version, the plan is cloned and its scan
/// nodes are retargeted at the snapshot tables (the caller's original
/// plan is never mutated, so retained plans stay valid); `indexes()`
/// then resolves those snapshot partitions to the version's index clones.
/// With `mvcc_snapshot_reads` off every table takes the shared lock, the
/// historical behavior.
///
/// Lock ordering: refs are processed in ascending lock-address order, and
/// only step 2's failure path skips a lock — the total order against
/// exclusive lockers is preserved, so deadlock stays impossible.
class PinnedReadSet {
 public:
  PinnedReadSet(Catalog& catalog, bool mvcc_snapshot_reads, LogicalPtr* plan);

  PinnedReadSet(const PinnedReadSet&) = delete;
  PinnedReadSet& operator=(const PinnedReadSet&) = delete;

  /// Index resolution for the (possibly retargeted) plan: version clones
  /// for pinned tables, the live manager for everything else.
  const IndexLookup& indexes() const { return lookup_; }

  /// Tables read lock-free from a pinned version.
  std::size_t pinned_tables() const { return pinned_tables_; }
  /// Tables read from the live head under a shared lock.
  std::size_t locked_tables() const { return locked_tables_; }

 private:
  std::optional<EpochGc::Guard> guard_;
  std::vector<Catalog::TableRef> refs_;
  std::vector<std::shared_lock<std::shared_mutex>> locks_;
  PinnedIndexLookup lookup_;
  std::size_t pinned_tables_ = 0;
  std::size_t locked_tables_ = 0;
};

}  // namespace patchindex

#endif  // PATCHINDEX_ENGINE_READ_PIN_H_
