#ifndef PATCHINDEX_ENGINE_EXECUTOR_H_
#define PATCHINDEX_ENGINE_EXECUTOR_H_

#include <cstddef>

#include "common/thread_pool.h"
#include "engine/morsel.h"
#include "exec/batch.h"
#include "optimizer/plan.h"

namespace patchindex {

struct ParallelExecOptions {
  /// Base rows per morsel.
  std::size_t morsel_rows = kDefaultMorselRows;

  /// Tables with fewer visible rows than this run on the serial operator
  /// tree — forking workers costs more than the scan. 0 forces the
  /// parallel path (used by the equivalence tests).
  std::size_t min_parallel_rows = 16 * kBatchSize;
};

/// True when `plan` (after optimization) has a shape the morsel-driven
/// executor handles:
///   - a Scan / Select / Project pipeline over one table,
///   - optionally rooted by a grouping Aggregate or Distinct (executed as
///     per-worker partial aggregation + final merge aggregation),
///   - a PatchDistinct rewrite over a NUC or NCC index (the patch-aware
///     scan: both the exclude-patches and use-patches branches are
///     morsel-parallel).
/// Everything else — joins, sorts, PatchSort/PatchJoin — falls back to the
/// serial operator tree.
bool ParallelPlanSupported(const LogicalNode& plan);

/// Executes an optimized plan with morsel-driven parallelism: base rows
/// are chopped into morsels, every pool worker runs its own copy of the
/// pipeline pulling morsels from a shared queue (patch-aware scans fuse
/// the PatchIndex filter into each morsel's scan), and per-worker results
/// are merged. Row order differs from the serial tree; row contents are
/// identical. Returns false — leaving `out` untouched — when the plan
/// shape is unsupported or the table is below `min_parallel_rows`, in
/// which case the caller should compile and run the serial tree.
bool ExecuteParallel(const LogicalNode& plan, ThreadPool& pool,
                     const ParallelExecOptions& options, Batch* out);

}  // namespace patchindex

#endif  // PATCHINDEX_ENGINE_EXECUTOR_H_
