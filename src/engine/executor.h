#ifndef PATCHINDEX_ENGINE_EXECUTOR_H_
#define PATCHINDEX_ENGINE_EXECUTOR_H_

#include <cstddef>

#include "common/thread_pool.h"
#include "engine/morsel.h"
#include "exec/batch.h"
#include "optimizer/plan.h"

namespace patchindex {

namespace obs {
class ExecProfile;
class MemoryTracker;
class TraceBuffer;
}

struct ParallelExecOptions {
  /// Base rows per morsel.
  std::size_t morsel_rows = kDefaultMorselRows;

  /// Plans whose largest scanned table has fewer visible rows than this
  /// run on the serial operator tree — forking workers costs more than
  /// the scan. 0 forces the parallel path (used by the equivalence
  /// tests).
  std::size_t min_parallel_rows = 16 * kBatchSize;

  /// When set, every worker operator is wrapped to record rows, morsel
  /// counts, and per-worker wall time into this accumulator (EXPLAIN
  /// ANALYZE). Null — the default — adds no per-batch work.
  obs::ExecProfile* profile = nullptr;

  /// When set (the statement was trace-sampled), every worker records one
  /// span per lifetime (lane = worker index + 1) and one span per drained
  /// morsel batch onto this buffer. Null — the default — adds nothing.
  obs::TraceBuffer* trace = nullptr;

  /// Per-query memory tracker. Worker tasks install it as their thread's
  /// CurrentQueryTracker and charge materialization points (join builds,
  /// local-sort buffers, aggregate tables, drained result parts) against
  /// it; an over-budget charge throws and unwinds through AwaitAll. Null
  /// — the default — disables accounting on the parallel path.
  obs::MemoryTracker* memory = nullptr;
};

/// What the parallel executor did with a plan, for the Session's
/// execution-path counters and QueryResult reporting. Only meaningful
/// when ExecuteParallel returned true.
struct ParallelExecReport {
  /// The plan contained a join executed as a partitioned parallel build
  /// plus a morsel-parallel probe.
  bool parallel_join = false;
  /// The plan's order-by ran as per-worker local sorts combined by a
  /// k-way merge (with the heap-based TopN shortcut when a limit was
  /// present). False when a sort was applied serially to an already
  /// merged (small) aggregate result.
  bool parallel_sort = false;
};

/// True when `plan` (after optimization) has a shape the morsel-driven
/// executor handles:
///   - a Scan / Select / Project pipeline over one table — plain or
///     partitioned (a partitioned scan draws morsels from every
///     partition through one shared queue, offsetting rowIDs to the
///     table-global numbering),
///   - optionally with an inner equi join of two such pipelines at the
///     bottom (partition-parallel build over the build side's morsels, a
///     barrier, then a parallel probe fused into the probe pipeline;
///     further Select / Project operators may sit above the join),
///   - optionally rooted by a grouping Aggregate or Distinct (executed as
///     per-worker partial aggregation + final merge aggregation),
///   - optionally rooted by a Sort / TopN (per-worker local sort, k-way
///     merge; over an Aggregate the final sort is applied to the merged
///     result),
///   - a PatchDistinct rewrite over a NUC or NCC index (the patch-aware
///     scan: both the exclude-patches and use-patches branches are
///     morsel-parallel).
/// Everything else — PatchSort / PatchJoin rewrites, joins of non-chain
/// inputs (e.g. a join over an aggregate), global aggregates without
/// group columns — falls back to the serial operator tree.
bool ParallelPlanSupported(const LogicalNode& plan);

/// Executes an optimized plan with morsel-driven parallelism: base rows
/// are chopped into morsels, every pool worker runs its own copy of the
/// pipeline pulling morsels from a shared queue (patch-aware scans fuse
/// the PatchIndex filter into each morsel's scan), and per-worker results
/// are merged. Join plans run in two phases — per-worker partitioned
/// build over the build side's morsels, a barrier, then a parallel probe
/// against the read-only partition tables; a NUC index on the build key
/// (annotated by the rewriter) lets the build skip duplicate chaining
/// for non-exception rows. Unless the plan is rooted by a Sort, row
/// order differs from the serial tree; row contents are identical. One
/// exception: a Sort with a limit whose ties straddle the cutoff may
/// keep different tied rows than the serial tree — both are valid top-k
/// answers, and fully tie-broken sort keys make the output exact.
/// Returns false — leaving `out` untouched — when the plan shape is
/// unsupported or the driving table is below `min_parallel_rows`, in
/// which case the caller should compile and run the serial tree. When
/// `report` is non-null it is filled with which parallel paths ran.
///
/// Thread-safety: callers must hold at least a shared lock on every
/// scanned catalog table (Session::Execute does); the executor itself
/// only reads tables. Multiple queries may execute concurrently on one
/// pool — each awaits only its own tasks.
bool ExecuteParallel(const LogicalNode& plan, ThreadPool& pool,
                     const ParallelExecOptions& options, Batch* out,
                     ParallelExecReport* report = nullptr);

}  // namespace patchindex

#endif  // PATCHINDEX_ENGINE_EXECUTOR_H_
