#ifndef PATCHINDEX_ENGINE_DURABILITY_H_
#define PATCHINDEX_ENGINE_DURABILITY_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "engine/catalog.h"
#include "obs/metrics.h"
#include "storage/fault_fs.h"
#include "storage/table.h"

namespace patchindex {

/// Durability configuration (EngineOptions::durability). An empty
/// data_dir disables the subsystem entirely — the engine stays the
/// historical volatile in-memory store.
struct DurabilityOptions {
  /// Directory holding the catalog log, per-partition WALs, snapshots and
  /// the checkpoint manifests. Created if absent; an advisory flock on
  /// <data_dir>/LOCK rejects a second engine on the same directory.
  std::string data_dir;

  /// Fsync the WAL before a commit is acknowledged (and checkpoint files
  /// before the manifest rename). With false, commits are only durable
  /// against process crashes (the page cache survives); an OS/power crash
  /// can lose acknowledged tail commits — and because recovery assumes
  /// commit sequence numbers vanish tail-first, partial page-cache loss
  /// is outside the recovery contract. Benchmarks use false.
  bool fsync = true;

  /// Auto-checkpoint a table after a commit once its WALs carry this many
  /// record bytes (0 disables; explicit Engine::Checkpoint still works).
  /// Checkpointing truncates the WALs, bounding recovery time.
  std::uint64_t checkpoint_wal_bytes = 64ull << 20;

  /// Test support: fault/crash injection hook passed down to every
  /// durable file operation (see storage/fault_fs.h).
  FaultHook fault_hook;

  bool enabled() const { return !data_dir.empty(); }
};

/// Hot-path durability instrumentation handles, bound by the engine
/// before Open()/Recover() run so recovery's log resets are counted too.
/// All-null (the default) records nothing.
struct DurabilityMetrics {
  /// WAL record bytes appended by acknowledged commits.
  obs::Counter* wal_appended_bytes = nullptr;
  /// Latency of each commit-path fsync (one per dirty partition log).
  obs::Histogram* fsync_latency_us = nullptr;
  /// Wall time of each completed table checkpoint.
  obs::Histogram* checkpoint_duration_us = nullptr;
  /// Wait event: time a commit was blocked on its WAL fsyncs — the same
  /// stalls fsync_latency_us records per fsync, aggregated per commit
  /// into the engine's wait-event-class view.
  obs::Histogram* wait_fsync_us = nullptr;
};

/// A race-free copy of one table's durable bookkeeping, for
/// `pi_stats.tables` / `pi_stats.wal`. Callers must hold at least the
/// table's shared lock (commit and checkpoint mutate the state under the
/// exclusive lock).
struct TableDurability {
  /// False when the table is not WAL-tracked (volatile bulk loads).
  bool tracked = false;
  std::uint64_t wal_bytes = 0;
  std::uint64_t snapshot_csn = 0;
  std::uint64_t next_csn = 0;
  bool broken = false;
  /// Current log file size of each partition (header included).
  std::vector<std::uint64_t> partition_wal_bytes;
};

/// What Recover() found, for observability and tests.
struct RecoveryReport {
  std::size_t tables = 0;
  std::uint64_t records_replayed = 0;
  /// Trailing commits dropped because a crash interrupted their
  /// multi-partition WAL append (fewer records on disk than the record's
  /// commit_partitions announces) — never-acknowledged commits.
  std::uint64_t commits_dropped = 0;
  std::size_t indexes_restored = 0;
  std::size_t indexes_rebuilt = 0;
};

/// The write-ahead-log + checkpoint subsystem behind EngineOptions::
/// durability (see ARCHITECTURE.md "durability" for the full protocol).
///
/// Write path: LogCommit runs after an update query's deltas are buffered
/// in the partitions' PDTs and before the PatchIndex commit protocol
/// publishes them — under the table's exclusive lock, which serializes
/// commits and makes commit sequence numbers (csn) strictly ordered. Each
/// dirty partition gets one framed, CRC'd record (partition-local rowIDs,
/// so replay bypasses insert routing); all records of one commit carry
/// the same csn and the dirty-partition count. Logs are fsynced before
/// LogCommit returns; a failed append/fsync truncates the logs back to
/// their pre-commit size and aborts the commit.
///
/// Checkpoint path: CheckpointTable (exclusive lock held) snapshots every
/// partition's base columns (PDTs are empty at rest — commits fold them
/// via Table::Checkpoint) and every PatchIndex's state into csn-stamped
/// files, fsyncs them, then atomically renames the manifest — the commit
/// point — fsyncs the directory, and only then truncates the WALs.
///
/// Recovery (Recover, run by the Engine constructor): replay the catalog
/// log's DDL, load the manifest-named snapshots, restore csn-matching
/// index checkpoints, replay WAL records with csn > manifest csn in csn
/// order through the normal PatchIndex commit protocol (restored indexes
/// are maintained incrementally), drop the torn tail and any trailing
/// commit with missing partition records, rebuild unrestored indexes by
/// discovery, and checkpoint once to reset the logs.
///
/// Thread safety: table-level calls (LogCommit, CheckpointTable) must
/// hold that table's exclusive lock — they are not otherwise
/// synchronized against each other for the same table. DDL logging and
/// state-map access are internally locked.
class DurabilityManager {
 public:
  explicit DurabilityManager(DurabilityOptions options);
  ~DurabilityManager();

  DurabilityManager(const DurabilityManager&) = delete;
  DurabilityManager& operator=(const DurabilityManager&) = delete;

  /// Binds metric handles (see DurabilityMetrics). Call before
  /// Open()/Recover(); not thread-safe against concurrent commits.
  void SetMetrics(const DurabilityMetrics& metrics) { metrics_ = metrics; }

  /// Creates/locks the data directory and opens the catalog log. Must be
  /// called (and succeed) before anything else.
  Status Open();

  /// Rebuilds the catalog from the data directory; see class comment.
  Status Recover(Catalog* catalog, ThreadPool* pool);

  /// Appends a create-table DDL record to the catalog log and creates the
  /// per-partition WAL files. On failure the table is not tracked (the
  /// caller un-creates it).
  Status LogCreateTable(const std::string& name, const Schema& schema,
                        std::size_t partitions);

  /// Appends a create-index DDL record. Duplicate specs (the partial
  /// re-create path) are deduplicated on recovery.
  Status LogCreateIndex(const std::string& table, std::size_t column,
                        ConstraintKind constraint, bool ascending);

  /// Logs the update query currently buffered in `table`'s PDTs. A no-op
  /// for tables not created through the logged DDL path (Catalog::
  /// AddTable bulk loads are volatile by design). On error the WAL is
  /// rolled back and the caller must abort the commit (discard the PDTs).
  /// On success, `commit_csn` (when non-null) receives the commit
  /// sequence number assigned to this update query.
  Status LogCommit(const std::string& name, const PartitionedTable& table,
                   std::int64_t* commit_csn = nullptr);

  /// True once `name`'s WAL bytes exceed checkpoint_wal_bytes.
  bool ShouldCheckpoint(const std::string& name) const;

  /// Snapshots `name` and truncates its WALs (exclusive lock held by the
  /// caller). Failure is recoverable: the WALs keep growing and the next
  /// trigger retries; durable state is never left ambiguous (the manifest
  /// rename is atomic).
  Status CheckpointTable(const std::string& name, const PartitionedTable& table,
                         const PatchIndexManager& manager);

  /// Checkpoint sourced from a pinned MVCC version: `snapshot` is the
  /// version's immutable PartitionedTable and `indexes` its index clones
  /// (Catalog::TableVersion). The caller must still hold the table's
  /// exclusive (writer–writer) lock — WAL truncation must be fenced
  /// against concurrent commits — and the version must be current
  /// (Catalog::VersionMatchesHead), so the files written are exactly the
  /// committed head state. Readers are unaffected throughout: they never
  /// take the lock under MVCC.
  Status CheckpointTable(
      const std::string& name, const PartitionedTable& snapshot,
      const std::vector<std::shared_ptr<const PatchIndex>>& indexes);

  const RecoveryReport& last_recovery() const { return report_; }
  const DurabilityOptions& options() const { return options_; }

  /// Snapshot of `name`'s durable bookkeeping (tracked == false for
  /// untracked names). Caller must hold at least the table's shared lock.
  TableDurability InspectTable(const std::string& name) const;

 private:
  struct IndexSpec {
    std::string table;
    std::size_t column = 0;
    ConstraintKind constraint = ConstraintKind::kNearlyUnique;
    bool ascending = true;
  };

  /// Durable bookkeeping of one logged table. Mutated only under the
  /// table's exclusive lock (except creation, under mu_).
  struct TableState {
    Schema schema;
    std::size_t partitions = 1;
    /// Next commit sequence number to assign.
    std::uint64_t next_csn = 1;
    /// Csn captured by the last completed checkpoint.
    std::uint64_t snapshot_csn = 0;
    /// Record bytes appended across all partition logs since then.
    std::uint64_t wal_bytes = 0;
    /// One open log per partition.
    std::vector<DurableFile> wal;
    /// Fail-stop: a WAL rollback failed, so log and memory may disagree;
    /// further commits on this table are refused.
    bool broken = false;
  };

  std::string TablePath(const std::string& name, const char* suffix) const;
  std::string WalPath(const std::string& name, std::size_t partition) const;
  std::string SnapshotPath(const std::string& name, std::size_t partition,
                           std::uint64_t csn) const;
  std::string IndexCheckpointPath(const IndexSpec& spec, std::size_t partition,
                                  std::uint64_t csn) const;

  Status AppendCatalogRecord(const std::string& payload);
  /// (Re)creates partition `p`'s log with a header at `snapshot_csn`.
  Status ResetWal(const std::string& name, TableState* state, std::size_t p);
  Status RecoverTable(const std::string& name, TableState* state,
                      const std::vector<IndexSpec>& indexes, Catalog* catalog,
                      ThreadPool* pool);
  /// `indexes` are the PatchIndexes to checkpoint alongside the data —
  /// live manager-owned indexes or a pinned version's clones; each must
  /// be bound to one of `table`'s partitions.
  Status CheckpointLocked(const std::string& name, TableState* state,
                          const PartitionedTable& table,
                          const std::vector<const PatchIndex*>& indexes);

  TableState* FindState(const std::string& name);
  const TableState* FindState(const std::string& name) const;

  DurabilityOptions options_;
  DurabilityMetrics metrics_;
  int lock_fd_ = -1;
  RecoveryReport report_;

  std::mutex catalog_mu_;  // serializes catalog-log appends
  DurableFile catalog_log_;

  mutable std::mutex mu_;  // guards the tables_ map (not the states)
  std::map<std::string, TableState> tables_;
};

}  // namespace patchindex

#endif  // PATCHINDEX_ENGINE_DURABILITY_H_
