#ifndef PATCHINDEX_ENGINE_ENGINE_H_
#define PATCHINDEX_ENGINE_ENGINE_H_

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "engine/catalog.h"
#include "engine/executor.h"
#include "optimizer/rewriter.h"

namespace patchindex {

struct EngineOptions {
  /// Worker threads for the morsel-driven executor; 0 = hardware
  /// concurrency.
  std::size_t num_threads = 0;

  /// Base rows per morsel.
  std::size_t morsel_rows = kDefaultMorselRows;

  /// Tables below this visible-row count run on the serial operator tree
  /// even when the plan shape is parallelizable. 0 forces parallelism.
  std::size_t min_parallel_rows = 16 * kBatchSize;

  /// Master switch: false pins every query to the serial operator tree
  /// (used for A/B comparison and by the equivalence tests).
  bool enable_parallel_execution = true;

  /// Options forwarded to the PatchIndex rewriter.
  OptimizerOptions optimizer;
};

/// A query answer: the materialized rows plus how they were produced.
struct QueryResult {
  Batch rows;
  /// True when the morsel-driven parallel executor ran the plan; false
  /// when it fell back to the serial operator tree. Parallel results are
  /// identical to serial ones modulo row order.
  bool parallel = false;
};

/// One cell change of an update query.
struct CellUpdate {
  RowId row;
  std::size_t column;
  Value value;
};

/// One update query's delta. Exactly one kind may be non-empty — one SQL
/// statement inserts, modifies or deletes, never a mix (paper §5).
struct UpdateQuery {
  std::vector<Row> inserts;
  std::vector<RowId> deletes;
  std::vector<CellUpdate> modifies;

  static UpdateQuery Insert(std::vector<Row> rows);
  static UpdateQuery Delete(std::vector<RowId> rows);
  static UpdateQuery Modify(std::vector<CellUpdate> cells);
};

class Session;

/// The execution engine: owns the catalog (tables + PatchIndexes) and the
/// worker pool, and hands out sessions. Queries enter as LogicalNode
/// plans, run through the PatchIndex rewriter, and execute either on the
/// morsel-driven parallel executor or — for plan shapes it does not
/// handle — on the serial operator tree. Table-level reader-writer locks
/// let any number of read queries interleave with serialized update
/// queries.
class Engine {
 public:
  explicit Engine(EngineOptions options = {});

  Catalog& catalog() { return catalog_; }
  const EngineOptions& options() const { return options_; }
  ThreadPool& pool() { return *pool_; }

  Session CreateSession();

 private:
  friend class Session;

  EngineOptions options_;
  Catalog catalog_;
  std::unique_ptr<ThreadPool> pool_;
};

/// A client handle onto the engine. Sessions are cheap to create, hold no
/// state of their own, and may be used from different threads (each call
/// acquires the table locks it needs).
class Session {
 public:
  /// Runs a read query: optimizes `plan` against the catalog's indexes,
  /// then executes it in parallel where supported (serial fallback
  /// otherwise). Shared locks are held on every catalog table the plan
  /// scans for the duration of the query.
  Result<QueryResult> Execute(LogicalPtr plan);

  /// Same, with per-query optimizer options overriding the engine's.
  Result<QueryResult> Execute(LogicalPtr plan,
                              const OptimizerOptions& optimizer);

  /// Runs an update query against a catalog table under its exclusive
  /// lock: buffers the delta in the table's PDT, runs every affected
  /// PatchIndex's update handling, checkpoints, and runs post-checkpoint
  /// maintenance (the paper's §5 protocol, via
  /// PatchIndexManager::CommitUpdateQuery).
  Status ExecuteUpdate(const std::string& table, UpdateQuery query);

  /// Creates a PatchIndex on a catalog table (exclusive lock; the table
  /// must have no pending deltas).
  Status CreatePatchIndex(const std::string& table, std::size_t column,
                          ConstraintKind constraint,
                          PatchIndexOptions options = {});

 private:
  friend class Engine;
  explicit Session(Engine* engine) : engine_(engine) {}

  Engine* engine_;
};

}  // namespace patchindex

#endif  // PATCHINDEX_ENGINE_ENGINE_H_
