#ifndef PATCHINDEX_ENGINE_ENGINE_H_
#define PATCHINDEX_ENGINE_ENGINE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "engine/catalog.h"
#include "engine/durability.h"
#include "engine/executor.h"
#include "obs/flight_recorder.h"
#include "obs/mem_tracker.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/system_tables.h"
#include "obs/trace.h"
#include "optimizer/rewriter.h"

namespace patchindex {

struct EngineOptions {
  /// Worker threads for the morsel-driven executor; 0 = hardware
  /// concurrency, overridable by the PI_THREADS environment variable
  /// (see DefaultThreadCount in common/thread_pool.h).
  std::size_t num_threads = 0;

  /// Base rows per morsel.
  std::size_t morsel_rows = kDefaultMorselRows;

  /// Tables below this visible-row count run on the serial operator tree
  /// even when the plan shape is parallelizable. 0 forces parallelism.
  std::size_t min_parallel_rows = 16 * kBatchSize;

  /// Master switch: false pins every query to the serial operator tree
  /// (used for A/B comparison and by the equivalence tests).
  bool enable_parallel_execution = true;

  /// MVCC snapshot reads (default): read queries pin the table's
  /// published immutable TableVersion through an epoch guard and scan it
  /// lock-free — readers never block writers, and the per-table exclusive
  /// lock degenerates to a writer–writer lock. False restores the
  /// historical reader-writer protocol (every read holds the shared lock
  /// for its duration); kept for A/B comparison — bench_mvcc measures
  /// update throughput under continuous scans in both modes.
  bool mvcc_snapshot_reads = true;

  /// Partitions a CREATE TABLE statement without a PARTITIONS clause
  /// gets (the session default of the paper's §3.2 partition-local
  /// processing). 1 keeps the historical single-partition behavior.
  std::size_t default_table_partitions = 1;

  /// Runtime switch for the observability layer: when true (default)
  /// every query records its phase spans (parse/bind/optimize/execute/
  /// commit) into the engine's metrics registry and attaches a
  /// QueryResult::profile. False skips all recording — the baseline the
  /// metrics-overhead benchmark compares against. Operator-level
  /// profiling (EXPLAIN ANALYZE) is per-query and unaffected.
  bool enable_metrics = true;

  /// Completed statements the flight recorder retains for
  /// `pi_stats.queries` (see obs/flight_recorder.h). 0 disables retention
  /// — the active-query registry still works.
  std::size_t flight_recorder_capacity = 512;

  /// Fraction of SQL statements that capture a full span trace
  /// (phase spans plus per-worker and per-morsel executor spans),
  /// exportable as Chrome trace-event JSON (pisql `.trace`, piserver
  /// GET /trace). 0 (the default) traces nothing and costs nothing;
  /// 1.0 traces every statement; in between, every round(1/p)-th
  /// statement is selected deterministically.
  double trace_sampling = 0.0;

  /// Test hook: runs inside every SQL statement execution, after the
  /// statement is registered with the flight recorder and its phase is
  /// set to execute. Lets tests park a statement mid-flight and observe
  /// it through pi_stats.active_queries from another connection.
  std::function<void(std::string_view sql)> sql_exec_hook;

  /// Options forwarded to the PatchIndex rewriter.
  OptimizerOptions optimizer;

  /// Durability: a non-empty data_dir turns on per-partition write-ahead
  /// logging + checkpoint/recovery (see engine/durability.h). The Engine
  /// constructor recovers the catalog from the directory; callers must
  /// check Engine::recovery_status() before trusting the engine.
  DurabilityOptions durability;

  /// Per-statement memory budget, bytes. A statement whose accounted
  /// allocations (join builds, sort buffers, aggregate tables, result
  /// materialization, DML deltas) exceed it aborts with a
  /// kResourceExhausted status naming the operator that tripped the
  /// limit; the session and engine stay fully usable. 0 = unlimited.
  std::uint64_t query_memory_limit = 0;

  /// Engine-wide budget over all concurrently accounted statement memory
  /// (the per-engine tracker all query trackers parent under). 0 =
  /// unlimited.
  std::uint64_t engine_memory_limit = 0;
};

/// A query answer: the materialized rows plus how they were produced.
struct QueryResult {
  Batch rows;
  /// Output column names. Filled by the SQL front end (Session::Sql and
  /// prepared statements); empty for hand-built LogicalNode plans, whose
  /// columns are positional.
  std::vector<std::string> column_names;
  /// Rows inserted/modified/deleted by a SQL DML statement; 0 for reads.
  std::uint64_t rows_affected = 0;
  /// True when the morsel-driven parallel executor ran the plan; false
  /// when it fell back to the serial operator tree. Parallel results are
  /// identical to serial ones modulo row order (a Sort-rooted plan keeps
  /// the sort order either way; a TopN whose ties straddle the limit may
  /// keep different tied rows — both are valid top-k answers).
  bool parallel = false;
  /// The plan's join ran as a partitioned parallel build + parallel
  /// probe (implies `parallel`).
  bool parallel_join = false;
  /// The plan's order-by ran as per-worker local sorts + k-way merge
  /// (implies `parallel`). False when the sort was applied serially to
  /// an already merged aggregate result.
  bool parallel_sort = false;
  /// Phase spans (and, for EXPLAIN ANALYZE, per-operator measurements)
  /// of this query. Set by the SQL path when EngineOptions::enable_metrics
  /// is on; null otherwise (and for hand-built plans run via Execute).
  std::shared_ptr<obs::QueryProfile> profile;
  /// The statement's span trace when the engine's trace sampler selected
  /// it (EngineOptions::trace_sampling); null otherwise. Render with
  /// obs::RenderChromeTrace (pisql's `.trace` does).
  std::shared_ptr<obs::TraceBuffer> trace;
};

/// Which execution path the session's queries took, answering "did my
/// query actually run parallel?" without a profiler. One query bumps
/// `serial_fallbacks` or at least one parallel counter; a plan with both
/// a join and an order-by bumps both feature counters. Counters are
/// atomics — a Session may be used from several threads — and are shared
/// by all copies of one Session.
struct ExecPathCounters {
  /// Parallel queries that were plain scan/aggregate pipelines (no
  /// parallel join or sort involved).
  std::atomic<std::uint64_t> parallel_pipelines{0};
  /// Queries whose join ran the partitioned parallel build + probe.
  std::atomic<std::uint64_t> parallel_joins{0};
  /// Queries whose order-by ran as local sorts + k-way merge.
  std::atomic<std::uint64_t> parallel_sorts{0};
  /// Queries executed entirely on the serial operator tree.
  std::atomic<std::uint64_t> serial_fallbacks{0};
};

/// One cell change of an update query.
struct CellUpdate {
  RowId row;
  std::size_t column;
  Value value;
};

/// One update query's delta. Exactly one kind may be non-empty — one SQL
/// statement inserts, modifies or deletes, never a mix (paper §5).
struct UpdateQuery {
  std::vector<Row> inserts;
  std::vector<RowId> deletes;
  std::vector<CellUpdate> modifies;

  static UpdateQuery Insert(std::vector<Row> rows);
  static UpdateQuery Delete(std::vector<RowId> rows);
  static UpdateQuery Modify(std::vector<CellUpdate> cells);
};

class Session;
class PreparedStatement;

/// Resolves every catalog table `plan` scans to TableRefs, sorted by
/// lock address and deduplicated — the deterministic order in which read
/// queries acquire their shared locks (see the Session class comment).
/// Shared by Session::Execute and the SQL EXPLAIN path.
void CollectPlanTableRefs(const LogicalNode& plan, const Catalog& catalog,
                          std::vector<Catalog::TableRef>* refs);

/// The execution engine: owns the catalog (tables + PatchIndexes) and the
/// worker pool, and hands out sessions. Queries enter as LogicalNode
/// plans, run through the PatchIndex rewriter, and execute either on the
/// morsel-driven parallel executor or — for plan shapes it does not
/// handle — on the serial operator tree. Read queries scan pinned
/// immutable table versions lock-free (MVCC snapshot reads); update
/// queries serialize on per-table writer–writer locks.
class Engine {
 public:
  explicit Engine(EngineOptions options = {});
  /// Detaches the pool's queue-wait recorder before the metrics registry
  /// (whose histogram it records into) is destroyed.
  ~Engine();

  Catalog& catalog() { return catalog_; }
  const EngineOptions& options() const { return options_; }
  ThreadPool& pool() { return *pool_; }

  /// The engine-wide metrics registry: query/statement counters and
  /// phase-latency histograms, plus whatever other layers (the server)
  /// register into it. Always present — recording by the engine itself is
  /// gated by EngineOptions::enable_metrics; external registrations work
  /// either way.
  obs::MetricsRegistry& metrics() { return *metrics_; }

  /// The engine's flight recorder: the active-query registry plus the
  /// ring of recently completed statements. Always present; feeds
  /// `pi_stats.queries` / `pi_stats.active_queries`.
  obs::FlightRecorder& recorder() { return *recorder_; }

  /// Deterministic trace sampler: true when the next SQL statement should
  /// carry a TraceBuffer (see EngineOptions::trace_sampling).
  bool SampleTrace() {
    const double s = options_.trace_sampling;
    if (s <= 0.0) return false;
    if (s >= 1.0) return true;
    const auto period = static_cast<std::uint64_t>(1.0 / s + 0.5);
    return trace_seq_.fetch_add(1, std::memory_order_relaxed) % period == 0;
  }

  /// Keeps the rendered Chrome JSON of the most recently completed traced
  /// statement, for piserver's GET /trace endpoint.
  void StoreLastTrace(std::string json);
  /// The stored trace JSON; empty when no statement has been traced yet.
  std::string LastTraceJson() const;

  /// Installs (or, with nullptr, removes) the provider behind
  /// `pi_stats.connections` — the network server registers a snapshot of
  /// its live connections at Start and deregisters at Stop.
  void SetConnectionsProvider(
      std::function<std::vector<obs::ConnectionInfo>()> provider);
  /// The provider's current snapshot; empty when no server is attached.
  std::vector<obs::ConnectionInfo> ConnectionsSnapshot() const;

  /// The engine's memory-accounting node (parented under the process
  /// root, enforcing EngineOptions::engine_memory_limit). Per-query
  /// trackers parent under it; the server parents its frame/result-queue
  /// tracker under it too.
  obs::MemoryTracker& memory() { return *mem_tracker_; }

  /// Installs (or, with nullptr, removes) the server's frame/result-queue
  /// tracker so `pi_stats.memory` can report it — the network server
  /// registers at Start and deregisters at Stop.
  void SetServerMemoryTracker(obs::MemoryTracker* tracker);
  /// Copies the registered server tracker's figures; false when no server
  /// is attached. Sampling runs with the registration lock held, so
  /// SetServerMemoryTracker(nullptr) is a barrier: once it returns, no
  /// sampler still touches the removed tracker.
  bool SampleServerMemory(obs::MemoryTrackerSample* out) const;

  /// Resident bytes of every catalog table (columns, PDT deltas,
  /// retained MVCC versions), computed pull-style — the complement of
  /// the transient bytes the tracker hierarchy accounts. Feeds the
  /// pidx_memory_bytes gauge and pi_stats.memory.
  std::uint64_t ApproxResidentBytes() const;

  /// The WAL/checkpoint subsystem; null when EngineOptions::durability is
  /// disabled *or* recovery failed (the engine then runs volatile —
  /// check recovery_status()).
  DurabilityManager* durability() { return durability_.get(); }

  /// Outcome of the constructor's recovery pass. Non-OK means the data
  /// directory could not be locked or its contents could not be restored;
  /// durable logging is then disabled and the catalog may hold a partial
  /// recovery — servers should refuse to start.
  const Status& recovery_status() const { return recovery_status_; }

  /// Checkpoints every durable table (snapshot + WAL truncation), each
  /// under its exclusive lock — a writer–writer lock under MVCC, so
  /// readers keep scanning their pinned versions throughout. The snapshot
  /// data is sourced from the table's pinned published version when it is
  /// current (it is immutable and byte-identical to the committed head);
  /// the live head is used otherwise. Returns the first failure, after
  /// trying all tables. A no-op without durability.
  Status Checkpoint();

  Session CreateSession();

 private:
  friend class Session;
  friend class PreparedStatement;

  /// Hot-path handles into `metrics_`, resolved once at construction. All
  /// null when EngineOptions::enable_metrics is false, so call sites test
  /// one pointer and skip recording entirely.
  struct MetricSet {
    obs::Counter* read_queries = nullptr;
    obs::Counter* update_queries = nullptr;
    obs::Counter* sql_statements = nullptr;
    obs::Histogram* query_latency_us = nullptr;
    obs::Histogram* phase_parse_us = nullptr;
    obs::Histogram* phase_bind_us = nullptr;
    obs::Histogram* phase_optimize_us = nullptr;
    obs::Histogram* phase_execute_us = nullptr;
    obs::Histogram* phase_commit_wait_us = nullptr;
    obs::Histogram* phase_commit_us = nullptr;
    /// Wait-event histograms: time blocked on a table's writer lock and
    /// time tasks sat in the thread pool's queue before a worker picked
    /// them up.
    obs::Histogram* wait_table_lock_us = nullptr;
    obs::Histogram* wait_pool_queue_us = nullptr;
  };

  EngineOptions options_;
  Catalog catalog_;
  std::unique_ptr<obs::MemoryTracker> mem_tracker_;
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<obs::MetricsRegistry> metrics_;
  std::unique_ptr<obs::FlightRecorder> recorder_;
  std::unique_ptr<DurabilityManager> durability_;
  Status recovery_status_;
  MetricSet m_;
  std::atomic<std::uint64_t> next_session_id_{1};
  std::atomic<std::uint64_t> trace_seq_{0};
  /// Guards the pull-style introspection state below (cold paths only).
  mutable std::mutex obs_mu_;
  std::function<std::vector<obs::ConnectionInfo>()> connections_provider_;
  std::string last_trace_json_;
  obs::MemoryTracker* server_mem_tracker_ = nullptr;
};

/// A client handle onto the engine. Sessions are cheap to create, hold
/// only their execution-path counters, and may be used from different
/// threads (each call acquires the table locks it needs; the counters
/// are atomic).
///
/// Concurrency: under MVCC (EngineOptions::mvcc_snapshot_reads, the
/// default) a read query pins each scanned table's published immutable
/// TableVersion through an epoch guard and runs lock-free — see
/// engine/read_pin.h for the full resolution order. Update queries and
/// DDL still take the table's exclusive lock, which therefore only ever
/// serializes writers against writers (and checkpoints).
///
/// Lock ordering: when a read query does fall back to shared locks (MVCC
/// off, or a directly-mutated head), it acquires them in ascending
/// lock-address order; update queries and DDL take a single exclusive
/// table lock. The catalog's own map mutex is never held while a table
/// lock is acquired. This total order makes deadlock between any mix of
/// concurrent sessions impossible.
class Session {
 public:
  /// Runs a read query: optimizes `plan` against the catalog's indexes,
  /// then executes it in parallel where supported (serial fallback
  /// otherwise — see ParallelPlanSupported in engine/executor.h for the
  /// supported shapes). Every catalog table the plan scans is protected
  /// for the duration of the query — by an epoch-pinned immutable
  /// version under MVCC (lock-free; the passed plan is never mutated),
  /// by a shared lock otherwise.
  Result<QueryResult> Execute(LogicalPtr plan);

  /// Same, with per-query optimizer options overriding the engine's.
  Result<QueryResult> Execute(LogicalPtr plan,
                              const OptimizerOptions& optimizer);

  /// Runs an update query against a catalog table under its exclusive
  /// lock: routes each delta to its owning partition (rows are addressed
  /// by table-global rowIDs; inserts go to the least-loaded partition),
  /// buffers them in the partitions' PDTs, then commits partition-locally
  /// — per dirty partition the full §5 protocol (update handling,
  /// checkpoint, post-checkpoint maintenance) runs on the engine's thread
  /// pool, partitions in parallel, via
  /// PatchIndexManager::CommitUpdateQuery(PartitionedTable&).
  ///
  /// All-or-nothing index contract: on an index-maintenance failure the
  /// data change still commits, exactly the broken indexes are dropped,
  /// and a kConstraintViolation status reports it — a registered index is
  /// never left silently stale.
  Status ExecuteUpdate(const std::string& table, UpdateQuery query);

  /// Like ExecuteUpdate, but the delta is computed from the table's
  /// current state by `build`, *under the same exclusive lock* that
  /// applies it — the SQL UPDATE/DELETE path (find the matching rows,
  /// then change them) needs the two steps atomic against concurrent
  /// writers. `build` must not touch other catalog tables (lock order).
  Status ExecuteUpdateWith(
      const std::string& table,
      const std::function<Result<UpdateQuery>(const PartitionedTable&)>&
          build);

  /// Parses, binds and runs one SQL text statement (see sql/parser.h for
  /// the grammar). SELECTs return rows with column_names set; INSERT /
  /// UPDATE / DELETE return rows_affected. `params` supplies values for
  /// `?` placeholders in statement order. One-shot convenience over
  /// Prepare(sql) + Execute(params).
  Result<QueryResult> Sql(std::string_view sql, std::vector<Value> params = {});

  /// Parses and binds `sql` once for repeated execution. The bound plan
  /// is cached in the returned statement; each Execute re-runs only the
  /// PatchIndex rewriter and the executor.
  Result<PreparedStatement> Prepare(std::string_view sql);

  /// The optimized plan of a SQL statement as an indented tree (see
  /// optimizer/explain.h) — shows which PatchIndex rewrites fire. DML
  /// statements render their delta and, for UPDATE/DELETE, the row-
  /// matching plan.
  Result<std::string> Explain(std::string_view sql);

  /// Creates a PatchIndex on a catalog table (exclusive lock; the table
  /// must have no pending deltas). On a partitioned table this registers
  /// one index per partition — discovery runs partition-locally and in
  /// parallel (paper §3.2).
  Status CreatePatchIndex(const std::string& table, std::size_t column,
                          ConstraintKind constraint,
                          PatchIndexOptions options = {});

  /// Which execution path this session's queries took so far. Shared by
  /// all copies of this Session; monotonically increasing.
  const ExecPathCounters& path_counters() const { return *counters_; }

  /// Engine-wide id of this session, assigned by CreateSession. Shown in
  /// pi_stats.queries / pi_stats.active_queries.
  std::uint64_t session_id() const { return session_id_; }

  /// Tags this session's statements with the server connection they
  /// arrive on (-1, the default, marks in-process sessions). Set once by
  /// the server when it binds a session to an accepted connection.
  void set_connection_id(std::int64_t id) { connection_id_ = id; }
  std::int64_t connection_id() const { return connection_id_; }

 private:
  friend class Engine;
  friend class PreparedStatement;
  explicit Session(Engine* engine)
      : engine_(engine),
        counters_(std::make_shared<ExecPathCounters>()),
        session_id_(
            engine->next_session_id_.fetch_add(1,
                                               std::memory_order_relaxed)) {}

  /// The one read-query execution path. Phase spans (optimize/execute),
  /// execution flags and pool size go into `profile` when non-null;
  /// `profile_ops` additionally wraps every operator to measure rows and
  /// per-worker wall time (EXPLAIN ANALYZE), filling `profile->ops`.
  /// Engine metric recording is independent of both and gated only by
  /// EngineOptions::enable_metrics.
  /// `active` (when non-null) is the statement's flight-recorder handle —
  /// the phase advances to optimize/execute as the query moves; `trace`
  /// (when non-null) collects phase and executor spans.
  Result<QueryResult> ExecuteProfiled(
      LogicalPtr plan, const OptimizerOptions& optimizer,
      obs::QueryProfile* profile, bool profile_ops,
      const obs::FlightRecorder::Handle& active = {},
      obs::TraceBuffer* trace = nullptr);

  /// ExecuteUpdateWith plus phase measurement: lock-wait, delta build
  /// (`execute`) and commit spans go into `profile` when non-null, and
  /// into the engine's phase histograms when metrics are enabled.
  /// `commit_csn` (when non-null) receives the WAL commit sequence number
  /// the statement committed under, untouched for volatile tables.
  Status ExecuteUpdateWithProfiled(
      const std::string& table,
      const std::function<Result<UpdateQuery>(const PartitionedTable&)>&
          build,
      obs::QueryProfile* profile,
      const obs::FlightRecorder::Handle& active = {},
      obs::TraceBuffer* trace = nullptr, std::int64_t* commit_csn = nullptr);

  Engine* engine_;
  std::shared_ptr<ExecPathCounters> counters_;
  std::uint64_t session_id_;
  std::int64_t connection_id_ = -1;
};

/// A parsed-and-bound SQL statement, created by Session::Prepare. Holds
/// the bound LogicalNode plan (or DML delta expressions) so repeated
/// executions skip the front end entirely; `?` parameters are rebound per
/// Execute call. Copies share the underlying statement. One statement
/// must not be executed from two threads at once (the parameter slots are
/// shared); distinct statements are independent. Like any retained plan,
/// a prepared statement is invalidated by dropping a table it references.
class PreparedStatement {
 public:
  /// Runs the statement with `params` bound to the `?` placeholders in
  /// order. Parameter values must match the inferred slot types (INT64
  /// widens to DOUBLE).
  Result<QueryResult> Execute(std::vector<Value> params = {});

  std::size_t num_params() const;
  const std::string& sql() const;

 private:
  friend class Session;
  struct Impl;
  explicit PreparedStatement(std::shared_ptr<Impl> impl)
      : impl_(std::move(impl)) {}

  std::shared_ptr<Impl> impl_;
};

}  // namespace patchindex

#endif  // PATCHINDEX_ENGINE_ENGINE_H_
