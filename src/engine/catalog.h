#ifndef PATCHINDEX_ENGINE_CATALOG_H_
#define PATCHINDEX_ENGINE_CATALOG_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/epoch_gc.h"
#include "common/status.h"
#include "patchindex/manager.h"
#include "storage/table.h"

namespace patchindex {

/// One immutable published state of a catalog table: a frozen data
/// snapshot (partitions share their base columns with the live head via
/// copy-on-write), the index snapshots bound to those partitions, and
/// the commit it corresponds to. Readers obtain the current version with
/// Catalog::PinnedVersion() while holding an EpochGc guard and scan it
/// with no table lock at all; a superseded version is retired through
/// the global EpochGc and freed once no pinned reader can still hold it.
struct TableVersion {
  /// Commit sequence number this version was published at (the WAL CSN
  /// for durable tables; the per-table version_id for volatile ones —
  /// monotonic per table either way).
  std::uint64_t csn = 0;
  /// Monotonic per-table publication counter, starting at 1.
  std::uint64_t version_id = 0;
  /// The frozen table: CloneShared partition snapshots, with partitions
  /// an update left untouched reused from the previous version.
  std::shared_ptr<const PartitionedTable> snapshot;
  /// Each head partition's mutation_seq at publication. A mismatch
  /// against the live head means the head mutated after this version was
  /// published (an unpublished direct mutation) and the version is stale.
  std::vector<std::uint64_t> partition_seqs;
  /// Immutable index clones, bound to `snapshot`'s partitions.
  std::vector<std::shared_ptr<const PatchIndex>> indexes;
};

/// Named tables plus their PatchIndexes (via an owned PatchIndexManager),
/// with one reader-writer lock per table. Under MVCC (the default), the
/// exclusive lock is a writer–writer lock only: update queries, DDL and
/// checkpoints serialize on it, while read queries pin the published
/// TableVersion through an epoch guard and never take it at all. The
/// shared mode remains for the legacy read path (mvcc_snapshot_reads
/// off) and as the fallback when a reader finds the published version
/// stale against a directly-mutated head (bulk loads that bypass the
/// commit protocol).
///
/// Every catalog entry is a PartitionedTable — the engine's storage unit
/// (paper §3.2: discovery, patch maintenance and query processing are
/// partition-local). Single-partition tables keep the historical plain
/// `Table*` view via FindTable/TableRef::table; multi-partition tables
/// are reached through FindPartitionedTable / TableRef::ptable. The lock
/// covers the whole partitioned table: update queries may touch several
/// partitions (and commit them in parallel) under one exclusive lock.
///
/// The catalog map itself is guarded by a separate mutex; table pointers
/// and their locks stay stable until DropTable.
///
/// Lock ordering (deadlock freedom): the map mutex is only ever held
/// inside Catalog methods and never while acquiring a table lock. Table
/// locks are acquired either singly (update queries, DDL) or in
/// ascending lock-address order (read queries locking several tables via
/// Session::Execute). Never acquire a table lock while holding another
/// one out of that order.
class Catalog {
 public:
  Catalog() = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Creates an empty single-partition table; fails when the name is
  /// taken. The historical single-table API.
  Result<Table*> CreateTable(const std::string& name, Schema schema);

  /// Hard ceiling on a table's partition count: partitions are eagerly
  /// allocated, so an absurd SQL `PARTITIONS n` must be rejected with a
  /// status instead of exhausting memory.
  static constexpr std::size_t kMaxPartitions = 4096;

  /// Creates an empty table with `num_partitions` partitions
  /// (1 <= n <= kMaxPartitions).
  Result<PartitionedTable*> CreatePartitionedTable(const std::string& name,
                                                   Schema schema,
                                                   std::size_t num_partitions);

  /// Registers an already-populated table under `name` (bulk-load path);
  /// it becomes the single partition of a PartitionedTable entry.
  Result<Table*> AddTable(const std::string& name,
                          std::unique_ptr<Table> table);

  /// Registers an already-populated partitioned table under `name`.
  Result<PartitionedTable*> AddPartitionedTable(
      const std::string& name, std::unique_ptr<PartitionedTable> table);

  /// The single-table view: partition 0 of a single-partition entry;
  /// nullptr when absent *or* multi-partition (callers that understand
  /// partitions use FindPartitionedTable).
  Table* FindTable(const std::string& name);
  const Table* FindTable(const std::string& name) const;

  /// nullptr when absent.
  PartitionedTable* FindPartitionedTable(const std::string& name);
  const PartitionedTable* FindPartitionedTable(const std::string& name) const;

  /// Drops the table and every PatchIndex on it (all partitions),
  /// serialized behind the table's exclusive lock. Sessions that already
  /// resolved a TableRef keep table and lock alive until they release it,
  /// so a racing read query finishes against the (de-cataloged,
  /// index-less) table instead of touching freed memory.
  Status DropTable(const std::string& name);

  std::vector<std::string> TableNames() const;

  PatchIndexManager& manager() { return manager_; }
  const PatchIndexManager& manager() const { return manager_; }

  /// A resolved handle onto a catalog table: the table, its reader-writer
  /// lock, and shared ownership keeping both alive while held — closing
  /// the window between resolving the lock and acquiring it, during which
  /// a concurrent DropTable could otherwise free them.
  struct TableRef {
    PartitionedTable* ptable = nullptr;
    /// Partition 0 for single-partition entries, nullptr otherwise (the
    /// historical plain-table view).
    Table* table = nullptr;
    std::shared_mutex* lock = nullptr;
    std::shared_ptr<void> owner;

    explicit operator bool() const { return lock != nullptr; }
  };

  /// Resolves `table` / `name` to a handle; an empty handle when not
  /// catalog-owned (plans over free-standing tables run unguarded). The
  /// Table& overload matches any partition of an entry.
  TableRef Ref(const Table& table) const;
  TableRef Ref(const PartitionedTable& table) const;
  TableRef Ref(const std::string& name) const;

  // --- MVCC versions -----------------------------------------------------

  /// Publishes a fresh immutable TableVersion of `ref`'s table and
  /// retires the previous one through the global EpochGc. The caller
  /// must hold the table's exclusive lock (the commit/DDL path).
  /// Partitions whose mutation_seq is unchanged since the previous
  /// version are reused (their snapshots and index clones carry over);
  /// `reindex` forces every partition to re-snapshot, for events that
  /// change index state without touching the data (CreatePatchIndex,
  /// recovery restore). `csn` = 0 means volatile — the per-table
  /// version_id is used instead.
  void PublishVersion(const TableRef& ref, std::uint64_t csn,
                      bool reindex = false);

  /// The currently published version of `ref`'s table; nullptr before
  /// the first publication or after DropTable. The caller MUST hold an
  /// EpochGc::Guard on EpochGc::Global() for as long as it dereferences
  /// the result — the pointer is unprotected otherwise.
  const TableVersion* PinnedVersion(const TableRef& ref) const;

  /// True when `version`'s recorded partition seqs still match the live
  /// head — no partition has mutated since the version was published, so
  /// its snapshot is byte-identical to the head's committed state. A
  /// mismatch means an unpublished direct mutation (bulk loads, tests
  /// appending through a raw Table*) or a writer mid-commit; readers then
  /// fall back to the head under a shared lock (or the pinned version
  /// when a writer holds the lock).
  static bool VersionMatchesHead(const TableVersion& version,
                                 const PartitionedTable& head);

  struct VersionStats {
    std::int64_t live = 0;             ///< Versions published, not yet freed.
    std::uint64_t oldest_live_csn = 0; ///< Oldest such version's CSN (0: none).
    std::uint64_t current_csn = 0;     ///< Currently published version's CSN.
  };
  VersionStats VersionStatsFor(const TableRef& ref) const;

  /// Sum of live versions across all tables (the pidx_mvcc_versions_live
  /// gauge).
  std::int64_t TotalLiveVersions() const;

  ~Catalog();

 private:
  /// Tracks which of a table's versions are still alive (published or
  /// awaiting epoch reclamation). Shared with the retire deleters so
  /// they stay self-contained — a deleter may run after the catalog
  /// (even the engine) is gone.
  struct VersionTracker {
    std::mutex mu;
    std::multiset<std::uint64_t> live_csns;
  };

  struct Entry {
    std::unique_ptr<PartitionedTable> table;
    mutable std::shared_mutex lock;
    /// Currently published version. Written only under `lock` exclusive
    /// (and at creation, before the entry is visible); read lock-free by
    /// pinned readers.
    std::atomic<const TableVersion*> version{nullptr};
    std::uint64_t next_version_id = 1;  // guarded by `lock` exclusive
    std::shared_ptr<VersionTracker> tracker =
        std::make_shared<VersionTracker>();
  };

  TableRef MakeRef(const std::shared_ptr<Entry>& entry) const;
  void PublishLocked(Entry& entry, std::uint64_t csn, bool reindex);
  static void RetireVersion(std::shared_ptr<VersionTracker> tracker,
                            const TableVersion* version);
  static Entry& EntryOf(const TableRef& ref);

  mutable std::mutex mu_;  // guards tables_ (the map, not the rows)
  std::map<std::string, std::shared_ptr<Entry>> tables_;
  PatchIndexManager manager_;
};

}  // namespace patchindex

#endif  // PATCHINDEX_ENGINE_CATALOG_H_
