#ifndef PATCHINDEX_ENGINE_CATALOG_H_
#define PATCHINDEX_ENGINE_CATALOG_H_

#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "patchindex/manager.h"
#include "storage/table.h"

namespace patchindex {

/// Named tables plus their PatchIndexes (via an owned PatchIndexManager),
/// with one reader-writer lock per table. The engine takes the lock in
/// shared mode for read queries and in exclusive mode for update queries,
/// so morsel-parallel scans interleave safely with the PDT update protocol
/// (HandleUpdateQuery + checkpoint + maintenance), which mutates the base
/// columns, the PDT and the patch sets.
///
/// Every catalog entry is a PartitionedTable — the engine's storage unit
/// (paper §3.2: discovery, patch maintenance and query processing are
/// partition-local). Single-partition tables keep the historical plain
/// `Table*` view via FindTable/TableRef::table; multi-partition tables
/// are reached through FindPartitionedTable / TableRef::ptable. The lock
/// covers the whole partitioned table: update queries may touch several
/// partitions (and commit them in parallel) under one exclusive lock.
///
/// The catalog map itself is guarded by a separate mutex; table pointers
/// and their locks stay stable until DropTable.
///
/// Lock ordering (deadlock freedom): the map mutex is only ever held
/// inside Catalog methods and never while acquiring a table lock. Table
/// locks are acquired either singly (update queries, DDL) or in
/// ascending lock-address order (read queries locking several tables via
/// Session::Execute). Never acquire a table lock while holding another
/// one out of that order.
class Catalog {
 public:
  Catalog() = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Creates an empty single-partition table; fails when the name is
  /// taken. The historical single-table API.
  Result<Table*> CreateTable(const std::string& name, Schema schema);

  /// Hard ceiling on a table's partition count: partitions are eagerly
  /// allocated, so an absurd SQL `PARTITIONS n` must be rejected with a
  /// status instead of exhausting memory.
  static constexpr std::size_t kMaxPartitions = 4096;

  /// Creates an empty table with `num_partitions` partitions
  /// (1 <= n <= kMaxPartitions).
  Result<PartitionedTable*> CreatePartitionedTable(const std::string& name,
                                                   Schema schema,
                                                   std::size_t num_partitions);

  /// Registers an already-populated table under `name` (bulk-load path);
  /// it becomes the single partition of a PartitionedTable entry.
  Result<Table*> AddTable(const std::string& name,
                          std::unique_ptr<Table> table);

  /// Registers an already-populated partitioned table under `name`.
  Result<PartitionedTable*> AddPartitionedTable(
      const std::string& name, std::unique_ptr<PartitionedTable> table);

  /// The single-table view: partition 0 of a single-partition entry;
  /// nullptr when absent *or* multi-partition (callers that understand
  /// partitions use FindPartitionedTable).
  Table* FindTable(const std::string& name);
  const Table* FindTable(const std::string& name) const;

  /// nullptr when absent.
  PartitionedTable* FindPartitionedTable(const std::string& name);
  const PartitionedTable* FindPartitionedTable(const std::string& name) const;

  /// Drops the table and every PatchIndex on it (all partitions),
  /// serialized behind the table's exclusive lock. Sessions that already
  /// resolved a TableRef keep table and lock alive until they release it,
  /// so a racing read query finishes against the (de-cataloged,
  /// index-less) table instead of touching freed memory.
  Status DropTable(const std::string& name);

  std::vector<std::string> TableNames() const;

  PatchIndexManager& manager() { return manager_; }
  const PatchIndexManager& manager() const { return manager_; }

  /// A resolved handle onto a catalog table: the table, its reader-writer
  /// lock, and shared ownership keeping both alive while held — closing
  /// the window between resolving the lock and acquiring it, during which
  /// a concurrent DropTable could otherwise free them.
  struct TableRef {
    PartitionedTable* ptable = nullptr;
    /// Partition 0 for single-partition entries, nullptr otherwise (the
    /// historical plain-table view).
    Table* table = nullptr;
    std::shared_mutex* lock = nullptr;
    std::shared_ptr<void> owner;

    explicit operator bool() const { return lock != nullptr; }
  };

  /// Resolves `table` / `name` to a handle; an empty handle when not
  /// catalog-owned (plans over free-standing tables run unguarded). The
  /// Table& overload matches any partition of an entry.
  TableRef Ref(const Table& table) const;
  TableRef Ref(const PartitionedTable& table) const;
  TableRef Ref(const std::string& name) const;

 private:
  struct Entry {
    std::unique_ptr<PartitionedTable> table;
    mutable std::shared_mutex lock;
  };

  TableRef MakeRef(const std::shared_ptr<Entry>& entry) const;

  mutable std::mutex mu_;  // guards tables_ (the map, not the rows)
  std::map<std::string, std::shared_ptr<Entry>> tables_;
  PatchIndexManager manager_;
};

}  // namespace patchindex

#endif  // PATCHINDEX_ENGINE_CATALOG_H_
