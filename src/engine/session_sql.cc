// Session's SQL entry points: Sql / Prepare / Explain and
// PreparedStatement. The front end lives in src/sql/ (lexer -> parser ->
// binder); this file owns running a bound statement through the engine:
// SELECT plans go down the same OptimizePlan + morsel-executor path as
// hand-built LogicalNode plans, DML deltas are computed and applied under
// the table's exclusive lock via Session::ExecuteUpdateWith.

#include <algorithm>
#include <mutex>
#include <shared_mutex>
#include <utility>

#include "common/check.h"
#include "common/timer.h"
#include "engine/engine.h"
#include "engine/read_pin.h"
#include "engine/system_tables.h"
#include "optimizer/explain.h"
#include "optimizer/rewriter.h"
#include "sql/binder.h"
#include "sql/parser.h"

namespace patchindex {

namespace {

/// Prefixes every line of `body` with two spaces (nesting a sub-plan
/// under a one-line header).
std::string Indent(const std::string& body) {
  std::string out;
  for (std::size_t i = 0; i < body.size();) {
    std::size_t nl = body.find('\n', i);
    if (nl == std::string::npos) nl = body.size();
    out += "  " + body.substr(i, nl - i) + "\n";
    i = nl + 1;
  }
  return out;
}

/// Truncates a materialized batch to its first `limit` rows (LIMIT
/// without ORDER BY — no order to cut on inside the plan).
void TruncateBatch(Batch* batch, std::size_t limit) {
  if (batch->num_rows() <= limit) return;
  Batch out;
  std::vector<ColumnType> types;
  for (const ColumnVector& c : batch->columns) types.push_back(c.type);
  out.Reset(types);
  for (std::size_t r = 0; r < limit; ++r) out.AppendRowFrom(*batch, r);
  *batch = std::move(out);
}

/// Evaluates a bound row-free expression (INSERT values: constants,
/// parameters, arithmetic) to a single Value.
Value EvalScalar(const Expr& expr) {
  Batch one;
  one.row_ids.push_back(0);
  ColumnVector v = expr.Eval(one);
  PIDX_CHECK(v.size() == 1);
  return v.GetValue(0);
}

/// The row-finding plan of a SQL UPDATE/DELETE: a scan of every schema
/// column plus the bound WHERE. Shared by execution (MatchingRows) and
/// EXPLAIN so the rendered plan is the executed one. The scan emits
/// table-global rowIDs (partition scans offset by their base), which is
/// exactly how ExecuteUpdate addresses delta rows.
LogicalPtr MatchingRowsPlan(const PartitionedTable& table,
                            const sql::BoundStatement& bound) {
  std::vector<std::size_t> cols;
  for (std::size_t c = 0; c < table.schema().num_fields(); ++c) {
    cols.push_back(c);
  }
  LogicalPtr plan = LScan(table, std::move(cols));
  if (bound.where != nullptr) {
    plan = LSelect(std::move(plan), bound.where, bound.where_selectivity);
  }
  return plan;
}

/// The rows of `table` matching `bound.where` (all of them when null),
/// materialized with every schema column — the row-finding phase of SQL
/// UPDATE/DELETE. Runs serially: the caller holds the table's exclusive
/// lock, so no patch rewrites or parallelism are worth the setup.
Batch MatchingRows(const PartitionedTable& table,
                   const sql::BoundStatement& bound) {
  OperatorPtr op = CompilePlan(MatchingRowsPlan(table, bound));
  return Collect(*op);
}

/// Wraps `lines` as a result set: one STRING column named `column`, one
/// row per line — the shape of EXPLAIN / EXPLAIN ANALYZE output, which
/// flows through every result path (local, prepared, wire protocol)
/// unchanged.
QueryResult TextResult(const std::string& column,
                       const std::vector<std::string>& lines) {
  QueryResult out;
  out.column_names = {column};
  out.rows.Reset({ColumnType::kString});
  for (std::size_t i = 0; i < lines.size(); ++i) {
    out.rows.columns[0].AppendValue(Value(lines[i]));
    out.rows.row_ids.push_back(i);
  }
  return out;
}

/// Splits rendered explain text (newline-terminated lines) into rows.
std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  for (std::size_t i = 0; i < text.size();) {
    std::size_t nl = text.find('\n', i);
    if (nl == std::string::npos) nl = text.size();
    lines.push_back(text.substr(i, nl - i));
    i = nl + 1;
  }
  return lines;
}

Status BindParams(const sql::BoundStatement& bound,
                  std::vector<Value> params) {
  if (params.size() != bound.param_slots->size()) {
    return Status::InvalidArgument(
        "statement has " + std::to_string(bound.param_slots->size()) +
        " parameter(s), got " + std::to_string(params.size()));
  }
  for (std::size_t i = 0; i < params.size(); ++i) {
    const ColumnType want = bound.param_types[i];
    if (params[i].type() == ColumnType::kInt64 &&
        want == ColumnType::kDouble) {
      params[i] = Value(static_cast<double>(params[i].AsInt64()));
    }
    if (params[i].type() != want) {
      return Status::InvalidArgument(
          "parameter ?" + std::to_string(i + 1) + " expects " +
          ColumnTypeName(want) + ", got " +
          ColumnTypeName(params[i].type()));
    }
    (*bound.param_slots)[i] = std::move(params[i]);
  }
  return Status::OK();
}

}  // namespace

Result<std::string> ExplainBound(Engine* engine,
                                 const sql::BoundStatement& bound);

struct PreparedStatement::Impl {
  Session session;
  sql::BoundStatement bound;
  std::string sql;
  /// Front-end spans measured once by Prepare, copied into every
  /// execution's profile (a prepared statement parses/binds once; a
  /// one-shot Session::Sql pays them per call).
  double parse_ms = 0.0;
  double bind_ms = 0.0;
};

Result<PreparedStatement> Session::Prepare(std::string_view sql) {
  const Engine::MetricSet& m = engine_->m_;
  WallTimer parse_timer;
  Result<sql::Statement> parsed = sql::ParseStatement(sql);
  if (!parsed.ok()) return parsed.status();
  const std::int64_t parse_ns = parse_timer.ElapsedNanos();
  WallTimer bind_timer;
  Result<sql::BoundStatement> bound =
      sql::BindStatement(parsed.value(), engine_->catalog());
  if (!bound.ok()) return bound.status();
  const std::int64_t bind_ns = bind_timer.ElapsedNanos();
  if (m.phase_parse_us != nullptr) {
    m.phase_parse_us->RecordNanos(parse_ns);
    m.phase_bind_us->RecordNanos(bind_ns);
  }
  auto impl = std::make_shared<PreparedStatement::Impl>(
      PreparedStatement::Impl{*this, std::move(bound).value(),
                              std::string(sql)});
  impl->parse_ms = static_cast<double>(parse_ns) / 1e6;
  impl->bind_ms = static_cast<double>(bind_ns) / 1e6;
  return PreparedStatement(std::move(impl));
}

Result<QueryResult> Session::Sql(std::string_view sql,
                                 std::vector<Value> params) {
  Result<PreparedStatement> prepared = Prepare(sql);
  if (!prepared.ok()) return prepared.status();
  return prepared.value().Execute(std::move(params));
}

std::size_t PreparedStatement::num_params() const {
  return impl_->bound.param_slots->size();
}

const std::string& PreparedStatement::sql() const { return impl_->sql; }

Result<QueryResult> PreparedStatement::Execute(std::vector<Value> params) {
  const sql::BoundStatement& bound = impl_->bound;
  PIDX_RETURN_NOT_OK(BindParams(bound, std::move(params)));
  Session& session = impl_->session;
  const Engine::MetricSet& m = session.engine_->m_;

  // Plain EXPLAIN renders the would-be plan without executing; ANALYZE
  // (below) executes with operator profiling and renders measurements.
  if (bound.explain && !bound.analyze) {
    Result<std::string> text = ExplainBound(session.engine_, bound);
    if (!text.ok()) return text.status();
    return TextResult("plan", SplitLines(text.value()));
  }

  // One QueryProfile per execution: phase spans always (when metrics are
  // on), per-operator measurements only for EXPLAIN ANALYZE.
  std::shared_ptr<obs::QueryProfile> profile;
  if (m.sql_statements != nullptr || bound.analyze) {
    profile = std::make_shared<obs::QueryProfile>();
    profile->parse_ms = impl_->parse_ms;
    profile->bind_ms = impl_->bind_ms;
  }

  // Register with the flight recorder: the statement is visible in
  // pi_stats.active_queries from here until Complete retires it into
  // pi_stats.queries. Parse/bind already happened (possibly amortized by
  // Prepare), so the first observable phase is execute; DML advances to
  // commit inside ExecuteUpdateWithProfiled.
  Engine* engine = session.engine_;
  obs::FlightRecorder::Handle active = engine->recorder().Begin(
      session.session_id(), session.connection_id(), impl_->sql);
  obs::FlightRecorder::SetPhase(active, obs::QueryPhase::kExecute);

  // Per-statement memory tracker, parented under the engine's node: every
  // charge point the statement reaches (join builds, sort buffers,
  // aggregate tables, result materialization, DML deltas, WAL frames)
  // accounts against it through the thread-local install, and the flight
  // recorder samples its live balance for pi_stats.active_queries. An
  // over-budget charge throws; the engine layer converts it to
  // kResourceExhausted and the statement unwinds cleanly.
  auto query_mem = std::make_shared<obs::MemoryTracker>(
      "query#" + std::to_string(active->query_id), &engine->memory(),
      engine->options().query_memory_limit);
  obs::ScopedQueryTracker query_mem_scope(query_mem.get());
  obs::FlightRecorder::SetMemory(active, query_mem);

  if (engine->options().sql_exec_hook) {
    engine->options().sql_exec_hook(impl_->sql);
  }

  // Span capture when the trace sampler selects this statement. The
  // buffer's clock starts now; parse/bind are re-created as synthetic
  // leading spans from the prepared statement's measurements.
  const auto parse_us = static_cast<std::uint64_t>(
      std::max(0.0, impl_->parse_ms) * 1000.0);
  const auto bind_us = static_cast<std::uint64_t>(
      std::max(0.0, impl_->bind_ms) * 1000.0);
  std::shared_ptr<obs::TraceBuffer> trace;
  if (engine->SampleTrace()) {
    trace = std::make_shared<obs::TraceBuffer>(parse_us + bind_us);
    trace->Add("parse", 0, 0, parse_us);
    trace->Add("bind", 0, parse_us, bind_us);
  }

  WallTimer total_timer;
  std::int64_t commit_csn = -1;

  Result<QueryResult> executed = [&]() -> Result<QueryResult> {
  switch (bound.kind) {
    case sql::Statement::Kind::kSelect: {
      // The rewriter transforms plans in place, so each run optimizes a
      // fresh clone of the cached bound plan. pi_stats scans in the clone
      // are re-pointed at tables materialized from live engine state.
      LogicalPtr plan = ClonePlan(bound.plan);
      std::vector<std::unique_ptr<Table>> system_tables;
      PIDX_RETURN_NOT_OK(
          MaterializeSystemScans(plan.get(), engine, &system_tables));
      Result<QueryResult> result = session.ExecuteProfiled(
          std::move(plan), session.engine_->options().optimizer,
          profile.get(), /*profile_ops=*/bound.analyze, active, trace.get());
      if (!result.ok()) return result.status();
      QueryResult out = std::move(result).value();
      out.column_names = bound.column_names;
      // A COUNT-only global aggregate over an empty input still returns
      // its one mandatory row (of zeros); see BoundStatement.
      if (bound.global_count_only && out.rows.num_rows() == 0) {
        if (out.rows.columns.empty()) {
          out.rows.Reset(std::vector<ColumnType>(bound.column_names.size(),
                                                 ColumnType::kInt64));
        }
        for (ColumnVector& c : out.rows.columns) {
          c.AppendValue(Value(std::int64_t{0}));
        }
        out.rows.row_ids.push_back(0);
      }
      if (bound.has_post_limit) TruncateBatch(&out.rows, bound.post_limit);
      return out;
    }
    case sql::Statement::Kind::kInsert: {
      std::vector<Row> rows;
      for (const std::vector<ExprPtr>& row : bound.insert_rows) {
        Row r;
        for (const ExprPtr& cell : row) r.cells.push_back(EvalScalar(*cell));
        rows.push_back(std::move(r));
      }
      QueryResult out;
      out.rows_affected = rows.size();
      PIDX_RETURN_NOT_OK(session.ExecuteUpdateWithProfiled(
          bound.table,
          [&rows](const PartitionedTable&) -> Result<UpdateQuery> {
            return UpdateQuery::Insert(std::move(rows));
          },
          profile.get(), active, trace.get(), &commit_csn));
      return out;
    }
    case sql::Statement::Kind::kUpdate: {
      QueryResult out;
      PIDX_RETURN_NOT_OK(session.ExecuteUpdateWithProfiled(
          bound.table,
          [&](const PartitionedTable& table) -> Result<UpdateQuery> {
            Batch matches = MatchingRows(table, bound);
            std::vector<CellUpdate> cells;
            for (const auto& [col, expr] : bound.set_exprs) {
              ColumnVector values = expr->Eval(matches);
              for (std::size_t r = 0; r < matches.num_rows(); ++r) {
                cells.push_back(
                    {matches.row_ids[r], col, values.GetValue(r)});
              }
            }
            out.rows_affected = matches.num_rows();
            return UpdateQuery::Modify(std::move(cells));
          },
          profile.get(), active, trace.get(), &commit_csn));
      return out;
    }
    case sql::Statement::Kind::kDelete: {
      QueryResult out;
      PIDX_RETURN_NOT_OK(session.ExecuteUpdateWithProfiled(
          bound.table,
          [&](const PartitionedTable& table) -> Result<UpdateQuery> {
            Batch matches = MatchingRows(table, bound);
            out.rows_affected = matches.num_rows();
            return UpdateQuery::Delete(std::move(matches.row_ids));
          },
          profile.get(), active, trace.get(), &commit_csn));
      return out;
    }
    case sql::Statement::Kind::kCreateTable: {
      // No PARTITIONS clause -> the engine's session default.
      std::size_t partitions = bound.create_partitions;
      if (partitions == 0) {
        partitions =
            std::max<std::size_t>(1,
                                  session.engine_->options()
                                      .default_table_partitions);
      }
      Result<PartitionedTable*> created =
          session.engine_->catalog().CreatePartitionedTable(
              bound.table, bound.create_schema, partitions);
      if (!created.ok()) return created.status();
      if (DurabilityManager* durability = session.engine_->durability()) {
        Status logged = durability->LogCreateTable(
            bound.table, bound.create_schema, partitions);
        if (!logged.ok()) {
          // Un-create: a table missing from the catalog log would not
          // survive a restart, so refuse to pretend it was created.
          (void)session.engine_->catalog().DropTable(bound.table);
          return logged;
        }
      }
      return QueryResult{};
    }
  }
  return Status::Internal("unhandled statement kind");
  }();

  const std::int64_t total_ns = total_timer.ElapsedNanos();

  // Retire the statement into the completed ring — errors included, so
  // pi_stats.queries shows failures with their status code and message.
  obs::QueryRecord rec;
  rec.parse_ms = impl_->parse_ms;
  rec.bind_ms = impl_->bind_ms;
  rec.total_ms = impl_->parse_ms + impl_->bind_ms +
                 static_cast<double>(total_ns) / 1e6;
  // One peak read feeds both surfaces, so pi_stats.queries and EXPLAIN
  // ANALYZE's peak_mem= agree byte-for-byte.
  rec.peak_mem_bytes = query_mem->peak();
  if (profile != nullptr) {
    rec.optimize_ms = profile->optimize_ms;
    rec.execute_ms = profile->execute_ms;
    rec.commit_wait_ms = profile->commit_wait_ms;
    rec.commit_ms = profile->commit_ms;
    profile->peak_mem_bytes = rec.peak_mem_bytes;
  }
  if (!executed.ok()) {
    rec.status = Status::CodeName(executed.status().code());
    rec.error = executed.status().message();
    engine->recorder().Complete(active, std::move(rec));
    return executed.status();
  }
  QueryResult out = std::move(executed).value();
  rec.rows_returned = out.rows.num_rows();
  rec.rows_affected = out.rows_affected;
  rec.parallel = out.parallel;
  rec.csn = commit_csn;
  engine->recorder().Complete(active, std::move(rec));

  if (trace != nullptr) {
    // One enclosing span covering the whole statement (synthetic
    // parse/bind included) so viewers get a root and the checker a
    // total to compare phase spans against.
    trace->Add("query", 0, 0,
               parse_us + bind_us +
                   static_cast<std::uint64_t>(total_ns / 1000));
    engine->StoreLastTrace(obs::RenderChromeTrace(trace->Events()));
    out.trace = trace;
  }

  if (m.sql_statements != nullptr) {
    m.sql_statements->Add(1);
    m.query_latency_us->RecordNanos(total_ns);
  }
  if (profile != nullptr) {
    // Total = this execution plus the statement's (possibly amortized)
    // parse/bind spans, so the breakdown sums to the total.
    profile->total_ms = profile->parse_ms + profile->bind_ms +
                        static_cast<double>(total_ns) / 1e6;
    out.profile = profile;
  }
  if (bound.analyze) {
    QueryResult analyzed = TextResult("plan", profile->RenderLines());
    analyzed.profile = profile;
    return analyzed;
  }
  return out;
}

/// The EXPLAIN rendering of a bound statement — shared by
/// Session::Explain and the SQL `EXPLAIN <stmt>` prefix so both produce
/// byte-identical plans.
Result<std::string> ExplainBound(Engine* engine,
                                 const sql::BoundStatement& bound) {
  switch (bound.kind) {
    case sql::Statement::Kind::kSelect: {
      // Pin the scanned tables like Execute does (MVCC snapshot or
      // shared-lock fallback): the rewriter and the row-count
      // annotations read table state, so the plan is explained against
      // the same snapshot a real execution would scan.
      LogicalPtr plan = ClonePlan(bound.plan);
      PinnedReadSet pin(engine->catalog(),
                        engine->options().mvcc_snapshot_reads, &plan);
      LogicalPtr optimized = OptimizePlan(std::move(plan), pin.indexes(),
                                          engine->options().optimizer);
      std::string out = ExplainPlan(optimized);
      if (bound.has_post_limit) {
        out = "Limit(" + std::to_string(bound.post_limit) + ")\n" +
              Indent(out);
      }
      return out;
    }
    case sql::Statement::Kind::kInsert:
      return "Insert(table='" + bound.table + "', rows=" +
             std::to_string(bound.insert_rows.size()) + ")\n";
    case sql::Statement::Kind::kUpdate:
    case sql::Statement::Kind::kDelete: {
      // Shared-lock the target: the rendered row-matching plan reads
      // table state (row counts), like the SELECT branch above.
      Catalog::TableRef ref = engine->catalog().Ref(bound.table);
      if (!ref) {
        return Status::NotFound("table '" + bound.table + "' was dropped");
      }
      std::shared_lock<std::shared_mutex> guard(*ref.lock);
      const PartitionedTable* table = ref.ptable;
      std::string head;
      if (bound.kind == sql::Statement::Kind::kUpdate) {
        head = "Update(table='" + bound.table + "', set=[";
        for (std::size_t i = 0; i < bound.set_exprs.size(); ++i) {
          if (i > 0) head += ", ";
          head += "#" + std::to_string(bound.set_exprs[i].first) + " := " +
                  bound.set_exprs[i].second->ToString();
        }
        head += "])\n";
      } else {
        head = "Delete(table='" + bound.table + "')\n";
      }
      return head + Indent(ExplainPlan(MatchingRowsPlan(*table, bound)));
    }
    case sql::Statement::Kind::kCreateTable:
      return "CreateTable(table='" + bound.table + "', cols=" +
             std::to_string(bound.create_schema.num_fields()) +
             ", partitions=" +
             (bound.create_partitions == 0
                  ? "default"
                  : std::to_string(bound.create_partitions)) +
             ")\n";
  }
  return Status::Internal("unhandled statement kind");
}

Result<std::string> Session::Explain(std::string_view sql) {
  Result<sql::Statement> parsed = sql::ParseStatement(sql);
  if (!parsed.ok()) return parsed.status();
  Result<sql::BoundStatement> bound =
      sql::BindStatement(parsed.value(), engine_->catalog());
  if (!bound.ok()) return bound.status();
  return ExplainBound(engine_, bound.value());
}

}  // namespace patchindex
