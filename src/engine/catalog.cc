#include "engine/catalog.h"

#include <utility>

namespace patchindex {

Result<Table*> Catalog::CreateTable(const std::string& name, Schema schema) {
  return AddTable(name, std::make_unique<Table>(std::move(schema)));
}

Result<Table*> Catalog::AddTable(const std::string& name,
                                 std::unique_ptr<Table> table) {
  std::lock_guard<std::mutex> lock(mu_);
  if (tables_.count(name) != 0) {
    return Status::AlreadyExists("table '" + name + "' already exists");
  }
  auto entry = std::make_shared<Entry>();
  entry->table = std::move(table);
  Table* handle = entry->table.get();
  tables_.emplace(name, std::move(entry));
  return handle;
}

Table* Catalog::FindTable(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second->table.get();
}

const Table* Catalog::FindTable(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second->table.get();
}

Status Catalog::DropTable(const std::string& name) {
  std::shared_ptr<Entry> removed;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = tables_.find(name);
    if (it == tables_.end()) {
      return Status::NotFound("table '" + name + "' does not exist");
    }
    removed = std::move(it->second);
    tables_.erase(it);
  }
  // New lookups now fail; sessions holding a TableRef keep the entry
  // alive. Dropping the indexes under the exclusive lock serializes
  // against in-flight queries (which hold the shared lock while they
  // consult the indexes); the table itself is freed when the last
  // TableRef releases.
  {
    std::unique_lock<std::shared_mutex> exclusive(removed->lock);
    manager_.DropIndexesOn(*removed->table);
  }
  return Status::OK();
}

std::vector<std::string> Catalog::TableNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, entry] : tables_) names.push_back(name);
  return names;
}

Catalog::TableRef Catalog::Ref(const Table& table) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, entry] : tables_) {
    if (entry->table.get() == &table) {
      return {entry->table.get(), &entry->lock, entry};
    }
  }
  return {};
}

Catalog::TableRef Catalog::Ref(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tables_.find(name);
  if (it == tables_.end()) return {};
  return {it->second->table.get(), &it->second->lock, it->second};
}

}  // namespace patchindex
