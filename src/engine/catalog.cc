#include "engine/catalog.h"

#include <utility>

namespace patchindex {

Result<Table*> Catalog::CreateTable(const std::string& name, Schema schema) {
  Result<PartitionedTable*> created =
      CreatePartitionedTable(name, std::move(schema), 1);
  if (!created.ok()) return created.status();
  return &created.value()->partition(0);
}

Result<PartitionedTable*> Catalog::CreatePartitionedTable(
    const std::string& name, Schema schema, std::size_t num_partitions) {
  if (num_partitions == 0) {
    return Status::InvalidArgument("a table needs at least one partition");
  }
  if (num_partitions > kMaxPartitions) {
    // Partitions are eagerly allocated; an unchecked count from SQL
    // (`PARTITIONS 4000000000`) must fail as a status, not as bad_alloc.
    return Status::InvalidArgument(
        "partition count " + std::to_string(num_partitions) +
        " exceeds the maximum of " + std::to_string(kMaxPartitions));
  }
  return AddPartitionedTable(
      name, std::make_unique<PartitionedTable>(std::move(schema),
                                               num_partitions));
}

Result<Table*> Catalog::AddTable(const std::string& name,
                                 std::unique_ptr<Table> table) {
  Schema schema = table->schema();
  std::vector<std::unique_ptr<Table>> parts;
  parts.push_back(std::move(table));
  Result<PartitionedTable*> added = AddPartitionedTable(
      name, std::make_unique<PartitionedTable>(std::move(schema),
                                               std::move(parts)));
  if (!added.ok()) return added.status();
  return &added.value()->partition(0);
}

Result<PartitionedTable*> Catalog::AddPartitionedTable(
    const std::string& name, std::unique_ptr<PartitionedTable> table) {
  std::lock_guard<std::mutex> lock(mu_);
  if (tables_.count(name) != 0) {
    return Status::AlreadyExists("table '" + name + "' already exists");
  }
  auto entry = std::make_shared<Entry>();
  entry->table = std::move(table);
  PartitionedTable* handle = entry->table.get();
  // Publish the first version before the entry becomes visible, so every
  // reader that can resolve the table finds a pinnable version. No lock
  // needed: nothing else can reach the entry yet.
  PublishLocked(*entry, /*csn=*/0, /*reindex=*/true);
  tables_.emplace(name, std::move(entry));
  return handle;
}

Table* Catalog::FindTable(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tables_.find(name);
  if (it == tables_.end() || it->second->table->num_partitions() != 1) {
    return nullptr;
  }
  return &it->second->table->partition(0);
}

const Table* Catalog::FindTable(const std::string& name) const {
  return const_cast<Catalog*>(this)->FindTable(name);
}

PartitionedTable* Catalog::FindPartitionedTable(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second->table.get();
}

const PartitionedTable* Catalog::FindPartitionedTable(
    const std::string& name) const {
  return const_cast<Catalog*>(this)->FindPartitionedTable(name);
}

Status Catalog::DropTable(const std::string& name) {
  std::shared_ptr<Entry> removed;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = tables_.find(name);
    if (it == tables_.end()) {
      return Status::NotFound("table '" + name + "' does not exist");
    }
    removed = std::move(it->second);
    tables_.erase(it);
  }
  // New lookups now fail; sessions holding a TableRef keep the entry
  // alive. Dropping the indexes under the exclusive lock serializes
  // against in-flight locked queries (which hold the shared lock while
  // they consult the indexes); the table itself is freed when the last
  // TableRef releases. Pinned MVCC readers are unaffected: the retired
  // version (and the index snapshots it owns) stays alive until their
  // epoch guards release.
  {
    std::unique_lock<std::shared_mutex> exclusive(removed->lock);
    manager_.DropIndexesOn(*removed->table);
    const TableVersion* old =
        removed->version.exchange(nullptr, std::memory_order_seq_cst);
    RetireVersion(removed->tracker, old);
  }
  return Status::OK();
}

std::vector<std::string> Catalog::TableNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, entry] : tables_) names.push_back(name);
  return names;
}

Catalog::TableRef Catalog::MakeRef(const std::shared_ptr<Entry>& entry) const {
  TableRef ref;
  ref.ptable = entry->table.get();
  ref.table = entry->table->num_partitions() == 1
                  ? &entry->table->partition(0)
                  : nullptr;
  ref.lock = &entry->lock;
  ref.owner = entry;
  return ref;
}

Catalog::TableRef Catalog::Ref(const Table& table) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, entry] : tables_) {
    for (std::size_t p = 0; p < entry->table->num_partitions(); ++p) {
      if (&entry->table->partition(p) == &table) return MakeRef(entry);
    }
  }
  return {};
}

Catalog::TableRef Catalog::Ref(const PartitionedTable& table) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, entry] : tables_) {
    if (entry->table.get() == &table) return MakeRef(entry);
  }
  return {};
}

Catalog::TableRef Catalog::Ref(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tables_.find(name);
  if (it == tables_.end()) return {};
  return MakeRef(it->second);
}

Catalog::Entry& Catalog::EntryOf(const TableRef& ref) {
  return *std::static_pointer_cast<Entry>(ref.owner);
}

void Catalog::PublishVersion(const TableRef& ref, std::uint64_t csn,
                             bool reindex) {
  PublishLocked(EntryOf(ref), csn, reindex);
}

void Catalog::PublishLocked(Entry& entry, std::uint64_t csn, bool reindex) {
  const PartitionedTable& head = *entry.table;
  // Stable under the exclusive lock: only publication (under the same
  // lock) replaces the pointer.
  const TableVersion* prev = entry.version.load(std::memory_order_acquire);
  auto next = std::make_unique<TableVersion>();
  next->version_id = entry.next_version_id++;
  next->csn = csn != 0 ? csn : next->version_id;
  next->partition_seqs.resize(head.num_partitions());
  std::vector<std::shared_ptr<Table>> parts(head.num_partitions());
  for (std::size_t p = 0; p < head.num_partitions(); ++p) {
    const std::uint64_t seq = head.partition(p).mutation_seq();
    next->partition_seqs[p] = seq;
    const bool reuse = !reindex && prev != nullptr &&
                       p < prev->partition_seqs.size() &&
                       prev->partition_seqs[p] == seq;
    if (reuse) {
      // Untouched partition: the previous snapshot (and the index clones
      // bound to it) is still exactly the committed state — carry both
      // over so a single-row UPDATE only ever clones one partition.
      parts[p] = prev->snapshot->partition_ptr(p);
      for (const auto& idx : prev->indexes) {
        if (&idx->table() == parts[p].get()) next->indexes.push_back(idx);
      }
    } else {
      parts[p] = std::shared_ptr<Table>(head.partition(p).CloneShared());
      for (const auto& idx : manager_.SharedIndexesOn(head.partition(p))) {
        next->indexes.emplace_back(idx->CloneForSnapshot(*parts[p]));
      }
    }
  }
  next->snapshot =
      std::make_shared<PartitionedTable>(head.schema(), std::move(parts));
  {
    std::lock_guard<std::mutex> lock(entry.tracker->mu);
    entry.tracker->live_csns.insert(next->csn);
  }
  const TableVersion* old = entry.version.exchange(
      next.release(), std::memory_order_seq_cst);
  RetireVersion(entry.tracker, old);
}

void Catalog::RetireVersion(std::shared_ptr<VersionTracker> tracker,
                            const TableVersion* version) {
  if (version == nullptr) return;
  // The deleter captures only what it needs — it may run long after the
  // catalog (or the whole engine) is destroyed.
  EpochGc::Global().Retire([tracker = std::move(tracker), version] {
    {
      std::lock_guard<std::mutex> lock(tracker->mu);
      tracker->live_csns.erase(tracker->live_csns.find(version->csn));
    }
    delete version;
  });
}

const TableVersion* Catalog::PinnedVersion(const TableRef& ref) const {
  return EntryOf(ref).version.load(std::memory_order_seq_cst);
}

bool Catalog::VersionMatchesHead(const TableVersion& version,
                                 const PartitionedTable& head) {
  if (version.partition_seqs.size() != head.num_partitions()) return false;
  for (std::size_t p = 0; p < head.num_partitions(); ++p) {
    if (version.partition_seqs[p] != head.partition(p).mutation_seq()) {
      return false;
    }
  }
  return true;
}

Catalog::VersionStats Catalog::VersionStatsFor(const TableRef& ref) const {
  Entry& entry = EntryOf(ref);
  VersionStats stats;
  {
    std::lock_guard<std::mutex> lock(entry.tracker->mu);
    stats.live = static_cast<std::int64_t>(entry.tracker->live_csns.size());
    if (!entry.tracker->live_csns.empty()) {
      stats.oldest_live_csn = *entry.tracker->live_csns.begin();
    }
  }
  {
    // Pin while reading the current version's CSN.
    EpochGc::Guard guard(EpochGc::Global());
    const TableVersion* current =
        entry.version.load(std::memory_order_seq_cst);
    if (current != nullptr) stats.current_csn = current->csn;
  }
  return stats;
}

std::int64_t Catalog::TotalLiveVersions() const {
  std::vector<std::shared_ptr<Entry>> entries;
  {
    std::lock_guard<std::mutex> lock(mu_);
    entries.reserve(tables_.size());
    for (const auto& [name, entry] : tables_) entries.push_back(entry);
  }
  std::int64_t total = 0;
  for (const auto& entry : entries) {
    std::lock_guard<std::mutex> lock(entry->tracker->mu);
    total += static_cast<std::int64_t>(entry->tracker->live_csns.size());
  }
  return total;
}

Catalog::~Catalog() {
  // Retire every still-published version so its memory is reclaimed once
  // outstanding pins drain; the deleters are self-contained and safe to
  // run after this catalog is gone.
  for (auto& [name, entry] : tables_) {
    const TableVersion* old =
        entry->version.exchange(nullptr, std::memory_order_seq_cst);
    RetireVersion(entry->tracker, old);
  }
  EpochGc::Global().TryReclaim();
}

}  // namespace patchindex
