#include "engine/catalog.h"

#include <utility>

namespace patchindex {

Result<Table*> Catalog::CreateTable(const std::string& name, Schema schema) {
  Result<PartitionedTable*> created =
      CreatePartitionedTable(name, std::move(schema), 1);
  if (!created.ok()) return created.status();
  return &created.value()->partition(0);
}

Result<PartitionedTable*> Catalog::CreatePartitionedTable(
    const std::string& name, Schema schema, std::size_t num_partitions) {
  if (num_partitions == 0) {
    return Status::InvalidArgument("a table needs at least one partition");
  }
  if (num_partitions > kMaxPartitions) {
    // Partitions are eagerly allocated; an unchecked count from SQL
    // (`PARTITIONS 4000000000`) must fail as a status, not as bad_alloc.
    return Status::InvalidArgument(
        "partition count " + std::to_string(num_partitions) +
        " exceeds the maximum of " + std::to_string(kMaxPartitions));
  }
  return AddPartitionedTable(
      name, std::make_unique<PartitionedTable>(std::move(schema),
                                               num_partitions));
}

Result<Table*> Catalog::AddTable(const std::string& name,
                                 std::unique_ptr<Table> table) {
  Schema schema = table->schema();
  std::vector<std::unique_ptr<Table>> parts;
  parts.push_back(std::move(table));
  Result<PartitionedTable*> added = AddPartitionedTable(
      name, std::make_unique<PartitionedTable>(std::move(schema),
                                               std::move(parts)));
  if (!added.ok()) return added.status();
  return &added.value()->partition(0);
}

Result<PartitionedTable*> Catalog::AddPartitionedTable(
    const std::string& name, std::unique_ptr<PartitionedTable> table) {
  std::lock_guard<std::mutex> lock(mu_);
  if (tables_.count(name) != 0) {
    return Status::AlreadyExists("table '" + name + "' already exists");
  }
  auto entry = std::make_shared<Entry>();
  entry->table = std::move(table);
  PartitionedTable* handle = entry->table.get();
  tables_.emplace(name, std::move(entry));
  return handle;
}

Table* Catalog::FindTable(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tables_.find(name);
  if (it == tables_.end() || it->second->table->num_partitions() != 1) {
    return nullptr;
  }
  return &it->second->table->partition(0);
}

const Table* Catalog::FindTable(const std::string& name) const {
  return const_cast<Catalog*>(this)->FindTable(name);
}

PartitionedTable* Catalog::FindPartitionedTable(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second->table.get();
}

const PartitionedTable* Catalog::FindPartitionedTable(
    const std::string& name) const {
  return const_cast<Catalog*>(this)->FindPartitionedTable(name);
}

Status Catalog::DropTable(const std::string& name) {
  std::shared_ptr<Entry> removed;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = tables_.find(name);
    if (it == tables_.end()) {
      return Status::NotFound("table '" + name + "' does not exist");
    }
    removed = std::move(it->second);
    tables_.erase(it);
  }
  // New lookups now fail; sessions holding a TableRef keep the entry
  // alive. Dropping the indexes under the exclusive lock serializes
  // against in-flight queries (which hold the shared lock while they
  // consult the indexes); the table itself is freed when the last
  // TableRef releases.
  {
    std::unique_lock<std::shared_mutex> exclusive(removed->lock);
    manager_.DropIndexesOn(*removed->table);
  }
  return Status::OK();
}

std::vector<std::string> Catalog::TableNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, entry] : tables_) names.push_back(name);
  return names;
}

Catalog::TableRef Catalog::MakeRef(const std::shared_ptr<Entry>& entry) const {
  TableRef ref;
  ref.ptable = entry->table.get();
  ref.table = entry->table->num_partitions() == 1
                  ? &entry->table->partition(0)
                  : nullptr;
  ref.lock = &entry->lock;
  ref.owner = entry;
  return ref;
}

Catalog::TableRef Catalog::Ref(const Table& table) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, entry] : tables_) {
    for (std::size_t p = 0; p < entry->table->num_partitions(); ++p) {
      if (&entry->table->partition(p) == &table) return MakeRef(entry);
    }
  }
  return {};
}

Catalog::TableRef Catalog::Ref(const PartitionedTable& table) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, entry] : tables_) {
    if (entry->table.get() == &table) return MakeRef(entry);
  }
  return {};
}

Catalog::TableRef Catalog::Ref(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tables_.find(name);
  if (it == tables_.end()) return {};
  return MakeRef(it->second);
}

}  // namespace patchindex
