#ifndef PATCHINDEX_COMMON_RNG_H_
#define PATCHINDEX_COMMON_RNG_H_

#include <cstdint>
#include <random>

namespace patchindex {

/// Deterministic random number generator for workload generation and tests.
/// All generated datasets are reproducible from a fixed seed, mirroring the
/// paper's "datasets are generated once" comparability argument (§6.2).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 42) : engine_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive).
  std::uint64_t Uniform(std::uint64_t lo, std::uint64_t hi) {
    return std::uniform_int_distribution<std::uint64_t>(lo, hi)(engine_);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Bernoulli draw with probability p.
  bool NextBool(double p) { return NextDouble() < p; }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace patchindex

#endif  // PATCHINDEX_COMMON_RNG_H_
