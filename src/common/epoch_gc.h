#ifndef PATCHINDEX_COMMON_EPOCH_GC_H_
#define PATCHINDEX_COMMON_EPOCH_GC_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

namespace patchindex {

/// Epoch-based deferred reclamation for read-mostly shared state.
///
/// Readers wrap each read-side critical section in a Guard: the guard
/// claims one of a fixed pool of pinned-epoch slots, stamps it with the
/// current global epoch, and releases it on destruction. Writers that
/// unlink an object from shared structures hand its destructor to
/// Retire(); the deleter runs only once every slot pinned at (or before)
/// the retirement epoch has been released — i.e. once no reader that
/// could still hold a pointer to the object remains inside its critical
/// section.
///
/// Ordering contract (all slot and epoch accesses are seq_cst, so a
/// single total order S over them exists):
///   - A reader pins FIRST (slot.store), then loads the shared pointer.
///   - A writer unlinks FIRST (atomic swap of the shared pointer), then
///     calls Retire(), which advances the epoch and scans the slots.
/// If the reader's pin precedes the writer's slot scan in S, the scan
/// observes the pin and the retired entry (whose epoch is strictly newer
/// than the pinned stamp) is withheld. If the scan precedes the pin,
/// then the reader's later pointer load follows the writer's earlier
/// unlink in S and observes the replacement — it can never obtain the
/// retired object. Either way nothing is freed while reachable.
///
/// Slots, not thread-locals: a fixed array of kSlots cache-line-padded
/// atomics, claimed per-Guard by CAS. This keeps the structure safe
/// across thread churn (server connection threads come and go) and
/// across multiple short-lived Engine instances in one process, at the
/// cost of a short scan per pin.
class EpochGc {
 public:
  /// Upper bound on concurrently pinned guards; far above any realistic
  /// reader count (threads are bounded by kMaxThreadsEnv plus a handful
  /// of server threads). Claiming spins if all slots are taken.
  static constexpr std::size_t kSlots = 1024;

  /// Slot value meaning "unclaimed".
  static constexpr std::uint64_t kIdle = ~std::uint64_t{0};

  EpochGc() = default;
  ~EpochGc();

  EpochGc(const EpochGc&) = delete;
  EpochGc& operator=(const EpochGc&) = delete;

  /// RAII pin: claims a slot stamped with the current epoch for its
  /// lifetime. Destruction releases the slot and opportunistically
  /// reclaims newly-safe retirements.
  class Guard {
   public:
    explicit Guard(EpochGc& gc);
    ~Guard();

    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

    /// The epoch this guard pinned at.
    std::uint64_t epoch() const { return epoch_; }

   private:
    EpochGc* gc_;
    std::size_t slot_;
    std::uint64_t epoch_;
  };

  /// Defers `deleter` until every guard pinned at retirement time has
  /// been released. The caller must already have unlinked the object
  /// from all shared structures (see the ordering contract above).
  /// Deleters run on whichever thread triggers reclamation — they must
  /// not acquire locks held across Retire()/Guard destruction.
  void Retire(std::function<void()> deleter);

  /// Runs every deferred deleter whose retirement epoch is older than
  /// the oldest currently-pinned guard. Returns the number reclaimed.
  /// Safe to call concurrently; deleters run outside the internal lock.
  std::size_t TryReclaim();

  /// Best-effort drain for shutdown paths: repeatedly reclaims while
  /// progress is made. Entries stuck behind a still-pinned guard remain
  /// deferred (they are reclaimed later, or leak at process exit — never
  /// double-freed).
  void ReclaimAll();

  struct Stats {
    std::uint64_t epoch = 0;            ///< Current global epoch.
    std::uint64_t pinned = 0;           ///< Guards currently pinned.
    std::uint64_t oldest_pinned = 0;    ///< Oldest pinned stamp (kIdle if none).
    std::uint64_t retired_pending = 0;  ///< Deleters still deferred.
    std::uint64_t reclaimed_total = 0;  ///< Deleters run since construction.
  };
  Stats GetStats() const;

  /// Process-wide instance shared by table-version scans, the flight
  /// recorder's active-query registry, and server connection teardown.
  /// Never destroyed (intentionally leaked) so deleters retired during
  /// static teardown cannot touch a dead instance.
  static EpochGc& Global();

 private:
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> epoch{kIdle};
  };

  struct Retired {
    std::uint64_t epoch;
    std::function<void()> deleter;
  };

  /// Oldest epoch stamped into any claimed slot; kIdle when none are.
  std::uint64_t MinPinned() const;

  Slot slots_[kSlots];
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<std::uint64_t> reclaimed_total_{0};

  mutable std::mutex mu_;
  std::vector<Retired> retired_;  // guarded by mu_
};

}  // namespace patchindex

#endif  // PATCHINDEX_COMMON_EPOCH_GC_H_
