#include "common/epoch_gc.h"

#include <thread>
#include <utility>

namespace patchindex {

EpochGc::~EpochGc() { ReclaimAll(); }

EpochGc::Guard::Guard(EpochGc& gc) : gc_(&gc) {
  // Spread claim attempts across the slot array so concurrent pins do
  // not all hammer slot 0.
  const std::size_t start =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) % kSlots;
  for (std::size_t attempt = 0;; ++attempt) {
    const std::size_t i = (start + attempt) % kSlots;
    // Stamp before the CAS: once the slot flips away from kIdle it must
    // already carry a valid epoch, never a placeholder.
    epoch_ = gc_->epoch_.load(std::memory_order_seq_cst);
    std::uint64_t expected = kIdle;
    if (gc_->slots_[i].epoch.compare_exchange_strong(
            expected, epoch_, std::memory_order_seq_cst)) {
      slot_ = i;
      return;
    }
    if (attempt != 0 && attempt % kSlots == 0) std::this_thread::yield();
  }
}

EpochGc::Guard::~Guard() {
  gc_->slots_[slot_].epoch.store(kIdle, std::memory_order_seq_cst);
  // The departing reader may have been the one holding back reclamation.
  gc_->TryReclaim();
}

void EpochGc::Retire(std::function<void()> deleter) {
  const std::uint64_t e =
      epoch_.fetch_add(1, std::memory_order_seq_cst) + 1;
  {
    std::lock_guard<std::mutex> lock(mu_);
    retired_.push_back(Retired{e, std::move(deleter)});
  }
  TryReclaim();
}

std::uint64_t EpochGc::MinPinned() const {
  std::uint64_t min = kIdle;
  for (const Slot& s : slots_) {
    const std::uint64_t e = s.epoch.load(std::memory_order_seq_cst);
    if (e < min) min = e;
  }
  return min;
}

std::size_t EpochGc::TryReclaim() {
  // Snapshot the horizon BEFORE splicing: a pin that lands after this
  // scan cannot have observed any pointer retired before it (see the
  // ordering contract in the header), so using a possibly-stale horizon
  // is safe — merely conservative.
  const std::uint64_t horizon = MinPinned();
  std::vector<Retired> ready;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto keep = retired_.begin();
    for (auto it = retired_.begin(); it != retired_.end(); ++it) {
      // `<=`: a guard stamped exactly at the retirement epoch pinned
      // after the retire's epoch bump — which follows the writer's
      // unlink — so its pointer load saw the replacement, never this
      // object. Only stamps strictly below the retirement epoch can
      // still hold it.
      if (it->epoch <= horizon) {
        ready.push_back(std::move(*it));
      } else {
        if (keep != it) *keep = std::move(*it);
        ++keep;
      }
    }
    retired_.erase(keep, retired_.end());
  }
  // Deleters run outside mu_: they may Retire() further objects.
  for (Retired& r : ready) r.deleter();
  reclaimed_total_.fetch_add(ready.size(), std::memory_order_relaxed);
  return ready.size();
}

void EpochGc::ReclaimAll() {
  while (TryReclaim() > 0) {
  }
}

EpochGc::Stats EpochGc::GetStats() const {
  Stats st;
  st.epoch = epoch_.load(std::memory_order_seq_cst);
  st.oldest_pinned = kIdle;
  for (const Slot& s : slots_) {
    const std::uint64_t e = s.epoch.load(std::memory_order_seq_cst);
    if (e == kIdle) continue;
    ++st.pinned;
    if (e < st.oldest_pinned) st.oldest_pinned = e;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    st.retired_pending = retired_.size();
  }
  st.reclaimed_total = reclaimed_total_.load(std::memory_order_relaxed);
  return st;
}

EpochGc& EpochGc::Global() {
  static EpochGc* gc = new EpochGc();  // leaked: see header
  return *gc;
}

}  // namespace patchindex
