#include "common/thread_pool.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "common/check.h"

namespace patchindex {

std::optional<std::size_t> ParseThreadCountEnv(const char* value) {
  if (value == nullptr || *value == '\0') return std::nullopt;
  std::size_t n = 0;
  for (const char* p = value; *p != '\0'; ++p) {
    if (*p < '0' || *p > '9') return std::nullopt;
    n = n * 10 + static_cast<std::size_t>(*p - '0');
    if (n > kMaxThreadsEnv) return std::nullopt;
  }
  if (n == 0) return std::nullopt;
  return n;
}

std::size_t DefaultThreadCount() {
  const std::size_t hardware =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  const char* env = std::getenv("PI_THREADS");
  if (env == nullptr) return hardware;
  const std::optional<std::size_t> parsed = ParseThreadCountEnv(env);
  if (!parsed.has_value()) {
    // Warn once: DefaultThreadCount is called per pool, and repeating
    // the same complaint for every Engine would drown real output.
    static bool warned = [&] {
      std::fprintf(stderr,
                   "PI_THREADS: ignoring invalid value '%s' (want 1..%zu); "
                   "using hardware concurrency %zu\n",
                   env, kMaxThreadsEnv, hardware);
      return true;
    }();
    (void)warned;
    return hardware;
  }
  return *parsed;
}

ThreadPool::ThreadPool(std::size_t num_threads) {
  PIDX_CHECK(num_threads >= 1);
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  QueuedTask queued{std::move(task), {}};
  if (has_wait_recorder_.load(std::memory_order_relaxed)) {
    queued.enqueued = std::chrono::steady_clock::now();
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    PIDX_CHECK_MSG(!shutting_down_, "Submit after shutdown");
    queue_.push_back(std::move(queued));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::SetQueueWaitRecorder(
    std::function<void(std::uint64_t)> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  wait_recorder_ = std::move(fn);
  has_wait_recorder_.store(wait_recorder_ != nullptr,
                           std::memory_order_relaxed);
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::ParallelFor(std::size_t n,
                             const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t chunks = std::min(n, num_threads());
  const std::size_t per_chunk = (n + chunks - 1) / chunks;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t begin = c * per_chunk;
    const std::size_t end = std::min(n, begin + per_chunk);
    if (begin >= end) break;
    Submit([&fn, begin, end] {
      for (std::size_t i = begin; i < end; ++i) fn(i);
    });
  }
  WaitIdle();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    QueuedTask task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_task_.wait(lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      if (wait_recorder_ != nullptr &&
          task.enqueued != std::chrono::steady_clock::time_point{}) {
        // Copy so the observer runs outside mu_ (it may take its own
        // histogram shard locks; holding the pool mutex through it would
        // serialize task pickup).
        const auto wait = std::chrono::steady_clock::now() - task.enqueued;
        const auto recorder = wait_recorder_;
        lock.unlock();
        recorder(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(wait)
                .count()));
      }
    }
    task.fn();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

ThreadPool& ThreadPool::Default() {
  static ThreadPool* pool = new ThreadPool(DefaultThreadCount());
  return *pool;
}

}  // namespace patchindex
