#include "common/thread_pool.h"

#include <algorithm>

#include "common/check.h"

namespace patchindex {

ThreadPool::ThreadPool(std::size_t num_threads) {
  PIDX_CHECK(num_threads >= 1);
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    PIDX_CHECK_MSG(!shutting_down_, "Submit after shutdown");
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::ParallelFor(std::size_t n,
                             const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t chunks = std::min(n, num_threads());
  const std::size_t per_chunk = (n + chunks - 1) / chunks;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t begin = c * per_chunk;
    const std::size_t end = std::min(n, begin + per_chunk);
    if (begin >= end) break;
    Submit([&fn, begin, end] {
      for (std::size_t i = begin; i < end; ++i) fn(i);
    });
  }
  WaitIdle();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_task_.wait(lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

ThreadPool& ThreadPool::Default() {
  static ThreadPool* pool = new ThreadPool(
      std::max<std::size_t>(1, std::thread::hardware_concurrency()));
  return *pool;
}

}  // namespace patchindex
