#ifndef PATCHINDEX_COMMON_TYPES_H_
#define PATCHINDEX_COMMON_TYPES_H_

#include <cstdint>

namespace patchindex {

/// Position of a tuple within a (partition of a) table. PatchIndexes
/// identify exceptions by rowID; deletes shift subsequent rowIDs down,
/// which is exactly what the sharded bitmap's delete operation models.
using RowId = std::uint64_t;

/// Sentinel for "no row".
inline constexpr RowId kInvalidRowId = ~RowId{0};

}  // namespace patchindex

#endif  // PATCHINDEX_COMMON_TYPES_H_
