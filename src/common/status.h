#ifndef PATCHINDEX_COMMON_STATUS_H_
#define PATCHINDEX_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace patchindex {

/// Error categories used across the library. Modeled after the Status
/// idiom used by columnar database engines (Arrow, RocksDB): fallible
/// operations return a Status (or Result<T>) instead of throwing.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kAlreadyExists,
  kConstraintViolation,
  kInternal,
  kNotImplemented,
  /// A service is temporarily unable to take the request (server at its
  /// admission limit, connection shutting down); retrying later may
  /// succeed. Used by the network server's SERVER_BUSY rejection.
  kUnavailable,
  /// A statement (or the whole engine) ran into a configured resource
  /// budget — EngineOptions::query_memory_limit / engine_memory_limit.
  /// The message names the operator that tripped the limit. The
  /// statement is aborted cleanly; the session stays usable.
  kResourceExhausted,
};

/// A lightweight success-or-error value. Cheap to copy on the OK path
/// (a single enum); carries a message only on error.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ConstraintViolation(std::string msg) {
    return Status(StatusCode::kConstraintViolation, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) return "OK";
    return std::string(CodeName(code_)) + ": " + message_;
  }

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

  /// The code's stable name ("NotFound", "Internal", ...) — the `status`
  /// column of pi_stats.queries for failed statements.
  static const char* CodeName(StatusCode code) {
    switch (code) {
      case StatusCode::kOk:
        return "OK";
      case StatusCode::kInvalidArgument:
        return "InvalidArgument";
      case StatusCode::kOutOfRange:
        return "OutOfRange";
      case StatusCode::kNotFound:
        return "NotFound";
      case StatusCode::kAlreadyExists:
        return "AlreadyExists";
      case StatusCode::kConstraintViolation:
        return "ConstraintViolation";
      case StatusCode::kInternal:
        return "Internal";
      case StatusCode::kNotImplemented:
        return "NotImplemented";
      case StatusCode::kUnavailable:
        return "Unavailable";
      case StatusCode::kResourceExhausted:
        return "ResourceExhausted";
    }
    return "Unknown";
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// A value-or-error wrapper: either holds a T or an error Status.
template <typename T>
class Result {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor): implicit by design, like
  // arrow::Result — allows `return value;` from functions returning Result.
  Result(T value) : value_(std::move(value)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return std::move(*value_); }

  /// Returns the contained value, or `fallback` on error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK Status to the caller.
#define PIDX_RETURN_NOT_OK(expr)                  \
  do {                                            \
    ::patchindex::Status _st = (expr);            \
    if (!_st.ok()) return _st;                    \
  } while (0)

}  // namespace patchindex

#endif  // PATCHINDEX_COMMON_STATUS_H_
