#ifndef PATCHINDEX_COMMON_CRC32_H_
#define PATCHINDEX_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace patchindex {

/// CRC-32C (Castagnoli polynomial 0x1EDC6F41, reflected) over `len` bytes.
/// `seed` chains incremental computations: Crc32c(b, n2, Crc32c(a, n1))
/// equals the CRC of a||b. Used by the WAL and snapshot formats to detect
/// torn and bit-flipped records after a crash.
std::uint32_t Crc32c(const void* data, std::size_t len, std::uint32_t seed = 0);

}  // namespace patchindex

#endif  // PATCHINDEX_COMMON_CRC32_H_
