#ifndef PATCHINDEX_COMMON_CHECK_H_
#define PATCHINDEX_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// Invariant checking macros. PIDX_CHECK is always on (cheap compared to
/// the operations this library performs); PIDX_DCHECK compiles out in
/// release builds and is used on per-element hot paths.

#define PIDX_CHECK(cond)                                                  \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", __FILE__,       \
                   __LINE__, #cond);                                      \
      std::abort();                                                       \
    }                                                                     \
  } while (0)

#define PIDX_CHECK_MSG(cond, msg)                                         \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s (%s)\n", __FILE__,  \
                   __LINE__, #cond, msg);                                 \
      std::abort();                                                       \
    }                                                                     \
  } while (0)

#ifdef NDEBUG
#define PIDX_DCHECK(cond) \
  do {                    \
  } while (0)
#else
#define PIDX_DCHECK(cond) PIDX_CHECK(cond)
#endif

#endif  // PATCHINDEX_COMMON_CHECK_H_
