#ifndef PATCHINDEX_COMMON_BITS_H_
#define PATCHINDEX_COMMON_BITS_H_

#include <bit>
#include <cstdint>

namespace patchindex::bits {

/// Number of bits in one addressable bitmap element.
inline constexpr std::uint64_t kBitsPerWord = 64;
inline constexpr std::uint64_t kWordShift = 6;     // log2(64)
inline constexpr std::uint64_t kWordMask = 63;     // kBitsPerWord - 1

/// Index of the 64-bit word containing bit `pos`.
constexpr std::uint64_t WordIndex(std::uint64_t pos) {
  return pos >> kWordShift;
}

/// Offset of bit `pos` within its word (LSB-first numbering).
constexpr std::uint64_t BitOffset(std::uint64_t pos) { return pos & kWordMask; }

/// Number of 64-bit words needed to hold `nbits` bits.
constexpr std::uint64_t WordsForBits(std::uint64_t nbits) {
  return (nbits + kBitsPerWord - 1) >> kWordShift;
}

/// Population count over a word range.
inline std::uint64_t PopCount(const std::uint64_t* words, std::uint64_t n) {
  std::uint64_t total = 0;
  for (std::uint64_t i = 0; i < n; ++i) total += std::popcount(words[i]);
  return total;
}

/// Round `v` up to the next power of two (v must be >= 1).
constexpr std::uint64_t NextPow2(std::uint64_t v) {
  return std::bit_ceil(v);
}

}  // namespace patchindex::bits

#endif  // PATCHINDEX_COMMON_BITS_H_
