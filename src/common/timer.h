#ifndef PATCHINDEX_COMMON_TIMER_H_
#define PATCHINDEX_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace patchindex {

/// Monotonic wall-clock timer used by benchmark harnesses.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Elapsed time in nanoseconds since construction or last Restart().
  std::int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

  double ElapsedMicros() const { return ElapsedNanos() / 1e3; }
  double ElapsedMillis() const { return ElapsedNanos() / 1e6; }
  double ElapsedSeconds() const { return ElapsedNanos() / 1e9; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace patchindex

#endif  // PATCHINDEX_COMMON_TIMER_H_
