#ifndef PATCHINDEX_COMMON_THREAD_POOL_H_
#define PATCHINDEX_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace patchindex {

/// A fixed-size worker pool used by the sharded bitmap's parallel bulk
/// delete (one task per shard touched) and by partition-parallel index
/// creation. Tasks are plain std::function<void()>; WaitIdle() provides the
/// barrier the bulk delete needs before adapting shard start values.
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution on some worker.
  void Submit(std::function<void()> task);

  /// Blocks until all submitted tasks have finished executing.
  void WaitIdle();

  /// Enqueues a task and returns a future that resolves when it finishes
  /// (rethrowing any exception). Unlike WaitIdle() — a pool-wide barrier —
  /// this lets a caller await only its own tasks, which is what the query
  /// engine needs when several pipelines share one pool: waiting for the
  /// whole pool to drain would serialize unrelated concurrent queries.
  std::future<void> SubmitWithFuture(std::function<void()> task) {
    auto packaged = std::make_shared<std::packaged_task<void()>>(
        std::move(task));
    std::future<void> future = packaged->get_future();
    Submit([packaged] { (*packaged)(); });
    return future;
  }

  /// Runs fn(i) for i in [0, n), distributing iterations over workers in
  /// contiguous chunks, and blocks until all iterations are done.
  void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& fn);

  std::size_t num_threads() const { return workers_.size(); }

  /// Process-wide pool sized to the hardware concurrency.
  static ThreadPool& Default();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool shutting_down_ = false;
};

}  // namespace patchindex

#endif  // PATCHINDEX_COMMON_THREAD_POOL_H_
