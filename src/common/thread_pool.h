#ifndef PATCHINDEX_COMMON_THREAD_POOL_H_
#define PATCHINDEX_COMMON_THREAD_POOL_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

namespace patchindex {

/// Upper bound a PI_THREADS override is accepted up to — far above any
/// real machine, low enough that a typo ("10000" for "1000") cannot
/// spawn an absurd number of workers.
inline constexpr std::size_t kMaxThreadsEnv = 1024;

/// Parses a PI_THREADS-style value: decimal digits only, 1..kMaxThreadsEnv.
/// Returns nullopt on anything else (empty, trailing junk, zero, too
/// large) — callers fall back to the hardware concurrency and warn.
std::optional<std::size_t> ParseThreadCountEnv(const char* value);

/// The default worker-pool size: the PI_THREADS environment variable
/// when set and valid (an invalid value warns once on stderr and is
/// ignored), the hardware concurrency otherwise. Lets deployments and CI
/// size ThreadPool::Default() and every default-sized Engine without
/// recompiling.
std::size_t DefaultThreadCount();

/// A fixed-size worker pool used by the sharded bitmap's parallel bulk
/// delete (one task per shard touched) and by partition-parallel index
/// creation. Tasks are plain std::function<void()>; WaitIdle() provides the
/// barrier the bulk delete needs before adapting shard start values.
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution on some worker.
  void Submit(std::function<void()> task);

  /// Blocks until all submitted tasks have finished executing.
  void WaitIdle();

  /// Enqueues a task and returns a future that resolves when it finishes
  /// (rethrowing any exception). Unlike WaitIdle() — a pool-wide barrier —
  /// this lets a caller await only its own tasks, which is what the query
  /// engine needs when several pipelines share one pool: waiting for the
  /// whole pool to drain would serialize unrelated concurrent queries.
  std::future<void> SubmitWithFuture(std::function<void()> task) {
    auto packaged = std::make_shared<std::packaged_task<void()>>(
        std::move(task));
    std::future<void> future = packaged->get_future();
    Submit([packaged] { (*packaged)(); });
    return future;
  }

  /// Runs fn(i) for i in [0, n), distributing iterations over workers in
  /// contiguous chunks, and blocks until all iterations are done.
  void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& fn);

  std::size_t num_threads() const { return workers_.size(); }

  /// Installs (or, with nullptr, removes) a wait-event observer invoked
  /// with the nanoseconds each task sat queued before a worker picked it
  /// up — the engine routes it into the pidx_wait_pool_queue_us
  /// histogram. With no observer installed, Submit does not even read
  /// the clock. The observer runs on worker threads and must be
  /// thread-safe; install before the pool is shared.
  void SetQueueWaitRecorder(std::function<void(std::uint64_t wait_ns)> fn);

  /// Process-wide pool sized by DefaultThreadCount() — the hardware
  /// concurrency, or the PI_THREADS environment variable when set. The
  /// size is fixed at first use; changing PI_THREADS later has no
  /// effect on an already-created pool.
  static ThreadPool& Default();

 private:
  struct QueuedTask {
    std::function<void()> fn;
    /// Enqueue time; only read when a wait recorder is installed.
    std::chrono::steady_clock::time_point enqueued;
  };

  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<QueuedTask> queue_;
  std::atomic<bool> has_wait_recorder_{false};
  std::function<void(std::uint64_t)> wait_recorder_;
  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool shutting_down_ = false;
};

}  // namespace patchindex

#endif  // PATCHINDEX_COMMON_THREAD_POOL_H_
