#include "common/crc32.h"

#include <array>

namespace patchindex {

namespace {

/// Software table for reflected CRC-32C, built once at first use.
std::array<std::uint32_t, 256> BuildTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) ? 0x82F63B78u : 0u);
    }
    table[i] = crc;
  }
  return table;
}

}  // namespace

std::uint32_t Crc32c(const void* data, std::size_t len, std::uint32_t seed) {
  static const std::array<std::uint32_t, 256> kTable = BuildTable();
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t crc = ~seed;
  for (std::size_t i = 0; i < len; ++i) {
    crc = (crc >> 8) ^ kTable[(crc ^ p[i]) & 0xFFu];
  }
  return ~crc;
}

}  // namespace patchindex
