#include "server/wire.h"

#include <sys/socket.h>

#include <cerrno>
#include <cstring>

namespace patchindex::net {

void WireWriter::PutU32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void WireWriter::PutU64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void WireWriter::PutF64(double v) {
  std::uint64_t bits;
  static_assert(sizeof bits == sizeof v);
  std::memcpy(&bits, &v, sizeof bits);
  PutU64(bits);
}

void WireWriter::PutString(std::string_view s) {
  PutU32(static_cast<std::uint32_t>(s.size()));
  buf_.append(s.data(), s.size());
}

namespace {

Status Truncated() {
  return Status::InvalidArgument("malformed frame: truncated payload");
}

}  // namespace

Status WireReader::GetU8(std::uint8_t* v) {
  if (buf_.size() - pos_ < 1) return Truncated();
  *v = static_cast<std::uint8_t>(buf_[pos_++]);
  return Status::OK();
}

Status WireReader::GetU32(std::uint32_t* v) {
  if (buf_.size() - pos_ < 4) return Truncated();
  std::uint32_t out = 0;
  for (int i = 0; i < 4; ++i) {
    out |= static_cast<std::uint32_t>(
               static_cast<std::uint8_t>(buf_[pos_ + i]))
           << (8 * i);
  }
  pos_ += 4;
  *v = out;
  return Status::OK();
}

Status WireReader::GetU64(std::uint64_t* v) {
  if (buf_.size() - pos_ < 8) return Truncated();
  std::uint64_t out = 0;
  for (int i = 0; i < 8; ++i) {
    out |= static_cast<std::uint64_t>(
               static_cast<std::uint8_t>(buf_[pos_ + i]))
           << (8 * i);
  }
  pos_ += 8;
  *v = out;
  return Status::OK();
}

Status WireReader::GetI64(std::int64_t* v) {
  std::uint64_t u;
  PIDX_RETURN_NOT_OK(GetU64(&u));
  *v = static_cast<std::int64_t>(u);
  return Status::OK();
}

Status WireReader::GetF64(double* v) {
  std::uint64_t bits;
  PIDX_RETURN_NOT_OK(GetU64(&bits));
  std::memcpy(v, &bits, sizeof *v);
  return Status::OK();
}

Status WireReader::GetString(std::string* s) {
  std::uint32_t len;
  PIDX_RETURN_NOT_OK(GetU32(&len));
  if (len > kMaxFrameBytes || buf_.size() - pos_ < len) return Truncated();
  s->assign(buf_.data() + pos_, len);
  pos_ += len;
  return Status::OK();
}

// ------------------------------------------------------------- frame I/O

namespace {

/// send() that survives EINTR and partial writes. MSG_NOSIGNAL turns a
/// dead peer into EPIPE instead of a process-killing SIGPIPE — the server
/// must outlive any one client.
Status SendAll(int fd, const char* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::send(fd, data, size, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EPIPE || errno == ECONNRESET) {
        return Status::Unavailable("connection closed by peer");
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // SO_SNDTIMEO expired: the peer stopped reading. Give up on the
        // connection rather than blocking a worker forever.
        return Status::Unavailable(
            "send timed out: peer is not reading its results");
      }
      return Status::Internal(std::string("send failed: ") +
                              std::strerror(errno));
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
  return Status::OK();
}

/// recv() exactly `size` bytes. `*eof` reports a clean close before the
/// first byte; EOF mid-buffer is an error (a frame was cut off).
Status RecvAll(int fd, char* data, std::size_t size, bool* eof) {
  *eof = false;
  std::size_t got = 0;
  while (got < size) {
    const ssize_t n = ::recv(fd, data + got, size - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == ECONNRESET) {
        return Status::Unavailable("connection closed by peer");
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // SO_RCVTIMEO expired (the server arms one for the handshake so
        // a silent peer cannot park a reader thread forever).
        return Status::Unavailable("recv timed out");
      }
      return Status::Internal(std::string("recv failed: ") +
                              std::strerror(errno));
    }
    if (n == 0) {
      if (got == 0) {
        *eof = true;
        return Status::Unavailable("connection closed by peer");
      }
      return Status::InvalidArgument("malformed frame: truncated stream");
    }
    got += static_cast<std::size_t>(n);
  }
  return Status::OK();
}

}  // namespace

Status WriteFrame(int fd, FrameType type, std::string_view payload) {
  if (payload.size() + 1 > kMaxFrameBytes) {
    return Status::InvalidArgument("frame exceeds kMaxFrameBytes");
  }
  std::string head;
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size() + 1);
  for (int i = 0; i < 4; ++i) {
    head.push_back(static_cast<char>((len >> (8 * i)) & 0xff));
  }
  head.push_back(static_cast<char>(type));
  // One send for the header keeps small frames in one TCP segment; the
  // payload follows separately to avoid copying result batches.
  PIDX_RETURN_NOT_OK(SendAll(fd, head.data(), head.size()));
  return SendAll(fd, payload.data(), payload.size());
}

Status ReadFrame(int fd, FrameType* type, std::string* payload) {
  char head[4];
  bool eof = false;
  PIDX_RETURN_NOT_OK(RecvAll(fd, head, sizeof head, &eof));
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(head[i]))
           << (8 * i);
  }
  if (len == 0 || len > kMaxFrameBytes) {
    return Status::InvalidArgument("malformed frame: bad length prefix");
  }
  std::string body(len, '\0');
  Status st = RecvAll(fd, body.data(), body.size(), &eof);
  if (!st.ok()) {
    // EOF after the header but before the body is a cut-off frame, not
    // a clean close — a frame boundary is after the body.
    if (eof) {
      return Status::InvalidArgument("malformed frame: truncated stream");
    }
    return st;
  }
  *type = static_cast<FrameType>(static_cast<std::uint8_t>(body[0]));
  payload->assign(body, 1, body.size() - 1);
  return Status::OK();
}

// --------------------------------------------------- typed payload parts

void EncodeValue(WireWriter* w, const Value& v) {
  w->PutU8(static_cast<std::uint8_t>(v.type()));
  switch (v.type()) {
    case ColumnType::kInt64:
      w->PutI64(v.AsInt64());
      break;
    case ColumnType::kDouble:
      w->PutF64(v.AsDouble());
      break;
    case ColumnType::kString:
      w->PutString(v.AsString());
      break;
  }
}

Status DecodeValue(WireReader* r, Value* v) {
  std::uint8_t tag;
  PIDX_RETURN_NOT_OK(r->GetU8(&tag));
  switch (static_cast<ColumnType>(tag)) {
    case ColumnType::kInt64: {
      std::int64_t i;
      PIDX_RETURN_NOT_OK(r->GetI64(&i));
      *v = Value(i);
      return Status::OK();
    }
    case ColumnType::kDouble: {
      double d;
      PIDX_RETURN_NOT_OK(r->GetF64(&d));
      *v = Value(d);
      return Status::OK();
    }
    case ColumnType::kString: {
      std::string s;
      PIDX_RETURN_NOT_OK(r->GetString(&s));
      *v = Value(std::move(s));
      return Status::OK();
    }
  }
  return Status::InvalidArgument("malformed frame: unknown value type");
}

void EncodeParams(WireWriter* w, const std::vector<Value>& params) {
  w->PutU32(static_cast<std::uint32_t>(params.size()));
  for (const Value& p : params) EncodeValue(w, p);
}

Status DecodeParams(WireReader* r, std::vector<Value>* params) {
  std::uint32_t count;
  PIDX_RETURN_NOT_OK(r->GetU32(&count));
  params->clear();
  for (std::uint32_t i = 0; i < count; ++i) {
    Value v;
    PIDX_RETURN_NOT_OK(DecodeValue(r, &v));
    params->push_back(std::move(v));
  }
  return Status::OK();
}

void EncodeResultHeader(WireWriter* w, const QueryResult& result) {
  w->PutU64(result.rows_affected);
  std::uint8_t flags = 0;
  if (result.parallel) flags |= kExecParallel;
  if (result.parallel_join) flags |= kExecParallelJoin;
  if (result.parallel_sort) flags |= kExecParallelSort;
  w->PutU8(flags);
  // v2 phase-span block: the per-operator tree stays server-side (EXPLAIN
  // ANALYZE renders it into rows), but the phase breakdown travels so
  // remote `.timing` output matches local output.
  if (result.profile != nullptr) {
    w->PutU8(1);
    w->PutF64(result.profile->parse_ms);
    w->PutF64(result.profile->bind_ms);
    w->PutF64(result.profile->optimize_ms);
    w->PutF64(result.profile->execute_ms);
    w->PutF64(result.profile->commit_wait_ms);
    w->PutF64(result.profile->commit_ms);
    w->PutF64(result.profile->total_ms);
  } else {
    w->PutU8(0);
  }
  w->PutU32(static_cast<std::uint32_t>(result.rows.columns.size()));
  for (std::size_t c = 0; c < result.rows.columns.size(); ++c) {
    // DML results have no column names; SELECTs name every column.
    w->PutString(c < result.column_names.size() ? result.column_names[c]
                                                : std::string());
    w->PutU8(static_cast<std::uint8_t>(result.rows.columns[c].type));
  }
}

Status DecodeResultHeader(WireReader* r, QueryResult* result) {
  PIDX_RETURN_NOT_OK(r->GetU64(&result->rows_affected));
  std::uint8_t flags;
  PIDX_RETURN_NOT_OK(r->GetU8(&flags));
  result->parallel = (flags & kExecParallel) != 0;
  result->parallel_join = (flags & kExecParallelJoin) != 0;
  result->parallel_sort = (flags & kExecParallelSort) != 0;
  std::uint8_t has_profile;
  PIDX_RETURN_NOT_OK(r->GetU8(&has_profile));
  result->profile.reset();
  if (has_profile != 0) {
    auto profile = std::make_shared<obs::QueryProfile>();
    PIDX_RETURN_NOT_OK(r->GetF64(&profile->parse_ms));
    PIDX_RETURN_NOT_OK(r->GetF64(&profile->bind_ms));
    PIDX_RETURN_NOT_OK(r->GetF64(&profile->optimize_ms));
    PIDX_RETURN_NOT_OK(r->GetF64(&profile->execute_ms));
    PIDX_RETURN_NOT_OK(r->GetF64(&profile->commit_wait_ms));
    PIDX_RETURN_NOT_OK(r->GetF64(&profile->commit_ms));
    PIDX_RETURN_NOT_OK(r->GetF64(&profile->total_ms));
    result->profile = std::move(profile);
  }
  std::uint32_t ncols;
  PIDX_RETURN_NOT_OK(r->GetU32(&ncols));
  result->column_names.clear();
  std::vector<ColumnType> types;
  for (std::uint32_t c = 0; c < ncols; ++c) {
    std::string name;
    PIDX_RETURN_NOT_OK(r->GetString(&name));
    result->column_names.push_back(std::move(name));
    std::uint8_t tag;
    PIDX_RETURN_NOT_OK(r->GetU8(&tag));
    if (tag > static_cast<std::uint8_t>(ColumnType::kString)) {
      return Status::InvalidArgument("malformed frame: unknown column type");
    }
    types.push_back(static_cast<ColumnType>(tag));
  }
  result->rows.Reset(types);
  return Status::OK();
}

void EncodeRow(WireWriter* w, const Batch& rows, std::size_t r) {
  for (const ColumnVector& col : rows.columns) {
    switch (col.type) {
      case ColumnType::kInt64:
        w->PutI64(col.i64[r]);
        break;
      case ColumnType::kDouble:
        w->PutF64(col.f64[r]);
        break;
      case ColumnType::kString:
        w->PutString(col.str[r]);
        break;
    }
  }
}

Status DecodeRowBatch(WireReader* r, Batch* rows) {
  std::uint32_t nrows;
  PIDX_RETURN_NOT_OK(r->GetU32(&nrows));
  // Bound the announced row count by the bytes actually present (every
  // cell takes at least its fixed part), so a corrupt count cannot turn
  // a tiny frame into a giant allocation — the same hardening the frame
  // length prefix gets.
  std::size_t min_row_bytes = 0;
  for (const ColumnVector& col : rows->columns) {
    min_row_bytes += col.type == ColumnType::kString ? 4 : 8;
  }
  if (nrows > 0 && min_row_bytes == 0) {
    return Status::InvalidArgument(
        "malformed frame: rows in a zero-column batch");
  }
  if (nrows > 0 && r->remaining() / min_row_bytes < nrows) {
    return Status::InvalidArgument(
        "malformed frame: row count exceeds payload");
  }
  for (std::uint32_t i = 0; i < nrows; ++i) {
    for (ColumnVector& col : rows->columns) {
      switch (col.type) {
        case ColumnType::kInt64: {
          std::int64_t v;
          PIDX_RETURN_NOT_OK(r->GetI64(&v));
          col.i64.push_back(v);
          break;
        }
        case ColumnType::kDouble: {
          double v;
          PIDX_RETURN_NOT_OK(r->GetF64(&v));
          col.f64.push_back(v);
          break;
        }
        case ColumnType::kString: {
          std::string v;
          PIDX_RETURN_NOT_OK(r->GetString(&v));
          col.str.push_back(std::move(v));
          break;
        }
      }
    }
    rows->row_ids.push_back(rows->row_ids.size());
  }
  return Status::OK();
}

bool ExtractSourceLoc(std::string_view message, std::uint32_t* line,
                      std::uint32_t* column) {
  // The SQL front end renders positions as "line L, column C" (see
  // SourceLoc::ToString); take the last occurrence so nested messages
  // point at the innermost position.
  const std::string_view kLine = "line ";
  const std::string_view kColumn = ", column ";
  std::size_t pos = message.rfind(kLine);
  while (pos != std::string_view::npos) {
    std::size_t p = pos + kLine.size();
    std::uint64_t l = 0;
    std::size_t digits = 0;
    while (p < message.size() && message[p] >= '0' && message[p] <= '9') {
      l = l * 10 + static_cast<std::uint64_t>(message[p] - '0');
      ++p;
      ++digits;
    }
    if (digits > 0 && message.compare(p, kColumn.size(), kColumn) == 0) {
      p += kColumn.size();
      std::uint64_t c = 0;
      std::size_t cdigits = 0;
      while (p < message.size() && message[p] >= '0' && message[p] <= '9') {
        c = c * 10 + static_cast<std::uint64_t>(message[p] - '0');
        ++p;
        ++cdigits;
      }
      if (cdigits > 0) {
        *line = static_cast<std::uint32_t>(l);
        *column = static_cast<std::uint32_t>(c);
        return true;
      }
    }
    if (pos == 0) break;
    pos = message.rfind(kLine, pos - 1);
  }
  return false;
}

void EncodeError(WireWriter* w, const Status& status) {
  w->PutU8(static_cast<std::uint8_t>(status.code()));
  std::uint32_t line = 0, column = 0;
  ExtractSourceLoc(status.message(), &line, &column);
  w->PutU32(line);
  w->PutU32(column);
  w->PutString(status.message());
}

Status DecodeError(WireReader* r, Status* status, std::uint32_t* line,
                   std::uint32_t* column) {
  std::uint8_t code;
  PIDX_RETURN_NOT_OK(r->GetU8(&code));
  std::uint32_t l, c;
  PIDX_RETURN_NOT_OK(r->GetU32(&l));
  PIDX_RETURN_NOT_OK(r->GetU32(&c));
  std::string message;
  PIDX_RETURN_NOT_OK(r->GetString(&message));
  if (code > static_cast<std::uint8_t>(StatusCode::kResourceExhausted)) {
    return Status::InvalidArgument("malformed frame: unknown status code");
  }
  *status = Status(static_cast<StatusCode>(code), std::move(message));
  if (line != nullptr) *line = l;
  if (column != nullptr) *column = c;
  return Status::OK();
}

}  // namespace patchindex::net
