#ifndef PATCHINDEX_SERVER_SERVER_H_
#define PATCHINDEX_SERVER_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "engine/engine.h"

namespace patchindex::net {

struct Connection;
struct Task;

struct ServerOptions {
  /// Listen address. The default binds loopback only — exposing the
  /// server beyond the host is an explicit decision ("0.0.0.0").
  std::string host = "127.0.0.1";
  /// TCP port; 0 picks an ephemeral port (read it back via port()).
  std::uint16_t port = 0;

  /// Accepted sockets beyond this are greeted with a kUnavailable error
  /// frame and closed.
  std::size_t max_connections = 256;

  /// Admission control: requests admitted (queued or executing) across
  /// the whole server. A request arriving when the limit is reached is
  /// answered with a kUnavailable (SERVER_BUSY) error frame, in request
  /// order, instead of queueing without bound.
  std::size_t max_inflight_queries = 64;

  /// Admitted requests queued per connection (pipelining depth). Beyond
  /// it, further requests on that connection are rejected kUnavailable.
  std::size_t max_connection_queue = 8;

  /// Admission high-watermark over the engine's tracked bytes (in-flight
  /// query trackers plus the server's own frame/result accounting). A
  /// request arriving while tracked memory is at or above it is answered
  /// SERVER_BUSY instead of admitted — backpressure kicks in before the
  /// allocator does. 0 disables the check.
  std::uint64_t memory_soft_limit = 0;

  /// Threads executing queries. Query *coordination* runs here — the
  /// morsel work inside Session::Execute still fans out on the engine's
  /// shared ThreadPool. Coordinators get their own threads because a
  /// coordinator blocks waiting for its morsel futures; parking it on a
  /// pool worker could deadlock the pool against itself.
  std::size_t query_workers = 4;

  /// Socket send timeout per write, in seconds (0 = none). A client
  /// that stops reading its result stream would otherwise park a worker
  /// in send() forever — and stall graceful shutdown with it; when the
  /// timeout expires the connection is marked broken and dropped.
  std::size_t write_timeout_seconds = 30;

  /// How long a fresh connection gets to complete the kHello handshake,
  /// in seconds (0 = forever). A peer that connects and sends nothing
  /// would otherwise hold a reader thread and a connection slot
  /// indefinitely — max_connections of them lock the server out. After
  /// the handshake the receive side blocks without timeout (idle
  /// sessions are legitimate).
  std::size_t handshake_timeout_seconds = 10;

  /// Serve kMeta frames (the pisql meta commands: .gen/.load/.index/...).
  /// Off for deployments that want a pure SQL surface.
  bool enable_meta_commands = true;

  /// Queries (kQuery/kExecute) whose end-to-end worker time reaches this
  /// many milliseconds are logged — SQL text plus phase breakdown —
  /// through `slow_query_sink`. 0 disables the slow-query log.
  std::size_t slow_query_ms = 0;

  /// Receives one preformatted line (no trailing newline) per slow
  /// query. Null writes to stderr.
  std::function<void(const std::string&)> slow_query_sink;

  /// Test-only: runs at the start of every task execution, before the
  /// query runs (admission slot held). Lets tests park a worker
  /// deterministically to observe SERVER_BUSY and shutdown draining.
  std::function<void()> test_task_hook;
};

/// Monotonic counters, readable while the server runs.
struct ServerStats {
  std::atomic<std::uint64_t> connections_accepted{0};
  std::atomic<std::uint64_t> connections_rejected{0};
  std::atomic<std::uint64_t> queries_executed{0};
  std::atomic<std::uint64_t> queries_rejected_busy{0};
  /// Subset of queries_rejected_busy turned away at the memory
  /// high-watermark (ServerOptions::memory_soft_limit).
  std::atomic<std::uint64_t> queries_rejected_memory{0};
  std::atomic<std::uint64_t> protocol_errors{0};
};

/// The SQL-over-TCP server: one engine, many concurrent remote sessions.
///
/// Threading model: one acceptor thread accepts sockets and spawns one
/// reader thread per connection; readers decode frames into a bounded
/// per-connection task queue (applying admission control at enqueue) and
/// a fixed pool of query-worker threads drains those queues — one task
/// at a time per connection, FIFO, so responses leave in request order
/// while different connections execute concurrently. Each connection
/// owns one engine::Session, so remote clients get the same isolation
/// as in-process sessions: reads pin an MVCC table version through an
/// epoch guard (never blocking writers), DML serializes on the
/// writer–writer lock, and connection teardown retires its state
/// through the same epoch GC.
///
/// Backpressure: per-connection queues are bounded; when even rejection
/// markers would overflow one, its reader simply stops reading the
/// socket until the queue drains — TCP pushes back on the client.
///
/// Shutdown (Stop) is graceful: stop accepting, wake every reader
/// (shutdown(SHUT_RD) — already-queued requests stay), let the workers
/// drain every queue and deliver the results, then join all threads and
/// close the sockets.
///
/// The Engine must outlive the server. Start/Stop are not thread-safe
/// against each other; call them from one controlling thread.
class PiServer {
 public:
  PiServer(Engine& engine, ServerOptions options);
  ~PiServer();

  PiServer(const PiServer&) = delete;
  PiServer& operator=(const PiServer&) = delete;

  /// Binds, listens, and starts the acceptor + worker threads. Fails
  /// with kUnavailable when the address cannot be bound.
  Status Start();

  /// Graceful shutdown; idempotent. Blocks until in-flight and queued
  /// requests have drained and every thread is joined.
  void Stop();

  /// The bound TCP port (resolves port 0). Valid after Start().
  std::uint16_t port() const { return port_; }
  const std::string& host() const { return options_.host; }

  const ServerStats& stats() const { return stats_; }
  Engine& engine() { return engine_; }

 private:
  friend struct Connection;

  void AcceptorLoop();
  void ReaderLoop(const std::shared_ptr<Connection>& conn);
  void WorkerLoop();
  void ProcessTask(const std::shared_ptr<Connection>& conn, Task& task);
  void EnqueueTask(const std::shared_ptr<Connection>& conn, Task task);
  void PushReady(const std::shared_ptr<Connection>& conn);
  void ReapFinishedConnectionsLocked();
  void RegisterMetrics();
  void LogSlowQuery(const std::string& sql, double total_ms,
                    const obs::QueryProfile* profile);

  Engine& engine_;
  ServerOptions options_;
  ServerStats stats_;

  /// Server histograms in the engine's registry; null when the engine
  /// was built with enable_metrics off (the ServerStats callbacks still
  /// register — folding existing atomics costs nothing per query).
  obs::Histogram* query_latency_us_ = nullptr;
  obs::Histogram* queue_wait_us_ = nullptr;
  /// Wait-event-class view of the same connection-queue wait
  /// (pidx_wait_server_queue_us, next to the engine's pidx_wait_* family).
  obs::Histogram* wait_queue_us_ = nullptr;
  obs::Counter* slow_queries_ = nullptr;

  /// Frame/result-queue accounting, parented under the engine tracker so
  /// server buffers show up in pidx_memory_tracked_bytes and
  /// pi_stats.memory. Registered with the engine between Start and Stop.
  std::unique_ptr<obs::MemoryTracker> mem_tracker_;

  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};  // self-pipe waking the acceptor's poll
  std::uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  bool started_ = false;

  /// Admitted (queued or executing) requests across the server.
  std::atomic<std::size_t> inflight_{0};

  /// Ids handed to accepted connections (pi_stats.connections /
  /// pi_stats.queries.connection_id). Starts at 1; -1 means in-process.
  std::atomic<std::int64_t> next_connection_id_{1};

  std::thread acceptor_;
  std::vector<std::thread> workers_;

  std::mutex mu_;  // guards connections_, ready_, workers_stop_
  std::condition_variable cv_ready_;    // workers wait for ready conns
  std::condition_variable cv_drained_;  // Stop waits for queues to empty
  std::deque<std::shared_ptr<Connection>> ready_;
  std::vector<std::shared_ptr<Connection>> connections_;
  bool workers_stop_ = false;
};

}  // namespace patchindex::net

#endif  // PATCHINDEX_SERVER_SERVER_H_
