// The engine-side pisql meta commands, shared by the local shell and the
// network server (kMeta frames). The output formats here are golden —
// tools/pisql_smoke.expected diffs against them in CI, both through local
// pisql and through `pisql --connect` — so changes must update the
// expected transcript too.

#include "server/meta_commands.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "storage/csv.h"
#include "workload/generator.h"

namespace patchindex {

namespace {

/// printf-style append onto a std::string.
#if defined(__GNUC__)
__attribute__((format(printf, 2, 3)))
#endif
void Appendf(std::string* out, const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  if (n > 0) {
    std::vector<char> buf(static_cast<std::size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args);
    out->append(buf.data(), static_cast<std::size_t>(n));
  }
  va_end(args);
}

std::vector<std::string> SplitWords(const std::string& line) {
  std::vector<std::string> words;
  std::istringstream in(line);
  std::string word;
  while (in >> word) words.push_back(word);
  return words;
}

std::string Trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  std::size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

}  // namespace

std::vector<std::string> StatementSplitter::Feed(const std::string& line) {
  pending_ += (pending_.empty() ? "" : "\n") + line;
  std::vector<std::string> out;
  std::size_t start = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < pending_.size(); ++i) {
    const char c = pending_[i];
    if (c == '\'') in_string = !in_string;
    if (c == ';' && !in_string) {
      const std::string stmt = pending_.substr(start, i + 1 - start);
      if (Trim(stmt) != ";") out.push_back(stmt);
      start = i + 1;
    }
  }
  pending_.erase(0, start);
  if (Trim(pending_).empty()) pending_.clear();
  return out;
}

namespace {

std::string MetaTables(Engine& engine) {
  std::string out;
  for (const std::string& name : engine.catalog().TableNames()) {
    const PartitionedTable* t = engine.catalog().FindPartitionedTable(name);
    // A concurrent DropTable may have removed the table between
    // TableNames() and the lookup; skip rather than crash.
    if (t == nullptr) continue;
    if (t->num_partitions() > 1) {
      Appendf(&out, "%s (%llu rows, %zu partitions)\n", name.c_str(),
              static_cast<unsigned long long>(t->num_visible_rows()),
              t->num_partitions());
    } else {
      Appendf(&out, "%s (%llu rows)\n", name.c_str(),
              static_cast<unsigned long long>(t->num_visible_rows()));
    }
  }
  return out;
}

std::string MetaSchema(Engine& engine, const std::string& table) {
  const PartitionedTable* t = engine.catalog().FindPartitionedTable(table);
  if (t == nullptr) {
    return "error: unknown table '" + table + "'\n";
  }
  std::string out;
  for (const Field& f : t->schema().fields()) {
    Appendf(&out, "%s %s\n", f.name.c_str(), ColumnTypeName(f.type));
  }
  return out;
}

std::string MetaLoad(Engine& engine, const std::vector<std::string>& words) {
  Result<Schema> schema = InferCsvSchema(words[1]);
  if (!schema.ok()) {
    return "error: " + schema.status().ToString() + "\n";
  }
  Result<std::unique_ptr<Table>> table = LoadCsvTable(words[1], schema.value());
  if (!table.ok()) {
    return "error: " + table.status().ToString() + "\n";
  }
  const auto rows = table.value()->num_rows();
  std::size_t parts = 1;
  if (words.size() == 4) {
    char* end = nullptr;
    parts = std::strtoull(words[3].c_str(), &end, 10);
    if (end == words[3].c_str() || *end != '\0' || parts == 0 ||
        parts > Catalog::kMaxPartitions) {
      std::string out;
      Appendf(&out, "error: partition count must be 1..%zu, got '%s'\n",
              Catalog::kMaxPartitions, words[3].c_str());
      return out;
    }
  }
  Status added = Status::OK();
  if (parts > 1) {
    // Redistribute the loaded rows over the partitions (least-loaded
    // routing keeps them balanced).
    auto pt = std::make_unique<PartitionedTable>(schema.value(), parts);
    const Table& src = *table.value();
    for (RowId r = 0; r < src.num_rows(); ++r) {
      Row row;
      for (std::size_t c = 0; c < schema.value().num_fields(); ++c) {
        row.cells.push_back(src.column(c).Get(r));
      }
      pt->AppendRow(row);
    }
    added =
        engine.catalog().AddPartitionedTable(words[2], std::move(pt)).status();
  } else {
    added =
        engine.catalog().AddTable(words[2], std::move(table).value()).status();
  }
  if (!added.ok()) {
    return "error: " + added.ToString() + "\n";
  }
  std::string out;
  if (parts > 1) {
    Appendf(&out, "loaded %llu rows into '%s' (%zu partitions)\n",
            static_cast<unsigned long long>(rows), words[2].c_str(), parts);
  } else {
    Appendf(&out, "loaded %llu rows into '%s'\n",
            static_cast<unsigned long long>(rows), words[2].c_str());
  }
  return out;
}

std::string MetaGen(Engine& engine, const std::vector<std::string>& words) {
  GeneratorConfig cfg;
  cfg.num_rows = std::strtoull(words[3].c_str(), nullptr, 10);
  if (words.size() == 5) {
    cfg.exception_rate = std::strtod(words[4].c_str(), nullptr);
  }
  Table table =
      words[1] == "nsc" ? GenerateNscTable(cfg) : GenerateNucTable(cfg);
  Result<Table*> added = engine.catalog().AddTable(
      words[2], std::make_unique<Table>(std::move(table)));
  if (!added.ok()) {
    return "error: " + added.status().ToString() + "\n";
  }
  std::string out;
  Appendf(&out, "generated %s table '%s' (%llu rows, %.0f%% exceptions)\n",
          words[1] == "nsc" ? "NSC" : "NUC", words[2].c_str(),
          static_cast<unsigned long long>(cfg.num_rows),
          cfg.exception_rate * 100.0);
  return out;
}

std::string MetaIndex(Engine& engine, Session& session,
                      const std::vector<std::string>& words) {
  const PartitionedTable* t = engine.catalog().FindPartitionedTable(words[1]);
  if (t == nullptr) {
    return "error: unknown table '" + words[1] + "'\n";
  }
  const int col = t->schema().ColumnIndex(words[2]);
  if (col < 0) {
    return "error: unknown column '" + words[2] + "'\n";
  }
  ConstraintKind kind;
  if (words[3] == "nuc" || words[3] == "NUC") {
    kind = ConstraintKind::kNearlyUnique;
  } else if (words[3] == "nsc" || words[3] == "NSC") {
    kind = ConstraintKind::kNearlySorted;
  } else if (words[3] == "ncc" || words[3] == "NCC") {
    kind = ConstraintKind::kNearlyConstant;
  } else {
    return "error: constraint must be nuc, nsc or ncc\n";
  }
  Status st =
      session.CreatePatchIndex(words[1], static_cast<std::size_t>(col), kind);
  if (!st.ok()) {
    return "error: " + st.ToString() + "\n";
  }
  // Report the observed exception rate across the per-partition indexes
  // (one each; a single-partition table has exactly one).
  std::uint64_t patches = 0;
  std::uint64_t rows = 0;
  for (const PatchIndex* idx : engine.catalog().manager().IndexesOn(*t)) {
    if (idx->column() == static_cast<std::size_t>(col) &&
        idx->constraint() == kind) {
      patches += idx->NumPatches();
      rows += idx->NumRows();
    }
  }
  const char* name = words[3] == "ncc" || words[3] == "NCC"   ? "NCC"
                     : words[3] == "nsc" || words[3] == "NSC" ? "NSC"
                                                              : "NUC";
  std::string out;
  if (t->num_partitions() > 1) {
    Appendf(&out,
            "created %s index on %s.%s (%zu partitions, %.2f%% "
            "exceptions)\n",
            name, words[1].c_str(), words[2].c_str(), t->num_partitions(),
            rows == 0 ? 0.0
                      : static_cast<double>(patches) /
                            static_cast<double>(rows) * 100.0);
  } else {
    Appendf(&out, "created %s index on %s.%s (%.2f%% exceptions)\n", name,
            words[1].c_str(), words[2].c_str(),
            rows == 0 ? 0.0
                      : static_cast<double>(patches) /
                            static_cast<double>(rows) * 100.0);
  }
  return out;
}

std::string MetaExplain(Session& session, const std::string& line) {
  const std::string sql = Trim(line.substr(std::string(".explain").size()));
  Result<std::string> plan = session.Explain(sql);
  if (!plan.ok()) {
    return "error: " + plan.status().ToString() + "\n";
  }
  return plan.value();
}

std::string MetaCounters(Session& session) {
  const ExecPathCounters& c = session.path_counters();
  std::string out;
  Appendf(&out,
          "parallel_pipelines=%llu parallel_joins=%llu "
          "parallel_sorts=%llu serial_fallbacks=%llu\n",
          static_cast<unsigned long long>(c.parallel_pipelines.load()),
          static_cast<unsigned long long>(c.parallel_joins.load()),
          static_cast<unsigned long long>(c.parallel_sorts.load()),
          static_cast<unsigned long long>(c.serial_fallbacks.load()));
  return out;
}

/// The engine's metrics registry in one-line-per-metric text form —
/// counters, gauges, and histogram summaries (count/mean/percentiles).
std::string MetaStats(Engine& engine) { return engine.metrics().RenderText(); }

}  // namespace

std::string RunMetaCommand(Engine& engine, Session& session,
                           const std::string& line) {
  const std::vector<std::string> words = SplitWords(line);
  if (words.empty()) {
    return "error: unknown or malformed command '' (try .help)\n";
  }
  const std::string& cmd = words[0];
  if (cmd == ".tables") return MetaTables(engine);
  if (cmd == ".schema" && words.size() == 2) {
    return MetaSchema(engine, words[1]);
  }
  if (cmd == ".load" && (words.size() == 3 || words.size() == 4)) {
    return MetaLoad(engine, words);
  }
  if (cmd == ".gen" && (words.size() == 4 || words.size() == 5)) {
    return MetaGen(engine, words);
  }
  if (cmd == ".index" && words.size() == 4) {
    return MetaIndex(engine, session, words);
  }
  if (cmd == ".explain" && words.size() >= 2) {
    return MetaExplain(session, line);
  }
  if (cmd == ".counters") return MetaCounters(session);
  if (cmd == ".stats") return MetaStats(engine);
  return "error: unknown or malformed command '" + cmd + "' (try .help)\n";
}

}  // namespace patchindex
