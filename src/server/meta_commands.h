#ifndef PATCHINDEX_SERVER_META_COMMANDS_H_
#define PATCHINDEX_SERVER_META_COMMANDS_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "engine/engine.h"

namespace patchindex {

/// Accumulates pisql-script lines and yields complete `;`-terminated
/// SQL statements: one line may hold several statements, a statement
/// may span lines, and semicolons inside string literals do not split
/// (the '' escape is two quotes, so plain quote toggling handles it).
/// Shared by the pisql shell and piserver --init so the two cannot
/// drift apart in how they read the same scripts.
class StatementSplitter {
 public:
  /// Feeds one raw script line; returns the statements it completed,
  /// each including its terminating ';' (bare ";" statements are
  /// dropped).
  std::vector<std::string> Feed(const std::string& line);

  /// True while a partial statement is buffered — the shell's
  /// continuation prompt; an error for non-interactive script runners
  /// reaching end of input.
  bool pending() const { return !pending_.empty(); }

 private:
  std::string pending_;
};

/// Executes one pisql meta command (".tables", ".schema t", ".load ...",
/// ".gen ...", ".index ...", ".explain <sql>", ".counters") against an
/// engine + session, returning the printable output — the exact text the
/// pisql shell shows, including "error: ..." lines for command-level
/// failures (pisql keeps the session going after those, so they are
/// output, not a Status).
///
/// This is the engine-side half of the shell, shared verbatim by local
/// pisql and by PiServer's kMeta frame handler so `pisql --connect` runs
/// the same scripts with byte-identical output. Purely client-side
/// commands (.help, .timer, .quit) are handled by the shell and never
/// reach this function; an unrecognized or malformed command returns the
/// shell's usual "error: unknown or malformed command" text.
///
/// Thread safety: like any Session use — .load/.gen/.index take the
/// catalog and table locks they need; concurrent meta commands from
/// different connections behave like concurrent DDL.
std::string RunMetaCommand(Engine& engine, Session& session,
                           const std::string& line);

}  // namespace patchindex

#endif  // PATCHINDEX_SERVER_META_COMMANDS_H_
