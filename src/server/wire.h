#ifndef PATCHINDEX_SERVER_WIRE_H_
#define PATCHINDEX_SERVER_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "engine/engine.h"
#include "storage/value.h"

namespace patchindex::net {

/// The SQL-over-TCP wire protocol shared by PiServer and PiClient.
///
/// Every message is one length-prefixed frame:
///
///   u32 LE length | u8 type | payload[length - 1]
///
/// where `length` counts the type byte plus the payload. Integers are
/// little-endian; doubles travel as their IEEE-754 bit pattern in a u64;
/// strings are `u32 length + bytes` (no terminator, UTF-8 agnostic).
///
/// A session is: client sends kHello (its protocol version), server
/// answers kWelcome (the negotiated version) or kError and closes. After
/// the handshake the client sends request frames (kQuery, kPrepare,
/// kExecute, kCloseStmt, kMeta, kGoodbye) and the server answers each
/// request with exactly one response sequence, in request order:
///
///   kQuery / kExecute -> kResultHeader, kRowBatch*, kResultEnd | kError
///   kPrepare          -> kPrepared | kError
///   kCloseStmt        -> kStmtClosed | kError
///   kMeta             -> kMetaResult | kError
///
/// Requests may be pipelined; the server bounds the per-connection queue
/// and answers over-limit requests with a kError frame carrying
/// StatusCode::kUnavailable (the SERVER_BUSY rejection) instead of
/// growing without bound.
/// Version history: v1 = the original frame set; v2 adds the phase-span
/// block to kResultHeader (u8 has_profile + 7 f64 phase milliseconds) so
/// remote clients can show the same `.timing` breakdown as local ones.
inline constexpr std::uint32_t kProtocolVersion = 2;

/// Hard ceiling on one frame's size, both directions — a hostile or
/// corrupt length prefix must not turn into a multi-gigabyte allocation.
inline constexpr std::uint32_t kMaxFrameBytes = 64u << 20;

/// Row and byte caps per kRowBatch frame while streaming a result set:
/// a batch closes at whichever limit it hits first, so wide string rows
/// cannot push one frame toward kMaxFrameBytes.
inline constexpr std::size_t kRowsPerWireBatch = 4096;
inline constexpr std::size_t kWireBatchSoftBytes = 1u << 20;

enum class FrameType : std::uint8_t {
  // client -> server
  kHello = 1,      // u32 protocol version
  kQuery = 2,      // string sql, params
  kPrepare = 3,    // string sql
  kExecute = 4,    // u64 statement id, params
  kCloseStmt = 5,  // u64 statement id
  kMeta = 6,       // string meta-command line (".tables", ".gen ...")
  kGoodbye = 7,    // empty; client is done

  // server -> client
  kWelcome = 16,       // u32 protocol version
  kResultHeader = 17,  // u64 rows_affected, u8 exec flags, profile, columns
  kRowBatch = 18,      // u32 row count, cells (typed by the header)
  kResultEnd = 19,     // u64 total streamed rows
  kError = 20,         // u8 status code, u32 line, u32 column, string msg
  kPrepared = 21,      // u64 statement id, u32 parameter count
  kStmtClosed = 22,    // empty
  kMetaResult = 23,    // string printable output
};

/// Bit flags of kResultHeader's exec byte — QueryResult's execution-path
/// booleans, so a remote client sees how its query ran.
inline constexpr std::uint8_t kExecParallel = 1u << 0;
inline constexpr std::uint8_t kExecParallelJoin = 1u << 1;
inline constexpr std::uint8_t kExecParallelSort = 1u << 2;

/// Serializes primitive values into a frame payload.
class WireWriter {
 public:
  void PutU8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void PutU32(std::uint32_t v);
  void PutU64(std::uint64_t v);
  void PutI64(std::int64_t v) { PutU64(static_cast<std::uint64_t>(v)); }
  void PutF64(double v);
  void PutString(std::string_view s);
  /// Appends pre-encoded bytes (composing a frame from parts).
  void PutRaw(std::string_view bytes) { buf_.append(bytes); }

  const std::string& payload() const { return buf_; }

 private:
  std::string buf_;
};

/// Bounds-checked deserialization of a frame payload. Every getter
/// returns kInvalidArgument on truncation, so a malformed frame surfaces
/// as a clean error instead of UB.
class WireReader {
 public:
  explicit WireReader(std::string_view payload) : buf_(payload) {}

  Status GetU8(std::uint8_t* v);
  Status GetU32(std::uint32_t* v);
  Status GetU64(std::uint64_t* v);
  Status GetI64(std::int64_t* v);
  Status GetF64(double* v);
  Status GetString(std::string* s);

  /// True when the whole payload has been consumed — responders check it
  /// to reject trailing garbage.
  bool AtEnd() const { return pos_ == buf_.size(); }

  /// Unconsumed payload bytes. Decoders use it to sanity-bound embedded
  /// element counts before allocating.
  std::size_t remaining() const { return buf_.size() - pos_; }

 private:
  std::string_view buf_;
  std::size_t pos_ = 0;
};

// ------------------------------------------------------------- frame I/O

/// Writes one frame to a connected socket, looping over partial writes.
/// Fails with kUnavailable when the peer has gone away (EPIPE /
/// ECONNRESET), kInternal on other socket errors.
Status WriteFrame(int fd, FrameType type, std::string_view payload);

/// Reads one frame. A clean EOF at a frame boundary yields kUnavailable
/// ("connection closed by peer"); EOF inside a frame, an oversized length
/// prefix, or an unknown socket error yield kInvalidArgument/kInternal.
Status ReadFrame(int fd, FrameType* type, std::string* payload);

// --------------------------------------------------- typed payload parts

/// One dynamically-typed value: u8 type tag (ColumnType) + payload.
void EncodeValue(WireWriter* w, const Value& v);
Status DecodeValue(WireReader* r, Value* v);

/// A parameter list: u32 count + values.
void EncodeParams(WireWriter* w, const std::vector<Value>& params);
Status DecodeParams(WireReader* r, std::vector<Value>* params);

/// kResultHeader payload from a QueryResult (everything but the rows).
void EncodeResultHeader(WireWriter* w, const QueryResult& result);
/// Fills names/types/rows_affected/flags back in; `result->rows` is reset
/// to the decoded column types, ready for AppendRowBatch.
Status DecodeResultHeader(WireReader* r, QueryResult* result);

/// One row's cells, typed by the batch's own column vectors (the
/// decoder knows them from the header). The server composes
/// byte-bounded kRowBatch frames from these: `u32 row count` +
/// EncodeRow per row (see PiServer's SendResult).
void EncodeRow(WireWriter* w, const Batch& rows, std::size_t r);
/// Appends a kRowBatch's rows onto `rows` (already Reset to the header's
/// types). Synthesizes sequential rowIDs — server rowIDs are an engine
/// detail that does not travel.
Status DecodeRowBatch(WireReader* r, Batch* rows);

/// kError payload: u8 StatusCode, u32 line, u32 column (0,0 when the
/// error carries no source position), string message. The position is
/// extracted from the trailing "line L, column C" that the SQL front end
/// embeds in its messages, so structured clients need not parse text.
void EncodeError(WireWriter* w, const Status& status);
/// Reconstructs the Status (same code, same message — ToString output is
/// byte-identical across the wire). `line`/`column` may be null.
Status DecodeError(WireReader* r, Status* status, std::uint32_t* line,
                   std::uint32_t* column);

/// Finds the last "line L, column C" occurrence in an error message.
/// Returns false (and leaves outputs untouched) when there is none.
bool ExtractSourceLoc(std::string_view message, std::uint32_t* line,
                      std::uint32_t* column);

}  // namespace patchindex::net

#endif  // PATCHINDEX_SERVER_WIRE_H_
