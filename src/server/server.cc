#include "server/server.h"

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <unordered_map>
#include <utility>

#include "common/check.h"
#include "common/epoch_gc.h"
#include "common/timer.h"
#include "obs/mem_tracker.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "server/meta_commands.h"
#include "server/wire.h"

namespace patchindex::net {

/// One decoded client request (or its rejection / a protocol failure),
/// queued per connection so responses leave in request order.
struct Task {
  enum class Kind { kQuery, kPrepare, kExecute, kCloseStmt, kMeta, kFatal };

  Kind kind = Kind::kQuery;
  /// True when the task holds an admission slot; false tasks are
  /// answered with the kUnavailable error in `reject_reason`.
  bool admitted = false;
  std::string text;  // sql (kQuery/kPrepare) or meta line (kMeta)
  std::vector<Value> params;
  std::uint64_t stmt_id = 0;
  Status error;  // kFatal: the protocol error to report before closing
  std::string reject_reason;
  /// When the reader queued the task — the worker records the queue wait
  /// (pickup time minus this) into pidx_server_queue_wait_us.
  std::chrono::steady_clock::time_point enqueued;
  /// Request bytes charged to the server's memory tracker at admission;
  /// the worker releases them after the task is processed.
  std::uint64_t charged_bytes = 0;
};

/// Per-client state. The reader thread decodes frames into `queue`;
/// exactly one worker at a time drains it (worker_active), so `session`,
/// `stmts` and the socket writes need no further synchronization.
struct Connection {
  explicit Connection(Engine& engine) : session(engine.CreateSession()) {}

  ~Connection() {
    if (reader.joinable()) reader.join();
    if (fd >= 0) ::close(fd);
  }

  int fd = -1;
  std::thread reader;
  Session session;

  /// Server-wide connection id; tags the session's statements in
  /// pi_stats.queries and keys pi_stats.connections.
  std::int64_t id = -1;
  /// Peer address ("host:port", numeric) for pi_stats.connections.
  std::string remote;
  /// Statements this connection has executed (kQuery + kExecute).
  /// Atomic: bumped by the processing worker, read by
  /// pi_stats.connections snapshots from other sessions' workers.
  std::atomic<std::uint64_t> queries{0};

  std::mutex mu;  // guards everything below
  std::condition_variable cv_space;  // reader waits for queue space
  std::deque<Task> queue;
  std::size_t admitted_pending = 0;  // admitted tasks queued or executing
  bool in_ready = false;       // scheduled in PiServer::ready_
  bool worker_active = false;  // a worker is processing a task
  bool reader_done = false;    // reader thread exited
  bool broken = false;         // socket failed; drop remaining writes
  bool finished = false;       // fd closed, ready to reap

  /// Prepared statements of this connection, keyed by wire id. Touched
  /// only under the one-worker-at-a-time task serialization.
  std::unordered_map<std::uint64_t, PreparedStatement> stmts;
  std::uint64_t next_stmt_id = 1;

  /// Retires the connection: closes the socket and hands the heavy
  /// state (prepared plans, queued tasks) to the epoch GC — the struct
  /// itself lingers in PiServer::connections_ until the next accept or
  /// Stop reaps it (joining the reader thread), but must not retain
  /// engine state that long. Destruction is deferred through the global
  /// EpochGc rather than run inline: it keeps the (possibly large) plan
  /// teardown off `mu`, and any observer that resolved pointers into
  /// this state under an epoch guard keeps them valid until its guard
  /// releases — the same reclamation protocol MVCC readers and the
  /// flight recorder's registry use. Call with `mu` held, reader done,
  /// queue drained, no worker active.
  void FinalizeLocked() {
    finished = true;
    if (fd >= 0) {
      ::close(fd);
      fd = -1;
    }
    auto stale = std::make_shared<
        std::pair<std::unordered_map<std::uint64_t, PreparedStatement>,
                  std::deque<Task>>>(std::move(stmts), std::move(queue));
    EpochGc::Global().Retire([stale]() mutable { stale.reset(); });
    stmts.clear();  // moved-from: back to a known-empty state
    queue.clear();
  }
};

namespace {

Status MakeListenSocket(const std::string& host, std::uint16_t port,
                        int* out_fd, std::uint16_t* out_port) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_PASSIVE | AI_NUMERICSERV;
  addrinfo* res = nullptr;
  const std::string service = std::to_string(port);
  const int rc = ::getaddrinfo(host.c_str(), service.c_str(), &hints, &res);
  if (rc != 0) {
    return Status::Unavailable("cannot resolve listen address '" + host +
                               "': " + gai_strerror(rc));
  }
  Status last = Status::Unavailable("no usable address for '" + host + "'");
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    if (::bind(fd, ai->ai_addr, ai->ai_addrlen) != 0 ||
        ::listen(fd, 128) != 0) {
      last = Status::Unavailable(std::string("cannot listen on ") + host +
                                 ":" + service + ": " + std::strerror(errno));
      ::close(fd);
      continue;
    }
    sockaddr_storage bound{};
    socklen_t len = sizeof bound;
    std::uint16_t actual = port;
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
      if (bound.ss_family == AF_INET) {
        actual =
            ntohs(reinterpret_cast<sockaddr_in*>(&bound)->sin_port);
      } else if (bound.ss_family == AF_INET6) {
        actual =
            ntohs(reinterpret_cast<sockaddr_in6*>(&bound)->sin6_port);
      }
    }
    ::freeaddrinfo(res);
    *out_fd = fd;
    *out_port = actual;
    return Status::OK();
  }
  ::freeaddrinfo(res);
  return last;
}

/// Returns the transport status: ProcessTask must treat a failed error
/// send like any other write failure (the stream may hold a partial
/// frame — nothing sent after it would parse). Handshake/greeting
/// callers ignore it, as those connections are being dropped anyway.
Status SendErrorFrame(int fd, const Status& status) {
  WireWriter w;
  EncodeError(&w, status);
  return WriteFrame(fd, FrameType::kError, w.payload());
}

/// Best-effort accounting of result bytes streamed to a client: charges
/// accumulate while the frames are encoded and written and release when
/// the response is done (the per-query tracker released the statement's
/// balance when it retired, so the materialized result riding the server
/// worker is otherwise invisible). TryCharge, never Charge — hitting the
/// engine limit mid-stream must not abort a response whose header is
/// already on the wire; the bytes simply go unaccounted.
class ScopedResultBytes {
 public:
  explicit ScopedResultBytes(obs::MemoryTracker* mem) : mem_(mem) {}
  ~ScopedResultBytes() {
    if (charged_ != 0) mem_->Release(charged_);
  }
  void Add(std::uint64_t bytes) {
    if (mem_ == nullptr) return;
    std::string scope;
    if (mem_->TryCharge(bytes, &scope)) charged_ += bytes;
  }

 private:
  obs::MemoryTracker* mem_;
  std::uint64_t charged_ = 0;
};

/// Streams a QueryResult as header + row batches + end. Batches close
/// at kRowsPerWireBatch rows or kWireBatchSoftBytes bytes, whichever
/// comes first, so wide string rows never push a frame toward the
/// kMaxFrameBytes ceiling. Returns the first write failure so the
/// caller can mark the connection broken.
Status SendResult(int fd, const QueryResult& result,
                  obs::MemoryTracker* mem) {
  ScopedResultBytes bytes(mem);
  {
    WireWriter w;
    EncodeResultHeader(&w, result);
    bytes.Add(w.payload().size());
    PIDX_RETURN_NOT_OK(WriteFrame(fd, FrameType::kResultHeader, w.payload()));
  }
  const std::size_t total = result.rows.num_rows();
  std::size_t begin = 0;
  while (begin < total) {
    WireWriter body;
    std::size_t end = begin;
    while (end < total && end - begin < kRowsPerWireBatch &&
           body.payload().size() < kWireBatchSoftBytes) {
      EncodeRow(&body, result.rows, end);
      ++end;
    }
    WireWriter w;
    w.PutU32(static_cast<std::uint32_t>(end - begin));
    w.PutRaw(body.payload());
    bytes.Add(w.payload().size());
    PIDX_RETURN_NOT_OK(WriteFrame(fd, FrameType::kRowBatch, w.payload()));
    begin = end;
  }
  WireWriter w;
  w.PutU64(total);
  return WriteFrame(fd, FrameType::kResultEnd, w.payload());
}

}  // namespace

PiServer::PiServer(Engine& engine, ServerOptions options)
    : engine_(engine),
      options_(std::move(options)),
      mem_tracker_(std::make_unique<obs::MemoryTracker>("server",
                                                        &engine.memory())) {}

void PiServer::RegisterMetrics() {
  obs::MetricsRegistry& r = engine_.metrics();
  // ServerStats folded into the registry as callbacks: one source of
  // truth, zero extra per-query work. Stop() freezes them to their final
  // values so the registry stays valid after the server is destroyed.
  const ServerStats* stats = &stats_;
  r.SetCallback("pidx_server_connections_accepted_total",
                "Client connections accepted",
                [stats] { return stats->connections_accepted.load(); });
  r.SetCallback("pidx_server_connections_rejected_total",
                "Connections rejected at the connection limit",
                [stats] { return stats->connections_rejected.load(); });
  r.SetCallback("pidx_server_queries_executed_total",
                "Queries executed (kQuery + kExecute frames)",
                [stats] { return stats->queries_executed.load(); });
  r.SetCallback("pidx_server_queries_rejected_busy_total",
                "Queries rejected with SERVER_BUSY",
                [stats] { return stats->queries_rejected_busy.load(); });
  r.SetCallback("pidx_server_queries_rejected_memory_total",
                "Queries rejected at the memory admission high-watermark",
                [stats] { return stats->queries_rejected_memory.load(); });
  r.SetCallback("pidx_server_protocol_errors_total",
                "Malformed frames / handshake failures",
                [stats] { return stats->protocol_errors.load(); });
  if (engine_.options().enable_metrics) {
    query_latency_us_ = r.GetHistogram(
        "pidx_server_query_latency_us",
        "End-to-end query time in a server worker (execute + respond)");
    queue_wait_us_ = r.GetHistogram(
        "pidx_server_queue_wait_us",
        "Admitted-task wait between enqueue and worker pickup");
    wait_queue_us_ = r.GetHistogram(
        "pidx_wait_server_queue_us",
        "Wait event: admitted request sat in its connection queue before "
        "a worker picked it up");
    slow_queries_ = r.GetCounter(
        "pidx_server_slow_queries_total",
        "Queries at or over ServerOptions::slow_query_ms");
  }
}

void PiServer::LogSlowQuery(const std::string& sql, double total_ms,
                            const obs::QueryProfile* profile) {
  if (slow_queries_ != nullptr) slow_queries_->Add(1);
  char buf[256];
  std::string line;
  std::snprintf(buf, sizeof buf, "slow query (%.3f ms): ", total_ms);
  line += buf;
  line += sql;
  if (profile != nullptr) {
    std::snprintf(buf, sizeof buf,
                  " -- phases: parse=%.3fms bind=%.3fms optimize=%.3fms "
                  "execute=%.3fms lock=%.3fms commit=%.3fms",
                  profile->parse_ms, profile->bind_ms, profile->optimize_ms,
                  profile->execute_ms, profile->commit_wait_ms,
                  profile->commit_ms);
    line += buf;
  }
  if (options_.slow_query_sink) {
    options_.slow_query_sink(line);
  } else {
    std::fprintf(stderr, "%s\n", line.c_str());
  }
}

PiServer::~PiServer() { Stop(); }

Status PiServer::Start() {
  PIDX_CHECK_MSG(!started_, "PiServer::Start called twice");
  if (::pipe(wake_pipe_) != 0) {
    return Status::Internal(std::string("pipe failed: ") +
                            std::strerror(errno));
  }
  Status st =
      MakeListenSocket(options_.host, options_.port, &listen_fd_, &port_);
  if (!st.ok()) {
    ::close(wake_pipe_[0]);
    ::close(wake_pipe_[1]);
    wake_pipe_[0] = wake_pipe_[1] = -1;
    return st;
  }
  started_ = true;
  stopping_.store(false);
  RegisterMetrics();
  engine_.SetServerMemoryTracker(mem_tracker_.get());
  // pi_stats.connections: snapshot the live connection list on demand.
  // Lock order mu_ -> conn->mu matches every other server path. Removed
  // in Stop() before the connection list is torn down.
  engine_.SetConnectionsProvider([this] {
    std::vector<obs::ConnectionInfo> out;
    const bool draining = stopping_.load();
    std::lock_guard<std::mutex> lock(mu_);
    out.reserve(connections_.size());
    for (const auto& conn : connections_) {
      std::lock_guard<std::mutex> cl(conn->mu);
      if (conn->finished) continue;
      obs::ConnectionInfo info;
      info.connection_id = conn->id;
      info.session_id = static_cast<std::int64_t>(conn->session.session_id());
      info.remote = conn->remote;
      info.state = draining ? "draining" : "open";
      info.queue_depth = static_cast<std::int64_t>(conn->queue.size());
      info.queries = static_cast<std::int64_t>(conn->queries.load());
      out.push_back(std::move(info));
    }
    return out;
  });
  const std::size_t workers = std::max<std::size_t>(1, options_.query_workers);
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  acceptor_ = std::thread([this] { AcceptorLoop(); });
  return Status::OK();
}

void PiServer::Stop() {
  if (!started_) return;
  stopping_.store(true);

  // Wake and retire the acceptor: no new connections from here on.
  if (wake_pipe_[1] >= 0) {
    const char byte = 'x';
    (void)!::write(wake_pipe_[1], &byte, 1);
  }
  if (acceptor_.joinable()) acceptor_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (wake_pipe_[0] >= 0) {
    ::close(wake_pipe_[0]);
    ::close(wake_pipe_[1]);
    wake_pipe_[0] = wake_pipe_[1] = -1;
  }

  // Wake every reader: a half-close makes its next recv() return EOF
  // while requests already decoded stay queued — those drain below.
  std::vector<std::shared_ptr<Connection>> conns;
  {
    std::lock_guard<std::mutex> lock(mu_);
    conns = connections_;
  }
  for (const auto& conn : conns) {
    std::lock_guard<std::mutex> lock(conn->mu);
    if (!conn->finished && conn->fd >= 0) {
      ::shutdown(conn->fd, SHUT_RD);
    }
    conn->cv_space.notify_all();
  }
  for (const auto& conn : conns) {
    if (conn->reader.joinable()) conn->reader.join();
  }

  // Drain: workers finish every queued request and deliver its response.
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_drained_.wait(lock, [&] {
      for (const auto& conn : connections_) {
        std::lock_guard<std::mutex> cl(conn->mu);
        if (!conn->queue.empty() || conn->worker_active) return false;
      }
      return true;
    });
    workers_stop_ = true;
  }
  cv_ready_.notify_all();
  for (std::thread& w : workers_) w.join();
  workers_.clear();

  // No queries can run pi_stats.connections snapshots past this point
  // (workers are joined); deregister before tearing the list down so the
  // engine never calls into freed server state. Same for the memory
  // tracker: pi_stats.memory samples it only while registered.
  engine_.SetConnectionsProvider(nullptr);
  engine_.SetServerMemoryTracker(nullptr);

  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& conn : connections_) {
      std::lock_guard<std::mutex> cl(conn->mu);
      if (!conn->finished) conn->FinalizeLocked();
    }
    connections_.clear();
    ready_.clear();
    workers_stop_ = false;
  }

  // Freeze the ServerStats callbacks to their final values: the engine's
  // registry outlives this server, and a callback reading freed memory
  // would be a use-after-free on the next render.
  obs::MetricsRegistry& r = engine_.metrics();
  const std::uint64_t accepted = stats_.connections_accepted.load();
  r.SetCallback("pidx_server_connections_accepted_total",
                "Client connections accepted",
                [accepted] { return accepted; });
  const std::uint64_t rejected = stats_.connections_rejected.load();
  r.SetCallback("pidx_server_connections_rejected_total",
                "Connections rejected at the connection limit",
                [rejected] { return rejected; });
  const std::uint64_t executed = stats_.queries_executed.load();
  r.SetCallback("pidx_server_queries_executed_total",
                "Queries executed (kQuery + kExecute frames)",
                [executed] { return executed; });
  const std::uint64_t busy = stats_.queries_rejected_busy.load();
  r.SetCallback("pidx_server_queries_rejected_busy_total",
                "Queries rejected with SERVER_BUSY",
                [busy] { return busy; });
  const std::uint64_t memory = stats_.queries_rejected_memory.load();
  r.SetCallback("pidx_server_queries_rejected_memory_total",
                "Queries rejected at the memory admission high-watermark",
                [memory] { return memory; });
  const std::uint64_t proto = stats_.protocol_errors.load();
  r.SetCallback("pidx_server_protocol_errors_total",
                "Malformed frames / handshake failures",
                [proto] { return proto; });

  started_ = false;
}

void PiServer::AcceptorLoop() {
  for (;;) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_pipe_[0], POLLIN, 0}};
    const int n = ::poll(fds, 2, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if ((fds[1].revents & (POLLIN | POLLHUP)) != 0 || stopping_.load()) {
      return;
    }
    if ((fds[0].revents & POLLIN) == 0) continue;
    sockaddr_storage peer{};
    socklen_t peer_len = sizeof peer;
    const int cfd = ::accept(
        listen_fd_, reinterpret_cast<sockaddr*>(&peer), &peer_len);
    if (cfd < 0) {
      if (errno == EBADF || errno == EINVAL) return;  // socket torn down
      // Anything else — EMFILE/ENFILE fd pressure, ENOBUFS/ENOMEM,
      // aborted peers — is transient: a dead acceptor would turn
      // recoverable pressure into a permanent silent outage. Back off
      // briefly and keep accepting.
      if (errno != EINTR && errno != ECONNABORTED) {
        timespec ts{0, 10 * 1000 * 1000};
        ::nanosleep(&ts, nullptr);
      }
      continue;
    }
    const int one = 1;
    ::setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    if (options_.write_timeout_seconds > 0) {
      // A worker must never block in send() forever on a peer that
      // stopped reading (see ServerOptions::write_timeout_seconds).
      timeval tv{};
      tv.tv_sec = static_cast<time_t>(options_.write_timeout_seconds);
      ::setsockopt(cfd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
    }
    if (options_.handshake_timeout_seconds > 0) {
      // Armed only until the handshake completes (the reader clears
      // it): a silent connect must not hold a slot forever.
      timeval tv{};
      tv.tv_sec = static_cast<time_t>(options_.handshake_timeout_seconds);
      ::setsockopt(cfd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    }

    std::size_t active;
    {
      std::lock_guard<std::mutex> lock(mu_);
      ReapFinishedConnectionsLocked();
      active = connections_.size();
    }
    if (active >= options_.max_connections) {
      (void)SendErrorFrame(cfd, Status::Unavailable(
                              "SERVER_BUSY: connection limit reached (" +
                              std::to_string(options_.max_connections) +
                              "); retry later"));
      ::close(cfd);
      stats_.connections_rejected.fetch_add(1);
      continue;
    }

    auto conn = std::make_shared<Connection>(engine_);
    conn->fd = cfd;
    conn->id = next_connection_id_.fetch_add(1);
    conn->session.set_connection_id(conn->id);
    char peer_host[NI_MAXHOST];
    char peer_port[NI_MAXSERV];
    if (::getnameinfo(reinterpret_cast<sockaddr*>(&peer), peer_len,
                      peer_host, sizeof peer_host, peer_port,
                      sizeof peer_port,
                      NI_NUMERICHOST | NI_NUMERICSERV) == 0) {
      conn->remote = std::string(peer_host) + ":" + peer_port;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      connections_.push_back(conn);
    }
    conn->reader = std::thread([this, conn] { ReaderLoop(conn); });
    stats_.connections_accepted.fetch_add(1);
  }
}

void PiServer::ReapFinishedConnectionsLocked() {
  auto it = connections_.begin();
  while (it != connections_.end()) {
    bool finished;
    {
      std::lock_guard<std::mutex> cl((*it)->mu);
      finished = (*it)->finished;
    }
    if (finished) {
      // The reader set `finished` on its way out (or a worker did after
      // the reader was done), so the join returns promptly.
      if ((*it)->reader.joinable()) (*it)->reader.join();
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

void PiServer::ReaderLoop(const std::shared_ptr<Connection>& conn) {
  // Handshake: exactly one kHello with a version we speak.
  FrameType type;
  std::string payload;
  bool handshook = false;
  Status st = ReadFrame(conn->fd, &type, &payload);
  if (st.ok() && type == FrameType::kHello) {
    WireReader r(payload);
    std::uint32_t version = 0;
    if (r.GetU32(&version).ok() && version == kProtocolVersion) {
      WireWriter w;
      w.PutU32(kProtocolVersion);
      handshook =
          WriteFrame(conn->fd, FrameType::kWelcome, w.payload()).ok();
      if (handshook && options_.handshake_timeout_seconds > 0) {
        // Handshake done: drop the receive timeout — idle sessions are
        // legitimate and must not be disconnected.
        timeval tv{};
        ::setsockopt(conn->fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
      }
    } else {
      (void)SendErrorFrame(
          conn->fd,
          Status::InvalidArgument(
              "unsupported protocol version " + std::to_string(version) +
              " (server speaks " + std::to_string(kProtocolVersion) + ")"));
      stats_.protocol_errors.fetch_add(1);
    }
  } else if (st.ok()) {
    (void)SendErrorFrame(conn->fd,
                         Status::InvalidArgument(
                             "protocol error: expected Hello frame"));
    stats_.protocol_errors.fetch_add(1);
  }

  while (handshook) {
    st = ReadFrame(conn->fd, &type, &payload);
    if (!st.ok()) {
      // kUnavailable = the peer closed (or Stop half-closed us): done.
      // Anything else is a malformed stream — report it in order, then
      // stop reading; the stream cannot be re-synchronized.
      if (st.code() != StatusCode::kUnavailable) {
        Task fatal;
        fatal.kind = Task::Kind::kFatal;
        fatal.error = st;
        stats_.protocol_errors.fetch_add(1);
        EnqueueTask(conn, std::move(fatal));
      }
      break;
    }
    Task task;
    WireReader r(payload);
    Status decode = Status::OK();
    bool goodbye = false;
    switch (type) {
      case FrameType::kQuery:
        task.kind = Task::Kind::kQuery;
        decode = r.GetString(&task.text);
        if (decode.ok()) decode = DecodeParams(&r, &task.params);
        break;
      case FrameType::kPrepare:
        task.kind = Task::Kind::kPrepare;
        decode = r.GetString(&task.text);
        break;
      case FrameType::kExecute:
        task.kind = Task::Kind::kExecute;
        decode = r.GetU64(&task.stmt_id);
        if (decode.ok()) decode = DecodeParams(&r, &task.params);
        break;
      case FrameType::kCloseStmt:
        task.kind = Task::Kind::kCloseStmt;
        decode = r.GetU64(&task.stmt_id);
        break;
      case FrameType::kMeta:
        task.kind = Task::Kind::kMeta;
        decode = r.GetString(&task.text);
        break;
      case FrameType::kGoodbye:
        goodbye = true;
        break;
      default:
        decode = Status::InvalidArgument(
            "protocol error: unexpected frame type " +
            std::to_string(static_cast<int>(type)));
        break;
    }
    if (goodbye) break;
    if (decode.ok() && !r.AtEnd()) {
      // Reject trailing garbage: a frame that decodes but carries extra
      // bytes means the peer's framing is off — nothing after it can be
      // trusted.
      decode = Status::InvalidArgument(
          "malformed frame: trailing bytes after request payload");
    }
    if (!decode.ok()) {
      Task fatal;
      fatal.kind = Task::Kind::kFatal;
      fatal.error = decode;
      stats_.protocol_errors.fetch_add(1);
      EnqueueTask(conn, std::move(fatal));
      break;
    }
    EnqueueTask(conn, std::move(task));
  }

  std::lock_guard<std::mutex> lock(conn->mu);
  conn->reader_done = true;
  if (conn->queue.empty() && !conn->worker_active && !conn->finished) {
    conn->FinalizeLocked();
  }
}

void PiServer::EnqueueTask(const std::shared_ptr<Connection>& conn,
                           Task task) {
  // Hard cap on the whole queue, rejection markers included: when even
  // those would overflow, stop reading the socket — TCP backpressure —
  // instead of growing memory. Stop() breaks the wait so shutdown never
  // deadlocks against a stuffed queue.
  const std::size_t hard_cap = options_.max_connection_queue * 2 + 4;
  bool need_push = false;
  {
    std::unique_lock<std::mutex> lock(conn->mu);
    conn->cv_space.wait(lock, [&] {
      return conn->queue.size() < hard_cap || stopping_.load() ||
             conn->broken;
    });
    if (conn->broken) return;
    if (task.kind != Task::Kind::kFatal) {
      if (stopping_.load()) {
        task.admitted = false;
        task.reject_reason = "server shutting down";
      } else if (conn->admitted_pending >= options_.max_connection_queue) {
        task.admitted = false;
        task.reject_reason =
            "SERVER_BUSY: per-connection queue full (" +
            std::to_string(options_.max_connection_queue) +
            " requests pending); retry later";
      } else if (options_.memory_soft_limit > 0 &&
                 engine_.memory().current() >= options_.memory_soft_limit) {
        // Memory high-watermark: shed load while tracked bytes (query
        // trackers + server buffers) sit at the soft limit, before the
        // allocator is the one saying no.
        task.admitted = false;
        task.reject_reason =
            "SERVER_BUSY: tracked memory at the admission high-watermark "
            "(" + std::to_string(options_.memory_soft_limit) +
            " bytes); retry later";
        stats_.queries_rejected_memory.fetch_add(1);
      } else {
        std::size_t cur = inflight_.load();
        bool admitted = false;
        while (cur < options_.max_inflight_queries) {
          if (inflight_.compare_exchange_weak(cur, cur + 1)) {
            admitted = true;
            break;
          }
        }
        if (admitted) {
          task.admitted = true;
          ++conn->admitted_pending;
          // Account the queued request itself (SQL text + bound params);
          // best-effort — an engine tracker at its limit just leaves the
          // bytes uncounted.
          std::uint64_t request_bytes = task.text.size();
          for (const Value& v : task.params) {
            request_bytes += sizeof(Value);
            if (v.type() == ColumnType::kString) {
              request_bytes += v.AsString().size();
            }
          }
          std::string scope;
          if (mem_tracker_->TryCharge(request_bytes, &scope)) {
            task.charged_bytes = request_bytes;
          }
        } else {
          task.admitted = false;
          task.reject_reason =
              "SERVER_BUSY: " +
              std::to_string(options_.max_inflight_queries) +
              " queries in flight; retry later";
        }
      }
    }
    task.enqueued = std::chrono::steady_clock::now();
    conn->queue.push_back(std::move(task));
    if (!conn->worker_active && !conn->in_ready) {
      conn->in_ready = true;
      need_push = true;
    }
  }
  if (need_push) PushReady(conn);
}

void PiServer::PushReady(const std::shared_ptr<Connection>& conn) {
  std::lock_guard<std::mutex> lock(mu_);
  ready_.push_back(conn);
  cv_ready_.notify_one();
}

void PiServer::WorkerLoop() {
  for (;;) {
    std::shared_ptr<Connection> conn;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_ready_.wait(lock, [&] { return !ready_.empty() || workers_stop_; });
      if (ready_.empty()) return;
      conn = std::move(ready_.front());
      ready_.pop_front();
    }
    Task task;
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      PIDX_CHECK(!conn->queue.empty());
      conn->in_ready = false;
      conn->worker_active = true;
      task = std::move(conn->queue.front());
      conn->queue.pop_front();
    }
    if (queue_wait_us_ != nullptr && task.admitted) {
      const std::int64_t wait_ns =
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - task.enqueued)
              .count();
      queue_wait_us_->RecordNanos(wait_ns);
      if (wait_queue_us_ != nullptr) wait_queue_us_->RecordNanos(wait_ns);
    }

    ProcessTask(conn, task);
    if (task.charged_bytes != 0) mem_tracker_->Release(task.charged_bytes);

    bool repush = false;
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      conn->worker_active = false;
      if (task.admitted) {
        --conn->admitted_pending;
        inflight_.fetch_sub(1);
      }
      conn->cv_space.notify_all();
      if (!conn->queue.empty()) {
        if (!conn->in_ready) {
          conn->in_ready = true;
          repush = true;
        }
      } else if (conn->reader_done && !conn->finished) {
        conn->FinalizeLocked();
      }
    }
    if (repush) {
      // Requeue at the back: k pipelined requests on one connection take
      // k ready-cycles, so no connection can starve the others.
      PushReady(conn);
    } else {
      std::lock_guard<std::mutex> lock(mu_);
      cv_drained_.notify_all();
    }
  }
}

namespace {

/// Marks a connection unusable mid-response: besides dropping further
/// writes, half-close both directions so the peer sees EOF instead of
/// waiting forever for the rest of a result stream, and our reader (if
/// still running) wakes out of recv. The fd itself is closed only by
/// the normal finalize path.
void MarkBroken(Connection& conn) {
  std::lock_guard<std::mutex> lock(conn.mu);
  conn.broken = true;
  if (conn.fd >= 0) ::shutdown(conn.fd, SHUT_RDWR);
  conn.cv_space.notify_all();
}

}  // namespace

void PiServer::ProcessTask(const std::shared_ptr<Connection>& conn,
                           Task& task) {
  if (task.kind == Task::Kind::kFatal) {
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      if (!conn->broken && conn->fd >= 0) {
        (void)SendErrorFrame(conn->fd, task.error);
      }
    }
    MarkBroken(*conn);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    if (conn->broken) return;  // client is gone; drop the work
  }
  if (!task.admitted) {
    stats_.queries_rejected_busy.fetch_add(1);
    if (!SendErrorFrame(conn->fd, Status::Unavailable(task.reject_reason))
             .ok()) {
      MarkBroken(*conn);
    }
    return;
  }
  if (options_.test_task_hook) options_.test_task_hook();

  Status write = Status::OK();
  switch (task.kind) {
    case Task::Kind::kQuery: {
      stats_.queries_executed.fetch_add(1);
      conn->queries.fetch_add(1);
      WallTimer timer;
      Result<QueryResult> result =
          conn->session.Sql(task.text, std::move(task.params));
      if (!result.ok()) {
        write = SendErrorFrame(conn->fd, result.status());
      } else {
        write = SendResult(conn->fd, result.value(), mem_tracker_.get());
      }
      const std::int64_t elapsed_ns = timer.ElapsedNanos();
      if (query_latency_us_ != nullptr) {
        query_latency_us_->RecordNanos(elapsed_ns);
      }
      const double elapsed_ms = static_cast<double>(elapsed_ns) / 1e6;
      if (options_.slow_query_ms > 0 &&
          elapsed_ms >= static_cast<double>(options_.slow_query_ms)) {
        LogSlowQuery(task.text, elapsed_ms,
                     result.ok() ? result.value().profile.get() : nullptr);
      }
      break;
    }
    case Task::Kind::kPrepare: {
      Result<PreparedStatement> prepared = conn->session.Prepare(task.text);
      if (!prepared.ok()) {
        write = SendErrorFrame(conn->fd, prepared.status());
        break;
      }
      const std::uint64_t id = conn->next_stmt_id++;
      const std::uint32_t num_params =
          static_cast<std::uint32_t>(prepared.value().num_params());
      conn->stmts.emplace(id, std::move(prepared).value());
      WireWriter w;
      w.PutU64(id);
      w.PutU32(num_params);
      write = WriteFrame(conn->fd, FrameType::kPrepared, w.payload());
      break;
    }
    case Task::Kind::kExecute: {
      stats_.queries_executed.fetch_add(1);
      conn->queries.fetch_add(1);
      auto it = conn->stmts.find(task.stmt_id);
      if (it == conn->stmts.end()) {
        write = SendErrorFrame(
            conn->fd, Status::NotFound("unknown prepared statement id " +
                                       std::to_string(task.stmt_id)));
        break;
      }
      WallTimer timer;
      Result<QueryResult> result =
          it->second.Execute(std::move(task.params));
      if (!result.ok()) {
        write = SendErrorFrame(conn->fd, result.status());
      } else {
        write = SendResult(conn->fd, result.value(), mem_tracker_.get());
      }
      const std::int64_t elapsed_ns = timer.ElapsedNanos();
      if (query_latency_us_ != nullptr) {
        query_latency_us_->RecordNanos(elapsed_ns);
      }
      const double elapsed_ms = static_cast<double>(elapsed_ns) / 1e6;
      if (options_.slow_query_ms > 0 &&
          elapsed_ms >= static_cast<double>(options_.slow_query_ms)) {
        LogSlowQuery(it->second.sql(), elapsed_ms,
                     result.ok() ? result.value().profile.get() : nullptr);
      }
      break;
    }
    case Task::Kind::kCloseStmt: {
      if (conn->stmts.erase(task.stmt_id) == 0) {
        write = SendErrorFrame(
            conn->fd, Status::NotFound("unknown prepared statement id " +
                                       std::to_string(task.stmt_id)));
        break;
      }
      write = WriteFrame(conn->fd, FrameType::kStmtClosed, {});
      break;
    }
    case Task::Kind::kMeta: {
      if (!options_.enable_meta_commands) {
        write = SendErrorFrame(
            conn->fd, Status::InvalidArgument(
                          "meta commands are disabled on this server"));
        break;
      }
      const std::string out =
          RunMetaCommand(engine_, conn->session, task.text);
      WireWriter w;
      w.PutString(out);
      write = WriteFrame(conn->fd, FrameType::kMetaResult, w.payload());
      break;
    }
    case Task::Kind::kFatal:
      break;  // handled above
  }
  if (!write.ok()) MarkBroken(*conn);
}

}  // namespace patchindex::net
