#include "bitmap/shift.h"

#include "common/bits.h"
#include "common/check.h"

namespace patchindex {

namespace {

// Mask with the `n` lowest bits set (n in [0, 63]).
inline std::uint64_t LowMask(std::uint64_t n) {
  return n == 0 ? 0 : (~std::uint64_t{0} >> (64 - n));
}

// Applies the boundary-word handling shared by both kernels: fixes up the
// first word (bits below `begin` preserved) and the last word (bits at or
// above `end` preserved, bit end-1 cleared).
//
// The middle full words have already been rewritten by the caller.
inline void ShiftLastWord(std::uint64_t* words, std::uint64_t begin,
                          std::uint64_t end) {
  const std::uint64_t fw = bits::WordIndex(begin);
  const std::uint64_t lw = bits::WordIndex(end - 1);
  const std::uint64_t end_off = bits::BitOffset(end - 1);
  const std::uint64_t lo = (lw == fw) ? LowMask(bits::BitOffset(begin)) : 0;
  const std::uint64_t hi =
      (end_off == 63) ? 0 : (~std::uint64_t{0} << (end_off + 1));
  const std::uint64_t preserve = lo | hi;
  std::uint64_t shifted = words[lw] >> 1;
  std::uint64_t res = (words[lw] & preserve) | (shifted & ~preserve);
  res &= ~(std::uint64_t{1} << end_off);
  words[lw] = res;
}

}  // namespace

void ShiftTailLeftOneScalar(std::uint64_t* words, std::uint64_t begin,
                            std::uint64_t end) {
  PIDX_DCHECK(begin < end);
  const std::uint64_t fw = bits::WordIndex(begin);
  const std::uint64_t lw = bits::WordIndex(end - 1);
  for (std::uint64_t i = fw; i < lw; ++i) {
    std::uint64_t shifted = (words[i] >> 1) | (words[i + 1] << 63);
    if (i == fw) {
      const std::uint64_t keep = LowMask(bits::BitOffset(begin));
      shifted = (words[i] & keep) | (shifted & ~keep);
    }
    words[i] = shifted;
  }
  ShiftLastWord(words, begin, end);
}

namespace internal {

// Shared by the AVX2 translation unit: scalar prologue (first word) and
// epilogue (remaining middle words + last word) around the vector loop.
void ShiftPrologue(std::uint64_t* words, std::uint64_t begin,
                   std::uint64_t fw) {
  const std::uint64_t keep = LowMask(bits::BitOffset(begin));
  std::uint64_t shifted = (words[fw] >> 1) | (words[fw + 1] << 63);
  words[fw] = (words[fw] & keep) | (shifted & ~keep);
}

void ShiftMiddleScalar(std::uint64_t* words, std::uint64_t from,
                       std::uint64_t lw) {
  for (std::uint64_t i = from; i < lw; ++i) {
    words[i] = (words[i] >> 1) | (words[i + 1] << 63);
  }
}

void ShiftEpilogue(std::uint64_t* words, std::uint64_t begin,
                   std::uint64_t end) {
  ShiftLastWord(words, begin, end);
}

}  // namespace internal

ShiftFn SelectShiftFn(bool want_vectorized) {
  if (want_vectorized && CpuSupportsAvx2()) return &ShiftTailLeftOneAvx2;
  return &ShiftTailLeftOneScalar;
}

}  // namespace patchindex
