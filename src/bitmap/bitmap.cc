#include "bitmap/bitmap.h"

#include "bitmap/shift.h"

namespace patchindex {

void Bitmap::Delete(std::uint64_t pos) {
  PIDX_CHECK(pos < num_bits_);
  ShiftTailLeftOneScalar(words_.data(), pos, num_bits_);
  --num_bits_;
}

void Bitmap::BulkDelete(const std::vector<std::uint64_t>& positions) {
  // Descending order keeps every remaining position valid (paper §4.2.3).
  for (auto it = positions.rbegin(); it != positions.rend(); ++it) {
    Delete(*it);
  }
}

void Bitmap::Append(std::uint64_t count) {
  num_bits_ += count;
  words_.resize(bits::WordsForBits(num_bits_), 0);
  // Invariant: bits at positions >= num_bits_ are zero. Deletes clear the
  // vacated tail bit and resize only ever adds zeroed words, so appended
  // bits are already zero.
}

}  // namespace patchindex
