// AVX2 kernel for the sharded bitmap's cross-element bit shift (paper §4.2.2
// Listing 1). This translation unit is compiled with -mavx2; callers reach it
// only through SelectShiftFn(), which checks CPU support at runtime.

#include <immintrin.h>

#include "bitmap/shift.h"
#include "common/bits.h"
#include "common/check.h"

namespace patchindex {

namespace internal {
void ShiftPrologue(std::uint64_t* words, std::uint64_t begin, std::uint64_t fw);
void ShiftMiddleScalar(std::uint64_t* words, std::uint64_t from,
                       std::uint64_t lw);
void ShiftEpilogue(std::uint64_t* words, std::uint64_t begin,
                   std::uint64_t end);
}  // namespace internal

bool CpuSupportsAvx2() { return __builtin_cpu_supports("avx2"); }

void ShiftTailLeftOneAvx2(std::uint64_t* words, std::uint64_t begin,
                          std::uint64_t end) {
  PIDX_DCHECK(begin < end);
  const std::uint64_t fw = bits::WordIndex(begin);
  const std::uint64_t lw = bits::WordIndex(end - 1);
  if (lw == fw) {
    internal::ShiftEpilogue(words, begin, end);
    return;
  }
  internal::ShiftPrologue(words, begin, fw);

  // Middle full words [fw+1, lw): each word becomes (w >> 1) with the low
  // bit of its successor moved into bit 63. The successor of lane i is
  // obtained by an unaligned load at offset +1; the paper's Listing 1
  // achieves the same lane exchange with permute/blend intrinsics.
  std::uint64_t i = fw + 1;
  while (i + 4 <= lw) {
    __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(words + i));
    __m256i next =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(words + i + 1));
    __m256i carry = _mm256_slli_epi64(next, 63);
    __m256i res = _mm256_or_si256(_mm256_srli_epi64(x, 1), carry);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(words + i), res);
    i += 4;
  }
  internal::ShiftMiddleScalar(words, i, lw);
  internal::ShiftEpilogue(words, begin, end);
}

}  // namespace patchindex
