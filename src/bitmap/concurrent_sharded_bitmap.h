#ifndef PATCHINDEX_BITMAP_CONCURRENT_SHARDED_BITMAP_H_
#define PATCHINDEX_BITMAP_CONCURRENT_SHARDED_BITMAP_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "bitmap/shift.h"
#include "common/bits.h"
#include "common/check.h"

namespace patchindex {

/// Fine-grained-concurrency variant of the sharded bitmap (paper §5.4):
/// shards are independent, so bit mutations lock only the affected shard,
/// and start-value adaption uses atomic decrements — concurrent decrements
/// commute, so deletes in different shards need no coordination beyond
/// their own shard lock.
///
/// Concurrency contract (matching the paper's sketch): any mix of
/// Set/Unset/Get/Delete calls is safe; operations racing with a Delete
/// that shifts the logical position they address see either the pre- or
/// post-shift position assignment. PatchIndexes sit behind the engine's
/// snapshot isolation, so such races do not occur in query processing;
/// this class exists to validate the commutativity claim.
class ConcurrentShardedBitmap {
 public:
  explicit ConcurrentShardedBitmap(
      std::uint64_t num_bits, std::uint64_t shard_size_bits = 1ull << 14,
      bool vectorized = true);

  std::uint64_t size() const {
    return num_bits_.load(std::memory_order_acquire);
  }
  std::uint64_t num_shards() const { return start_.size(); }

  bool Get(std::uint64_t pos) const;
  void Set(std::uint64_t pos);
  void Unset(std::uint64_t pos);

  /// Deletes the bit at logical `pos`. Thread-safe against deletes in
  /// other shards and against bit mutations anywhere; note that racing
  /// deletes in *lower* shards shift the meaning of `pos` (use
  /// DeleteInShard for the parallel bulk-delete decomposition).
  void Delete(std::uint64_t pos);

  /// Deletes the bit at in-shard `offset` of `shard`. This is the unit of
  /// work of the paper's parallel bulk delete: offsets are computed in a
  /// preprocessing step against the pre-delete structure and are invariant
  /// under deletes in other shards, so per-shard worker threads may call
  /// this concurrently (descending offsets within each shard).
  void DeleteInShard(std::uint64_t shard, std::uint64_t offset);

  std::uint64_t CountSetBits() const;

 private:
  std::uint64_t LocateShard(std::uint64_t pos) const {
    std::uint64_t s = pos >> shard_shift_;
    while (s + 1 < start_.size() &&
           start_[s + 1].load(std::memory_order_acquire) <= pos) {
      ++s;
    }
    return s;
  }

  std::uint64_t UsedBitsLocked(std::uint64_t s) const {
    const std::uint64_t next =
        (s + 1 < start_.size())
            ? start_[s + 1].load(std::memory_order_acquire)
            : num_bits_.load(std::memory_order_acquire);
    return next - start_[s].load(std::memory_order_acquire);
  }

  std::uint64_t shard_bits_;
  std::uint64_t shard_words_;
  std::uint64_t shard_shift_;
  ShiftFn shift_fn_;
  std::vector<std::uint64_t> words_;
  std::vector<std::atomic<std::uint64_t>> start_;
  mutable std::vector<std::mutex> shard_mu_;
  std::atomic<std::uint64_t> num_bits_;
};

}  // namespace patchindex

#endif  // PATCHINDEX_BITMAP_CONCURRENT_SHARDED_BITMAP_H_
