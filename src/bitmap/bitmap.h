#ifndef PATCHINDEX_BITMAP_BITMAP_H_
#define PATCHINDEX_BITMAP_BITMAP_H_

#include <cstdint>
#include <vector>

#include "common/bits.h"
#include "common/check.h"

namespace patchindex {

/// An ordinary (unsharded) bitmap. Serves as the baseline of the paper's
/// Table 2: bit access is marginally faster than the sharded bitmap, but a
/// delete must shift the entire tail of the bitmap towards the deleted
/// position, which is linear in the bitmap size.
class Bitmap {
 public:
  Bitmap() = default;
  explicit Bitmap(std::uint64_t num_bits)
      : words_(bits::WordsForBits(num_bits), 0), num_bits_(num_bits) {}

  std::uint64_t size() const { return num_bits_; }

  bool Get(std::uint64_t pos) const {
    PIDX_DCHECK(pos < num_bits_);
    return (words_[bits::WordIndex(pos)] >> bits::BitOffset(pos)) & 1;
  }

  void Set(std::uint64_t pos) {
    PIDX_DCHECK(pos < num_bits_);
    words_[bits::WordIndex(pos)] |= std::uint64_t{1} << bits::BitOffset(pos);
  }

  void Unset(std::uint64_t pos) {
    PIDX_DCHECK(pos < num_bits_);
    words_[bits::WordIndex(pos)] &= ~(std::uint64_t{1} << bits::BitOffset(pos));
  }

  /// Removes the bit at `pos`; every subsequent bit moves one position
  /// down. O(size) — this is the weakness the sharded bitmap addresses.
  void Delete(std::uint64_t pos);

  /// Removes all bits at `positions` (must be sorted ascending, unique,
  /// and refer to pre-delete positions). Implemented as descending single
  /// deletes; an ordinary bitmap has no cheaper option.
  void BulkDelete(const std::vector<std::uint64_t>& positions);

  /// Grows the bitmap by `count` zero bits at the end.
  void Append(std::uint64_t count);

  std::uint64_t CountSetBits() const {
    return bits::PopCount(words_.data(), words_.size());
  }

  std::uint64_t MemoryUsageBytes() const { return words_.capacity() * 8; }

  const std::uint64_t* words() const { return words_.data(); }

 private:
  std::vector<std::uint64_t> words_;
  std::uint64_t num_bits_ = 0;
};

}  // namespace patchindex

#endif  // PATCHINDEX_BITMAP_BITMAP_H_
