#include "bitmap/rle.h"

namespace patchindex {

RleBitmap RleEncode(const ShardedBitmap& bitmap) {
  RleBitmap out;
  out.num_bits = bitmap.size();
  std::uint64_t prev_pos = 0;
  bool first = true;
  std::uint64_t current_one_run = 0;
  bitmap.ForEachSetBit([&](std::uint64_t pos) {
    if (first) {
      out.runs.push_back(pos);  // leading zero run (may be 0)
      current_one_run = 1;
      first = false;
    } else if (pos == prev_pos + 1) {
      ++current_one_run;
    } else {
      out.runs.push_back(current_one_run);
      out.runs.push_back(pos - prev_pos - 1);  // zero gap
      current_one_run = 1;
    }
    prev_pos = pos;
  });
  if (first) {
    // No set bits at all: a single zero run.
    out.runs.push_back(out.num_bits);
  } else {
    out.runs.push_back(current_one_run);
    const std::uint64_t tail = out.num_bits - prev_pos - 1;
    if (tail > 0) out.runs.push_back(tail);
  }
  return out;
}

ShardedBitmap RleDecode(const RleBitmap& rle, ShardedBitmapOptions options) {
  ShardedBitmap out(rle.num_bits, options);
  std::uint64_t pos = 0;
  bool ones = false;
  for (std::uint64_t run : rle.runs) {
    if (ones) {
      for (std::uint64_t i = 0; i < run; ++i) out.Set(pos + i);
    }
    pos += run;
    ones = !ones;
  }
  return out;
}

}  // namespace patchindex
