#include "bitmap/sharded_bitmap.h"

#include <algorithm>
#include <bit>

#include "common/thread_pool.h"

namespace patchindex {

ShardedBitmap::ShardedBitmap(std::uint64_t num_bits,
                             ShardedBitmapOptions options)
    : options_(options),
      shard_bits_(options.shard_size_bits),
      shard_words_(options.shard_size_bits / bits::kBitsPerWord),
      shift_fn_(SelectShiftFn(options.vectorized)),
      num_bits_(num_bits) {
  PIDX_CHECK_MSG(std::has_single_bit(shard_bits_) && shard_bits_ >= 64,
                 "shard size must be a power of two >= 64");
  shard_shift_ = static_cast<std::uint64_t>(std::countr_zero(shard_bits_));
  const std::uint64_t nshards =
      num_bits == 0 ? 1 : (num_bits + shard_bits_ - 1) / shard_bits_;
  words_.assign(nshards * shard_words_, 0);
  start_.resize(nshards);
  for (std::uint64_t s = 0; s < nshards; ++s) start_[s] = s * shard_bits_;
}

void ShardedBitmap::Delete(std::uint64_t pos) {
  PIDX_CHECK(pos < num_bits_);
  const std::uint64_t s = LocateShard(pos);
  const std::uint64_t used = UsedBits(s);
  ShiftWithinShard(s, pos - start_[s], used);
  for (std::uint64_t t = s + 1; t < start_.size(); ++t) --start_[t];
  --num_bits_;
  MaybeAutoCondense();
}

void ShardedBitmap::BulkDelete(const std::vector<std::uint64_t>& positions) {
  if (positions.empty()) return;
  PIDX_CHECK(positions.back() < num_bits_);

  // Preprocessing: map each logical position to (shard, in-shard offset)
  // against the *pre-delete* structure. Positions are ascending, so a
  // single forward walk over shards suffices.
  struct ShardWork {
    std::uint64_t shard;
    std::uint64_t used;                 // pre-delete used bits
    std::vector<std::uint64_t> offsets; // ascending in-shard offsets
  };
  std::vector<ShardWork> work;
  std::uint64_t s = 0;
  for (std::uint64_t pos : positions) {
    while (s + 1 < start_.size() && start_[s + 1] <= pos) ++s;
    if (work.empty() || work.back().shard != s) {
      work.push_back({s, UsedBits(s), {}});
    }
    work.back().offsets.push_back(pos - start_[s]);
  }

  // Step (b): shard-local shifts, one task per affected shard, processed
  // in descending offset order so earlier deletes do not invalidate later
  // offsets within the shard.
  auto run_shard = [this](const ShardWork& w) {
    std::uint64_t used = w.used;
    for (auto it = w.offsets.rbegin(); it != w.offsets.rend(); ++it) {
      ShiftWithinShard(w.shard, *it, used);
      --used;
    }
  };
  if (options_.parallel && work.size() > 1) {
    ThreadPool& pool = options_.pool ? *options_.pool : ThreadPool::Default();
    for (const ShardWork& w : work) {
      pool.Submit([&run_shard, &w] { run_shard(w); });
    }
    pool.WaitIdle();
  } else {
    for (const ShardWork& w : work) run_shard(w);
  }

  // Step (c): adapt all start values in a single traversal, holding a
  // running sum over deleted bits of preceding shards.
  std::uint64_t running = 0;
  std::size_t wi = 0;
  for (std::uint64_t t = 0; t < start_.size(); ++t) {
    start_[t] -= running;
    if (wi < work.size() && work[wi].shard == t) {
      running += work[wi].offsets.size();
      ++wi;
    }
  }
  num_bits_ -= positions.size();
  MaybeAutoCondense();
}

void ShardedBitmap::Append(std::uint64_t count) {
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t last = start_.size() - 1;
    if (UsedBits(last) == shard_bits_) {
      // Last shard physically full: open a new shard.
      start_.push_back(num_bits_);
      words_.resize(words_.size() + shard_words_, 0);
    }
    // Lost bits are kept zero (deletes clear the vacated tail bit), so the
    // appended bit is already 0; growing num_bits_ exposes it.
    ++num_bits_;
  }
}

void ShardedBitmap::Condense() {
  // Single traversal: stream the used bit range of every shard into a
  // fully-packed copy. Word-granular: accumulate into a 64-bit write
  // buffer and flush full words.
  std::vector<std::uint64_t> packed(bits::WordsForBits(num_bits_), 0);
  std::uint64_t wpos = 0;  // next write bit position in `packed`
  for (std::uint64_t sh = 0; sh < start_.size(); ++sh) {
    const std::uint64_t used = UsedBits(sh);
    const std::uint64_t* src = words_.data() + sh * shard_words_;
    std::uint64_t copied = 0;
    while (copied < used) {
      const std::uint64_t n = std::min<std::uint64_t>(64, used - copied);
      // Extract n bits starting at `copied` from the shard.
      const std::uint64_t w = bits::WordIndex(copied);
      const std::uint64_t off = bits::BitOffset(copied);
      std::uint64_t chunk = src[w] >> off;
      if (off != 0 && w + 1 < shard_words_) chunk |= src[w + 1] << (64 - off);
      if (n < 64) chunk &= (~std::uint64_t{0} >> (64 - n));
      // Append the chunk at wpos.
      const std::uint64_t dw = bits::WordIndex(wpos);
      const std::uint64_t doff = bits::BitOffset(wpos);
      packed[dw] |= chunk << doff;
      if (doff != 0 && dw + 1 < packed.size()) packed[dw + 1] |= chunk >> (64 - doff);
      wpos += n;
      copied += n;
    }
  }
  PIDX_CHECK(wpos == num_bits_);

  const std::uint64_t nshards =
      num_bits_ == 0 ? 1 : (num_bits_ + shard_bits_ - 1) / shard_bits_;
  words_.assign(nshards * shard_words_, 0);
  std::copy(packed.begin(), packed.end(), words_.begin());
  start_.resize(nshards);
  for (std::uint64_t t = 0; t < nshards; ++t) start_[t] = t * shard_bits_;
}

void ShardedBitmap::ForEachSetBit(
    const std::function<void(std::uint64_t)>& fn) const {
  for (std::uint64_t sh = 0; sh < start_.size(); ++sh) {
    const std::uint64_t used = UsedBits(sh);
    const std::uint64_t* src = words_.data() + sh * shard_words_;
    const std::uint64_t nwords = bits::WordsForBits(used);
    for (std::uint64_t w = 0; w < nwords; ++w) {
      std::uint64_t word = src[w];
      while (word != 0) {
        const int tz = std::countr_zero(word);
        const std::uint64_t off = w * 64 + static_cast<std::uint64_t>(tz);
        // Lost bits are zero by invariant, so off < used always holds.
        fn(start_[sh] + off);
        word &= word - 1;
      }
    }
  }
}

void ShardedBitmap::ForEachSetBitInRange(
    std::uint64_t begin, std::uint64_t end,
    const std::function<void(std::uint64_t)>& fn) const {
  if (begin >= end) return;
  PIDX_CHECK(end <= num_bits_);
  std::uint64_t sh = LocateShard(begin);
  for (; sh < start_.size() && start_[sh] < end; ++sh) {
    const std::uint64_t used = UsedBits(sh);
    const std::uint64_t* src = words_.data() + sh * shard_words_;
    // In-shard offsets covered by [begin, end).
    const std::uint64_t lo = begin > start_[sh] ? begin - start_[sh] : 0;
    const std::uint64_t hi = std::min<std::uint64_t>(used, end - start_[sh]);
    if (lo >= hi) continue;
    for (std::uint64_t w = lo >> 6; w <= (hi - 1) >> 6; ++w) {
      std::uint64_t word = src[w];
      if (word == 0) continue;
      while (word != 0) {
        const int tz = std::countr_zero(word);
        const std::uint64_t off = w * 64 + static_cast<std::uint64_t>(tz);
        word &= word - 1;
        if (off < lo) continue;
        if (off >= hi) return;
        fn(start_[sh] + off);
      }
    }
  }
}

std::vector<std::uint64_t> ShardedBitmap::SetBitPositions() const {
  std::vector<std::uint64_t> out;
  out.reserve(CountSetBits());
  ForEachSetBit([&out](std::uint64_t pos) { out.push_back(pos); });
  return out;
}

void ShardedBitmap::MaybeAutoCondense() {
  if (options_.auto_condense_threshold > 0.0 &&
      Utilization() < options_.auto_condense_threshold) {
    Condense();
  }
}

}  // namespace patchindex
