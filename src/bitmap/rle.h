#ifndef PATCHINDEX_BITMAP_RLE_H_
#define PATCHINDEX_BITMAP_RLE_H_

#include <cstdint>
#include <vector>

#include "bitmap/sharded_bitmap.h"

namespace patchindex {

/// Run-length encoding of a (sharded) bitmap — the compression the
/// paper's future work proposes (§7): "typically, bitmaps are compressed
/// using run-length encoding, which could reduce the PatchIndex memory
/// consumption especially for low exception rates".
///
/// Encoding: alternating run lengths over the logical bit sequence,
/// starting with a run of zeros (possibly of length 0). The sum of all
/// runs equals the bitmap's logical size.
struct RleBitmap {
  std::vector<std::uint64_t> runs;
  std::uint64_t num_bits = 0;

  std::uint64_t CompressedBytes() const { return runs.size() * 8; }
};

/// Encodes the logical content of `bitmap`.
RleBitmap RleEncode(const ShardedBitmap& bitmap);

/// Reconstructs a sharded bitmap (fresh shards, fully condensed) from an
/// RLE encoding.
ShardedBitmap RleDecode(const RleBitmap& rle,
                        ShardedBitmapOptions options = {});

}  // namespace patchindex

#endif  // PATCHINDEX_BITMAP_RLE_H_
