#ifndef PATCHINDEX_BITMAP_SHARDED_BITMAP_H_
#define PATCHINDEX_BITMAP_SHARDED_BITMAP_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "bitmap/shift.h"
#include "common/bits.h"
#include "common/check.h"

namespace patchindex {

class ThreadPool;

/// Tuning knobs for the sharded bitmap (paper §4, Fig. 6).
struct ShardedBitmapOptions {
  /// Size of one virtual shard in bits. Must be a power of two and a
  /// multiple of 64. The paper's evaluation locates the runtime optimum at
  /// 2^14 bits, which is our default (memory overhead 64/2^14 = 0.39%).
  std::uint64_t shard_size_bits = std::uint64_t{1} << 14;

  /// Use the AVX2 cross-element shift kernel when the CPU supports it.
  bool vectorized = true;

  /// Run bulk deletes shard-parallel on a thread pool (nullptr = default
  /// process-wide pool). Single-threaded when `parallel` is false.
  bool parallel = true;
  ThreadPool* pool = nullptr;

  /// When utilization (live bits / physical capacity) drops below this
  /// threshold, Condense() is triggered automatically at the end of a bulk
  /// delete. 0 disables auto-condensing (the paper's experiments run with
  /// condensing disabled for comparability).
  double auto_condense_threshold = 0.0;
};

/// The paper's update-conscious bitmap (§4): an ordinary bitmap virtually
/// divided into shards. Each shard carries a start value (the logical index
/// of its first bit, a la UpBit's fence pointers). Deleting a bit shifts
/// only within one shard and decrements the start values of subsequent
/// shards, so deletes are O(shard) + O(#shards) instead of O(size).
///
/// Physical layout: shard s owns words [s*W, (s+1)*W) where W =
/// shard_size_bits/64. A shard's *used* bit count starts at shard_size_bits
/// and shrinks by one per delete; the vacated tail bits ("lost bits",
/// §4.2.4) are kept zero. Condense() re-packs shards to reclaim them.
class ShardedBitmap {
 public:
  explicit ShardedBitmap(std::uint64_t num_bits,
                         ShardedBitmapOptions options = {});

  /// Logical number of bits currently addressable.
  std::uint64_t size() const { return num_bits_; }
  std::uint64_t num_shards() const { return start_.size(); }
  const ShardedBitmapOptions& options() const { return options_; }

  bool Get(std::uint64_t pos) const {
    const std::uint64_t phys = PhysicalPos(pos);
    return (words_[bits::WordIndex(phys)] >> bits::BitOffset(phys)) & 1;
  }

  void Set(std::uint64_t pos) {
    const std::uint64_t phys = PhysicalPos(pos);
    words_[bits::WordIndex(phys)] |= std::uint64_t{1} << bits::BitOffset(phys);
  }

  void Unset(std::uint64_t pos) {
    const std::uint64_t phys = PhysicalPos(pos);
    words_[bits::WordIndex(phys)] &=
        ~(std::uint64_t{1} << bits::BitOffset(phys));
  }

  /// Removes the bit at logical position `pos` (paper §4.2.2): shifts the
  /// remainder of the containing shard towards the hole and decrements all
  /// subsequent start values.
  void Delete(std::uint64_t pos);

  /// Removes all bits at `positions` (sorted ascending, unique, pre-delete
  /// logical positions). Shard-local shifts run in parallel; start values
  /// are adapted in one traversal with a running deletion count (§4.2.3).
  void BulkDelete(const std::vector<std::uint64_t>& positions);

  /// Appends `count` zero bits at the logical end.
  void Append(std::uint64_t count);

  /// Re-packs all shards so every shard (except possibly the last) is fully
  /// used again, reclaiming bits lost to deletes (§4.2.4).
  void Condense();

  /// Live bits / physical capacity; deletes lower it, Condense resets it.
  double Utilization() const {
    const std::uint64_t cap = CapacityBits();
    return cap == 0 ? 1.0 : static_cast<double>(num_bits_) / cap;
  }

  std::uint64_t CountSetBits() const {
    return bits::PopCount(words_.data(), words_.size());
  }

  /// Invokes fn(logical_position) for every set bit, ascending.
  void ForEachSetBit(const std::function<void(std::uint64_t)>& fn) const;

  /// Invokes fn(logical_position) for every set bit in [begin, end),
  /// ascending.
  void ForEachSetBitInRange(
      std::uint64_t begin, std::uint64_t end,
      const std::function<void(std::uint64_t)>& fn) const;

  /// Collects all set-bit positions (ascending).
  std::vector<std::uint64_t> SetBitPositions() const;

  std::uint64_t MemoryUsageBytes() const {
    return words_.capacity() * 8 + start_.capacity() * 8;
  }

  /// Additional memory of sharding relative to an ordinary bitmap of the
  /// same capacity, in percent: 64 / shard_size_bits * 100 (paper §6.1).
  double ShardingOverheadPercent() const {
    return 64.0 / static_cast<double>(options_.shard_size_bits) * 100.0;
  }

  /// Fast sequential reader: amortizes shard lookup across consecutive
  /// positions, used by the PatchIndex scan.
  class SequentialReader {
   public:
    explicit SequentialReader(const ShardedBitmap& bm) : bm_(bm) {}

    /// Returns the bit at `pos`. Positions must be non-decreasing across
    /// calls.
    bool Get(std::uint64_t pos) {
      while (shard_ + 1 < bm_.start_.size() && bm_.start_[shard_ + 1] <= pos) {
        ++shard_;
      }
      const std::uint64_t phys =
          shard_ * bm_.shard_bits_ + (pos - bm_.start_[shard_]);
      return (bm_.words_[bits::WordIndex(phys)] >> bits::BitOffset(phys)) & 1;
    }

   private:
    const ShardedBitmap& bm_;
    std::uint64_t shard_ = 0;
  };

 private:
  friend class SequentialReader;

  std::uint64_t CapacityBits() const { return num_shards() * shard_bits_; }

  /// Number of live bits in shard s.
  std::uint64_t UsedBits(std::uint64_t s) const {
    const std::uint64_t next =
        (s + 1 < start_.size()) ? start_[s + 1] : num_bits_;
    return next - start_[s];
  }

  /// Shard containing logical position `pos`: start at pos/shard_size (a
  /// lower bound, since start values only ever decrease) and walk forward
  /// comparing against upcoming start values (paper §4.2.1).
  std::uint64_t LocateShard(std::uint64_t pos) const {
    PIDX_DCHECK(pos < num_bits_);
    std::uint64_t s = pos >> shard_shift_;
    while (s + 1 < start_.size() && start_[s + 1] <= pos) ++s;
    return s;
  }

  std::uint64_t PhysicalPos(std::uint64_t pos) const {
    const std::uint64_t s = LocateShard(pos);
    return s * shard_bits_ + (pos - start_[s]);
  }

  /// Deletes the bit at in-shard offset `off` of shard `s` whose current
  /// used-bit count is `used` (shift only; start values untouched).
  void ShiftWithinShard(std::uint64_t s, std::uint64_t off,
                        std::uint64_t used) {
    shift_fn_(words_.data() + s * shard_words_, off, used);
  }

  void MaybeAutoCondense();

  ShardedBitmapOptions options_;
  std::uint64_t shard_bits_;
  std::uint64_t shard_words_;
  std::uint64_t shard_shift_;  // log2(shard_bits_)
  ShiftFn shift_fn_;
  std::vector<std::uint64_t> words_;
  std::vector<std::uint64_t> start_;
  std::uint64_t num_bits_ = 0;
};

}  // namespace patchindex

#endif  // PATCHINDEX_BITMAP_SHARDED_BITMAP_H_
