#include "bitmap/concurrent_sharded_bitmap.h"

#include <bit>

namespace patchindex {

ConcurrentShardedBitmap::ConcurrentShardedBitmap(std::uint64_t num_bits,
                                                 std::uint64_t shard_size_bits,
                                                 bool vectorized)
    : shard_bits_(shard_size_bits),
      shard_words_(shard_size_bits / bits::kBitsPerWord),
      shift_fn_(SelectShiftFn(vectorized)),
      num_bits_(num_bits) {
  PIDX_CHECK_MSG(std::has_single_bit(shard_bits_) && shard_bits_ >= 64,
                 "shard size must be a power of two >= 64");
  shard_shift_ = static_cast<std::uint64_t>(std::countr_zero(shard_bits_));
  const std::uint64_t nshards =
      num_bits == 0 ? 1 : (num_bits + shard_bits_ - 1) / shard_bits_;
  words_.assign(nshards * shard_words_, 0);
  start_ = std::vector<std::atomic<std::uint64_t>>(nshards);
  for (std::uint64_t s = 0; s < nshards; ++s) {
    start_[s].store(s * shard_bits_, std::memory_order_relaxed);
  }
  shard_mu_ = std::vector<std::mutex>(nshards);
}

bool ConcurrentShardedBitmap::Get(std::uint64_t pos) const {
  const std::uint64_t s = LocateShard(pos);
  std::lock_guard<std::mutex> lock(shard_mu_[s]);
  const std::uint64_t phys =
      s * shard_bits_ + (pos - start_[s].load(std::memory_order_acquire));
  return (words_[bits::WordIndex(phys)] >> bits::BitOffset(phys)) & 1;
}

void ConcurrentShardedBitmap::Set(std::uint64_t pos) {
  const std::uint64_t s = LocateShard(pos);
  std::lock_guard<std::mutex> lock(shard_mu_[s]);
  const std::uint64_t phys =
      s * shard_bits_ + (pos - start_[s].load(std::memory_order_acquire));
  words_[bits::WordIndex(phys)] |= std::uint64_t{1} << bits::BitOffset(phys);
}

void ConcurrentShardedBitmap::Unset(std::uint64_t pos) {
  const std::uint64_t s = LocateShard(pos);
  std::lock_guard<std::mutex> lock(shard_mu_[s]);
  const std::uint64_t phys =
      s * shard_bits_ + (pos - start_[s].load(std::memory_order_acquire));
  words_[bits::WordIndex(phys)] &=
      ~(std::uint64_t{1} << bits::BitOffset(phys));
}

void ConcurrentShardedBitmap::Delete(std::uint64_t pos) {
  const std::uint64_t s = LocateShard(pos);
  DeleteInShard(s, pos - start_[s].load(std::memory_order_acquire));
}

void ConcurrentShardedBitmap::DeleteInShard(std::uint64_t shard,
                                            std::uint64_t offset) {
  {
    std::lock_guard<std::mutex> lock(shard_mu_[shard]);
    // The shard's used-bit count cannot be derived from neighbouring start
    // values here: those race with other shards' deletes. Shifting over
    // the full physical shard is equivalent — bits beyond `used` are zero
    // by invariant and stay zero under the shift.
    shift_fn_(words_.data() + shard * shard_words_, offset, shard_bits_);
  }
  // Start-value adaption: plain atomic decrements. Concurrent deletes
  // produce the same final values in any interleaving (decrements
  // commute), which is the paper's §5.4 argument.
  for (std::uint64_t t = shard + 1; t < start_.size(); ++t) {
    start_[t].fetch_sub(1, std::memory_order_acq_rel);
  }
  num_bits_.fetch_sub(1, std::memory_order_acq_rel);
}

std::uint64_t ConcurrentShardedBitmap::CountSetBits() const {
  std::uint64_t total = 0;
  for (std::uint64_t s = 0; s < start_.size(); ++s) {
    std::lock_guard<std::mutex> lock(shard_mu_[s]);
    total += bits::PopCount(words_.data() + s * shard_words_, shard_words_);
  }
  return total;
}

}  // namespace patchindex
