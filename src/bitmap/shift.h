#ifndef PATCHINDEX_BITMAP_SHIFT_H_
#define PATCHINDEX_BITMAP_SHIFT_H_

#include <cstdint>

namespace patchindex {

/// Cross-element bit shift: removes the bit at position `begin` from the
/// bit range [begin, end) over the word array `words` (LSB-first bit
/// numbering, bit i lives in words[i/64] at offset i%64). All bits in
/// (begin, end) move one position towards `begin`; bit end-1 becomes 0;
/// bits outside [begin, end) are unchanged.
///
/// This is step (b) of the sharded bitmap's delete operation (paper §4.2.2):
/// the shift is confined to one shard, so `words` points at the shard base
/// and `end` is the shard's number of used bits.
void ShiftTailLeftOneScalar(std::uint64_t* words, std::uint64_t begin,
                            std::uint64_t end);

/// AVX2 implementation of the same operation (paper Listing 1). Processes
/// four 64-bit elements per iteration; the carry bit crossing element
/// boundaries is obtained with an overlapping unaligned load of the
/// successor elements instead of the paper's lane-permutation dance — the
/// observable effect is identical.
void ShiftTailLeftOneAvx2(std::uint64_t* words, std::uint64_t begin,
                          std::uint64_t end);

/// True when the running CPU supports AVX2.
bool CpuSupportsAvx2();

using ShiftFn = void (*)(std::uint64_t*, std::uint64_t, std::uint64_t);

/// Returns the AVX2 kernel when requested and available, otherwise the
/// scalar kernel.
ShiftFn SelectShiftFn(bool want_vectorized);

}  // namespace patchindex

#endif  // PATCHINDEX_BITMAP_SHIFT_H_
