#include "baselines/materialized_view.h"

#include "exec/aggregate.h"
#include "exec/scan.h"

namespace patchindex {

DistinctMaterializedView::DistinctMaterializedView(const Table& base,
                                                   std::size_t column)
    : base_(&base), column_(column) {
  Refresh();
}

void DistinctMaterializedView::Refresh() {
  const ColumnType type = base_->schema().field(column_).type;
  view_ = std::make_unique<Table>(Schema({{"value", type}}));
  HashAggregateOperator distinct(
      std::make_unique<ScanOperator>(*base_,
                                     std::vector<std::size_t>{column_}),
      std::vector<std::size_t>{0}, std::vector<AggSpec>{});
  Batch result = Collect(distinct);
  for (std::size_t i = 0; i < result.num_rows(); ++i) {
    view_->AppendRow(Row{{result.columns[0].GetValue(i)}});
  }
}

OperatorPtr DistinctMaterializedView::QueryPlan() const {
  return std::make_unique<ScanOperator>(*view_, std::vector<std::size_t>{0});
}

}  // namespace patchindex
