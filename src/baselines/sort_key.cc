#include "baselines/sort_key.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "common/check.h"
#include "exec/scan.h"
#include "exec/sort.h"

namespace patchindex {

SortKey::SortKey(Table* table, std::size_t column, bool ascending)
    : table_(table), column_(column), ascending_(ascending) {
  PIDX_CHECK(table_ != nullptr);
  PIDX_CHECK(table_->schema().field(column).type == ColumnType::kInt64);
  Materialize();
}

void SortKey::Materialize() {
  PIDX_CHECK_MSG(table_->pdt().empty(),
                 "materialize after checkpointing the table");
  const auto& keys = table_->column(column_).i64_data();
  std::vector<std::size_t> order(keys.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return ascending_ ? keys[a] < keys[b] : keys[a] > keys[b];
                   });
  // Physically rewrite every column in the new order.
  for (std::size_t c = 0; c < table_->schema().num_fields(); ++c) {
    Column& col = table_->column(c);
    Column sorted(col.type());
    sorted.Reserve(order.size());
    for (std::size_t i : order) sorted.Append(col.Get(i));
    col = std::move(sorted);
  }
}

void SortKey::MaintainAfterUpdate() {
  table_->Checkpoint();
  Materialize();
}

OperatorPtr SortKey::QueryPlan() const {
  std::vector<std::size_t> cols;
  for (std::size_t c = 0; c < table_->schema().num_fields(); ++c) {
    cols.push_back(c);
  }
  // The engine still sorts to guarantee the order (paper §6.2: "the query
  // still performs a sort operator to ensure the sorting").
  return std::make_unique<SortOperator>(
      std::make_unique<ScanOperator>(*table_, cols),
      std::vector<SortKeySpec>{{column_, ascending_}});
}

OperatorPtr SortKey::ScanPlan() const {
  std::vector<std::size_t> cols;
  for (std::size_t c = 0; c < table_->schema().num_fields(); ++c) {
    cols.push_back(c);
  }
  return std::make_unique<ScanOperator>(*table_, cols);
}

}  // namespace patchindex
