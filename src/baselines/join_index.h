#ifndef PATCHINDEX_BASELINES_JOIN_INDEX_H_
#define PATCHINDEX_BASELINES_JOIN_INDEX_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "exec/operator.h"
#include "storage/table.h"

namespace patchindex {

/// JoinIndex baseline (Valduriez [27], paper §6): materializes a foreign
/// key join by storing, per fact row, the rowID of its dimension join
/// partner "as an additional table column". The join query becomes a scan
/// of the fact table plus a gather from the dimension table — no hash
/// table, but a little extra scan width (which is why ZBP PatchIndex
/// plans edge it out in Figure 10).
class JoinIndex {
 public:
  /// Builds the index: for every fact row, the dimension row holding the
  /// matching key. Keys must be INT64 and unique in the dimension table.
  JoinIndex(const Table& fact, std::size_t fact_key, const Table& dim,
            std::size_t dim_key);

  /// Recomputes partner rowIDs from scratch (the expensive maintenance
  /// path, used after dimension updates).
  void Rebuild();

  /// Incremental maintenance for fact-table deltas: call after the fact
  /// table checkpointed an insert or delete query. Inserted rows get
  /// their partner looked up; deletes compact the rowID column.
  Status MaintainAfterFactUpdate(const std::vector<RowId>& deleted_rows);

  /// Incremental maintenance after rows were deleted from the dimension
  /// table: partner rowIDs shift down; partners pointing at deleted rows
  /// become dangling.
  Status MaintainAfterDimDelete(const std::vector<RowId>& deleted_dim_rows);

  /// The materialized join: emits the requested fact columns followed by
  /// the requested dimension columns (gathered through the index).
  OperatorPtr QueryPlan(std::vector<std::size_t> fact_cols,
                        std::vector<std::size_t> dim_cols) const;

  std::uint64_t MemoryUsageBytes() const {
    return partner_.capacity() * sizeof(RowId);
  }
  const std::vector<RowId>& partners() const { return partner_; }

 private:
  const Table* fact_;
  const Table* dim_;
  std::size_t fact_key_;
  std::size_t dim_key_;
  std::vector<RowId> partner_;  // fact row -> dim row (kInvalidRowId if none)
};

}  // namespace patchindex

#endif  // PATCHINDEX_BASELINES_JOIN_INDEX_H_
