#ifndef PATCHINDEX_BASELINES_SORT_KEY_H_
#define PATCHINDEX_BASELINES_SORT_KEY_H_

#include <cstdint>

#include "common/status.h"
#include "exec/operator.h"
#include "storage/table.h"

namespace patchindex {

/// SortKey baseline (paper §6): the table data is *physically reordered*
/// by the key column, so a sort query degenerates to a scan (the engine
/// still runs a sort operator over the pre-sorted data to guarantee the
/// order, which is what the paper measures). Creation physically rewrites
/// every column — the expensive part — and only one SortKey can exist per
/// table. Updates must restore the physical order, which this baseline
/// implements as re-sorting after the delta is applied.
class SortKey {
 public:
  SortKey(Table* table, std::size_t column, bool ascending = true);

  /// Physically reorders all columns of the table by the key column.
  void Materialize();

  /// Applies pending PDT deltas and restores the physical order (the
  /// baseline's per-update maintenance).
  void MaintainAfterUpdate();

  /// The sort query against the materialized order: scan + verifying sort
  /// operator (cheap on pre-sorted input).
  OperatorPtr QueryPlan() const;

  /// Plain scan without the verifying sort (used where the stored order
  /// itself is consumed, e.g. the JoinIndex comparison).
  OperatorPtr ScanPlan() const;

  std::size_t column() const { return column_; }

 private:
  Table* table_;
  std::size_t column_;
  bool ascending_;
};

}  // namespace patchindex

#endif  // PATCHINDEX_BASELINES_SORT_KEY_H_
