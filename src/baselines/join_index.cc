#include "baselines/join_index.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "common/check.h"
#include "exec/scan.h"

namespace patchindex {

namespace {

std::unordered_map<std::int64_t, RowId> BuildDimLookup(const Table& dim,
                                                       std::size_t dim_key) {
  const auto& keys = dim.column(dim_key).i64_data();
  std::unordered_map<std::int64_t, RowId> lookup;
  lookup.reserve(keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    auto [it, inserted] = lookup.emplace(keys[i], i);
    PIDX_CHECK_MSG(inserted, "JoinIndex dimension keys must be unique");
  }
  return lookup;
}

/// Scan of the fact table that gathers dimension columns through the
/// materialized partner rowIDs.
class GatherJoinOperator : public Operator {
 public:
  GatherJoinOperator(const Table& fact, const Table& dim,
                     const std::vector<RowId>& partner,
                     std::vector<std::size_t> fact_cols,
                     std::vector<std::size_t> dim_cols)
      : fact_(fact),
        dim_(dim),
        partner_(partner),
        fact_cols_(std::move(fact_cols)),
        dim_cols_(std::move(dim_cols)) {}

  std::vector<ColumnType> OutputTypes() const override {
    std::vector<ColumnType> types;
    for (std::size_t c : fact_cols_) {
      types.push_back(fact_.schema().field(c).type);
    }
    for (std::size_t c : dim_cols_) {
      types.push_back(dim_.schema().field(c).type);
    }
    return types;
  }

  void Open() override { pos_ = 0; }

  bool Next(Batch* out) override {
    out->Reset(OutputTypes());
    const std::uint64_t n = fact_.num_rows();
    while (out->num_rows() < kBatchSize && pos_ < n) {
      // Runs of consecutive matched fact rows move as bulk column slices;
      // only the dimension gather is per-row (it is a random access by
      // construction).
      const RowId begin = pos_;
      const RowId cap = std::min<RowId>(
          n, begin + (kBatchSize - out->num_rows()));
      RowId end = begin;
      while (end < cap && partner_[end] != kInvalidRowId) ++end;
      if (end == begin) {  // dangling foreign key
        ++pos_;
        continue;
      }
      pos_ = end;
      std::size_t oc = 0;
      for (std::size_t c : fact_cols_) {
        const Column& src = fact_.column(c);
        ColumnVector& dst = out->columns[oc++];
        switch (dst.type) {
          case ColumnType::kInt64:
            dst.i64.insert(dst.i64.end(), src.i64_data().begin() + begin,
                           src.i64_data().begin() + end);
            break;
          case ColumnType::kDouble:
            dst.f64.insert(dst.f64.end(), src.f64_data().begin() + begin,
                           src.f64_data().begin() + end);
            break;
          case ColumnType::kString:
            dst.str.insert(dst.str.end(), src.str_data().begin() + begin,
                           src.str_data().begin() + end);
            break;
        }
      }
      for (std::size_t c : dim_cols_) {
        ColumnVector& dst = out->columns[oc++];
        for (RowId f = begin; f < end; ++f) {
          dst.AppendFromColumn(dim_.column(c), partner_[f]);
        }
      }
      for (RowId f = begin; f < end; ++f) out->row_ids.push_back(f);
    }
    return out->num_rows() > 0;
  }

 private:
  const Table& fact_;
  const Table& dim_;
  const std::vector<RowId>& partner_;
  std::vector<std::size_t> fact_cols_;
  std::vector<std::size_t> dim_cols_;
  RowId pos_ = 0;
};

}  // namespace

JoinIndex::JoinIndex(const Table& fact, std::size_t fact_key, const Table& dim,
                     std::size_t dim_key)
    : fact_(&fact), dim_(&dim), fact_key_(fact_key), dim_key_(dim_key) {
  PIDX_CHECK(fact.schema().field(fact_key).type == ColumnType::kInt64);
  PIDX_CHECK(dim.schema().field(dim_key).type == ColumnType::kInt64);
  Rebuild();
}

void JoinIndex::Rebuild() {
  const auto lookup = BuildDimLookup(*dim_, dim_key_);
  const auto& fk = fact_->column(fact_key_).i64_data();
  partner_.assign(fk.size(), kInvalidRowId);
  for (std::size_t i = 0; i < fk.size(); ++i) {
    auto it = lookup.find(fk[i]);
    if (it != lookup.end()) partner_[i] = it->second;
  }
}

Status JoinIndex::MaintainAfterFactUpdate(
    const std::vector<RowId>& deleted_rows) {
  if (!deleted_rows.empty()) {
    std::size_t write = 0;
    std::size_t di = 0;
    for (std::size_t read = 0; read < partner_.size(); ++read) {
      while (di < deleted_rows.size() && deleted_rows[di] < read) ++di;
      if (di < deleted_rows.size() && deleted_rows[di] == read) continue;
      partner_[write++] = partner_[read];
    }
    partner_.resize(write);
  }
  if (fact_->num_rows() > partner_.size()) {
    // Appended rows: look up their partners.
    const auto lookup = BuildDimLookup(*dim_, dim_key_);
    const auto& fk = fact_->column(fact_key_).i64_data();
    for (std::size_t i = partner_.size(); i < fk.size(); ++i) {
      auto it = lookup.find(fk[i]);
      partner_.push_back(it == lookup.end() ? kInvalidRowId : it->second);
    }
  }
  if (fact_->num_rows() != partner_.size()) {
    return Status::Internal("JoinIndex out of sync with fact table");
  }
  return Status::OK();
}

Status JoinIndex::MaintainAfterDimDelete(
    const std::vector<RowId>& deleted_dim_rows) {
  if (deleted_dim_rows.empty()) return Status::OK();
  for (RowId& p : partner_) {
    if (p == kInvalidRowId) continue;
    const auto it = std::lower_bound(deleted_dim_rows.begin(),
                                     deleted_dim_rows.end(), p);
    if (it != deleted_dim_rows.end() && *it == p) {
      p = kInvalidRowId;  // partner row deleted
    } else {
      p -= static_cast<RowId>(it - deleted_dim_rows.begin());
    }
  }
  return Status::OK();
}

OperatorPtr JoinIndex::QueryPlan(std::vector<std::size_t> fact_cols,
                                 std::vector<std::size_t> dim_cols) const {
  return std::make_unique<GatherJoinOperator>(*fact_, *dim_, partner_,
                                              std::move(fact_cols),
                                              std::move(dim_cols));
}

}  // namespace patchindex
