#ifndef PATCHINDEX_BASELINES_MATERIALIZED_VIEW_H_
#define PATCHINDEX_BASELINES_MATERIALIZED_VIEW_H_

#include <cstdint>
#include <memory>

#include "exec/operator.h"
#include "storage/table.h"

namespace patchindex {

/// Materialized view baseline for distinct queries (paper §6): the
/// distinct values of one column are precomputed into a separate table, so
/// the query collapses to a scan of the view. The drawback the paper
/// hammers on: any base-table update invalidates the view, and keeping it
/// consistent means recomputing it (§6.2.4 shows the "tremendous
/// overhead" under trickle updates).
class DistinctMaterializedView {
 public:
  /// Precomputes the view (runs the distinct query once).
  DistinctMaterializedView(const Table& base, std::size_t column);

  /// Re-runs the distinct query against the current base table. This is
  /// the per-update maintenance cost of the baseline.
  void Refresh();

  /// The rewritten query: a plain scan over the materialized result.
  OperatorPtr QueryPlan() const;

  std::uint64_t num_values() const { return view_->num_rows(); }
  std::uint64_t MemoryUsageBytes() const { return view_->MemoryUsageBytes(); }

 private:
  const Table* base_;
  std::size_t column_;
  std::unique_ptr<Table> view_;
};

}  // namespace patchindex

#endif  // PATCHINDEX_BASELINES_MATERIALIZED_VIEW_H_
