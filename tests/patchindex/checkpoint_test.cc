// Tests for checkpoint persistence (§3.4) and RLE compression (§7).

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <string>

#include "bitmap/rle.h"
#include "common/rng.h"
#include "patchindex/checkpoint.h"
#include "patchindex/manager.h"

namespace patchindex {
namespace {

Schema KvSchema() {
  return Schema({{"key", ColumnType::kInt64}, {"val", ColumnType::kInt64}});
}

Table MakeTable(const std::vector<std::int64_t>& vals) {
  Table t(KvSchema());
  for (std::size_t i = 0; i < vals.size(); ++i) {
    t.AppendRow(Row{{Value(static_cast<std::int64_t>(i)), Value(vals[i])}});
  }
  return t;
}

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

class CheckpointTest : public ::testing::TestWithParam<ConstraintKind> {};

TEST_P(CheckpointTest, RoundTripPreservesState) {
  Table t = MakeTable({1, 5, 2, 5, 3, 9, 4, 5});
  auto original = PatchIndex::Create(t, 1, GetParam());
  // Param-unique name: the three instances run as parallel ctest
  // processes and share the temp directory.
  const std::string path = TempPath(
      ("roundtrip." + std::to_string(static_cast<int>(GetParam())) + ".pidx")
          .c_str());
  ASSERT_TRUE(SavePatchIndexCheckpoint(*original, path).ok());

  auto loaded = LoadPatchIndexCheckpoint(path, t);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const PatchIndex& restored = *loaded.value();
  EXPECT_EQ(restored.constraint(), original->constraint());
  EXPECT_EQ(restored.column(), original->column());
  EXPECT_EQ(restored.NumPatches(), original->NumPatches());
  EXPECT_EQ(restored.patches().PatchRowIds(),
            original->patches().PatchRowIds());
  EXPECT_EQ(restored.tail_value(), original->tail_value());
  EXPECT_EQ(restored.constant_value(), original->constant_value());
  EXPECT_TRUE(restored.CheckInvariant());
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(AllConstraints, CheckpointTest,
                         ::testing::Values(ConstraintKind::kNearlyUnique,
                                           ConstraintKind::kNearlySorted,
                                           ConstraintKind::kNearlyConstant),
                         [](const auto& info) {
                           switch (info.param) {
                             case ConstraintKind::kNearlyUnique:
                               return "Nuc";
                             case ConstraintKind::kNearlySorted:
                               return "Nsc";
                             default:
                               return "Ncc";
                           }
                         });

TEST(CheckpointTest, RestoredIndexKeepsHandlingUpdates) {
  Table t = MakeTable({1, 2, 3, 4});
  auto original = PatchIndex::Create(t, 1, ConstraintKind::kNearlySorted);
  const std::string path = TempPath("updates.pidx");
  ASSERT_TRUE(SavePatchIndexCheckpoint(*original, path).ok());
  original.reset();

  auto loaded = LoadPatchIndexCheckpoint(path, t);
  ASSERT_TRUE(loaded.ok());
  PatchIndex* idx = loaded.value().get();
  t.BufferInsert(Row{{Value(std::int64_t{4}), Value(std::int64_t{2})}});
  ASSERT_TRUE(idx->HandleUpdateQuery().ok());
  t.Checkpoint();
  ASSERT_TRUE(idx->AfterCheckpoint().ok());
  EXPECT_TRUE(idx->IsPatch(4));  // 2 < tail 4
  EXPECT_TRUE(idx->CheckInvariant());
  std::remove(path.c_str());
}

TEST(CheckpointTest, CardinalityMismatchIsRejected) {
  Table t = MakeTable({1, 2, 3});
  auto original = PatchIndex::Create(t, 1, ConstraintKind::kNearlyUnique);
  const std::string path = TempPath("mismatch.pidx");
  ASSERT_TRUE(SavePatchIndexCheckpoint(*original, path).ok());
  // The table changes after the checkpoint.
  t.AppendRow(Row{{Value(std::int64_t{3}), Value(std::int64_t{4})}});
  auto loaded = LoadPatchIndexCheckpoint(path, t);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kConstraintViolation);
  std::remove(path.c_str());
}

TEST(CheckpointTest, SaveThenCommitInvalidatesTheCheckpointPerPartition) {
  // §3.4: a checkpoint is only valid for the table state it was taken
  // from. After an update-commit changes a partition, loading that
  // partition's checkpoint must fail with kConstraintViolation; a fresh
  // save/load must agree with an index rebuilt from scratch. Exercised
  // per partition — indexes and checkpoints are partition-local.
  PartitionedTable pt(KvSchema(), 2);
  for (int i = 0; i < 40; ++i) {
    pt.AppendRow(
        Row{{Value(static_cast<std::int64_t>(i)),
             Value(static_cast<std::int64_t>(i % 2 == 0 ? i : 7))}});
  }
  PatchIndexManager mgr;
  std::vector<PatchIndex*> indexes =
      mgr.CreatePartitionedIndex(pt, 1, ConstraintKind::kNearlyUnique);
  ASSERT_EQ(indexes.size(), 2u);

  std::vector<std::string> paths;
  for (std::size_t p = 0; p < 2; ++p) {
    paths.push_back(TempPath(("percpart" + std::to_string(p) + ".pidx").c_str()));
    ASSERT_TRUE(SavePatchIndexCheckpoint(*indexes[p], paths[p]).ok());
  }

  // Commit an update through the manager: every partition changes.
  pt.BufferInsert(Row{{Value(std::int64_t{100}), Value(std::int64_t{7})}});
  pt.BufferInsert(Row{{Value(std::int64_t{101}), Value(std::int64_t{7})}});
  ASSERT_TRUE(mgr.CommitUpdateQuery(pt, nullptr).ok());

  for (std::size_t p = 0; p < 2; ++p) {
    // The pre-update checkpoint no longer matches the partition.
    auto stale = LoadPatchIndexCheckpoint(paths[p], pt.partition(p));
    ASSERT_FALSE(stale.ok()) << "partition " << p;
    EXPECT_EQ(stale.status().code(), StatusCode::kConstraintViolation);

    // A fresh save/load round-trip agrees with a rebuilt index.
    ASSERT_TRUE(SavePatchIndexCheckpoint(*indexes[p], paths[p]).ok());
    auto reloaded = LoadPatchIndexCheckpoint(paths[p], pt.partition(p));
    ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
    auto rebuilt = PatchIndex::Create(pt.partition(p), 1,
                                      ConstraintKind::kNearlyUnique);
    EXPECT_EQ(reloaded.value()->patches().PatchRowIds(),
              rebuilt->patches().PatchRowIds());
    EXPECT_TRUE(reloaded.value()->CheckInvariant());
    std::remove(paths[p].c_str());
  }
}

// Fault-injection coverage of the checkpoint writer (the engine's
// durability layer reuses it per partition): every failure mode must
// leave an error for the caller and never a file a later Load would
// accept as a complete checkpoint.

TEST(CheckpointTest, FailedWriteReportsErrorAndLoadRejectsTheFile) {
  Table t = MakeTable({1, 2, 3, 4});
  auto original = PatchIndex::Create(t, 1, ConstraintKind::kNearlyUnique);
  const std::string path = TempPath("failwrite.pidx");
  const FaultHook fail_write = [](const char* point) {
    return std::string_view(point) == "pidx_ckpt.write" ? FaultAction::kFail
                                                        : FaultAction::kNone;
  };
  EXPECT_FALSE(SavePatchIndexCheckpoint(*original, path, fail_write).ok());
  // kFail = clean ENOSPC before any byte: the file exists but is empty.
  auto loaded = LoadPatchIndexCheckpoint(path, t);
  EXPECT_FALSE(loaded.ok());
  std::remove(path.c_str());
}

TEST(CheckpointTest, ShortWriteReportsErrorAndLoadRejectsTheTornFile) {
  Table t = MakeTable({1, 5, 2, 5, 3, 9});
  auto original = PatchIndex::Create(t, 1, ConstraintKind::kNearlySorted);
  const std::string path = TempPath("shortwrite.pidx");
  const FaultHook short_write = [](const char* point) {
    return std::string_view(point) == "pidx_ckpt.write"
               ? FaultAction::kShortWrite
               : FaultAction::kNone;
  };
  EXPECT_FALSE(SavePatchIndexCheckpoint(*original, path, short_write).ok());
  // The torn half-file must not load as a (wrong) index.
  auto loaded = LoadPatchIndexCheckpoint(path, t);
  EXPECT_FALSE(loaded.ok());
  std::remove(path.c_str());
}

TEST(CheckpointTest, FsyncFailureReportsError) {
  Table t = MakeTable({1, 2});
  auto original = PatchIndex::Create(t, 1, ConstraintKind::kNearlyUnique);
  const std::string path = TempPath("failsync.pidx");
  const FaultHook fail_sync = [](const char* point) {
    return std::string_view(point) == "pidx_ckpt.fsync" ? FaultAction::kFail
                                                        : FaultAction::kNone;
  };
  // The content is fully written but not durable — the engine treats this
  // as a failed checkpoint and keeps the WAL instead.
  EXPECT_FALSE(SavePatchIndexCheckpoint(*original, path, fail_sync).ok());
  std::remove(path.c_str());
}

TEST(CheckpointTest, UnwritablePathReportsError) {
  Table t = MakeTable({1, 2});
  auto original = PatchIndex::Create(t, 1, ConstraintKind::kNearlyUnique);
  // A directory is not a writable file target.
  EXPECT_FALSE(
      SavePatchIndexCheckpoint(*original, ::testing::TempDir()).ok());
}

TEST(CheckpointTest, UnreadablePathReportsError) {
  Table t = MakeTable({1, 2});
  auto loaded = LoadPatchIndexCheckpoint(::testing::TempDir(), t);
  EXPECT_FALSE(loaded.ok());
}

TEST(CheckpointTest, MissingFile) {
  Table t = MakeTable({1});
  auto loaded = LoadPatchIndexCheckpoint(TempPath("nope.pidx"), t);
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST(CheckpointTest, GarbageFileIsRejected) {
  const std::string path = TempPath("garbage.pidx");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  std::fputs("this is not a checkpoint", f);
  std::fclose(f);
  Table t = MakeTable({1});
  auto loaded = LoadPatchIndexCheckpoint(path, t);
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(CheckpointTest, TruncatedFileIsRejected) {
  Table t = MakeTable({1, 1, 2, 2});
  auto original = PatchIndex::Create(t, 1, ConstraintKind::kNearlyUnique);
  const std::string path = TempPath("truncated.pidx");
  ASSERT_TRUE(SavePatchIndexCheckpoint(*original, path).ok());
  // Chop the last 8 bytes (one patch delta).
  std::FILE* f = std::fopen(path.c_str(), "rb");
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  ASSERT_EQ(truncate(path.c_str(), size - 8), 0);
  auto loaded = LoadPatchIndexCheckpoint(path, t);
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(RleTest, RoundTripSparse) {
  ShardedBitmapOptions opt;
  opt.shard_size_bits = 256;
  opt.parallel = false;
  ShardedBitmap bm(10'000, opt);
  for (std::uint64_t p : {0ull, 5ull, 6ull, 7ull, 9'999ull}) bm.Set(p);
  RleBitmap rle = RleEncode(bm);
  ShardedBitmap back = RleDecode(rle, opt);
  ASSERT_EQ(back.size(), bm.size());
  EXPECT_EQ(back.SetBitPositions(), bm.SetBitPositions());
}

TEST(RleTest, EmptyAndFullBitmaps) {
  ShardedBitmapOptions opt;
  opt.shard_size_bits = 128;
  opt.parallel = false;
  ShardedBitmap empty(1000, opt);
  EXPECT_EQ(RleEncode(empty).runs, (std::vector<std::uint64_t>{1000}));
  EXPECT_EQ(RleDecode(RleEncode(empty), opt).CountSetBits(), 0u);

  ShardedBitmap full(1000, opt);
  for (std::uint64_t i = 0; i < 1000; ++i) full.Set(i);
  RleBitmap rle = RleEncode(full);
  EXPECT_EQ(rle.runs, (std::vector<std::uint64_t>{0, 1000}));
  EXPECT_EQ(RleDecode(rle, opt).CountSetBits(), 1000u);
}

TEST(RleTest, RandomRoundTrip) {
  Rng rng(55);
  ShardedBitmapOptions opt;
  opt.shard_size_bits = 512;
  opt.parallel = false;
  for (int iter = 0; iter < 20; ++iter) {
    const std::uint64_t n = rng.Uniform(1, 5000);
    ShardedBitmap bm(n, opt);
    const double density = rng.NextDouble();
    for (std::uint64_t i = 0; i < n; ++i) {
      if (rng.NextBool(density)) bm.Set(i);
    }
    ShardedBitmap back = RleDecode(RleEncode(bm), opt);
    ASSERT_EQ(back.SetBitPositions(), bm.SetBitPositions()) << iter;
  }
}

TEST(RleTest, CompressesLowExceptionRates) {
  // The §7 claim: RLE shrinks the bitmap especially for low e.
  ShardedBitmapOptions opt;
  ShardedBitmap bm(1'000'000, opt);
  for (std::uint64_t i = 0; i < 1'000'000; i += 10'000) bm.Set(i);  // e=0.01%
  RleBitmap rle = RleEncode(bm);
  EXPECT_LT(rle.CompressedBytes(), bm.MemoryUsageBytes() / 50);
}

}  // namespace
}  // namespace patchindex
