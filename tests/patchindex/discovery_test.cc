#include "patchindex/discovery.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/rng.h"

namespace patchindex {
namespace {

Column I64Column(const std::vector<std::int64_t>& vals) {
  Column c(ColumnType::kInt64);
  for (auto v : vals) c.AppendInt64(v);
  return c;
}

TEST(NucDiscoveryTest, UniqueColumnHasNoPatches) {
  EXPECT_TRUE(DiscoverNucPatches(I64Column({1, 5, 3, 9})).empty());
}

TEST(NucDiscoveryTest, AllOccurrencesOfDuplicatedValuesArePatches) {
  // Values: 7 at rows {0,2,4}, 5 at rows {1,3}, 9 at row {5}. Every
  // occurrence of a duplicated value is a patch (§5.1) so the patch and
  // non-patch value sets are disjoint.
  auto patches = DiscoverNucPatches(I64Column({7, 5, 7, 5, 7, 9}));
  EXPECT_EQ(patches, (std::vector<RowId>{0, 1, 2, 3, 4}));
}

TEST(NucDiscoveryTest, NonPatchValuesAreGloballyUnique) {
  Rng rng(4);
  std::vector<std::int64_t> vals;
  for (int i = 0; i < 5000; ++i) {
    vals.push_back(static_cast<std::int64_t>(rng.Uniform(0, 9999)));
  }
  Column col = I64Column(vals);
  auto patches = DiscoverNucPatches(col);
  std::unordered_set<RowId> pset(patches.begin(), patches.end());
  std::unordered_map<std::int64_t, int> counts;
  for (auto v : vals) ++counts[v];
  std::size_t singletons = 0;
  for (const auto& [v, c] : counts) {
    if (c == 1) ++singletons;
  }
  // Non-patch rows are exactly the rows holding globally unique values.
  std::size_t kept = 0;
  for (std::size_t i = 0; i < vals.size(); ++i) {
    if (pset.count(i)) continue;
    EXPECT_EQ(counts[vals[i]], 1) << "non-unique value survived at " << i;
    ++kept;
  }
  EXPECT_EQ(kept, singletons);
}

TEST(LssTest, KnownSequences) {
  EXPECT_EQ(LongestSortedSubsequence({1, 2, 3}).size(), 3u);
  EXPECT_EQ(LongestSortedSubsequence({3, 2, 1}).size(), 1u);
  EXPECT_EQ(LongestSortedSubsequence({3, 2, 1}, false).size(), 3u);
  // Non-decreasing: duplicates extend the run.
  EXPECT_EQ(LongestSortedSubsequence({1, 1, 1}).size(), 3u);
  // Classic example.
  auto keep = LongestSortedSubsequence({10, 9, 2, 5, 3, 7, 101, 18});
  EXPECT_EQ(keep.size(), 4u);  // e.g. 2,3,7,18
  // Returned indices must be increasing and the values sorted.
  for (std::size_t i = 1; i < keep.size(); ++i) {
    EXPECT_LT(keep[i - 1], keep[i]);
  }
}

TEST(LssTest, EmptyInput) {
  EXPECT_TRUE(LongestSortedSubsequence({}).empty());
}

// Brute-force LIS length for small inputs (O(n^2) DP).
std::size_t BruteForceLssLength(const std::vector<std::int64_t>& v,
                                bool ascending) {
  if (v.empty()) return 0;
  std::vector<std::size_t> dp(v.size(), 1);
  std::size_t best = 1;
  for (std::size_t i = 1; i < v.size(); ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      const bool ok = ascending ? v[j] <= v[i] : v[j] >= v[i];
      if (ok) dp[i] = std::max(dp[i], dp[j] + 1);
    }
    best = std::max(best, dp[i]);
  }
  return best;
}

TEST(LssTest, MatchesBruteForceOnRandomInputs) {
  Rng rng(11);
  for (int iter = 0; iter < 100; ++iter) {
    const bool ascending = iter % 2 == 0;
    std::vector<std::int64_t> v;
    const std::size_t n = rng.Uniform(0, 60);
    for (std::size_t i = 0; i < n; ++i) {
      v.push_back(static_cast<std::int64_t>(rng.Uniform(0, 20)));
    }
    auto keep = LongestSortedSubsequence(v, ascending);
    EXPECT_EQ(keep.size(), BruteForceLssLength(v, ascending))
        << "iter " << iter;
    // Validity: indices increasing, values sorted in requested order.
    for (std::size_t i = 1; i < keep.size(); ++i) {
      ASSERT_LT(keep[i - 1], keep[i]);
      if (ascending) {
        ASSERT_LE(v[keep[i - 1]], v[keep[i]]);
      } else {
        ASSERT_GE(v[keep[i - 1]], v[keep[i]]);
      }
    }
  }
}

TEST(NscDiscoveryTest, SortedColumnHasNoPatches) {
  auto d = DiscoverNscPatches(I64Column({1, 2, 2, 3, 10}));
  EXPECT_TRUE(d.patches.empty());
  EXPECT_TRUE(d.has_tail);
  EXPECT_EQ(d.tail_value, 10);
}

TEST(NscDiscoveryTest, PatchesAreComplementOfLss) {
  auto d = DiscoverNscPatches(I64Column({1, 5, 2, 3, 4}));
  // LSS is 1,2,3,4 -> patch is row 1 (value 5).
  EXPECT_EQ(d.patches, (std::vector<RowId>{1}));
  EXPECT_EQ(d.tail_value, 4);
}

TEST(NscDiscoveryTest, DescendingOrder) {
  // Two optima exist ({9,7,5} and {9,8,5}); either leaves one patch and
  // tail 5.
  auto d = DiscoverNscPatches(I64Column({9, 7, 8, 5}), /*ascending=*/false);
  ASSERT_EQ(d.patches.size(), 1u);
  EXPECT_TRUE(d.patches[0] == 1 || d.patches[0] == 2);
  EXPECT_EQ(d.tail_value, 5);
}

TEST(NscDiscoveryTest, EmptyColumn) {
  auto d = DiscoverNscPatches(I64Column({}));
  EXPECT_TRUE(d.patches.empty());
  EXPECT_FALSE(d.has_tail);
}

}  // namespace
}  // namespace patchindex
