// Tests for the nearly-constant-column extension (paper §5.5 / §7 future
// work): discovery, update handling, invariants, and the distinct rewrite
// that collapses the non-patch subtree into a single constant row.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.h"
#include "optimizer/rewriter.h"
#include "patchindex/discovery.h"
#include "patchindex/manager.h"
#include "patchindex/ncc_constraint.h"
#include "patchindex/patch_set.h"

namespace patchindex {
namespace {

Schema KvSchema() {
  return Schema({{"key", ColumnType::kInt64}, {"val", ColumnType::kInt64}});
}

Table MakeTable(const std::vector<std::int64_t>& vals) {
  Table t(KvSchema());
  for (std::size_t i = 0; i < vals.size(); ++i) {
    t.AppendRow(Row{{Value(static_cast<std::int64_t>(i)), Value(vals[i])}});
  }
  return t;
}

PatchIndexOptions SmallOptions() {
  PatchIndexOptions o;
  o.bitmap_options.shard_size_bits = 256;
  o.bitmap_options.parallel = false;
  return o;
}

TEST(NccDiscoveryTest, MajorityValueIsTheConstant) {
  Column c(ColumnType::kInt64);
  for (std::int64_t v : {7, 7, 3, 7, 9, 7}) c.AppendInt64(v);
  auto d = DiscoverNccPatches(c);
  ASSERT_TRUE(d.has_constant);
  EXPECT_EQ(d.constant, 7);
  EXPECT_EQ(d.patches, (std::vector<RowId>{2, 4}));
}

TEST(NccDiscoveryTest, TieBreaksTowardsSmallerValue) {
  Column c(ColumnType::kInt64);
  for (std::int64_t v : {5, 2, 5, 2}) c.AppendInt64(v);
  auto d = DiscoverNccPatches(c);
  EXPECT_EQ(d.constant, 2);
  EXPECT_EQ(d.patches.size(), 2u);
}

TEST(NccDiscoveryTest, EmptyColumn) {
  Column c(ColumnType::kInt64);
  auto d = DiscoverNccPatches(c);
  EXPECT_FALSE(d.has_constant);
  EXPECT_TRUE(d.patches.empty());
}

// Direct tests of the internal update-handling unit (the same shape as
// the NUC/NSC units; PatchIndex::HandleUpdateQuery dispatches to it).

TEST(NccConstraintUnitTest, InsertHandlerDefinesConstantAndMarksPatches) {
  Table t = MakeTable({});
  auto patches = PatchSet::Create(PatchSetDesign::kIdentifier, 0, {});
  std::int64_t constant = 0;
  bool has_constant = false;
  t.BufferInsert(Row{{Value(std::int64_t{0}), Value(std::int64_t{5})}});
  t.BufferInsert(Row{{Value(std::int64_t{1}), Value(std::int64_t{5})}});
  t.BufferInsert(Row{{Value(std::int64_t{2}), Value(std::int64_t{9})}});
  patches->OnAppendRows(3);
  ASSERT_TRUE(internal::NccHandleInsert(t, 1, patches.get(), &constant,
                                        &has_constant)
                  .ok());
  EXPECT_TRUE(has_constant);
  EXPECT_EQ(constant, 5);
  EXPECT_FALSE(patches->IsPatch(0));
  EXPECT_FALSE(patches->IsPatch(1));
  EXPECT_TRUE(patches->IsPatch(2));
}

TEST(NccConstraintUnitTest, ModifyHandlerMarksOnlyDeviatingCells) {
  Table t = MakeTable({4, 4, 4});
  auto patches = PatchSet::Create(PatchSetDesign::kIdentifier, 3, {});
  ASSERT_TRUE(t.BufferModify(0, 1, Value(std::int64_t{4})).ok());   // no-op
  ASSERT_TRUE(t.BufferModify(1, 1, Value(std::int64_t{11})).ok());
  ASSERT_TRUE(t.BufferModify(2, 0, Value(std::int64_t{99})).ok());  // other col
  ASSERT_TRUE(internal::NccHandleModify(t, 1, patches.get(), 4).ok());
  EXPECT_FALSE(patches->IsPatch(0));
  EXPECT_TRUE(patches->IsPatch(1));
  EXPECT_FALSE(patches->IsPatch(2));
}

TEST(NccPatchIndexTest, CreateAndInvariant) {
  Table t = MakeTable({4, 4, 4, 9, 4, 1});
  auto idx = PatchIndex::Create(t, 1, ConstraintKind::kNearlyConstant,
                                SmallOptions());
  EXPECT_EQ(idx->NumPatches(), 2u);
  EXPECT_EQ(idx->constant_value(), 4);
  EXPECT_TRUE(idx->CheckInvariant());
}

TEST(NccPatchIndexTest, InsertHandling) {
  Table t = MakeTable({4, 4, 4});
  PatchIndexManager mgr;
  PatchIndex* idx = mgr.CreateIndex(t, 1, ConstraintKind::kNearlyConstant,
                                    SmallOptions());
  t.BufferInsert(Row{{Value(std::int64_t{3}), Value(std::int64_t{4})}});
  t.BufferInsert(Row{{Value(std::int64_t{4}), Value(std::int64_t{8})}});
  ASSERT_TRUE(mgr.CommitUpdateQuery(t).ok());
  EXPECT_FALSE(idx->IsPatch(3));  // equals the constant
  EXPECT_TRUE(idx->IsPatch(4));
  EXPECT_TRUE(idx->CheckInvariant());
}

TEST(NccPatchIndexTest, ModifyHandling) {
  Table t = MakeTable({4, 4, 4, 4});
  PatchIndexManager mgr;
  PatchIndex* idx = mgr.CreateIndex(t, 1, ConstraintKind::kNearlyConstant,
                                    SmallOptions());
  ASSERT_TRUE(t.BufferModify(1, 1, Value(std::int64_t{99})).ok());
  ASSERT_TRUE(t.BufferModify(2, 1, Value(std::int64_t{4})).ok());  // no-op
  ASSERT_TRUE(mgr.CommitUpdateQuery(t).ok());
  EXPECT_TRUE(idx->IsPatch(1));
  EXPECT_FALSE(idx->IsPatch(2));
  EXPECT_TRUE(idx->CheckInvariant());
}

TEST(NccPatchIndexTest, DeleteHandling) {
  Table t = MakeTable({4, 9, 4, 8});
  PatchIndexManager mgr;
  PatchIndex* idx = mgr.CreateIndex(t, 1, ConstraintKind::kNearlyConstant,
                                    SmallOptions());
  ASSERT_EQ(idx->NumPatches(), 2u);
  ASSERT_TRUE(t.BufferDelete(1).ok());
  ASSERT_TRUE(mgr.CommitUpdateQuery(t).ok());
  EXPECT_EQ(idx->NumPatches(), 1u);
  EXPECT_TRUE(idx->IsPatch(2));  // the 8, shifted down
  EXPECT_TRUE(idx->CheckInvariant());
}

TEST(NccPatchIndexTest, InsertIntoEmptyTableDefinesConstant) {
  Table t(KvSchema());
  PatchIndexManager mgr;
  PatchIndex* idx = mgr.CreateIndex(t, 1, ConstraintKind::kNearlyConstant,
                                    SmallOptions());
  EXPECT_FALSE(idx->has_constant());
  t.BufferInsert(Row{{Value(std::int64_t{0}), Value(std::int64_t{13})}});
  t.BufferInsert(Row{{Value(std::int64_t{1}), Value(std::int64_t{13})}});
  t.BufferInsert(Row{{Value(std::int64_t{2}), Value(std::int64_t{7})}});
  ASSERT_TRUE(mgr.CommitUpdateQuery(t).ok());
  EXPECT_TRUE(idx->has_constant());
  EXPECT_EQ(idx->constant_value(), 13);
  EXPECT_EQ(idx->NumPatches(), 1u);
  EXPECT_TRUE(idx->CheckInvariant());
}

std::vector<std::int64_t> RunDistinct(const Table& t,
                                      const PatchIndexManager& mgr,
                                      const OptimizerOptions& opt) {
  OperatorPtr plan = PlanQuery(LDistinct(LScan(t, {1}), {0}), mgr, opt);
  Batch out = Collect(*plan);
  std::vector<std::int64_t> v = out.columns[0].i64;
  std::sort(v.begin(), v.end());
  return v;
}

TEST(NccRewriteTest, DistinctCollapsesToConstantPlusPatches) {
  Table t = MakeTable({4, 4, 9, 4, 1, 4, 9});
  PatchIndexManager mgr;
  mgr.CreateIndex(t, 1, ConstraintKind::kNearlyConstant, SmallOptions());
  OptimizerOptions forced;
  forced.force_patch_rewrites = true;
  LogicalPtr optimized = OptimizePlan(LDistinct(LScan(t, {1}), {0}), mgr,
                                      forced);
  EXPECT_EQ(optimized->kind, LogicalNode::Kind::kPatchDistinct);
  PatchIndexManager empty;
  EXPECT_EQ(RunDistinct(t, mgr, forced),
            (std::vector<std::int64_t>{1, 4, 9}));
  EXPECT_EQ(RunDistinct(t, mgr, forced), RunDistinct(t, empty, {}));
}

TEST(NccRewriteTest, PatchHoldingConstantIsDeduplicated) {
  // A patch row modified back to the constant stays a patch (§5.2-style
  // optimality loss); the rewrite must not emit the constant twice.
  Table t = MakeTable({4, 4, 4, 7});
  PatchIndexManager mgr;
  mgr.CreateIndex(t, 1, ConstraintKind::kNearlyConstant, SmallOptions());
  ASSERT_TRUE(t.BufferModify(3, 1, Value(std::int64_t{4})).ok());
  ASSERT_TRUE(mgr.CommitUpdateQuery(t).ok());
  OptimizerOptions forced;
  forced.force_patch_rewrites = true;
  EXPECT_EQ(RunDistinct(t, mgr, forced), (std::vector<std::int64_t>{4}));
}

TEST(NccRewriteTest, ZeroBranchPruningYieldsSingleRow) {
  Table t = MakeTable({6, 6, 6, 6});
  PatchIndexManager mgr;
  PatchIndex* idx = mgr.CreateIndex(t, 1, ConstraintKind::kNearlyConstant,
                                    SmallOptions());
  ASSERT_EQ(idx->NumPatches(), 0u);
  OptimizerOptions opt;
  opt.force_patch_rewrites = true;
  opt.zero_branch_pruning = true;
  EXPECT_EQ(RunDistinct(t, mgr, opt), (std::vector<std::int64_t>{6}));
}

TEST(NccRewriteTest, NotAppliedThroughSelections) {
  Table t = MakeTable({4, 4, 9});
  PatchIndexManager mgr;
  mgr.CreateIndex(t, 1, ConstraintKind::kNearlyConstant, SmallOptions());
  OptimizerOptions forced;
  forced.force_patch_rewrites = true;
  // A selection may filter every constant row; the rewrite must not fire.
  LogicalPtr plan = LDistinct(
      LSelect(LScan(t, {1}), Gt(Col(0), ConstInt(5)), 0.5), {0});
  LogicalPtr optimized = OptimizePlan(plan, mgr, forced);
  EXPECT_EQ(optimized->kind, LogicalNode::Kind::kDistinct);
}

TEST(NccRewriteTest, RandomUpdateStreamStaysExact) {
  Table t = MakeTable(std::vector<std::int64_t>(500, 42));
  PatchIndexManager mgr;
  PatchIndex* idx = mgr.CreateIndex(t, 1, ConstraintKind::kNearlyConstant,
                                    SmallOptions());
  PatchIndexManager empty;
  OptimizerOptions forced;
  forced.force_patch_rewrites = true;
  Rng rng(3);
  for (int step = 0; step < 30; ++step) {
    const int op = static_cast<int>(rng.Uniform(0, 2));
    if (op == 0) {
      for (int i = 0; i < 5; ++i) {
        const std::int64_t v =
            rng.NextBool(0.7) ? 42 : static_cast<std::int64_t>(
                                         rng.Uniform(0, 100));
        t.BufferInsert(Row{{Value(std::int64_t(1000 + step * 5 + i)),
                            Value(v)}});
      }
    } else if (op == 1) {
      for (int i = 0; i < 3; ++i) {
        ASSERT_TRUE(
            t.BufferModify(rng.Uniform(0, t.num_rows() - 1), 1,
                           Value(static_cast<std::int64_t>(
                               rng.Uniform(0, 100))))
                .ok());
      }
    } else {
      std::set<RowId> kill;
      while (kill.size() < 3) kill.insert(rng.Uniform(0, t.num_rows() - 1));
      for (RowId r : kill) ASSERT_TRUE(t.BufferDelete(r).ok());
    }
    ASSERT_TRUE(mgr.CommitUpdateQuery(t).ok()) << step;
    ASSERT_TRUE(idx->CheckInvariant()) << step;
    ASSERT_EQ(RunDistinct(t, mgr, forced), RunDistinct(t, empty, {}))
        << step;
  }
}

}  // namespace
}  // namespace patchindex
