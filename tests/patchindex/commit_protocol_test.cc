// Regression tests for the update-commit protocol's partial-failure
// handling: a mid-commit index-maintenance failure must never leave a
// registered index silently stale against the checkpointed table. The
// protocol is all-or-nothing per index — the data change commits, exactly
// the broken indexes are dropped, and the status reports it.
//
// Failures are injected via PatchIndexOptions::maintenance_fault_hook, so
// real constraint state is never corrupted by the test itself.

#include <gtest/gtest.h>

#include <atomic>

#include "common/thread_pool.h"
#include "patchindex/manager.h"

namespace patchindex {
namespace {

Schema KvSchema() {
  return Schema({{"key", ColumnType::kInt64}, {"val", ColumnType::kInt64}});
}

Table MakeTable(std::size_t rows) {
  Table t(KvSchema());
  for (std::size_t i = 0; i < rows; ++i) {
    t.AppendRow(Row{{Value(static_cast<std::int64_t>(i)),
                     Value(static_cast<std::int64_t>(i * 10))}});
  }
  return t;
}

Row KvRow(std::int64_t key, std::int64_t val) {
  return Row{{Value(key), Value(val)}};
}

/// Options whose hook fails in `phase` while `*armed` is true.
PatchIndexOptions FaultyOptions(std::shared_ptr<std::atomic<bool>> armed,
                                std::string phase) {
  PatchIndexOptions o;
  o.maintenance_fault_hook = [armed = std::move(armed),
                              phase = std::move(phase)](const char* at) {
    if (armed->load() && phase == at) {
      return Status::Internal("injected " + phase + " fault");
    }
    return Status::OK();
  };
  return o;
}

TEST(CommitProtocolTest, AfterCheckpointFailureDropsOnlyTheBrokenIndex) {
  Table t = MakeTable(64);
  PatchIndexManager mgr;
  auto armed = std::make_shared<std::atomic<bool>>(false);
  // The faulty index registers FIRST: before the fix, its failure made
  // CommitUpdateQuery return early, leaving the healthy index (which had
  // already handled the delta) un-maintained but still registered.
  mgr.CreateIndex(t, 0, ConstraintKind::kNearlySorted,
                  FaultyOptions(armed, "after"));
  PatchIndex* healthy = mgr.CreateIndex(t, 1, ConstraintKind::kNearlyUnique);
  ASSERT_EQ(mgr.num_indexes(), 2u);

  armed->store(true);
  t.BufferInsert(KvRow(64, 640));
  t.BufferInsert(KvRow(65, 650));
  const Status st = mgr.CommitUpdateQuery(t);

  // The data change committed regardless.
  EXPECT_EQ(t.num_rows(), 66u);
  EXPECT_TRUE(t.pdt().empty());
  // The failure is surfaced, naming the drop.
  EXPECT_EQ(st.code(), StatusCode::kConstraintViolation);
  EXPECT_NE(st.message().find("dropped 1 patch index"), std::string::npos);
  EXPECT_NE(st.message().find("injected after fault"), std::string::npos);
  // Exactly the broken index is gone; the survivor is fully maintained —
  // not stale against the checkpointed table.
  ASSERT_EQ(mgr.num_indexes(), 1u);
  ASSERT_EQ(mgr.IndexesOn(t).size(), 1u);
  EXPECT_EQ(mgr.IndexesOn(t)[0], healthy);
  EXPECT_EQ(healthy->NumRows(), t.num_rows());
  EXPECT_TRUE(healthy->CheckInvariant());

  // Subsequent commits run clean on the survivor.
  armed->store(false);
  t.BufferInsert(KvRow(66, 660));
  EXPECT_TRUE(mgr.CommitUpdateQuery(t).ok());
  EXPECT_EQ(healthy->NumRows(), 67u);
}

TEST(CommitProtocolTest, HandleFailureStillCommitsAndMaintainsSurvivors) {
  Table t = MakeTable(32);
  PatchIndexManager mgr;
  auto armed = std::make_shared<std::atomic<bool>>(true);
  mgr.CreateIndex(t, 1, ConstraintKind::kNearlyUnique,
                  FaultyOptions(armed, "handle"));
  PatchIndex* healthy = mgr.CreateIndex(t, 0, ConstraintKind::kNearlySorted);

  ASSERT_TRUE(t.BufferDelete(3).ok());
  const Status st = mgr.CommitUpdateQuery(t);
  EXPECT_EQ(st.code(), StatusCode::kConstraintViolation);
  EXPECT_EQ(t.num_rows(), 31u);
  ASSERT_EQ(mgr.IndexesOn(t).size(), 1u);
  EXPECT_EQ(mgr.IndexesOn(t)[0], healthy);
  EXPECT_EQ(healthy->NumRows(), 31u);
  EXPECT_TRUE(healthy->CheckInvariant());
}

TEST(CommitProtocolTest, MixedDeltaKindsRejectedBeforeAnyStateChanges) {
  Table t = MakeTable(16);
  PatchIndexManager mgr;
  PatchIndex* idx = mgr.CreateIndex(t, 1, ConstraintKind::kNearlyUnique);

  t.BufferInsert(KvRow(16, 160));
  ASSERT_TRUE(t.BufferDelete(0).ok());
  const Status st = mgr.CommitUpdateQuery(t);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  // Nothing committed, nothing dropped: table and index are untouched.
  EXPECT_EQ(t.num_rows(), 16u);
  EXPECT_FALSE(t.pdt().empty());
  EXPECT_EQ(mgr.num_indexes(), 1u);
  EXPECT_EQ(idx->NumRows(), 16u);
}

TEST(CommitProtocolTest, PartitionedCommitIsPartitionLocal) {
  PartitionedTable pt(KvSchema(), 3);
  for (int i = 0; i < 90; ++i) {
    pt.AppendRow(KvRow(i, i * 10));
  }
  PatchIndexManager mgr;
  auto armed = std::make_shared<std::atomic<bool>>(false);
  // Per-partition NUC indexes; partition 1's index carries the fault.
  mgr.CreatePartitionedIndex(pt, 1, ConstraintKind::kNearlyUnique);
  ASSERT_EQ(mgr.num_indexes(), 3u);
  PatchIndex* faulty = mgr.CreateIndex(pt.partition(1), 0,
                                       ConstraintKind::kNearlySorted,
                                       FaultyOptions(armed, "after"));
  (void)faulty;
  ASSERT_EQ(mgr.num_indexes(), 4u);

  // Dirty every partition, then commit in parallel on a pool.
  armed->store(true);
  pt.BufferInsert(KvRow(90, 900));
  pt.BufferInsert(KvRow(91, 910));
  pt.BufferInsert(KvRow(92, 920));
  ASSERT_FALSE(pt.pdt_empty());
  ThreadPool pool(3);
  const Status st = mgr.CommitUpdateQuery(pt, &pool);

  // Every partition checkpointed its delta...
  EXPECT_TRUE(pt.pdt_empty());
  EXPECT_EQ(pt.num_rows(), 93u);
  // ...the broken index (and only it) is gone, the error names its
  // partition, and the three per-partition NUCs are maintained.
  EXPECT_EQ(st.code(), StatusCode::kConstraintViolation);
  EXPECT_NE(st.message().find("partition 1"), std::string::npos);
  EXPECT_EQ(mgr.num_indexes(), 3u);
  for (PatchIndex* idx : mgr.IndexesOn(pt)) {
    EXPECT_EQ(idx->constraint(), ConstraintKind::kNearlyUnique);
    EXPECT_EQ(idx->NumRows(), idx->table().num_rows());
    EXPECT_TRUE(idx->CheckInvariant());
  }
}

TEST(CommitProtocolTest, PartitionedCommitValidatesEveryPartitionFirst) {
  PartitionedTable pt(KvSchema(), 2);
  for (int i = 0; i < 10; ++i) pt.AppendRow(KvRow(i, i));
  PatchIndexManager mgr;
  mgr.CreatePartitionedIndex(pt, 1, ConstraintKind::kNearlyUnique);

  // Partition 0 gets a clean insert; partition 1 a mixed (invalid) delta.
  pt.partition(0).BufferInsert(KvRow(100, 100));
  pt.partition(1).BufferInsert(KvRow(101, 101));
  ASSERT_TRUE(pt.partition(1).BufferDelete(0).ok());

  const Status st = mgr.CommitUpdateQuery(pt, nullptr);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  // Neither partition committed: a sibling's invalid delta aborts the
  // whole update before any checkpoint.
  EXPECT_FALSE(pt.partition(0).pdt().empty());
  EXPECT_FALSE(pt.partition(1).pdt().empty());
  EXPECT_EQ(pt.num_rows(), 10u);
  EXPECT_EQ(mgr.num_indexes(), 2u);
}

}  // namespace
}  // namespace patchindex
