// Maintenance-path tests: lazy minmax rebuild after deletes, automatic
// bitmap condensing under heavy delete streams, staleness protection in
// the rewriter, and long alternating update sequences.

#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "optimizer/rewriter.h"
#include "patchindex/manager.h"
#include "workload/generator.h"

namespace patchindex {
namespace {

Schema KvSchema() {
  return Schema({{"key", ColumnType::kInt64}, {"val", ColumnType::kInt64}});
}

Table MakeTable(const std::vector<std::int64_t>& vals) {
  Table t(KvSchema());
  for (std::size_t i = 0; i < vals.size(); ++i) {
    t.AppendRow(Row{{Value(static_cast<std::int64_t>(i)), Value(vals[i])}});
  }
  return t;
}

TEST(MaintenanceTest, NucInsertHandlingWorksAfterDeletes) {
  // Deletes shift rowIDs and invalidate the minmax block mapping; the
  // index must rebuild it lazily and still find collisions correctly.
  std::vector<std::int64_t> vals(512);
  for (int i = 0; i < 512; ++i) vals[i] = i * 10;
  Table t = MakeTable(vals);
  PatchIndexOptions o;
  o.minmax_block_size = 16;
  o.bitmap_options.shard_size_bits = 128;
  o.bitmap_options.parallel = false;
  PatchIndexManager mgr;
  PatchIndex* idx = mgr.CreateIndex(t, 1, ConstraintKind::kNearlyUnique, o);

  for (RowId r : {5ull, 100ull, 200ull}) ASSERT_TRUE(t.BufferDelete(r).ok());
  ASSERT_TRUE(mgr.CommitUpdateQuery(t).ok());

  // Insert a collision with a value whose row shifted (base row 300 held
  // 3000; after 3 deletes below it sits at row 297).
  t.BufferInsert(Row{{Value(std::int64_t{600}), Value(std::int64_t{3000})}});
  ASSERT_TRUE(mgr.CommitUpdateQuery(t).ok());
  EXPECT_TRUE(idx->IsPatch(297));
  EXPECT_TRUE(idx->IsPatch(509));  // the inserted row
  EXPECT_TRUE(idx->CheckInvariant());
  // The rebuilt minmax still prunes: only a fraction was scanned.
  EXPECT_LT(idx->last_handled_scan_fraction(), 0.2);
}

TEST(MaintenanceTest, AutoCondenseKeepsBitmapUtilizationHigh) {
  std::vector<std::int64_t> vals(4096);
  for (int i = 0; i < 4096; ++i) vals[i] = i;
  Table t = MakeTable(vals);
  PatchIndexOptions o;
  o.bitmap_options.shard_size_bits = 128;
  o.bitmap_options.parallel = false;
  o.bitmap_options.auto_condense_threshold = 0.8;
  PatchIndexManager mgr;
  PatchIndex* idx = mgr.CreateIndex(t, 1, ConstraintKind::kNearlySorted, o);

  Rng rng(3);
  for (int round = 0; round < 30; ++round) {
    std::set<RowId> kill;
    while (kill.size() < 50) kill.insert(rng.Uniform(0, t.num_rows() - 1));
    for (RowId r : kill) ASSERT_TRUE(t.BufferDelete(r).ok());
    ASSERT_TRUE(mgr.CommitUpdateQuery(t).ok());
    const auto* bps = dynamic_cast<const BitmapPatchSet*>(&idx->patches());
    ASSERT_NE(bps, nullptr);
    ASSERT_GE(bps->bitmap().Utilization(), 0.8) << "round " << round;
    ASSERT_TRUE(idx->CheckInvariant()) << "round " << round;
  }
  EXPECT_EQ(t.num_rows(), 4096u - 30 * 50);
}

TEST(MaintenanceTest, RewriterSkipsStaleIndex) {
  // If the table is updated *without* running the index handlers (e.g. a
  // bulk load bypassing the manager), the index cardinality no longer
  // matches and the rewriter must not use it.
  Table t = MakeTable({1, 2, 2, 3});
  PatchIndexManager mgr;
  mgr.CreateIndex(t, 1, ConstraintKind::kNearlyUnique, {});
  t.AppendRow(Row{{Value(std::int64_t{4}), Value(std::int64_t{2})}});

  OptimizerOptions forced;
  forced.force_patch_rewrites = true;
  LogicalPtr optimized = OptimizePlan(LDistinct(LScan(t, {1}), {0}), mgr,
                                      forced);
  EXPECT_EQ(optimized->kind, LogicalNode::Kind::kDistinct);
}

TEST(MaintenanceTest, AlternatingUpdateKindsAcrossManyQueries) {
  GeneratorConfig cfg;
  cfg.num_rows = 2'000;
  cfg.exception_rate = 0.1;
  Table t = GenerateNscTable(cfg);
  PatchIndexOptions o;
  o.bitmap_options.shard_size_bits = 256;
  o.bitmap_options.parallel = false;
  PatchIndexManager mgr;
  PatchIndex* idx = mgr.CreateIndex(t, 1, ConstraintKind::kNearlySorted, o);
  Rng rng(8);
  std::int64_t key = 10'000;
  for (int q = 0; q < 60; ++q) {
    switch (q % 3) {
      case 0:
        for (int i = 0; i < 7; ++i) {
          t.BufferInsert(MakeGeneratorRow(
              key++, static_cast<std::int64_t>(rng.Uniform(0, 10'000))));
        }
        break;
      case 1:
        for (int i = 0; i < 4; ++i) {
          ASSERT_TRUE(t.BufferModify(rng.Uniform(0, t.num_rows() - 1), 1,
                                     Value(static_cast<std::int64_t>(
                                         rng.Uniform(0, 10'000))))
                          .ok());
        }
        break;
      case 2: {
        std::set<RowId> kill;
        while (kill.size() < 5) kill.insert(rng.Uniform(0, t.num_rows() - 1));
        for (RowId r : kill) ASSERT_TRUE(t.BufferDelete(r).ok());
        break;
      }
    }
    ASSERT_TRUE(mgr.CommitUpdateQuery(t).ok()) << "query " << q;
    ASSERT_TRUE(idx->CheckInvariant()) << "query " << q;
  }
  // The sort plan over the heavily-updated table is still exactly sorted.
  OptimizerOptions forced;
  forced.force_patch_rewrites = true;
  Batch out =
      Collect(*PlanQuery(LSort(LScan(t, {1}), {{0, true}}), mgr, forced));
  ASSERT_EQ(out.num_rows(), t.num_rows());
  EXPECT_TRUE(
      std::is_sorted(out.columns[0].i64.begin(), out.columns[0].i64.end()));
}

}  // namespace
}  // namespace patchindex
