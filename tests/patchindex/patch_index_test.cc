// End-to-end tests for PatchIndex creation and the §5 update handling:
// inserts (Figure 5 join with DRP), modifies, deletes, the recompute
// monitor, and the constraint invariant under long random update streams.

#include "patchindex/patch_index.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "patchindex/manager.h"

namespace patchindex {
namespace {

Schema KvSchema() {
  return Schema({{"key", ColumnType::kInt64}, {"val", ColumnType::kInt64}});
}

Table MakeTable(const std::vector<std::int64_t>& vals) {
  Table t(KvSchema());
  for (std::size_t i = 0; i < vals.size(); ++i) {
    t.AppendRow(Row{{Value(static_cast<std::int64_t>(i)), Value(vals[i])}});
  }
  return t;
}

Row InsertRow(std::int64_t key, std::int64_t val) {
  return Row{{Value(key), Value(val)}};
}

PatchIndexOptions SmallOptions(PatchSetDesign design = PatchSetDesign::kBitmap) {
  PatchIndexOptions o;
  o.design = design;
  o.bitmap_options.shard_size_bits = 256;
  o.bitmap_options.parallel = false;
  o.minmax_block_size = 8;
  return o;
}

TEST(PatchIndexCreateTest, NucDiscoversDuplicates) {
  Table t = MakeTable({7, 5, 7, 5, 7, 1});
  auto idx = PatchIndex::Create(t, 1, ConstraintKind::kNearlyUnique,
                                SmallOptions());
  // All occurrences of the duplicated values 7 and 5 are patches (§5.1).
  EXPECT_EQ(idx->NumPatches(), 5u);
  EXPECT_FALSE(idx->IsPatch(5));  // the unique value 1
  EXPECT_TRUE(idx->CheckInvariant());
  EXPECT_NEAR(idx->exception_rate(), 5.0 / 6.0, 1e-9);
}

TEST(PatchIndexCreateTest, NscDiscoversUnsortedRows) {
  Table t = MakeTable({1, 5, 2, 3, 4});
  auto idx = PatchIndex::Create(t, 1, ConstraintKind::kNearlySorted,
                                SmallOptions());
  EXPECT_EQ(idx->NumPatches(), 1u);
  EXPECT_TRUE(idx->IsPatch(1));
  EXPECT_TRUE(idx->CheckInvariant());
  EXPECT_EQ(idx->tail_value(), 4);
}

class NucUpdateTest : public ::testing::TestWithParam<PatchSetDesign> {};

TEST_P(NucUpdateTest, InsertWithoutCollisionAddsNoPatches) {
  Table t = MakeTable({10, 20, 30});
  PatchIndexManager mgr;
  PatchIndex* idx = mgr.CreateIndex(t, 1, ConstraintKind::kNearlyUnique,
                                    SmallOptions(GetParam()));
  t.BufferInsert(InsertRow(3, 40));
  t.BufferInsert(InsertRow(4, 50));
  ASSERT_TRUE(mgr.CommitUpdateQuery(t).ok());
  EXPECT_EQ(t.num_rows(), 5u);
  EXPECT_EQ(idx->NumPatches(), 0u);
  EXPECT_TRUE(idx->CheckInvariant());
}

TEST_P(NucUpdateTest, InsertCollidingWithExistingValuePatchesBothSides) {
  Table t = MakeTable({10, 20, 30});
  PatchIndexManager mgr;
  PatchIndex* idx = mgr.CreateIndex(t, 1, ConstraintKind::kNearlyUnique,
                                    SmallOptions(GetParam()));
  t.BufferInsert(InsertRow(3, 20));  // collides with row 1
  ASSERT_TRUE(mgr.CommitUpdateQuery(t).ok());
  // Paper §5.1: rowIDs of both join sides are merged into the patches.
  EXPECT_TRUE(idx->IsPatch(1));
  EXPECT_TRUE(idx->IsPatch(3));
  EXPECT_EQ(idx->NumPatches(), 2u);
  EXPECT_TRUE(idx->CheckInvariant());
}

TEST_P(NucUpdateTest, DuplicatesWithinTheInsertsAreFound) {
  Table t = MakeTable({10, 20});
  PatchIndexManager mgr;
  PatchIndex* idx = mgr.CreateIndex(t, 1, ConstraintKind::kNearlyUnique,
                                    SmallOptions(GetParam()));
  t.BufferInsert(InsertRow(2, 99));
  t.BufferInsert(InsertRow(3, 99));
  ASSERT_TRUE(mgr.CommitUpdateQuery(t).ok());
  EXPECT_TRUE(idx->IsPatch(2));
  EXPECT_TRUE(idx->IsPatch(3));
  EXPECT_TRUE(idx->CheckInvariant());
}

TEST_P(NucUpdateTest, ModifyCreatingCollisionPatchesBothRows) {
  Table t = MakeTable({10, 20, 30, 40});
  PatchIndexManager mgr;
  PatchIndex* idx = mgr.CreateIndex(t, 1, ConstraintKind::kNearlyUnique,
                                    SmallOptions(GetParam()));
  ASSERT_TRUE(t.BufferModify(0, 1, Value(std::int64_t{30})).ok());
  ASSERT_TRUE(mgr.CommitUpdateQuery(t).ok());
  EXPECT_TRUE(idx->IsPatch(0));
  EXPECT_TRUE(idx->IsPatch(2));
  EXPECT_TRUE(idx->CheckInvariant());
}

TEST_P(NucUpdateTest, ModifyOfOtherColumnIsIgnored) {
  Table t = MakeTable({10, 20});
  PatchIndexManager mgr;
  PatchIndex* idx = mgr.CreateIndex(t, 1, ConstraintKind::kNearlyUnique,
                                    SmallOptions(GetParam()));
  ASSERT_TRUE(t.BufferModify(0, 0, Value(std::int64_t{555})).ok());
  ASSERT_TRUE(mgr.CommitUpdateQuery(t).ok());
  EXPECT_EQ(idx->NumPatches(), 0u);
}

TEST_P(NucUpdateTest, DeleteDropsTrackingInformation) {
  Table t = MakeTable({7, 7, 8, 9});
  PatchIndexManager mgr;
  PatchIndex* idx = mgr.CreateIndex(t, 1, ConstraintKind::kNearlyUnique,
                                    SmallOptions(GetParam()));
  ASSERT_EQ(idx->NumPatches(), 2u);  // both 7s
  ASSERT_TRUE(t.BufferDelete(0).ok());
  ASSERT_TRUE(mgr.CommitUpdateQuery(t).ok());
  // Row 1's patch bit shifted to row 0. The paper accepts the lost
  // optimality (the remaining single 7 stays a patch) but never a wrong
  // result: the invariant must hold.
  EXPECT_EQ(t.num_rows(), 3u);
  EXPECT_EQ(idx->NumPatches(), 1u);
  EXPECT_TRUE(idx->IsPatch(0));
  EXPECT_TRUE(idx->CheckInvariant());
}

INSTANTIATE_TEST_SUITE_P(BothDesigns, NucUpdateTest,
                         ::testing::Values(PatchSetDesign::kBitmap,
                                           PatchSetDesign::kIdentifier),
                         [](const auto& info) {
                           return info.param == PatchSetDesign::kBitmap
                                      ? "Bitmap"
                                      : "Identifier";
                         });

TEST(NucDrpTest, InsertHandlingPrunesProbeScan) {
  // 256 sorted values in blocks of 8; inserting one colliding value must
  // scan only a small fraction of the base table.
  std::vector<std::int64_t> vals(256);
  for (int i = 0; i < 256; ++i) vals[i] = i * 10;
  Table t = MakeTable(vals);
  PatchIndexManager mgr;
  PatchIndex* idx = mgr.CreateIndex(t, 1, ConstraintKind::kNearlyUnique,
                                    SmallOptions());
  t.BufferInsert(InsertRow(256, 1280));  // collides with row 128
  ASSERT_TRUE(mgr.CommitUpdateQuery(t).ok());
  EXPECT_TRUE(idx->IsPatch(128));
  EXPECT_TRUE(idx->IsPatch(256));
  EXPECT_LT(idx->last_handled_scan_fraction(), 0.1);
}

TEST(NucDrpTest, DisablingDrpScansFullTable) {
  std::vector<std::int64_t> vals(256);
  for (int i = 0; i < 256; ++i) vals[i] = i * 10;
  Table t = MakeTable(vals);
  PatchIndexOptions opt = SmallOptions();
  opt.use_dynamic_range_propagation = false;
  PatchIndexManager mgr;
  PatchIndex* idx =
      mgr.CreateIndex(t, 1, ConstraintKind::kNearlyUnique, opt);
  t.BufferInsert(InsertRow(256, 1280));
  ASSERT_TRUE(mgr.CommitUpdateQuery(t).ok());
  EXPECT_TRUE(idx->IsPatch(128));
  EXPECT_DOUBLE_EQ(idx->last_handled_scan_fraction(), 1.0);
}

TEST(NscUpdateTest, InsertExtendingSortedSequenceAddsNoPatches) {
  Table t = MakeTable({1, 2, 3});
  PatchIndexManager mgr;
  PatchIndex* idx = mgr.CreateIndex(t, 1, ConstraintKind::kNearlySorted,
                                    SmallOptions());
  t.BufferInsert(InsertRow(3, 4));
  t.BufferInsert(InsertRow(4, 5));
  ASSERT_TRUE(mgr.CommitUpdateQuery(t).ok());
  EXPECT_EQ(idx->NumPatches(), 0u);
  EXPECT_EQ(idx->tail_value(), 5);
  EXPECT_TRUE(idx->CheckInvariant());
}

TEST(NscUpdateTest, InsertBelowTailBecomesPatch) {
  Table t = MakeTable({1, 2, 10});
  PatchIndexManager mgr;
  PatchIndex* idx = mgr.CreateIndex(t, 1, ConstraintKind::kNearlySorted,
                                    SmallOptions());
  t.BufferInsert(InsertRow(3, 5));  // below tail 10
  ASSERT_TRUE(mgr.CommitUpdateQuery(t).ok());
  EXPECT_TRUE(idx->IsPatch(3));
  EXPECT_TRUE(idx->CheckInvariant());
}

TEST(NscUpdateTest, PaperOptimalityLossExample) {
  // Paper §5.1: table (1, 2, 10), inserts (3, 4). The globally longest
  // sorted subsequence would be 1,2,3,4 (one patch), but extending from
  // tail 10 patches both inserts. Correctness (invariant) holds anyway.
  Table t = MakeTable({1, 2, 10});
  PatchIndexManager mgr;
  PatchIndex* idx = mgr.CreateIndex(t, 1, ConstraintKind::kNearlySorted,
                                    SmallOptions());
  t.BufferInsert(InsertRow(3, 3));
  t.BufferInsert(InsertRow(4, 4));
  ASSERT_TRUE(mgr.CommitUpdateQuery(t).ok());
  EXPECT_EQ(idx->NumPatches(), 2u);
  EXPECT_TRUE(idx->IsPatch(3));
  EXPECT_TRUE(idx->IsPatch(4));
  EXPECT_TRUE(idx->CheckInvariant());
  EXPECT_EQ(idx->tail_value(), 10);
}

TEST(NscUpdateTest, UnsortedInsertsRunLssAmongThemselves) {
  Table t = MakeTable({1, 2, 3});
  PatchIndexManager mgr;
  PatchIndex* idx = mgr.CreateIndex(t, 1, ConstraintKind::kNearlySorted,
                                    SmallOptions());
  // Candidates above tail 3: 7, 5, 6, 8 -> LSS {5,6,8} (or {7,8} shorter),
  // so exactly one of the four becomes a patch.
  for (std::int64_t v : {7, 5, 6, 8}) {
    t.BufferInsert(InsertRow(100 + v, v));
  }
  ASSERT_TRUE(mgr.CommitUpdateQuery(t).ok());
  EXPECT_EQ(idx->NumPatches(), 1u);
  EXPECT_TRUE(idx->IsPatch(3));  // the leading 7
  EXPECT_EQ(idx->tail_value(), 8);
  EXPECT_TRUE(idx->CheckInvariant());
}

TEST(NscUpdateTest, ModifyPatchesAllModifiedRows) {
  Table t = MakeTable({1, 2, 3, 4});
  PatchIndexManager mgr;
  PatchIndex* idx = mgr.CreateIndex(t, 1, ConstraintKind::kNearlySorted,
                                    SmallOptions());
  ASSERT_TRUE(t.BufferModify(1, 1, Value(std::int64_t{100})).ok());
  ASSERT_TRUE(t.BufferModify(2, 1, Value(std::int64_t{0})).ok());
  ASSERT_TRUE(mgr.CommitUpdateQuery(t).ok());
  EXPECT_TRUE(idx->IsPatch(1));
  EXPECT_TRUE(idx->IsPatch(2));
  EXPECT_EQ(idx->NumPatches(), 2u);
  EXPECT_TRUE(idx->CheckInvariant());
}

TEST(NscUpdateTest, DeleteKeepsInvariant) {
  Table t = MakeTable({1, 9, 2, 3});
  PatchIndexManager mgr;
  PatchIndex* idx = mgr.CreateIndex(t, 1, ConstraintKind::kNearlySorted,
                                    SmallOptions());
  ASSERT_EQ(idx->NumPatches(), 1u);  // value 9
  ASSERT_TRUE(t.BufferDelete(2).ok());
  ASSERT_TRUE(mgr.CommitUpdateQuery(t).ok());
  EXPECT_TRUE(idx->CheckInvariant());
}

TEST(PatchIndexTest, MixedDeltaKindsRejected) {
  Table t = MakeTable({1, 2, 3});
  PatchIndexManager mgr;
  mgr.CreateIndex(t, 1, ConstraintKind::kNearlyUnique, SmallOptions());
  t.BufferInsert(InsertRow(3, 4));
  ASSERT_TRUE(t.BufferDelete(0).ok());
  EXPECT_EQ(mgr.CommitUpdateQuery(t).code(), StatusCode::kInvalidArgument);
}

TEST(PatchIndexTest, PerfectConstraintBecomesApproximateOverTime) {
  // The paper's §6.3 observation: a clean dataset stays updatable and the
  // constraint degrades gracefully instead of updates aborting.
  Table t = MakeTable({1, 2, 3, 4, 5});
  PatchIndexManager mgr;
  PatchIndex* idx = mgr.CreateIndex(t, 1, ConstraintKind::kNearlyUnique,
                                    SmallOptions());
  EXPECT_EQ(idx->NumPatches(), 0u);
  t.BufferInsert(InsertRow(5, 3));
  ASSERT_TRUE(mgr.CommitUpdateQuery(t).ok());
  EXPECT_GT(idx->NumPatches(), 0u);
  EXPECT_GT(idx->exception_rate(), 0.0);
  EXPECT_TRUE(idx->CheckInvariant());
}

TEST(PatchIndexTest, RecomputeThresholdTriggersGlobalRecomputation) {
  Table t = MakeTable({1, 2, 10});
  PatchIndexOptions opt = SmallOptions();
  opt.recompute_threshold = 0.3;
  PatchIndexManager mgr;
  PatchIndex* idx =
      mgr.CreateIndex(t, 1, ConstraintKind::kNearlySorted, opt);
  // The (3, 4) inserts would leave 2/5 = 40% exceptions; the monitor must
  // recompute globally, finding the 1,2,3,4 subsequence (1 patch: the 10).
  t.BufferInsert(InsertRow(3, 3));
  t.BufferInsert(InsertRow(4, 4));
  ASSERT_TRUE(mgr.CommitUpdateQuery(t).ok());
  EXPECT_EQ(idx->NumPatches(), 1u);
  EXPECT_TRUE(idx->IsPatch(2));
  EXPECT_EQ(idx->tail_value(), 4);
}

TEST(PatchIndexTest, RandomUpdateStreamPreservesInvariants) {
  Rng rng(7);
  for (PatchSetDesign design :
       {PatchSetDesign::kBitmap, PatchSetDesign::kIdentifier}) {
    std::vector<std::int64_t> vals;
    for (int i = 0; i < 400; ++i) {
      vals.push_back(static_cast<std::int64_t>(rng.Uniform(0, 600)));
    }
    Table t = MakeTable(vals);
    PatchIndexManager mgr;
    PatchIndex* nuc = mgr.CreateIndex(t, 1, ConstraintKind::kNearlyUnique,
                                      SmallOptions(design));
    PatchIndex* nsc = mgr.CreateIndex(t, 1, ConstraintKind::kNearlySorted,
                                      SmallOptions(design));
    for (int step = 0; step < 40; ++step) {
      const int op = static_cast<int>(rng.Uniform(0, 2));
      const std::uint64_t n = t.num_rows();
      if (op == 0) {
        for (int k = 0; k < 5; ++k) {
          t.BufferInsert(InsertRow(
              static_cast<std::int64_t>(1000 + step * 10 + k),
              static_cast<std::int64_t>(rng.Uniform(0, 800))));
        }
      } else if (op == 1 && n > 0) {
        for (int k = 0; k < 3; ++k) {
          ASSERT_TRUE(t.BufferModify(
                           rng.Uniform(0, n - 1), 1,
                           Value(static_cast<std::int64_t>(
                               rng.Uniform(0, 800))))
                          .ok());
        }
      } else if (n > 10) {
        std::set<RowId> kill;
        while (kill.size() < 4) kill.insert(rng.Uniform(0, n - 1));
        for (RowId r : kill) ASSERT_TRUE(t.BufferDelete(r).ok());
      }
      ASSERT_TRUE(mgr.CommitUpdateQuery(t).ok()) << "step " << step;
      ASSERT_TRUE(nuc->CheckInvariant()) << "NUC step " << step;
      ASSERT_TRUE(nsc->CheckInvariant()) << "NSC step " << step;
      ASSERT_EQ(nuc->patches().NumRows(), t.num_rows());
      ASSERT_EQ(nsc->patches().NumRows(), t.num_rows());
    }
  }
}

}  // namespace
}  // namespace patchindex
