#include "patchindex/patch_set.h"

#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"

namespace patchindex {
namespace {

class PatchSetTest : public ::testing::TestWithParam<PatchSetDesign> {
 protected:
  std::unique_ptr<PatchSet> Make(std::uint64_t rows) {
    ShardedBitmapOptions opt;
    opt.shard_size_bits = 128;
    opt.parallel = false;
    return PatchSet::Create(GetParam(), rows, opt);
  }
};

TEST_P(PatchSetTest, MarkAndQuery) {
  auto ps = Make(100);
  EXPECT_EQ(ps->NumRows(), 100u);
  EXPECT_EQ(ps->NumPatches(), 0u);
  ps->MarkPatch(3);
  ps->MarkPatch(97);
  ps->MarkPatch(3);  // idempotent
  EXPECT_EQ(ps->NumPatches(), 2u);
  EXPECT_TRUE(ps->IsPatch(3));
  EXPECT_TRUE(ps->IsPatch(97));
  EXPECT_FALSE(ps->IsPatch(4));
  EXPECT_EQ(ps->PatchRowIds(), (std::vector<RowId>{3, 97}));
  EXPECT_DOUBLE_EQ(ps->exception_rate(), 0.02);
}

TEST_P(PatchSetTest, AppendRowsGrowsDomain) {
  auto ps = Make(10);
  ps->OnAppendRows(5);
  EXPECT_EQ(ps->NumRows(), 15u);
  ps->MarkPatch(14);
  EXPECT_TRUE(ps->IsPatch(14));
}

TEST_P(PatchSetTest, DeleteDropsTrackingAndShiftsRowIds) {
  auto ps = Make(10);
  ps->MarkPatch(2);
  ps->MarkPatch(5);
  ps->MarkPatch(9);
  // Delete rows 2 (a patch) and 7 (not a patch): patch at 5 stays at 4
  // (one delete below), patch at 9 moves to 7 (two deletes below).
  ps->OnDeleteRows({2, 7});
  EXPECT_EQ(ps->NumRows(), 8u);
  EXPECT_EQ(ps->NumPatches(), 2u);
  EXPECT_EQ(ps->PatchRowIds(), (std::vector<RowId>{4, 7}));
}

TEST_P(PatchSetTest, DeleteAllPatches) {
  auto ps = Make(6);
  for (RowId r : {0ull, 1ull, 2ull}) ps->MarkPatch(r);
  ps->OnDeleteRows({0, 1, 2});
  EXPECT_EQ(ps->NumPatches(), 0u);
  EXPECT_EQ(ps->NumRows(), 3u);
}

INSTANTIATE_TEST_SUITE_P(BothDesigns, PatchSetTest,
                         ::testing::Values(PatchSetDesign::kBitmap,
                                           PatchSetDesign::kIdentifier),
                         [](const auto& info) {
                           return info.param == PatchSetDesign::kBitmap
                                      ? "Bitmap"
                                      : "Identifier";
                         });

TEST(PatchSetEquivalenceTest, DesignsAgreeUnderRandomOps) {
  ShardedBitmapOptions opt;
  opt.shard_size_bits = 256;
  opt.parallel = false;
  auto a = PatchSet::Create(PatchSetDesign::kBitmap, 2000, opt);
  auto b = PatchSet::Create(PatchSetDesign::kIdentifier, 2000);
  Rng rng(99);
  for (int step = 0; step < 500; ++step) {
    const int op = static_cast<int>(rng.Uniform(0, 9));
    const std::uint64_t n = a->NumRows();
    if (op < 6 && n > 0) {
      const RowId r = rng.Uniform(0, n - 1);
      a->MarkPatch(r);
      b->MarkPatch(r);
    } else if (op < 8) {
      const std::uint64_t k = rng.Uniform(1, 20);
      a->OnAppendRows(k);
      b->OnAppendRows(k);
    } else if (n > 10) {
      std::set<RowId> kill;
      while (kill.size() < 5) kill.insert(rng.Uniform(0, n - 1));
      std::vector<RowId> rows(kill.begin(), kill.end());
      a->OnDeleteRows(rows);
      b->OnDeleteRows(rows);
    }
    ASSERT_EQ(a->NumRows(), b->NumRows());
    ASSERT_EQ(a->NumPatches(), b->NumPatches()) << "step " << step;
  }
  EXPECT_EQ(a->PatchRowIds(), b->PatchRowIds());
}

TEST(PatchSetMemoryTest, Table3CrossoverAtOneOver64) {
  // Paper §3.2/Table 3: the bitmap design wins for e >= 1/64.
  const std::uint64_t t = 1 << 20;
  ShardedBitmapOptions opt;  // default 2^14 shards
  auto bitmap = PatchSet::Create(PatchSetDesign::kBitmap, t, opt);
  auto ident = PatchSet::Create(PatchSetDesign::kIdentifier, t);
  // Mark e = 2% patches (above the 1/64 = 1.5625% crossover).
  for (std::uint64_t r = 0; r < t; r += 50) {
    bitmap->MarkPatch(r);
    ident->MarkPatch(r);
  }
  EXPECT_LT(bitmap->MemoryUsageBytes(), ident->MemoryUsageBytes());
  // Bitmap memory is ~ t/8 * 1.0039 bytes regardless of e.
  EXPECT_NEAR(static_cast<double>(bitmap->MemoryUsageBytes()),
              t / 8.0 * 1.0039, t / 8.0 * 0.05);
  // Identifier memory is ~ e * t * 8 bytes.
  EXPECT_GE(ident->MemoryUsageBytes(), (t / 50) * 8);
}

}  // namespace
}  // namespace patchindex
