#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_map>

#include "patchindex/discovery.h"
#include "workload/generator.h"
#include "workload/publicbi.h"
#include "workload/tpch.h"

namespace patchindex {
namespace {

TEST(GeneratorTest, NucExceptionRateMatchesConfig) {
  GeneratorConfig cfg;
  cfg.num_rows = 20'000;
  cfg.exception_rate = 0.25;
  Table t = GenerateNucTable(cfg);
  ASSERT_EQ(t.num_rows(), cfg.num_rows);
  const auto patches = DiscoverNucPatches(t.column(1));
  const double measured =
      static_cast<double>(patches.size()) / cfg.num_rows;
  EXPECT_NEAR(measured, 0.25, 0.01);
}

TEST(GeneratorTest, NucZeroExceptionsIsPerfectlyUnique) {
  GeneratorConfig cfg;
  cfg.num_rows = 5'000;
  cfg.exception_rate = 0.0;
  Table t = GenerateNucTable(cfg);
  EXPECT_TRUE(DiscoverNucPatches(t.column(1)).empty());
}

TEST(GeneratorTest, NucExceptionsSpreadOverConfiguredDomain) {
  GeneratorConfig cfg;
  cfg.num_rows = 10'000;
  cfg.exception_rate = 0.5;
  cfg.num_exception_values = 50;
  Table t = GenerateNucTable(cfg);
  std::unordered_map<std::int64_t, int> counts;
  for (auto v : t.column(1).i64_data()) {
    if (v < 1'000'000'000) ++counts[v];
  }
  EXPECT_EQ(counts.size(), 50u);
  // "equally distributed": each duplicated value appears ~100 times.
  for (const auto& [v, c] : counts) EXPECT_NEAR(c, 100, 1);
}

TEST(GeneratorTest, NscExceptionRateApproximatelyMatches) {
  GeneratorConfig cfg;
  cfg.num_rows = 20'000;
  cfg.exception_rate = 0.3;
  Table t = GenerateNscTable(cfg);
  const auto d = DiscoverNscPatches(t.column(1));
  const double measured = static_cast<double>(d.patches.size()) / cfg.num_rows;
  // The LSS can absorb some random exceptions, so measured <= configured.
  EXPECT_LE(measured, 0.3 + 0.01);
  EXPECT_GE(measured, 0.2);
}

TEST(GeneratorTest, DeterministicInSeed) {
  GeneratorConfig cfg;
  cfg.num_rows = 1'000;
  cfg.exception_rate = 0.2;
  Table a = GenerateNucTable(cfg);
  Table b = GenerateNucTable(cfg);
  EXPECT_EQ(a.column(1).i64_data(), b.column(1).i64_data());
}

TEST(GeneratorTest, PartitionedSplitsNearlyEvenly) {
  GeneratorConfig cfg;
  cfg.num_rows = 10'000;
  cfg.exception_rate = 0.1;
  auto pt = GenerateNscPartitioned(cfg, 4);
  ASSERT_EQ(pt->num_partitions(), 4u);
  EXPECT_EQ(pt->num_rows(), cfg.num_rows);
  for (std::size_t p = 0; p < 4; ++p) {
    EXPECT_NEAR(static_cast<double>(pt->partition(p).num_rows()), 2500.0, 1.0);
  }
}

TEST(TpchTest, GeneratesConsistentTables) {
  TpchConfig cfg;
  cfg.num_orders = 500;
  TpchDatabase db = GenerateTpch(cfg);
  EXPECT_EQ(db.nation->num_rows(), 25u);
  EXPECT_EQ(db.orders->num_rows(), 500u);
  EXPECT_GE(db.lineitem->num_rows(), 500u);
  EXPECT_LE(db.lineitem->num_rows(), 3500u);
  // orders sorted by orderkey; lineitem clustered by orderkey.
  EXPECT_TRUE(std::is_sorted(db.orders->column(0).i64_data().begin(),
                             db.orders->column(0).i64_data().end()));
  EXPECT_TRUE(std::is_sorted(db.lineitem->column(0).i64_data().begin(),
                             db.lineitem->column(0).i64_data().end()));
  // Foreign keys resolve.
  for (auto k : db.lineitem->column(0).i64_data()) {
    ASSERT_GE(k, 0);
    ASSERT_LE(k, db.max_orderkey);
  }
}

TEST(TpchTest, PerturbationIntroducesRequestedExceptionRate) {
  TpchConfig cfg;
  cfg.num_orders = 1'000;
  TpchDatabase db = GenerateTpch(cfg);
  PerturbLineitemOrder(db.lineitem.get(), 0.10, 99);
  const auto d = DiscoverNscPatches(db.lineitem->column(0));
  const double e =
      static_cast<double>(d.patches.size()) / db.lineitem->num_rows();
  EXPECT_GT(e, 0.05);
  EXPECT_LE(e, 0.11);
}

TEST(TpchTest, PerturbationZeroIsNoop) {
  TpchConfig cfg;
  cfg.num_orders = 200;
  TpchDatabase db = GenerateTpch(cfg);
  const auto before = db.lineitem->column(0).i64_data();
  PerturbLineitemOrder(db.lineitem.get(), 0.0, 1);
  EXPECT_EQ(db.lineitem->column(0).i64_data(), before);
}

TEST(TpchTest, Rf1ProducesAscendingNewOrderKeys) {
  TpchConfig cfg;
  cfg.num_orders = 100;
  TpchDatabase db = GenerateTpch(cfg);
  RefreshSet rf = MakeRf1(db, 10, 3);
  EXPECT_EQ(rf.orders_rows.size(), 10u);
  EXPECT_GE(rf.lineitem_rows.size(), 10u);
  std::int64_t prev = db.max_orderkey;
  for (const Row& r : rf.orders_rows) {
    EXPECT_GT(r.cells[0].AsInt64(), prev);
    prev = r.cells[0].AsInt64();
  }
}

TEST(TpchTest, Rf2FindsAllRowsOfSampledOrders) {
  TpchConfig cfg;
  cfg.num_orders = 300;
  TpchDatabase db = GenerateTpch(cfg);
  DeleteSet del = MakeRf2(db, 20, 5);
  EXPECT_EQ(del.orders_rows.size(), 20u);
  EXPECT_GE(del.lineitem_rows.size(), 20u);
  EXPECT_TRUE(std::is_sorted(del.orders_rows.begin(), del.orders_rows.end()));
  EXPECT_TRUE(
      std::is_sorted(del.lineitem_rows.begin(), del.lineitem_rows.end()));
}

TEST(PublicBiTest, DatasetsMatchFigure1Shape) {
  auto datasets = Figure1Datasets();
  ASSERT_EQ(datasets.size(), 3u);
  EXPECT_EQ(datasets[0].name, "USCensus_1");
  EXPECT_EQ(datasets[0].columns.size(), 15u);  // 15 NSC columns
  int above60 = 0;
  for (const auto& c : datasets[0].columns) {
    EXPECT_EQ(c.constraint, ConstraintKind::kNearlySorted);
    if (c.match_fraction > 0.6) ++above60;
  }
  EXPECT_EQ(above60, 9);  // "nine columns match with over 60%"
}

TEST(PublicBiTest, SynthesizedColumnsHitTargetFraction) {
  for (const auto& ds : Figure1Datasets()) {
    for (const auto& spec : ds.columns) {
      const double measured = MeasureMatchFraction(spec, 5'000, 17);
      EXPECT_NEAR(measured, spec.match_fraction, 0.08)
          << ds.name << "/" << spec.name;
    }
  }
}

TEST(PublicBiTest, HistogramBucketsSumToColumnCount) {
  for (const auto& ds : Figure1Datasets()) {
    auto hist = MatchHistogram(ds, 2'000, 23);
    int total = 0;
    for (int b : hist) total += b;
    EXPECT_EQ(static_cast<std::size_t>(total), ds.columns.size());
  }
}

}  // namespace
}  // namespace patchindex
