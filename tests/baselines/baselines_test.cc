#include <gtest/gtest.h>

#include <algorithm>

#include "baselines/join_index.h"
#include "baselines/materialized_view.h"
#include "baselines/sort_key.h"
#include "exec/aggregate.h"
#include "exec/scan.h"

namespace patchindex {
namespace {

Schema KvSchema() {
  return Schema({{"key", ColumnType::kInt64}, {"val", ColumnType::kInt64}});
}

Table MakeTable(const std::vector<std::int64_t>& vals) {
  Table t(KvSchema());
  for (std::size_t i = 0; i < vals.size(); ++i) {
    t.AppendRow(Row{{Value(static_cast<std::int64_t>(i)), Value(vals[i])}});
  }
  return t;
}

TEST(MaterializedViewTest, PrecomputesDistinctValues) {
  Table t = MakeTable({5, 3, 5, 3, 7});
  DistinctMaterializedView mv(t, 1);
  EXPECT_EQ(mv.num_values(), 3u);
  auto plan = mv.QueryPlan();
  Batch out = Collect(*plan);
  std::vector<std::int64_t> got = out.columns[0].i64;
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, (std::vector<std::int64_t>{3, 5, 7}));
}

TEST(MaterializedViewTest, RefreshPicksUpBaseUpdates) {
  Table t = MakeTable({1, 2});
  DistinctMaterializedView mv(t, 1);
  EXPECT_EQ(mv.num_values(), 2u);
  t.AppendRow(Row{{Value(std::int64_t{2}), Value(std::int64_t{9})}});
  // Stale until refreshed — the baseline's core weakness.
  EXPECT_EQ(mv.num_values(), 2u);
  mv.Refresh();
  EXPECT_EQ(mv.num_values(), 3u);
}

TEST(SortKeyTest, PhysicallyReordersAllColumns) {
  Table t = MakeTable({30, 10, 20});
  SortKey sk(&t, 1);
  EXPECT_EQ(t.column(1).i64_data(), (std::vector<std::int64_t>{10, 20, 30}));
  // The key column moved with the rows.
  EXPECT_EQ(t.column(0).i64_data(), (std::vector<std::int64_t>{1, 2, 0}));
}

TEST(SortKeyTest, QueryPlanReturnsSortedResult) {
  Table t = MakeTable({5, 1, 4, 2, 3});
  SortKey sk(&t, 1);
  Batch out = Collect(*sk.QueryPlan());
  EXPECT_TRUE(std::is_sorted(out.columns[1].i64.begin(),
                             out.columns[1].i64.end()));
  EXPECT_EQ(out.num_rows(), 5u);
}

TEST(SortKeyTest, MaintainAfterUpdateRestoresOrder) {
  Table t = MakeTable({1, 3, 5});
  SortKey sk(&t, 1);
  t.BufferInsert(Row{{Value(std::int64_t{3}), Value(std::int64_t{2})}});
  sk.MaintainAfterUpdate();
  EXPECT_EQ(t.column(1).i64_data(), (std::vector<std::int64_t>{1, 2, 3, 5}));
}

Schema DimSchema() {
  return Schema({{"d_key", ColumnType::kInt64}, {"d_val", ColumnType::kInt64}});
}

TEST(JoinIndexTest, MaterializesPartnersAndGathers) {
  Table fact = MakeTable({10, 11, 10, 12});  // fact key col = 1
  Table dim(DimSchema());
  for (std::int64_t k : {10, 11, 12}) {
    dim.AppendRow(Row{{Value(k), Value(k * 100)}});
  }
  JoinIndex ji(fact, 1, dim, 0);
  EXPECT_EQ(ji.partners(), (std::vector<RowId>{0, 1, 0, 2}));
  Batch out = Collect(*ji.QueryPlan({1}, {1}));
  ASSERT_EQ(out.num_rows(), 4u);
  EXPECT_EQ(out.columns[1].i64,
            (std::vector<std::int64_t>{1000, 1100, 1000, 1200}));
}

TEST(JoinIndexTest, DanglingForeignKeysAreSkipped) {
  Table fact = MakeTable({10, 999});
  Table dim(DimSchema());
  dim.AppendRow(Row{{Value(std::int64_t{10}), Value(std::int64_t{1})}});
  JoinIndex ji(fact, 1, dim, 0);
  EXPECT_EQ(CountRows(*ji.QueryPlan({1}, {1})), 1u);
}

TEST(JoinIndexTest, MaintainAfterFactInsert) {
  Table fact = MakeTable({10, 11});
  Table dim(DimSchema());
  for (std::int64_t k : {10, 11, 12}) {
    dim.AppendRow(Row{{Value(k), Value(k)}});
  }
  JoinIndex ji(fact, 1, dim, 0);
  fact.BufferInsert(Row{{Value(std::int64_t{2}), Value(std::int64_t{12})}});
  fact.Checkpoint();
  ASSERT_TRUE(ji.MaintainAfterFactUpdate({}).ok());
  EXPECT_EQ(ji.partners(), (std::vector<RowId>{0, 1, 2}));
}

TEST(JoinIndexTest, MaintainAfterFactDelete) {
  Table fact = MakeTable({10, 11, 12});
  Table dim(DimSchema());
  for (std::int64_t k : {10, 11, 12}) {
    dim.AppendRow(Row{{Value(k), Value(k)}});
  }
  JoinIndex ji(fact, 1, dim, 0);
  ASSERT_TRUE(fact.BufferDelete(1).ok());
  fact.Checkpoint();
  ASSERT_TRUE(ji.MaintainAfterFactUpdate({1}).ok());
  EXPECT_EQ(ji.partners(), (std::vector<RowId>{0, 2}));
}

}  // namespace
}  // namespace patchindex
