#include "sql/lexer.h"

#include <gtest/gtest.h>

namespace patchindex::sql {
namespace {

std::vector<Token> Lex(std::string_view text) {
  Result<std::vector<Token>> tokens = Tokenize(text);
  EXPECT_TRUE(tokens.ok()) << tokens.status().ToString();
  return tokens.value_or({});
}

TEST(LexerTest, TokenizesSelectStatement) {
  const auto tokens = Lex("SELECT a.b, 12 FROM t WHERE x >= 1.5;");
  ASSERT_EQ(tokens.size(), 14u);  // incl. kEnd
  EXPECT_EQ(tokens[0].kind, TokenKind::kIdentifier);
  EXPECT_TRUE(tokens[0].Is("select"));
  EXPECT_EQ(tokens[1].text, "a");
  EXPECT_EQ(tokens[2].kind, TokenKind::kDot);
  EXPECT_EQ(tokens[3].text, "b");
  EXPECT_EQ(tokens[4].kind, TokenKind::kComma);
  EXPECT_EQ(tokens[5].kind, TokenKind::kIntLiteral);
  EXPECT_EQ(tokens[5].i64, 12);
  EXPECT_TRUE(tokens[6].Is("from"));
  EXPECT_TRUE(tokens[8].Is("where"));
  EXPECT_EQ(tokens[10].kind, TokenKind::kGe);
  EXPECT_EQ(tokens[11].kind, TokenKind::kDoubleLiteral);
  EXPECT_DOUBLE_EQ(tokens[11].f64, 1.5);
  EXPECT_EQ(tokens[12].kind, TokenKind::kSemicolon);
  EXPECT_EQ(tokens[13].kind, TokenKind::kEnd);
}

TEST(LexerTest, KeywordMatchingIsCaseInsensitive) {
  const auto tokens = Lex("SeLeCt");
  EXPECT_TRUE(tokens[0].Is("select"));
  EXPECT_FALSE(tokens[0].Is("from"));
}

TEST(LexerTest, TracksLineAndColumn) {
  const auto tokens = Lex("SELECT x\nFROM t");
  EXPECT_EQ(tokens[0].loc.line, 1u);
  EXPECT_EQ(tokens[0].loc.column, 1u);
  EXPECT_EQ(tokens[1].loc.column, 8u);
  EXPECT_EQ(tokens[2].loc.line, 2u);  // FROM
  EXPECT_EQ(tokens[2].loc.column, 1u);
  EXPECT_EQ(tokens[3].loc.column, 6u);  // t
}

TEST(LexerTest, StringLiteralsWithEscapes) {
  const auto tokens = Lex("'it''s' 'two words'");
  EXPECT_EQ(tokens[0].kind, TokenKind::kStringLiteral);
  EXPECT_EQ(tokens[0].text, "it's");
  EXPECT_EQ(tokens[1].text, "two words");
}

TEST(LexerTest, OperatorsAndParams) {
  const auto tokens = Lex("= != <> < <= > >= + - * / ? ( )");
  const TokenKind expected[] = {
      TokenKind::kEq,   TokenKind::kNe,       TokenKind::kNe,
      TokenKind::kLt,   TokenKind::kLe,       TokenKind::kGt,
      TokenKind::kGe,   TokenKind::kPlus,     TokenKind::kMinus,
      TokenKind::kStar, TokenKind::kSlash,    TokenKind::kQuestion,
      TokenKind::kLParen, TokenKind::kRParen, TokenKind::kEnd};
  ASSERT_EQ(tokens.size(), std::size(expected));
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    EXPECT_EQ(tokens[i].kind, expected[i]) << "token " << i;
  }
}

TEST(LexerTest, SkipsLineComments) {
  const auto tokens = Lex("SELECT 1 -- the answer\n+ 2");
  ASSERT_EQ(tokens.size(), 5u);
  EXPECT_EQ(tokens[2].kind, TokenKind::kPlus);
  EXPECT_EQ(tokens[3].i64, 2);
}

TEST(LexerTest, UnterminatedStringFailsWithPosition) {
  Result<std::vector<Token>> r = Tokenize("SELECT 'oops");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("unterminated string"),
            std::string::npos);
  EXPECT_NE(r.status().message().find("line 1, column 8"),
            std::string::npos);
}

TEST(LexerTest, RejectsUnknownCharactersAndMalformedNumbers) {
  EXPECT_FALSE(Tokenize("SELECT #x").ok());
  EXPECT_FALSE(Tokenize("SELECT 12abc").ok());
  EXPECT_FALSE(Tokenize("SELECT a ! b").ok());
}

TEST(LexerTest, NegativeNumbersAreMinusThenLiteral) {
  const auto tokens = Lex("-3");
  EXPECT_EQ(tokens[0].kind, TokenKind::kMinus);
  EXPECT_EQ(tokens[1].kind, TokenKind::kIntLiteral);
  EXPECT_EQ(tokens[1].i64, 3);
}

}  // namespace
}  // namespace patchindex::sql
